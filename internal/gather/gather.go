// Package gather implements the three-round common-core ("gather")
// protocol that is implicit in the Canetti–Rabin common coin (paper §5,
// citing [6] Fig 5-9): every party broadcasts a set of verified parties;
// parties echo quorums of validated sets twice more. The construction
// ensures that the output sets of nonfaulty parties contain a large
// common core that is fixed before the first nonfaulty party outputs —
// which is what lets the coin's lottery values be chosen independently
// of which parties end up in everyone's output set.
//
// The engine is generic over "verification": the layer above (the coin)
// calls Verify(round, j) as parties become locally verified, and the
// engine re-evaluates pending sets monotonically.
//
// Rounds within the engine:
//
//	G1: broadcast S_i, a snapshot of the local verified set (>= n-t).
//	G2: after validating n-t G1 sets (S_j fully verified locally),
//	    broadcast A_i = that set of senders.
//	G3: after validating n-t G2 sets (A_j subset of own validated G1
//	    senders), broadcast B_i = that set of senders.
//	Out: after validating n-t G3 sets (B_j subset of own validated G2
//	    senders), output the union of all validated G1 sets.
package gather

import (
	"svssba/internal/intern"
	"svssba/internal/proto"
	"svssba/internal/sim"
)

// Broadcast steps.
const (
	StepG1 uint8 = 1
	StepG2 uint8 = 2
	StepG3 uint8 = 3
)

// Host is what the engine needs from its process.
type Host interface {
	Self() sim.ProcID
	Broadcast(ctx sim.Context, tag proto.Tag, value []byte)
}

// OutputFunc receives the gathered set for a round.
type OutputFunc func(ctx sim.Context, round uint64, set []sim.ProcID)

// round holds one gather instance's state, dense per process: received
// sets live in slices indexed by sender id with a bitset marking which
// senders have one, and validated-sender sets are bitsets.
type round struct {
	id uint64

	verified intern.ProcSet
	g1Sent   bool

	g1Sets [][]sim.ProcID // received S_j (index: sender)
	g1Seen intern.ProcSet
	r1     intern.ProcSet // validated G1 senders
	g2Sent bool

	g2Sets [][]sim.ProcID // received A_j
	g2Seen intern.ProcSet
	r2     intern.ProcSet // validated G2 senders
	g3Sent bool

	g3Sets [][]sim.ProcID // received B_j
	g3Seen intern.ProcSet
	r3     intern.ProcSet // validated G3 senders

	done bool
}

// Engine runs gather instances keyed by round number.
type Engine struct {
	host   Host
	out    OutputFunc
	rounds map[uint64]*round
	n      int // system size, captured from the first ctx
}

// New returns a gather engine delivering outputs to out.
func New(host Host, out OutputFunc) *Engine {
	return &Engine{host: host, out: out, rounds: make(map[uint64]*round)}
}

func (e *Engine) round(ctx sim.Context, r uint64) *round {
	rd, ok := e.rounds[r]
	if !ok {
		if e.n == 0 {
			e.n = ctx.N()
		}
		rd = &round{
			id:     r,
			g1Sets: make([][]sim.ProcID, e.n+1),
			g2Sets: make([][]sim.ProcID, e.n+1),
			g3Sets: make([][]sim.ProcID, e.n+1),
		}
		e.rounds[r] = rd
	}
	return rd
}

// Rounds returns the number of live rounds (retirement tests).
func (e *Engine) Rounds() int { return len(e.rounds) }

// Reset drops every round. Used when the owning stack retires.
func (e *Engine) Reset() { clear(e.rounds) }

// Done reports whether the round has produced its output.
func (e *Engine) Done(r uint64) bool {
	rd, ok := e.rounds[r]
	return ok && rd.done
}

// Verify marks j as locally verified for the round and re-evaluates.
func (e *Engine) Verify(ctx sim.Context, r uint64, j sim.ProcID) {
	rd := e.round(ctx, r)
	if !rd.verified.Add(j) {
		return
	}
	e.advance(ctx, rd)
}

func tag(r uint64, step uint8) proto.Tag {
	return proto.Tag{Proto: proto.ProtoGather, Step: step, A: uint32(r)}
}

// OnBroadcast handles G1/G2/G3 broadcasts.
func (e *Engine) OnBroadcast(ctx sim.Context, origin sim.ProcID, t proto.Tag, value []byte) {
	rd := e.round(ctx, uint64(t.A))
	set, ok := decodeProcs(value, ctx.N())
	if !ok || len(set) < ctx.N()-ctx.T() {
		return
	}
	switch t.Step {
	case StepG1:
		if rd.g1Seen.Add(origin) {
			rd.g1Sets[origin] = set
		}
	case StepG2:
		if rd.g2Seen.Add(origin) {
			rd.g2Sets[origin] = set
		}
	case StepG3:
		if rd.g3Seen.Add(origin) {
			rd.g3Sets[origin] = set
		}
	default:
		return
	}
	e.advance(ctx, rd)
}

// advance re-evaluates all monotone conditions for the round.
// Validation sweeps iterate set bits in process-id order; admissions
// are order-insensitive, so this matches the former map iterations
// while keeping runs deterministic by construction.
func (e *Engine) advance(ctx sim.Context, rd *round) {
	nt := ctx.N() - ctx.T()

	// Send G1 once enough parties are verified.
	if !rd.g1Sent && rd.verified.Count() >= nt {
		rd.g1Sent = true
		e.host.Broadcast(ctx, tag(rd.id, StepG1), encodeProcs(rd.verified.Slice()))
	}

	// Validate G1 sets: every member verified locally.
	rd.g1Seen.ForEach(func(j sim.ProcID) {
		if !rd.r1.Has(j) && rd.verified.ContainsAll(rd.g1Sets[j]) {
			rd.r1.Add(j)
		}
	})
	if !rd.g2Sent && rd.r1.Count() >= nt {
		rd.g2Sent = true
		e.host.Broadcast(ctx, tag(rd.id, StepG2), encodeProcs(rd.r1.Slice()))
	}

	// Validate G2 sets: every member's G1 set validated locally.
	rd.g2Seen.ForEach(func(j sim.ProcID) {
		if !rd.r2.Has(j) && rd.r1.ContainsAll(rd.g2Sets[j]) {
			rd.r2.Add(j)
		}
	})
	if !rd.g3Sent && rd.r2.Count() >= nt {
		rd.g3Sent = true
		e.host.Broadcast(ctx, tag(rd.id, StepG3), encodeProcs(rd.r2.Slice()))
	}

	// Validate G3 sets; output once a quorum is validated.
	rd.g3Seen.ForEach(func(j sim.ProcID) {
		if !rd.r3.Has(j) && rd.r2.ContainsAll(rd.g3Sets[j]) {
			rd.r3.Add(j)
		}
	})
	if !rd.done && rd.r3.Count() >= nt {
		rd.done = true
		var union intern.ProcSet
		rd.r1.ForEach(func(j sim.ProcID) {
			for _, m := range rd.g1Sets[j] {
				union.Add(m)
			}
		})
		if e.out != nil {
			e.out(ctx, rd.id, union.Slice())
		}
	}
}

func encodeProcs(ps []sim.ProcID) []byte {
	var w proto.Writer
	w.Procs(ps)
	return w.Bytes()
}

func decodeProcs(b []byte, n int) ([]sim.ProcID, bool) {
	return proto.DecodeProcSet(b, n)
}
