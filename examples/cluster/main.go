// Command cluster demonstrates the node runtime: the same protocol
// stacks that run in the deterministic simulator are booted as real
// concurrent nodes — first over the in-process channel transport, then
// over real localhost TCP sockets with one node crash-faulted — and
// reach agreement with every message crossing the binary wire codec.
package main

import (
	"fmt"
	"log"
	"time"

	"svssba"
)

func main() {
	fmt.Println("in-process cluster (chan transport), n=4 honest:")
	res, err := svssba.RunCluster(svssba.ClusterConfig{
		N:         4,
		Seed:      1,
		Transport: svssba.TransportChan,
	})
	if err != nil {
		log.Fatal(err)
	}
	report(res)

	fmt.Println("\nlocalhost sockets (tcp transport), n=4 with node 4 crashed:")
	res, err = svssba.RunCluster(svssba.ClusterConfig{
		N:         4,
		Seed:      2,
		Transport: svssba.TransportTCP,
		Crash:     []int{4},
	})
	if err != nil {
		log.Fatal(err)
	}
	report(res)
}

func report(res *svssba.ClusterResult) {
	if !res.Agreed {
		log.Fatalf("agreement violated: %v — this should be impossible", res.Decisions)
	}
	fmt.Printf("  agreed on %d in %v (honest nodes %v)\n",
		res.Value, res.Elapsed.Round(time.Millisecond), res.Honest)
	layers, agg := svssba.ClusterLayerTable(res.Nodes)
	for _, l := range layers {
		a := agg[l]
		fmt.Printf("  layer %-6s %7d msgs %10d bytes sent\n", l, a.SentMsgs, a.SentBytes)
	}
}
