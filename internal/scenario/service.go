package scenario

import (
	"bytes"
	"fmt"
	"time"

	"svssba"
)

// ServiceCheck boots an agreement-as-a-service cluster on the real node
// runtime (chan transport), runs sessions concurrent submissions per
// node, and evaluates the multi-session analogues of the matrix
// invariants: agreement (every session's subset identical on every
// node), validity (subsets carry at least n−t members, values intact),
// and termination (the service quiesces and retires all per-session
// state within the deadline). The cell id is synthetic — the check is
// one deterministic-config cell of the service surface, replayable by
// rerunning with the same arguments.
func ServiceCheck(n int, seed int64, sessions int, deadline time.Duration) []Violation {
	cell := fmt.Sprintf("service/n%d/s%d/seed%d", n, sessions, seed)
	viol := func(invariant, format string, args ...any) Violation {
		return Violation{Cell: cell, Invariant: invariant, Detail: fmt.Sprintf(format, args...)}
	}

	cl, err := svssba.StartService(svssba.ServiceConfig{
		N: n, Seed: seed, Window: sessions,
		DecisionBuffer: 16 * sessions * n,
	})
	if err != nil {
		return []Violation{viol("termination", "start: %v", err)}
	}
	defer cl.Close()
	for i := 1; i <= n; i++ {
		for k := 0; k < sessions; k++ {
			if err := cl.Node(i).Submit([]byte(fmt.Sprintf("n%d-v%d", i, k))); err != nil {
				return []Violation{viol("termination", "node %d submit: %v", i, err)}
			}
		}
	}

	// Termination: queues drain, nothing stays in flight, completed
	// counts converge.
	limit := time.Now().Add(deadline)
	var total int
	for {
		quiet := true
		total = cl.Node(1).Completed()
		for i := 1; i <= n; i++ {
			nd := cl.Node(i)
			if nd.QueueLen() != 0 || nd.InFlight() != 0 || nd.Completed() != total {
				quiet = false
				break
			}
		}
		if quiet {
			break
		}
		if time.Now().After(limit) {
			return []Violation{viol("termination", "service did not quiesce within %v", deadline)}
		}
		time.Sleep(10 * time.Millisecond)
	}

	var out []Violation
	// Each node drains `sessions` own values, one per joined session.
	if total < sessions {
		out = append(out, viol("termination", "completed %d sessions, want >= %d", total, sessions))
	}

	decs := make([]map[uint64]svssba.ServiceDecision, n+1)
	for i := 1; i <= n; i++ {
		decs[i] = make(map[uint64]svssba.ServiceDecision, total)
		for len(decs[i]) < total {
			select {
			case d, ok := <-cl.Node(i).Decisions():
				if !ok {
					return append(out, viol("termination", "node %d: decision stream ended after %d/%d", i, len(decs[i]), total))
				}
				decs[i][d.Session] = d
			case <-time.After(deadline):
				return append(out, viol("termination", "node %d: %d/%d decisions before deadline", i, len(decs[i]), total))
			}
		}
	}

	// Agreement + validity, per session across nodes.
	for sid, ref := range decs[1] {
		if len(ref.Members) < n-cl.T() {
			out = append(out, viol("validity", "session %d: subset %v smaller than n-t=%d", sid, ref.Members, n-cl.T()))
		}
		for i := 2; i <= n; i++ {
			d, ok := decs[i][sid]
			if !ok {
				out = append(out, viol("agreement", "session %d missing on node %d", sid, i))
				continue
			}
			if fmt.Sprint(d.Members) != fmt.Sprint(ref.Members) {
				out = append(out, viol("agreement", "session %d: node %d members %v != node 1 members %v", sid, i, d.Members, ref.Members))
				continue
			}
			for k := range ref.Values {
				if !bytes.Equal(d.Values[k], ref.Values[k]) {
					out = append(out, viol("agreement", "session %d member %d: node %d value differs from node 1", sid, ref.Members[k], i))
				}
			}
		}
	}

	// Retirement: live scopes and protocol state back to zero everywhere.
	limit = time.Now().Add(deadline)
	for {
		clean := true
		for i := 1; i <= n; i++ {
			c, ok := cl.Node(i).Counts()
			if !ok {
				return append(out, viol("termination", "node %d: not a service node", i))
			}
			if c.Live != 0 || c.State.Total() != 0 {
				clean = false
			}
		}
		if clean {
			break
		}
		if time.Now().After(limit) {
			for i := 1; i <= n; i++ {
				c, _ := cl.Node(i).Counts()
				out = append(out, viol("termination", "node %d: state not retired: live=%d stateTotal=%d", i, c.Live, c.State.Total()))
			}
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	return out
}
