// Package core assembles the paper's protocol stack into a per-process
// engine: a Node owns the reliable-broadcast engine (Appendix A), the DMM
// protocol (§3.3), and a routing table that dispatches filtered events to
// the registered protocol layers (MW-SVSS §3.2, SVSS §4, common coin and
// agreement §5).
//
// Message flow on delivery:
//
//	sim message ──> D_i discard (DMM step 4)
//	      │
//	      ├── WRB/RB internal message ──> rb.Engine ──> accept event
//	      │        accept ──> observer hooks (DMM steps 2/3)
//	      │               ──> DMM filter (delay/park, step 5)
//	      │               ──> broadcast handler by tag.Proto
//	      │
//	      └── direct protocol message
//	               ──> DMM filter when payload carries a session
//	               ──> direct handler by payload kind
//
// After every delivery, parked events whose delay condition cleared are
// drained and dispatched in park order.
package core

import (
	"svssba/internal/dmm"
	"svssba/internal/proto"
	"svssba/internal/rb"
	"svssba/internal/sim"
)

// BroadcastHandler consumes an RB-accepted broadcast.
type BroadcastHandler func(ctx sim.Context, origin sim.ProcID, tag proto.Tag, value []byte)

// ObserverHandler inspects an accepted broadcast before filtering (used
// for DMM expectation resolution, which must not be delayed).
type ObserverHandler func(origin sim.ProcID, tag proto.Tag, value []byte)

// DirectHandler consumes a direct protocol message.
type DirectHandler func(ctx sim.Context, m sim.Message)

// InitFunc runs when the process initializes.
type InitFunc func(ctx sim.Context)

// maxProtoNS bounds the broadcast tag namespaces (proto.Proto* ids are
// small consecutive constants), so broadcast routing is an array index.
const maxProtoNS = 16

// Node is the per-process protocol host. It implements sim.Handler and
// the Host interfaces of the protocol packages.
type Node struct {
	id        sim.ProcID
	rbEng     *rb.Engine
	dmmSt     *dmm.DMM
	direct    map[string]DirectHandler
	bcast     [maxProtoNS]BroadcastHandler
	observers [maxProtoNS][]ObserverHandler
	inits     []InitFunc

	// One-slot dispatch cache: deliveries cluster by kind, and kind
	// strings are constants, so the == is usually a pointer compare.
	lastKind    string
	lastHandler DirectHandler

	retired bool

	sendTamper  SendTamper
	bcastTamper BcastTamper

	// Wire v2 burst state (see wire2.go). packBuf is indexed by
	// destination-1 and packOrder preserves first-send order so flushes
	// are deterministic.
	wire2       bool
	inBurst     bool
	packOrder   []sim.ProcID
	packBuf     [][]sim.Payload
	bunTags     []proto.Tag
	bunVals     [][]byte
	bunSeq      uint32
	echoSeen    map[echoKey]struct{}
	echoDeduped uint64

	// accTrace observes every logically accepted broadcast (tracing).
	// Nil when observability is off — the hot path pays one nil check.
	accTrace func(origin sim.ProcID, tag proto.Tag, size int)
}

var _ sim.Handler = (*Node)(nil)

// NewNode creates a protocol host for process id. onShun observes D_i
// additions (may be nil).
func NewNode(id sim.ProcID, onShun dmm.ShunFunc) *Node {
	n := &Node{
		id:     id,
		direct: make(map[string]DirectHandler),
	}
	n.dmmSt = dmm.New(id, onShun)
	n.rbEng = rb.New(id, n.onRBAccept)
	return n
}

// ID implements sim.Handler.
func (n *Node) ID() sim.ProcID { return n.id }

// Self implements the protocol Host interfaces.
func (n *Node) Self() sim.ProcID { return n.id }

// DMM returns the process's detection and message management state.
func (n *Node) DMM() *dmm.DMM { return n.dmmSt }

// Broadcast reliably broadcasts value under tag (origin = this process).
func (n *Node) Broadcast(ctx sim.Context, tag proto.Tag, value []byte) {
	if n.bcastTamper != nil {
		out, keep := n.bcastTamper(ctx, tag, value)
		if !keep {
			return
		}
		value = out
	}
	if n.wire2 && n.inBurst {
		n.bundleAdd(tag, value)
		return
	}
	n.rbEng.Broadcast(n.wrap(ctx), tag, value)
}

// HandleDirect routes direct messages of the given payload kind.
func (n *Node) HandleDirect(kind string, h DirectHandler) {
	n.direct[kind] = h
	n.lastKind, n.lastHandler = "", nil
}

// HandleBroadcast routes accepted broadcasts of the given tag namespace.
func (n *Node) HandleBroadcast(protoNS uint8, h BroadcastHandler) {
	n.bcast[protoNS] = h
}

// ObserveBroadcast registers a pre-filter observer for a tag namespace.
func (n *Node) ObserveBroadcast(protoNS uint8, h ObserverHandler) {
	n.observers[protoNS] = append(n.observers[protoNS], h)
}

// AddInit registers an initialization function (e.g. start dealing).
func (n *Node) AddInit(f InitFunc) { n.inits = append(n.inits, f) }

// Init implements sim.Handler.
func (n *Node) Init(ctx sim.Context) {
	raw := ctx
	ctx = n.wrap(ctx)
	if n.wire2 {
		n.inBurst = true
	}
	for _, f := range n.inits {
		f(ctx)
	}
	n.drain(ctx)
	if n.wire2 {
		n.flushBurst(raw, ctx)
		n.inBurst = false
	}
}

// Retire drops the node's routing-independent protocol state — every
// RB/WRB instance and all DMM bookkeeping — and gates further
// deliveries. Call only when the process is done participating (the
// agreement decided and halted): from then on inbound traffic can no
// longer affect any outcome, so dropping it at the door keeps a
// long-lived node's memory bounded instead of growing with every echo
// that trickles in after the decision.
func (n *Node) Retire() {
	n.retired = true
	n.rbEng.Reset()
	n.dmmSt.Reset()
}

// Retired reports whether Retire ran.
func (n *Node) Retired() bool { return n.retired }

// RB exposes the reliable-broadcast engine (state accounting).
func (n *Node) RB() *rb.Engine { return n.rbEng }

// Deliver implements sim.Handler.
func (n *Node) Deliver(ctx sim.Context, m sim.Message) {
	if n.retired {
		return
	}
	raw := ctx
	ctx = n.wrap(ctx)
	// DMM step 4: any message sent by a process in D_i is discarded.
	if n.dmmSt.IsFaulty(m.From) {
		return
	}
	if !n.wire2 {
		if n.rbEng.Handle(ctx, m) {
			n.drain(ctx)
			return
		}
		n.dispatchDirect(ctx, m)
		n.drain(ctx)
		return
	}
	n.inBurst = true
	if pk, ok := m.Payload.(proto.Pack); ok {
		n.deliverPack(ctx, m, pk)
	} else if n.rbEng.Handle(ctx, m) {
		n.drain(ctx)
	} else {
		n.dispatchDirect(ctx, m)
		n.drain(ctx)
	}
	n.flushBurst(raw, ctx)
	n.inBurst = false
}

func (n *Node) dispatchDirect(ctx sim.Context, m sim.Message) {
	s, sessioned := m.Payload.(dmm.Sessioned)
	if !sessioned {
		n.deliverDirect(ctx, m)
		return
	}
	ev := dmm.Event{
		Class: dmm.ClassDirect,
		From:  m.From,
		Ref:   s.SessionRef(),
		Msg:   m,
	}
	if n.dmmSt.Filter(ev) == dmm.Forward {
		n.deliverDirect(ctx, m)
	}
}

func (n *Node) deliverDirect(ctx sim.Context, m sim.Message) {
	kind := m.Payload.Kind()
	if kind == n.lastKind && n.lastHandler != nil {
		n.lastHandler(ctx, m)
		return
	}
	if h, ok := n.direct[kind]; ok {
		n.lastKind, n.lastHandler = kind, h
		h(ctx, m)
	}
}

// onRBAccept receives accepted broadcasts from the RB engine.
func (n *Node) onRBAccept(ctx sim.Context, a rb.Accept) {
	if a.Origin < 1 || int(a.Origin) > ctx.N() {
		// Unreachable with n > 3t: accepting requires n−t matching
		// echoes, honest processes never echo an out-of-range origin
		// (the WRB dealer check fails for it), and t Byzantine echoes
		// cannot meet the threshold. Guarded anyway — the dense layers
		// index per-origin state by process id.
		return
	}
	if a.Tag.Proto == proto.ProtoBundle {
		if !n.wire2 {
			return
		}
		items, err := proto.DecodeBundle(a.Value)
		if err != nil {
			// Corrupt bundle body: drop it whole. Only its Byzantine
			// origin loses messages.
			return
		}
		for _, it := range items {
			n.acceptOne(ctx, a.Origin, it.Tag, it.Value)
		}
		return
	}
	n.acceptOne(ctx, a.Origin, a.Tag, a.Value)
}

// SetAcceptTrace registers an observer for logically accepted
// broadcasts (nil to clear). Observation-only: it runs before routing
// and must not send or mutate protocol state.
func (n *Node) SetAcceptTrace(fn func(origin sim.ProcID, tag proto.Tag, size int)) {
	n.accTrace = fn
}

// acceptOne routes one logical accepted broadcast — the v1 accept body,
// applied per bundle item under wire v2.
func (n *Node) acceptOne(ctx sim.Context, origin sim.ProcID, tag proto.Tag, value []byte) {
	if n.accTrace != nil {
		n.accTrace(origin, tag, len(value))
	}
	// Re-checked per item: an earlier bundle item may have shunned the
	// origin.
	if n.dmmSt.IsFaulty(origin) {
		return
	}
	if tag.Proto >= maxProtoNS {
		// No layer can be registered for this namespace; a crafted tag
		// must not index past the routing tables.
		return
	}
	// Expectation resolution (DMM steps 2/3) runs before filtering.
	for _, obs := range n.observers[tag.Proto] {
		obs(origin, tag, value)
	}
	if tag.Session.IsZero() {
		n.deliverBcast(ctx, origin, tag, value)
		return
	}
	ev := dmm.Event{
		Class: dmm.ClassBroadcast,
		From:  origin,
		Ref:   proto.MWID{Session: tag.Session, Key: tag.MW},
		Tag:   tag,
		Value: value,
	}
	if n.dmmSt.Filter(ev) == dmm.Forward {
		n.deliverBcast(ctx, origin, tag, value)
	}
}

func (n *Node) deliverBcast(ctx sim.Context, origin sim.ProcID, tag proto.Tag, value []byte) {
	if tag.Proto >= maxProtoNS {
		return
	}
	if h := n.bcast[tag.Proto]; h != nil {
		h(ctx, origin, tag, value)
	}
}

// drain dispatches parked events whose delay cleared; dispatching may
// clear more, so it loops to a fixed point.
func (n *Node) drain(ctx sim.Context) {
	for {
		ready := n.dmmSt.TakeReady()
		if len(ready) == 0 {
			return
		}
		for _, ev := range ready {
			switch ev.Class {
			case dmm.ClassDirect:
				n.deliverDirect(ctx, ev.Msg)
			case dmm.ClassBroadcast:
				n.deliverBcast(ctx, ev.From, ev.Tag, ev.Value)
			}
		}
	}
}
