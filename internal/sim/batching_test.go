package sim

import (
	"encoding/binary"
	"fmt"
	"reflect"
	"testing"
	"time"
)

// burstProc sends k same-step payloads to every peer on Init and echoes
// one payload back per delivery for a few hops — a workload where
// coalescing is visible (Init steps batch k payloads per destination).
type burstProc struct {
	id ProcID
	n  int
	k  int
}

func (p *burstProc) ID() ProcID { return p.id }

func (p *burstProc) Init(ctx Context) {
	for q := 1; q <= p.n; q++ {
		if ProcID(q) == p.id {
			continue
		}
		for i := 0; i < p.k; i++ {
			ctx.Send(ProcID(q), parityPayload{kind: "burst/seed", size: 8, hops: 2})
		}
	}
}

func (p *burstProc) Deliver(ctx Context, m Message) {
	pl := m.Payload.(parityPayload)
	if pl.hops == 0 {
		return
	}
	ctx.Send(m.From, parityPayload{kind: "burst/echo", size: 4, hops: pl.hops - 1})
}

func runBurstNetwork(t *testing.T, batching bool) *Stats {
	t.Helper()
	const n, tf, k = 4, 1, 3
	nw := NewNetwork(n, tf, 7, WithBatching(batching))
	for p := 1; p <= n; p++ {
		if err := nw.Register(&burstProc{id: ProcID(p), n: n, k: k}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nw.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	return nw.Stats()
}

// TestNetworkBatchingStatsModel checks the core batching contract on the
// deterministic runtime: toggling batching changes only the Frames
// counter — logical traffic, delivery counts and scheduling are
// byte-identical — and the batched frame count reflects per-step
// per-destination coalescing.
func TestNetworkBatchingStatsModel(t *testing.T) {
	off := runBurstNetwork(t, false)
	on := runBurstNetwork(t, true)

	if off.Frames != off.Sent-off.Dropped {
		t.Fatalf("unbatched frames %d, want sent-dropped %d", off.Frames, off.Sent-off.Dropped)
	}
	offNoFrames, onNoFrames := off.Clone(), on.Clone()
	offNoFrames.Frames, onNoFrames.Frames = 0, 0
	if !reflect.DeepEqual(offNoFrames, onNoFrames) {
		t.Fatalf("batching changed logical stats:\n off %+v\n on  %+v", off, on)
	}
	// Each Init step sends 3 payloads to each of 3 peers: 9 frames
	// unbatched, 3 batched. Echo steps send one payload each.
	if on.Frames >= off.Frames {
		t.Fatalf("batched frames %d not below unbatched %d", on.Frames, off.Frames)
	}
	wantSaved := int64(4 * 3 * 2) // 4 Init steps × 3 destinations × (3-1) coalesced payloads
	if off.Frames-on.Frames != wantSaved {
		t.Fatalf("saved %d frames, want %d", off.Frames-on.Frames, wantSaved)
	}
}

// fakeBatchCodec is a hermetic Codec+batchCodec for parityPayload-style
// messages, so the LiveNet batch path can be tested without importing
// the real proto codec (which would cycle).
type fakeBatchCodec struct{}

func encodeFake(dst []byte, p Payload) []byte {
	pl := p.(parityPayload)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(pl.kind)))
	dst = append(dst, pl.kind...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(pl.size))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(pl.hops))
	return dst
}

func decodeFake(b []byte) (Payload, []byte, error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("fake: short")
	}
	kl := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if len(b) < kl+8 {
		return nil, nil, fmt.Errorf("fake: short")
	}
	p := parityPayload{
		kind: string(b[:kl]),
		size: int(binary.LittleEndian.Uint32(b[kl:])),
		hops: int(binary.LittleEndian.Uint32(b[kl+4:])),
	}
	return p, b[kl+8:], nil
}

func (fakeBatchCodec) Encode(p Payload) ([]byte, error) { return encodeFake(nil, p), nil }

func (fakeBatchCodec) Decode(b []byte) (Payload, error) {
	p, rest, err := decodeFake(b)
	if err == nil && len(rest) != 0 {
		err = fmt.Errorf("fake: trailing bytes")
	}
	return p, err
}

func (fakeBatchCodec) AppendEncodeBatch(dst []byte, ps []Payload) ([]byte, error) {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ps)))
	for _, p := range ps {
		dst = encodeFake(dst, p)
	}
	return dst, nil
}

func (fakeBatchCodec) DecodeBatch(b []byte) ([]Payload, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("fake: short")
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	out := make([]Payload, 0, n)
	for i := 0; i < n; i++ {
		p, rest, err := decodeFake(b)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
		b = rest
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("fake: trailing bytes")
	}
	return out, nil
}

// TestLiveNetBatching runs the burst workload on the concurrent runtime
// with the coalescing outbox and a batch-capable codec: logical totals
// must match the deterministic Network run, frames must come in below
// payloads, and the codec round trip must preserve every message.
func TestLiveNetBatching(t *testing.T) {
	want := runBurstNetwork(t, true)

	const n, tf, k = 4, 1, 3
	ln := NewLiveNet(n, tf, 7,
		WithMaxDelay(100*time.Microsecond),
		WithLiveBatching(true),
		WithCodec(fakeBatchCodec{}))
	for p := 1; p <= n; p++ {
		if err := ln.Register(&burstProc{id: ProcID(p), n: n, k: k}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ln.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := ln.Stats()
		if st.Sent == want.Sent && st.Delivered == want.Sent {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("live run did not quiesce: %+v (want sent %d)", st, want.Sent)
		}
		time.Sleep(time.Millisecond)
	}
	ln.Stop()
	if errs := ln.Errs(); len(errs) > 0 {
		t.Fatalf("live codec errors: %v", errs[0])
	}
	st := ln.Stats()
	if !reflect.DeepEqual(st.SentByKind, want.SentByKind) || !reflect.DeepEqual(st.BytesByKind, want.BytesByKind) {
		t.Fatalf("logical stats diverge from Network run:\n live %+v\n want %+v", st, want)
	}
	if st.Frames >= st.Sent {
		t.Fatalf("live frames %d not below payloads %d", st.Frames, st.Sent)
	}
	// The burst workload coalesces deterministically per step even under
	// real concurrency: Init ships 3 payloads per destination per frame.
	if st.Frames != want.Frames {
		t.Fatalf("live frames %d, want %d", st.Frames, want.Frames)
	}
}
