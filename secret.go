package svssba

import (
	"fmt"

	"svssba/internal/adversary"
	"svssba/internal/core"
	"svssba/internal/field"
	"svssba/internal/mwsvss"
	"svssba/internal/proto"
	"svssba/internal/sim"
	"svssba/internal/svss"
)

// SVSSConfig describes a standalone shunning-VSS run: one dealer shares
// a secret, everyone reconstructs.
type SVSSConfig struct {
	N, T   int
	Seed   int64
	Dealer int
	Secret uint64
	Faults []Fault
	// MaxSteps bounds the run (defaults to 200M deliveries).
	MaxSteps int
	// Wire selects the wire variant ("v1" default, "v2" burst
	// coalescing); see Config.Wire.
	Wire string
}

// SecretValue is one process's reconstruction output: a value or ⊥.
type SecretValue struct {
	Value  uint64
	Bottom bool
}

// String implements fmt.Stringer.
func (v SecretValue) String() string {
	if v.Bottom {
		return "⊥"
	}
	return fmt.Sprintf("%d", v.Value)
}

// SVSSResult reports a standalone SVSS run.
type SVSSResult struct {
	// Outputs maps each process that completed reconstruction to its
	// output.
	Outputs map[int]SecretValue
	// ShareCompleted lists processes that completed the share phase.
	ShareCompleted []int
	// Shuns lists D_i additions observed.
	Shuns []Shun
	// Messages and Bytes count all traffic.
	Messages, Bytes int64
	// TimedOut reports that MaxSteps was exhausted.
	TimedOut bool
}

// RunSVSS executes one share+reconstruct session.
func RunSVSS(cfg SVSSConfig) (*SVSSResult, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("svssba: need at least 2 processes")
	}
	if cfg.T == 0 {
		cfg.T = (cfg.N - 1) / 3
	}
	if cfg.Dealer == 0 {
		cfg.Dealer = 1
	}
	if cfg.Dealer < 1 || cfg.Dealer > cfg.N {
		return nil, fmt.Errorf("svssba: dealer %d out of range", cfg.Dealer)
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 200_000_000
	}
	switch cfg.Wire {
	case "":
		cfg.Wire = "v1"
	case "v1", "v2":
	default:
		return nil, fmt.Errorf("svssba: unknown wire variant %q", cfg.Wire)
	}

	nw := sim.NewNetwork(cfg.N, cfg.T, cfg.Seed)
	res := &SVSSResult{Outputs: make(map[int]SecretValue)}
	sid := proto.SessionID{Dealer: sim.ProcID(cfg.Dealer), Kind: proto.KindApp, Round: 1}

	faults := make(map[int]FaultKind, len(cfg.Faults))
	for _, f := range cfg.Faults {
		if f.Proc < 1 || f.Proc > cfg.N {
			return nil, fmt.Errorf("svssba: fault on unknown process %d", f.Proc)
		}
		faults[f.Proc] = f.Kind
	}
	honest := make([]int, 0, cfg.N)
	for i := 1; i <= cfg.N; i++ {
		if k, bad := faults[i]; !bad || k == "" {
			honest = append(honest, i)
		}
	}

	stacks := make(map[int]*core.Stack, cfg.N)
	shareDone := make(map[int]bool, cfg.N)
	for i := 1; i <= cfg.N; i++ {
		pid := i
		st := core.NewStack(sim.ProcID(i), func(j sim.ProcID, _ proto.MWID) {
			res.Shuns = append(res.Shuns, Shun{By: pid, Detected: int(j)})
		})
		st.ConsumeSVSS(proto.KindApp, core.SVSSConsumer{
			ShareComplete: func(_ sim.Context, _ proto.SessionID) {
				shareDone[pid] = true
			},
			ReconComplete: func(_ sim.Context, _ proto.SessionID, _ int, out svss.Output) {
				res.Outputs[pid] = SecretValue{Value: out.Value.Uint64(), Bottom: out.Bottom}
			},
		})
		if cfg.Wire == "v2" {
			st.EnableWireV2()
		}
		if kind, bad := faults[i]; bad && kind != FaultCrash {
			if b, ok := behaviorFor(kind, cfg.T); ok {
				adversary.Apply(st, b)
			}
		}
		stacks[pid] = st
		if err := nw.Register(st.Node); err != nil {
			return nil, err
		}
	}
	for _, f := range cfg.Faults {
		if f.Kind == FaultCrash {
			nw.Crash(sim.ProcID(f.Proc))
		}
	}

	dealer := stacks[cfg.Dealer]
	dealer.Node.AddInit(func(ctx sim.Context) {
		// The dealer role and fresh session make this error-free.
		_ = dealer.SVSS.Share(ctx, sid, field.New(cfg.Secret))
	})

	honestShared := func() bool {
		for _, i := range honest {
			if !shareDone[i] {
				return false
			}
		}
		return true
	}
	if _, err := nw.RunUntil(honestShared, cfg.MaxSteps); err != nil {
		var lim sim.ErrStepLimit
		if !asStepLimit(err, &lim) {
			return nil, err
		}
		res.TimedOut = true
	}
	if honestShared() {
		for i := 1; i <= cfg.N; i++ {
			pid := i
			if faults[pid] == FaultCrash {
				continue
			}
			st := stacks[pid]
			if err := nw.Inject(sim.ProcID(pid), func(ctx sim.Context) {
				st.SVSS.Reconstruct(ctx, sid)
			}); err != nil {
				return nil, err
			}
		}
		honestOut := func() bool {
			for _, i := range honest {
				if _, ok := res.Outputs[i]; !ok {
					return false
				}
			}
			return true
		}
		if _, err := nw.RunUntil(honestOut, cfg.MaxSteps); err != nil {
			var lim sim.ErrStepLimit
			if !asStepLimit(err, &lim) {
				return nil, err
			}
			res.TimedOut = true
		}
		// Drain remaining traffic so late detections land.
		if _, err := nw.Run(cfg.MaxSteps); err != nil {
			var lim sim.ErrStepLimit
			if !asStepLimit(err, &lim) {
				return nil, err
			}
			res.TimedOut = true
		}
	}
	for i := 1; i <= cfg.N; i++ {
		if shareDone[i] {
			res.ShareCompleted = append(res.ShareCompleted, i)
		}
	}
	st := nw.Stats()
	res.Messages = st.Sent
	res.Bytes = st.TotalBytes()
	return res, nil
}

// CoinConfig describes a run of consecutive common-coin rounds.
type CoinConfig struct {
	N, T   int
	Seed   int64
	Rounds int
	Faults []Fault
	// MaxSteps bounds each round (defaults to 200M deliveries).
	MaxSteps int
	// Wire selects the wire variant ("v1" default, "v2" burst
	// coalescing); see Config.Wire.
	Wire string
	// CoinBatch > 0 switches coin rounds 1..CoinBatch to one batched
	// dealing per process (see Config.CoinBatch); later rounds fall back
	// to classic per-round dealing.
	CoinBatch int
}

// CoinRound reports one coin invocation.
type CoinRound struct {
	// Bits maps process id to its coin output.
	Bits map[int]int
	// Agreed reports whether all honest outputs coincide; Value is the
	// common bit when they do.
	Agreed bool
	Value  int
}

// CoinResult reports a multi-round coin run.
type CoinResult struct {
	RoundResults    []CoinRound
	Messages, Bytes int64
	Shuns           []Shun
	TimedOut        bool
	// SlotReuses sums the one-shot-handout violations every process's
	// batch supply observed (CoinBatch > 0 only; must be zero).
	SlotReuses uint64
}

// RunCoin executes cfg.Rounds sequential common-coin invocations.
func RunCoin(cfg CoinConfig) (*CoinResult, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("svssba: need at least 2 processes")
	}
	if cfg.T == 0 {
		cfg.T = (cfg.N - 1) / 3
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 1
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 200_000_000
	}
	switch cfg.Wire {
	case "":
		cfg.Wire = "v1"
	case "v1", "v2":
	default:
		return nil, fmt.Errorf("svssba: unknown wire variant %q", cfg.Wire)
	}
	if cfg.CoinBatch < 0 {
		return nil, fmt.Errorf("svssba: negative CoinBatch %d", cfg.CoinBatch)
	}
	if cfg.CoinBatch*cfg.N > mwsvss.MaxBatchSlots {
		return nil, fmt.Errorf("svssba: CoinBatch %d exceeds %d slots at n=%d",
			cfg.CoinBatch, mwsvss.MaxBatchSlots, cfg.N)
	}

	nw := sim.NewNetwork(cfg.N, cfg.T, cfg.Seed)
	res := &CoinResult{}
	bits := make(map[uint64]map[int]int)

	faults := make(map[int]FaultKind, len(cfg.Faults))
	for _, f := range cfg.Faults {
		if f.Proc < 1 || f.Proc > cfg.N {
			return nil, fmt.Errorf("svssba: fault on unknown process %d", f.Proc)
		}
		faults[f.Proc] = f.Kind
	}
	honest := make([]int, 0, cfg.N)
	for i := 1; i <= cfg.N; i++ {
		if _, bad := faults[i]; !bad {
			honest = append(honest, i)
		}
	}

	stacks := make(map[int]*core.Stack, cfg.N)
	for i := 1; i <= cfg.N; i++ {
		pid := i
		st := core.NewStack(sim.ProcID(i), func(j sim.ProcID, _ proto.MWID) {
			res.Shuns = append(res.Shuns, Shun{By: pid, Detected: int(j)})
		})
		st.OnCoin(func(_ sim.Context, round uint64, bit int) {
			m, ok := bits[round]
			if !ok {
				m = make(map[int]int)
				bits[round] = m
			}
			m[pid] = bit
		})
		if cfg.Wire == "v2" {
			st.EnableWireV2()
		}
		if cfg.CoinBatch > 0 {
			st.EnableCoinBatch(cfg.CoinBatch)
		}
		if kind, bad := faults[i]; bad && kind != FaultCrash {
			if b, ok := behaviorFor(kind, cfg.T); ok {
				adversary.Apply(st, b)
			}
		}
		stacks[pid] = st
		if err := nw.Register(st.Node); err != nil {
			return nil, err
		}
	}
	for _, f := range cfg.Faults {
		if f.Kind == FaultCrash {
			nw.Crash(sim.ProcID(f.Proc))
		}
	}

	for r := uint64(1); r <= uint64(cfg.Rounds); r++ {
		round := r
		for _, i := range honest {
			st := stacks[i]
			if err := nw.Inject(sim.ProcID(i), func(ctx sim.Context) {
				st.Coin.Start(ctx, round)
			}); err != nil {
				return nil, err
			}
		}
		done := func() bool {
			m := bits[round]
			for _, i := range honest {
				if _, ok := m[i]; !ok {
					return false
				}
			}
			return true
		}
		if _, err := nw.RunUntil(done, cfg.MaxSteps); err != nil {
			var lim sim.ErrStepLimit
			if !asStepLimit(err, &lim) {
				return nil, err
			}
			res.TimedOut = true
			break
		}
		if !done() {
			res.TimedOut = true
			break
		}
		cr := CoinRound{Bits: make(map[int]int), Agreed: true}
		m := bits[round]
		for pid, b := range m {
			cr.Bits[pid] = b
		}
		first := m[honest[0]]
		cr.Value = first
		for _, i := range honest {
			if m[i] != first {
				cr.Agreed = false
			}
		}
		res.RoundResults = append(res.RoundResults, cr)
	}
	for _, st := range stacks {
		res.SlotReuses += st.Coin.SlotReuses()
	}
	st := nw.Stats()
	res.Messages = st.Sent
	res.Bytes = st.TotalBytes()
	return res, nil
}
