package core

import (
	"svssba/internal/aba"
	"svssba/internal/coin"
	"svssba/internal/mwsvss"
	"svssba/internal/proto"
	"svssba/internal/rb"
	"svssba/internal/sim"
	"svssba/internal/svss"
)

// AttachMWSVSS creates a standalone MW-SVSS engine hosted on n and wires
// its direct-message, broadcast and observer routes. Use NewStack for the
// full protocol stack.
func AttachMWSVSS(n *Node, cb mwsvss.Callbacks) *mwsvss.Engine {
	eng := mwsvss.New(n, cb)
	for _, kind := range []string{
		mwsvss.KindDealVals,
		mwsvss.KindDealPoly,
		mwsvss.KindDealMod,
		mwsvss.KindEcho,
		mwsvss.KindModValue,
	} {
		n.HandleDirect(kind, eng.OnMessage)
	}
	n.HandleBroadcast(proto.ProtoMW, eng.OnBroadcast)
	n.ObserveBroadcast(proto.ProtoMW, eng.ObserveBroadcast)
	return eng
}

// SVSSConsumer receives completion events for SVSS sessions of one kind.
// ReconComplete fires once per reconstructed batch slot (slot 0 for
// classic single-secret sessions).
type SVSSConsumer struct {
	ShareComplete func(ctx sim.Context, sid proto.SessionID)
	ReconComplete func(ctx sim.Context, sid proto.SessionID, slot int, out svss.Output)
}

// MWConsumer receives completion events for standalone (KindMW) MW-SVSS
// sessions, per reconstructed batch slot.
type MWConsumer struct {
	ShareComplete func(ctx sim.Context, id proto.MWID)
	ReconComplete func(ctx sim.Context, id proto.MWID, slot int, out mwsvss.Output)
}

// Stack is the full per-process protocol stack of the paper: Node (RB +
// DMM + routing), the MW-SVSS engine, and the SVSS engine. The coin and
// agreement layers attach on top via ConsumeSVSS.
type Stack struct {
	Node *Node
	MW   *mwsvss.Engine
	SVSS *svss.Engine
	Coin *coin.Engine
	ABA  *aba.Engine

	mwConsumer    MWConsumer
	svssConsumers map[proto.SessionKind]SVSSConsumer
	onDecide      func(ctx sim.Context, value int)
	onCoin        func(ctx sim.Context, round uint64, bit int)
	hooks         *TraceHooks
}

// TraceHooks observes protocol round transitions across the stack.
// All hooks are optional (nil fields are skipped) and observation-only:
// they must not send, and they run synchronously on the delivery path,
// so they must be cheap. With no hooks installed every call site pays a
// single nil check — the stack's behavior and message schedule are
// identical either way (pinned by the obs parity test).
type TraceHooks struct {
	// RBAccept fires per logically accepted broadcast (per bundle item
	// under wire v2), before DMM filtering and routing.
	RBAccept func(origin sim.ProcID, tag proto.Tag, size int)
	// MWShare fires when an MW-SVSS sharing completes (any kind,
	// including the SVSS-embedded sessions).
	MWShare func(id proto.MWID)
	// MWRecon fires when an MW-SVSS reconstruction completes.
	MWRecon func(id proto.MWID)
	// Coin fires when a common-coin flip resolves locally.
	Coin func(round uint64, bit int)
	// ABARound fires when the agreement engine enters a round.
	ABARound func(round uint64)
	// Decide fires on the local agreement decision.
	Decide func(value int)
}

// SetTraceHooks installs (or, with nil, removes) trace hooks on the
// stack. Call before the run starts.
func (st *Stack) SetTraceHooks(h *TraceHooks) {
	st.hooks = h
	if h == nil {
		st.Node.SetAcceptTrace(nil)
		st.ABA.OnRound(nil)
		return
	}
	st.Node.SetAcceptTrace(h.RBAccept)
	st.ABA.OnRound(h.ABARound)
}

// NewStack builds the protocol stack for process id. onShun may be nil.
func NewStack(id sim.ProcID, onShun func(detected sim.ProcID, session proto.MWID)) *Stack {
	st := &Stack{
		Node:          NewNode(id, onShun),
		svssConsumers: make(map[proto.SessionKind]SVSSConsumer),
	}

	st.MW = AttachMWSVSS(st.Node, mwsvss.Callbacks{
		ShareComplete: func(ctx sim.Context, mid proto.MWID) {
			if st.hooks != nil && st.hooks.MWShare != nil {
				st.hooks.MWShare(mid)
			}
			if mid.Session.Kind == proto.KindMW {
				if st.mwConsumer.ShareComplete != nil {
					st.mwConsumer.ShareComplete(ctx, mid)
				}
				return
			}
			st.SVSS.OnMWShareComplete(ctx, mid)
		},
		ReconstructComplete: func(ctx sim.Context, mid proto.MWID, slot int, out mwsvss.Output) {
			if st.hooks != nil && st.hooks.MWRecon != nil {
				st.hooks.MWRecon(mid)
			}
			if mid.Session.Kind == proto.KindMW {
				if st.mwConsumer.ReconComplete != nil {
					st.mwConsumer.ReconComplete(ctx, mid, slot, out)
				}
				return
			}
			st.SVSS.OnMWReconComplete(ctx, mid, slot, out)
		},
	})

	st.SVSS = svss.New(st.Node, st.MW, svss.Callbacks{
		ShareComplete: func(ctx sim.Context, sid proto.SessionID) {
			if c, ok := st.svssConsumers[sid.Kind]; ok && c.ShareComplete != nil {
				c.ShareComplete(ctx, sid)
			}
		},
		ReconstructComplete: func(ctx sim.Context, sid proto.SessionID, slot int, out svss.Output) {
			if c, ok := st.svssConsumers[sid.Kind]; ok && c.ReconComplete != nil {
				c.ReconComplete(ctx, sid, slot, out)
			}
		},
	})
	st.Node.HandleDirect(svss.KindDeal, st.SVSS.OnMessage)
	st.Node.HandleBroadcast(proto.ProtoSVSS, st.SVSS.OnBroadcast)

	// Common coin (§5) over SVSS, and binary agreement over the coin.
	st.Coin = coin.New(st.Node, st.SVSS, func(ctx sim.Context, round uint64, bit int) {
		if st.hooks != nil && st.hooks.Coin != nil {
			st.hooks.Coin(round, bit)
		}
		if st.onCoin != nil {
			st.onCoin(ctx, round, bit)
		}
		st.ABA.OnCoin(ctx, round, bit)
	})
	st.ABA = aba.New(id, st.Coin, func(ctx sim.Context, v int) {
		if st.hooks != nil && st.hooks.Decide != nil {
			st.hooks.Decide(v)
		}
		if st.onDecide != nil {
			st.onDecide(ctx, v)
		}
	})
	st.Node.HandleBroadcast(proto.ProtoCoin, st.Coin.OnBroadcast)
	st.Node.HandleBroadcast(proto.ProtoGather, st.Coin.Gather().OnBroadcast)
	st.ConsumeSVSS(proto.KindCoin, SVSSConsumer{
		ShareComplete: st.Coin.OnSVSSShareComplete,
		ReconComplete: st.Coin.OnSVSSReconComplete,
	})
	for _, kind := range []string{aba.KindBVal, aba.KindAux, aba.KindConf, aba.KindDecide} {
		st.Node.HandleDirect(kind, st.ABA.OnMessage)
	}
	return st
}

// OnDecide registers an observer for the local agreement decision.
func (st *Stack) OnDecide(fn func(ctx sim.Context, value int)) { st.onDecide = fn }

// OnCoin registers an observer for local coin outputs.
func (st *Stack) OnCoin(fn func(ctx sim.Context, round uint64, bit int)) { st.onCoin = fn }

// NewCodec returns a codec covering every protocol message in the stack
// (used by the live runtime and the codec round-trip tests).
func NewCodec() *proto.Codec {
	c := proto.NewCodec()
	rb.RegisterCodec(c)
	mwsvss.RegisterCodec(c)
	svss.RegisterCodec(c)
	aba.RegisterCodec(c)
	proto.RegisterPackCodec(c)
	proto.RegisterScopedCodec(c)
	return c
}

// EnableWireV2 switches the stack's node to burst-coalesced traffic
// (wire variant v2). Call before the run starts; all processes of a run
// must agree on the variant.
func (st *Stack) EnableWireV2() { st.Node.EnableWireV2() }

// EnableCoinBatch switches coin rounds 1..rounds to the batched dealing
// mode: each process deals one rounds*n-secret SVSS session instead of
// rounds separate n-session dealing storms. Call before the run starts;
// all processes of a run must agree on the round count.
func (st *Stack) EnableCoinBatch(rounds int) { st.Coin.EnableSelfBatch(rounds) }

// StateCounts is a snapshot of the stack's live protocol state: per
// engine, the number of live instances and (where slab-allocated) the
// slab's high-water slot count. Retirement tests assert these return
// to baseline; operators can watch them on long-lived nodes.
type StateCounts struct {
	RBInstances, RBSlab   int
	WRBInstances, WRBSlab int
	MWInstances, MWSlab   int
	SVSSSessions, SVSSlab int
	GatherRounds          int
	ABARounds             int
	DMMPending, DMMParked int

	// Cumulative creation counters (never reset, unlike the live counts
	// above): how many instances each layer ever opened. The denominators
	// of the per-instance message-complexity report.
	RBCreated, WRBCreated, MWCreated, SVSSCreated uint64
}

// Add accumulates o into c (used to sum counts across the scoped
// stacks of a service-mode node).
func (c *StateCounts) Add(o StateCounts) {
	c.RBInstances += o.RBInstances
	c.RBSlab += o.RBSlab
	c.WRBInstances += o.WRBInstances
	c.WRBSlab += o.WRBSlab
	c.MWInstances += o.MWInstances
	c.MWSlab += o.MWSlab
	c.SVSSSessions += o.SVSSSessions
	c.SVSSlab += o.SVSSlab
	c.GatherRounds += o.GatherRounds
	c.ABARounds += o.ABARounds
	c.DMMPending += o.DMMPending
	c.DMMParked += o.DMMParked
	c.RBCreated += o.RBCreated
	c.WRBCreated += o.WRBCreated
	c.MWCreated += o.MWCreated
	c.SVSSCreated += o.SVSSCreated
}

// Total sums the live-instance counts (slab capacities excluded).
func (c StateCounts) Total() int {
	return c.RBInstances + c.WRBInstances + c.MWInstances + c.SVSSSessions +
		c.GatherRounds + c.ABARounds + c.DMMPending + c.DMMParked
}

// StateCounts snapshots the stack's live protocol state.
func (st *Stack) StateCounts() StateCounts {
	rb := st.Node.RB()
	return StateCounts{
		RBInstances: rb.Live(), RBSlab: rb.SlabCap(),
		WRBInstances: rb.Weak().Live(), WRBSlab: rb.Weak().SlabCap(),
		MWInstances: st.MW.Live(), MWSlab: st.MW.SlabCap(),
		SVSSSessions: st.SVSS.Live(), SVSSlab: st.SVSS.SlabCap(),
		GatherRounds: st.Coin.Gather().Rounds(),
		ABARounds:    st.ABA.Rounds(),
		DMMPending:   st.Node.DMM().PendingCount(),
		DMMParked:    st.Node.DMM().ParkedCount(),
		RBCreated:    rb.Created(),
		WRBCreated:   rb.Weak().Created(),
		MWCreated:    st.MW.Created(),
		SVSSCreated:  st.SVSS.Created(),
	}
}

// Retire releases the stack's interned ids, instance slabs and round
// state across every layer — RB/WRB, MW-SVSS, SVSS, coin, gather, ABA
// vote records and the DMM — keeping only the agreement decision, and
// gates further deliveries at the node.
//
// Safe only once the local agreement halted (ABA received n−t matching
// DECIDEs): by then at least n−2t ≥ t+1 honest processes have decided
// and broadcast DECIDE, so every honest process decides through the
// DECIDE amplification path without needing anything further from this
// one. The deterministic simulator never calls this (runs there are
// pure functions of the seed and stop at the decision); the node
// runtime uses it to keep long-lived cluster processes at a bounded
// footprint.
func (st *Stack) Retire() {
	st.Node.Retire()
	st.MW.Reset()
	st.SVSS.Reset()
	st.Coin.Reset()
	st.ABA.Retire()
}

// ConsumeSVSS routes completion events of SVSS sessions of the given
// kind (replacing any previous consumer for that kind).
func (st *Stack) ConsumeSVSS(kind proto.SessionKind, c SVSSConsumer) {
	st.svssConsumers[kind] = c
}

// ConsumeMW routes completion events of standalone MW-SVSS sessions.
func (st *Stack) ConsumeMW(c MWConsumer) { st.mwConsumer = c }
