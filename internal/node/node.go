// Package node is the deployable runtime for the paper's protocol
// stack: one Node hosts the event-driven engines of internal/core
// behind a transport.Transport, encoding every message through the
// internal/proto wire codec. The same Node runs unchanged over the
// in-process channel mesh (RunLive, -race tests) and over real TCP
// sockets (cmd/node, cmd/cluster) — the protocol cores never learn
// which network they are on.
//
// Lifecycle: New → Start → (Stop | Crash) → Restart. Crash models a
// fail-stop: the transport is torn down and in-flight traffic is lost.
// Restart boots a fresh protocol stack (state machines restart from
// their initial state and re-propose the configured input) on a fresh
// transport; traffic counters accumulate across incarnations.
package node

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"svssba/internal/core"
	"svssba/internal/proto"
	"svssba/internal/sim"
	"svssba/internal/transport"
)

// Config describes one node of a cluster.
type Config struct {
	// ID is this node's process id (1..N).
	ID sim.ProcID
	// N is the cluster size; T the resilience bound (defaults to
	// floor((N-1)/3)).
	N, T int
	// Seed drives this node's local randomness (coin polynomial
	// coefficients etc.). Give every node a distinct seed.
	Seed int64
	// Input is the node's binary proposal.
	Input int
	// Codec encodes payloads for the wire; nil installs the full
	// protocol codec (core.NewCodec). Codecs are read-only after
	// registration and may be shared across nodes.
	Codec sim.Codec
	// OnDecide observes the local decision (called once per incarnation,
	// on the node's delivery goroutine).
	OnDecide func(value int)
	// OnShun observes DMM shun events (same goroutine rules).
	OnShun func(detected sim.ProcID)
}

// LayerStats aggregates traffic for one protocol layer (the prefix of
// the payload kind, e.g. "rb", "mw", "svss", "aba").
type LayerStats struct {
	SentMsgs, SentBytes int64
	RecvMsgs, RecvBytes int64
}

// Stats is a snapshot of a node's wire-level traffic counters. Byte
// counts are encoded frame sizes (kind header included), the bytes that
// actually cross the transport.
type Stats struct {
	Sent, SentBytes int64
	Recv, RecvBytes int64
	DecodeErrs      int64

	SentByKind, SentBytesByKind map[string]int64
	RecvByKind, RecvBytesByKind map[string]int64
}

// LayerOf maps a payload kind to its protocol layer: the segment before
// the first '/' ("aba/bval" → "aba").
func LayerOf(kind string) string {
	if i := strings.IndexByte(kind, '/'); i >= 0 {
		return kind[:i]
	}
	return kind
}

// ByLayer folds the per-kind counters into per-layer totals.
func (s *Stats) ByLayer() map[string]LayerStats {
	out := make(map[string]LayerStats)
	for kind, n := range s.SentByKind {
		l := out[LayerOf(kind)]
		l.SentMsgs += n
		l.SentBytes += s.SentBytesByKind[kind]
		out[LayerOf(kind)] = l
	}
	for kind, n := range s.RecvByKind {
		l := out[LayerOf(kind)]
		l.RecvMsgs += n
		l.RecvBytes += s.RecvBytesByKind[kind]
		out[LayerOf(kind)] = l
	}
	return out
}

// Layers returns the layer names of s in sorted order.
func (s *Stats) Layers() []string {
	seen := make(map[string]bool)
	for kind := range s.SentByKind {
		seen[LayerOf(kind)] = true
	}
	for kind := range s.RecvByKind {
		seen[LayerOf(kind)] = true
	}
	names := make([]string, 0, len(seen))
	for l := range seen {
		names = append(names, l)
	}
	sort.Strings(names)
	return names
}

// Node lifecycle states.
const (
	stateNew = iota
	stateRunning
	stateStopped
)

// Node hosts one process's protocol stack on a transport.
type Node struct {
	cfg   Config
	codec sim.Codec

	mu      sync.Mutex
	state   int
	crashed bool
	tr      transport.Transport
	decided bool
	value   int
	errs    []error
	stop    chan struct{}
	done    chan struct{}
	decideC chan struct{}

	// Traffic counters, interned by kind like sim.Network (smu keeps
	// Stats() safe while the delivery goroutine counts).
	smu                     sync.Mutex
	sent, sentB             int64
	recv, recvB             int64
	decodeErrs              int64
	kindIDs                 map[string]int
	kindNames               []string
	sentByKind, sentBByKind []int64
	recvByKind, recvBByKind []int64
	lastKind                string
	lastKindID              int

	start time.Time
}

// New validates cfg and creates a node bound to tr (not yet started).
func New(cfg Config, tr transport.Transport) (*Node, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("node: need at least 2 processes, have %d", cfg.N)
	}
	if cfg.ID < 1 || int(cfg.ID) > cfg.N {
		return nil, fmt.Errorf("node: id %d out of range 1..%d", cfg.ID, cfg.N)
	}
	if cfg.T == 0 {
		cfg.T = (cfg.N - 1) / 3
	}
	if cfg.Input != 0 && cfg.Input != 1 {
		return nil, fmt.Errorf("node: input %d is not binary", cfg.Input)
	}
	if cfg.Codec == nil {
		cfg.Codec = core.NewCodec()
	}
	if tr == nil {
		return nil, fmt.Errorf("node: nil transport")
	}
	if tr.Self() != cfg.ID {
		return nil, fmt.Errorf("node: transport is endpoint %d, node is %d", tr.Self(), cfg.ID)
	}
	return &Node{
		cfg:        cfg,
		codec:      cfg.Codec,
		tr:         tr,
		kindIDs:    make(map[string]int, 16),
		lastKindID: -1,
		decideC:    make(chan struct{}),
	}, nil
}

// ID returns the node's process id.
func (n *Node) ID() sim.ProcID { return n.cfg.ID }

// Start boots the protocol stack: starts the transport, runs the
// stack's Init (which proposes the input), and begins delivering.
func (n *Node) Start() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.state == stateRunning {
		return fmt.Errorf("node %d: already running", n.cfg.ID)
	}
	if n.state == stateStopped {
		return fmt.Errorf("node %d: stopped (use Restart)", n.cfg.ID)
	}
	return n.startLocked()
}

func (n *Node) startLocked() error {
	if err := n.tr.Start(); err != nil {
		return fmt.Errorf("node %d: %w", n.cfg.ID, err)
	}
	st := core.NewStack(n.cfg.ID, func(detected sim.ProcID, _ proto.MWID) {
		if n.cfg.OnShun != nil {
			n.cfg.OnShun(detected)
		}
	})
	st.OnDecide(func(_ sim.Context, v int) { n.recordDecision(v) })
	input := n.cfg.Input
	st.Node.AddInit(func(ctx sim.Context) {
		_ = st.ABA.Propose(ctx, input)
	})

	n.state = stateRunning
	n.start = time.Now()
	n.stop = make(chan struct{})
	n.done = make(chan struct{})
	ctx := &runCtx{
		n:   n,
		tr:  n.tr,
		rnd: rand.New(rand.NewSource(n.cfg.Seed)),
	}
	go n.run(st, ctx, n.tr, n.stop, n.done)
	return nil
}

// run is the node's single delivery goroutine: the protocol stack is
// only ever touched from here, which is what makes the engines safe
// under real concurrency without any locking of their own.
func (n *Node) run(st *core.Stack, ctx *runCtx, tr transport.Transport, stop, done chan struct{}) {
	defer close(done)
	st.Node.Init(ctx)
	for {
		select {
		case <-stop:
			return
		case f, ok := <-tr.Recv():
			if !ok {
				return
			}
			if f.From < 1 || int(f.From) > n.cfg.N {
				// A sender outside 1..N would count as a phantom voter
				// in the protocol quorums; reject the frame outright.
				n.noteDecodeErr(fmt.Errorf("node %d: frame from unknown process %d", n.cfg.ID, f.From))
				continue
			}
			p, err := n.codec.Decode(f.Data)
			if err != nil {
				n.noteDecodeErr(fmt.Errorf("node %d: from %d: %w", n.cfg.ID, f.From, err))
				continue
			}
			n.countRecv(p.Kind(), len(f.Data))
			st.Node.Deliver(ctx, sim.Message{
				From:    f.From,
				To:      n.cfg.ID,
				Payload: p,
				SentAt:  ctx.Now(),
			})
		}
	}
}

// Stop shuts the node down gracefully: delivery stops, the transport
// closes, queued inbound traffic is discarded.
func (n *Node) Stop() { n.halt(false) }

// Crash fail-stops the node: identical teardown to Stop, but the node
// records that it went down by fault. The rest of the cluster just sees
// its links die.
func (n *Node) Crash() { n.halt(true) }

func (n *Node) halt(crash bool) {
	n.mu.Lock()
	if n.state != stateRunning {
		if crash {
			n.crashed = true
		}
		if n.state == stateNew {
			// Fail-stop before Start: tear the transport down anyway so
			// peers see the links die.
			n.state = stateStopped
			tr := n.tr
			n.mu.Unlock()
			tr.Close()
			return
		}
		n.mu.Unlock()
		return
	}
	n.state = stateStopped
	n.crashed = crash
	stop, done, tr := n.stop, n.done, n.tr
	n.mu.Unlock()
	close(stop)
	tr.Close()
	<-done
}

// Restart boots a fresh protocol stack on a fresh transport. The old
// incarnation must be stopped or crashed. Decision state resets; the
// node re-proposes its configured input.
func (n *Node) Restart(tr transport.Transport) error {
	if tr == nil {
		return fmt.Errorf("node %d: nil transport", n.cfg.ID)
	}
	if tr.Self() != n.cfg.ID {
		return fmt.Errorf("node %d: transport is endpoint %d", n.cfg.ID, tr.Self())
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.state == stateRunning {
		return fmt.Errorf("node %d: still running", n.cfg.ID)
	}
	n.tr = tr
	n.crashed = false
	n.decided = false
	n.decideC = make(chan struct{})
	return n.startLocked()
}

// Crashed reports whether the node went down via Crash.
func (n *Node) Crashed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed
}

// Decision returns the local decision of the current incarnation.
func (n *Node) Decision() (int, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.value, n.decided
}

// WaitDecision blocks until the node decides or the timeout elapses.
func (n *Node) WaitDecision(timeout time.Duration) (int, error) {
	n.mu.Lock()
	c := n.decideC
	n.mu.Unlock()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-c:
		v, _ := n.Decision()
		return v, nil
	case <-timer.C:
		return 0, fmt.Errorf("node %d: no decision after %v", n.cfg.ID, timeout)
	}
}

func (n *Node) recordDecision(v int) {
	n.mu.Lock()
	if n.decided {
		n.mu.Unlock()
		return
	}
	n.decided = true
	n.value = v
	close(n.decideC)
	n.mu.Unlock()
	if n.cfg.OnDecide != nil {
		n.cfg.OnDecide(v)
	}
}

// Errs returns decode and transport errors observed so far.
func (n *Node) Errs() []error {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]error, len(n.errs))
	copy(out, n.errs)
	return out
}

func (n *Node) noteDecodeErr(err error) {
	n.mu.Lock()
	n.errs = append(n.errs, err)
	n.mu.Unlock()
	n.smu.Lock()
	n.decodeErrs++
	n.smu.Unlock()
}

// kindIDLocked interns a payload kind; the caller must hold smu.
func (n *Node) kindIDLocked(kind string) int {
	if kind == n.lastKind && n.lastKindID >= 0 {
		return n.lastKindID
	}
	id, ok := n.kindIDs[kind]
	if !ok {
		id = len(n.kindNames)
		n.kindIDs[kind] = id
		n.kindNames = append(n.kindNames, kind)
		n.sentByKind = append(n.sentByKind, 0)
		n.sentBByKind = append(n.sentBByKind, 0)
		n.recvByKind = append(n.recvByKind, 0)
		n.recvBByKind = append(n.recvBByKind, 0)
	}
	n.lastKind, n.lastKindID = kind, id
	return id
}

func (n *Node) countSent(kind string, bytes int) {
	n.smu.Lock()
	defer n.smu.Unlock()
	n.sent++
	n.sentB += int64(bytes)
	id := n.kindIDLocked(kind)
	n.sentByKind[id]++
	n.sentBByKind[id] += int64(bytes)
}

func (n *Node) countRecv(kind string, bytes int) {
	n.smu.Lock()
	defer n.smu.Unlock()
	n.recv++
	n.recvB += int64(bytes)
	id := n.kindIDLocked(kind)
	n.recvByKind[id]++
	n.recvBByKind[id] += int64(bytes)
}

// Stats returns a snapshot of the traffic counters, materializing the
// per-kind maps from the interned slices (the same layout trick as
// sim.Network).
func (n *Node) Stats() Stats {
	n.smu.Lock()
	defer n.smu.Unlock()
	s := Stats{
		Sent: n.sent, SentBytes: n.sentB,
		Recv: n.recv, RecvBytes: n.recvB,
		DecodeErrs:      n.decodeErrs,
		SentByKind:      make(map[string]int64, len(n.kindNames)),
		SentBytesByKind: make(map[string]int64, len(n.kindNames)),
		RecvByKind:      make(map[string]int64, len(n.kindNames)),
		RecvBytesByKind: make(map[string]int64, len(n.kindNames)),
	}
	for id, name := range n.kindNames {
		if n.sentByKind[id] > 0 {
			s.SentByKind[name] = n.sentByKind[id]
			s.SentBytesByKind[name] = n.sentBByKind[id]
		}
		if n.recvByKind[id] > 0 {
			s.RecvByKind[name] = n.recvByKind[id]
			s.RecvBytesByKind[name] = n.recvBByKind[id]
		}
	}
	return s
}

// runCtx is the sim.Context one incarnation's stack sees. It is only
// used from the node's delivery goroutine (Init and Deliver), matching
// the Context contract.
type runCtx struct {
	n   *Node
	tr  transport.Transport
	rnd *rand.Rand
}

var _ sim.Context = (*runCtx)(nil)

func (c *runCtx) N() int           { return c.n.cfg.N }
func (c *runCtx) T() int           { return c.n.cfg.T }
func (c *runCtx) Rand() *rand.Rand { return c.rnd }

func (c *runCtx) Now() int64 {
	return time.Since(c.n.start).Microseconds()
}

// Send encodes p and hands the frame to the transport. Each frame
// needs its own buffer — the transport takes ownership — and
// proto.Codec.Encode already makes exactly one pre-sized allocation.
func (c *runCtx) Send(to sim.ProcID, p sim.Payload) {
	n := c.n
	if to < 1 || int(to) > n.cfg.N {
		return
	}
	enc, err := n.codec.Encode(p)
	if err != nil {
		n.noteErr(fmt.Errorf("node %d: encode %q: %w", n.cfg.ID, p.Kind(), err))
		return
	}
	n.countSent(p.Kind(), len(enc))
	if err := c.tr.Send(to, enc); err != nil {
		n.noteErr(fmt.Errorf("node %d: send to %d: %w", n.cfg.ID, to, err))
	}
}

func (n *Node) noteErr(err error) {
	n.mu.Lock()
	n.errs = append(n.errs, err)
	n.mu.Unlock()
}
