// Package acs composes the paper's binary agreement into Agreement on a
// Common Subset, the BKR (Ben-Or/Kelmer/Rabin) construction that
// HoneyBadger-style atomic broadcast builds on: every process reliably
// broadcasts a proposal, one binary agreement per proposer votes on
// whether that proposal "made it", and once n−t agreements decide 1 the
// processes input 0 to the rest. All correct processes output the same
// subset of at least n−t proposals.
//
// The package is a node.ServiceDriver: one Driver runs any number of
// concurrent ACS sessions over a single node runtime. Each session
// spreads across n+1 scopes — scope (sid, 0) hosts the proposal plane
// (a stack whose ProtoACS broadcasts carry the proposals) and scope
// (sid, j) for j in 1..n hosts the binary agreement voting on proposer
// j. Scopes retire independently through the node's service machinery:
// an ABA scope as soon as its agreement halts, the plane scope when the
// session completes, so a long-lived service node returns to baseline
// state after every session no matter how the sessions interleave.
package acs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"svssba/internal/coinpool"
	"svssba/internal/core"
	"svssba/internal/node"
	"svssba/internal/proto"
	"svssba/internal/sim"
)

// maxSlots bounds the per-session slot namespace packed into the low
// byte of a scope (slot 0 = proposal plane, 1..n = per-proposer ABA).
const maxSlots = 255

// ScopeOf packs an ACS session id and slot into a node service scope.
func ScopeOf(sid uint64, slot int) uint64 { return sid<<8 | uint64(slot) }

// SplitScope unpacks a service scope into session id and slot.
func SplitScope(scope uint64) (sid uint64, slot int) {
	return scope >> 8, int(scope & 0xff)
}

// LaneKey is the node.Config.LaneKey for ACS scopes: keying by session
// id pins a session's proposal plane and all its ABA slots to one lane,
// so the per-session composition state stays single-threaded and
// same-session scopes may open each other synchronously (OpenPeer).
func LaneKey(scope uint64) uint64 { return scope >> 8 }

// Config describes one process's ACS driver.
type Config struct {
	// N, T mirror the cluster's agreement parameters (T defaults to
	// floor((N-1)/3)).
	N, T int
	// Self is this process's id.
	Self sim.ProcID
	// Wire selects the wire variant for every scoped stack ("" = "v2":
	// a throughput service wants burst coalescing; "v1" is accepted for
	// baseline comparison).
	Wire string
	// Window bounds how many sessions this process initiates concurrently
	// (defaults to 8). Sessions joined because a peer's traffic arrived
	// first do not wait on the window — refusing them would stall peers.
	Window int
	// OnDecide observes every completed session (delivery goroutine; must
	// not block).
	OnDecide func(Decision)
	// Pool turns on the coin-dealing pool (internal/coinpool): each
	// session runs one batched dealing round on its proposal plane and
	// its n agreements consume slots from it, amortizing MW-SVSS setup.
	// The window also pipelines — it refills when a session's dealing is
	// reserved and share-complete, not when its slowest agreement drains.
	Pool bool
	// PoolRounds is the coin-round coverage of each pooled dealing
	// (default 4; later rounds fall back to classic dealing).
	PoolRounds int
	// Tamper, when set, runs over every freshly built scoped stack before
	// it goes live — the hook the adversarial tests use to plant
	// misbehavior in selected scopes. Production configs leave it nil.
	Tamper func(sid uint64, slot int, st *core.Stack)
}

// Decision is one completed ACS session: the common subset, as the
// sorted proposer ids whose agreement decided 1 and their proposal
// values (parallel slices).
type Decision struct {
	Session uint64
	Members []sim.ProcID
	Values  [][]byte
	// Elapsed is the local time from joining the session to completing
	// it.
	Elapsed time.Duration
	// CoinRounds is the total number of common-coin flips this process
	// observed across the session's n agreements — the coin-round-luck
	// number behind the latency tail (the paper's expected-O(n²)-rounds
	// bound is about exactly this distribution).
	CoinRounds uint64
}

// session is the per-ACS-session composition state. Every scope of one
// session lives on the same node lane (see LaneKey), so these fields
// are lane-confined: only the owning lane's goroutine touches them
// after the record is published through d.mu.
type session struct {
	sid     uint64
	started time.Time

	ownValue     []byte
	proposalSent bool

	plane *node.Session
	aba   []*node.Session // 1..n; nil until the slot's scope opens

	has      []bool   // proposal delivered, by proposer
	values   [][]byte // delivered proposals
	proposed []bool   // ABA_j was given an input (by us)
	decided  []int8   // -1 undecided, else 0/1
	ones     int
	decCount int

	zeroFlood bool // n−t ones reached, 0s flooded to the rest
	completed bool

	// pooledStarting marks a session we initiated whose dealing has not
	// yet share-completed locally — the pipelined window counts these
	// instead of all in-flight sessions.
	pooledStarting bool

	coinRounds uint64 // coin flips observed across the session's agreements
}

// Driver runs concurrent ACS sessions over one service-mode node.
// Create with New, wire with Bind before the node starts, submit with
// Submit.
type Driver struct {
	cfg Config
	nd  *node.Node

	qmu   sync.Mutex
	queue [][]byte

	// mu guards the session/completion tables and the sid allocator —
	// the only driver state shared across node lanes. Lock-ordering
	// rule: never hold mu across a node call (OpenScope/StartScope/
	// Touch/stack operations) or a pool call; mu may nest over qmu.
	// The *session records themselves are lane-confined (see session).
	mu        sync.Mutex
	sessions  map[uint64]*session
	completed map[uint64]bool
	nextSid   uint64
	pool      *coinpool.Pool // nil when Config.Pool is off

	// Gauges (atomics: read by loadgen/tests off-goroutine).
	inFlight    atomic.Int64
	maxInFlight atomic.Int64
	decidedN    atomic.Int64
	starting    atomic.Int64 // pooled sessions awaiting their dealing
}

var _ node.ServiceDriver = (*Driver)(nil)

// New validates cfg and creates a driver (not yet bound to a node).
func New(cfg Config) (*Driver, error) {
	if cfg.N < 2 || cfg.N > maxSlots-1 {
		return nil, fmt.Errorf("acs: n=%d out of range 2..%d", cfg.N, maxSlots-1)
	}
	if cfg.T == 0 {
		cfg.T = (cfg.N - 1) / 3
	}
	if cfg.Self < 1 || int(cfg.Self) > cfg.N {
		return nil, fmt.Errorf("acs: self %d out of range 1..%d", cfg.Self, cfg.N)
	}
	switch cfg.Wire {
	case "":
		cfg.Wire = "v2"
	case "v1", "v2":
	default:
		return nil, fmt.Errorf("acs: unknown wire variant %q", cfg.Wire)
	}
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	d := &Driver{
		cfg:       cfg,
		sessions:  make(map[uint64]*session),
		completed: make(map[uint64]bool),
		nextSid:   1,
	}
	if cfg.Pool {
		if cfg.PoolRounds <= 0 {
			cfg.PoolRounds = 4
			d.cfg.PoolRounds = 4
		}
		pcfg := coinpool.Config{N: cfg.N, T: cfg.T, Self: cfg.Self, Rounds: cfg.PoolRounds}
		if err := pcfg.Validate(); err != nil {
			return nil, err
		}
		d.pool = coinpool.New(pcfg)
	}
	return d, nil
}

// Bind attaches the driver to its node. The node's Config.Service must
// be this driver; call before the node starts.
func (d *Driver) Bind(nd *node.Node) { d.nd = nd }

// Submit queues value as a proposal for a future session and kicks the
// session pump. Values are copied. Safe from any goroutine.
func (d *Driver) Submit(value []byte) error {
	d.qmu.Lock()
	d.queue = append(d.queue, append([]byte(nil), value...))
	d.qmu.Unlock()
	return d.nd.Inject(d.pump)
}

// InFlight returns the number of joined, not-yet-completed sessions.
func (d *Driver) InFlight() int { return int(d.inFlight.Load()) }

// MaxInFlight returns the high-water concurrent session count.
func (d *Driver) MaxInFlight() int { return int(d.maxInFlight.Load()) }

// Completed returns how many sessions completed.
func (d *Driver) Completed() int { return int(d.decidedN.Load()) }

// Starting returns the number of pooled sessions this process initiated
// whose dealing has not yet share-completed locally (always 0 unpooled).
func (d *Driver) Starting() int { return int(d.starting.Load()) }

// PoolStats snapshots the coin pool gauges; ok is false when pooling is
// off. Safe from any goroutine.
func (d *Driver) PoolStats() (coinpool.Stats, bool) {
	if d.pool == nil {
		return coinpool.Stats{}, false
	}
	return d.pool.Stats(), true
}

// QueueLen returns the number of submitted values not yet attached to a
// session.
func (d *Driver) QueueLen() int {
	d.qmu.Lock()
	defer d.qmu.Unlock()
	return len(d.queue)
}

// pump starts new sessions while the window allows and values are
// queued. Unpooled, the window counts every in-flight session — it
// refills only when a whole session completes. Pooled, it counts
// sessions still *starting* (own dealing not yet share-complete), so
// the next session's setup pipelines behind the previous ones'
// agreement phases; a hard cap of 4× the window on total in-flight
// sessions bounds memory when agreements drain slowly.
//
// pump may run on any lane (Inject thunks, ready callbacks, completion
// paths), so window check, value pop and session creation form one
// critical section; the new session's plane then starts on whichever
// lane owns the fresh sid via StartScope.
func (d *Driver) pump() {
	for {
		d.mu.Lock()
		if !d.windowOpen() {
			d.mu.Unlock()
			return
		}
		v, ok := d.tryPopValue()
		if !ok {
			d.mu.Unlock()
			return
		}
		for d.sessions[d.nextSid] != nil || d.completed[d.nextSid] {
			d.nextSid++
		}
		sid := d.nextSid
		d.nextSid++
		d.newSessionLocked(sid, v, d.pool != nil)
		d.mu.Unlock()
		// Opening the plane scope runs Open+Opened, which broadcasts the
		// proposal this session carries for us. The open lands on the
		// sid's owning lane (inline on a one-lane node).
		d.nd.StartScope(ScopeOf(sid, 0))
	}
}

// windowOpen reports whether the pump may start another session.
func (d *Driver) windowOpen() bool {
	if d.pool == nil {
		return int(d.inFlight.Load()) < d.cfg.Window
	}
	return int(d.starting.Load()) < d.cfg.Window &&
		int(d.inFlight.Load()) < 4*d.cfg.Window
}

// sessionReady clears a pooled session's starting mark (its dealing
// share-completed locally, or its plane released) and refills the
// window. Owning-lane only: pooledStarting is lane-confined.
func (d *Driver) sessionReady(s *session) {
	if !s.pooledStarting {
		return
	}
	s.pooledStarting = false
	d.starting.Add(-1)
	d.pump()
}

// tryPopValue takes the oldest queued value, reporting whether one
// existed.
func (d *Driver) tryPopValue() ([]byte, bool) {
	d.qmu.Lock()
	defer d.qmu.Unlock()
	if len(d.queue) == 0 {
		return nil, false
	}
	v := d.queue[0]
	d.queue = d.queue[1:]
	if v == nil {
		// An empty submission copies to nil; keep the popped/absent
		// distinction intact for newSessionLocked.
		v = []byte{}
	}
	return v, true
}

// popValue is tryPopValue with the joined-session fallback: []byte{}
// when nothing is queued — a session joined on peer traffic still
// participates, with an empty proposal.
func (d *Driver) popValue() []byte {
	if v, ok := d.tryPopValue(); ok {
		return v
	}
	return []byte{}
}

// newSessionLocked creates the composition record for sid; the caller
// holds d.mu. Everything lane-confined — including pooledStarting —
// is set before the record is published into d.sessions, so the owning
// lane (which looks the record up under d.mu) always sees it complete.
// The scoped stacks open separately — lazily for sessions joined on
// inbound traffic. ownValue nil means "pop on demand" (joined path).
func (d *Driver) newSessionLocked(sid uint64, ownValue []byte, pooledStarting bool) *session {
	n := d.cfg.N
	if ownValue == nil {
		ownValue = d.popValue()
	}
	s := &session{
		sid:      sid,
		started:  time.Now(),
		ownValue: ownValue,
		aba:      make([]*node.Session, n+1),
		has:      make([]bool, n+1),
		values:   make([][]byte, n+1),
		proposed: make([]bool, n+1),
		decided:  make([]int8, n+1),
	}
	for j := range s.decided {
		s.decided[j] = -1
	}
	if pooledStarting {
		s.pooledStarting = true
		d.starting.Add(1)
	}
	d.sessions[sid] = s
	if sid >= d.nextSid {
		// Fast-forward the allocator past sids observed on peer traffic.
		// For a continuously-live node this is a no-op (every locally
		// allocated or joined sid is already in sessions/completed, which
		// pump skips), but a restarted incarnation has empty maps: without
		// the bump it would re-issue a sid its peers tombstoned and wedge
		// on a session nobody else can join.
		d.nextSid = sid + 1
	}
	if f := d.inFlight.Add(1); f > d.maxInFlight.Load() {
		d.maxInFlight.Store(f)
	}
	return s
}

// Open implements node.ServiceDriver: build the scoped stack for one
// (session, slot) pair. Rejects malformed slots and scopes of completed
// sessions (the node tombstones them, so late traffic dies at the
// envelope). Runs on the sid's owning lane.
func (d *Driver) Open(sess *node.Session) *core.Stack {
	sid, slot := SplitScope(sess.Scope())
	if slot > d.cfg.N || sid == 0 {
		return nil
	}
	d.mu.Lock()
	if d.completed[sid] {
		d.mu.Unlock()
		return nil
	}
	s := d.sessions[sid]
	if s == nil {
		// A peer reached this session first: join it.
		s = d.newSessionLocked(sid, nil, false)
	}
	d.mu.Unlock()
	if d.pool != nil && slot > 0 && s.plane == nil {
		// The pooled agreement consumes the plane's dealing; make sure the
		// plane scope (and with it the session's supply) exists first.
		// Same sid, same lane: open it synchronously through the session
		// being built (this re-enters the driver for the plane only).
		sess.OpenPeer(ScopeOf(sid, 0))
	}
	st := core.NewStack(d.cfg.Self, nil)
	if d.cfg.Wire == "v2" {
		st.EnableWireV2()
	}
	if slot == 0 {
		st.Node.HandleBroadcast(proto.ProtoACS, func(_ sim.Context, origin sim.ProcID, _ proto.Tag, value []byte) {
			d.onProposal(s, origin, value)
		})
	} else {
		j := slot
		st.OnDecide(func(_ sim.Context, v int) { d.onABADecide(s, j, v) })
		st.OnCoin(func(_ sim.Context, _ uint64, _ int) { s.coinRounds++ })
	}
	if d.cfg.Tamper != nil {
		d.cfg.Tamper(sid, slot, st)
	}
	return st
}

// Opened implements node.ServiceDriver: the scope's stack is live; bind
// it into the session record and fire first sends.
func (d *Driver) Opened(sess *node.Session) {
	sid, slot := SplitScope(sess.Scope())
	d.mu.Lock()
	s := d.sessions[sid]
	d.mu.Unlock()
	if s == nil {
		return
	}
	if slot == 0 {
		s.plane = sess
		if d.pool != nil {
			d.pool.Open(sid, sess.Stack(), sess.Ctx(), sess.Touch, func() {
				d.sessionReady(s)
			})
		}
		if !s.proposalSent {
			s.proposalSent = true
			tag := proto.Tag{Proto: proto.ProtoACS, A: uint32(sid)}
			sess.Stack().Node.Broadcast(sess.Ctx(), tag, s.ownValue)
		}
		return
	}
	s.aba[slot] = sess
	if d.pool != nil {
		if sup := d.pool.Supply(sid); sup != nil {
			sup.Attach(slot, sess.Stack().Coin, sess.Ctx(), sess.Touch)
		}
	}
}

// MayRetire implements node.ServiceDriver: an ABA scope retires when
// its agreement halted (n−t DECIDEs — the rest of the cluster finishes
// without it, same argument as single-session retirement); the plane
// scope when its session completed (every proposal this process will
// ever use has been delivered).
func (d *Driver) MayRetire(sess *node.Session) bool {
	sid, slot := SplitScope(sess.Scope())
	if slot == 0 {
		d.mu.Lock()
		completed := d.completed[sid]
		s := d.sessions[sid]
		d.mu.Unlock()
		if d.pool == nil {
			return completed
		}
		// Pooled: the plane hosts the dealings the agreements consume, so
		// it must outlive every agreement scope. By the time all have
		// halted, DECIDE amplification finishes the cluster without
		// further coin reconstructions from this process.
		if !completed || s == nil {
			return completed && s == nil
		}
		for j := 1; j <= d.cfg.N; j++ {
			if ab := s.aba[j]; ab != nil && !ab.Retired() {
				return false
			}
		}
		d.sessionReady(s) // never leave the window blocked on a dead plane
		d.pool.Release(sid)
		d.mu.Lock()
		delete(d.sessions, sid)
		d.mu.Unlock()
		return true
	}
	st := sess.Stack()
	if st == nil || !st.ABA.Halted() {
		return false
	}
	if d.pool != nil {
		if sup := d.pool.Supply(sid); sup != nil {
			sup.Detach(slot)
		}
		d.mu.Lock()
		s := d.sessions[sid]
		d.mu.Unlock()
		if s != nil && s.plane != nil {
			// Re-check the plane this burst: this may be the last agreement
			// holding it open.
			s.plane.Touch()
		}
	}
	return true
}

// abaSession returns the ABA scope for proposer j, opening it on first
// use through hop — any already-open session of the same sid (the
// plane, or a decided agreement), which pins the open to the lane this
// callback is already running on.
func (d *Driver) abaSession(hop *node.Session, s *session, j int) *node.Session {
	if s.aba[j] == nil {
		hop.OpenPeer(ScopeOf(s.sid, j)) // Opened fills s.aba[j]
	}
	return s.aba[j]
}

// onProposal handles an RB-delivered proposal from origin: record the
// value and input 1 to the proposer's agreement (BKR step: "on
// delivering a proposal, vote for it").
func (d *Driver) onProposal(s *session, origin sim.ProcID, value []byte) {
	if s.completed || origin < 1 || int(origin) > d.cfg.N {
		return
	}
	j := int(origin)
	if s.has[j] {
		return // RB delivers once per origin, but stay first-wins regardless
	}
	s.has[j] = true
	s.values[j] = append([]byte(nil), value...)
	if !s.proposed[j] && s.decided[j] == -1 {
		s.proposed[j] = true
		ab := d.abaSession(s.plane, s, j)
		if st := ab.Stack(); st != nil {
			ab.Touch()
			_ = st.ABA.Propose(ab.Ctx(), 1)
		}
	}
	d.checkComplete(s)
}

// onABADecide handles agreement j's decision. Reaching n−t ones floods
// 0 into every agreement not yet given an input (BKR step: late
// proposals can no longer join the subset), which is what guarantees
// all n agreements terminate.
func (d *Driver) onABADecide(s *session, j, v int) {
	if s.decided[j] != -1 {
		return
	}
	s.decided[j] = int8(v)
	s.decCount++
	if v == 1 {
		s.ones++
		if s.ones >= d.cfg.N-d.cfg.T && !s.zeroFlood {
			s.zeroFlood = true
			for k := 1; k <= d.cfg.N; k++ {
				if s.proposed[k] || s.decided[k] != -1 {
					continue
				}
				s.proposed[k] = true
				ab := d.abaSession(s.aba[j], s, k)
				if st := ab.Stack(); st != nil {
					ab.Touch()
					_ = st.ABA.Propose(ab.Ctx(), 0)
				}
			}
		}
	}
	d.checkComplete(s)
}

// checkComplete outputs the subset once every agreement decided and
// every 1-decided proposer's proposal is delivered. (A 1 decision with
// the proposal still in flight is possible locally — the agreement only
// needs t+1 honest inputs of 1 — so completion waits for the RB
// delivery; it must arrive, since some honest process delivered it to
// input 1.)
func (d *Driver) checkComplete(s *session) {
	if s.completed || s.decCount < d.cfg.N {
		return
	}
	for j := 1; j <= d.cfg.N; j++ {
		if s.decided[j] == 1 && !s.has[j] {
			return
		}
	}
	s.completed = true
	d.mu.Lock()
	d.completed[s.sid] = true
	if d.pool == nil {
		delete(d.sessions, s.sid)
	}
	d.mu.Unlock()
	if d.pool != nil {
		// Pooled: keep the record until the plane retires (MayRetire walks
		// the agreement scopes through it), but free the window now.
		d.sessionReady(s)
	}
	d.inFlight.Add(-1)
	d.decidedN.Add(1)
	if s.plane != nil {
		s.plane.Touch() // plane retires this burst via MayRetire
	}
	if d.cfg.OnDecide != nil {
		dec := Decision{Session: s.sid, Elapsed: time.Since(s.started), CoinRounds: s.coinRounds}
		for j := 1; j <= d.cfg.N; j++ {
			if s.decided[j] == 1 {
				dec.Members = append(dec.Members, sim.ProcID(j))
				dec.Values = append(dec.Values, s.values[j])
			}
		}
		d.cfg.OnDecide(dec)
	}
	d.pump()
}
