package coin_test

import (
	"testing"

	"svssba/internal/adversary"
	"svssba/internal/sim"
)

// TestCoinShunOrAgreeUnderLiar exercises the SCC Correctness disjunction
// (Definition 2) under an active reconstruction liar: every invocation
// either lands a common bit at all honest processes, or some honest
// process shuns the liar.
func TestCoinShunOrAgreeUnderLiar(t *testing.T) {
	seeds := int64(8)
	if testing.Short() {
		seeds = 2 // the disjunction check still runs per seed
	}
	agreeRuns, shunRuns := 0, 0
	for seed := int64(0); seed < seeds; seed++ {
		c := newCluster(t, 4, 1, seed)
		adversary.Apply(c.procs[4].stack, adversary.RValLiar(3))
		honest := ids(1, 3)
		c.startRound(t, 1, ids(1, 4))
		c.mustReach(t, "coin under liar", func() bool { return c.allDone(1, honest) })
		// Drain so late contradictions surface.
		if _, err := c.nw.Run(200_000_000); err != nil {
			t.Fatalf("seed %d: drain: %v", seed, err)
		}
		bits := make(map[int]bool)
		for _, i := range honest {
			bits[c.procs[i].coins[1]] = true
		}
		shuns := 0
		for _, i := range honest {
			for _, j := range c.procs[i].shunned {
				if j != 4 {
					t.Fatalf("seed %d: honest %d shunned honest %d", seed, i, j)
				}
				shuns++
			}
		}
		if len(bits) > 1 && shuns == 0 {
			t.Fatalf("seed %d: coin disagreement without shunning", seed)
		}
		if len(bits) == 1 {
			agreeRuns++
		}
		if shuns > 0 {
			shunRuns++
		}
	}
	t.Logf("liar runs: agreed=%d/%d shunned=%d/%d", agreeRuns, seeds, shunRuns, seeds)
	if agreeRuns == 0 {
		t.Error("coin never agreed under liar")
	}
}

// TestCoinTerminatesWithSilentByzantine: a silent (receive-only) process
// must not block coin termination for the others.
func TestCoinTerminatesWithSilentByzantine(t *testing.T) {
	c := newCluster(t, 4, 1, 5)
	adversary.Apply(c.procs[2].stack, adversary.Silent())
	honest := []sim.ProcID{1, 3, 4}
	c.startRound(t, 1, honest)
	c.mustReach(t, "coin with silent process", func() bool { return c.allDone(1, honest) })
}
