package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestServeMetricsAndTrace(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("decisions").Add(9)
	reg.Histogram("lat_ms", []int64{10, 100}).Observe(42)
	tr := NewTracer(0, 16)
	tr.Record(KindDecide, 5, 0, 1, 0, 0)

	srv, err := Serve("127.0.0.1:0", reg, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	body := httpGet(t, base+"/metrics")
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v\n%s", err, body)
	}
	if snap.Counters["decisions"] != 9 || snap.Histograms["lat_ms"].Count != 1 {
		t.Fatalf("metrics mismatch: %+v", snap)
	}

	trace := string(httpGet(t, base+"/trace"))
	if !strings.Contains(trace, `"kind":"decide"`) || !strings.Contains(trace, `"scope":5`) {
		t.Fatalf("trace output missing event: %q", trace)
	}

	idx := string(httpGet(t, base+"/"))
	if !strings.Contains(idx, "/metrics") {
		t.Fatalf("index missing routes: %q", idx)
	}

	// pprof index must answer (profiles themselves are exercised enough
	// by being routable).
	pp := string(httpGet(t, base+"/debug/pprof/"))
	if !strings.Contains(pp, "goroutine") {
		t.Fatalf("pprof index unexpected: %.120q", pp)
	}
}

func TestServeNilRegistry(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	body := httpGet(t, "http://"+srv.Addr()+"/metrics")
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("nil-registry metrics not JSON: %v", err)
	}
}

func TestFormatBrief(t *testing.T) {
	r := NewRegistry()
	r.Counter("dec").Add(3)
	r.Gauge("live").Set(2)
	h := r.Histogram("lat", []int64{10, 100})
	h.Observe(50)
	s := r.Snapshot()
	line := s.FormatBrief("dec", "live", "lat", "missing")
	if !strings.Contains(line, "dec=3") || !strings.Contains(line, "live=2") || !strings.Contains(line, "lat=") {
		t.Fatalf("brief line = %q", line)
	}
	if strings.Contains(line, "missing") {
		t.Fatalf("missing name must be skipped: %q", line)
	}
}

func TestReporterEmitsAndStops(t *testing.T) {
	var sb safeBuffer
	rep := StartReporter(&sb, 10*time.Millisecond, func() string { return "tick" })
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(sb.String(), "tick") {
		if time.Now().After(deadline) {
			t.Fatal("reporter never emitted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	rep.Stop()
	rep.Stop() // idempotent
}

func TestMeterRates(t *testing.T) {
	var m Meter
	if r := m.Tick(100); r != 0 {
		t.Fatalf("first tick = %v, want 0", r)
	}
	time.Sleep(20 * time.Millisecond)
	if r := m.Tick(200); r <= 0 {
		t.Fatalf("second tick = %v, want > 0", r)
	}
}

// safeBuffer guards a strings.Builder so the reporter goroutine can
// write while the test polls.
type safeBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *safeBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *safeBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

func httpGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
