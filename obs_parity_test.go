package svssba

import (
	"testing"

	"svssba/internal/core"
	"svssba/internal/obs"
	"svssba/internal/proto"
	"svssba/internal/sim"
)

// simRunResult captures everything the simulator determines about a run:
// if any two of these differ between an instrumented and a plain run,
// instrumentation perturbed the schedule.
type simRunResult struct {
	decisions   map[int]int
	steps       int
	virtualTime int64
	messages    int64
	bytes       int64
	frames      int64
}

// runADHSim executes one deterministic ADH agreement over the pure
// simulator, mirroring Run's ProtocolADH arm. attach, when non-nil, is
// called per stack before the network starts so the caller can install
// trace hooks.
func runADHSim(t *testing.T, n, tf int, seed int64, attach func(pid int, st *core.Stack)) simRunResult {
	t.Helper()
	nw := sim.NewNetwork(n, tf, seed)
	decisions := make(map[int]int)
	for i := 1; i <= n; i++ {
		pid := i
		st := core.NewStack(sim.ProcID(i), nil)
		st.OnDecide(func(_ sim.Context, v int) { decisions[pid] = v })
		input := i % 2
		st.Node.AddInit(func(ctx sim.Context) { _ = st.ABA.Propose(ctx, input) })
		if attach != nil {
			attach(pid, st)
		}
		if err := nw.Register(st.Node); err != nil {
			t.Fatal(err)
		}
	}
	done := func() bool { return len(decisions) == n }
	steps, err := nw.RunUntil(done, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	st := nw.Stats()
	return simRunResult{
		decisions:   decisions,
		steps:       steps,
		virtualTime: nw.Now(),
		messages:    st.Sent,
		bytes:       st.TotalBytes(),
		frames:      st.Frames,
	}
}

// TestObsHooksPreserveSchedule is the shape-preservation contract for the
// observability layer: a run with every trace hook installed (feeding a
// registry and a tracer) must be byte-for-byte the same execution as a
// run with no hooks — identical decisions, delivery count, virtual
// clock, and traffic totals.
func TestObsHooksPreserveSchedule(t *testing.T) {
	const n, tf = 4, 1
	for _, seed := range []int64{1, 3, 17} {
		plain := runADHSim(t, n, tf, seed, nil)

		reg := obs.NewRegistry()
		accepts := reg.Counter("rb_accepts")
		flips := reg.Counter("coin_flips")
		decides := reg.Counter("decisions")
		tracers := make([]*obs.Tracer, n+1)
		traced := runADHSim(t, n, tf, seed, func(pid int, st *core.Stack) {
			tr := obs.NewTracer(pid, 1024)
			tracers[pid] = tr
			st.SetTraceHooks(&core.TraceHooks{
				RBAccept: func(origin sim.ProcID, tag proto.Tag, size int) {
					accepts.Inc()
					tr.Record(obs.KindRBAccept, 0, int(origin), uint64(tag.Proto), uint64(tag.Step), uint64(size))
				},
				MWShare: func(id proto.MWID) {
					tr.Record(obs.KindMWShare, 0, int(id.Key.Dealer), uint64(id.Key.Moderator), uint64(id.Key.Slot), uint64(id.Session.Kind))
				},
				MWRecon: func(id proto.MWID) {
					tr.Record(obs.KindMWRecon, 0, int(id.Key.Dealer), uint64(id.Key.Moderator), uint64(id.Key.Slot), uint64(id.Session.Kind))
				},
				Coin: func(round uint64, bit int) {
					flips.Inc()
					tr.Record(obs.KindCoin, 0, 0, round, uint64(bit), 0)
				},
				ABARound: func(round uint64) {
					tr.Record(obs.KindABARound, 0, 0, round, 0, 0)
				},
				Decide: func(v int) {
					decides.Inc()
					tr.Record(obs.KindDecide, 0, 0, uint64(v), 0, 0)
				},
			})
		})

		if traced.steps != plain.steps || traced.virtualTime != plain.virtualTime {
			t.Fatalf("seed %d: schedule diverged: steps %d vs %d, vtime %d vs %d",
				seed, traced.steps, plain.steps, traced.virtualTime, plain.virtualTime)
		}
		if traced.messages != plain.messages || traced.bytes != plain.bytes || traced.frames != plain.frames {
			t.Fatalf("seed %d: traffic diverged: msgs %d vs %d, bytes %d vs %d, frames %d vs %d",
				seed, traced.messages, plain.messages, traced.bytes, plain.bytes, traced.frames, plain.frames)
		}
		for pid, v := range plain.decisions {
			if tv, ok := traced.decisions[pid]; !ok || tv != v {
				t.Fatalf("seed %d: node %d decided %d (traced) vs %d (plain)", seed, pid, tv, v)
			}
		}

		// The instrumented run must actually have observed the protocol.
		if decides.Value() != int64(n) {
			t.Fatalf("seed %d: decide counter = %d, want %d", seed, decides.Value(), n)
		}
		if accepts.Value() == 0 || flips.Value() == 0 {
			t.Fatalf("seed %d: accepts=%d flips=%d, want both nonzero", seed, accepts.Value(), flips.Value())
		}
		for pid := 1; pid <= n; pid++ {
			tr := tracers[pid]
			if tr.Total() == 0 {
				t.Fatalf("seed %d: node %d tracer recorded nothing", seed, pid)
			}
			var sawDecide bool
			for _, e := range tr.Events() {
				if e.Kind == obs.KindDecide {
					sawDecide = true
				}
			}
			if !sawDecide {
				t.Fatalf("seed %d: node %d trace has no decide event", seed, pid)
			}
		}
	}
}
