package transport

import (
	"math/rand"
	"sync"
	"time"

	"svssba/internal/sim"
)

// FaultConfig describes transport-level faults injected on the outbound
// side of one endpoint. This is where the cluster harness models lossy
// and slow links without touching protocol code: a crash is Close, a
// slow link is MaxDelay, a lossy sender is DropProb.
type FaultConfig struct {
	// Seed drives the drop and delay randomness.
	Seed int64
	// DropProb is the probability in [0,1) that an outbound frame is
	// silently discarded. A dropping endpoint behaves like a partially
	// silent Byzantine process and must be counted against the fault
	// budget t when asserting agreement.
	DropProb float64
	// MaxDelay, when positive, delays each outbound frame by a uniform
	// random duration in [0, MaxDelay). Delays are per-frame, so frames
	// on one link can reorder — legal asynchrony, safe on honest nodes.
	MaxDelay time.Duration
}

// FaultLink wraps a Transport, injecting the configured faults on Send.
// Recv and lifecycle pass through to the inner transport.
type FaultLink struct {
	inner Transport
	cfg   FaultConfig

	mu  sync.Mutex
	rnd *rand.Rand
}

var _ Transport = (*FaultLink)(nil)

// WithFaults wraps tr with outbound fault injection. A zero cfg (no
// drop, no delay) returns tr unchanged.
func WithFaults(tr Transport, cfg FaultConfig) Transport {
	if cfg.DropProb == 0 && cfg.MaxDelay == 0 {
		return tr
	}
	return &FaultLink{
		inner: tr,
		cfg:   cfg,
		rnd:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

func (f *FaultLink) Self() sim.ProcID   { return f.inner.Self() }
func (f *FaultLink) Start() error       { return f.inner.Start() }
func (f *FaultLink) Recv() <-chan Frame { return f.inner.Recv() }
func (f *FaultLink) Close() error       { return f.inner.Close() }

func (f *FaultLink) Send(to sim.ProcID, data []byte) error {
	f.mu.Lock()
	drop := f.cfg.DropProb > 0 && f.rnd.Float64() < f.cfg.DropProb
	var delay time.Duration
	if !drop && f.cfg.MaxDelay > 0 {
		delay = time.Duration(f.rnd.Int63n(int64(f.cfg.MaxDelay)))
	}
	f.mu.Unlock()
	if drop {
		return nil
	}
	if delay == 0 {
		return f.inner.Send(to, data)
	}
	time.AfterFunc(delay, func() {
		// The inner transport drops frames sent after Close, so a
		// late-firing timer on a stopped endpoint is harmless.
		_ = f.inner.Send(to, data)
	})
	return nil
}
