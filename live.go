package svssba

import (
	"fmt"
	"sync"
	"time"

	"svssba/internal/core"
	"svssba/internal/proto"
	"svssba/internal/sim"
)

// LiveConfig describes an agreement run on the live goroutine runtime:
// one goroutine per process, randomized real delays, and every message
// round-tripped through the binary wire codec.
type LiveConfig struct {
	N, T   int
	Seed   int64
	Inputs []int
	// MaxDelay is the per-message delivery delay bound (default 2ms).
	MaxDelay time.Duration
	// Timeout bounds the whole run (default 60s).
	Timeout time.Duration
}

// LiveResult reports a live run.
type LiveResult struct {
	Decisions map[int]int
	Agreed    bool
	Value     int
	Messages  int64
	Bytes     int64
	Elapsed   time.Duration
}

// RunLive executes the paper's protocol on the live runtime. It
// demonstrates that the event-driven protocol cores are runtime-agnostic:
// the same state machines run under real concurrency with encoded
// messages on the wire.
func RunLive(cfg LiveConfig) (*LiveResult, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("svssba: need at least 2 processes")
	}
	if cfg.T == 0 {
		cfg.T = (cfg.N - 1) / 3
	}
	if len(cfg.Inputs) == 0 {
		cfg.Inputs = make([]int, cfg.N)
		for i := range cfg.Inputs {
			cfg.Inputs[i] = i % 2
		}
	}
	if len(cfg.Inputs) != cfg.N {
		return nil, fmt.Errorf("svssba: %d inputs for %d processes", len(cfg.Inputs), cfg.N)
	}
	if cfg.MaxDelay == 0 {
		cfg.MaxDelay = 2 * time.Millisecond
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 60 * time.Second
	}

	l := sim.NewLiveNet(cfg.N, cfg.T, cfg.Seed,
		sim.WithCodec(core.NewCodec()),
		sim.WithMaxDelay(cfg.MaxDelay),
	)

	var (
		mu        sync.Mutex
		decisions = make(map[int]int)
	)
	for i := 1; i <= cfg.N; i++ {
		pid := i
		st := core.NewStack(sim.ProcID(i), nil)
		st.OnDecide(func(_ sim.Context, v int) {
			mu.Lock()
			decisions[pid] = v
			mu.Unlock()
		})
		input := cfg.Inputs[i-1]
		st.Node.AddInit(func(ctx sim.Context) {
			_ = st.ABA.Propose(ctx, input)
		})
		if err := l.Register(st.Node); err != nil {
			return nil, err
		}
	}

	start := time.Now()
	if err := l.Start(); err != nil {
		return nil, err
	}
	deadline := time.After(cfg.Timeout)
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	defer l.Stop()
	for {
		mu.Lock()
		done := len(decisions) == cfg.N
		mu.Unlock()
		if done {
			break
		}
		select {
		case <-deadline:
			return nil, fmt.Errorf("svssba: live run timed out after %v", cfg.Timeout)
		case <-tick.C:
		}
	}
	l.Stop()
	if errs := l.Errs(); len(errs) > 0 {
		return nil, fmt.Errorf("svssba: live runtime errors: %v", errs[0])
	}

	res := &LiveResult{
		Decisions: make(map[int]int, cfg.N),
		Agreed:    true,
		Elapsed:   time.Since(start),
	}
	mu.Lock()
	for pid, v := range decisions {
		res.Decisions[pid] = v
	}
	mu.Unlock()
	res.Value = res.Decisions[1]
	for _, v := range res.Decisions {
		if v != res.Value {
			res.Agreed = false
		}
	}
	st := l.Stats()
	res.Messages = st.Sent
	res.Bytes = st.TotalBytes()
	return res, nil
}

// proto import is used for fault typing in sibling files.
var _ = proto.KindApp
