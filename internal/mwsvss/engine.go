package mwsvss

import (
	"fmt"
	"sort"

	"svssba/internal/dmm"
	"svssba/internal/field"
	"svssba/internal/intern"
	"svssba/internal/poly"
	"svssba/internal/proto"
	"svssba/internal/sim"
)

// Host is what the engine needs from its process: identity, reliable
// broadcast, and the DMM layer. internal/core.Node implements it.
type Host interface {
	Self() sim.ProcID
	Broadcast(ctx sim.Context, tag proto.Tag, value []byte)
	DMM() *dmm.DMM
}

// Output is the result of reconstruct protocol R': a field value or ⊥.
type Output struct {
	Value  field.Element
	Bottom bool
}

// String implements fmt.Stringer.
func (o Output) String() string {
	if o.Bottom {
		return "⊥"
	}
	return o.Value.String()
}

// Callbacks notify the layer above (SVSS, tests) of instance progress.
type Callbacks struct {
	// ShareComplete fires when S' step 9 completes locally (once per
	// instance, covering every batch slot at once — the share phase is
	// shared across the batch).
	ShareComplete func(ctx sim.Context, id proto.MWID)
	// ReconstructComplete fires when R' step 4 outputs locally for one
	// batch slot (slot 0 for classic single-secret instances).
	ReconstructComplete func(ctx sim.Context, id proto.MWID, slot int, out Output)
}

// MaxBatchSlots bounds the batch width one instance will track. The
// honest maximum is the pool's dealing width (rounds × n per ABA times
// n ABAs); the bound exists so a Byzantine reveal broadcast with a huge
// slot index in its tag cannot make us allocate per-slot reconstruct
// state for slots no dealer ever dealt.
const MaxBatchSlots = 1024

// rval is a buffered reconstruct-phase broadcast: origin claims its share
// of f^slot_target is Val.
type rval struct {
	origin sim.ProcID
	target sim.ProcID
	slot   int
	val    field.Element
}

// instance holds the per-instance state of one process.
//
// One instance carries a batch of k independent secrets: every secret
// has its own polynomials and values, but the quorum machinery of S'
// (echo/ack flow, L/M/OK sets) runs ONCE for the whole batch — a
// confirmer only enters L_j when its echo vector matches on every slot,
// so the n+2n² message storm of setup is paid once per batch instead of
// once per secret. Reconstruction stays per slot: each slot's values
// are revealed and interpolated independently, so handing out one slot
// never leaks the others.
//
// Per-process collections are dense: sets of processes are bitsets and
// per-process values live in []T slices indexed by process id (1..n,
// slot 0 unused), allocated lazily on first use and released as the
// protocol steps that feed them close. Per-slot value vectors are flat
// slot-major slices ([s*n + l-1]).
type instance struct {
	id proto.MWID
	k  int // batch width; 0 until the dealer's geometry is known

	// Dealer-only state (step 1).
	dealerPolys []poly.Poly // slot-major: f^s_l at [s*n + l-1]
	isDealing   bool

	// Moderator-only state (steps 5-6).
	modSecrets []field.Element // s'^s per slot (nil until set)
	modFs      []poly.Poly     // f^s per slot
	modFSet    bool
	modVals    [][]field.Element // f̂^j_0 vector from j (index j; nil until first value)
	modValSeen intern.ProcSet
	modM       intern.ProcSet // M being built
	mBroadcast bool

	// Share-phase participant state (steps 2-4, 8-9).
	vals      []field.Element // slot-major: f̂^j_l at [s*n + l-1]
	valsSet   bool
	myPolys   []poly.Poly // f̂^s_j per slot
	myPolySet bool
	sentStep2 bool
	echoVals  [][]field.Element // echo vector from l (index l; nil until first echo)
	echoSeen  intern.ProcSet    // first echo per l only
	ackFrom   intern.ProcSet    // RB-accepted acks
	dealSet   intern.ProcSet    // live L_j (step 3)
	lSnapshot []sim.ProcID      // broadcast L_j (step 4)
	lDone     bool
	lSets     [][]sim.ProcID // accepted L̂_l per origin l (index l)
	lKnown    intern.ProcSet // origins with an accepted L̂
	mSet      []sim.ProcID   // accepted M̂
	mKnown    bool
	dealerOK  bool // dealer broadcast its OK (step 7)
	okKnown   bool // OK accepted (step 9)
	shareDone bool
	dropDone  bool // step 8 executed

	// Reconstruct state (R' steps 1-4), per slot. The per-target
	// collections are flat slices indexed [slot*(n+1) + target], grown
	// on demand to the highest slot in play.
	reconWanted  intern.Bits // slots requested locally
	reconStarted intern.Bits // slots whose reveal pass ran
	rvalsPending []rval      // accepted but not yet qualified
	rvalSeen     []intern.ProcSet
	kSets        [][]poly.Point
	fBar         []poly.Poly
	fBarSet      intern.Bits // index slot*(n+1)+target
	reconDone    intern.Bits // slots output
	mSwept       bool        // step 4 ran its one-time full sweep at M̂ arrival
	startQueue   []int       // slots wanted but not yet revealed (drained by R' step 1)
}

var debugRecon = false

// Engine runs all MW-SVSS instances of one process. Instance ids are
// interned to dense ids; the slab holds pointers (not values) because
// advance keeps an instance alive across broadcasts and callbacks that
// can re-enter the engine and grow the slab.
type Engine struct {
	host  Host
	cb    Callbacks
	table intern.Table[proto.MWID]
	insts []*instance
	n     int // system size, captured from the first ctx
}

// New returns an MW-SVSS engine for the host process.
func New(host Host, cb Callbacks) *Engine {
	return &Engine{host: host, cb: cb}
}

func (e *Engine) inst(ctx sim.Context, id proto.MWID) *instance {
	slot, fresh := e.table.Intern(id)
	if int(slot) >= len(e.insts) {
		e.insts = append(e.insts, nil)
	}
	if fresh {
		if e.n == 0 {
			e.n = ctx.N()
		}
		in := e.insts[slot]
		if in == nil {
			in = &instance{}
			e.insts[slot] = in
		}
		*in = instance{id: id}
		e.host.DMM().BeginShare(id)
	}
	return e.insts[slot]
}

// lookup returns the instance for id, or nil.
func (e *Engine) lookup(id proto.MWID) *instance {
	slot := e.table.Lookup(id)
	if slot == intern.NoID {
		return nil
	}
	return e.insts[slot]
}

// Instance reports whether the engine has state for id (for tests).
func (e *Engine) Instance(id proto.MWID) bool { return e.lookup(id) != nil }

// ShareDone reports whether S' completed locally for id.
func (e *Engine) ShareDone(id proto.MWID) bool {
	in := e.lookup(id)
	return in != nil && in.shareDone
}

// ReconDone reports whether R' completed locally for slot 0 of id.
func (e *Engine) ReconDone(id proto.MWID) bool { return e.ReconDoneSlot(id, 0) }

// ReconDoneSlot reports whether R' completed locally for one slot of id.
func (e *Engine) ReconDoneSlot(id proto.MWID, slot int) bool {
	in := e.lookup(id)
	return in != nil && in.reconDone.Has(slot)
}

// Width returns the batch width of id (0 when unknown).
func (e *Engine) Width(id proto.MWID) int {
	in := e.lookup(id)
	if in == nil {
		return 0
	}
	return in.k
}

// Live returns the number of live instances (retirement tests).
func (e *Engine) Live() int { return e.table.Len() }

// SlabCap returns the instance slab's high-water slot count.
func (e *Engine) SlabCap() int { return e.table.HighWater() }

// Created returns the cumulative number of MW-SVSS instances ever created.
func (e *Engine) Created() uint64 { return e.table.Created() }

// Reset releases every instance and its interned id. The slab keeps
// its instance objects for reuse (freshly interned ids re-initialize
// them in place), so a reset-and-refill cycle allocates nothing. Used
// when the owning stack retires and by benchmarks.
func (e *Engine) Reset() {
	for _, in := range e.insts {
		if in != nil {
			*in = instance{}
		}
	}
	e.table.Reset()
}

// tag builds an MW-SVSS broadcast tag for this instance.
func tag(id proto.MWID, step uint8, a uint32) proto.Tag {
	return proto.Tag{Proto: proto.ProtoMW, Session: id.Session, MW: id.Key, Step: step, A: a}
}

// setWidth installs the dealer-declared batch width; a dealer that
// equivocates on the width across its messages gets the later ones
// dropped (its instance wedges, which only hurts the dealer).
func (in *instance) setWidth(k int) bool {
	if k < 1 || k > MaxBatchSlots {
		return false
	}
	if in.k == 0 {
		in.k = k
	}
	return in.k == k
}

// Share runs share step 1 for a single secret (batch width 1).
func (e *Engine) Share(ctx sim.Context, id proto.MWID, secret field.Element) error {
	return e.ShareVec(ctx, id, []field.Element{secret})
}

// ShareVec runs share step 1 for a batch of secrets: the calling process
// must be the instance dealer; per slot it draws f^s, f^s_1..f^s_n and
// distributes the share vectors. One quorum phase then covers the whole
// batch.
func (e *Engine) ShareVec(ctx sim.Context, id proto.MWID, secrets []field.Element) error {
	if id.Key.Dealer != e.host.Self() {
		return fmt.Errorf("mwsvss: process %d is not dealer of %s", e.host.Self(), id)
	}
	k := len(secrets)
	if k < 1 || k > MaxBatchSlots {
		return fmt.Errorf("mwsvss: batch width %d out of range 1..%d", k, MaxBatchSlots)
	}
	in := e.inst(ctx, id)
	if in.isDealing {
		return fmt.Errorf("mwsvss: instance %s already dealt", id)
	}
	if !in.setWidth(k) {
		return fmt.Errorf("mwsvss: instance %s already has width %d, not %d", id, in.k, k)
	}
	in.isDealing = true

	n, t := ctx.N(), ctx.T()
	rng := ctx.Rand()
	fs := make([]poly.Poly, k)
	in.dealerPolys = make([]poly.Poly, k*n)
	for s := 0; s < k; s++ {
		fs[s] = poly.NewRandom(rng, t, secrets[s])
		for l := 1; l <= n; l++ {
			in.dealerPolys[s*n+l-1] = poly.NewRandom(rng, t, fs[s].EvalUint(uint64(l)))
		}
	}
	for j := 1; j <= n; j++ {
		vals := make([]field.Element, k*n)
		for s := 0; s < k; s++ {
			for l := 1; l <= n; l++ {
				vals[s*n+l-1] = in.dealerPolys[s*n+l-1].EvalUint(uint64(j))
			}
		}
		ctx.Send(sim.ProcID(j), DealVals{MW: id, Vals: vals})
	}
	for l := 1; l <= n; l++ {
		shares := make([]field.Element, 0, k*(t+1))
		for s := 0; s < k; s++ {
			shares = append(shares, in.dealerPolys[s*n+l-1].EvalRange(t+1)...)
		}
		ctx.Send(sim.ProcID(l), DealPoly{MW: id, Shares: shares})
	}
	mod := make([]field.Element, 0, k*(t+1))
	for s := 0; s < k; s++ {
		mod = append(mod, fs[s].EvalRange(t+1)...)
	}
	ctx.Send(id.Key.Moderator, DealMod{MW: id, Shares: mod})
	return nil
}

// SetModeratorSecret provides the moderator's input s' for a width-1
// instance (the calling process must be the instance moderator).
func (e *Engine) SetModeratorSecret(ctx sim.Context, id proto.MWID, s field.Element) error {
	return e.SetModeratorSecretVec(ctx, id, []field.Element{s})
}

// SetModeratorSecretVec provides the moderator's input vector s'^0..s'^k-1.
func (e *Engine) SetModeratorSecretVec(ctx sim.Context, id proto.MWID, s []field.Element) error {
	if id.Key.Moderator != e.host.Self() {
		return fmt.Errorf("mwsvss: process %d is not moderator of %s", e.host.Self(), id)
	}
	in := e.inst(ctx, id)
	in.modSecrets = append([]field.Element(nil), s...)
	e.advance(ctx, in)
	return nil
}

// Reconstruct begins protocol R' for slot 0 of id. If the share phase
// has not completed locally yet, reconstruction starts as soon as it
// does.
func (e *Engine) Reconstruct(ctx sim.Context, id proto.MWID) {
	e.ReconstructSlot(ctx, id, 0)
}

// ReconstructSlot begins protocol R' for one batch slot of id. Each
// slot reconstructs independently: only its own value vector entries
// are revealed, so the batch's other secrets stay hidden.
func (e *Engine) ReconstructSlot(ctx sim.Context, id proto.MWID, slot int) {
	e.ReconstructSlots(ctx, id, []int{slot})
}

// ReconstructSlots begins protocol R' for a set of batch slots in one
// pass. The slots enqueue together before a single advance, so the
// reveal drain can coalesce contiguous runs into slab broadcasts (one
// per run instead of one per slot).
func (e *Engine) ReconstructSlots(ctx sim.Context, id proto.MWID, slots []int) {
	pump := false
	in := e.inst(ctx, id)
	for _, slot := range slots {
		if slot < 0 || slot >= MaxBatchSlots {
			continue
		}
		pump = true
		if in.reconWanted.Add(slot) {
			in.startQueue = append(in.startQueue, slot)
		}
	}
	if pump {
		e.advance(ctx, in)
	}
}

// OnMessage handles the direct (non-broadcast) MW-SVSS messages.
func (e *Engine) OnMessage(ctx sim.Context, m sim.Message) {
	switch p := m.Payload.(type) {
	case DealVals:
		in := e.inst(ctx, p.MW)
		// Step 2 precondition: the values must come from the dealer and
		// agree with the instance's batch geometry.
		n := ctx.N()
		if m.From != p.MW.Key.Dealer || in.valsSet || len(p.Vals) == 0 || len(p.Vals)%n != 0 {
			return
		}
		if !in.setWidth(len(p.Vals) / n) {
			return
		}
		in.vals = p.Vals
		in.valsSet = true
		e.advance(ctx, in)
	case DealPoly:
		in := e.inst(ctx, p.MW)
		span := ctx.T() + 1
		if m.From != p.MW.Key.Dealer || in.myPolySet || len(p.Shares) == 0 || len(p.Shares)%span != 0 {
			return
		}
		if !in.setWidth(len(p.Shares) / span) {
			return
		}
		polys := make([]poly.Poly, in.k)
		for s := 0; s < in.k; s++ {
			f, err := poly.InterpolateFromShares(p.Shares[s*span:(s+1)*span], ctx.T())
			if err != nil {
				return
			}
			polys[s] = f
		}
		in.myPolys = polys
		in.myPolySet = true
		e.advance(ctx, in)
	case DealMod:
		if p.MW.Key.Moderator != e.host.Self() {
			return
		}
		in := e.inst(ctx, p.MW)
		span := ctx.T() + 1
		if m.From != p.MW.Key.Dealer || in.modFSet || len(p.Shares) == 0 || len(p.Shares)%span != 0 {
			return
		}
		if !in.setWidth(len(p.Shares) / span) {
			return
		}
		polys := make([]poly.Poly, in.k)
		for s := 0; s < in.k; s++ {
			f, err := poly.InterpolateFromShares(p.Shares[s*span:(s+1)*span], ctx.T())
			if err != nil {
				return
			}
			polys[s] = f
		}
		in.modFs = polys
		in.modFSet = true
		e.advance(ctx, in)
	case Echo:
		in := e.inst(ctx, p.MW)
		// Fan-out pruning: echoes only feed the live-L admission of step
		// 3, which stops at the L_j snapshot (step 4). Echoes arriving
		// after the snapshot are inert for this instance — never recorded,
		// never re-sent (step 2's one-shot guard already holds), so the
		// per-instance echo state stays bounded at the snapshot size.
		if in.lDone {
			return
		}
		if len(p.Vals) == 0 || len(p.Vals) > MaxBatchSlots {
			return
		}
		if !in.echoSeen.Add(m.From) {
			return
		}
		if in.echoVals == nil {
			in.echoVals = make([][]field.Element, e.n+1)
		}
		in.echoVals[m.From] = p.Vals
		e.advance(ctx, in)
	case ModValue:
		if p.MW.Key.Moderator != e.host.Self() {
			return
		}
		in := e.inst(ctx, p.MW)
		// Same pruning on the moderator side: values only feed the M
		// admission of steps 5-6, which stops once M is broadcast.
		if in.mBroadcast {
			return
		}
		if len(p.Vals) == 0 || len(p.Vals) > MaxBatchSlots {
			return
		}
		if !in.modValSeen.Add(m.From) {
			return
		}
		if in.modVals == nil {
			in.modVals = make([][]field.Element, e.n+1)
		}
		in.modVals[m.From] = p.Vals
		e.advance(ctx, in)
	}
}

// rvalTag packs a reveal broadcast's (slot, target) into the tag's A
// field: slot in the high 16 bits, polynomial index in the low 16. For
// slot 0 — every classic width-1 instance — the packing degenerates to
// the legacy A = target, keeping the v1 wire image byte-identical.
func rvalTag(slot int, target sim.ProcID) uint32 {
	return uint32(slot)<<16 | uint32(uint16(target))
}

func rvalUnpack(a uint32) (slot int, target sim.ProcID) {
	return int(a >> 16), sim.ProcID(a & 0xffff)
}

// rIdx flattens (slot, target) for the per-slot reconstruct collections.
func rIdx(n, slot int, target sim.ProcID) int { return slot*(n+1) + int(target) }

// ensureRecon grows the per-slot reconstruct collections to cover slot.
func (in *instance) ensureRecon(n, slot int) {
	want := (slot + 1) * (n + 1)
	for len(in.rvalSeen) < want {
		in.rvalSeen = append(in.rvalSeen, intern.ProcSet{})
	}
	for len(in.kSets) < want {
		in.kSets = append(in.kSets, nil)
	}
	for len(in.fBar) < want {
		in.fBar = append(in.fBar, poly.Poly{})
	}
}

// ObserveBroadcast is the pre-filter hook: it runs DMM steps 2/3 on
// reconstruct-phase value broadcasts before any delay/park decision.
func (e *Engine) ObserveBroadcast(origin sim.ProcID, t proto.Tag, value []byte) {
	switch t.Step {
	case StepRVal:
		v, ok := DecodeElem(value)
		if !ok {
			return
		}
		id := proto.MWID{Session: t.Session, Key: t.MW}
		slot, target := rvalUnpack(t.A)
		e.host.DMM().ObserveValueBroadcast(origin, id, target, uint16(slot), v)
	case StepRValVec:
		vs, ok := DecodeElems(value)
		if !ok {
			return
		}
		id := proto.MWID{Session: t.Session, Key: t.MW}
		for i, v := range vs {
			e.host.DMM().ObserveValueBroadcast(origin, id, sim.ProcID(i+1), uint16(t.A), v)
		}
	case StepRValSlab:
		if e.n == 0 {
			return
		}
		slots, rows, ok := DecodeSlab(value, e.n)
		if !ok {
			return
		}
		id := proto.MWID{Session: t.Session, Key: t.MW}
		for si, slot := range slots {
			row := rows[si*e.n : (si+1)*e.n]
			for i, v := range row {
				e.host.DMM().ObserveValueBroadcast(origin, id, sim.ProcID(i+1), uint16(slot), v)
			}
		}
	}
}

// OnBroadcast handles RB-accepted MW-SVSS broadcasts.
func (e *Engine) OnBroadcast(ctx sim.Context, origin sim.ProcID, t proto.Tag, value []byte) {
	id := proto.MWID{Session: t.Session, Key: t.MW}
	in := e.inst(ctx, id)
	switch t.Step {
	case StepAck:
		in.ackFrom.Add(origin)
	case StepL:
		if in.lKnown.Has(origin) {
			return
		}
		ps, ok := DecodeProcs(value, ctx.N())
		if !ok {
			return
		}
		if in.lSets == nil {
			in.lSets = make([][]sim.ProcID, e.n+1)
		}
		in.lKnown.Add(origin)
		in.lSets[origin] = ps
	case StepM:
		if origin != id.Key.Moderator || in.mKnown {
			return
		}
		ps, ok := DecodeProcs(value, ctx.N())
		if !ok {
			return
		}
		in.mSet = ps
		in.mKnown = true
	case StepOK:
		if origin != id.Key.Dealer {
			return
		}
		in.okKnown = true
	case StepRVal:
		// Reconstruction pruning: once a slot's R' produced its output
		// locally, or once f̄^slot_target is already interpolated, further
		// value broadcasts for that (slot, target) change nothing here.
		// They are still observed by the DMM (ObserveBroadcast runs before
		// this handler and resolves ACK/DEAL expectations unconditionally),
		// so only the dead protocol bookkeeping is skipped. The reveal
		// broadcast itself (R' step 1) is never suppressed: every
		// confirmer's reveal resolves DMM expectations installed at other
		// processes, and a suppressed reveal would leave those expectations
		// permanently stale — an implicit shun of an honest process.
		slot, target := rvalUnpack(t.A)
		if slot >= MaxBatchSlots || in.reconDone.Has(slot) {
			return
		}
		if in.k > 0 && slot >= in.k {
			return
		}
		if target < 1 || int(target) > ctx.N() {
			return
		}
		if in.fBarSet.Has(rIdx(ctx.N(), slot, target)) {
			return
		}
		in.ensureRecon(ctx.N(), slot)
		if !in.rvalSeen[rIdx(ctx.N(), slot, target)].Add(origin) {
			return
		}
		v, ok := DecodeElem(value)
		if !ok {
			return
		}
		in.rvalsPending = append(in.rvalsPending, rval{origin: origin, target: target, slot: slot, val: v})
	case StepRValVec:
		// The batched reveal: one broadcast carries the origin's share of
		// every monitored polynomial for the slot. Each entry runs the
		// same per-(slot, target) pruning and dedup as a StepRVal arrival.
		slot := int(t.A)
		if slot >= MaxBatchSlots || in.reconDone.Has(slot) {
			return
		}
		if in.k > 0 && slot >= in.k {
			return
		}
		vs, ok := DecodeElems(value)
		if !ok || len(vs) != ctx.N() {
			return
		}
		in.ensureRecon(ctx.N(), slot)
		for l := 1; l <= ctx.N(); l++ {
			target := sim.ProcID(l)
			idx := rIdx(ctx.N(), slot, target)
			if in.fBarSet.Has(idx) {
				continue
			}
			if !in.rvalSeen[idx].Add(origin) {
				continue
			}
			in.rvalsPending = append(in.rvalsPending, rval{origin: origin, target: target, slot: slot, val: vs[l-1]})
		}
	case StepRValSlab:
		// A multi-slot batched reveal: one row per named slot. Each row
		// runs through the same per-(slot, target) admission as a
		// StepRValVec arrival.
		n := ctx.N()
		slots, rows, ok := DecodeSlab(value, n)
		if !ok {
			return
		}
		for si, slot := range slots {
			if in.reconDone.Has(slot) {
				continue
			}
			if in.k > 0 && slot >= in.k {
				continue
			}
			in.ensureRecon(n, slot)
			row := rows[si*n : (si+1)*n]
			for l := 1; l <= n; l++ {
				target := sim.ProcID(l)
				idx := rIdx(n, slot, target)
				if in.fBarSet.Has(idx) {
					continue
				}
				if !in.rvalSeen[idx].Add(origin) {
					continue
				}
				in.rvalsPending = append(in.rvalsPending, rval{origin: origin, target: target, slot: slot, val: row[l-1]})
			}
		}
	}
	e.advance(ctx, in)
}

// advance re-evaluates every enabled protocol step for the instance.
func (e *Engine) advance(ctx sim.Context, in *instance) {
	self := e.host.Self()
	n, t := ctx.N(), ctx.T()

	// Step 2: echo dealer values and RB an ack. The echo to l carries the
	// whole per-slot vector f̂^j_l — one message per counterparty for the
	// entire batch.
	if in.valsSet && in.myPolySet && !in.sentStep2 {
		in.sentStep2 = true
		for l := 1; l <= n; l++ {
			es := make([]field.Element, in.k)
			for s := 0; s < in.k; s++ {
				es[s] = in.vals[s*n+l-1]
			}
			ctx.Send(sim.ProcID(l), Echo{MW: in.id, Vals: es})
		}
		e.host.Broadcast(ctx, tag(in.id, StepAck, 0), nil)
	}

	// Step 3: admit confirmers into the live L set and install DEAL
	// expectations. A confirmer is admitted only when its echo vector
	// matches our monitored polynomials on EVERY slot — one admission
	// covers the batch, one expectation tuple is installed per slot.
	// Stops once L_j is broadcast (the snapshot names the processes whose
	// public confirmation we await). Set bits iterate in process-id order
	// — admission is order-insensitive, but the run must stay a
	// deterministic function of the seed.
	if in.myPolySet && !in.lDone {
		in.echoSeen.ForEach(func(l sim.ProcID) {
			if in.dealSet.Has(l) || !in.ackFrom.Has(l) {
				return
			}
			vs := in.echoVals[l]
			if len(vs) != in.k {
				return
			}
			for s := 0; s < in.k; s++ {
				if vs[s] != in.myPolys[s].EvalUint(uint64(l)) {
					return
				}
			}
			in.dealSet.Add(l)
			e.host.DMM().ExpectVec(l, self, in.id, dmm.SourceDEAL, vs)
		})
	}

	// Step 4: broadcast the snapshot L_j and send f̂^s_j(0) per slot to
	// the moderator.
	if !in.lDone && in.dealSet.Count() >= n-t {
		in.lDone = true
		in.lSnapshot = in.dealSet.Slice()
		// The echo buffer only feeds step 3, which the snapshot closes;
		// release it (late echoes are dropped on arrival from here on).
		in.echoVals = nil
		in.echoSeen.Clear()
		e.host.Broadcast(ctx, tag(in.id, StepL, 0), EncodeProcs(in.lSnapshot))
		vs := make([]field.Element, in.k)
		for s := 0; s < in.k; s++ {
			vs[s] = in.myPolys[s].Secret()
		}
		ctx.Send(in.id.Key.Moderator, ModValue{MW: in.id, Vals: vs})
	}

	// Steps 5-6 (moderator): admit j into M when every check passes on
	// every slot, then broadcast M once it reaches n-t.
	if in.id.Key.Moderator == self && in.modSecrets != nil && in.modFSet &&
		len(in.modSecrets) == in.k && e.modSecretsMatch(in) && !in.mBroadcast {
		in.modValSeen.ForEach(func(j sim.ProcID) {
			if in.modM.Has(j) || !in.lKnown.Has(j) {
				return
			}
			vs := in.modVals[j]
			if len(vs) != in.k {
				return
			}
			for s := 0; s < in.k; s++ {
				if vs[s] != in.modFs[s].EvalUint(uint64(j)) {
					return
				}
			}
			if !in.ackFrom.ContainsAll(in.lSets[j]) {
				return
			}
			in.modM.Add(j)
		})
		if in.modM.Count() >= n-t {
			in.mBroadcast = true
			// The value buffer only feeds the admission above, which the
			// M broadcast closes; release it.
			in.modVals = nil
			e.host.Broadcast(ctx, tag(in.id, StepM, 0), EncodeProcs(in.modM.Slice()))
		}
	}

	// Step 7 (dealer): once M̂, every L̂_j (j ∈ M̂) and their acks are in,
	// install ACK expectations (one per slot) and broadcast OK.
	if in.id.Key.Dealer == self && in.isDealing && in.mKnown && !in.dealerOK &&
		e.lSetsComplete(in) {
		in.dealerOK = true
		for _, j := range in.mSet {
			for _, l := range in.lSets[j] {
				vs := make([]field.Element, in.k)
				for s := 0; s < in.k; s++ {
					vs[s] = in.dealerPolys[s*n+int(j)-1].EvalUint(uint64(l))
				}
				e.host.DMM().ExpectVec(l, j, in.id, dmm.SourceACK, vs)
			}
		}
		e.host.Broadcast(ctx, tag(in.id, StepOK, 0), nil)
	}

	// Step 8: if the moderator's set excludes us, drop our DEAL
	// expectations for this session (all slots at once — confirmation is
	// batch-wide).
	if in.mKnown && !in.dropDone && !procsContain(in.mSet, self) {
		in.dropDone = true
		e.host.DMM().DropDealExpectations(in.id)
	}

	// Step 9: completion of S' — covers every slot of the batch.
	if !in.shareDone && in.okKnown && in.mKnown && e.lSetsComplete(in) {
		in.shareDone = true
		if e.cb.ShareComplete != nil {
			e.cb.ShareComplete(ctx, in.id)
		}
	}

	// R' step 1, per wanted slot: reveal our shares of every monitored
	// polynomial we confirmed (we appear in L̂_l for l ∈ M̂) — for that
	// slot ONLY. The rest of the batch stays hidden until someone asks
	// for it; a single reveal pass over the whole batch would leak every
	// future coin round to the adversary at the first flip.
	var startedNow []int
	if in.shareDone && len(in.startQueue) > 0 {
		queue := in.startQueue
		in.startQueue = in.startQueue[:0]
		for _, s := range queue {
			if !in.reconStarted.Add(s) {
				continue
			}
			startedNow = append(startedNow, s)
		}
		if in.valsSet && len(startedNow) > 0 {
			e.revealSlots(ctx, in, startedNow)
		}
	}

	// R' step 2: qualify buffered value broadcasts into the K sets,
	// collecting the touched cells so steps 3 and 4 only revisit state
	// that actually changed. The old full rescans were fine for width-1
	// sessions but turn O(width) per delivery on batched dealings —
	// thousands of events against a 64-slot instance each re-walked
	// every (slot, target) cell.
	var touched []int
	if in.mKnown {
		kept := in.rvalsPending[:0]
		for _, rv := range in.rvalsPending {
			idx := rIdx(n, rv.slot, rv.target)
			if in.fBarSet.Has(idx) {
				continue // f̄^slot_target already interpolated: surplus point
			}
			if !procsContain(in.mSet, rv.target) {
				continue // target outside M̂: irrelevant forever
			}
			if !in.lKnown.Has(rv.target) {
				kept = append(kept, rv) // L̂_target still in flight
				continue
			}
			if !procsContain(in.lSets[rv.target], rv.origin) {
				continue // never qualifies: origin not a confirmer
			}
			in.kSets[idx] = append(in.kSets[idx], poly.Point{
				X: field.New(uint64(rv.origin)),
				Y: rv.val,
			})
			touched = append(touched, idx)
		}
		in.rvalsPending = kept
	}

	// R' step 3: interpolate f̄^s_l from the first t+1 qualified points.
	// Only cells that gained a point this pass can newly qualify.
	var fresh []int
	for _, idx := range touched {
		pts := in.kSets[idx]
		if len(pts) < t+1 || in.fBarSet.Has(idx) {
			continue
		}
		f, err := poly.Interpolate(pts[:t+1])
		if err != nil {
			continue
		}
		in.fBar[idx] = f
		in.fBarSet.Add(idx)
		fresh = append(fresh, idx)
	}

	// R' step 4, per started slot: once every f̄^s_l (l ∈ M̂) is known,
	// interpolate f̄^s and output f̄^s(0), or ⊥ when no degree-t
	// polynomial fits. Completion is per slot, both here and in the DMM
	// (only the revealed slot's expectations may go stale). A slot's
	// completion condition can only flip when one of its cells gained an
	// f̄ (fresh), when the slot was just started, or — once — when M̂
	// lands; everything else re-checks nothing.
	if in.mKnown && len(in.mSet) > 0 {
		if !in.mSwept {
			in.mSwept = true
			in.reconStarted.ForEach(func(s int) { e.tryCompleteSlot(ctx, in, s) })
		} else {
			for _, s := range startedNow {
				e.tryCompleteSlot(ctx, in, s)
			}
			for _, idx := range fresh {
				e.tryCompleteSlot(ctx, in, idx/(n+1))
			}
		}
	}
}

// revealSlots emits the R' step 1 value broadcasts for newly started
// slots. Width-1 instances keep the classic per-polynomial StepRVal
// broadcasts (v1 wire parity). Batched instances reveal a slot's whole
// share row at once, and contiguous runs of slots — a coin flip opens
// one slot per attach target, which the supply maps to adjacent slots —
// collapse further into a single slab broadcast per run.
func (e *Engine) revealSlots(ctx sim.Context, in *instance, slots []int) {
	n := ctx.N()
	self := e.host.Self()
	if in.k == 1 {
		for _, s := range slots {
			if s >= in.k {
				continue
			}
			for _, l := range in.mSet {
				if procsContain(in.lSets[l], self) {
					e.host.Broadcast(ctx, tag(in.id, StepRVal, rvalTag(s, l)), EncodeElem(in.vals[s*n+int(l)-1]))
				}
			}
		}
		return
	}
	eligible := make([]int, 0, len(slots))
	for _, s := range slots {
		if s < in.k {
			eligible = append(eligible, s)
		}
	}
	if len(eligible) == 0 {
		return
	}
	sort.Ints(eligible)
	if len(eligible) == 1 {
		s := eligible[0]
		e.host.Broadcast(ctx, tag(in.id, StepRValVec, uint32(s)), EncodeElems(in.vals[s*n:(s+1)*n]))
		return
	}
	rows := make([]field.Element, 0, len(eligible)*n)
	for _, s := range eligible {
		rows = append(rows, in.vals[s*n:(s+1)*n]...)
	}
	// The tag's A field carries the first slot purely to keep the RB
	// instance key unique per slab: a slot starts at most once, so slab
	// slot lists never overlap across drains. Receivers read the slot
	// list from the payload, not the tag.
	e.host.Broadcast(ctx, tag(in.id, StepRValSlab, uint32(eligible[0])), EncodeSlab(eligible, rows))
}

// tryCompleteSlot finishes R' step 4 for one started slot if every
// f̄^slot_l (l ∈ M̂) is interpolated. Idempotent per slot.
func (e *Engine) tryCompleteSlot(ctx sim.Context, in *instance, s int) {
	n, t := ctx.N(), ctx.T()
	if in.reconDone.Has(s) || !in.reconStarted.Has(s) {
		return
	}
	in.ensureRecon(n, s)
	pts := make([]poly.Point, 0, len(in.mSet))
	for _, l := range in.mSet {
		idx := rIdx(n, s, l)
		if !in.fBarSet.Has(idx) {
			return
		}
		pts = append(pts, poly.Point{X: field.New(uint64(l)), Y: in.fBar[idx].Secret()})
	}
	in.reconDone.Add(s)
	out := Output{Bottom: true}
	if f, ok, err := poly.InterpolateDegree(pts, t); err == nil && ok {
		out = Output{Value: f.Secret()}
	}
	if debugRecon {
		fmt.Printf("DBG recon self=%d slot=%d pts=%v out=%v\n", e.host.Self(), s, pts, out)
	}
	e.host.DMM().CompleteReconstructSlot(in.id, uint16(s))
	if e.cb.ReconstructComplete != nil {
		e.cb.ReconstructComplete(ctx, in.id, s, out)
	}
}

// modSecretsMatch reports whether every slot's reconstructed dealer
// polynomial binds the moderator's input for that slot (the step 5
// precondition, batch-wide).
func (e *Engine) modSecretsMatch(in *instance) bool {
	for s := 0; s < in.k; s++ {
		if in.modFs[s].Secret() != in.modSecrets[s] {
			return false
		}
	}
	return true
}

// lSetsComplete reports whether M̂ is known, every L̂_j for j ∈ M̂ has been
// accepted, and every member of each such L̂_j has acked (the shared
// condition of steps 7 and 9).
func (e *Engine) lSetsComplete(in *instance) bool {
	if !in.mKnown {
		return false
	}
	for _, j := range in.mSet {
		if !in.lKnown.Has(j) {
			return false
		}
		if !in.ackFrom.ContainsAll(in.lSets[j]) {
			return false
		}
	}
	return true
}

func procsContain(ps []sim.ProcID, p sim.ProcID) bool {
	for _, q := range ps {
		if q == p {
			return true
		}
	}
	return false
}
