// Package trace provides the experiment metrics and plain-text/JSON
// table rendering used by the benchmark harness and the expsweep tool.
package trace

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table is a fixed-header plain-text table.
type Table struct {
	Title  string
	Header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row; cells are formatted with %v (floats with %.3g).
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		case float32:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// Rows returns a copy of the formatted data rows.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// MarshalJSON renders the table as {"title", "header", "rows"}, with
// cells in the same formatted form the text renderer prints — the
// machine-readable twin of String().
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := t.rows
	if rows == nil {
		rows = [][]string{}
	}
	return json.Marshal(struct {
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}{Title: t.Title, Header: t.Header, Rows: rows})
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

// Series is a collection of float observations with summary statistics.
type Series struct {
	vals []float64
}

// Add appends an observation.
func (s *Series) Add(v float64) { s.vals = append(s.vals, v) }

// N returns the number of observations.
func (s *Series) N() int { return len(s.vals) }

// Sum returns the total of all observations.
func (s *Series) Sum() float64 {
	total := 0.0
	for _, v := range s.vals {
		total += v
	}
	return total
}

// Mean returns the arithmetic mean (0 for empty series).
func (s *Series) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	return s.Sum() / float64(len(s.vals))
}

// Max returns the maximum (0 for empty series).
func (s *Series) Max() float64 {
	out := math.Inf(-1)
	for _, v := range s.vals {
		if v > out {
			out = v
		}
	}
	if math.IsInf(out, -1) {
		return 0
	}
	return out
}

// Min returns the minimum (0 for empty series).
func (s *Series) Min() float64 {
	out := math.Inf(1)
	for _, v := range s.vals {
		if v < out {
			out = v
		}
	}
	if math.IsInf(out, 1) {
		return 0
	}
	return out
}

// Percentile returns the p-th percentile (0 <= p <= 100) by
// nearest-rank; 0 for empty series.
func (s *Series) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sorted := make([]float64, len(s.vals))
	copy(sorted, s.vals)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Stddev returns the sample standard deviation (0 for n < 2).
func (s *Series) Stddev() float64 {
	n := len(s.vals)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	acc := 0.0
	for _, v := range s.vals {
		d := v - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(n-1))
}

// LogLogSlope fits log(y) = a + slope*log(x) by least squares — used to
// report the polynomial growth exponents of experiment E5. It returns 0
// when fewer than two valid points exist.
func LogLogSlope(xs, ys []float64) float64 {
	var lx, ly []float64
	for i := range xs {
		if i < len(ys) && xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	n := float64(len(lx))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i := range lx {
		sx += lx[i]
		sy += ly[i]
		sxx += lx[i] * lx[i]
		sxy += lx[i] * ly[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}
