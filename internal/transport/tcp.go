package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"svssba/internal/sim"
)

// Wire format of a TCP link, little-endian like internal/proto:
//
//	hello:  u16 sender id            (once, by the dialing side)
//	frame:  u32 length ++ payload    (repeated)
//
// Connections are directional: each process listens for inbound links
// and keeps one reconnecting dialer per peer for outbound traffic, so a
// fully-connected n-cluster carries n·(n−1) one-way links. A frame is
// only dequeued from a dialer's backlog after a successful write;
// reconnects therefore retransmit rather than lose (possibly
// duplicating the frame in flight, which the protocol layers tolerate).
const (
	// maxFrame bounds a decoded frame length; bigger prefixes mean a
	// corrupt or hostile stream and kill the connection.
	maxFrame = 16 << 20
	// dialBackoffMin/Max bound the reconnect backoff of a dialer.
	dialBackoffMin = 5 * time.Millisecond
	dialBackoffMax = 500 * time.Millisecond
	// maxBacklog caps a dialer's retained frames. A permanently dead
	// peer would otherwise accumulate the whole run's traffic toward it;
	// once the cap is hit the oldest half is shed — indistinguishable
	// from the silent drop a crashed endpoint already models.
	maxBacklog = 1 << 16
)

// TCP is the socket transport: one listener for inbound links, one
// reconnecting dialer per peer for outbound links.
type TCP struct {
	self   sim.ProcID
	listen string
	pump   *pump

	mu       sync.Mutex
	started  bool
	closed   bool
	addrs    map[sim.ProcID]string
	dialers  map[sim.ProcID]*dialer
	listener net.Listener
	conns    map[net.Conn]struct{}
	errs     []error

	stop chan struct{}
	wg   sync.WaitGroup
}

var _ Transport = (*TCP)(nil)

// NewTCP creates a socket transport for process self listening on
// listenAddr (":0" picks an ephemeral port — read it back with Addr).
// Peer addresses can be supplied now or later via SetPeers; a dialer
// only needs its peer's address by the time it first connects.
func NewTCP(self sim.ProcID, listenAddr string, peers map[sim.ProcID]string) *TCP {
	t := &TCP{
		self:    self,
		listen:  listenAddr,
		pump:    newPump(),
		addrs:   make(map[sim.ProcID]string, len(peers)),
		dialers: make(map[sim.ProcID]*dialer),
		conns:   make(map[net.Conn]struct{}),
		stop:    make(chan struct{}),
	}
	for p, a := range peers {
		t.addrs[p] = a
	}
	return t
}

func (t *TCP) Self() sim.ProcID { return t.self }

// SetPeers merges peer addresses (id -> host:port).
func (t *TCP) SetPeers(peers map[sim.ProcID]string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for p, a := range peers {
		t.addrs[p] = a
	}
}

// Addr returns the bound listen address (useful with ":0").
func (t *TCP) Addr() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.listener != nil {
		return t.listener.Addr().String()
	}
	return t.listen
}

// Start binds the listener and begins accepting inbound links.
func (t *TCP) Start() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return fmt.Errorf("transport: tcp %d is closed", t.self)
	}
	if t.started {
		return nil
	}
	ln, err := net.Listen("tcp", t.listen)
	if err != nil {
		return fmt.Errorf("transport: listen %s: %w", t.listen, err)
	}
	t.listener = ln
	t.started = true
	go t.pump.run()
	t.wg.Add(1)
	go t.acceptLoop(ln)
	return nil
}

// Send queues data for peer `to`. Self-addressed frames loop back
// through the local inbox without touching a socket.
func (t *TCP) Send(to sim.ProcID, data []byte) error {
	if to == t.self {
		t.mu.Lock()
		ok := t.started && !t.closed
		t.mu.Unlock()
		if !ok {
			// No pump is running before Start (or after Close); dropping
			// keeps the never-block contract, like a dead endpoint.
			return nil
		}
		select {
		case <-t.stop:
		default:
			t.pump.offer(Frame{From: t.self, Data: data})
		}
		return nil
	}
	d := t.dialerFor(to)
	if d != nil {
		d.push(outFrame{data: data})
	}
	return nil
}

// dialerFor returns (creating on first use) the outbound link to peer,
// or nil once the transport closed.
func (t *TCP) dialerFor(to sim.ProcID) *dialer {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	d, ok := t.dialers[to]
	if !ok {
		d = newDialer(t, to)
		t.dialers[to] = d
		t.wg.Add(1)
		go d.run()
	}
	return d
}

// sendBufPool recycles SendBorrowed copies: the container returns to
// the pool after the frame's socket write, so a warm sender pays a
// memcpy but no allocation per frame.
var sendBufPool = sync.Pool{New: func() any { return new([]byte) }}

var _ Borrower = (*TCP)(nil)

// SendBorrowed implements Borrower: data's buffer stays with the caller
// (reusable the moment this returns); the transport copies it into a
// pooled buffer that is recycled once the frame has been written to a
// live connection.
func (t *TCP) SendBorrowed(to sim.ProcID, data []byte) error {
	if to == t.self {
		// Loopback frames reach the local receiver, which may alias the
		// buffer indefinitely (zero-copy decode) — they need an immutable
		// copy of their own, never a recycled one.
		return t.Send(to, append([]byte(nil), data...))
	}
	d := t.dialerFor(to)
	if d == nil {
		return nil
	}
	bp := sendBufPool.Get().(*[]byte)
	*bp = append((*bp)[:0], data...)
	d.push(outFrame{data: *bp, pooled: bp})
	return nil
}

func (t *TCP) Recv() <-chan Frame { return t.pump.out }

// Close tears down the listener, all links, and the inbox.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	ln := t.listener
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	dialers := make([]*dialer, 0, len(t.dialers))
	for _, d := range t.dialers {
		dialers = append(dialers, d)
	}
	started := t.started
	t.started = true
	t.mu.Unlock()

	close(t.stop)
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	for _, d := range dialers {
		d.close()
	}
	if !started {
		go t.pump.run()
	}
	close(t.pump.stop)
	t.wg.Wait()
	return nil
}

// Errs returns connection-level errors observed so far (handshake
// failures, oversized frames). Reconnectable dial/write errors are not
// recorded — retrying them is the transport's job, not the caller's.
func (t *TCP) Errs() []error {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]error, len(t.errs))
	copy(out, t.errs)
	return out
}

func (t *TCP) addErr(err error) {
	t.mu.Lock()
	t.errs = append(t.errs, err)
	t.mu.Unlock()
}

func (t *TCP) addrFor(p sim.ProcID) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	a, ok := t.addrs[p]
	return a, ok
}

func (t *TCP) trackConn(c net.Conn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return false
	}
	t.conns[c] = struct{}{}
	return true
}

func (t *TCP) untrackConn(c net.Conn) {
	t.mu.Lock()
	delete(t.conns, c)
	t.mu.Unlock()
}

func (t *TCP) acceptLoop(ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !t.trackConn(conn) {
			conn.Close()
			return
		}
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// readLoop consumes one inbound link: hello, then frames until error.
func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer t.untrackConn(conn)
	defer conn.Close()
	var hello [2]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return
	}
	from := sim.ProcID(binary.LittleEndian.Uint16(hello[:]))
	if from < 1 {
		t.addErr(fmt.Errorf("transport: bad hello id %d from %s", from, conn.RemoteAddr()))
		return
	}
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n > maxFrame {
			t.addErr(fmt.Errorf("transport: frame of %d bytes from %d exceeds limit", n, from))
			return
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(conn, data); err != nil {
			return
		}
		select {
		case <-t.stop:
			return
		default:
			t.pump.offer(Frame{From: from, Data: data})
		}
	}
}

// outFrame is one backlog entry: the encoded frame, plus the pooled
// container to recycle after the write when the frame arrived through
// SendBorrowed (nil for caller-owned Send buffers).
type outFrame struct {
	data   []byte
	pooled *[]byte
}

// recycle returns a borrowed frame's buffer to the send pool.
func (f *outFrame) recycle() {
	if f.pooled != nil {
		sendBufPool.Put(f.pooled)
		f.pooled = nil
	}
}

// dialer owns the outbound link to one peer: an unbounded backlog and a
// writer goroutine that (re)connects with exponential backoff and only
// drops a frame once it has been written to a live connection.
type dialer struct {
	t    *TCP
	peer sim.ProcID

	mu      sync.Mutex
	cond    *sync.Cond
	backlog []outFrame
	closed  bool
}

func newDialer(t *TCP, peer sim.ProcID) *dialer {
	d := &dialer{t: t, peer: peer}
	d.cond = sync.NewCond(&d.mu)
	return d
}

func (d *dialer) push(f outFrame) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		f.recycle()
		return
	}
	if len(d.backlog) >= maxBacklog {
		// Shed the oldest half in one compaction (amortized O(1)
		// per push) so the array itself is reclaimed too.
		shed := d.backlog[:len(d.backlog)-maxBacklog/2]
		keep := d.backlog[len(d.backlog)-maxBacklog/2:]
		d.backlog = append(make([]outFrame, 0, maxBacklog), keep...)
		for i := range shed {
			shed[i].recycle()
		}
	}
	d.backlog = append(d.backlog, f)
	d.cond.Signal()
	d.mu.Unlock()
}

func (d *dialer) close() {
	d.mu.Lock()
	d.closed = true
	d.cond.Broadcast()
	d.mu.Unlock()
}

// head blocks until a frame is available or the dialer is closed. The
// frame stays at the head of the backlog until pop confirms the write.
func (d *dialer) head() (outFrame, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(d.backlog) == 0 && !d.closed {
		d.cond.Wait()
	}
	if d.closed {
		return outFrame{}, false
	}
	return d.backlog[0], true
}

// pop dequeues the written head frame and recycles its pooled buffer.
func (d *dialer) pop() {
	d.mu.Lock()
	f := d.backlog[0]
	d.backlog[0] = outFrame{}
	d.backlog = d.backlog[1:]
	d.mu.Unlock()
	f.recycle()
}

func (d *dialer) run() {
	defer d.t.wg.Done()
	var conn net.Conn
	drop := func() {
		if conn != nil {
			d.t.untrackConn(conn)
			conn.Close()
			conn = nil
		}
	}
	defer drop()
	backoff := dialBackoffMin
	var hdr [4]byte
	for {
		f, ok := d.head()
		if !ok {
			return
		}
		if conn == nil {
			c, err := d.connect()
			if err != nil {
				if !d.sleep(backoff) {
					return
				}
				backoff = min(backoff*2, dialBackoffMax)
				continue
			}
			conn = c
			backoff = dialBackoffMin
		}
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(f.data)))
		if _, err := conn.Write(hdr[:]); err == nil {
			_, err = conn.Write(f.data)
			if err == nil {
				d.pop()
				continue
			}
		}
		// Write failed: drop the link and retransmit after reconnecting.
		drop()
	}
}

// connect dials the peer and performs the hello handshake.
func (d *dialer) connect() (net.Conn, error) {
	addr, ok := d.t.addrFor(d.peer)
	if !ok {
		return nil, fmt.Errorf("transport: no address for peer %d", d.peer)
	}
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return nil, err
	}
	var hello [2]byte
	binary.LittleEndian.PutUint16(hello[:], uint16(d.t.self))
	if _, err := conn.Write(hello[:]); err != nil {
		conn.Close()
		return nil, err
	}
	if !d.t.trackConn(conn) {
		conn.Close()
		return nil, fmt.Errorf("transport: closed")
	}
	return conn, nil
}

// sleep waits for the backoff or the transport stop, whichever first.
func (d *dialer) sleep(dur time.Duration) bool {
	timer := time.NewTimer(dur)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-d.t.stop:
		return false
	}
}
