// Package transport provides the real-network substrate for the node
// runtime: point-to-point delivery of opaque byte frames between the n
// processes of a cluster. It is the layer below internal/node — node
// encodes protocol payloads through internal/proto and hands the bytes
// to a Transport; which wire the bytes actually cross is a backend
// choice:
//
//   - Mesh (chan.go): an in-process fabric over channels with unbounded
//     per-endpoint inboxes. Zero syscalls, runs whole clusters inside one
//     test binary — the backend for RunLive and fast -race tests.
//   - TCP (tcp.go): length-prefixed framing over real sockets with a
//     listener per process and reconnecting, backlogged dialers — the
//     backend for cmd/node and cmd/cluster.
//
// Both backends satisfy the same asynchronous-link contract the
// simulator models: Send never blocks the caller, frames are delivered
// eventually while both endpoints are up, and per-link FIFO order is not
// guaranteed once faults (FaultLink) or reconnects are involved — the
// protocol stacks tolerate arbitrary reordering by design.
package transport

import "svssba/internal/sim"

// Frame is one received message: the claimed sender and the raw encoded
// payload. The transport owns Data after Send and until the receiver
// takes the frame; callers must not retain or mutate buffers they pass
// to Send.
//
// Inbound Data buffers are immutable: every backend hands the receiver
// a buffer it will never touch again (TCP allocates one per frame, Mesh
// transfers the sender's), so receivers may retain subslices of Data
// indefinitely — the contract behind the node runtime's zero-copy
// payload decode.
type Frame struct {
	From sim.ProcID
	Data []byte
}

// Transport connects one process to its peers.
//
// Implementations must make Send safe for concurrent use and must never
// block it on a slow peer (links are unbounded asynchronous channels).
// Send(self) loops back locally so the node runtime needs no special
// case for self-addressed traffic. Start and Close are idempotent.
type Transport interface {
	// Self returns the local process id.
	Self() sim.ProcID
	// Start brings the endpoint up (listening, pumping). Idempotent.
	Start() error
	// Send queues data for delivery to peer `to`. It never blocks on the
	// peer; after Close (or once the peer is gone) frames are silently
	// dropped, which models a crashed endpoint.
	Send(to sim.ProcID, data []byte) error
	// Recv returns the inbound frame stream. The channel is closed by
	// Close, after which no more frames arrive.
	Recv() <-chan Frame
	// Close tears the endpoint down and releases its resources. Idempotent.
	Close() error
}

// Borrower is an optional Transport capability: SendBorrowed ships data
// from a buffer the CALLER keeps — the transport copies (or fully
// consumes) it before returning, so the caller may truncate and refill
// the same buffer for its next frame. This is what lets the node
// runtime's outbox reuse one encode buffer across flushes instead of
// allocating a fresh frame per send.
//
// TCP implements it by copying into pooled buffers recycled after the
// socket write. Mesh deliberately does NOT: its Send hands the very
// slice to the receiving endpoint (which may alias it forever under
// zero-copy decode), so borrowing is impossible there and callers fall
// back to Send with an owned buffer.
type Borrower interface {
	SendBorrowed(to sim.ProcID, data []byte) error
}

// pump is an unbounded FIFO between producers (socket readers, local
// senders) and the single consumer of Recv: producers hand frames to in
// (guarded by stop so they never block on a dead pump), the pump buffers
// them, and the consumer drains out. This is the same unbounded-link
// construction as sim's LiveNet mailbox, hoisted to the transport layer.
type pump struct {
	in   chan Frame
	out  chan Frame
	stop chan struct{}
}

func newPump() *pump {
	return &pump{
		in:   make(chan Frame),
		out:  make(chan Frame),
		stop: make(chan struct{}),
	}
}

// run buffers frames until stop is closed, then closes out.
func (p *pump) run() {
	defer close(p.out)
	var queue []Frame
	for {
		var out chan Frame
		var head Frame
		if len(queue) > 0 {
			out = p.out
			head = queue[0]
		}
		select {
		case <-p.stop:
			return
		case f := <-p.in:
			queue = append(queue, f)
		case out <- head:
			queue = queue[1:]
		}
	}
}

// offer hands a frame to the pump, dropping it if the pump is stopped.
func (p *pump) offer(f Frame) {
	select {
	case p.in <- f:
	case <-p.stop:
	}
}
