package transport

import (
	"fmt"
	"testing"
	"time"

	"svssba/internal/sim"
)

// startTCPCluster brings up n TCP endpoints on ephemeral localhost
// ports and wires their peer tables.
func startTCPCluster(t *testing.T, n int) []*TCP {
	t.Helper()
	eps := make([]*TCP, n+1)
	addrs := make(map[sim.ProcID]string, n)
	for p := 1; p <= n; p++ {
		eps[p] = NewTCP(sim.ProcID(p), "127.0.0.1:0", nil)
		if err := eps[p].Start(); err != nil {
			t.Fatalf("start %d: %v", p, err)
		}
		addrs[sim.ProcID(p)] = eps[p].Addr()
	}
	for p := 1; p <= n; p++ {
		eps[p].SetPeers(addrs)
	}
	t.Cleanup(func() {
		for p := 1; p <= n; p++ {
			eps[p].Close()
		}
	})
	return eps
}

func TestTCPDelivery(t *testing.T) {
	const n, per = 3, 20
	eps := startTCPCluster(t, n)
	for from := 1; from <= n; from++ {
		for to := 1; to <= n; to++ {
			for i := 0; i < per; i++ {
				if err := eps[from].Send(sim.ProcID(to), []byte(fmt.Sprintf("%d->%d #%d", from, to, i))); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for to := 1; to <= n; to++ {
		got := collect(t, eps[to], n*per, 10*time.Second)
		for from := 1; from <= n; from++ {
			if got[sim.ProcID(from)] != per {
				t.Errorf("endpoint %d: %d frames from %d, want %d", to, got[sim.ProcID(from)], from, per)
			}
		}
	}
	for p := 1; p <= n; p++ {
		if errs := eps[p].Errs(); len(errs) > 0 {
			t.Errorf("endpoint %d errors: %v", p, errs)
		}
	}
}

func TestTCPLargeFrame(t *testing.T) {
	eps := startTCPCluster(t, 2)
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	if err := eps[1].Send(2, big); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-eps[2].Recv():
		if len(f.Data) != len(big) || f.Data[12345] != big[12345] {
			t.Errorf("frame corrupted: len=%d", len(f.Data))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("large frame not delivered")
	}
}

// TestTCPReconnect kills the receiving endpoint, keeps sending (frames
// backlog in the dialer), restarts a listener on the same port, and
// asserts the backlog drains to the new endpoint — the reconnecting
// dialer contract.
func TestTCPReconnect(t *testing.T) {
	a := NewTCP(1, "127.0.0.1:0", nil)
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b := NewTCP(2, "127.0.0.1:0", nil)
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	bAddr := b.Addr()
	a.SetPeers(map[sim.ProcID]string{2: bAddr})

	// Prove the link works, then kill b.
	a.Send(2, []byte("before"))
	select {
	case f := <-b.Recv():
		if string(f.Data) != "before" {
			t.Fatalf("frame = %q", f.Data)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("initial frame not delivered")
	}
	b.Close()

	// Send into the void; the dialer must backlog and retry.
	const n = 10
	for i := 0; i < n; i++ {
		a.Send(2, []byte(fmt.Sprintf("retry-%d", i)))
	}

	// Resurrect 2 on the same address.
	b2 := NewTCP(2, bAddr, nil)
	var err error
	for attempt := 0; attempt < 100; attempt++ {
		if err = b2.Start(); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond) // old listener port may linger briefly
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", bAddr, err)
	}
	defer b2.Close()

	got := collect(t, b2, n, 15*time.Second)
	if got[1] < n {
		t.Errorf("after reconnect got %d frames, want >= %d", got[1], n)
	}
}

func TestTCPSelfSendLoopsBack(t *testing.T) {
	eps := startTCPCluster(t, 1)
	eps[1].Send(1, []byte("me"))
	select {
	case f := <-eps[1].Recv():
		if f.From != 1 || string(f.Data) != "me" {
			t.Errorf("frame = %+v", f)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("self frame not delivered")
	}
}

func TestTCPCloseIdempotentAndUnblocksRecv(t *testing.T) {
	eps := startTCPCluster(t, 2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range eps[1].Recv() {
		}
	}()
	eps[1].Close()
	eps[1].Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Recv not closed by Close")
	}
	// Send after close is a silent drop, not a panic or error.
	if err := eps[1].Send(2, []byte("late")); err != nil {
		t.Errorf("send after close: %v", err)
	}
}
