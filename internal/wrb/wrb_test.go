package wrb

import (
	"fmt"
	"testing"

	"svssba/internal/proto"
	"svssba/internal/sim"
	"svssba/internal/testutil"
)

var testTag = proto.Tag{Proto: proto.ProtoWRB, Step: 1}

// harness wires n WRB engines into a network. Faulty processes are built
// by the provided factories instead.
type harness struct {
	nw       *sim.Network
	accepted map[sim.ProcID][]string
	honest   []sim.ProcID
}

func newHarness(t *testing.T, n, tf int, seed int64, dealer sim.ProcID, value string,
	faulty map[sim.ProcID]func(id sim.ProcID) sim.Handler) *harness {
	t.Helper()
	h := &harness{
		nw:       sim.NewNetwork(n, tf, seed),
		accepted: make(map[sim.ProcID][]string),
	}
	for p := 1; p <= n; p++ {
		id := sim.ProcID(p)
		if mk, ok := faulty[id]; ok {
			if err := h.nw.Register(mk(id)); err != nil {
				t.Fatalf("register faulty %d: %v", id, err)
			}
			continue
		}
		h.honest = append(h.honest, id)
		eng := New(id, func(ctx sim.Context, a Accept) {
			h.accepted[id] = append(h.accepted[id], string(a.Value))
		})
		var onInit func(sim.Context)
		if id == dealer {
			onInit = func(ctx sim.Context) { eng.Broadcast(ctx, testTag, []byte(value)) }
		}
		node := testutil.NewNode(id, onInit, func(ctx sim.Context, m sim.Message) {
			eng.Handle(ctx, m)
		})
		if err := h.nw.Register(node); err != nil {
			t.Fatalf("register %d: %v", id, err)
		}
	}
	return h
}

func (h *harness) run(t *testing.T) {
	t.Helper()
	if _, err := h.nw.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// distinctAccepted returns the set of distinct values accepted by honest
// processes and whether any honest process accepted more than once.
func (h *harness) distinctAccepted() (map[string]bool, bool) {
	vals := make(map[string]bool)
	multi := false
	for _, id := range h.honest {
		if len(h.accepted[id]) > 1 {
			multi = true
		}
		for _, v := range h.accepted[id] {
			vals[v] = true
		}
	}
	return vals, multi
}

func TestHonestDealerAllAccept(t *testing.T) {
	for _, cfg := range []struct{ n, t int }{{4, 1}, {7, 2}, {10, 3}} {
		t.Run(fmt.Sprintf("n%d_t%d", cfg.n, cfg.t), func(t *testing.T) {
			h := newHarness(t, cfg.n, cfg.t, 1, 1, "v", nil)
			h.run(t)
			for _, id := range h.honest {
				if got := h.accepted[id]; len(got) != 1 || got[0] != "v" {
					t.Errorf("process %d accepted %v, want [v]", id, got)
				}
			}
		})
	}
}

func TestHonestDealerWithSilentFaults(t *testing.T) {
	// t processes silent: the remaining n-t honest ones must still accept.
	faulty := map[sim.ProcID]func(sim.ProcID) sim.Handler{
		3: func(id sim.ProcID) sim.Handler { return testutil.Silent(id) },
	}
	h := newHarness(t, 4, 1, 2, 1, "v", faulty)
	h.run(t)
	for _, id := range h.honest {
		if got := h.accepted[id]; len(got) != 1 || got[0] != "v" {
			t.Errorf("process %d accepted %v, want [v]", id, got)
		}
	}
}

// equivocatingDealer sends different type 1 values to different halves.
type equivocatingDealer struct {
	id sim.ProcID
}

func (d *equivocatingDealer) ID() sim.ProcID { return d.id }

func (d *equivocatingDealer) Init(ctx sim.Context) {
	for p := 1; p <= ctx.N(); p++ {
		v := "a"
		if p%2 == 0 {
			v = "b"
		}
		ctx.Send(sim.ProcID(p), Msg{Origin: d.id, Tag: testTag, Phase: 1, Value: []byte(v)})
	}
}

func (d *equivocatingDealer) Deliver(sim.Context, sim.Message) {}

func TestEquivocatingDealerNeverDisagrees(t *testing.T) {
	// Correctness: whatever the schedule, honest processes never accept
	// two different values (they may accept nothing).
	for seed := int64(0); seed < 50; seed++ {
		faulty := map[sim.ProcID]func(sim.ProcID) sim.Handler{
			1: func(id sim.ProcID) sim.Handler { return &equivocatingDealer{id: id} },
		}
		h := newHarness(t, 4, 1, seed, 0, "", faulty)
		h.run(t)
		vals, multi := h.distinctAccepted()
		if len(vals) > 1 {
			t.Fatalf("seed %d: honest processes accepted distinct values %v", seed, vals)
		}
		if multi {
			t.Fatalf("seed %d: a process accepted twice", seed)
		}
	}
}

// doubleVoter echoes two different type-2 values for the same instance.
type doubleVoter struct {
	id sim.ProcID
}

func (d *doubleVoter) ID() sim.ProcID       { return d.id }
func (d *doubleVoter) Init(ctx sim.Context) {}

func (d *doubleVoter) Deliver(ctx sim.Context, m sim.Message) {
	msg, ok := m.Payload.(Msg)
	if !ok || msg.Phase != 1 {
		return
	}
	for p := 1; p <= ctx.N(); p++ {
		ctx.Send(sim.ProcID(p), Msg{Origin: msg.Origin, Tag: msg.Tag, Phase: 2, Value: []byte("x")})
		ctx.Send(sim.ProcID(p), Msg{Origin: msg.Origin, Tag: msg.Tag, Phase: 2, Value: []byte("y")})
	}
}

func TestDoubleVoterCannotForgeAcceptance(t *testing.T) {
	// An honest dealer broadcasts "v"; a faulty process votes for other
	// values twice. Honest processes must still accept only "v".
	for seed := int64(0); seed < 20; seed++ {
		faulty := map[sim.ProcID]func(sim.ProcID) sim.Handler{
			4: func(id sim.ProcID) sim.Handler { return &doubleVoter{id: id} },
		}
		h := newHarness(t, 4, 1, seed, 1, "v", faulty)
		h.run(t)
		vals, _ := h.distinctAccepted()
		if len(vals) != 1 || !vals["v"] {
			t.Fatalf("seed %d: accepted %v, want only v", seed, vals)
		}
	}
}

func TestUnitDuplicateType2CountedOnce(t *testing.T) {
	ctx := testutil.NewCtx(1, 4, 1)
	var accepts []Accept
	e := New(1, func(_ sim.Context, a Accept) { accepts = append(accepts, a) })
	// Three type-2 messages from the same sender must count once:
	// acceptance requires n-t = 3 distinct senders.
	for i := 0; i < 3; i++ {
		e.Handle(ctx, sim.Message{From: 2, To: 1, Payload: Msg{Origin: 3, Tag: testTag, Phase: 2, Value: []byte("v")}})
	}
	if len(accepts) != 0 {
		t.Fatal("accepted from duplicate votes of one sender")
	}
	e.Handle(ctx, sim.Message{From: 3, To: 1, Payload: Msg{Origin: 3, Tag: testTag, Phase: 2, Value: []byte("v")}})
	e.Handle(ctx, sim.Message{From: 4, To: 1, Payload: Msg{Origin: 3, Tag: testTag, Phase: 2, Value: []byte("v")}})
	if len(accepts) != 1 {
		t.Fatalf("accepts = %d, want 1", len(accepts))
	}
}

func TestUnitType1FromNonDealerIgnored(t *testing.T) {
	ctx := testutil.NewCtx(1, 4, 1)
	e := New(1, nil)
	// Type 1 claiming origin 3 but sent by 2: no echo may be produced.
	e.Handle(ctx, sim.Message{From: 2, To: 1, Payload: Msg{Origin: 3, Tag: testTag, Phase: 1, Value: []byte("v")}})
	if len(ctx.Sent) != 0 {
		t.Fatalf("echoed a spoofed type 1: %d sends", len(ctx.Sent))
	}
	// Genuine type 1 from the dealer: echo to all n processes.
	e.Handle(ctx, sim.Message{From: 3, To: 1, Payload: Msg{Origin: 3, Tag: testTag, Phase: 1, Value: []byte("v")}})
	if len(ctx.Sent) != 4 {
		t.Fatalf("sent %d echoes, want 4", len(ctx.Sent))
	}
}

func TestUnitSecondType1DoesNotReEcho(t *testing.T) {
	ctx := testutil.NewCtx(1, 4, 1)
	e := New(1, nil)
	e.Handle(ctx, sim.Message{From: 3, To: 1, Payload: Msg{Origin: 3, Tag: testTag, Phase: 1, Value: []byte("v")}})
	ctx.Drain()
	e.Handle(ctx, sim.Message{From: 3, To: 1, Payload: Msg{Origin: 3, Tag: testTag, Phase: 1, Value: []byte("w")}})
	if len(ctx.Sent) != 0 {
		t.Fatal("echoed a second type 1 for the same instance")
	}
}

func TestUnitInstancesAreIndependent(t *testing.T) {
	ctx := testutil.NewCtx(1, 4, 1)
	var accepts []Accept
	e := New(1, func(_ sim.Context, a Accept) { accepts = append(accepts, a) })
	tag2 := testTag
	tag2.Step = 2
	for _, from := range []sim.ProcID{2, 3, 4} {
		e.Handle(ctx, sim.Message{From: from, To: 1, Payload: Msg{Origin: 3, Tag: testTag, Phase: 2, Value: []byte("v")}})
	}
	// Votes under tag2 must not have contributed to testTag's instance.
	if len(accepts) != 1 {
		t.Fatalf("accepts = %d, want 1", len(accepts))
	}
	if accepts[0].Tag != testTag {
		t.Errorf("accept tag = %v", accepts[0].Tag)
	}
}

func TestMsgKinds(t *testing.T) {
	if (Msg{Phase: 1}).Kind() != KindType1 {
		t.Error("phase 1 kind")
	}
	if (Msg{Phase: 2}).Kind() != KindType2 {
		t.Error("phase 2 kind")
	}
}

func TestMsgCodecRoundTrip(t *testing.T) {
	c := proto.NewCodec()
	RegisterCodec(c)
	in := Msg{Origin: 3, Tag: testTag, Phase: 2, Value: []byte("abc")}
	b, err := c.Encode(in)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if len(b) != in.Size()+2+len(in.Kind()) {
		t.Errorf("size mismatch: encoded %d, Size()+hdr %d", len(b), in.Size()+2+len(in.Kind()))
	}
	out, err := c.Decode(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	got, ok := out.(Msg)
	if !ok || got.Origin != in.Origin || got.Tag != in.Tag || got.Phase != in.Phase || string(got.Value) != "abc" {
		t.Errorf("round trip mismatch: %+v", out)
	}
}
