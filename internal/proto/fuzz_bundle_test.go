package proto_test

import (
	"reflect"
	"testing"

	"svssba/internal/aba"
	"svssba/internal/proto"
	"svssba/internal/rb"
	"svssba/internal/sim"
)

// seedBundle is a representative wire-v2 bundle body: several logical
// broadcasts of mixed namespaces and value sizes sharing one RB value.
func seedBundle(t testing.TB) []byte {
	t.Helper()
	tags, vals := seedBundleItems()
	return proto.EncodeBundle(tags, vals)
}

func seedBundleItems() ([]proto.Tag, [][]byte) {
	mk := func(ns uint8, step uint8, a uint32) proto.Tag {
		return proto.Tag{
			Proto:   ns,
			Session: proto.SessionID{Dealer: 1, Kind: proto.KindCoin, Round: 3, Index: 2},
			MW:      proto.MWKey{Dealer: 1, Moderator: 3, Slot: 1},
			Step:    step,
			A:       a,
		}
	}
	tags := []proto.Tag{
		mk(proto.ProtoMW, 1, 0),
		mk(proto.ProtoMW, 5, 2),
		mk(proto.ProtoSVSS, 1, 0),
		mk(proto.ProtoCoin, 2, 9),
	}
	vals := [][]byte{{}, []byte("elem"), []byte("g-announce"), []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	return tags, vals
}

// FuzzBundleDecode feeds arbitrary bytes to the bundle-body decoder —
// the RB value surface a Byzantine origin controls under wire v2.
// DecodeBundle must never panic, must reject truncations and nested
// bundles cleanly, and everything it accepts must survive a re-encode
// round trip item-for-item.
func FuzzBundleDecode(f *testing.F) {
	seed := seedBundle(f)
	f.Add(seed)
	for cut := 1; cut < len(seed); cut += 5 {
		f.Add(seed[:cut]) // truncation ladder
	}
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		items, err := proto.DecodeBundle(b)
		if err != nil {
			return
		}
		for _, it := range items {
			if it.Tag.Proto == proto.ProtoBundle {
				t.Fatalf("decoder accepted a nested bundle tag")
			}
		}
		tags := make([]proto.Tag, len(items))
		vals := make([][]byte, len(items))
		for i, it := range items {
			tags[i], vals[i] = it.Tag, it.Value
		}
		enc := proto.EncodeBundle(tags, vals)
		items2, err := proto.DecodeBundle(enc)
		if err != nil {
			t.Fatalf("accepted bundle does not re-decode: %v", err)
		}
		if len(items2) != len(items) {
			t.Fatalf("round trip changed item count: %d -> %d", len(items), len(items2))
		}
		for i := range items {
			if items[i].Tag != items2[i].Tag || !bytesEq(items[i].Value, items2[i].Value) {
				t.Fatalf("item %d changed across round trip", i)
			}
		}
		// Truncating an accepted body anywhere must error (the decoder
		// requires the count to match and the reader to close clean).
		for _, cut := range []int{len(b) - 1, len(b) / 2, 5} {
			if cut <= 4 || cut >= len(b) {
				continue
			}
			if _, err := proto.DecodeBundle(b[:cut]); err == nil {
				t.Fatalf("truncation to %d bytes still decoded", cut)
			}
		}
	})
}

func bytesEq(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// seedPack is a representative wire-v2 pack: the per-destination direct
// payloads of one delivery burst (echoes for several tags plus votes).
func seedPack(t testing.TB) []byte {
	t.Helper()
	c := fullCodec()
	mk := func(a uint32) proto.Tag {
		return proto.Tag{
			Proto:   proto.ProtoMW,
			Session: proto.SessionID{Dealer: 2, Kind: proto.KindCoin, Round: 1, Index: 1},
			MW:      proto.MWKey{Dealer: 2, Moderator: 4, Slot: 0},
			Step:    1,
			A:       a,
		}
	}
	b, err := c.Encode(proto.Pack{Items: []sim.Payload{
		rb.Msg{Origin: 1, Tag: mk(1), Value: []byte("a")},
		rb.Msg{Origin: 2, Tag: mk(2), Value: []byte("bb")},
		aba.Vote{Step: 1, Round: 2, Value: 1},
	}})
	if err != nil {
		t.Fatalf("seed pack encode: %v", err)
	}
	return b
}

// FuzzPackDecode feeds arbitrary bytes through the full codec — the
// frame surface a Byzantine sender controls for wire-v2 direct packs.
// The decoder must never panic, must reject truncations and nested
// packs, and every accepted pack must survive an encode round trip.
func FuzzPackDecode(f *testing.F) {
	seed := seedPack(f)
	f.Add(seed)
	for cut := 1; cut < len(seed); cut += 5 {
		f.Add(seed[:cut]) // truncation ladder
	}
	for _, b := range seedPayloads(f) {
		f.Add(b) // non-pack payloads exercise the kind dispatch
	}
	c := fullCodec()
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := c.Decode(b)
		if err != nil {
			return
		}
		pk, ok := p.(proto.Pack)
		if !ok {
			return
		}
		for _, it := range pk.Items {
			if _, nested := it.(proto.Pack); nested {
				t.Fatalf("decoder accepted a nested pack")
			}
		}
		enc, err := c.Encode(pk)
		if err != nil {
			t.Fatalf("accepted pack does not re-encode: %v", err)
		}
		p2, err := c.Decode(enc)
		if err != nil {
			t.Fatalf("re-encoded pack does not decode: %v", err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("pack changed across round trip:\n  first:  %#v\n  second: %#v", p, p2)
		}
	})
}
