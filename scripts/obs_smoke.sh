#!/usr/bin/env bash
# obs_smoke.sh — CI smoke for the observability layer.
#
# Leg 1: run a short loadgen with the HTTP introspection endpoint up,
# curl /metrics mid-run, and assert the snapshot is well-formed JSON
# that eventually reports nonzero decisions. Leg 2 (OBS_SOAK=1): a 60s
# -soak run that must exit 0 — the watchdog itself under test.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="127.0.0.1:8779"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

go build -o "$OUT/loadgen" ./cmd/loadgen

echo "== obs-smoke: loadgen with live endpoint =="
"$OUT/loadgen" -n 4 -duration 20s -http "$ADDR" -report 5s -json \
    > "$OUT/report.json" 2> "$OUT/loadgen.err" &
LG=$!

# Wait for the endpoint, then poll /metrics until decisions show up.
deadline=$((SECONDS + 15))
until curl -fsS "http://$ADDR/metrics" -o "$OUT/metrics.json" 2>/dev/null; do
    if (( SECONDS >= deadline )); then
        echo "obs-smoke: endpoint never came up" >&2
        cat "$OUT/loadgen.err" >&2 || true
        kill "$LG" 2>/dev/null || true
        exit 1
    fi
    sleep 0.5
done

decisions=0
deadline=$((SECONDS + 30))
while (( SECONDS < deadline )); do
    curl -fsS "http://$ADDR/metrics" -o "$OUT/metrics.json"
    # Well-formed JSON with the expected sections, every poll.
    python3 - "$OUT/metrics.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    snap = json.load(f)
for key in ("counters", "gauges", "histograms"):
    if key not in snap:
        raise SystemExit(f"metrics snapshot missing {key!r}")
EOF
    decisions=$(python3 -c "import json,sys; print(json.load(open(sys.argv[1]))['counters'].get('service.decisions', 0))" "$OUT/metrics.json")
    if (( decisions > 0 )); then
        break
    fi
    sleep 1
done
if (( decisions == 0 )); then
    echo "obs-smoke: /metrics never reported a decision" >&2
    cat "$OUT/metrics.json" >&2
    kill "$LG" 2>/dev/null || true
    exit 1
fi
echo "obs-smoke: /metrics live, service.decisions=$decisions"

curl -fsS "http://$ADDR/trace" -o "$OUT/trace.jsonl"
head -1 "$OUT/trace.jsonl" | python3 -c "import json,sys; line=sys.stdin.readline().strip(); line and json.loads(line)"

if ! wait "$LG"; then
    echo "obs-smoke: loadgen run failed" >&2
    cat "$OUT/loadgen.err" >&2
    exit 1
fi
python3 - "$OUT/report.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    rep = json.load(f)
assert rep["sessions"] > 0, "no sessions completed"
assert rep["subsets_ok"] and rep["baseline_ok"], "service contract violated"
EOF
echo "obs-smoke: report OK ($(python3 -c "import json,sys; print(json.load(open(sys.argv[1]))['sessions'])" "$OUT/report.json") sessions)"

if [[ "${OBS_SOAK:-0}" == "1" ]]; then
    echo "== obs-smoke: 60s soak leg (watchdog must pass) =="
    "$OUT/loadgen" -n 4 -duration 60s -soak -soakinterval 5s -statebudget 2000000
    echo "obs-smoke: soak leg OK"
fi

echo "obs-smoke: PASS"
