package svssba_test

import (
	"testing"

	"svssba"
)

// TestRunManyMatchesRun: the batch API must produce, for every config,
// exactly the result an individual Run produces — whatever the worker
// count. This is the end-to-end determinism the parallel experiment
// sweep relies on.
func TestRunManyMatchesRun(t *testing.T) {
	cfgs := []svssba.Config{
		{N: 4, Seed: 41},
		{N: 4, Seed: 42, Faults: []svssba.Fault{{Proc: 4, Kind: svssba.FaultCrash}}},
	}
	batch := svssba.RunMany(cfgs, 4)
	if len(batch) != len(cfgs) {
		t.Fatalf("%d batch results for %d configs", len(batch), len(cfgs))
	}
	for i, br := range batch {
		if br.Err != nil {
			t.Fatalf("config %d: %v", i, br.Err)
		}
		solo, err := svssba.Run(cfgs[i])
		if err != nil {
			t.Fatalf("config %d solo: %v", i, err)
		}
		if br.Res.Steps != solo.Steps || br.Res.Messages != solo.Messages ||
			br.Res.MaxRound != solo.MaxRound || br.Res.Value != solo.Value {
			t.Errorf("config %d: batch result diverged: batch steps=%d msgs=%d rounds=%d v=%d, solo steps=%d msgs=%d rounds=%d v=%d",
				i, br.Res.Steps, br.Res.Messages, br.Res.MaxRound, br.Res.Value,
				solo.Steps, solo.Messages, solo.MaxRound, solo.Value)
		}
		if !br.Res.Agreed {
			t.Errorf("config %d: agreement failed", i)
		}
	}
}
