package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestDigestMatchesGolden pins both wire variants' quick-matrix digests
// byte-for-byte against testdata. A v1 mismatch means a change that
// claimed to be representation-only altered protocol decisions,
// schedules or logical stats; a v2 mismatch means the declared variant
// drifted without its golden being re-pinned (regenerate deliberately
// with `go run ./cmd/paritydigest -variant v2 > testdata/parity_v2.txt`
// and explain the change in the PR).
func TestDigestMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick-matrix digest (seconds per variant); run without -short")
	}
	for _, variant := range []string{"v1", "v2"} {
		variant := variant
		t.Run(variant, func(t *testing.T) {
			t.Parallel()
			want, err := os.ReadFile(filepath.Join("testdata", "parity_"+variant+".txt"))
			if err != nil {
				t.Fatal(err)
			}
			var got bytes.Buffer
			emit(&got, false, variant)
			if !bytes.Equal(got.Bytes(), want) {
				t.Errorf("digest for wire %s diverged from testdata/parity_%s.txt\ngot:\n%s",
					variant, variant, firstDiff(got.Bytes(), want))
			}
		})
	}
}

// firstDiff renders the first differing line pair for a readable report.
func firstDiff(got, want []byte) string {
	g := bytes.Split(got, []byte("\n"))
	w := bytes.Split(want, []byte("\n"))
	for i := 0; i < len(g) && i < len(w); i++ {
		if !bytes.Equal(g[i], w[i]) {
			return "line " + strconv.Itoa(i+1) + ":\n  got:  " + string(g[i]) + "\n  want: " + string(w[i])
		}
	}
	return "line counts differ: got " + strconv.Itoa(len(g)) + ", want " + strconv.Itoa(len(w))
}
