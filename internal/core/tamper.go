package core

import (
	"svssba/internal/proto"
	"svssba/internal/sim"
)

// SendTamper rewrites or drops an outgoing direct message. It returns the
// payload to send (possibly modified) and whether to send at all. Used to
// build Byzantine processes as "honest logic plus outbound corruption".
type SendTamper func(ctx sim.Context, to sim.ProcID, p sim.Payload) (sim.Payload, bool)

// BcastTamper rewrites or drops an outgoing reliable-broadcast value
// before it enters RB (the corrupted value is then broadcast
// consistently, which is exactly how a faulty-but-careful process evades
// RB-level detection, as in the paper's Example 1).
type BcastTamper func(ctx sim.Context, tag proto.Tag, value []byte) ([]byte, bool)

// SetSendTamper installs a direct-send interceptor. All sends made by
// protocol engines hosted on this node pass through it (including RB
// internal traffic).
func (n *Node) SetSendTamper(t SendTamper) { n.sendTamper = t }

// SetBcastTamper installs a broadcast-value interceptor applied in
// Node.Broadcast before the value enters RB.
func (n *Node) SetBcastTamper(t BcastTamper) { n.bcastTamper = t }

// tamperCtx wraps a sim.Context so sends pass through the node's tamper.
type tamperCtx struct {
	sim.Context
	node *Node
}

func (c tamperCtx) Send(to sim.ProcID, p sim.Payload) {
	out, keep := c.node.sendTamper(c.Context, to, p)
	if !keep {
		return
	}
	c.Context.Send(to, out)
}

// wrap returns ctx unchanged for honest v1 nodes, a tampering context
// when a send interceptor is installed, or a burst context under wire v2
// (which applies the tamper itself before pack-buffering).
func (n *Node) wrap(ctx sim.Context) sim.Context {
	if n.wire2 {
		if _, already := ctx.(burstCtx); already {
			return ctx
		}
		return burstCtx{Context: ctx, node: n}
	}
	if n.sendTamper == nil {
		return ctx
	}
	if _, already := ctx.(tamperCtx); already {
		return ctx
	}
	return tamperCtx{Context: ctx, node: n}
}
