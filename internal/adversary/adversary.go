// Package adversary provides composable Byzantine behaviours for the
// protocol stack. A behaviour configures outbound tampering on a
// core.Stack: the process runs the honest state machines but corrupts,
// drops or equivocates selected traffic — the standard way to model
// "arbitrarily malicious" processes while keeping them message-compatible
// enough to attack the interesting code paths (a process that only
// babbles is filtered out trivially).
//
// Behaviours compose: Apply chains all send and broadcast tampers.
//
// Beyond the message-corrupting behaviours (RValLiar, EchoLiar,
// DealCorruptor, VoteFlipper, VoteEquivocator), the package models
// scheduling-flavoured and cross-round attacks for the scenario matrix:
//
//   - TargetedDelay starves a victim set while feeding everyone else,
//     then releases the backlog in a burst (a process-local partition).
//   - MuteThenBurst stays silent for a prefix of the run and then
//     replays its entire buffered backlog at once, stressing stale-
//     message handling.
//   - CrossSessionEquivocator lies only in sessions of one round
//     parity, so behaviour differs across sessions — the cheapest way
//     to probe whether detections in one session carry to the next.
//   - CoinBiaser lies specifically about common-coin reconstruction
//     values, trying to drag the minimum lottery value (and with it the
//     coin's parity) toward a chosen outcome.
package adversary

import (
	"svssba/internal/aba"
	"svssba/internal/core"
	"svssba/internal/field"
	"svssba/internal/mwsvss"
	"svssba/internal/proto"
	"svssba/internal/sim"
	"svssba/internal/svss"
)

// Behavior mutates outbound traffic of one process.
type Behavior struct {
	// Name identifies the behaviour in experiment tables.
	Name string
	// Send rewrites or drops a direct message (nil = pass-through).
	Send core.SendTamper
	// Bcast rewrites or drops a broadcast value (nil = pass-through).
	Bcast core.BcastTamper
}

// Apply installs the chained behaviours on the stack.
func Apply(st *core.Stack, behaviors ...Behavior) {
	var sends []core.SendTamper
	var bcasts []core.BcastTamper
	for _, b := range behaviors {
		if b.Send != nil {
			sends = append(sends, b.Send)
		}
		if b.Bcast != nil {
			bcasts = append(bcasts, b.Bcast)
		}
	}
	if len(sends) > 0 {
		st.Node.SetSendTamper(func(ctx sim.Context, to sim.ProcID, p sim.Payload) (sim.Payload, bool) {
			for _, f := range sends {
				var keep bool
				p, keep = f(ctx, to, p)
				if !keep {
					return nil, false
				}
			}
			return p, true
		})
	}
	if len(bcasts) > 0 {
		st.Node.SetBcastTamper(func(ctx sim.Context, tag proto.Tag, value []byte) ([]byte, bool) {
			for _, f := range bcasts {
				var keep bool
				value, keep = f(ctx, tag, value)
				if !keep {
					return nil, false
				}
			}
			return value, true
		})
	}
}

// Silent drops every outbound message and broadcast (a fail-stop process
// that still consumes input).
func Silent() Behavior {
	return Behavior{
		Name:  "silent",
		Send:  func(sim.Context, sim.ProcID, sim.Payload) (sim.Payload, bool) { return nil, false },
		Bcast: func(sim.Context, proto.Tag, []byte) ([]byte, bool) { return nil, false },
	}
}

// RValLiar corrupts the process's MW-SVSS reconstruct-phase value
// broadcasts by a fixed offset — the attack shape of the paper's
// Example 1, and the canonical way to (attempt to) break Weak Binding.
func RValLiar(offset uint64) Behavior {
	return Behavior{
		Name: "rval-liar",
		Bcast: func(_ sim.Context, tag proto.Tag, value []byte) ([]byte, bool) {
			if tag.Proto == proto.ProtoMW && tag.Step == mwsvss.StepRVal {
				if v, ok := mwsvss.DecodeElem(value); ok {
					return mwsvss.EncodeElem(v.Add(field.New(offset))), true
				}
			}
			return value, true
		},
	}
}

// EchoLiar corrupts the private echo values of MW-SVSS share step 2,
// sabotaging confirmations so the liar is excluded from L sets.
func EchoLiar(offset uint64) Behavior {
	return Behavior{
		Name: "echo-liar",
		Send: func(_ sim.Context, _ sim.ProcID, p sim.Payload) (sim.Payload, bool) {
			if e, ok := p.(mwsvss.Echo); ok {
				vals := make([]field.Element, len(e.Vals))
				for i, v := range e.Vals {
					vals[i] = v.Add(field.New(offset))
				}
				return mwsvss.Echo{MW: e.MW, Vals: vals}, true
			}
			return p, true
		},
	}
}

// DealCorruptor corrupts the SVSS row/column polynomials this process
// deals to the given victims (a faulty SVSS dealer).
func DealCorruptor(victims map[sim.ProcID]bool) Behavior {
	return Behavior{
		Name: "deal-corruptor",
		Send: func(_ sim.Context, to sim.ProcID, p sim.Payload) (sim.Payload, bool) {
			d, ok := p.(svss.Deal)
			if !ok || !victims[to] {
				return p, true
			}
			row := make([]field.Element, len(d.RowPts))
			col := make([]field.Element, len(d.ColPts))
			for i := range d.RowPts {
				row[i] = d.RowPts[i].Add(field.New(uint64(i + 1)))
			}
			for i := range d.ColPts {
				col[i] = d.ColPts[i].Add(field.New(uint64(2*i + 1)))
			}
			return svss.Deal{Session: d.Session, RowPts: row, ColPts: col}, true
		},
	}
}

// VoteFlipper inverts every outgoing agreement vote and confirmation.
func VoteFlipper() Behavior {
	return Behavior{
		Name: "vote-flipper",
		Send: func(_ sim.Context, _ sim.ProcID, p sim.Payload) (sim.Payload, bool) {
			switch v := p.(type) {
			case aba.Vote:
				return aba.Vote{Step: v.Step, Round: v.Round, Value: 1 - v.Value}, true
			case aba.Conf:
				return aba.Conf{Round: v.Round, Mask: 3 - v.Mask&3}, true
			}
			return p, true
		},
	}
}

// VoteEquivocator sends opposite vote values to even- and odd-numbered
// peers (the classic split attack on voting protocols).
func VoteEquivocator() Behavior {
	return Behavior{
		Name: "vote-equivocator",
		Send: func(_ sim.Context, to sim.ProcID, p sim.Payload) (sim.Payload, bool) {
			if v, ok := p.(aba.Vote); ok && to%2 == 0 {
				return aba.Vote{Step: v.Step, Round: v.Round, Value: 1 - v.Value}, true
			}
			return p, true
		},
	}
}

// burstBuffer is the hold-then-replay machinery shared by TargetedDelay
// and MuteThenBurst: messages are parked by hold and later replayed in
// original order by burst.
//
// burst sends through the raw (un-tampered) context, so the backlog does
// not re-enter the tamper chain. A held message has passed every tamper
// applied *before* the holding behaviour but none after it — compose
// burst behaviours last so the backlog is fully corrupted when captured.
type burstBuffer struct {
	held []struct {
		to sim.ProcID
		p  sim.Payload
	}
	released bool
}

func (b *burstBuffer) hold(to sim.ProcID, p sim.Payload) {
	b.held = append(b.held, struct {
		to sim.ProcID
		p  sim.Payload
	}{to: to, p: p})
}

func (b *burstBuffer) burst(ctx sim.Context) {
	b.released = true
	for _, h := range b.held {
		ctx.Send(h.to, h.p)
	}
	b.held = nil
}

// TargetedDelay holds back every message addressed to a victim until
// the process has sent holdSends messages to non-victims, then releases
// the whole backlog in original order (followed by normal delivery).
// It approximates an adversarial scheduler that starves a subnet from
// inside one process — "partition-aware" in that the victim set is
// typically one side of a PartitionScheduler cut, doubling the damage.
// Compose it last (see burstBuffer).
func TargetedDelay(holdSends int, victims ...sim.ProcID) Behavior {
	vic := make(map[sim.ProcID]bool, len(victims))
	for _, v := range victims {
		vic[v] = true
	}
	var buf burstBuffer
	others := 0
	return Behavior{
		Name: "targeted-delay",
		Send: func(ctx sim.Context, to sim.ProcID, p sim.Payload) (sim.Payload, bool) {
			if buf.released {
				return p, true
			}
			if vic[to] {
				buf.hold(to, p)
				return nil, false
			}
			others++
			if others >= holdSends {
				buf.burst(ctx)
			}
			return p, true
		},
	}
}

// MuteThenBurst buffers its first mute outbound messages (the process
// looks silent), then replays the entire backlog in original order the
// moment the mute budget is exceeded and behaves normally afterwards.
// The burst of stale traffic probes handling of long-delayed messages
// arriving after the protocol has moved on. Compose it last (see
// burstBuffer).
func MuteThenBurst(mute int) Behavior {
	var buf burstBuffer
	return Behavior{
		Name: "mute-burst",
		Send: func(ctx sim.Context, to sim.ProcID, p sim.Payload) (sim.Payload, bool) {
			if buf.released {
				return p, true
			}
			if len(buf.held) < mute {
				buf.hold(to, p)
				return nil, false
			}
			buf.burst(ctx)
			return p, true
		},
	}
}

// CrossSessionEquivocator corrupts MW-SVSS reconstruction broadcasts and
// share-phase echoes by a fixed offset, but only in sessions whose Round
// is odd — honest in half the sessions, lying in the other half. Unlike
// a persistent liar it gives the detection layer no single session in
// which its story is consistent-and-wrong twice, testing that shun state
// genuinely accumulates across sessions.
func CrossSessionEquivocator(offset uint64) Behavior {
	lying := func(sid proto.SessionID) bool { return sid.Round%2 == 1 }
	return Behavior{
		Name: "cross-equivocate",
		Send: func(_ sim.Context, _ sim.ProcID, p sim.Payload) (sim.Payload, bool) {
			if e, ok := p.(mwsvss.Echo); ok && lying(e.MW.Session) {
				vals := make([]field.Element, len(e.Vals))
				for i, v := range e.Vals {
					vals[i] = v.Add(field.New(offset))
				}
				return mwsvss.Echo{MW: e.MW, Vals: vals}, true
			}
			return p, true
		},
		Bcast: func(_ sim.Context, tag proto.Tag, value []byte) ([]byte, bool) {
			if tag.Proto == proto.ProtoMW && tag.Step == mwsvss.StepRVal && lying(tag.Session) {
				if v, ok := mwsvss.DecodeElem(value); ok {
					return mwsvss.EncodeElem(v.Add(field.New(offset))), true
				}
			}
			return value, true
		},
	}
}

// CoinBiaser attacks the common coin: it rewrites its reconstruction
// broadcasts for coin-session sharings to a fixed value, trying to drag
// reconstructed lottery values (and hence the parity of the minimum)
// toward the attacker's choice. SVSS binding turns the lie into
// detections instead of bias — which is exactly what a scenario matrix
// should observe: shun events, not a skewed coin.
func CoinBiaser(toward uint64) Behavior {
	return Behavior{
		Name: "coin-bias",
		Bcast: func(_ sim.Context, tag proto.Tag, value []byte) ([]byte, bool) {
			if tag.Proto == proto.ProtoMW && tag.Step == mwsvss.StepRVal &&
				tag.Session.Kind == proto.KindCoin {
				if _, ok := mwsvss.DecodeElem(value); ok {
					return mwsvss.EncodeElem(field.New(toward)), true
				}
			}
			return value, true
		},
	}
}

// MuteKinds drops outbound messages of the given payload kinds.
func MuteKinds(kinds ...string) Behavior {
	set := make(map[string]bool, len(kinds))
	for _, k := range kinds {
		set[k] = true
	}
	return Behavior{
		Name: "mute",
		Send: func(_ sim.Context, _ sim.ProcID, p sim.Payload) (sim.Payload, bool) {
			if set[p.Kind()] {
				return nil, false
			}
			return p, true
		},
	}
}
