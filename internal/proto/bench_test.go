package proto_test

import (
	"testing"

	"svssba/internal/core"
	"svssba/internal/field"
	"svssba/internal/mwsvss"
	"svssba/internal/proto"
	"svssba/internal/rb"
	"svssba/internal/sim"
	"svssba/internal/svss"
)

// benchTag is a representative fully-populated tag.
var benchTag = proto.Tag{
	Proto:   proto.ProtoMW,
	Session: proto.SessionID{Dealer: 2, Kind: proto.KindCoin, Round: 7, Index: 3},
	MW:      proto.MWKey{Dealer: 2, Moderator: 1, Slot: 1},
	Step:    mwsvss.StepRVal,
	A:       9,
}

// BenchmarkTagRoundTrip tracks the session/tag identifier layer's
// marshal+read cost — the fixed overhead on every reliable-broadcast
// message the transport carries.
func BenchmarkTagRoundTrip(b *testing.B) {
	var w proto.Writer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Reset()
		benchTag.MarshalTo(&w)
		r := proto.NewReader(w.Bytes())
		tag := proto.ReadTag(r)
		if tag.Proto != benchTag.Proto {
			b.Fatal("corrupt round trip")
		}
	}
}

// benchMsg is a representative wire message: an RB broadcast carrying a
// small value, the dominant traffic shape of a live run. It is held as
// a sim.Payload so the benchmarks measure the codec, not per-iteration
// interface boxing (protocol code hands the codec interface values
// already).
var benchMsg sim.Payload = rb.Msg{
	Origin: 2,
	Tag:    benchTag,
	Value:  []byte("0123456789abcdef"),
}

// BenchmarkEncodeMessage tracks Codec.Encode (one exact-size allocation
// per message).
func BenchmarkEncodeMessage(b *testing.B) {
	c := core.NewCodec()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc, err := c.Encode(benchMsg)
		if err != nil {
			b.Fatal(err)
		}
		if len(enc) == 0 {
			b.Fatal("empty encoding")
		}
	}
}

// BenchmarkAppendEncodeMessage tracks the buffer-reusing fast path the
// node runtime and LiveNet use; steady-state it must not allocate.
func BenchmarkAppendEncodeMessage(b *testing.B) {
	c := core.NewCodec()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc, err := c.AppendEncode(buf[:0], benchMsg)
		if err != nil {
			b.Fatal(err)
		}
		buf = enc
	}
}

// BenchmarkEncodeDecodeMessage tracks the full wire round trip — what
// every delivered message costs the live runtime on top of protocol
// logic.
func BenchmarkEncodeDecodeMessage(b *testing.B) {
	c := core.NewCodec()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc, err := c.AppendEncode(buf[:0], benchMsg)
		if err != nil {
			b.Fatal(err)
		}
		buf = enc
		p, err := c.Decode(enc)
		if err != nil {
			b.Fatal(err)
		}
		if p.Kind() != benchMsg.Kind() {
			b.Fatal("kind mismatch")
		}
	}
}

// BenchmarkEncodeLargeMessage exercises the size-proportional path with
// a deal carrying 2(t+1) polynomial points at n=16.
func BenchmarkEncodeLargeMessage(b *testing.B) {
	pts := make([]field.Element, 12)
	for i := range pts {
		pts[i] = field.New(uint64(i + 1))
	}
	var deal sim.Payload = svss.Deal{Session: benchTag.Session, RowPts: pts, ColPts: pts}
	c := core.NewCodec()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc, err := c.AppendEncode(buf[:0], deal)
		if err != nil {
			b.Fatal(err)
		}
		buf = enc
	}
}
