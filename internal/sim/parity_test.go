package sim

import (
	"testing"
	"time"
)

// parityPayload exercises the kind-interning paths with two distinct
// kinds and sizes.
type parityPayload struct {
	kind string
	size int
	hops int
}

func (p parityPayload) Kind() string { return p.kind }
func (p parityPayload) Size() int    { return p.size }

// parityProc is a scripted handler whose total send counts are a pure
// function of (n, hops), independent of delivery order — so the same
// script can run on the deterministic Network and the concurrent
// LiveNet and must produce identical traffic stats.
type parityProc struct {
	id ProcID
	n  int
}

func (p *parityProc) ID() ProcID { return p.id }

func (p *parityProc) Init(ctx Context) {
	for q := 1; q <= p.n; q++ {
		if ProcID(q) != p.id {
			ctx.Send(ProcID(q), parityPayload{kind: "parity/seed", size: 16, hops: 3})
		}
	}
}

func (p *parityProc) Deliver(ctx Context, m Message) {
	pl := m.Payload.(parityPayload)
	if pl.hops == 0 {
		return
	}
	next := ProcID(int(p.id)%p.n + 1)
	ctx.Send(next, parityPayload{kind: "parity/relay", size: 5, hops: pl.hops - 1})
}

// TestNetworkLiveNetStatsParity runs the same scripted workload on the
// event-loop Network and the goroutine-per-process LiveNet and asserts
// both report identical Stats() — the contract behind porting LiveNet
// to the dense interned-kind counter layout Network uses.
func TestNetworkLiveNetStatsParity(t *testing.T) {
	const n, tf = 4, 1

	nw := NewNetwork(n, tf, 1)
	for p := 1; p <= n; p++ {
		if err := nw.Register(&parityProc{id: ProcID(p), n: n}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nw.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	want := nw.Stats()
	if want.Sent == 0 || len(want.SentByKind) != 2 {
		t.Fatalf("scripted run produced unexpected traffic: %+v", want)
	}

	ln := NewLiveNet(n, tf, 1, WithMaxDelay(100*time.Microsecond))
	for p := 1; p <= n; p++ {
		if err := ln.Register(&parityProc{id: ProcID(p), n: n}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ln.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := ln.Stats()
		if st.Sent == want.Sent && st.Delivered == want.Sent {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("live run did not settle: got sent=%d delivered=%d, want %d",
				st.Sent, st.Delivered, want.Sent)
		}
		time.Sleep(time.Millisecond)
	}
	ln.Stop()
	got := ln.Stats()

	if got.Sent != want.Sent || got.Delivered != want.Delivered || got.Dropped != want.Dropped {
		t.Errorf("totals differ: live {%d %d %d}, network {%d %d %d}",
			got.Sent, got.Delivered, got.Dropped, want.Sent, want.Delivered, want.Dropped)
	}
	for kind, sent := range want.SentByKind {
		if got.SentByKind[kind] != sent {
			t.Errorf("SentByKind[%q]: live %d, network %d", kind, got.SentByKind[kind], sent)
		}
		if got.BytesByKind[kind] != want.BytesByKind[kind] {
			t.Errorf("BytesByKind[%q]: live %d, network %d", kind, got.BytesByKind[kind], want.BytesByKind[kind])
		}
	}
	if len(got.SentByKind) != len(want.SentByKind) {
		t.Errorf("kind sets differ: live %v, network %v", got.SentByKind, want.SentByKind)
	}
}
