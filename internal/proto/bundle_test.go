package proto_test

import (
	"encoding/binary"
	"testing"

	"svssba/internal/proto"
	"svssba/internal/rb"
	"svssba/internal/sim"
)

func TestBundleRoundTrip(t *testing.T) {
	tags, vals := seedBundleItems()
	body := proto.EncodeBundle(tags, vals)
	if want := proto.BundleBodySize(lens(vals)); len(body) != want {
		t.Fatalf("encoded %d bytes, BundleBodySize says %d", len(body), want)
	}
	items, err := proto.DecodeBundle(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(tags) {
		t.Fatalf("decoded %d items, want %d", len(items), len(tags))
	}
	for i, it := range items {
		if it.Tag != tags[i] {
			t.Errorf("item %d tag changed: %v != %v", i, it.Tag, tags[i])
		}
		if !bytesEq(it.Value, vals[i]) {
			t.Errorf("item %d value changed", i)
		}
	}
}

func lens(vals [][]byte) []int {
	out := make([]int, len(vals))
	for i, v := range vals {
		out[i] = len(v)
	}
	return out
}

func TestBundleRejectsNestedTag(t *testing.T) {
	body := proto.EncodeBundle(
		[]proto.Tag{{Proto: proto.ProtoBundle, A: 1}},
		[][]byte{[]byte("inner")})
	if _, err := proto.DecodeBundle(body); err == nil {
		t.Fatal("bundle with a nested ProtoBundle tag decoded")
	}
}

func TestBundleRejectsOverCount(t *testing.T) {
	// A count far beyond the body length must be rejected before any
	// allocation sized by it.
	if _, err := proto.DecodeBundle([]byte{0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Fatal("absurd count decoded")
	}
}

func TestPackSizeMatchesEncoding(t *testing.T) {
	c := fullCodec()
	pk := proto.Pack{Items: []sim.Payload{
		rb.Msg{Origin: 1, Tag: proto.Tag{Proto: proto.ProtoMW, Step: 1}, Value: []byte("xyz")},
		rb.Msg{Origin: 2, Tag: proto.Tag{Proto: proto.ProtoSVSS, Step: 2}, Value: nil},
	}}
	enc, err := c.Encode(pk)
	if err != nil {
		t.Fatal(err)
	}
	// Codec framing adds the u16 kind prefix + kind bytes around Size().
	if want := 2 + len(pk.Kind()) + pk.Size(); len(enc) != want {
		t.Fatalf("encoded %d bytes, kind framing + Size() says %d", len(enc), want)
	}
	p, err := c.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := p.(proto.Pack)
	if !ok {
		t.Fatalf("decoded %T, want Pack", p)
	}
	if len(got.Items) != 2 {
		t.Fatalf("decoded %d items, want 2", len(got.Items))
	}
}

func TestPackRejectsNestedPack(t *testing.T) {
	c := fullCodec()
	inner := proto.Pack{Items: []sim.Payload{
		rb.Msg{Origin: 1, Tag: proto.Tag{Proto: proto.ProtoMW}, Value: []byte("v")},
	}}
	outer := proto.Pack{Items: []sim.Payload{inner}}
	enc, err := c.Encode(outer)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decode(enc); err == nil {
		t.Fatal("nested pack decoded")
	}
}

func TestPackRejectsUnknownKind(t *testing.T) {
	c := fullCodec()
	// Hand-build a pack frame holding one item of an unregistered kind:
	// u16 kindlen + kind (codec framing), then u32 count, u16 itemKindLen
	// + itemKind, u32 bodyLen.
	var frame []byte
	frame = binary.LittleEndian.AppendUint16(frame, uint16(len(proto.KindPack)))
	frame = append(frame, proto.KindPack...)
	frame = binary.LittleEndian.AppendUint32(frame, 1)
	frame = binary.LittleEndian.AppendUint16(frame, 4)
	frame = append(frame, "nope"...)
	frame = binary.LittleEndian.AppendUint32(frame, 0)
	if _, err := c.Decode(frame); err == nil {
		t.Fatal("pack with unknown inner kind decoded")
	}
}
