// Command cluster spawns an n-node agreement cluster on the node
// runtime — over real localhost TCP sockets by default — injects
// transport-level faults (crashes, random delays, frame drops), asserts
// agreement among the honest nodes, and prints a per-layer
// message/byte stats table. It exits nonzero if agreement fails.
//
// Examples:
//
//	cluster -n 4 -crash 1
//	cluster -n 7 -crash 1 -droppers 1 -drop 0.3 -delay 2ms
//	cluster -n 4 -transport chan -seed 7 -v
//	cluster -n 4 -http 127.0.0.1:8780 -tracefile trace.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"svssba"
	"svssba/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cluster:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n          = flag.Int("n", 4, "number of nodes")
		t          = flag.Int("t", 0, "resilience bound (default (n-1)/3)")
		seed       = flag.Int64("seed", 1, "seed for node randomness and fault injection")
		transportK = flag.String("transport", "tcp", "tcp | chan")
		basePort   = flag.Int("baseport", 0, "first TCP port (0 = ephemeral)")
		crash      = flag.Int("crash", 0, "fail-stop this many nodes (taken from the top ids)")
		crashAfter = flag.Duration("crashafter", 0, "crash the nodes this long into the run (0 = never started)")
		delay      = flag.Duration("delay", 0, "max random extra delay injected per frame on every link")
		drop       = flag.Float64("drop", 0, "outbound frame drop probability for dropper nodes")
		droppers   = flag.Int("droppers", 0, "number of dropper nodes (taken below the crashed ids)")
		batch      = flag.Bool("batch", false, "coalesce same-destination payloads into multi-payload batch frames")
		wire       = flag.String("wire", "v1", "wire variant: v1 (baseline shape) | v2 (burst coalescing inside the stack)")
		timeout    = flag.Duration("timeout", 60*time.Second, "run deadline")
		inputsArg  = flag.String("inputs", "", "comma-separated binary inputs (default alternating)")
		verbose    = flag.Bool("v", false, "print per-node stats lines")

		httpAddr  = flag.String("http", "", "serve live /metrics and /debug/pprof on this address during the run")
		traceCap  = flag.Int("trace", 0, "per-node protocol round tracer capacity (0 = off; -tracefile defaults to 4096)")
		traceFile = flag.String("tracefile", "", "write all nodes' round traces as JSONL to this file at exit")
	)
	flag.Parse()
	if *traceCap == 0 && *traceFile != "" {
		*traceCap = 4096
	}

	cfg := svssba.ClusterConfig{
		N:          *n,
		T:          *t,
		Seed:       *seed,
		Transport:  svssba.TransportKind(*transportK),
		BasePort:   *basePort,
		CrashAfter: *crashAfter,
		Delay:      *delay,
		Drop:       *drop,
		Batching:   *batch,
		Wire:       *wire,
		Timeout:    *timeout,
		TraceCap:   *traceCap,
	}
	if *httpAddr != "" {
		cfg.Metrics = obs.NewRegistry()
		srv, err := obs.Serve(*httpAddr, cfg.Metrics)
		if err != nil {
			return fmt.Errorf("http endpoint: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "cluster: observability endpoint on http://%s\n", srv.Addr())
	}
	// Fault ids are carved off the top of the id range: crashes take the
	// last -crash ids, droppers the ids just below them.
	for i := *n - *crash + 1; i <= *n; i++ {
		cfg.Crash = append(cfg.Crash, i)
	}
	for i := *n - *crash - *droppers + 1; i <= *n-*crash; i++ {
		cfg.Droppers = append(cfg.Droppers, i)
	}
	if *inputsArg != "" {
		for _, part := range strings.Split(*inputsArg, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad input %q: %v", part, err)
			}
			cfg.Inputs = append(cfg.Inputs, v)
		}
	}

	effT := cfg.T
	if effT == 0 {
		effT = (cfg.N - 1) / 3
	}
	fmt.Printf("cluster       n=%d t=%d seed=%d transport=%s batch=%v wire=%s timeout=%v\n",
		cfg.N, effT, cfg.Seed, cfg.Transport, cfg.Batching, *wire, cfg.Timeout)
	if len(cfg.Crash) > 0 {
		fmt.Printf("crash         %v (after %v)\n", cfg.Crash, cfg.CrashAfter)
	}
	if len(cfg.Droppers) > 0 {
		fmt.Printf("droppers      %v (drop %.2f)\n", cfg.Droppers, cfg.Drop)
	}
	if cfg.Delay > 0 {
		fmt.Printf("link delay    up to %v per frame\n", cfg.Delay)
	}

	res, err := svssba.RunCluster(cfg)
	if err != nil {
		return err
	}

	ids := make([]int, 0, len(res.Decisions))
	for id := range res.Decisions {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	parts := make([]string, 0, len(ids))
	for _, id := range ids {
		parts = append(parts, fmt.Sprintf("%d:%d", id, res.Decisions[id]))
	}
	fmt.Printf("decisions     %s\n", strings.Join(parts, " "))
	fmt.Printf("honest        %v\n", res.Honest)
	fmt.Printf("agreed        %v\n", res.Agreed)
	if res.Agreed {
		fmt.Printf("value         %d\n", res.Value)
	}
	fmt.Printf("elapsed       %v\n", res.Elapsed.Round(time.Millisecond))

	// Per-layer stats aggregated over honest nodes.
	honest := make(map[int]bool, len(res.Honest))
	for _, id := range res.Honest {
		honest[id] = true
	}
	var honestStats []svssba.ClusterNodeStats
	for _, nd := range res.Nodes {
		if honest[nd.ID] {
			honestStats = append(honestStats, nd)
		}
	}
	layers, agg := svssba.ClusterLayerTable(honestStats)
	fmt.Printf("\n%-8s %12s %12s %14s %12s %12s %14s\n",
		"layer", "sent plds", "sent frames", "sent bytes", "recv plds", "recv frames", "recv bytes")
	var tot svssba.ClusterLayerStats
	for _, l := range layers {
		a := agg[l]
		fmt.Printf("%-8s %12d %12d %14d %12d %12d %14d\n",
			l, a.SentMsgs, a.SentFrames, a.SentBytes, a.RecvMsgs, a.RecvFrames, a.RecvBytes)
		tot.SentMsgs += a.SentMsgs
		tot.SentFrames += a.SentFrames
		tot.SentBytes += a.SentBytes
		tot.RecvMsgs += a.RecvMsgs
		tot.RecvFrames += a.RecvFrames
		tot.RecvBytes += a.RecvBytes
	}
	fmt.Printf("%-8s %12d %12d %14d %12d %12d %14d\n",
		"total", tot.SentMsgs, tot.SentFrames, tot.SentBytes, tot.RecvMsgs, tot.RecvFrames, tot.RecvBytes)

	// Physical transport frames (whole frames, possibly spanning layers)
	// vs logical payloads over the honest nodes — the headline batching
	// reduction.
	var plds, frames, fbytes int64
	for _, nd := range honestStats {
		plds += nd.Sent
		frames += nd.SentFrames
		fbytes += nd.SentFrameBytes
	}
	if plds > 0 {
		fmt.Printf("\nphysical      %d frames (%d B on the wire) for %d payloads — %.1f%% frame reduction\n",
			frames, fbytes, plds, 100*(1-float64(frames)/float64(plds)))
	}

	// Shedding counters over the honest nodes: frames/payloads that
	// arrived for already-settled state and were dropped at the door, and
	// frames rejected by the size guard.
	var lateFrames, latePlds, oversized int64
	for _, nd := range honestStats {
		lateFrames += nd.DroppedLateFrames
		latePlds += nd.DroppedLatePayloads
		oversized += nd.OversizedDropped
	}
	fmt.Printf("drops         late frames=%d late payloads=%d oversized=%d\n",
		lateFrames, latePlds, oversized)

	// Message-complexity report: logical deliveries normalized by the
	// protocol's unit counts over the honest nodes.
	cx := svssba.Complexity(honestStats)
	fmt.Printf("\ncomplexity    %d deliveries | coin rounds=%d rb=%d wrb=%d mw=%d svss=%d\n",
		cx.Deliveries, cx.CoinRounds, cx.RBCreated, cx.WRBCreated, cx.MWCreated, cx.SVSSCreated)
	if cx.CoinRounds > 0 {
		fmt.Printf("              %.0f deliveries/coin-round\n", cx.PerCoinRound())
	}
	if cx.MWCreated > 0 {
		fmt.Printf("              %.1f deliveries/mw-instance\n", cx.PerMWInstance())
	}
	if cx.RBCreated > 0 {
		fmt.Printf("              %.1f deliveries/rb-session\n", cx.PerRBSession())
	}

	if *verbose {
		fmt.Println()
		for _, nd := range res.Nodes {
			status := "honest"
			switch {
			case nd.Crashed:
				status = "crashed"
			case nd.Dropper:
				status = "dropper"
			}
			decision := "-"
			if nd.Decided {
				decision = strconv.Itoa(nd.Decision)
			}
			fmt.Printf("node %-3d %-8s decision=%-2s sent=%d plds / %d frames (%d B) recv=%d plds / %d frames (%d B)\n",
				nd.ID, status, decision, nd.Sent, nd.SentFrames, nd.SentFrameBytes, nd.Recv, nd.RecvFrames, nd.RecvFrameBytes)
		}
	}

	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		for _, tr := range res.Traces {
			if err := tr.WriteJSONL(f); err != nil {
				f.Close()
				return err
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cluster: wrote round traces to %s\n", *traceFile)
	}

	if !res.Agreed {
		return fmt.Errorf("agreement violated: decisions %v", res.Decisions)
	}
	return nil
}
