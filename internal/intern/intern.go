// Package intern provides the dense-state building blocks the protocol
// engines' hot paths are built on: an interning table that maps
// comparable instance keys (broadcast tags, MW-SVSS ids, ...) to small
// dense ids with free-list recycling, fixed-width bitsets for process
// and index sets, and an inline small-value counter that replaces
// map[string]int vote tallies.
//
// The motivation is the per-delivery cost profile of the stack: the
// paper's O(n²) echo complexity means every reliable-broadcast instance
// sees ~n² deliveries, each of which previously paid a map lookup keyed
// by a ~30-byte struct plus two or three map writes inside the instance.
// With interning, one delivery costs a single key lookup (often served
// by a one-slot cache during echo storms) and the rest of the state
// transition is slab indexing and word-sized bit arithmetic — zero
// allocations on the warm path.
//
// None of the types here are safe for concurrent use; like the engines
// that embed them they live on a single delivery goroutine.
package intern

// NoID marks the absence of an interned id.
const NoID = ^uint32(0)

// Table interns comparable keys as dense uint32 ids. Ids are allocated
// sequentially and recycled through a free list when released, so a
// slab indexed by id stays compact across instance churn. The zero
// Table is ready to use.
type Table[K comparable] struct {
	ids  map[K]uint32
	keys []K       // id -> key, live or free
	free []uint32  // released ids, reused LIFO

	// One-slot lookup cache: deliveries cluster by instance (echo
	// storms), so consecutive lookups usually hit the same key.
	lastKey K
	lastID  uint32

	// created counts fresh interns cumulatively (never reset): each
	// fresh key is one protocol instance, so created is the denominator
	// of per-instance complexity reports.
	created uint64
}

// Created returns the cumulative number of fresh interns (instances
// ever created); Release and Reset do not decrease it.
func (t *Table[K]) Created() uint64 { return t.created }

// Lookup returns the id interned for k, or NoID.
func (t *Table[K]) Lookup(k K) uint32 {
	if t.lastID != NoID && k == t.lastKey && t.ids != nil {
		return t.lastID
	}
	id, ok := t.ids[k]
	if !ok {
		return NoID
	}
	t.lastKey, t.lastID = k, id
	return id
}

// Intern returns the id for k, allocating one (fresh=true) if k is not
// interned yet. Fresh ids come from the free list when available, else
// extend the id space by one (so a slab grown in step with HighWater
// always has a slot for a fresh id).
func (t *Table[K]) Intern(k K) (id uint32, fresh bool) {
	if id = t.Lookup(k); id != NoID {
		return id, false
	}
	if t.ids == nil {
		t.ids = make(map[K]uint32)
		t.lastID = NoID
	}
	if n := len(t.free); n > 0 {
		id = t.free[n-1]
		t.free = t.free[:n-1]
		t.keys[id] = k
	} else {
		id = uint32(len(t.keys))
		t.keys = append(t.keys, k)
	}
	t.ids[k] = id
	t.lastKey, t.lastID = k, id
	t.created++
	return id, true
}

// Release returns k's id to the free list. Releasing an unknown key is
// a no-op.
//
// Note the semantics before reaching for this: a released key loses
// its instance's tombstone state, so a late message for it would
// re-create a fresh instance. The protocol engines therefore retire
// via Reset (only once the whole stack is done and inbound traffic is
// gated); Release is the finer-grained primitive for layers that can
// prove their late messages inert — e.g. releasing a finished coin
// round's instances once the →-ordering makes its traffic undeliverable.
func (t *Table[K]) Release(k K) {
	id, ok := t.ids[k]
	if !ok {
		return
	}
	delete(t.ids, k)
	var zero K
	t.keys[id] = zero
	t.free = append(t.free, id)
	if t.lastID == id {
		t.lastID = NoID
		t.lastKey = zero
	}
}

// Key returns the key interned under id (the zero K for freed slots).
func (t *Table[K]) Key(id uint32) K { return t.keys[id] }

// Len returns the number of live (interned, unreleased) keys.
func (t *Table[K]) Len() int { return len(t.ids) }

// HighWater returns the id-space size: the largest id ever allocated
// plus one. Slabs indexed by id must hold at least this many slots.
func (t *Table[K]) HighWater() int { return len(t.keys) }

// Reset releases every key and forgets the id space, keeping the
// allocated capacity for reuse.
func (t *Table[K]) Reset() {
	clear(t.ids)
	clear(t.keys)
	t.keys = t.keys[:0]
	t.free = t.free[:0]
	var zero K
	t.lastKey, t.lastID = zero, NoID
}
