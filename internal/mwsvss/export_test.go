package mwsvss

import (
	"fmt"

	"svssba/internal/proto"
)

// SetDebugRecon toggles reconstruction debugging (tests only).
func SetDebugRecon(v bool) { debugRecon = v }

// DumpState prints an instance's internal progress (tests only).
func (e *Engine) DumpState(id proto.MWID) string {
	in := e.lookup(id)
	if in == nil {
		return "no instance"
	}
	ks := map[int]int{}
	for l, pts := range in.kSets {
		if len(pts) > 0 {
			ks[l] = len(pts)
		}
	}
	return fmt.Sprintf(
		"valsSet=%v polySet=%v lDone=%v L=%v mKnown=%v M=%v ok=%v shareDone=%v reconStarted=%v reconDone=%v kSets=%v pendingRV=%d fBarSet=%v",
		in.valsSet, in.myPolySet, in.lDone, in.lSnapshot, in.mKnown, in.mSet,
		in.okKnown, in.shareDone, in.reconStarted, in.reconDone, ks, len(in.rvalsPending), in.fBarSet.Slice())
}
