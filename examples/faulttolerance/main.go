// Command faulttolerance runs Byzantine agreement under every fault
// behaviour in the library, at full corruption budget t = ⌊(n-1)/3⌋,
// and shows that agreement and termination hold in each case — the
// paper's optimal-resilience claim in action.
package main

import (
	"fmt"
	"log"

	"svssba"
)

func main() {
	faults := []svssba.FaultKind{
		svssba.FaultCrash,
		svssba.FaultSilent,
		svssba.FaultVoteFlip,
		svssba.FaultVoteEquivocate,
		svssba.FaultRValLie,
		svssba.FaultDealCorrupt,
		svssba.FaultEchoLie,
	}

	fmt.Println("n=4, t=1, split inputs, process 4 Byzantine:")
	fmt.Printf("%-18s %-8s %-8s %-7s %-9s %s\n",
		"fault", "agreed", "value", "rounds", "messages", "shuns")
	for i, kind := range faults {
		res, err := svssba.Run(svssba.Config{
			N:      4,
			Seed:   int64(100 + i),
			Inputs: []int{0, 1, 0, 1},
			Faults: []svssba.Fault{{Proc: 4, Kind: kind}},
		})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Agreed {
			log.Fatalf("agreement violated under %s — this should be impossible", kind)
		}
		fmt.Printf("%-18s %-8v %-8d %-7d %-9d %d\n",
			kind, res.Agreed, res.Value, res.MaxRound, res.Messages, len(res.Shuns))
	}

	fmt.Println("\nn=7, t=2, two colluding Byzantine processes:")
	res, err := svssba.Run(svssba.Config{
		N:      7,
		Seed:   9,
		Inputs: []int{0, 1, 0, 1, 0, 1, 0},
		Faults: []svssba.Fault{
			{Proc: 6, Kind: svssba.FaultVoteEquivocate},
			{Proc: 7, Kind: svssba.FaultRValLie},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Agreed {
		log.Fatal("agreement violated at t=2 — this should be impossible")
	}
	fmt.Printf("  agreed on %d after %d rounds, %d messages, %d shun events\n",
		res.Value, res.MaxRound, res.Messages, len(res.Shuns))
}
