package aba_test

import (
	"fmt"
	"testing"

	"svssba/internal/aba"
	"svssba/internal/core"
	"svssba/internal/proto"
	"svssba/internal/sim"
	"svssba/internal/testutil"
)

type proc struct {
	id       sim.ProcID
	stack    *core.Stack
	decision int
	decided  bool
	shunned  []sim.ProcID
}

type cluster struct {
	nw    *sim.Network
	procs map[sim.ProcID]*proc
	n     int
}

func newCluster(t *testing.T, n, tf int, seed int64, opts ...sim.NetworkOption) *cluster {
	t.Helper()
	c := &cluster{
		nw:    sim.NewNetwork(n, tf, seed, opts...),
		procs: make(map[sim.ProcID]*proc, n),
		n:     n,
	}
	for i := 1; i <= n; i++ {
		p := &proc{id: sim.ProcID(i)}
		p.stack = core.NewStack(p.id, func(j sim.ProcID, _ proto.MWID) {
			p.shunned = append(p.shunned, j)
		})
		p.stack.OnDecide(func(_ sim.Context, v int) {
			p.decided = true
			p.decision = v
		})
		c.procs[p.id] = p
		if err := c.nw.Register(p.stack.Node); err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
	}
	return c
}

// propose wires inputs via init functions.
func (c *cluster) propose(t *testing.T, inputs map[sim.ProcID]int) {
	t.Helper()
	for id, v := range inputs {
		p := c.procs[id]
		value := v
		p.stack.Node.AddInit(func(ctx sim.Context) {
			if err := p.stack.ABA.Propose(ctx, value); err != nil {
				t.Errorf("propose %d: %v", p.id, err)
			}
		})
	}
}

func (c *cluster) allDecided(who []sim.ProcID) bool {
	for _, i := range who {
		if !c.procs[i].decided {
			return false
		}
	}
	return true
}

func (c *cluster) mustReach(t *testing.T, what string, cond func() bool) {
	t.Helper()
	if _, err := c.nw.RunUntil(cond, 500_000_000); err != nil {
		t.Fatalf("%s: %v", what, err)
	}
	if !cond() {
		t.Fatalf("%s: network quiesced before condition held", what)
	}
}

func ids(from, to int) []sim.ProcID {
	out := make([]sim.ProcID, 0, to-from+1)
	for i := from; i <= to; i++ {
		out = append(out, sim.ProcID(i))
	}
	return out
}

// checkAgreementValidity asserts Agreement (all decisions equal) and
// Validity (the decision is some process's input) among who.
func (c *cluster) checkAgreementValidity(t *testing.T, who []sim.ProcID, inputs map[sim.ProcID]int) {
	t.Helper()
	first := c.procs[who[0]].decision
	inputSet := make(map[int]bool)
	for _, v := range inputs {
		inputSet[v] = true
	}
	for _, i := range who {
		if got := c.procs[i].decision; got != first {
			t.Errorf("agreement violated: process %d decided %d, process %d decided %d",
				who[0], first, i, got)
		}
	}
	if !inputSet[first] {
		t.Errorf("validity violated: decision %d not among inputs %v", first, inputs)
	}
}

func TestABAUnanimousInputs(t *testing.T) {
	for _, input := range []int{0, 1} {
		t.Run(fmt.Sprintf("input%d", input), func(t *testing.T) {
			c := newCluster(t, 4, 1, int64(40+input))
			inputs := make(map[sim.ProcID]int)
			for _, i := range ids(1, 4) {
				inputs[i] = input
			}
			c.propose(t, inputs)
			c.mustReach(t, "decide", func() bool { return c.allDecided(ids(1, 4)) })
			c.checkAgreementValidity(t, ids(1, 4), inputs)
			// Unanimous input v must decide v (validity is strict here:
			// only v ever enters bin_values).
			if c.procs[1].decision != input {
				t.Errorf("decision %d, want unanimous input %d", c.procs[1].decision, input)
			}
		})
	}
}

func TestABASplitInputs(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		c := newCluster(t, 4, 1, seed)
		inputs := map[sim.ProcID]int{1: 0, 2: 1, 3: 0, 4: 1}
		c.propose(t, inputs)
		c.mustReach(t, "decide", func() bool { return c.allDecided(ids(1, 4)) })
		c.checkAgreementValidity(t, ids(1, 4), inputs)
		for _, i := range ids(1, 4) {
			if len(c.procs[i].shunned) != 0 {
				t.Errorf("seed %d: shun in honest run", seed)
			}
		}
	}
}

func TestABAWithCrashFault(t *testing.T) {
	c := newCluster(t, 4, 1, 5)
	c.nw.Crash(4)
	inputs := map[sim.ProcID]int{1: 1, 2: 0, 3: 1}
	c.propose(t, inputs)
	live := ids(1, 3)
	c.mustReach(t, "decide with crash", func() bool { return c.allDecided(live) })
	c.checkAgreementValidity(t, live, inputs)
}

// byzantineVoteFlipper runs the honest stack but flips the value in all
// of its outgoing ABA votes (BVAL/AUX) and lies in CONF.
func flipVotes(p *proc) {
	p.stack.Node.SetSendTamper(func(_ sim.Context, _ sim.ProcID, pay sim.Payload) (sim.Payload, bool) {
		switch v := pay.(type) {
		case aba.Vote:
			return aba.Vote{Step: v.Step, Round: v.Round, Value: 1 - v.Value}, true
		case aba.Conf:
			return aba.Conf{Round: v.Round, Mask: 3 - v.Mask&3}, true
		}
		return pay, true
	})
}

func TestABAWithByzantineVoter(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		c := newCluster(t, 4, 1, seed)
		flipVotes(c.procs[4])
		inputs := map[sim.ProcID]int{1: 1, 2: 1, 3: 0, 4: 0}
		c.propose(t, inputs)
		honest := ids(1, 3)
		c.mustReach(t, "decide with byzantine voter", func() bool { return c.allDecided(honest) })
		c.checkAgreementValidity(t, honest, map[sim.ProcID]int{1: 1, 2: 1, 3: 0})
	}
}

// equivocateVotes sends different BVAL/AUX values to odd and even peers.
func equivocateVotes(p *proc) {
	p.stack.Node.SetSendTamper(func(_ sim.Context, to sim.ProcID, pay sim.Payload) (sim.Payload, bool) {
		if v, ok := pay.(aba.Vote); ok {
			if to%2 == 0 {
				return aba.Vote{Step: v.Step, Round: v.Round, Value: 1 - v.Value}, true
			}
		}
		return pay, true
	})
}

func TestABAWithEquivocatingVoter(t *testing.T) {
	c := newCluster(t, 4, 1, 17)
	equivocateVotes(c.procs[2])
	inputs := map[sim.ProcID]int{1: 0, 2: 1, 3: 1, 4: 0}
	c.propose(t, inputs)
	honest := []sim.ProcID{1, 3, 4}
	c.mustReach(t, "decide with equivocator", func() bool { return c.allDecided(honest) })
	c.checkAgreementValidity(t, honest, map[sim.ProcID]int{1: 0, 3: 1, 4: 0})
}

// TestABARoundsOrderedPerProcess checks the session-ordering property the
// paper's t(n−t) argument requires: each process completes the coin of
// round r before starting round r+1, so coin sessions are →_i ordered.
func TestABARoundsOrderedPerProcess(t *testing.T) {
	c := newCluster(t, 4, 1, 23)
	type ev struct {
		round uint64
		kind  string
	}
	events := make(map[sim.ProcID][]ev)
	for i := 1; i <= 4; i++ {
		id := sim.ProcID(i)
		p := c.procs[id]
		p.stack.OnCoin(func(_ sim.Context, r uint64, _ int) {
			events[id] = append(events[id], ev{round: r, kind: "coin"})
		})
	}
	inputs := map[sim.ProcID]int{1: 0, 2: 1, 3: 0, 4: 1}
	c.propose(t, inputs)
	c.mustReach(t, "decide", func() bool { return c.allDecided(ids(1, 4)) })
	for id, evs := range events {
		last := uint64(0)
		for _, e := range evs {
			if e.round != last+1 {
				t.Errorf("process %d: coin rounds out of order: %v", id, evs)
				break
			}
			last = e.round
		}
	}
}

func TestProposeValidation(t *testing.T) {
	eng := aba.New(1, nil, nil)
	ctx := testutil.NewCtx(1, 4, 1)
	if err := eng.Propose(ctx, 2); err == nil {
		t.Error("non-binary input accepted")
	}
	coinStub := coinStub{}
	eng2 := aba.New(1, coinStub, nil)
	if err := eng2.Propose(ctx, 1); err != nil {
		t.Errorf("propose: %v", err)
	}
	if err := eng2.Propose(ctx, 0); err == nil {
		t.Error("double propose accepted")
	}
}

type coinStub struct{}

func (coinStub) Start(sim.Context, uint64) {}

func TestVoteCodec(t *testing.T) {
	c := core.NewCodec()
	msgs := []sim.Payload{
		aba.Vote{Step: 1, Round: 9, Value: 1},
		aba.Vote{Step: 2, Round: 9, Value: 0},
		aba.Conf{Round: 3, Mask: 3},
		aba.Decide{Value: 1},
	}
	for _, in := range msgs {
		b, err := c.Encode(in)
		if err != nil {
			t.Fatalf("encode %s: %v", in.Kind(), err)
		}
		if want := in.Size() + 2 + len(in.Kind()); len(b) != want {
			t.Errorf("%s: encoded %d bytes, Size()+hdr %d", in.Kind(), len(b), want)
		}
		out, err := c.Decode(b)
		if err != nil {
			t.Fatalf("decode %s: %v", in.Kind(), err)
		}
		if out != in {
			t.Errorf("round trip: got %+v want %+v", out, in)
		}
	}
}
