package proto

import (
	"fmt"
	"sync"

	"svssba/internal/sim"
)

// Marshaler is implemented by payloads that can write themselves to a
// Writer. Every protocol message in this repository implements it; the
// analytic Size() of each payload must equal the marshaled length (codec
// tests enforce this).
type Marshaler interface {
	sim.Payload
	MarshalTo(w *Writer)
}

// DecodeFunc reconstructs a payload from a Reader.
type DecodeFunc func(r *Reader) (sim.Payload, error)

// Codec is a kind-dispatched binary codec for protocol payloads. It
// implements sim.Codec so the live runtime can round-trip every message
// through the wire format.
type Codec struct {
	decoders map[string]DecodeFunc
}

var _ sim.Codec = (*Codec)(nil)

// NewCodec returns an empty codec; protocol packages contribute their
// message types via their RegisterCodec functions.
func NewCodec() *Codec {
	return &Codec{decoders: make(map[string]DecodeFunc)}
}

// Register adds a decoder for the given payload kind. Registering the
// same kind twice is a programming error and is reported on Decode.
func (c *Codec) Register(kind string, dec DecodeFunc) {
	c.decoders[kind] = dec
}

// Encode implements sim.Codec. The returned buffer is sized exactly
// (2 + len(kind) + Size()), so encoding costs one allocation.
func (c *Codec) Encode(p sim.Payload) ([]byte, error) {
	return c.AppendEncode(make([]byte, 0, 2+len(p.Kind())+p.Size()), p)
}

// writerPool recycles Writer headers: MarshalTo is an interface call,
// so a stack Writer would escape and cost an allocation per message.
var writerPool = sync.Pool{New: func() any { return new(Writer) }}

// readerPool recycles Reader headers for the decode hot path: DecodeFunc
// is an interface call, so a stack Reader escapes and would cost an
// allocation per decoded payload (the "proto.NewReader escapes" hot spot
// profiling surfaced). Decoded payloads never retain the Reader — only,
// at most, subslices of the input buffer — so recycling the header is
// safe.
var readerPool = sync.Pool{New: func() any { return new(Reader) }}

// getReader returns a pooled Reader positioned at the start of b.
func getReader(b []byte) *Reader {
	r := readerPool.Get().(*Reader)
	r.Reset(b)
	return r
}

// putReader recycles r. The buffer reference is dropped so a pooled
// header never pins a frame.
func putReader(r *Reader) {
	r.Reset(nil)
	readerPool.Put(r)
}

// GetReader returns a pooled Reader positioned at the start of b — the
// exported recycling hook for decode helpers outside this package
// (mwsvss value decoders, svss G-set decoding). Pair every GetReader
// with a PutReader once decoding is done; the Reader must not be
// retained past that point.
func GetReader(b []byte) *Reader { return getReader(b) }

// PutReader recycles a Reader obtained from GetReader.
func PutReader(r *Reader) { putReader(r) }

// AppendEncode appends the encoding of p to dst and returns the
// extended buffer — the allocation-free variant of Encode for callers
// that own a reusable buffer (the transport send path, the live
// runtime's round-trip). dst may be nil.
func (c *Codec) AppendEncode(dst []byte, p sim.Payload) ([]byte, error) {
	m, ok := p.(Marshaler)
	if !ok {
		return nil, fmt.Errorf("proto: payload %q does not implement Marshaler", p.Kind())
	}
	w := writerPool.Get().(*Writer)
	w.buf = dst
	kind := p.Kind()
	w.U16(uint16(len(kind)))
	w.buf = append(w.buf, kind...)
	m.MarshalTo(w)
	out := w.buf
	w.buf = nil
	writerPool.Put(w)
	return out, nil
}

// Decode implements sim.Codec. Decoded payloads may alias b (see
// Reader.VarBytes); callers hand over the buffer and must not mutate it
// afterwards — the node runtime receives every frame buffer exclusively
// from its transport, which guarantees exactly that.
func (c *Codec) Decode(b []byte) (sim.Payload, error) {
	r := getReader(b)
	defer putReader(r)
	kl := int(r.U16())
	kb := r.take(kl)
	if r.Err() != nil {
		return nil, fmt.Errorf("proto: decode kind: %w", r.Err())
	}
	dec, ok := c.decoders[string(kb)]
	if !ok {
		return nil, fmt.Errorf("proto: no decoder for kind %q", string(kb))
	}
	p, err := dec(r)
	if err != nil {
		return nil, fmt.Errorf("proto: decode %q: %w", string(kb), err)
	}
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("proto: decode %q: %w", string(kb), err)
	}
	return p, nil
}
