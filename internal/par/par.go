// Package par provides a minimal deterministic worker pool: fan a fixed
// slice of independent jobs across a bounded number of goroutines and
// collect results by input index, so the output is byte-identical
// however many workers run. It is the concurrency substrate shared by
// svssba.RunMany and internal/runner; nothing in it knows about the
// simulator, which keeps it importable from every layer.
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Call invokes fn, converting a panic into an error so one failing job
// cannot take down a pool. Callers wrap the returned error with their
// own context when panicked is true.
func Call[R any](fn func() (R, error)) (out R, err error, panicked bool) {
	defer func() {
		if rec := recover(); rec != nil {
			var zero R
			out, err, panicked = zero, fmt.Errorf("panic: %v", rec), true
		}
	}()
	out, err = fn()
	return out, err, false
}

// Workers normalizes a worker-count request: values < 1 mean
// GOMAXPROCS, and the count never exceeds the number of jobs.
func Workers(requested, jobs int) int {
	w := requested
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map runs fn(i, items[i]) for every item on up to `workers` goroutines
// (< 1 means GOMAXPROCS) and returns the results indexed like the
// input. Result order therefore never depends on scheduling. fn must be
// safe for concurrent invocation; panics are not recovered here —
// wrap fn if jobs may panic (see runner and RunMany).
func Map[T, R any](workers int, items []T, fn func(i int, item T) R) []R {
	out := make([]R, len(items))
	if len(items) == 0 {
		return out
	}
	workers = Workers(workers, len(items))
	if workers == 1 {
		for i, item := range items {
			out[i] = fn(i, item)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				out[i] = fn(i, items[i])
			}
		}()
	}
	wg.Wait()
	return out
}
