package par_test

import (
	"runtime"
	"sync/atomic"
	"testing"

	"svssba/internal/par"
)

func TestMapOrdering(t *testing.T) {
	items := make([]int, 500)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 8, 0} {
		out := par.Map(workers, items, func(i, item int) int { return item * 3 })
		for i, v := range out {
			if v != i*3 {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*3)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out := par.Map(4, nil, func(i, item int) int { return item })
	if len(out) != 0 {
		t.Fatalf("len = %d, want 0", len(out))
	}
}

func TestMapRunsEveryJobOnce(t *testing.T) {
	var calls atomic.Int64
	items := make([]struct{}, 100)
	par.Map(7, items, func(i int, _ struct{}) int {
		calls.Add(1)
		return i
	})
	if got := calls.Load(); got != 100 {
		t.Fatalf("fn ran %d times, want 100", got)
	}
}

func TestWorkers(t *testing.T) {
	cases := []struct {
		requested, jobs, want int
	}{
		{requested: 4, jobs: 10, want: 4},
		{requested: 4, jobs: 2, want: 2},
		{requested: 0, jobs: 100, want: runtime.GOMAXPROCS(0)},
		{requested: -1, jobs: 0, want: 1},
		{requested: 8, jobs: 0, want: 1},
	}
	for _, c := range cases {
		if got := par.Workers(c.requested, c.jobs); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.jobs, got, c.want)
		}
	}
}
