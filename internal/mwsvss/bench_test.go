package mwsvss

import (
	"math/rand"
	"testing"

	"svssba/internal/dmm"
	"svssba/internal/field"
	"svssba/internal/proto"
	"svssba/internal/sim"
)

type benchCtx struct {
	n, t int
	rnd  *rand.Rand
}

func (c benchCtx) Send(sim.ProcID, sim.Payload) {}
func (c benchCtx) N() int                       { return c.n }
func (c benchCtx) T() int                       { return c.t }
func (c benchCtx) Now() int64                   { return 0 }
func (c benchCtx) Rand() *rand.Rand             { return c.rnd }

type benchHost struct {
	self sim.ProcID
	d    *dmm.DMM
}

func (h *benchHost) Self() sim.ProcID                         { return h.self }
func (h *benchHost) Broadcast(sim.Context, proto.Tag, []byte) {}
func (h *benchHost) DMM() *dmm.DMM                            { return h.d }

// BenchmarkMWSVSSDeliver measures the per-delivery cost of hot MW-SVSS
// message paths on warm instances:
//
//   - echo: a share-phase Echo from a new sender lands in the dense
//     per-process value slice (step 3 feed), then advance re-evaluates
//     the (unmet) step guards.
//   - ack: an RB-accepted StepAck broadcast sets one bit in the ack
//     set and re-evaluates.
//
// Instance ids cycle through a fixed window with a full engine reset
// per wrap, so the steady state exercises interned-id and slab reuse.
func BenchmarkMWSVSSDeliver(b *testing.B) {
	const n, t, w = 7, 2, 512
	host := &benchHost{self: 1, d: dmm.New(1, nil)}
	var ctx sim.Context = benchCtx{n: n, t: t, rnd: rand.New(rand.NewSource(1))}
	ids := make([]proto.MWID, w)
	for i := range ids {
		ids[i] = proto.MWID{
			Session: proto.SessionID{Dealer: 2, Kind: proto.KindMW, Round: uint64(i)},
			Key:     proto.MWKey{Dealer: 2, Moderator: 3},
		}
	}

	b.Run("echo", func(b *testing.B) {
		e := New(host, Callbacks{})
		msgs := make([]sim.Message, 2*w)
		for i := range msgs {
			msgs[i] = sim.Message{
				From:    sim.ProcID(2 + i%2),
				To:      1,
				Payload: Echo{MW: ids[i/2], Vals: []field.Element{field.New(uint64(i))}},
			}
		}
		for i := range msgs {
			e.OnMessage(ctx, msgs[i])
		}
		e.Reset()
		host.d.Reset()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := i % len(msgs)
			if j == 0 && i > 0 {
				e.Reset()
				host.d.Reset()
			}
			e.OnMessage(ctx, msgs[j])
		}
	})

	b.Run("ack", func(b *testing.B) {
		e := New(host, Callbacks{})
		tags := make([]proto.Tag, w)
		for i := range tags {
			tags[i] = tag(ids[i], StepAck, 0)
		}
		for i := 0; i < 2*w; i++ {
			e.OnBroadcast(ctx, sim.ProcID(2+i%2), tags[i/2], nil)
		}
		e.Reset()
		host.d.Reset()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := i % (2 * w)
			if j == 0 && i > 0 {
				e.Reset()
				host.d.Reset()
			}
			e.OnBroadcast(ctx, sim.ProcID(2+j%2), tags[j/2], nil)
		}
	})
}
