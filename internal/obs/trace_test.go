package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestTracerRetainsAndOrders(t *testing.T) {
	tr := NewTracer(3, 32)
	for i := uint64(0); i < 10; i++ {
		tr.Record(KindABARound, 0, 0, i, 0, 0)
	}
	ev := tr.Events()
	if len(ev) != 10 {
		t.Fatalf("len = %d, want 10", len(ev))
	}
	for i, e := range ev {
		if e.A != uint64(i) || e.Node != 3 || e.Kind != KindABARound {
			t.Fatalf("event %d = %+v", i, e)
		}
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d", tr.Total())
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(0, 16)
	for i := uint64(0); i < 40; i++ {
		tr.Record(KindCoin, 0, 0, i, i&1, 0)
	}
	ev := tr.Events()
	if len(ev) != 16 {
		t.Fatalf("len = %d, want capacity 16", len(ev))
	}
	// Must hold the last 16 events (24..39) oldest-first.
	for i, e := range ev {
		if want := uint64(24 + i); e.A != want {
			t.Fatalf("event %d: a = %d, want %d", i, e.A, want)
		}
	}
	if tr.Total() != 40 {
		t.Fatalf("total = %d, want 40", tr.Total())
	}
}

func TestTracerJSONLWellFormed(t *testing.T) {
	tr := NewTracer(1, 16)
	tr.Record(KindRBAccept, 257, 2, 3, 1, 100)
	tr.Record(KindDecide, 257, 0, 1, 0, 0)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	kinds := []string{"rb-accept", "decide"}
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("line %d not JSON: %v (%s)", lines, err, sc.Text())
		}
		if got := obj["kind"]; got != kinds[lines] {
			t.Fatalf("line %d kind = %v, want %s", lines, got, kinds[lines])
		}
		if obj["scope"].(float64) != 257 {
			t.Fatalf("line %d scope = %v", lines, obj["scope"])
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("lines = %d, want 2", lines)
	}
}

func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	tr.Record(KindCoin, 0, 0, 0, 0, 0) // must not panic
	if tr.Events() != nil || tr.Total() != 0 {
		t.Fatal("nil tracer must report empty")
	}
}

// The tracer's contract is single-writer + concurrent readers; this
// pins it under -race.
func TestTracerConcurrentReaderWriter(t *testing.T) {
	tr := NewTracer(0, 64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = tr.Events()
				_ = tr.Total()
			}
		}
	}()
	for i := uint64(0); i < 20000; i++ {
		tr.Record(KindABARound, 0, 0, i, 0, 0)
	}
	close(stop)
	wg.Wait()
	if tr.Total() != 20000 {
		t.Fatalf("total = %d", tr.Total())
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindRBAccept; k <= KindScopeRetire; k++ {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(0).String() != "unknown" || Kind(200).String() != "unknown" {
		t.Fatal("out-of-range kinds must stringify as unknown")
	}
}

func BenchmarkTracerRecord(b *testing.B) {
	tr := NewTracer(0, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(KindRBAccept, 1, 2, 3, 4, 5)
	}
}
