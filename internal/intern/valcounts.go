package intern

import "bytes"

// valInline is the number of distinct values counted inline. Honest
// broadcast instances only ever see one value; a Byzantine dealer can
// produce a handful; anything past the threshold spills to a map.
const valInline = 3

// ValCounts tallies occurrences of small byte-string values — the
// dense replacement for the map[string]int echo-vote counters in the
// broadcast engines. Distinct values are expected to be very few
// (usually exactly one), so the first valInline live inline and are
// found by linear scan with no hashing and no per-increment
// allocation; only an equivocating sender who manufactures more
// distinct values than that pays for a spill map.
//
// Stored values are copied on first sight (once per distinct value per
// instance), so callers may pass views into transient buffers.
type ValCounts struct {
	n     int
	vals  [valInline][]byte
	cnts  [valInline]int
	spill map[string]int
}

// Incr counts one occurrence of v and returns v's new total.
func (c *ValCounts) Incr(v []byte) int {
	for i := 0; i < c.n; i++ {
		if bytes.Equal(c.vals[i], v) {
			c.cnts[i]++
			return c.cnts[i]
		}
	}
	if c.n < valInline {
		c.vals[c.n] = append([]byte(nil), v...)
		c.cnts[c.n] = 1
		c.n++
		return 1
	}
	if c.spill == nil {
		c.spill = make(map[string]int)
	}
	c.spill[string(v)]++
	return c.spill[string(v)]
}

// Reset empties the counter and drops retained value copies.
func (c *ValCounts) Reset() {
	for i := 0; i < c.n; i++ {
		c.vals[i] = nil
		c.cnts[i] = 0
	}
	c.n = 0
	c.spill = nil
}
