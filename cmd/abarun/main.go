// Command abarun runs one asynchronous Byzantine agreement and prints a
// detailed report. It exposes every knob of the public API: cluster
// size, protocol, inputs, faults, scheduler and seed.
//
// Examples:
//
//	abarun -n 4 -seed 7
//	abarun -n 7 -inputs 0,1,0,1,0,1,0 -faults 6:vote-equivocate,7:rval-lie
//	abarun -n 7 -protocol localcoin -scheduler delay-exp
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"svssba"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "abarun:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n         = flag.Int("n", 4, "number of processes")
		t         = flag.Int("t", 0, "resilience bound (default (n-1)/3)")
		seed      = flag.Int64("seed", 1, "random seed (schedule, polynomials, coins)")
		protocol  = flag.String("protocol", "adh", "adh | benor | localcoin | epscoin")
		inputsArg = flag.String("inputs", "", "comma-separated binary inputs (default alternating)")
		faultsArg = flag.String("faults", "", "comma-separated proc:kind pairs, e.g. 4:vote-flip")
		scheduler = flag.String("scheduler", "random", "random | fifo | delay-uniform | delay-exp")
		eps       = flag.Float64("eps", 0, "coin failure probability (epscoin)")
		maxSteps  = flag.Int("maxsteps", 0, "delivery budget (0 = default)")
		verbose   = flag.Bool("v", false, "print per-kind message counts")
	)
	flag.Parse()

	cfg := svssba.Config{
		N:         *n,
		T:         *t,
		Seed:      *seed,
		Protocol:  svssba.Protocol(*protocol),
		Scheduler: svssba.SchedulerKind(*scheduler),
		Eps:       *eps,
		MaxSteps:  *maxSteps,
	}
	if *inputsArg != "" {
		for _, part := range strings.Split(*inputsArg, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad input %q: %v", part, err)
			}
			cfg.Inputs = append(cfg.Inputs, v)
		}
	}
	if *faultsArg != "" {
		for _, part := range strings.Split(*faultsArg, ",") {
			proc, kind, ok := strings.Cut(strings.TrimSpace(part), ":")
			if !ok {
				return fmt.Errorf("bad fault %q (want proc:kind)", part)
			}
			p, err := strconv.Atoi(proc)
			if err != nil {
				return fmt.Errorf("bad fault process %q: %v", proc, err)
			}
			cfg.Faults = append(cfg.Faults, svssba.Fault{Proc: p, Kind: svssba.FaultKind(kind)})
		}
	}

	res, err := svssba.Run(cfg)
	if err != nil {
		return err
	}

	effT := cfg.T
	if effT == 0 {
		effT = (cfg.N - 1) / 3
	}
	fmt.Printf("protocol      %s (n=%d, t=%d, seed=%d, scheduler=%s)\n",
		cfg.Protocol, cfg.N, effT, cfg.Seed, cfg.Scheduler)
	if len(cfg.Inputs) == 0 {
		fmt.Printf("inputs        alternating 0/1 (default)\n")
	} else {
		fmt.Printf("inputs        %v\n", cfg.Inputs)
	}
	if len(cfg.Faults) > 0 {
		fmt.Printf("faults        %v\n", cfg.Faults)
	}
	fmt.Printf("all decided   %v\n", res.AllDecided)
	fmt.Printf("agreed        %v\n", res.Agreed)
	if res.AllDecided {
		fmt.Printf("decision      %d\n", res.Value)
	}
	fmt.Printf("max round     %d\n", res.MaxRound)
	fmt.Printf("deliveries    %d\n", res.Steps)
	fmt.Printf("virtual time  %d\n", res.VirtualTime)
	fmt.Printf("messages      %d (%d bytes)\n", res.Messages, res.Bytes)
	if res.TimedOut {
		fmt.Printf("TIMED OUT     delivery budget exhausted\n")
	}
	if len(res.Shuns) > 0 {
		fmt.Printf("shun events   %d\n", len(res.Shuns))
		for _, s := range res.Shuns {
			fmt.Printf("  process %d shuns process %d\n", s.By, s.Detected)
		}
	}
	if *verbose {
		kinds := make([]string, 0, len(res.MsgsByKind))
		for k := range res.MsgsByKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		fmt.Println("messages by kind:")
		for _, k := range kinds {
			fmt.Printf("  %-16s %d\n", k, res.MsgsByKind[k])
		}
	}
	return nil
}
