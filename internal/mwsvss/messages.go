// Package mwsvss implements Moderated Weak Shunning Verifiable Secret
// Sharing (MW-SVSS) — the share protocol S' and reconstruct protocol R'
// of paper §3.2, driven by the DMM protocol of §3.3.
//
// One Engine per process runs any number of MW-SVSS instances, each
// identified by a proto.MWID (parent VSS session plus dealer, moderator
// and slot). The dealer shares a secret s; the moderator holds its own
// input s' and certifies during the share phase that the dealt value is
// s'; reconstruction outputs either the bound value r or ⊥ (weak
// binding). When neither validity nor weak binding can be enforced, some
// nonfaulty process permanently shuns a newly detected faulty process via
// the DMM layer.
package mwsvss

import (
	"sort"

	"svssba/internal/dmm"
	"svssba/internal/field"
	"svssba/internal/proto"
	"svssba/internal/sim"
)

// Broadcast steps within proto.Tag for MW-SVSS.
const (
	// StepAck is the RB "ack" of share step 2.
	StepAck uint8 = 1
	// StepL is the RB broadcast of the set L_j (share step 4).
	StepL uint8 = 2
	// StepM is the moderator's RB broadcast of the set M (share step 6).
	StepM uint8 = 3
	// StepOK is the dealer's RB broadcast (share step 7).
	StepOK uint8 = 4
	// StepRVal is the reconstruct-phase value broadcast (R' step 1); the
	// tag's A field carries the polynomial index l.
	StepRVal uint8 = 5
	// StepRValVec is the batched reveal of R' step 1 for multi-slot
	// sessions: one broadcast per slot carrying the revealer's share of
	// EVERY monitored polynomial f̂^slot_1 … f̂^slot_n (the tag's A field
	// is the slot). Only width-k>1 instances emit it — classic width-1
	// sessions keep the per-l StepRVal, so the v1 wire image is
	// untouched. Receivers discard entries whose polynomial index never
	// qualifies, exactly as they would discard the equivalent per-l
	// broadcasts.
	StepRValVec uint8 = 6
	// StepRValSlab is the multi-slot form of StepRValVec: one broadcast
	// carrying the share rows of every slot that started reconstructing
	// in one pass (an explicit ascending slot list followed by the rows,
	// slot-major). A coin flip opens one slot per attach target, so the
	// whole flip reveals in a single broadcast per (instance, revealer)
	// instead of one per slot. Like StepRValVec it is only ever emitted
	// by width-k>1 instances, so v1 wire parity holds.
	StepRValSlab uint8 = 7
)

// Payload kinds.
const (
	KindDealVals = "mw/dealvals"
	KindDealPoly = "mw/dealpoly"
	KindDealMod  = "mw/dealmod"
	KindEcho     = "mw/echo"
	KindModValue = "mw/modvalue"
)

// DealVals is share step 1: the dealer sends process j the values
// f_1(j), ..., f_n(j).
type DealVals struct {
	MW   proto.MWID
	Vals []field.Element
}

var _ proto.Marshaler = DealVals{}
var _ dmm.Sessioned = DealVals{}

// Kind implements sim.Payload.
func (DealVals) Kind() string { return KindDealVals }

// Size implements sim.Payload.
func (m DealVals) Size() int { return mwidSize + proto.ElemsSize(len(m.Vals)) }

// SessionRef implements dmm.Sessioned.
func (m DealVals) SessionRef() proto.MWID { return m.MW }

// MarshalTo implements proto.Marshaler.
func (m DealVals) MarshalTo(w *proto.Writer) {
	marshalMWID(w, m.MW)
	w.Elems(m.Vals)
}

// DealPoly is share step 1: the dealer sends process l the values
// f_l(1), ..., f_l(t+1), from which l reconstructs its monitored
// polynomial f_l.
type DealPoly struct {
	MW     proto.MWID
	Shares []field.Element
}

var _ proto.Marshaler = DealPoly{}
var _ dmm.Sessioned = DealPoly{}

// Kind implements sim.Payload.
func (DealPoly) Kind() string { return KindDealPoly }

// Size implements sim.Payload.
func (m DealPoly) Size() int { return mwidSize + proto.ElemsSize(len(m.Shares)) }

// SessionRef implements dmm.Sessioned.
func (m DealPoly) SessionRef() proto.MWID { return m.MW }

// MarshalTo implements proto.Marshaler.
func (m DealPoly) MarshalTo(w *proto.Writer) {
	marshalMWID(w, m.MW)
	w.Elems(m.Shares)
}

// DealMod is share step 1: the dealer sends the moderator the values
// f(1), ..., f(t+1), from which the moderator reconstructs f.
type DealMod struct {
	MW     proto.MWID
	Shares []field.Element
}

var _ proto.Marshaler = DealMod{}
var _ dmm.Sessioned = DealMod{}

// Kind implements sim.Payload.
func (DealMod) Kind() string { return KindDealMod }

// Size implements sim.Payload.
func (m DealMod) Size() int { return mwidSize + proto.ElemsSize(len(m.Shares)) }

// SessionRef implements dmm.Sessioned.
func (m DealMod) SessionRef() proto.MWID { return m.MW }

// MarshalTo implements proto.Marshaler.
func (m DealMod) MarshalTo(w *proto.Writer) {
	marshalMWID(w, m.MW)
	w.Elems(m.Shares)
}

// Echo is share step 2: process j sends process l the per-slot vector
// f̂^j_l = f^s_l(j) it received from the dealer (l's polynomial of each
// batch slot, evaluated at the sender). The vector is encoded as the
// raw concatenation of its elements — no count prefix — so a width-1
// echo is byte-identical to the classic single-value message; the
// receiver recovers the width from the payload length.
type Echo struct {
	MW   proto.MWID
	Vals []field.Element
}

var _ proto.Marshaler = Echo{}
var _ dmm.Sessioned = Echo{}

// Kind implements sim.Payload.
func (Echo) Kind() string { return KindEcho }

// Size implements sim.Payload.
func (m Echo) Size() int { return mwidSize + 8*len(m.Vals) }

// SessionRef implements dmm.Sessioned.
func (m Echo) SessionRef() proto.MWID { return m.MW }

// MarshalTo implements proto.Marshaler.
func (m Echo) MarshalTo(w *proto.Writer) {
	marshalMWID(w, m.MW)
	for _, v := range m.Vals {
		w.Elem(v)
	}
}

// ModValue is share step 4: process j sends the moderator the vector
// f̂^s_j(0) per batch slot — its share of the information needed to
// compute each slot's secret. Encoded like Echo (raw concatenation,
// width from length, width 1 byte-identical to the classic message).
type ModValue struct {
	MW   proto.MWID
	Vals []field.Element
}

var _ proto.Marshaler = ModValue{}
var _ dmm.Sessioned = ModValue{}

// Kind implements sim.Payload.
func (ModValue) Kind() string { return KindModValue }

// Size implements sim.Payload.
func (m ModValue) Size() int { return mwidSize + 8*len(m.Vals) }

// SessionRef implements dmm.Sessioned.
func (m ModValue) SessionRef() proto.MWID { return m.MW }

// MarshalTo implements proto.Marshaler.
func (m ModValue) MarshalTo(w *proto.Writer) {
	marshalMWID(w, m.MW)
	for _, v := range m.Vals {
		w.Elem(v)
	}
}

// mwidSize is the encoded size of a proto.MWID: session(15) + key(5).
const mwidSize = 15 + 5

func marshalMWID(w *proto.Writer, id proto.MWID) {
	w.Proc(id.Session.Dealer)
	w.U8(uint8(id.Session.Kind))
	w.U64(id.Session.Round)
	w.U32(id.Session.Index)
	w.Proc(id.Key.Dealer)
	w.Proc(id.Key.Moderator)
	w.U8(id.Key.Slot)
}

func readMWID(r *proto.Reader) proto.MWID {
	var id proto.MWID
	id.Session.Dealer = r.Proc()
	id.Session.Kind = proto.SessionKind(r.U8())
	id.Session.Round = r.U64()
	id.Session.Index = r.U32()
	id.Key.Dealer = r.Proc()
	id.Key.Moderator = r.Proc()
	id.Key.Slot = r.U8()
	return id
}

// RegisterCodec registers MW-SVSS message decoding.
func RegisterCodec(c *proto.Codec) {
	c.Register(KindDealVals, func(r *proto.Reader) (sim.Payload, error) {
		return DealVals{MW: readMWID(r), Vals: r.Elems()}, r.Err()
	})
	c.Register(KindDealPoly, func(r *proto.Reader) (sim.Payload, error) {
		return DealPoly{MW: readMWID(r), Shares: r.Elems()}, r.Err()
	})
	c.Register(KindDealMod, func(r *proto.Reader) (sim.Payload, error) {
		return DealMod{MW: readMWID(r), Shares: r.Elems()}, r.Err()
	})
	c.Register(KindEcho, func(r *proto.Reader) (sim.Payload, error) {
		return Echo{MW: readMWID(r), Vals: readElemTail(r)}, r.Err()
	})
	c.Register(KindModValue, func(r *proto.Reader) (sim.Payload, error) {
		return ModValue{MW: readMWID(r), Vals: readElemTail(r)}, r.Err()
	})
}

// readElemTail decodes the unprefixed element vector that fills the
// rest of the payload (the Echo/ModValue batch encoding). A tail that
// is not a whole number of elements leaves its remainder unread, which
// the codec's Close rejects as trailing bytes.
func readElemTail(r *proto.Reader) []field.Element {
	es := make([]field.Element, r.Remaining()/8)
	for i := range es {
		es[i] = r.Elem()
	}
	return es
}

// EncodeProcs canonically encodes a process set for RB value equality
// (sorted ascending).
func EncodeProcs(ps []sim.ProcID) []byte {
	sorted := make([]sim.ProcID, len(ps))
	copy(sorted, ps)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var w proto.Writer
	w.Procs(sorted)
	return w.Bytes()
}

// DecodeProcs decodes a process set, rejecting ids outside 1..n and
// duplicates (proto.DecodeProcSet is the shared rule).
func DecodeProcs(b []byte, n int) ([]sim.ProcID, bool) {
	return proto.DecodeProcSet(b, n)
}

// EncodeElem encodes a single field element broadcast value.
func EncodeElem(e field.Element) []byte {
	var w proto.Writer
	w.Elem(e)
	return w.Bytes()
}

// DecodeElem decodes a single field element broadcast value.
func DecodeElem(b []byte) (field.Element, bool) {
	r := proto.GetReader(b)
	defer proto.PutReader(r)
	e := r.Elem()
	if r.Close() != nil {
		return field.Zero, false
	}
	return e, true
}

// EncodeElems encodes a field element vector broadcast value (raw
// concatenation, like the element tails of Echo and ModValue).
func EncodeElems(es []field.Element) []byte {
	var w proto.Writer
	for _, e := range es {
		w.Elem(e)
	}
	return w.Bytes()
}

// DecodeElems decodes a field element vector broadcast value; the
// length is implied by the payload size.
func DecodeElems(b []byte) ([]field.Element, bool) {
	if len(b)%8 != 0 {
		return nil, false
	}
	r := proto.GetReader(b)
	defer proto.PutReader(r)
	es := readElemTail(r)
	if r.Close() != nil {
		return nil, false
	}
	return es, true
}

// EncodeSlab encodes a StepRValSlab value: the slot list (ascending)
// followed by the slots' share rows concatenated slot-major (len(slots)
// × n elements).
func EncodeSlab(slots []int, rows []field.Element) []byte {
	var w proto.Writer
	w.U32(uint32(len(slots)))
	for _, s := range slots {
		w.U32(uint32(s))
	}
	for _, e := range rows {
		w.Elem(e)
	}
	return w.Bytes()
}

// DecodeSlab decodes a StepRValSlab value for an n-process system. It
// enforces a strictly ascending slot list below MaxBatchSlots and a row
// span of exactly len(slots)·n elements, so a Byzantine slab can neither
// inflate per-slot state nor smuggle rows for slots it does not name.
func DecodeSlab(b []byte, n int) ([]int, []field.Element, bool) {
	r := proto.GetReader(b)
	defer proto.PutReader(r)
	m := int(r.U32())
	if r.Err() != nil || m < 1 || m > MaxBatchSlots {
		return nil, nil, false
	}
	slots := make([]int, m)
	for i := range slots {
		s := int(r.U32())
		if r.Err() != nil || s >= MaxBatchSlots || (i > 0 && s <= slots[i-1]) {
			return nil, nil, false
		}
		slots[i] = s
	}
	if r.Remaining() != m*n*8 {
		return nil, nil, false
	}
	rows := readElemTail(r)
	if r.Close() != nil {
		return nil, nil, false
	}
	return slots, rows, true
}
