GO ?= go

.PHONY: build test check vet bench sweep sweep-full scenario scenario-full

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# check is what CI runs: fast, deterministic, full build surface.
check: vet build
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

sweep:
	$(GO) run ./cmd/expsweep -parallel 0

sweep-full:
	$(GO) run ./cmd/expsweep -full -parallel 0

scenario:
	$(GO) run ./cmd/scenario -quick -workers 0

scenario-full:
	$(GO) run ./cmd/scenario -full -workers 0
