package sim

import (
	"testing"
	"time"
)

// pongProc bounces tokens forever: Init launches one token to every
// peer, Deliver returns each token to its sender. Traffic volume stays
// constant (one message in flight per directed pair) but never stops,
// so a crash always lands mid-traffic and the tokens confined to the
// surviving processes keep circulating afterwards.
type pongProc struct {
	id ProcID
	n  int
}

func (p *pongProc) ID() ProcID { return p.id }

func (p *pongProc) Init(ctx Context) {
	for q := 1; q <= p.n; q++ {
		if ProcID(q) != p.id {
			ctx.Send(ProcID(q), parityPayload{kind: "pong/token", size: 8, hops: 1})
		}
	}
}

func (p *pongProc) Deliver(ctx Context, m Message) {
	ctx.Send(m.From, parityPayload{kind: "pong/token", size: 8, hops: 1})
}

// TestLiveNetCrashFault fail-stops one process mid-run and asserts the
// Network crash semantics hold on the live runtime: traffic to and from
// the crashed process is dropped (and counted), while the surviving
// processes keep exchanging messages.
func TestLiveNetCrashFault(t *testing.T) {
	const n, tf = 4, 1

	l := NewLiveNet(n, tf, 1, WithMaxDelay(50*time.Microsecond))
	for p := 1; p <= n; p++ {
		if err := l.Register(&pongProc{id: ProcID(p), n: n}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Start(); err != nil {
		t.Fatal(err)
	}
	defer l.Stop()

	waitFor := func(cond func(*Stats) bool, what string) *Stats {
		deadline := time.Now().Add(10 * time.Second)
		for {
			st := l.Stats()
			if cond(st) {
				return st
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s: %+v", what, st)
			}
			time.Sleep(time.Millisecond)
		}
	}

	waitFor(func(st *Stats) bool { return st.Delivered > 100 }, "pre-crash traffic")

	l.Crash(2)
	st := waitFor(func(st *Stats) bool { return st.Dropped > 0 }, "dropped traffic after crash")
	if st.Sent == 0 || st.Delivered == 0 {
		t.Fatalf("no traffic recorded: %+v", st)
	}

	// The survivors must keep making progress after the crash.
	delivered := st.Delivered
	waitFor(func(st *Stats) bool { return st.Delivered > delivered+50 }, "post-crash progress")

	l.Stop()
	if errs := l.Errs(); len(errs) > 0 {
		t.Fatalf("runtime errors: %v", errs)
	}
}

// TestLiveNetCrashBeforeStartSilencesProcess crashes a process before
// Start: none of its sends may be delivered.
func TestLiveNetCrashBeforeStartSilencesProcess(t *testing.T) {
	const n, tf = 3, 0
	l := NewLiveNet(n, tf, 2, WithMaxDelay(10*time.Microsecond))
	for p := 1; p <= n; p++ {
		if err := l.Register(&parityProc{id: ProcID(p), n: n}); err != nil {
			t.Fatal(err)
		}
	}
	l.Crash(3)
	if err := l.Start(); err != nil {
		t.Fatal(err)
	}
	defer l.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := l.Stats()
		if st.Dropped > 0 && st.Delivered > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no dropped+delivered traffic: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}
