package intern

import (
	"testing"

	"svssba/internal/sim"
)

func TestTableInternLookupRelease(t *testing.T) {
	var tb Table[string]
	if got := tb.Lookup("a"); got != NoID {
		t.Fatalf("Lookup on empty table = %d, want NoID", got)
	}
	a, fresh := tb.Intern("a")
	if !fresh || a != 0 {
		t.Fatalf("Intern(a) = (%d,%v), want (0,true)", a, fresh)
	}
	b, fresh := tb.Intern("b")
	if !fresh || b != 1 {
		t.Fatalf("Intern(b) = (%d,%v), want (1,true)", b, fresh)
	}
	if id, fresh := tb.Intern("a"); fresh || id != a {
		t.Fatalf("re-Intern(a) = (%d,%v), want (%d,false)", id, fresh, a)
	}
	if tb.Len() != 2 || tb.HighWater() != 2 {
		t.Fatalf("Len=%d HighWater=%d, want 2,2", tb.Len(), tb.HighWater())
	}
	if tb.Key(a) != "a" || tb.Key(b) != "b" {
		t.Fatalf("Key round trip failed")
	}

	tb.Release("a")
	if tb.Len() != 1 {
		t.Fatalf("Len after release = %d, want 1", tb.Len())
	}
	if got := tb.Lookup("a"); got != NoID {
		t.Fatalf("Lookup(released) = %d, want NoID", got)
	}
	// The freed id is recycled before the id space grows.
	c, fresh := tb.Intern("c")
	if !fresh || c != a {
		t.Fatalf("Intern(c) = (%d,%v), want recycled (%d,true)", c, fresh, a)
	}
	if tb.HighWater() != 2 {
		t.Fatalf("HighWater after recycle = %d, want 2", tb.HighWater())
	}
}

func TestTableZeroKeyNotPhantom(t *testing.T) {
	// The one-slot cache must not invent an id for the zero key.
	var tb Table[int]
	if _, fresh := tb.Intern(7); !fresh {
		t.Fatal("Intern(7) not fresh")
	}
	if got := tb.Lookup(0); got != NoID {
		t.Fatalf("Lookup(zero key) = %d, want NoID", got)
	}
}

func TestTableReset(t *testing.T) {
	var tb Table[string]
	tb.Intern("a")
	tb.Intern("b")
	tb.Release("a")
	tb.Reset()
	if tb.Len() != 0 || tb.HighWater() != 0 {
		t.Fatalf("after Reset: Len=%d HighWater=%d, want 0,0", tb.Len(), tb.HighWater())
	}
	if got := tb.Lookup("b"); got != NoID {
		t.Fatalf("Lookup(b) after Reset = %d, want NoID", got)
	}
	if id, fresh := tb.Intern("z"); !fresh || id != 0 {
		t.Fatalf("Intern after Reset = (%d,%v), want (0,true)", id, fresh)
	}
}

func TestBitsInlineAndSpill(t *testing.T) {
	var b Bits
	for _, i := range []int{0, 1, 63, 64, 65, 200} {
		if b.Has(i) {
			t.Fatalf("Has(%d) on empty set", i)
		}
		if !b.Add(i) {
			t.Fatalf("Add(%d) not fresh", i)
		}
		if b.Add(i) {
			t.Fatalf("re-Add(%d) fresh", i)
		}
		if !b.Has(i) {
			t.Fatalf("Has(%d) false after Add", i)
		}
	}
	if b.Has(-1) || b.Has(1000) {
		t.Fatal("phantom members")
	}
	if got := b.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	want := []int{0, 1, 63, 64, 65, 200}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order = %v, want %v", got, want)
		}
	}
	b.Clear()
	if b.Count() != 0 || b.Has(200) {
		t.Fatal("Clear left members behind")
	}
}

func TestProcSet(t *testing.T) {
	var s ProcSet
	for _, p := range []sim.ProcID{3, 1, 7, 70} {
		if !s.Add(p) {
			t.Fatalf("Add(%d) not fresh", p)
		}
	}
	if s.Add(3) {
		t.Fatal("duplicate Add reported fresh")
	}
	if got := s.Slice(); len(got) != 4 || got[0] != 1 || got[1] != 3 || got[2] != 7 || got[3] != 70 {
		t.Fatalf("Slice = %v, want [1 3 7 70]", got)
	}
	if !s.ContainsAll([]sim.ProcID{1, 7}) || s.ContainsAll([]sim.ProcID{1, 2}) {
		t.Fatal("ContainsAll wrong")
	}
	if s.Count() != 4 {
		t.Fatalf("Count = %d, want 4", s.Count())
	}
}

func TestValCounts(t *testing.T) {
	var c ValCounts
	buf := []byte("v1")
	if got := c.Incr(buf); got != 1 {
		t.Fatalf("first Incr = %d", got)
	}
	// The stored value must be a copy, not a view of the caller's buffer.
	buf[0] = 'x'
	if got := c.Incr([]byte("v1")); got != 2 {
		t.Fatalf("Incr after caller mutation = %d, want 2", got)
	}
	if got := c.Incr([]byte("xx")); got != 1 {
		t.Fatalf("Incr(xx) = %d, want 1 (distinct value)", got)
	}
	// Push past the inline threshold into the spill map.
	vals := []string{"a", "b", "c", "d", "e"}
	for _, v := range vals {
		c.Incr([]byte(v))
	}
	for _, v := range vals {
		if got := c.Incr([]byte(v)); got != 2 {
			t.Fatalf("Incr(%s) = %d, want 2", v, got)
		}
	}
	if got := c.Incr([]byte("v1")); got != 3 {
		t.Fatalf("Incr(v1) = %d, want 3", got)
	}
	c.Reset()
	if got := c.Incr([]byte("v1")); got != 1 {
		t.Fatalf("Incr after Reset = %d, want 1", got)
	}
}
