// Package scenario is the adversarial scenario-matrix harness: it
// composes schedulers × adversary behaviours × (n,t) scales × seeds
// into a flat set of runner.Trials, executes the full SVSS-BA stack
// under every combination, and checks the paper's protocol invariants
// on each run:
//
//   - agreement: no two honest processes decide different values;
//   - validity: unanimous honest input v forces decision v;
//   - termination: every honest process decides within the cell's step
//     budget (the almost-sure-termination claim, made finite).
//
// Every cell is a pure function of its Config (PR 1's determinism
// contract), so a report is byte-identical for any worker count and any
// invariant violation can be reproduced from its cell id alone — the
// basis of the cmd/scenario -replay workflow.
package scenario

import (
	"fmt"
	"strings"

	"svssba"
	"svssba/internal/runner"
	"svssba/internal/trace"
)

// Scheduler is one point on the scheduler axis.
type Scheduler struct {
	// Name labels the axis value in cell ids (no slashes).
	Name string
	// Kind selects the svssba scheduler; the remaining fields carry its
	// parameters (zero values take the svssba defaults).
	Kind                svssba.SchedulerKind
	DelayLo, DelayHi    int64
	DelayMean, DelayCap int64
	Cut                 []int
	HealAt              int64
}

// Behavior is one point on the adversary axis.
type Behavior struct {
	// Name labels the axis value in cell ids (no slashes).
	Name string
	// Faults builds the fault assignment for an (n,t) system; nil means
	// fault-free.
	Faults func(n, t int) []svssba.Fault
	// Inputs builds the proposal vector; nil means the alternating 0/1
	// split (for which any agreed binary decision is valid).
	Inputs func(n int) []int
}

// Scale is one point on the system-size axis.
type Scale struct {
	// Name labels the axis value in cell ids (no slashes).
	Name string
	N, T int
}

// Matrix is a declarative scenario matrix. Cells enumerates its cross
// product in a fixed order (scheduler, behaviour, scale, seed), so cell
// ids and report layout are stable for a fixed matrix.
type Matrix struct {
	Schedulers []Scheduler
	Behaviors  []Behavior
	Scales     []Scale
	Seeds      []int64
	// MaxSteps is the per-cell delivery budget (defaults to 30M); a run
	// that exhausts it counts as a termination violation.
	MaxSteps int
	// Batching runs every cell with the coalescing-outbox frame model
	// (svssba.Config.Batching). Decisions, schedules and logical payload
	// stats are byte-identical to the unbatched matrix; only the Frames
	// counters change — the batched-vs-unbatched parity test pins this.
	Batching bool
	// Wire runs every cell under the given wire variant ("" or "v1" for
	// the baseline shape, "v2" for burst coalescing). Unlike Batching,
	// v2 is a declared protocol variant: schedules and delivery counts
	// differ from v1, so it carries its own parity digest.
	Wire string
}

// Cell is one fully-instantiated matrix entry.
type Cell struct {
	// ID is "scheduler/behavior/scale/seed" — the replay handle.
	ID string `json:"id"`
	// Scheduler, Behavior, Scale and Seed name the axis values.
	Scheduler string `json:"scheduler"`
	Behavior  string `json:"behavior"`
	Scale     string `json:"scale"`
	Seed      int64  `json:"seed"`
	// Config is the complete run configuration; re-running it reproduces
	// the cell exactly.
	Config svssba.Config `json:"config"`
}

// Group returns the cell's aggregation bucket (the id minus the seed).
func (c Cell) Group() string {
	return c.Scheduler + "/" + c.Behavior + "/" + c.Scale
}

// CellID formats the id for an axis combination.
func CellID(scheduler, behavior, scale string, seed int64) string {
	return fmt.Sprintf("%s/%s/%s/%d", scheduler, behavior, scale, seed)
}

// Cells enumerates the matrix cross product in deterministic order.
func (m *Matrix) Cells() []Cell {
	maxSteps := m.MaxSteps
	if maxSteps == 0 {
		maxSteps = 30_000_000
	}
	var cells []Cell
	for _, sch := range m.Schedulers {
		for _, b := range m.Behaviors {
			for _, sc := range m.Scales {
				for _, seed := range m.Seeds {
					cfg := svssba.Config{
						N: sc.N, T: sc.T, Seed: seed,
						Scheduler: sch.Kind,
						DelayLo:   sch.DelayLo, DelayHi: sch.DelayHi,
						DelayMean: sch.DelayMean, DelayCap: sch.DelayCap,
						PartitionCut: sch.Cut, PartitionHealAt: sch.HealAt,
						MaxSteps: maxSteps,
						Batching: m.Batching,
						Wire:     m.Wire,
					}
					if b.Faults != nil {
						cfg.Faults = b.Faults(sc.N, sc.T)
					}
					if b.Inputs != nil {
						cfg.Inputs = b.Inputs(sc.N)
					} else {
						cfg.Inputs = splitInputs(sc.N)
					}
					cells = append(cells, Cell{
						ID:        CellID(sch.Name, b.Name, sc.Name, seed),
						Scheduler: sch.Name,
						Behavior:  b.Name,
						Scale:     sc.Name,
						Seed:      seed,
						Config:    cfg,
					})
				}
			}
		}
	}
	return cells
}

// Cell resolves a cell id within the matrix.
func (m *Matrix) Cell(id string) (Cell, bool) {
	for _, c := range m.Cells() {
		if c.ID == id {
			return c, true
		}
	}
	return Cell{}, false
}

// splitInputs is the default alternating 0/1 proposal vector.
func splitInputs(n int) []int {
	in := make([]int, n)
	for i := range in {
		in[i] = i % 2
	}
	return in
}

// Violation is one invariant failure in one cell.
type Violation struct {
	Cell      string `json:"cell"`
	Invariant string `json:"invariant"` // "agreement", "validity" or "termination"
	Detail    string `json:"detail"`
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("%s: %s violated: %s", v.Cell, v.Invariant, v.Detail)
}

// CheckInvariants evaluates the protocol invariants for one finished
// run. cfg must be the cell's config (it determines the honest set and
// the proposal vector).
func CheckInvariants(cellID string, cfg svssba.Config, res *svssba.Result) []Violation {
	faulty := make(map[int]bool, len(cfg.Faults))
	for _, f := range cfg.Faults {
		faulty[f.Proc] = true
	}
	var honest []int
	for p := 1; p <= cfg.N; p++ {
		if !faulty[p] {
			honest = append(honest, p)
		}
	}

	var out []Violation

	// Agreement: no two honest decisions may differ, even partial ones.
	first, haveFirst := 0, false
	for _, p := range honest {
		v, ok := res.Decisions[p]
		if !ok {
			continue
		}
		if !haveFirst {
			first, haveFirst = v, true
			continue
		}
		if v != first {
			out = append(out, Violation{
				Cell: cellID, Invariant: "agreement",
				Detail: fmt.Sprintf("honest decisions differ: %v", honestDecisions(res, honest)),
			})
			break
		}
	}

	// Validity: unanimous honest input v forces every honest decision
	// to v. (With split inputs any agreed binary value is valid.)
	if unanimous, v := unanimousInput(cfg.Inputs, honest); unanimous {
		for _, p := range honest {
			if got, ok := res.Decisions[p]; ok && got != v {
				out = append(out, Violation{
					Cell: cellID, Invariant: "validity",
					Detail: fmt.Sprintf("unanimous honest input %d but process %d decided %d", v, p, got),
				})
				break
			}
		}
	}

	// Termination: every honest process must decide within the budget.
	if !res.AllDecided {
		reason := "run went quiescent"
		if res.TimedOut {
			reason = fmt.Sprintf("step budget %d exhausted", cfg.MaxSteps)
		}
		out = append(out, Violation{
			Cell: cellID, Invariant: "termination",
			Detail: fmt.Sprintf("%s with undecided honest processes: %v", reason, undecided(res, honest)),
		})
	}
	return out
}

func honestDecisions(res *svssba.Result, honest []int) map[int]int {
	d := make(map[int]int, len(honest))
	for _, p := range honest {
		if v, ok := res.Decisions[p]; ok {
			d[p] = v
		}
	}
	return d
}

func unanimousInput(inputs []int, honest []int) (bool, int) {
	if len(inputs) == 0 || len(honest) == 0 {
		return false, 0
	}
	v := inputs[honest[0]-1]
	for _, p := range honest {
		if inputs[p-1] != v {
			return false, 0
		}
	}
	return true, v
}

func undecided(res *svssba.Result, honest []int) []int {
	var out []int
	for _, p := range honest {
		if _, ok := res.Decisions[p]; !ok {
			out = append(out, p)
		}
	}
	return out
}

// CellResult is one executed cell with its invariant verdicts.
type CellResult struct {
	Cell       Cell           `json:"cell"`
	Result     *svssba.Result `json:"result,omitempty"`
	Err        string         `json:"err,omitempty"`
	Violations []Violation    `json:"violations,omitempty"`
}

// Report is the executed matrix: cell results in matrix order plus the
// flattened violation list. It marshals deterministically, so reports
// are byte-identical across worker counts.
type Report struct {
	Cells      []CellResult `json:"cells"`
	Violations []Violation  `json:"violations"`
}

// Cell returns the named cell result.
func (r *Report) Cell(id string) (CellResult, bool) {
	for _, c := range r.Cells {
		if c.Cell.ID == id {
			return c, true
		}
	}
	return CellResult{}, false
}

// Table renders the per-group aggregate (one row per scheduler ×
// behaviour × scale combination, seeds pooled).
func (r *Report) Table() *trace.Table {
	tb := trace.NewTable(
		"scenario matrix — invariants checked on every cell",
		"scheduler", "behavior", "scale", "cells", "decided", "agreed", "violations",
		"errs", "mean_rounds", "mean_steps", "del/coin", "del/mw", "del/rb", "shuns")
	type agg struct {
		cells, ran, decided, agreed, violations, errs, shuns int
		rounds, steps                                        float64
		coinRounds, mwCreated, rbCreated                     float64
	}
	var order []string
	groups := make(map[string]*agg)
	rows := make(map[string]CellResult)
	for _, cr := range r.Cells {
		key := cr.Cell.Group()
		g, ok := groups[key]
		if !ok {
			g = &agg{}
			groups[key] = g
			order = append(order, key)
			rows[key] = cr
		}
		g.cells++
		g.violations += len(cr.Violations)
		if cr.Err != "" {
			g.errs++
		}
		if cr.Result != nil {
			g.ran++
			if cr.Result.AllDecided {
				g.decided++
			}
			if cr.Result.AllDecided && cr.Result.Agreed {
				g.agreed++
			}
			g.rounds += float64(cr.Result.MaxRound)
			g.steps += float64(cr.Result.Steps)
			g.coinRounds += float64(cr.Result.CoinRounds)
			g.mwCreated += float64(cr.Result.MWCreated)
			g.rbCreated += float64(cr.Result.RBCreated)
			g.shuns += len(cr.Result.Shuns)
		}
	}
	for _, key := range order {
		g := groups[key]
		c := rows[key].Cell
		// Means are over the cells that actually produced a result, so an
		// errored cell cannot dilute them.
		meanRounds, meanSteps := any("-"), any("-")
		// Deliveries per protocol unit, pooled over the group's cells —
		// the message-complexity view the wire-v2 pass optimizes.
		perCoin, perMW, perRB := any("-"), any("-"), any("-")
		if g.ran > 0 {
			meanRounds = g.rounds / float64(g.ran)
			meanSteps = g.steps / float64(g.ran)
			if g.coinRounds > 0 {
				perCoin = g.steps / g.coinRounds
			}
			if g.mwCreated > 0 {
				perMW = g.steps / g.mwCreated
			}
			if g.rbCreated > 0 {
				perRB = g.steps / g.rbCreated
			}
		}
		tb.Add(c.Scheduler, c.Behavior, c.Scale, g.cells, g.decided, g.agreed,
			g.violations, g.errs, meanRounds, meanSteps, perCoin, perMW, perRB, g.shuns)
	}
	return tb
}

// cellResult executes the invariant check for one finished run. Replay
// and Run share it, so a replayed cell is byte-identical to its report
// entry.
func cellResult(cell Cell, res *svssba.Result, err error) CellResult {
	cr := CellResult{Cell: cell, Result: res}
	if err != nil {
		cr.Err = err.Error()
		return cr
	}
	cr.Violations = CheckInvariants(cell.ID, cell.Config, res)
	return cr
}

// Run executes every matrix cell on `workers` goroutines (< 1 =
// GOMAXPROCS) and returns the deterministic report.
func Run(m *Matrix, workers int) *Report {
	cells := m.Cells()
	trials := make([]runner.Trial, len(cells))
	for i, c := range cells {
		cfg := c.Config
		trials[i] = runner.Trial{
			Group: c.Group(),
			Name:  c.ID,
			Seed:  c.Seed,
			Do:    func() (any, error) { return svssba.Run(cfg) },
		}
	}
	results := runner.New(workers).Run(trials)

	rep := &Report{Cells: make([]CellResult, len(cells))}
	for i, tr := range results {
		res, _ := tr.Value.(*svssba.Result)
		cr := cellResult(cells[i], res, tr.Err)
		rep.Cells[i] = cr
		rep.Violations = append(rep.Violations, cr.Violations...)
	}
	return rep
}

// Replay re-runs one cell by id. The returned result is byte-identical
// to the cell's entry in a full Run of the same matrix (runs are pure
// functions of their seeded config).
func Replay(m *Matrix, cellID string) (CellResult, error) {
	cell, ok := m.Cell(cellID)
	if !ok {
		return CellResult{}, fmt.Errorf("scenario: unknown cell %q (try -list)", cellID)
	}
	res, err := svssba.Run(cell.Config)
	return cellResult(cell, res, err), nil
}

// Quick returns the CI-scale default matrix: 4 schedulers × 7
// behaviours × 2 scales × 1 seed = 56 cells, every cell checked against
// all three invariants.
func Quick() *Matrix {
	return &Matrix{
		Schedulers: DefaultSchedulers(),
		Behaviors:  DefaultBehaviors(),
		Scales: []Scale{
			{Name: "n4", N: 4, T: 1},
			{Name: "n5", N: 5, T: 1},
		},
		// One seed chosen for short expected runs at both scales; -seeds
		// on cmd/scenario widens the axis.
		Seeds: []int64{1002},
	}
}

// Full returns the deep matrix: 5 schedulers × 10 behaviours × 4 scales
// × 3 seeds = 600 cells, including the n=7/t=2 axis that the send-path
// batching and echo-pruning pass opened up and the n=10/t=3 axis that
// the interned-tag dense-state port (PR 5) made affordable (an n7 cell
// runs tens of millions of deliveries, an n10 cell ~125M per coin
// round — the big axes are for deliberate deep runs, not CI; slice
// them with cmd/scenario -scale). The step budget is sized for the
// n10 cells, whose honest runs need well past the n7 budget (per-
// round traffic grows steeply: n² sessions × 2n(n−1) MW sub-
// instances, each echoing through n²-message reliable broadcasts).
func Full() *Matrix {
	scheds := append(DefaultSchedulers(), Scheduler{
		Name: "delay-uniform", Kind: svssba.SchedDelayUniform, DelayLo: 1, DelayHi: 100,
	})
	behaviors := append(DefaultBehaviors(),
		SingleFault("rval-lie", svssba.FaultRValLie),
		SingleFault("targeted-delay", svssba.FaultTargetedDelay),
		SingleFault("cross-equivocate", svssba.FaultCrossEquivocate),
	)
	return &Matrix{
		Schedulers: scheds,
		Behaviors:  behaviors,
		Scales: []Scale{
			{Name: "n4", N: 4, T: 1},
			{Name: "n5", N: 5, T: 1},
			{Name: "n7", N: 7, T: 2},
			{Name: "n10", N: 10, T: 3},
			// The n13/t4 axis rides the wire-v2 message-complexity pass
			// (PR 6): under v1 shapes one n13 coin round alone would blow
			// the step budget. Run it with -wire v2.
			{Name: "n13", N: 13, T: 4},
		},
		Seeds:    []int64{1000, 1001, 1002},
		MaxSteps: 500_000_000,
	}
}

// DefaultSchedulers is the quick scheduler axis: benign orders, random
// delays, and a healing partition.
func DefaultSchedulers() []Scheduler {
	return []Scheduler{
		{Name: "random", Kind: svssba.SchedRandom},
		{Name: "fifo", Kind: svssba.SchedFIFO},
		{Name: "delay-exp", Kind: svssba.SchedDelayExp, DelayMean: 20},
		{Name: "partition", Kind: svssba.SchedPartition, HealAt: 2000},
	}
}

// DefaultBehaviors is the quick adversary axis.
func DefaultBehaviors() []Behavior {
	return []Behavior{
		NoFault(),
		CrashBudget(),
		SingleFault("silent", svssba.FaultSilent),
		SingleFault("vote-equivocate", svssba.FaultVoteEquivocate),
		SingleFault("mute-burst", svssba.FaultMuteBurst),
		SingleFault("coin-bias", svssba.FaultCoinBias),
		Unanimous1VoteFlip(),
	}
}

// NoFault is the fault-free behaviour (split inputs).
func NoFault() Behavior { return Behavior{Name: "none"} }

// SingleFault assigns the given fault kind to the highest-numbered
// process.
func SingleFault(name string, kind svssba.FaultKind) Behavior {
	return Behavior{
		Name: name,
		Faults: func(n, t int) []svssba.Fault {
			return []svssba.Fault{{Proc: n, Kind: kind}}
		},
	}
}

// CrashBudget crashes the full fault budget: the last t processes.
func CrashBudget() Behavior {
	return Behavior{
		Name: "crash-t",
		Faults: func(n, t int) []svssba.Fault {
			fs := make([]svssba.Fault, 0, t)
			for p := n - t + 1; p <= n; p++ {
				fs = append(fs, svssba.Fault{Proc: p, Kind: svssba.FaultCrash})
			}
			return fs
		},
	}
}

// Unanimous1VoteFlip gives every honest process input 1 and makes the
// last process flip its votes — the sharpest validity probe: the
// invariant is violated by any decision other than 1.
func Unanimous1VoteFlip() Behavior {
	return Behavior{
		Name:   "unanimous1-vote-flip",
		Faults: func(n, t int) []svssba.Fault { return []svssba.Fault{{Proc: n, Kind: svssba.FaultVoteFlip}} },
		Inputs: func(n int) []int {
			in := make([]int, n)
			for i := range in {
				in[i] = 1
			}
			return in
		},
	}
}

// ValidateNames rejects axis names that would corrupt cell ids.
func (m *Matrix) ValidateNames() error {
	check := func(kind, name string) error {
		if name == "" || strings.Contains(name, "/") {
			return fmt.Errorf("scenario: invalid %s name %q", kind, name)
		}
		return nil
	}
	for _, s := range m.Schedulers {
		if err := check("scheduler", s.Name); err != nil {
			return err
		}
	}
	for _, b := range m.Behaviors {
		if err := check("behavior", b.Name); err != nil {
			return err
		}
	}
	for _, s := range m.Scales {
		if err := check("scale", s.Name); err != nil {
			return err
		}
	}
	return nil
}
