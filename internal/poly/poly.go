// Package poly implements univariate and bivariate polynomials over GF(p)
// as used by the MW-SVSS and SVSS protocols.
//
// MW-SVSS (paper §3.2) deals n+1 random degree-t univariate polynomials
// f, f_1..f_n with f(0) = s and f_l(0) = f(l). SVSS (paper §4) deals a
// random degree-t bivariate polynomial f(x,y) with f(0,0) = s and hands
// process j its row g_j(y) = f(j,y) and column h_j(x) = f(x,j).
// Reconstruction interpolates degree-t polynomials from t+1 points and
// verifies any surplus points for consistency.
package poly

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"svssba/internal/field"
)

// ErrNotEnoughPoints is returned when fewer than degree+1 points are given.
var ErrNotEnoughPoints = errors.New("poly: not enough points to interpolate")

// ErrDuplicateX is returned when two points share an x coordinate.
var ErrDuplicateX = errors.New("poly: duplicate x coordinate")

// Poly is a univariate polynomial; Coef[i] is the coefficient of x^i.
// The zero value is the zero polynomial.
type Poly struct {
	Coef []field.Element
}

// Point is an evaluation point (X, Y) with Y = f(X).
type Point struct {
	X, Y field.Element
}

// NewRandom returns a uniformly random polynomial of the given degree whose
// constant term is fixed to secret. Degree must be >= 0.
func NewRandom(r *rand.Rand, degree int, secret field.Element) Poly {
	coef := make([]field.Element, degree+1)
	coef[0] = secret
	for i := 1; i <= degree; i++ {
		coef[i] = field.Rand(r)
	}
	return Poly{Coef: coef}
}

// FromCoefficients builds a polynomial from low-to-high coefficients.
// The slice is copied.
func FromCoefficients(coef []field.Element) Poly {
	c := make([]field.Element, len(coef))
	copy(c, coef)
	return Poly{Coef: c}
}

// Degree returns the nominal degree (len(Coef)-1); -1 for the empty poly.
func (p Poly) Degree() int { return len(p.Coef) - 1 }

// Eval evaluates p at x using Horner's rule.
func (p Poly) Eval(x field.Element) field.Element {
	var acc field.Element
	for i := len(p.Coef) - 1; i >= 0; i-- {
		acc = acc.Mul(x).Add(p.Coef[i])
	}
	return acc
}

// EvalUint evaluates p at the field element for integer x.
func (p Poly) EvalUint(x uint64) field.Element { return p.Eval(field.New(x)) }

// Secret returns p(0), the shared secret by the paper's convention.
func (p Poly) Secret() field.Element {
	if len(p.Coef) == 0 {
		return field.Zero
	}
	return p.Coef[0]
}

// EvalRange returns p evaluated at x = 1..k (the share vector the dealer
// sends so receivers can reconstruct p; paper §3.2 step 1).
func (p Poly) EvalRange(k int) []field.Element {
	out := make([]field.Element, k)
	for i := 1; i <= k; i++ {
		out[i-1] = p.EvalUint(uint64(i))
	}
	return out
}

// Equal reports whether p and q evaluate identically (compares canonical
// coefficients up to trailing zeros).
func (p Poly) Equal(q Poly) bool {
	n := len(p.Coef)
	if len(q.Coef) > n {
		n = len(q.Coef)
	}
	for i := 0; i < n; i++ {
		var a, b field.Element
		if i < len(p.Coef) {
			a = p.Coef[i]
		}
		if i < len(q.Coef) {
			b = q.Coef[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer.
func (p Poly) String() string {
	if len(p.Coef) == 0 {
		return "0"
	}
	var b strings.Builder
	for i, c := range p.Coef {
		if i > 0 {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "%v*x^%d", c, i)
	}
	return b.String()
}

// Interpolate returns the unique polynomial of degree < len(points) through
// the given points (Lagrange interpolation). Errors on duplicate x values
// or an empty slice.
func Interpolate(points []Point) (Poly, error) {
	n := len(points)
	if n == 0 {
		return Poly{}, ErrNotEnoughPoints
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if points[i].X == points[j].X {
				return Poly{}, ErrDuplicateX
			}
		}
	}
	coef := make([]field.Element, n)
	// Accumulate y_i * L_i(x) where L_i is the i-th Lagrange basis poly.
	basis := make([]field.Element, 0, n)
	for i := 0; i < n; i++ {
		// numerator poly: prod_{j != i} (x - x_j), built incrementally.
		basis = basis[:0]
		basis = append(basis, field.One)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			// multiply basis by (x - x_j)
			basis = append(basis, field.Zero)
			for k := len(basis) - 1; k >= 1; k-- {
				basis[k] = basis[k-1].Sub(basis[k].Mul(points[j].X))
			}
			basis[0] = basis[0].Mul(points[j].X).Neg()
		}
		// denominator: prod_{j != i} (x_i - x_j)
		den := field.One
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			den = den.Mul(points[i].X.Sub(points[j].X))
		}
		scale := points[i].Y.Div(den)
		for k := 0; k < len(basis); k++ {
			coef[k] = coef[k].Add(basis[k].Mul(scale))
		}
	}
	return Poly{Coef: coef}, nil
}

// InterpolateDegree interpolates a polynomial of degree at most degree from
// the given points and verifies that every surplus point lies on it. It
// returns ok=false if the points are not consistent with a single
// degree-bounded polynomial. This is the acceptance rule of reconstruct
// steps R' (paper §3.2 step 4) and R (paper §4 step 3).
func InterpolateDegree(points []Point, degree int) (Poly, bool, error) {
	if len(points) < degree+1 {
		return Poly{}, false, ErrNotEnoughPoints
	}
	p, err := Interpolate(points[:degree+1])
	if err != nil {
		return Poly{}, false, err
	}
	for _, pt := range points[degree+1:] {
		if p.Eval(pt.X) != pt.Y {
			return Poly{}, false, nil
		}
	}
	return p, true, nil
}

// Bivariate is a polynomial f(x,y) of degree at most T in each variable.
// Coef[i][j] is the coefficient of x^i y^j.
type Bivariate struct {
	T    int
	Coef [][]field.Element
}

// NewRandomBivariate returns a random bivariate polynomial of degree t in
// each variable with f(0,0) = secret (paper §4 share step 1, footnote 2).
func NewRandomBivariate(r *rand.Rand, t int, secret field.Element) Bivariate {
	coef := make([][]field.Element, t+1)
	for i := range coef {
		coef[i] = make([]field.Element, t+1)
		for j := range coef[i] {
			coef[i][j] = field.Rand(r)
		}
	}
	coef[0][0] = secret
	return Bivariate{T: t, Coef: coef}
}

// Eval evaluates f at (x, y).
func (b Bivariate) Eval(x, y field.Element) field.Element {
	var acc field.Element
	for i := b.T; i >= 0; i-- {
		// inner poly in y for this power of x
		var row field.Element
		for j := b.T; j >= 0; j-- {
			row = row.Mul(y).Add(b.Coef[i][j])
		}
		acc = acc.Mul(x).Add(row)
	}
	return acc
}

// EvalUint evaluates f at integer coordinates.
func (b Bivariate) EvalUint(x, y uint64) field.Element {
	return b.Eval(field.New(x), field.New(y))
}

// Secret returns f(0,0).
func (b Bivariate) Secret() field.Element {
	if len(b.Coef) == 0 || len(b.Coef[0]) == 0 {
		return field.Zero
	}
	return b.Coef[0][0]
}

// Row returns g_j(y) = f(j, y) as a univariate polynomial in y.
func (b Bivariate) Row(j uint64) Poly {
	x := field.New(j)
	coef := make([]field.Element, b.T+1)
	for jy := 0; jy <= b.T; jy++ {
		// coefficient of y^jy: sum_i Coef[i][jy] * x^i
		var c field.Element
		for i := b.T; i >= 0; i-- {
			c = c.Mul(x).Add(b.Coef[i][jy])
		}
		coef[jy] = c
	}
	return Poly{Coef: coef}
}

// Col returns h_j(x) = f(x, j) as a univariate polynomial in x.
func (b Bivariate) Col(j uint64) Poly {
	y := field.New(j)
	coef := make([]field.Element, b.T+1)
	for ix := 0; ix <= b.T; ix++ {
		var c field.Element
		for jy := b.T; jy >= 0; jy-- {
			c = c.Mul(y).Add(b.Coef[ix][jy])
		}
		coef[ix] = c
	}
	return Poly{Coef: coef}
}

// InterpolateFromShares reconstructs a degree-t polynomial from shares at
// x = 1..len(shares) (the inverse of EvalRange).
func InterpolateFromShares(shares []field.Element, degree int) (Poly, error) {
	pts := make([]Point, len(shares))
	for i, y := range shares {
		pts[i] = Point{X: field.New(uint64(i + 1)), Y: y}
	}
	p, ok, err := InterpolateDegree(pts, degree)
	if err != nil {
		return Poly{}, err
	}
	if !ok {
		return Poly{}, fmt.Errorf("poly: shares inconsistent with degree %d", degree)
	}
	return p, nil
}

// Equal reports whether two bivariate polynomials are identical.
func (b Bivariate) Equal(o Bivariate) bool {
	if b.T != o.T {
		return false
	}
	for i := range b.Coef {
		for j := range b.Coef[i] {
			if b.Coef[i][j] != o.Coef[i][j] {
				return false
			}
		}
	}
	return true
}

// BivariateFromRows builds the unique bivariate polynomial f of degree t
// in each variable such that f(xs[i], y) = rows[i](y), from exactly t+1
// distinct rows of degree at most t. This is the reconstruction step of
// the SVSS output rule (paper §4, R step 3).
func BivariateFromRows(xs []field.Element, rows []Poly, t int) (Bivariate, error) {
	if len(xs) != t+1 || len(rows) != t+1 {
		return Bivariate{}, fmt.Errorf("poly: need exactly %d rows, have %d", t+1, len(xs))
	}
	coef := make([][]field.Element, t+1)
	for i := range coef {
		coef[i] = make([]field.Element, t+1)
	}
	pts := make([]Point, t+1)
	for j := 0; j <= t; j++ {
		// Interpolate the coefficient of y^j across rows.
		for i := 0; i <= t; i++ {
			var cij field.Element
			if j < len(rows[i].Coef) {
				cij = rows[i].Coef[j]
			}
			pts[i] = Point{X: xs[i], Y: cij}
		}
		cj, err := Interpolate(pts)
		if err != nil {
			return Bivariate{}, err
		}
		for i := 0; i <= t; i++ {
			var v field.Element
			if i < len(cj.Coef) {
				v = cj.Coef[i]
			}
			coef[i][j] = v
		}
	}
	return Bivariate{T: t, Coef: coef}, nil
}
