package runner_test

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"svssba"
	"svssba/internal/exp"
	"svssba/internal/runner"
)

// svssTrials builds a small real workload: one SVSS share+reconstruct
// session per seed, classified by output correctness.
func svssTrials(seeds int) []runner.Trial {
	classify := func(res *svssba.SVSSResult, err error) runner.Classification {
		if err != nil {
			return runner.Count("error")
		}
		c := runner.Classification{Values: map[string]float64{
			"msgs": float64(res.Messages),
		}}
		if len(res.Outputs) >= 4 {
			c.Counts = append(c.Counts, "complete")
		}
		return c
	}
	var trials []runner.Trial
	for seed := 0; seed < seeds; seed++ {
		trials = append(trials, runner.SVSS(fmt.Sprintf("seed-mod-%d", seed%2),
			svssba.SVSSConfig{N: 4, Seed: int64(seed), Secret: uint64(100 + seed)}, classify))
	}
	return trials
}

// summaryFingerprint renders a summary into a canonical string for
// byte-level comparison.
func summaryFingerprint(s *runner.Summary) string {
	var b strings.Builder
	for _, g := range s.Groups() {
		fmt.Fprintf(&b, "%s trials=%d errs=%d complete=%d msgs=%v\n",
			g.Group, g.Trials, g.Errs, g.Count("complete"), g.Series("msgs").Sum())
	}
	return b.String()
}

// TestParallelMatchesSequential is the determinism contract: the same
// trial set aggregated with 1 worker and with 8 workers must produce
// identical summaries, down to group order and series contents.
func TestParallelMatchesSequential(t *testing.T) {
	trials := svssTrials(6)
	seq := summaryFingerprint(runner.Execute(1, trials))
	par := summaryFingerprint(runner.Execute(8, trials))
	if seq != par {
		t.Fatalf("parallel summary differs from sequential\nseq:\n%s\npar:\n%s", seq, par)
	}
	if !strings.Contains(seq, "complete=3") {
		t.Errorf("unexpected aggregate:\n%s", seq)
	}
}

// TestExperimentTablesParallelInvariant runs real experiment tables at
// both worker counts and requires byte-identical renderings — the
// property cmd/expsweep -parallel relies on.
func TestExperimentTablesParallelInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment tables are slow")
	}
	experiments := []struct {
		name string
		run  func(exp.Scale) interface{ String() string }
	}{
		{name: "E5", run: func(s exp.Scale) interface{ String() string } { return exp.E5(s) }},
		{name: "E9", run: func(s exp.Scale) interface{ String() string } { return exp.E9(s) }},
	}
	for _, e := range experiments {
		seq := e.run(exp.Scale{Quick: true, Workers: 1}).String()
		par := e.run(exp.Scale{Quick: true, Workers: 8}).String()
		if seq != par {
			t.Errorf("%s: parallel table differs from sequential\nseq:\n%s\npar:\n%s", e.name, seq, par)
		}
	}
}

// TestPanicIsolation: a panicking trial must surface as an error on its
// own result without disturbing its neighbours.
func TestPanicIsolation(t *testing.T) {
	trials := []runner.Trial{
		runner.Custom("g", 1, func() (any, error) { return "ok-1", nil }),
		runner.Custom("g", 2, func() (any, error) { panic("boom") }),
		runner.Custom("g", 3, func() (any, error) { return nil, errors.New("plain error") }),
		runner.Custom("g", 4, func() (any, error) { return "ok-4", nil }),
	}
	for _, workers := range []int{1, 4} {
		results := runner.New(workers).Run(trials)
		if len(results) != len(trials) {
			t.Fatalf("workers=%d: %d results for %d trials", workers, len(results), len(trials))
		}
		if results[0].Value != "ok-1" || results[3].Value != "ok-4" {
			t.Errorf("workers=%d: healthy trials disturbed: %v, %v", workers, results[0].Value, results[3].Value)
		}
		if results[1].Err == nil || !results[1].Panicked {
			t.Errorf("workers=%d: panic not captured: %+v", workers, results[1])
		}
		if !strings.Contains(fmt.Sprint(results[1].Err), "boom") {
			t.Errorf("workers=%d: panic message lost: %v", workers, results[1].Err)
		}
		if results[2].Err == nil || results[2].Panicked {
			t.Errorf("workers=%d: plain error misreported: %+v", workers, results[2])
		}
		sum := runner.Summarize(results)
		if g := sum.Group("g"); g.Trials != 4 || g.Errs != 2 {
			t.Errorf("workers=%d: summary trials=%d errs=%d, want 4/2", workers, g.Trials, g.Errs)
		}
	}
}

// TestResultOrdering: results come back indexed like the input
// regardless of worker count.
func TestResultOrdering(t *testing.T) {
	var trials []runner.Trial
	for i := 0; i < 50; i++ {
		i := i
		trials = append(trials, runner.Custom("order", int64(i), func() (any, error) { return i, nil }))
	}
	results := runner.New(8).Run(trials)
	for i, r := range results {
		if r.Index != i || r.Value != i {
			t.Fatalf("result %d out of order: index=%d value=%v", i, r.Index, r.Value)
		}
	}
}

// TestSummaryGroupOrder: groups surface in first-appearance order, and
// unknown groups return usable empty summaries.
func TestSummaryGroupOrder(t *testing.T) {
	trials := []runner.Trial{
		runner.Custom("b", 1, func() (any, error) { return nil, nil }),
		runner.Custom("a", 2, func() (any, error) { return nil, nil }),
		runner.Custom("b", 3, func() (any, error) { return nil, nil }),
	}
	sum := runner.Summarize(runner.New(1).Run(trials))
	var order []string
	for _, g := range sum.Groups() {
		order = append(order, g.Group)
	}
	if !reflect.DeepEqual(order, []string{"b", "a"}) {
		t.Errorf("group order = %v, want [b a]", order)
	}
	if g := sum.Group("missing"); g.Trials != 0 || g.Count("x") != 0 || g.Series("y").N() != 0 {
		t.Errorf("missing group not empty: %+v", g)
	}
}
