package mwsvss

import (
	"fmt"

	"svssba/internal/intern"
	"svssba/internal/proto"
)

// SetDebugRecon toggles reconstruction debugging (tests only).
func SetDebugRecon(v bool) { debugRecon = v }

func bitsSlice(b intern.Bits) []int {
	var out []int
	b.ForEach(func(i int) { out = append(out, i) })
	return out
}

// DumpState prints an instance's internal progress (tests only).
func (e *Engine) DumpState(id proto.MWID) string {
	in := e.lookup(id)
	if in == nil {
		return "no instance"
	}
	ks := map[int]int{}
	for idx, pts := range in.kSets {
		if len(pts) > 0 {
			ks[idx] = len(pts)
		}
	}
	return fmt.Sprintf(
		"valsSet=%v polySet=%v k=%d lDone=%v L=%v mKnown=%v M=%v ok=%v shareDone=%v reconStarted=%v reconDone=%v kSets=%v pendingRV=%d fBarSet=%v",
		in.valsSet, in.myPolySet, in.k, in.lDone, in.lSnapshot, in.mKnown, in.mSet,
		in.okKnown, in.shareDone, bitsSlice(in.reconStarted), bitsSlice(in.reconDone),
		ks, len(in.rvalsPending), bitsSlice(in.fBarSet))
}
