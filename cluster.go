package svssba

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"svssba/internal/core"
	"svssba/internal/node"
	"svssba/internal/obs"
	"svssba/internal/sim"
	"svssba/internal/transport"
)

// TransportKind selects the network backend of a cluster run.
type TransportKind string

// Transport backends.
const (
	// TransportChan runs the cluster over an in-process channel mesh —
	// no sockets, fastest, and the backend race-detector tests use.
	TransportChan TransportKind = "chan"
	// TransportTCP runs the cluster over real localhost TCP sockets with
	// length-prefixed frames and reconnecting dialers.
	TransportTCP TransportKind = "tcp"
)

// ClusterConfig describes an agreement run on the node runtime: one
// node.Node per process, every message through the binary wire codec,
// and transport-level fault injection (crashes, delays, drops).
type ClusterConfig struct {
	// N is the cluster size; T the resilience bound (defaults to
	// floor((N-1)/3)).
	N, T int
	// Seed derives each node's local randomness and the fault-injection
	// randomness. Cluster runs are concurrent, so unlike Run the seed
	// does not make the run deterministic.
	Seed int64
	// Inputs are the binary proposals (defaults to alternating 0/1).
	Inputs []int
	// Transport selects the backend (default TransportChan).
	Transport TransportKind
	// BasePort, for TransportTCP, binds node i to 127.0.0.1:BasePort+i-1.
	// Zero picks ephemeral ports.
	BasePort int
	// Crash lists node ids to fail-stop. With CrashAfter zero they never
	// start; otherwise they start and crash after that duration.
	Crash []int
	// CrashAfter delays the Crash faults into the run.
	CrashAfter time.Duration
	// Delay, when positive, injects a uniform random per-frame delay in
	// [0, Delay) on every node's outbound links (benign asynchrony).
	Delay time.Duration
	// Drop is the outbound frame drop probability applied to the nodes
	// in Droppers. A dropping node behaves like a partially silent
	// Byzantine process, so Crash and Droppers together must stay
	// within T.
	Drop     float64
	Droppers []int
	// Batching turns on every node's coalescing outbox: same-destination
	// payloads produced within one delivery burst cross the transport as
	// a single multi-payload batch frame. Decisions and logical payload
	// stats are unaffected; the frame counters show the reduction.
	Batching bool
	// Wire selects the wire variant every node runs ("v1" default, "v2"
	// burst coalescing — see Config.Wire). All nodes of one cluster must
	// agree: v2 traffic (bundle broadcasts, pack frames) is only decoded
	// by v2 peers.
	Wire string
	// Timeout bounds the whole run (default 60s).
	Timeout time.Duration
	// Metrics, when set, registers every node's instruments on the
	// registry (under "node<i>." prefixes — see node.Config.Metrics).
	Metrics *obs.Registry
	// TraceCap, when positive, attaches a protocol round tracer of that
	// capacity to every node; the tracers come back in
	// ClusterResult.Traces.
	TraceCap int
}

// ClusterLayerStats aggregates one node's traffic for one protocol
// layer (payload-kind prefix: "rb", "mw", "svss", "coin", "aba", ...).
// Msgs counts logical payloads; Frames counts same-kind wire groups,
// the per-layer physical unit (equal to Msgs without batching).
type ClusterLayerStats struct {
	SentMsgs, SentFrames, SentBytes int64
	RecvMsgs, RecvFrames, RecvBytes int64
}

// ClusterNodeStats reports one node's run: lifecycle outcome plus
// traffic totals and the per-layer breakdown. Sent/Recv count logical
// payloads (byte counters use standalone encoded sizes, comparable
// across batched and unbatched runs); SentFrames/RecvFrames and the
// frame byte counters are the physical messages that actually crossed
// the transport.
type ClusterNodeStats struct {
	ID       int
	Crashed  bool
	Dropper  bool
	Decided  bool
	Decision int

	Sent, SentBytes int64
	Recv, RecvBytes int64

	SentFrames, SentFrameBytes int64
	RecvFrames, RecvFrameBytes int64

	// Complexity denominators: how many coin rounds this node observed
	// and how many protocol instances each layer opened (cumulative, so
	// retirement does not zero them). Recv / CoinRounds is the node's
	// deliveries-per-coin-round figure; Recv / MWCreated its deliveries
	// per MW sub-instance.
	CoinRounds                                    uint64
	RBCreated, WRBCreated, MWCreated, SVSSCreated uint64

	// Drop accounting (see node.Stats): outbound payloads dropped for
	// exceeding the frame cap, inbound frames dropped whole after
	// retirement, and scoped payloads dropped for a retired session.
	OversizedDropped    int64
	DroppedLateFrames   int64
	DroppedLatePayloads int64

	// Lane runtime counters (multi-lane service nodes; see node.Stats).
	// RingWaits is backpressure, not loss; RingDrops must be zero on a
	// clean run (items are only ever discarded at shutdown).
	Lanes         int
	RingWaits     int64
	RingDrops     int64
	RingHighWater int

	ByLayer map[string]ClusterLayerStats
}

// ClusterResult reports a cluster run.
type ClusterResult struct {
	// Decisions maps node id to decision for every node that decided
	// (fault-injected nodes included when they got that far).
	Decisions map[int]int
	// Honest lists the ids agreement is asserted over: everything not
	// crashed and not dropping.
	Honest []int
	// Agreed reports whether all honest nodes decided the same value.
	Agreed bool
	// Value is the agreed value (meaningful when Agreed).
	Value   int
	Elapsed time.Duration
	// Nodes holds per-node stats, ordered by id.
	Nodes []ClusterNodeStats
	// Traces holds each node's protocol round tracer, ordered by id
	// (nil unless ClusterConfig.TraceCap was set).
	Traces []*obs.Tracer
}

func (c *ClusterConfig) normalize() error {
	if c.N < 2 {
		return fmt.Errorf("svssba: need at least 2 processes, have %d", c.N)
	}
	if c.T == 0 {
		c.T = (c.N - 1) / 3
	}
	if c.Transport == "" {
		c.Transport = TransportChan
	}
	if c.Transport != TransportChan && c.Transport != TransportTCP {
		return fmt.Errorf("svssba: unknown transport %q", c.Transport)
	}
	if len(c.Inputs) == 0 {
		c.Inputs = make([]int, c.N)
		for i := range c.Inputs {
			c.Inputs[i] = i % 2
		}
	}
	if len(c.Inputs) != c.N {
		return fmt.Errorf("svssba: %d inputs for %d processes", len(c.Inputs), c.N)
	}
	for _, in := range c.Inputs {
		if in != 0 && in != 1 {
			return fmt.Errorf("svssba: input %d is not binary", in)
		}
	}
	if c.Drop < 0 || c.Drop >= 1 {
		return fmt.Errorf("svssba: drop probability %v outside [0,1)", c.Drop)
	}
	if c.Drop > 0 && len(c.Droppers) == 0 {
		return fmt.Errorf("svssba: Drop set without Droppers")
	}
	if c.Drop == 0 && len(c.Droppers) > 0 {
		return fmt.Errorf("svssba: Droppers set without Drop")
	}
	seen := make(map[int]bool)
	for _, p := range append(append([]int{}, c.Crash...), c.Droppers...) {
		if p < 1 || p > c.N {
			return fmt.Errorf("svssba: fault on unknown process %d", p)
		}
		if seen[p] {
			return fmt.Errorf("svssba: process %d assigned two faults", p)
		}
		seen[p] = true
	}
	if len(seen) > c.T {
		return fmt.Errorf("svssba: %d faulty nodes exceed t=%d", len(seen), c.T)
	}
	switch c.Wire {
	case "":
		c.Wire = "v1"
	case "v1", "v2":
	default:
		return fmt.Errorf("svssba: unknown wire variant %q", c.Wire)
	}
	if c.Timeout == 0 {
		c.Timeout = 60 * time.Second
	}
	return nil
}

// nodeSeed derives node id's local seed from the cluster seed; shared
// by RunCluster, RunSpecNode and RunLive so one spec means one
// randomness assignment regardless of how the cluster is launched.
func nodeSeed(seed int64, id int) int64 { return seed + int64(id)*1_000_003 }

// RunCluster executes one agreement run on the node runtime. It builds
// the transports, boots the nodes, injects the configured faults,
// waits for every honest node to decide, and returns decisions plus
// per-node, per-layer traffic stats.
func RunCluster(cfg ClusterConfig) (*ClusterResult, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}

	crashed := make(map[int]bool, len(cfg.Crash))
	for _, p := range cfg.Crash {
		crashed[p] = true
	}
	dropper := make(map[int]bool, len(cfg.Droppers))
	for _, p := range cfg.Droppers {
		dropper[p] = true
	}

	// Bring up the transport fabric.
	trs := make([]transport.Transport, cfg.N+1)
	switch cfg.Transport {
	case TransportTCP:
		tcps := make([]*transport.TCP, cfg.N+1)
		addrs := make(map[sim.ProcID]string, cfg.N)
		for i := 1; i <= cfg.N; i++ {
			listen := "127.0.0.1:0"
			if cfg.BasePort != 0 {
				listen = fmt.Sprintf("127.0.0.1:%d", cfg.BasePort+i-1)
			}
			tcps[i] = transport.NewTCP(sim.ProcID(i), listen, nil)
			if err := tcps[i].Start(); err != nil {
				for j := 1; j < i; j++ {
					tcps[j].Close()
				}
				return nil, err
			}
			addrs[sim.ProcID(i)] = tcps[i].Addr()
		}
		for i := 1; i <= cfg.N; i++ {
			tcps[i].SetPeers(addrs)
			trs[i] = tcps[i]
		}
	default:
		mesh := transport.NewMesh(cfg.N)
		for i := 1; i <= cfg.N; i++ {
			ep, err := mesh.Endpoint(sim.ProcID(i))
			if err != nil {
				return nil, err
			}
			// Start every live endpoint before any node boots, mirroring
			// the TCP path (listeners up first): an unstarted mesh
			// endpoint drops inbound frames, so a fast first node's
			// Init-time traffic to a not-yet-booted peer would otherwise
			// be lost with no retransmit. Crash-at-zero endpoints stay
			// unstarted on purpose — their traffic is supposed to vanish.
			if !crashed[i] || cfg.CrashAfter > 0 {
				if err := ep.Start(); err != nil {
					return nil, err
				}
			}
			trs[i] = ep
		}
	}

	// Wrap fault-injected links.
	for i := 1; i <= cfg.N; i++ {
		fc := transport.FaultConfig{Seed: nodeSeed(cfg.Seed, i) ^ 0x5eed}
		if cfg.Delay > 0 {
			fc.MaxDelay = cfg.Delay
		}
		if dropper[i] {
			fc.DropProb = cfg.Drop
		}
		trs[i] = transport.WithFaults(trs[i], fc)
	}

	// Build and boot the nodes.
	codec := core.NewCodec()
	nodes := make([]*node.Node, cfg.N+1)
	var tracers []*obs.Tracer
	for i := 1; i <= cfg.N; i++ {
		var tracer *obs.Tracer
		if cfg.TraceCap > 0 {
			tracer = obs.NewTracer(i, cfg.TraceCap)
			tracers = append(tracers, tracer)
		}
		nd, err := node.New(node.Config{
			ID:       sim.ProcID(i),
			N:        cfg.N,
			T:        cfg.T,
			Seed:     nodeSeed(cfg.Seed, i),
			Input:    cfg.Inputs[i-1],
			Codec:    codec,
			Batching: cfg.Batching,
			Wire:     cfg.Wire,
			Metrics:  cfg.Metrics,
			Trace:    tracer,
		}, trs[i])
		if err != nil {
			return nil, err
		}
		nodes[i] = nd
	}
	defer func() {
		for i := 1; i <= cfg.N; i++ {
			nodes[i].Stop()
		}
	}()

	start := time.Now()
	var crashTimers []*time.Timer
	var crashWG sync.WaitGroup
	for i := 1; i <= cfg.N; i++ {
		if crashed[i] && cfg.CrashAfter <= 0 {
			// Fail-stop at time zero: the node never runs; tearing it
			// down closes its transport so peers see dead links.
			nodes[i].Crash()
			continue
		}
		if err := nodes[i].Start(); err != nil {
			return nil, err
		}
		if crashed[i] {
			nd := nodes[i]
			crashWG.Add(1)
			crashTimers = append(crashTimers, time.AfterFunc(cfg.CrashAfter, func() {
				defer crashWG.Done()
				nd.Crash()
			}))
		}
	}
	defer func() {
		for _, t := range crashTimers {
			if t.Stop() {
				crashWG.Done()
			}
		}
		crashWG.Wait()
	}()

	// Wait for every honest node to decide.
	honest := make([]int, 0, cfg.N)
	for i := 1; i <= cfg.N; i++ {
		if !crashed[i] && !dropper[i] {
			honest = append(honest, i)
		}
	}
	deadline := start.Add(cfg.Timeout)
	for _, i := range honest {
		wait := time.Until(deadline)
		if wait <= 0 {
			wait = time.Millisecond
		}
		if _, err := nodes[i].WaitDecision(wait); err != nil {
			return nil, fmt.Errorf("svssba: cluster run timed out after %v: %w", cfg.Timeout, err)
		}
	}
	elapsed := time.Since(start)

	res := &ClusterResult{
		Decisions: make(map[int]int, cfg.N),
		Honest:    honest,
		Agreed:    true,
		Elapsed:   elapsed,
		Traces:    tracers,
	}
	for i := 1; i <= cfg.N; i++ {
		if v, ok := nodes[i].Decision(); ok {
			res.Decisions[i] = v
		}
		res.Nodes = append(res.Nodes, clusterNodeStats(i, nodes[i], crashed[i], dropper[i]))
	}
	res.Value = res.Decisions[honest[0]]
	for _, i := range honest {
		if res.Decisions[i] != res.Value {
			res.Agreed = false
		}
	}
	var errs []error
	for _, i := range honest {
		errs = append(errs, nodes[i].Errs()...)
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("svssba: cluster runtime errors: %v", errs[0])
	}
	return res, nil
}

func clusterNodeStats(id int, nd *node.Node, crashed, dropper bool) ClusterNodeStats {
	st := nd.Stats()
	out := ClusterNodeStats{
		ID:                  id,
		Crashed:             crashed,
		Dropper:             dropper,
		Sent:                st.Sent,
		SentBytes:           st.SentBytes,
		Recv:                st.Recv,
		RecvBytes:           st.RecvBytes,
		SentFrames:          st.SentFrames,
		SentFrameBytes:      st.SentFrameBytes,
		RecvFrames:          st.RecvFrames,
		RecvFrameBytes:      st.RecvFrameBytes,
		OversizedDropped:    st.OversizedDropped,
		DroppedLateFrames:   st.DroppedLateFrames,
		DroppedLatePayloads: st.DroppedLatePayloads,
		Lanes:               st.Lanes,
		RingWaits:           st.RingWaits,
		RingDrops:           st.RingDrops,
		RingHighWater:       st.RingHighWater,
		ByLayer:             make(map[string]ClusterLayerStats),
	}
	if v, ok := nd.Decision(); ok {
		out.Decided, out.Decision = true, v
	}
	out.CoinRounds = nd.CoinRounds()
	if sc, ok := nd.StateCounts(); ok {
		out.RBCreated = sc.RBCreated
		out.WRBCreated = sc.WRBCreated
		out.MWCreated = sc.MWCreated
		out.SVSSCreated = sc.SVSSCreated
	}
	for layer, l := range st.ByLayer() {
		out.ByLayer[layer] = ClusterLayerStats{
			SentMsgs: l.SentMsgs, SentFrames: l.SentFrames, SentBytes: l.SentBytes,
			RecvMsgs: l.RecvMsgs, RecvFrames: l.RecvFrames, RecvBytes: l.RecvBytes,
		}
	}
	return out
}

// ClusterSpec is the JSON description shared by the processes of a
// real multi-process cluster: every cmd/node process loads the same
// spec and picks its row by id.
type ClusterSpec struct {
	N      int               `json:"n"`
	T      int               `json:"t,omitempty"`
	Seed   int64             `json:"seed"`
	Inputs []int             `json:"inputs,omitempty"`
	Nodes  []ClusterNodeAddr `json:"nodes"`
	// Batching turns on the coalescing outbox on every process (see
	// ClusterConfig.Batching); all processes of one cluster should agree
	// on it, though mixed clusters interoperate (batch frames are
	// self-describing).
	Batching bool `json:"batching,omitempty"`
	// Wire selects the wire variant on every process (see
	// ClusterConfig.Wire). Unlike Batching, all processes must agree —
	// v1 peers drop v2 bundle broadcasts and pack frames.
	Wire string `json:"wire,omitempty"`
}

// ClusterNodeAddr binds a node id to its listen address.
type ClusterNodeAddr struct {
	ID   int    `json:"id"`
	Addr string `json:"addr"`
}

// NewLocalClusterSpec builds a localhost spec: node i listens on
// 127.0.0.1:basePort+i-1.
func NewLocalClusterSpec(n, t int, seed int64, basePort int) ClusterSpec {
	spec := ClusterSpec{N: n, T: t, Seed: seed}
	for i := 1; i <= n; i++ {
		spec.Nodes = append(spec.Nodes, ClusterNodeAddr{
			ID:   i,
			Addr: fmt.Sprintf("127.0.0.1:%d", basePort+i-1),
		})
	}
	return spec
}

// Validate checks spec consistency.
func (s *ClusterSpec) Validate() error {
	if s.N < 2 {
		return fmt.Errorf("svssba: spec needs at least 2 processes, have %d", s.N)
	}
	if len(s.Nodes) != s.N {
		return fmt.Errorf("svssba: spec has %d node addresses for n=%d", len(s.Nodes), s.N)
	}
	if len(s.Inputs) != 0 && len(s.Inputs) != s.N {
		return fmt.Errorf("svssba: spec has %d inputs for n=%d", len(s.Inputs), s.N)
	}
	seen := make(map[int]bool, s.N)
	for _, nd := range s.Nodes {
		if nd.ID < 1 || nd.ID > s.N {
			return fmt.Errorf("svssba: spec node id %d out of range 1..%d", nd.ID, s.N)
		}
		if seen[nd.ID] {
			return fmt.Errorf("svssba: spec node id %d listed twice", nd.ID)
		}
		if nd.Addr == "" {
			return fmt.Errorf("svssba: spec node %d has no address", nd.ID)
		}
		seen[nd.ID] = true
	}
	return nil
}

// SpecNodeResult reports one cmd/node process's run.
type SpecNodeResult struct {
	Decision int
	Elapsed  time.Duration
	Stats    ClusterNodeStats
}

// RunSpecNode runs one node of a multi-process cluster described by
// spec: it listens on its spec address, dials its peers over TCP, runs
// the protocol to a decision, then keeps serving traffic for linger so
// slower peers can finish (processes in a real deployment do not halt
// the moment they decide).
func RunSpecNode(spec ClusterSpec, id int, timeout, linger time.Duration) (*SpecNodeResult, error) {
	return RunSpecNodeObs(spec, id, timeout, linger, nil, nil)
}

// RunSpecNodeObs is RunSpecNode with observability attached: reg (may
// be nil) receives the node's instruments, tracer (may be nil) records
// its protocol round events. Both can be served live with obs.Serve
// while the run is in flight.
func RunSpecNodeObs(spec ClusterSpec, id int, timeout, linger time.Duration, reg *obs.Registry, tracer *obs.Tracer) (*SpecNodeResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if timeout == 0 {
		timeout = 60 * time.Second
	}
	t := spec.T
	if t == 0 {
		t = (spec.N - 1) / 3
	}
	addrs := make(map[sim.ProcID]string, spec.N)
	var self string
	for _, nd := range spec.Nodes {
		addrs[sim.ProcID(nd.ID)] = nd.Addr
		if nd.ID == id {
			self = nd.Addr
		}
	}
	if self == "" {
		return nil, fmt.Errorf("svssba: id %d not in spec", id)
	}
	input := (id - 1) % 2
	if len(spec.Inputs) == spec.N {
		input = spec.Inputs[id-1]
	}

	tr := transport.NewTCP(sim.ProcID(id), self, addrs)
	nd, err := node.New(node.Config{
		ID:       sim.ProcID(id),
		N:        spec.N,
		T:        t,
		Seed:     nodeSeed(spec.Seed, id),
		Input:    input,
		Batching: spec.Batching,
		Wire:     spec.Wire,
		Metrics:  reg,
		Trace:    tracer,
	}, tr)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := nd.Start(); err != nil {
		return nil, err
	}
	defer nd.Stop()
	v, err := nd.WaitDecision(timeout)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	if linger > 0 {
		time.Sleep(linger)
	}
	if errs := nd.Errs(); len(errs) > 0 {
		return nil, fmt.Errorf("svssba: node runtime errors: %v", errs[0])
	}
	return &SpecNodeResult{
		Decision: v,
		Elapsed:  elapsed,
		Stats:    clusterNodeStats(id, nd, false, false),
	}, nil
}

// ClusterComplexity is the message-complexity report over a set of
// nodes: total logical deliveries (received payloads) normalized by the
// protocol's unit counts. Deliveries is the sum over the nodes;
// CoinRounds is the maximum any node observed (the protocol-level round
// count — every honest node sees every coin round); the created counts
// sum each layer's instances across the nodes.
type ClusterComplexity struct {
	Deliveries                                    uint64
	CoinRounds                                    uint64
	RBCreated, WRBCreated, MWCreated, SVSSCreated uint64
}

// PerCoinRound returns deliveries per coin round (0 when no coin ran).
func (c ClusterComplexity) PerCoinRound() float64 { return ratio(c.Deliveries, c.CoinRounds) }

// PerMWInstance returns deliveries per MW-SVSS sub-instance.
func (c ClusterComplexity) PerMWInstance() float64 { return ratio(c.Deliveries, c.MWCreated) }

// PerRBSession returns deliveries per RB broadcast session.
func (c ClusterComplexity) PerRBSession() float64 { return ratio(c.Deliveries, c.RBCreated) }

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Complexity folds per-node stats into the message-complexity report.
func Complexity(nodes []ClusterNodeStats) ClusterComplexity {
	var c ClusterComplexity
	for _, nd := range nodes {
		c.Deliveries += uint64(nd.Recv)
		if nd.CoinRounds > c.CoinRounds {
			c.CoinRounds = nd.CoinRounds
		}
		c.RBCreated += nd.RBCreated
		c.WRBCreated += nd.WRBCreated
		c.MWCreated += nd.MWCreated
		c.SVSSCreated += nd.SVSSCreated
	}
	return c
}

// ClusterLayerTable flattens aggregate per-layer stats over the given
// nodes into sorted rows — the stats table cmd/cluster prints.
func ClusterLayerTable(nodes []ClusterNodeStats) ([]string, map[string]ClusterLayerStats) {
	agg := make(map[string]ClusterLayerStats)
	for _, nd := range nodes {
		for layer, l := range nd.ByLayer {
			a := agg[layer]
			a.SentMsgs += l.SentMsgs
			a.SentFrames += l.SentFrames
			a.SentBytes += l.SentBytes
			a.RecvMsgs += l.RecvMsgs
			a.RecvFrames += l.RecvFrames
			a.RecvBytes += l.RecvBytes
			agg[layer] = a
		}
	}
	layers := make([]string, 0, len(agg))
	for l := range agg {
		layers = append(layers, l)
	}
	sort.Strings(layers)
	return layers, agg
}
