// Package adversary provides composable Byzantine behaviours for the
// protocol stack. A behaviour configures outbound tampering on a
// core.Stack: the process runs the honest state machines but corrupts,
// drops or equivocates selected traffic — the standard way to model
// "arbitrarily malicious" processes while keeping them message-compatible
// enough to attack the interesting code paths (a process that only
// babbles is filtered out trivially).
//
// Behaviours compose: Apply chains all send and broadcast tampers.
package adversary

import (
	"svssba/internal/aba"
	"svssba/internal/core"
	"svssba/internal/field"
	"svssba/internal/mwsvss"
	"svssba/internal/proto"
	"svssba/internal/sim"
	"svssba/internal/svss"
)

// Behavior mutates outbound traffic of one process.
type Behavior struct {
	// Name identifies the behaviour in experiment tables.
	Name string
	// Send rewrites or drops a direct message (nil = pass-through).
	Send core.SendTamper
	// Bcast rewrites or drops a broadcast value (nil = pass-through).
	Bcast core.BcastTamper
}

// Apply installs the chained behaviours on the stack.
func Apply(st *core.Stack, behaviors ...Behavior) {
	var sends []core.SendTamper
	var bcasts []core.BcastTamper
	for _, b := range behaviors {
		if b.Send != nil {
			sends = append(sends, b.Send)
		}
		if b.Bcast != nil {
			bcasts = append(bcasts, b.Bcast)
		}
	}
	if len(sends) > 0 {
		st.Node.SetSendTamper(func(ctx sim.Context, to sim.ProcID, p sim.Payload) (sim.Payload, bool) {
			for _, f := range sends {
				var keep bool
				p, keep = f(ctx, to, p)
				if !keep {
					return nil, false
				}
			}
			return p, true
		})
	}
	if len(bcasts) > 0 {
		st.Node.SetBcastTamper(func(ctx sim.Context, tag proto.Tag, value []byte) ([]byte, bool) {
			for _, f := range bcasts {
				var keep bool
				value, keep = f(ctx, tag, value)
				if !keep {
					return nil, false
				}
			}
			return value, true
		})
	}
}

// Silent drops every outbound message and broadcast (a fail-stop process
// that still consumes input).
func Silent() Behavior {
	return Behavior{
		Name:  "silent",
		Send:  func(sim.Context, sim.ProcID, sim.Payload) (sim.Payload, bool) { return nil, false },
		Bcast: func(sim.Context, proto.Tag, []byte) ([]byte, bool) { return nil, false },
	}
}

// RValLiar corrupts the process's MW-SVSS reconstruct-phase value
// broadcasts by a fixed offset — the attack shape of the paper's
// Example 1, and the canonical way to (attempt to) break Weak Binding.
func RValLiar(offset uint64) Behavior {
	return Behavior{
		Name: "rval-liar",
		Bcast: func(_ sim.Context, tag proto.Tag, value []byte) ([]byte, bool) {
			if tag.Proto == proto.ProtoMW && tag.Step == mwsvss.StepRVal {
				if v, ok := mwsvss.DecodeElem(value); ok {
					return mwsvss.EncodeElem(v.Add(field.New(offset))), true
				}
			}
			return value, true
		},
	}
}

// EchoLiar corrupts the private echo values of MW-SVSS share step 2,
// sabotaging confirmations so the liar is excluded from L sets.
func EchoLiar(offset uint64) Behavior {
	return Behavior{
		Name: "echo-liar",
		Send: func(_ sim.Context, _ sim.ProcID, p sim.Payload) (sim.Payload, bool) {
			if e, ok := p.(mwsvss.Echo); ok {
				return mwsvss.Echo{MW: e.MW, Val: e.Val.Add(field.New(offset))}, true
			}
			return p, true
		},
	}
}

// DealCorruptor corrupts the SVSS row/column polynomials this process
// deals to the given victims (a faulty SVSS dealer).
func DealCorruptor(victims map[sim.ProcID]bool) Behavior {
	return Behavior{
		Name: "deal-corruptor",
		Send: func(_ sim.Context, to sim.ProcID, p sim.Payload) (sim.Payload, bool) {
			d, ok := p.(svss.Deal)
			if !ok || !victims[to] {
				return p, true
			}
			row := make([]field.Element, len(d.RowPts))
			col := make([]field.Element, len(d.ColPts))
			for i := range d.RowPts {
				row[i] = d.RowPts[i].Add(field.New(uint64(i + 1)))
			}
			for i := range d.ColPts {
				col[i] = d.ColPts[i].Add(field.New(uint64(2*i + 1)))
			}
			return svss.Deal{Session: d.Session, RowPts: row, ColPts: col}, true
		},
	}
}

// VoteFlipper inverts every outgoing agreement vote and confirmation.
func VoteFlipper() Behavior {
	return Behavior{
		Name: "vote-flipper",
		Send: func(_ sim.Context, _ sim.ProcID, p sim.Payload) (sim.Payload, bool) {
			switch v := p.(type) {
			case aba.Vote:
				return aba.Vote{Step: v.Step, Round: v.Round, Value: 1 - v.Value}, true
			case aba.Conf:
				return aba.Conf{Round: v.Round, Mask: 3 - v.Mask&3}, true
			}
			return p, true
		},
	}
}

// VoteEquivocator sends opposite vote values to even- and odd-numbered
// peers (the classic split attack on voting protocols).
func VoteEquivocator() Behavior {
	return Behavior{
		Name: "vote-equivocator",
		Send: func(_ sim.Context, to sim.ProcID, p sim.Payload) (sim.Payload, bool) {
			if v, ok := p.(aba.Vote); ok && to%2 == 0 {
				return aba.Vote{Step: v.Step, Round: v.Round, Value: 1 - v.Value}, true
			}
			return p, true
		},
	}
}

// MuteKinds drops outbound messages of the given payload kinds.
func MuteKinds(kinds ...string) Behavior {
	set := make(map[string]bool, len(kinds))
	for _, k := range kinds {
		set[k] = true
	}
	return Behavior{
		Name: "mute",
		Send: func(_ sim.Context, _ sim.ProcID, p sim.Payload) (sim.Payload, bool) {
			if set[p.Kind()] {
				return nil, false
			}
			return p, true
		},
	}
}
