package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Reporter periodically writes one status line produced by a callback.
// Meant for long soak/load runs where a scrolling one-line-per-interval
// log is the observability floor.
type Reporter struct {
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// StartReporter invokes line every interval and writes the result
// (with a timestamp prefix) to w until Stop is called. A line callback
// returning "" skips that interval.
func StartReporter(w io.Writer, interval time.Duration, line func() string) *Reporter {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	r := &Reporter{
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go func() {
		defer close(r.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		start := time.Now()
		for {
			select {
			case <-r.stop:
				return
			case <-tick.C:
				s := line()
				if s == "" {
					continue
				}
				fmt.Fprintf(w, "[%7.1fs] %s\n", time.Since(start).Seconds(), s)
			}
		}
	}()
	return r
}

// Stop halts the reporter and waits for the goroutine to exit. Safe to
// call multiple times.
func (r *Reporter) Stop() {
	r.once.Do(func() { close(r.stop) })
	<-r.done
}

// Meter converts a monotonically growing counter into a rate between
// successive Tick calls.
type Meter struct {
	last   int64
	lastAt time.Time
}

// Tick reports the per-second rate since the previous Tick given the
// counter's current value. The first call returns 0 and arms the meter.
func (m *Meter) Tick(current int64) float64 {
	now := time.Now()
	if m.lastAt.IsZero() {
		m.last, m.lastAt = current, now
		return 0
	}
	dt := now.Sub(m.lastAt).Seconds()
	if dt <= 0 {
		return 0
	}
	rate := float64(current-m.last) / dt
	m.last, m.lastAt = current, now
	return rate
}
