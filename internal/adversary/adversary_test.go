package adversary_test

import (
	"testing"

	"svssba/internal/aba"
	"svssba/internal/adversary"
	"svssba/internal/core"
	"svssba/internal/field"
	"svssba/internal/mwsvss"
	"svssba/internal/proto"
	"svssba/internal/sim"
	"svssba/internal/testutil"
)

// capture runs a stack's tamper chain against a payload directly.
func sendThrough(t *testing.T, st *core.Stack, p sim.Payload, to sim.ProcID) []sim.Message {
	t.Helper()
	ctx := testutil.NewCtx(1, 4, 1)
	nw := sim.NewNetwork(4, 1, 1)
	if err := nw.Register(st.Node); err != nil {
		t.Fatal(err)
	}
	_ = ctx
	// Use the node's Init wrapper to get a tampering context.
	st.Node.AddInit(func(c sim.Context) { c.Send(to, p) })
	fake := testutil.NewCtx(1, 4, 1)
	st.Node.Init(fake)
	return fake.Sent
}

func TestSilentDropsEverything(t *testing.T) {
	st := core.NewStack(1, nil)
	adversary.Apply(st, adversary.Silent())
	sent := sendThrough(t, st, aba.Vote{Step: 1, Round: 1, Value: 1}, 2)
	if len(sent) != 0 {
		t.Errorf("silent sent %d messages", len(sent))
	}
}

func TestVoteFlipperFlips(t *testing.T) {
	st := core.NewStack(1, nil)
	adversary.Apply(st, adversary.VoteFlipper())
	sent := sendThrough(t, st, aba.Vote{Step: 1, Round: 1, Value: 1}, 2)
	if len(sent) != 1 {
		t.Fatalf("sent %d", len(sent))
	}
	v, ok := sent[0].Payload.(aba.Vote)
	if !ok || v.Value != 0 {
		t.Errorf("payload %v", sent[0].Payload)
	}
}

func TestVoteEquivocatorSplitsByParity(t *testing.T) {
	st := core.NewStack(1, nil)
	adversary.Apply(st, adversary.VoteEquivocator())
	even := sendThrough(t, st, aba.Vote{Step: 1, Round: 1, Value: 1}, 2)
	st2 := core.NewStack(1, nil)
	adversary.Apply(st2, adversary.VoteEquivocator())
	odd := sendThrough(t, st2, aba.Vote{Step: 1, Round: 1, Value: 1}, 3)
	if even[0].Payload.(aba.Vote).Value != 0 {
		t.Error("even peer not flipped")
	}
	if odd[0].Payload.(aba.Vote).Value != 1 {
		t.Error("odd peer flipped")
	}
}

func TestEchoLiarOffsetsEchoes(t *testing.T) {
	st := core.NewStack(1, nil)
	adversary.Apply(st, adversary.EchoLiar(5))
	in := mwsvss.Echo{MW: proto.MWID{}, Vals: []field.Element{field.New(10)}}
	sent := sendThrough(t, st, in, 2)
	got := sent[0].Payload.(mwsvss.Echo)
	if got.Vals[0] != field.New(15) {
		t.Errorf("val = %v, want 15", got.Vals[0])
	}
}

func TestMuteKindsDropsSelected(t *testing.T) {
	st := core.NewStack(1, nil)
	adversary.Apply(st, adversary.MuteKinds(aba.KindBVal))
	if sent := sendThrough(t, st, aba.Vote{Step: 1, Round: 1, Value: 1}, 2); len(sent) != 0 {
		t.Error("muted kind sent")
	}
	st2 := core.NewStack(1, nil)
	adversary.Apply(st2, adversary.MuteKinds(aba.KindBVal))
	if sent := sendThrough(t, st2, aba.Vote{Step: 2, Round: 1, Value: 1}, 2); len(sent) != 1 {
		t.Error("unmuted kind dropped")
	}
}

func TestBehaviorsCompose(t *testing.T) {
	st := core.NewStack(1, nil)
	adversary.Apply(st, adversary.VoteFlipper(), adversary.MuteKinds(aba.KindAux))
	// BVAL: flipped, kept. AUX: dropped.
	if sent := sendThrough(t, st, aba.Vote{Step: 1, Round: 1, Value: 0}, 2); len(sent) != 1 ||
		sent[0].Payload.(aba.Vote).Value != 1 {
		t.Error("compose: bval not flipped")
	}
	st2 := core.NewStack(1, nil)
	adversary.Apply(st2, adversary.VoteFlipper(), adversary.MuteKinds(aba.KindAux))
	if sent := sendThrough(t, st2, aba.Vote{Step: 2, Round: 1, Value: 0}, 2); len(sent) != 0 {
		t.Error("compose: aux not dropped")
	}
}

func TestRValLiarAltersBroadcastValue(t *testing.T) {
	st := core.NewStack(1, nil)
	adversary.Apply(st, adversary.RValLiar(7))
	fake := testutil.NewCtx(1, 4, 1)
	tag := proto.Tag{Proto: proto.ProtoMW, Step: mwsvss.StepRVal, A: 2}
	st.Node.Broadcast(fake, tag, mwsvss.EncodeElem(field.New(100)))
	// The WRB type-1 fan-out carries the corrupted value.
	if len(fake.Sent) != 4 {
		t.Fatalf("sent %d", len(fake.Sent))
	}
}

// sendSeq pushes a sequence of sends through the stack's tamper chain
// and returns everything that actually went out, in order.
func sendSeq(t *testing.T, st *core.Stack, msgs []sim.Message) []sim.Message {
	t.Helper()
	st.Node.AddInit(func(c sim.Context) {
		for _, m := range msgs {
			c.Send(m.To, m.Payload)
		}
	})
	fake := testutil.NewCtx(1, 4, 1)
	st.Node.Init(fake)
	return fake.Sent
}

func TestTargetedDelayStarvesThenBursts(t *testing.T) {
	st := core.NewStack(1, nil)
	adversary.Apply(st, adversary.TargetedDelay(2, 2))
	vote := func(r uint64) aba.Vote { return aba.Vote{Step: 1, Round: r, Value: 1} }
	out := sendSeq(t, st, []sim.Message{
		{To: 2, Payload: vote(1)}, // held
		{To: 3, Payload: vote(2)}, // passes (1 non-victim send)
		{To: 2, Payload: vote(3)}, // held
		{To: 3, Payload: vote(4)}, // triggers release, then passes
		{To: 2, Payload: vote(5)}, // passes (released)
	})
	var got []uint64
	for _, m := range out {
		got = append(got, m.Payload.(aba.Vote).Round)
	}
	want := []uint64{2, 1, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("sent rounds %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sent rounds %v, want %v", got, want)
		}
	}
	if out[1].To != 2 || out[2].To != 2 {
		t.Errorf("burst not addressed to victim: %v", out)
	}
}

func TestMuteThenBurstReplaysBacklog(t *testing.T) {
	st := core.NewStack(1, nil)
	adversary.Apply(st, adversary.MuteThenBurst(2))
	vote := func(r uint64) aba.Vote { return aba.Vote{Step: 1, Round: r, Value: 1} }
	out := sendSeq(t, st, []sim.Message{
		{To: 2, Payload: vote(1)}, // muted
		{To: 3, Payload: vote(2)}, // muted
		{To: 4, Payload: vote(3)}, // burst: 1, 2, then 3
		{To: 2, Payload: vote(4)}, // passes
	})
	var got []uint64
	for _, m := range out {
		got = append(got, m.Payload.(aba.Vote).Round)
	}
	want := []uint64{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("sent rounds %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sent rounds %v, want %v", got, want)
		}
	}
}

func TestCrossSessionEquivocatorLiesByRoundParity(t *testing.T) {
	b := adversary.CrossSessionEquivocator(5)

	oddID := proto.MWID{Session: proto.SessionID{Dealer: 1, Kind: proto.KindApp, Round: 1}}
	evenID := proto.MWID{Session: proto.SessionID{Dealer: 1, Kind: proto.KindApp, Round: 2}}
	if out, keep := b.Send(nil, 2, mwsvss.Echo{MW: oddID, Vals: []field.Element{field.New(10)}}); !keep ||
		out.(mwsvss.Echo).Vals[0] != field.New(15) {
		t.Errorf("odd-session echo not offset: %v", out)
	}
	if out, keep := b.Send(nil, 2, mwsvss.Echo{MW: evenID, Vals: []field.Element{field.New(10)}}); !keep ||
		out.(mwsvss.Echo).Vals[0] != field.New(10) {
		t.Errorf("even-session echo changed: %v", out)
	}

	oddTag := proto.Tag{Proto: proto.ProtoMW, Step: mwsvss.StepRVal, Session: oddID.Session}
	evenTag := proto.Tag{Proto: proto.ProtoMW, Step: mwsvss.StepRVal, Session: evenID.Session}
	if out, keep := b.Bcast(nil, oddTag, mwsvss.EncodeElem(field.New(100))); !keep {
		t.Fatal("odd-session rval dropped")
	} else if v, _ := mwsvss.DecodeElem(out); v != field.New(105) {
		t.Errorf("odd-session rval = %v, want 105", v)
	}
	if out, keep := b.Bcast(nil, evenTag, mwsvss.EncodeElem(field.New(100))); !keep {
		t.Fatal("even-session rval dropped")
	} else if v, _ := mwsvss.DecodeElem(out); v != field.New(100) {
		t.Errorf("even-session rval = %v, want 100", v)
	}
}

func TestCoinBiaserOnlyTouchesCoinSessions(t *testing.T) {
	b := adversary.CoinBiaser(0)
	coinTag := proto.Tag{
		Proto: proto.ProtoMW, Step: mwsvss.StepRVal,
		Session: proto.SessionID{Dealer: 1, Kind: proto.KindCoin, Round: 3},
	}
	appTag := coinTag
	appTag.Session.Kind = proto.KindApp

	if out, keep := b.Bcast(nil, coinTag, mwsvss.EncodeElem(field.New(999))); !keep {
		t.Fatal("coin rval dropped")
	} else if v, _ := mwsvss.DecodeElem(out); v != field.New(0) {
		t.Errorf("coin rval = %v, want 0", v)
	}
	if out, keep := b.Bcast(nil, appTag, mwsvss.EncodeElem(field.New(999))); !keep {
		t.Fatal("app rval dropped")
	} else if v, _ := mwsvss.DecodeElem(out); v != field.New(999) {
		t.Errorf("app rval = %v, want unchanged", v)
	}
}
