package mwsvss_test

import (
	"fmt"
	"testing"

	"svssba/internal/core"
	"svssba/internal/field"
	"svssba/internal/mwsvss"
	"svssba/internal/proto"
	"svssba/internal/sim"
)

// inst builds a standalone MW-SVSS instance id.
func inst(dealer, moderator sim.ProcID) proto.MWID {
	return proto.MWID{
		Session: proto.SessionID{Dealer: dealer, Kind: proto.KindMW, Round: 1},
		Key:     proto.MWKey{Dealer: dealer, Moderator: moderator},
	}
}

// proc is one process under test: a core.Node hosting an MW-SVSS engine.
type proc struct {
	id        sim.ProcID
	node      *core.Node
	eng       *mwsvss.Engine
	shareDone map[proto.MWID]bool
	outputs   map[proto.MWID]mwsvss.Output
	shunned   []sim.ProcID
}

func newProc(id sim.ProcID) *proc {
	p := &proc{
		id:        id,
		shareDone: make(map[proto.MWID]bool),
		outputs:   make(map[proto.MWID]mwsvss.Output),
	}
	p.node = core.NewNode(id, func(j sim.ProcID, _ proto.MWID) {
		p.shunned = append(p.shunned, j)
	})
	p.eng = core.AttachMWSVSS(p.node, mwsvss.Callbacks{
		ShareComplete: func(_ sim.Context, id proto.MWID) {
			p.shareDone[id] = true
		},
		ReconstructComplete: func(_ sim.Context, id proto.MWID, _ int, out mwsvss.Output) {
			p.outputs[id] = out
		},
	})
	return p
}

// cluster owns the network and the processes.
type cluster struct {
	nw    *sim.Network
	procs map[sim.ProcID]*proc
	n, t  int
}

func newCluster(t *testing.T, n, tf int, seed int64, opts ...sim.NetworkOption) *cluster {
	t.Helper()
	c := &cluster{
		nw:    sim.NewNetwork(n, tf, seed, opts...),
		procs: make(map[sim.ProcID]*proc, n),
		n:     n,
		t:     tf,
	}
	for i := 1; i <= n; i++ {
		p := newProc(sim.ProcID(i))
		c.procs[p.id] = p
		if err := c.nw.Register(p.node); err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
	}
	return c
}

func (c *cluster) startShare(t *testing.T, id proto.MWID, secret, modSecret field.Element) {
	t.Helper()
	dealer := c.procs[id.Key.Dealer]
	mod := c.procs[id.Key.Moderator]
	dealer.node.AddInit(func(ctx sim.Context) {
		if err := dealer.eng.Share(ctx, id, secret); err != nil {
			t.Errorf("share: %v", err)
		}
	})
	mod.node.AddInit(func(ctx sim.Context) {
		if err := mod.eng.SetModeratorSecret(ctx, id, modSecret); err != nil {
			t.Errorf("set moderator secret: %v", err)
		}
	})
}

func (c *cluster) allShareDone(id proto.MWID, who []sim.ProcID) bool {
	for _, i := range who {
		if !c.procs[i].shareDone[id] {
			return false
		}
	}
	return true
}

func (c *cluster) allReconDone(id proto.MWID, who []sim.ProcID) bool {
	for _, i := range who {
		if _, ok := c.procs[i].outputs[id]; !ok {
			return false
		}
	}
	return true
}

func (c *cluster) reconstructAll(t *testing.T, id proto.MWID, who []sim.ProcID) {
	t.Helper()
	for _, i := range who {
		p := c.procs[i]
		if err := c.nw.Inject(i, func(ctx sim.Context) {
			p.eng.Reconstruct(ctx, id)
		}); err != nil {
			t.Fatalf("inject reconstruct %d: %v", i, err)
		}
	}
}

func ids(from, to int) []sim.ProcID {
	out := make([]sim.ProcID, 0, to-from+1)
	for i := from; i <= to; i++ {
		out = append(out, sim.ProcID(i))
	}
	return out
}

func TestHonestShareReconstruct(t *testing.T) {
	for _, cfg := range []struct{ n, t int }{{4, 1}, {7, 2}} {
		t.Run(fmt.Sprintf("n%d_t%d", cfg.n, cfg.t), func(t *testing.T) {
			for seed := int64(0); seed < 5; seed++ {
				c := newCluster(t, cfg.n, cfg.t, seed)
				id := inst(1, 2)
				secret := field.New(42)
				c.startShare(t, id, secret, secret)
				all := ids(1, cfg.n)
				if _, err := c.nw.RunUntil(func() bool { return c.allShareDone(id, all) }, 5_000_000); err != nil {
					t.Fatalf("seed %d: share: %v", seed, err)
				}
				c.reconstructAll(t, id, all)
				if _, err := c.nw.RunUntil(func() bool { return c.allReconDone(id, all) }, 5_000_000); err != nil {
					t.Fatalf("seed %d: reconstruct: %v", seed, err)
				}
				for _, i := range all {
					out := c.procs[i].outputs[id]
					if out.Bottom || out.Value != secret {
						t.Errorf("seed %d: process %d output %v, want %v", seed, i, out, secret)
					}
					if len(c.procs[i].shunned) != 0 {
						t.Errorf("seed %d: process %d shunned %v in honest run", seed, i, c.procs[i].shunned)
					}
				}
			}
		})
	}
}

func TestModeratorValueMismatchBlocksCompletion(t *testing.T) {
	// Moderated Validity of Termination requires s = s'. With s != s',
	// the (honest) moderator never builds M, so nobody completes S'.
	c := newCluster(t, 4, 1, 3)
	id := inst(1, 2)
	c.startShare(t, id, field.New(42), field.New(43))
	if _, err := c.nw.Run(5_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	for i := 1; i <= 4; i++ {
		if c.procs[sim.ProcID(i)].shareDone[id] {
			t.Errorf("process %d completed share despite s != s'", i)
		}
	}
}

func TestDealerIsNotModeratorRoleErrors(t *testing.T) {
	c := newCluster(t, 4, 1, 4)
	id := inst(1, 2)
	if err := c.nw.Inject(3, func(ctx sim.Context) {
		if err := c.procs[3].eng.Share(ctx, id, field.New(1)); err == nil {
			t.Error("non-dealer Share accepted")
		}
		if err := c.procs[3].eng.SetModeratorSecret(ctx, id, field.New(1)); err == nil {
			t.Error("non-moderator SetModeratorSecret accepted")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleShareRejected(t *testing.T) {
	c := newCluster(t, 4, 1, 5)
	id := inst(1, 2)
	if err := c.nw.Inject(1, func(ctx sim.Context) {
		if err := c.procs[1].eng.Share(ctx, id, field.New(1)); err != nil {
			t.Errorf("first share: %v", err)
		}
		if err := c.procs[1].eng.Share(ctx, id, field.New(2)); err == nil {
			t.Error("second share accepted")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestReconstructBeforeShareCompletesIsBuffered(t *testing.T) {
	c := newCluster(t, 4, 1, 6)
	id := inst(1, 2)
	secret := field.New(7)
	c.startShare(t, id, secret, secret)
	// Ask for reconstruction immediately; it must begin only after S'
	// completes and still produce the right output.
	all := ids(1, 4)
	c.reconstructAll(t, id, all)
	if _, err := c.nw.RunUntil(func() bool { return c.allReconDone(id, all) }, 5_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, i := range all {
		if out := c.procs[i].outputs[id]; out.Bottom || out.Value != secret {
			t.Errorf("process %d output %v, want %v", i, out, secret)
		}
	}
}

// rvalCorruptor corrupts a process's reconstruct-phase value broadcasts
// (the Example 1 attack shape: behave during S', lie during R').
func rvalCorruptor() core.BcastTamper {
	return func(_ sim.Context, tag proto.Tag, value []byte) ([]byte, bool) {
		if tag.Proto == proto.ProtoMW && tag.Step == 5 /* StepRVal */ {
			if v, ok := mwsvss.DecodeElem(value); ok {
				return mwsvss.EncodeElem(v.Add(field.One)), true
			}
		}
		return value, true
	}
}

// dealValsCorruptor corrupts the value vectors the dealer sends to the
// given victims during share step 1 (a blunt attack that mostly stalls
// the share phase — used to check nothing unsafe happens).
func dealValsCorruptor(victims map[sim.ProcID]bool) core.SendTamper {
	return func(_ sim.Context, to sim.ProcID, p sim.Payload) (sim.Payload, bool) {
		dv, ok := p.(mwsvss.DealVals)
		if !ok || !victims[to] {
			return p, true
		}
		vals := make([]field.Element, len(dv.Vals))
		copy(vals, dv.Vals)
		for i := range vals {
			vals[i] = vals[i].Add(field.New(uint64(i + 3)))
		}
		return mwsvss.DealVals{MW: dv.MW, Vals: vals}, true
	}
}

func TestCorruptDealValsNeverUnsafe(t *testing.T) {
	// The dealer corrupting dealt vectors makes confirmations fail; the
	// share phase must stall (or, if it completes, stay bound) — and no
	// honest process may ever shun another honest process.
	for seed := int64(0); seed < 20; seed++ {
		c := newCluster(t, 4, 1, seed)
		id := inst(1, 2)
		secret := field.New(42)
		c.procs[1].node.SetSendTamper(dealValsCorruptor(map[sim.ProcID]bool{3: true, 4: true}))
		c.startShare(t, id, secret, secret)
		if _, err := c.nw.Run(5_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, i := range ids(2, 4) {
			for _, j := range c.procs[i].shunned {
				if j != 1 {
					t.Fatalf("seed %d: honest %d shunned honest %d", seed, i, j)
				}
			}
		}
	}
}

// TestWeakBindingUnderFaultyDealer checks the Weak and Moderated Binding
// property (paper §2.2, property 3'): across schedules, for every run in
// which honest processes complete R', either all non-⊥ outputs agree on a
// single value r (with r = s' for the honest moderator when any non-⊥
// output exists), or some honest process shuns a newly detected faulty
// process.
func TestWeakBindingUnderFaultyDealer(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		c := newCluster(t, 4, 1, seed)
		id := inst(1, 2)
		secret := field.New(42)
		// Dealer behaves during S' but lies in its R' value broadcasts.
		c.procs[1].node.SetBcastTamper(rvalCorruptor())
		c.startShare(t, id, secret, secret)
		honest := ids(2, 4)
		if _, err := c.nw.RunUntil(func() bool { return c.allShareDone(id, honest) }, 5_000_000); err != nil {
			t.Fatalf("seed %d: termination of S': %v", seed, err)
		}
		c.reconstructAll(t, id, ids(1, 4))
		if _, err := c.nw.RunUntil(func() bool { return c.allReconDone(id, honest) }, 5_000_000); err != nil {
			t.Fatalf("seed %d: termination of R': %v", seed, err)
		}
		var nonBottom []field.Element
		shuns := 0
		for _, i := range honest {
			out := c.procs[i].outputs[id]
			if !out.Bottom {
				nonBottom = append(nonBottom, out.Value)
			}
			shuns += len(c.procs[i].shunned)
		}
		agree := true
		for _, v := range nonBottom {
			if v != nonBottom[0] {
				agree = false
			}
		}
		modBound := len(nonBottom) == 0 || nonBottom[0] == secret
		if !(agree && modBound) && shuns == 0 {
			t.Fatalf("seed %d: binding violated without shunning: outputs=%v", seed, nonBottom)
		}
	}
}

// TestValidityUnderFaultyConfirmer: the dealer and moderator are honest;
// a confirmer (process 4) echoes wrong values. Validity demands every
// completed reconstruction outputs s, or a shun occurs.
func TestValidityUnderFaultyConfirmer(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		c := newCluster(t, 4, 1, seed)
		id := inst(1, 2)
		secret := field.New(99)
		// Process 4 corrupts its reconstruct-phase value broadcasts.
		c.procs[4].node.SetBcastTamper(func(_ sim.Context, tag proto.Tag, value []byte) ([]byte, bool) {
			if tag.Proto == proto.ProtoMW && tag.Step == 5 /* StepRVal */ {
				v, ok := mwsvss.DecodeElem(value)
				if ok {
					return mwsvss.EncodeElem(v.Add(field.One)), true
				}
			}
			return value, true
		})
		c.startShare(t, id, secret, secret)
		honest := ids(1, 3)
		if _, err := c.nw.RunUntil(func() bool { return c.allShareDone(id, honest) }, 5_000_000); err != nil {
			t.Fatalf("seed %d: share: %v", seed, err)
		}
		c.reconstructAll(t, id, ids(1, 4))
		if _, err := c.nw.RunUntil(func() bool { return c.allReconDone(id, honest) }, 5_000_000); err != nil {
			t.Fatalf("seed %d: reconstruct: %v", seed, err)
		}
		// Drain remaining traffic so late (corrupted) broadcasts arrive.
		if _, err := c.nw.Run(5_000_000); err != nil {
			t.Fatalf("seed %d: drain: %v", seed, err)
		}
		shuns := 0
		for _, i := range honest {
			for _, j := range c.procs[i].shunned {
				if j == 4 {
					shuns++
				}
			}
		}
		wrong := 0
		for _, i := range honest {
			out := c.procs[i].outputs[id]
			if out.Bottom || out.Value != secret {
				wrong++
			}
		}
		if wrong > 0 && shuns == 0 {
			t.Fatalf("seed %d: %d wrong outputs and no shun of 4", seed, wrong)
		}
		// The dealer (honest) must never shun an honest process.
		for _, i := range honest {
			for _, j := range c.procs[i].shunned {
				if j != 4 {
					t.Fatalf("seed %d: honest process %d shunned honest %d", seed, i, j)
				}
			}
		}
	}
}

// TestShunPersistsAcrossSessions: after process 4 is detected in session
// one, a later session's messages from 4 are discarded by the detector.
func TestShunPersistsAcrossSessions(t *testing.T) {
	c := newCluster(t, 4, 1, 1)
	id1 := inst(1, 2)
	secret := field.New(5)
	c.procs[4].node.SetBcastTamper(func(_ sim.Context, tag proto.Tag, value []byte) ([]byte, bool) {
		if tag.Proto == proto.ProtoMW && tag.Step == 5 {
			v, ok := mwsvss.DecodeElem(value)
			if ok {
				return mwsvss.EncodeElem(v.Add(field.One)), true
			}
		}
		return value, true
	})
	c.startShare(t, id1, secret, secret)
	honest := ids(1, 3)
	if _, err := c.nw.RunUntil(func() bool { return c.allShareDone(id1, honest) }, 5_000_000); err != nil {
		t.Fatalf("share: %v", err)
	}
	c.reconstructAll(t, id1, append(honest, 4))
	if _, err := c.nw.Run(5_000_000); err != nil {
		t.Fatalf("reconstruct: %v", err)
	}
	detectors := 0
	for _, i := range honest {
		if c.procs[i].node.DMM().IsFaulty(4) {
			detectors++
		}
	}
	if detectors == 0 {
		t.Fatal("no detector at this seed (seed chosen so detection occurs)")
	}
	// Detection persists: a later session's messages from 4 are discarded
	// by every detector (DMM step 4), so 4 can never again join their L
	// sets; here we just confirm D_i membership is permanent state.
	for _, i := range honest {
		if c.procs[i].node.DMM().IsFaulty(4) && len(c.procs[i].shunned) == 0 {
			t.Errorf("process %d has 4 in D_i but no shun callback fired", i)
		}
	}
}
