// Package proto defines the identifiers and wire encoding shared by all
// protocol layers: VSS session ids (the paper's "(c, i)" pairs, §2),
// MW-SVSS sub-instance keys, reliable-broadcast tags, and a binary codec
// used by the live runtime and for byte-level accounting.
package proto

import (
	"fmt"

	"svssba/internal/sim"
)

// SessionKind says which layer opened a VSS session. It is part of the
// session identity, so independent layers can never collide on (c, i).
type SessionKind uint8

// Session kinds.
const (
	// KindApp marks sessions opened directly through the public API or in
	// tests (the Round field is the dealer's local counter c).
	KindApp SessionKind = iota + 1
	// KindCoin marks SVSS sessions created by the common-coin protocol:
	// Round is the coin instance, Index the process the secret is
	// "attached to" (paper §5).
	KindCoin
	// KindMW marks sessions opened by standalone MW-SVSS usage (tests and
	// Example 1); within SVSS, MW sub-instances share the parent session.
	KindMW
)

// SessionID identifies one VSS invocation — the paper's session id (c, i)
// where i is the dealer. Kind/Round/Index together play the role of the
// counter c; Dealer is i.
type SessionID struct {
	Dealer sim.ProcID
	Kind   SessionKind
	Round  uint64
	Index  uint32
}

// String implements fmt.Stringer.
func (s SessionID) String() string {
	return fmt.Sprintf("(%d.%d.%d,d%d)", s.Kind, s.Round, s.Index, s.Dealer)
}

// IsZero reports whether s is the zero session.
func (s SessionID) IsZero() bool { return s == SessionID{} }

// MWKey identifies one MW-SVSS instance inside a parent session. Slot
// distinguishes the two values shared per ordered (dealer, moderator)
// pair in SVSS step 2: slot 0 shares f(moderator, dealer), slot 1 shares
// f(dealer, moderator).
type MWKey struct {
	Dealer    sim.ProcID
	Moderator sim.ProcID
	Slot      uint8
}

// String implements fmt.Stringer.
func (k MWKey) String() string {
	return fmt.Sprintf("[d%d,m%d,s%d]", k.Dealer, k.Moderator, k.Slot)
}

// IsZero reports whether k is the zero key.
func (k MWKey) IsZero() bool { return k == MWKey{} }

// MWID is the full identity of an MW-SVSS instance: the parent VSS
// session plus the instance key. Standalone MW-SVSS sessions use a
// KindMW parent whose dealer equals the MW dealer.
type MWID struct {
	Session SessionID
	Key     MWKey
}

// String implements fmt.Stringer.
func (id MWID) String() string { return id.Session.String() + id.Key.String() }

// Proto namespaces for broadcast tags and direct messages.
const (
	ProtoWRB    uint8 = 1
	ProtoRB     uint8 = 2
	ProtoMW     uint8 = 3
	ProtoSVSS   uint8 = 4
	ProtoCoin   uint8 = 5
	ProtoABA    uint8 = 6
	ProtoGather uint8 = 7
	// ProtoBundle carries a wire-v2 broadcast bundle: the RB value is a
	// bundle body (see EncodeBundle) holding many logical (tag, value)
	// broadcasts that share one RB instance. Tag.A is a per-origin
	// sequence number; Session/MW/Step are zero.
	ProtoBundle uint8 = 8
	// ProtoACS carries an ACS proposal broadcast (internal/acs): the RB
	// value is the origin's proposal for the session named by Tag.A.
	// Session/MW/Step are zero — session identity lives in the service
	// scope, not the tag.
	ProtoACS uint8 = 9
)

// Tag identifies one logical reliable-broadcast instance together with its
// origin process. Tags are comparable (usable as map keys) and fully
// describe which protocol step a broadcast belongs to, which is what lets
// the DMM layer route and filter accepted broadcasts.
type Tag struct {
	Proto   uint8
	Session SessionID
	MW      MWKey
	Step    uint8
	A       uint32 // generic parameter (target poly index, round, ...)
}

// String implements fmt.Stringer.
func (t Tag) String() string {
	return fmt.Sprintf("p%d%s%s.s%d.a%d", t.Proto, t.Session, t.MW, t.Step, t.A)
}

// tagEncodedSize is the fixed encoded size of a Tag:
// proto(1) + session(2+1+8+4) + mw(2+2+1) + step(1) + a(4).
const tagEncodedSize = 1 + 15 + 5 + 1 + 4

// TagSize is the encoded size of a Tag in bytes.
func TagSize() int { return tagEncodedSize }

// MarshalTo writes the tag to w.
func (t Tag) MarshalTo(w *Writer) {
	w.U8(t.Proto)
	w.Proc(t.Session.Dealer)
	w.U8(uint8(t.Session.Kind))
	w.U64(t.Session.Round)
	w.U32(t.Session.Index)
	w.Proc(t.MW.Dealer)
	w.Proc(t.MW.Moderator)
	w.U8(t.MW.Slot)
	w.U8(t.Step)
	w.U32(t.A)
}

// ReadTag reads a tag from r.
func ReadTag(r *Reader) Tag {
	var t Tag
	t.Proto = r.U8()
	t.Session.Dealer = r.Proc()
	t.Session.Kind = SessionKind(r.U8())
	t.Session.Round = r.U64()
	t.Session.Index = r.U32()
	t.MW.Dealer = r.Proc()
	t.MW.Moderator = r.Proc()
	t.MW.Slot = r.U8()
	t.Step = r.U8()
	t.A = r.U32()
	return t
}
