// Package baseline implements the three prior-work protocols the paper's
// introduction compares against:
//
//   - Ben-Or's randomized agreement [1] with purely local coins: almost
//     surely terminating but requires n > 5t, and exponential expected
//     round count;
//   - a Bracha-style local-coin agreement [3]: optimally resilient
//     (n > 3t) and almost surely terminating, but the expected number of
//     rounds grows exponentially in n because termination waits for all
//     processes' independent local coins to collide (implemented as the
//     same voting layer as the main protocol with the common coin
//     replaced by local flips, which isolates exactly the coin's
//     contribution);
//   - a Canetti–Rabin-style protocol [4]: optimally resilient and
//     polynomial, but built on an AVSS/common-coin with failure
//     probability ε > 0, hence *not* almost-surely terminating
//     (implemented as an ideal common coin whose invocations fail,
//     globally and permanently, with probability ε).
package baseline

import (
	"fmt"

	"svssba/internal/proto"
	"svssba/internal/sim"
)

// Ben-Or message kinds.
const (
	KindBenOr = "benor/msg"

	// ValueQuestion is phase 2's "?" (no supermajority seen).
	ValueQuestion uint8 = 2
)

// BenOrMsg is a phase-1 report or phase-2 proposal.
type BenOrMsg struct {
	Phase uint8 // 1 or 2
	Round uint64
	Value uint8 // 0, 1 or ValueQuestion (phase 2 only)
}

var _ proto.Marshaler = BenOrMsg{}

// Kind implements sim.Payload.
func (BenOrMsg) Kind() string { return KindBenOr }

// Size implements sim.Payload.
func (BenOrMsg) Size() int { return 1 + 8 + 1 }

// MarshalTo implements proto.Marshaler.
func (m BenOrMsg) MarshalTo(w *proto.Writer) {
	w.U8(m.Phase)
	w.U64(m.Round)
	w.U8(m.Value)
}

// RegisterCodec registers baseline message decoding.
func RegisterCodec(c *proto.Codec) {
	c.Register(KindBenOr, func(r *proto.Reader) (sim.Payload, error) {
		return BenOrMsg{Phase: r.U8(), Round: r.U64(), Value: r.U8()}, r.Err()
	})
}

// DecideFunc observes a decision.
type DecideFunc func(ctx sim.Context, value int)

type benorRound struct {
	sent1, sent2 bool
	recv1        map[sim.ProcID]uint8
	recv2        map[sim.ProcID]uint8
	finished     bool
}

// BenOr runs Ben-Or's 1983 protocol for one process. It is safe and live
// only for n > 5t; with n <= 5t it may stall or disagree, which is
// exactly what experiment E6 demonstrates.
type BenOr struct {
	self     sim.ProcID
	onDecide DecideFunc

	rounds   map[uint64]*benorRound
	current  uint64
	est      uint8
	started  bool
	decided  bool
	decision uint8

	// MaxRounds bounds participation so simulations of stalled or
	// unlucky executions terminate; 0 means unbounded.
	MaxRounds uint64
}

// NewBenOr returns a Ben-Or engine for process self.
func NewBenOr(self sim.ProcID, onDecide DecideFunc) *BenOr {
	return &BenOr{
		self:     self,
		onDecide: onDecide,
		rounds:   make(map[uint64]*benorRound),
	}
}

// Decided reports the local decision, if any.
func (e *BenOr) Decided() (int, bool) {
	if !e.decided {
		return 0, false
	}
	return int(e.decision), true
}

// Round returns the current round number.
func (e *BenOr) Round() uint64 { return e.current }

func (e *BenOr) round(r uint64) *benorRound {
	rd, ok := e.rounds[r]
	if !ok {
		rd = &benorRound{
			recv1: make(map[sim.ProcID]uint8),
			recv2: make(map[sim.ProcID]uint8),
		}
		e.rounds[r] = rd
	}
	return rd
}

// Propose starts the protocol with a binary input.
func (e *BenOr) Propose(ctx sim.Context, value int) error {
	if value != 0 && value != 1 {
		return fmt.Errorf("benor: input %d is not binary", value)
	}
	if e.started {
		return fmt.Errorf("benor: already proposed")
	}
	e.started = true
	e.est = uint8(value)
	e.enter(ctx, 1)
	return nil
}

func (e *BenOr) enter(ctx sim.Context, r uint64) {
	if e.MaxRounds > 0 && r > e.MaxRounds {
		return
	}
	e.current = r
	rd := e.round(r)
	if !rd.sent1 {
		rd.sent1 = true
		e.sendAll(ctx, BenOrMsg{Phase: 1, Round: r, Value: e.est})
	}
	e.advance(ctx, rd, r)
}

func (e *BenOr) sendAll(ctx sim.Context, m BenOrMsg) {
	for q := 1; q <= ctx.N(); q++ {
		ctx.Send(sim.ProcID(q), m)
	}
}

// OnMessage handles Ben-Or messages.
func (e *BenOr) OnMessage(ctx sim.Context, m sim.Message) {
	p, ok := m.Payload.(BenOrMsg)
	if !ok || p.Value > ValueQuestion {
		return
	}
	rd := e.round(p.Round)
	switch p.Phase {
	case 1:
		if p.Value > 1 {
			return
		}
		if _, dup := rd.recv1[m.From]; dup {
			return
		}
		rd.recv1[m.From] = p.Value
	case 2:
		if _, dup := rd.recv2[m.From]; dup {
			return
		}
		rd.recv2[m.From] = p.Value
	default:
		return
	}
	e.advance(ctx, rd, p.Round)
}

func (e *BenOr) advance(ctx sim.Context, rd *benorRound, r uint64) {
	if !e.started || r != e.current || rd.finished {
		return
	}
	n, t := ctx.N(), ctx.T()

	// Phase 1 -> 2: after n-t reports, propose a supermajority value.
	if rd.sent1 && !rd.sent2 && len(rd.recv1) >= n-t {
		counts := [2]int{}
		for _, v := range rd.recv1 {
			counts[v]++
		}
		prop := ValueQuestion
		for v := uint8(0); v <= 1; v++ {
			if 2*counts[v] > n+t {
				prop = v
			}
		}
		rd.sent2 = true
		e.sendAll(ctx, BenOrMsg{Phase: 2, Round: r, Value: prop})
	}

	// Phase 2 -> next round: adopt a supported proposal, decide on a
	// strong quorum, otherwise flip a local coin.
	if rd.sent2 && len(rd.recv2) >= n-t {
		rd.finished = true
		counts := [2]int{}
		for _, v := range rd.recv2 {
			if v <= 1 {
				counts[v]++
			}
		}
		switch {
		case 2*counts[0] > n+t:
			e.decideValue(ctx, 0)
			e.est = 0
		case 2*counts[1] > n+t:
			e.decideValue(ctx, 1)
			e.est = 1
		case counts[0] > t:
			e.est = 0
		case counts[1] > t:
			e.est = 1
		default:
			e.est = uint8(ctx.Rand().Intn(2)) // local coin
		}
		e.enter(ctx, r+1)
	}
}

func (e *BenOr) decideValue(ctx sim.Context, v uint8) {
	if e.decided {
		return
	}
	e.decided = true
	e.decision = v
	if e.onDecide != nil {
		e.onDecide(ctx, int(v))
	}
}

// BenOrNode adapts the engine to sim.Handler.
type BenOrNode struct {
	Eng   *BenOr
	input int
}

var _ sim.Handler = (*BenOrNode)(nil)

// NewBenOrNode wraps a Ben-Or engine proposing input at start.
func NewBenOrNode(self sim.ProcID, input int, onDecide DecideFunc) *BenOrNode {
	return &BenOrNode{Eng: NewBenOr(self, onDecide), input: input}
}

// ID implements sim.Handler.
func (n *BenOrNode) ID() sim.ProcID { return n.Eng.self }

// Init implements sim.Handler.
func (n *BenOrNode) Init(ctx sim.Context) {
	// Propose cannot fail here: the input is validated at construction
	// call sites and the engine is fresh.
	_ = n.Eng.Propose(ctx, n.input)
}

// Deliver implements sim.Handler.
func (n *BenOrNode) Deliver(ctx sim.Context, m sim.Message) {
	n.Eng.OnMessage(ctx, m)
}
