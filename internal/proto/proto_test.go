package proto

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"svssba/internal/field"
	"svssba/internal/sim"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	var w Writer
	w.U8(7)
	w.U16(1234)
	w.U32(567890)
	w.U64(987654321012345)
	w.Proc(13)
	w.Elem(field.New(42))
	w.Elems([]field.Element{field.New(1), field.New(2)})
	w.Procs([]sim.ProcID{3, 4, 5})
	w.VarBytes([]byte("hello"))

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := r.U16(); got != 1234 {
		t.Errorf("U16 = %d", got)
	}
	if got := r.U32(); got != 567890 {
		t.Errorf("U32 = %d", got)
	}
	if got := r.U64(); got != 987654321012345 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.Proc(); got != 13 {
		t.Errorf("Proc = %d", got)
	}
	if got := r.Elem(); got != field.New(42) {
		t.Errorf("Elem = %v", got)
	}
	if got := r.Elems(); len(got) != 2 || got[0] != field.New(1) || got[1] != field.New(2) {
		t.Errorf("Elems = %v", got)
	}
	if got := r.Procs(); len(got) != 3 || got[0] != 3 || got[2] != 5 {
		t.Errorf("Procs = %v", got)
	}
	if got := r.VarBytes(); string(got) != "hello" {
		t.Errorf("VarBytes = %q", got)
	}
	if err := r.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestReaderShortBuffer(t *testing.T) {
	r := NewReader([]byte{1})
	_ = r.U32()
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Errorf("err = %v, want ErrShortBuffer", r.Err())
	}
	// Sticky error: further reads stay failed.
	_ = r.U8()
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Error("error not sticky")
	}
}

func TestReaderTrailingBytes(t *testing.T) {
	var w Writer
	w.U16(5)
	w.U8(9)
	r := NewReader(w.Bytes())
	_ = r.U16()
	if err := r.Close(); !errors.Is(err, ErrTrailingBytes) {
		t.Errorf("err = %v, want ErrTrailingBytes", err)
	}
}

func TestReaderMaliciousLengthPrefix(t *testing.T) {
	// A huge Elems count with a tiny buffer must fail, not allocate.
	var w Writer
	w.U16(65535)
	r := NewReader(w.Bytes())
	if got := r.Elems(); got != nil {
		t.Errorf("Elems = %v, want nil", got)
	}
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Errorf("err = %v, want ErrShortBuffer", r.Err())
	}
}

func TestTagRoundTrip(t *testing.T) {
	tag := Tag{
		Proto: ProtoMW,
		Session: SessionID{
			Dealer: 3, Kind: KindCoin, Round: 17, Index: 4,
		},
		MW:   MWKey{Dealer: 1, Moderator: 2, Slot: 1},
		Step: 5,
		A:    99,
	}
	var w Writer
	tag.MarshalTo(&w)
	if w.Len() != TagSize() {
		t.Errorf("encoded size = %d, want %d", w.Len(), TagSize())
	}
	r := NewReader(w.Bytes())
	got := ReadTag(r)
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got != tag {
		t.Errorf("round trip: got %+v, want %+v", got, tag)
	}
}

func TestTagQuickRoundTrip(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(Tag{
				Proto: uint8(r.Intn(8)),
				Session: SessionID{
					Dealer: sim.ProcID(r.Intn(100)),
					Kind:   SessionKind(r.Intn(4)),
					Round:  r.Uint64(),
					Index:  r.Uint32(),
				},
				MW: MWKey{
					Dealer:    sim.ProcID(r.Intn(100)),
					Moderator: sim.ProcID(r.Intn(100)),
					Slot:      uint8(r.Intn(2)),
				},
				Step: uint8(r.Intn(10)),
				A:    r.Uint32(),
			})
		},
	}
	if err := quick.Check(func(tag Tag) bool {
		var w Writer
		tag.MarshalTo(&w)
		r := NewReader(w.Bytes())
		got := ReadTag(r)
		return r.Close() == nil && got == tag && w.Len() == TagSize()
	}, cfg); err != nil {
		t.Error(err)
	}
}

// stubPayload exercises the codec registry.
type stubPayload struct {
	V uint64
}

func (stubPayload) Kind() string { return "test/stub" }
func (stubPayload) Size() int    { return 8 }
func (p stubPayload) MarshalTo(w *Writer) {
	w.U64(p.V)
}

func decodeStub(r *Reader) (sim.Payload, error) {
	return stubPayload{V: r.U64()}, nil
}

func TestCodecRoundTrip(t *testing.T) {
	c := NewCodec()
	c.Register("test/stub", decodeStub)
	in := stubPayload{V: 77}
	b, err := c.Encode(in)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	out, err := c.Decode(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out != in {
		t.Errorf("round trip: got %v, want %v", out, in)
	}
}

func TestCodecUnknownKind(t *testing.T) {
	c := NewCodec()
	if _, err := c.Decode([]byte{4, 0, 'n', 'o', 'p', 'e'}); err == nil {
		t.Error("unknown kind decoded")
	}
}

type unmarshalable struct{}

func (unmarshalable) Kind() string { return "test/x" }
func (unmarshalable) Size() int    { return 0 }

func TestCodecRejectsNonMarshaler(t *testing.T) {
	c := NewCodec()
	if _, err := c.Encode(unmarshalable{}); err == nil {
		t.Error("non-marshaler encoded")
	}
}

func TestCodecTruncatedInput(t *testing.T) {
	c := NewCodec()
	c.Register("test/stub", decodeStub)
	b, err := c.Encode(stubPayload{V: 5})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	for cut := 0; cut < len(b); cut++ {
		if _, err := c.Decode(b[:cut]); err == nil {
			t.Errorf("truncated input of %d bytes decoded", cut)
		}
	}
}
