// Package sim provides the asynchronous message-passing substrate the
// protocols run on: an n-process system with private channels, unbounded
// but guaranteed-eventual message delivery, and an adversarially
// controllable scheduler — the model of the paper's introduction.
//
// Two runtimes share the same process abstraction:
//
//   - Network: a deterministic, seeded, single-goroutine event loop. The
//     scheduler chooses the next message to deliver, which models arbitrary
//     asynchrony while keeping runs exactly reproducible. All experiments
//     and benchmarks use it.
//   - LiveNet (livenet.go): one goroutine per process with real delays and
//     an encoded wire format, demonstrating the same state machines under
//     real concurrency.
package sim

import (
	"fmt"
	"math/rand"
)

// ProcID identifies a process; the paper indexes processes 1..n.
type ProcID int

// Payload is the content of a message. Kind names the message type for
// metrics and codec dispatch; Size is the approximate wire size in bytes
// (must match the binary encoding, which codec tests verify).
type Payload interface {
	Kind() string
	Size() int
}

// Message is a point-to-point message on a private channel.
type Message struct {
	From, To ProcID
	Payload  Payload
	Seq      uint64 // global send sequence number (deterministic)
	SentAt   int64  // virtual send time
}

// Context is the interface a process uses to interact with the system
// during Init or Deliver. Implementations are not safe for use outside the
// delivering goroutine.
type Context interface {
	// Send queues a message to the given process (sending to self is
	// allowed and goes through the scheduler like any other message).
	Send(to ProcID, p Payload)
	// N returns the number of processes in the system.
	N() int
	// T returns the resilience bound (maximum tolerated faults).
	T() int
	// Now returns the current virtual time.
	Now() int64
	// Rand returns this process's deterministic random source.
	Rand() *rand.Rand
}

// Handler is a process: a deterministic state machine driven by message
// deliveries. Both honest protocol stacks and Byzantine behaviours
// implement it.
type Handler interface {
	// ID returns the process identifier (1..n).
	ID() ProcID
	// Init runs once before any delivery; processes send initial messages.
	Init(ctx Context)
	// Deliver handles one message.
	Deliver(ctx Context, msg Message)
}

// Scheduler decides the delivery order of pending messages. It fully
// controls asynchrony: any scheduler that eventually returns every
// enqueued message is a valid asynchronous adversary.
type Scheduler interface {
	// Enqueue adds a pending message at virtual time now.
	Enqueue(m Message, now int64)
	// Next pops the next message to deliver and the virtual time of
	// delivery. ok is false when nothing is deliverable.
	Next(now int64) (m Message, at int64, ok bool)
	// Len returns the number of pending messages.
	Len() int
}

// Stats is a snapshot of message-level metrics for a run. Sent counts
// logical payloads; Frames counts physical network messages — without
// batching every enqueued payload is its own frame, with batching all
// same-destination payloads produced within one delivery step share one.
type Stats struct {
	SentByKind  map[string]int64
	BytesByKind map[string]int64
	Sent        int64
	Frames      int64
	Delivered   int64
	Dropped     int64
}

func newStats() *Stats {
	return &Stats{
		SentByKind:  make(map[string]int64),
		BytesByKind: make(map[string]int64),
	}
}

// TotalBytes returns the sum of bytes across kinds.
func (s *Stats) TotalBytes() int64 {
	var total int64
	for _, b := range s.BytesByKind {
		total += b
	}
	return total
}

// Clone returns a deep copy of the stats snapshot.
func (s *Stats) Clone() *Stats {
	c := newStats()
	c.Sent, c.Delivered, c.Dropped = s.Sent, s.Delivered, s.Dropped
	c.Frames = s.Frames
	for k, v := range s.SentByKind {
		c.SentByKind[k] = v
	}
	for k, v := range s.BytesByKind {
		c.BytesByKind[k] = v
	}
	return c
}

// Network is the deterministic event-loop runtime.
//
// Storage is dense: processes, random sources and crash flags live in
// slices indexed by ProcID (1..n; index 0 unused), and per-kind traffic
// counters live in slices indexed by interned kind IDs. Send and Step
// run up to the 500M-delivery cap per experiment, so the hot path does
// no map writes at all.
type Network struct {
	n, t      int
	procs     []Handler
	sched     Scheduler
	rands     []*rand.Rand
	now       int64
	seq       uint64
	crashed   []bool
	onDeliver []func(Message)
	inited    bool
	nRegs     int

	// Batching stats model: when on, every payload enqueued for the same
	// destination within one delivery step (one Init, one Deliver, one
	// Inject) counts as part of a single physical frame, modeling the
	// coalescing outbox the node runtime flushes per step. Delivery
	// semantics are untouched — payloads still traverse the scheduler
	// individually — so batched and unbatched runs of the same seed are
	// byte-identical in everything but the Frames counter.
	batching  bool
	stepStamp int64
	destStamp []int64

	// Counters (see Stats for the snapshot view).
	sent, delivered, dropped, frames int64
	kindIDs                          map[string]int
	kindNames                        []string
	sentByKind                       []int64
	bytesByKind                      []int64
	// One-slot intern cache: consecutive sends are overwhelmingly of the
	// same kind, and kind strings are constants, so the == below is
	// usually a pointer comparison.
	lastKind   string
	lastKindID int
}

// NetworkOption configures a Network.
type NetworkOption interface{ apply(*Network) }

type schedulerOption struct{ s Scheduler }

func (o schedulerOption) apply(n *Network) { n.sched = o.s }

// WithScheduler selects the delivery scheduler (default: RandomScheduler).
func WithScheduler(s Scheduler) NetworkOption { return schedulerOption{s: s} }

type deliverHookOption struct{ fn func(Message) }

func (o deliverHookOption) apply(n *Network) {
	n.onDeliver = append(n.onDeliver, o.fn)
}

// WithDeliverHook registers a hook invoked on every delivery (tracing).
func WithDeliverHook(fn func(Message)) NetworkOption {
	return deliverHookOption{fn: fn}
}

type batchingOption struct{ on bool }

func (o batchingOption) apply(n *Network) { n.batching = o.on }

// WithBatching turns the coalescing-outbox stats model on: Stats.Frames
// counts one physical message per (delivery step, destination) group
// instead of one per payload. Scheduling, delivery order and every
// logical counter are unaffected.
func WithBatching(on bool) NetworkOption { return batchingOption{on: on} }

// NewNetwork creates a system of n processes tolerating t faults, seeded
// deterministically. Handlers are registered with Register before Run.
func NewNetwork(n, t int, seed int64, opts ...NetworkOption) *Network {
	nw := &Network{
		n:          n,
		t:          t,
		procs:      make([]Handler, n+1),
		rands:      make([]*rand.Rand, n+1),
		crashed:    make([]bool, n+1),
		destStamp:  make([]int64, n+1),
		kindIDs:    make(map[string]int, 16),
		lastKindID: -1,
	}
	master := rand.New(rand.NewSource(seed))
	for p := 1; p <= n; p++ {
		nw.rands[p] = rand.New(rand.NewSource(master.Int63()))
	}
	for _, o := range opts {
		o.apply(nw)
	}
	if nw.sched == nil {
		nw.sched = NewRandomScheduler(master.Int63())
	}
	return nw
}

// Register adds a process. All n processes must be registered before Run.
func (nw *Network) Register(h Handler) error {
	id := h.ID()
	if id < 1 || int(id) > nw.n {
		return fmt.Errorf("sim: process id %d out of range 1..%d", id, nw.n)
	}
	if nw.procs[id] != nil {
		return fmt.Errorf("sim: process %d registered twice", id)
	}
	nw.procs[id] = h
	nw.nRegs++
	return nil
}

// N returns the number of processes.
func (nw *Network) N() int { return nw.n }

// T returns the resilience bound.
func (nw *Network) T() int { return nw.t }

// Now returns the current virtual time.
func (nw *Network) Now() int64 { return nw.now }

// Stats returns a snapshot of the message counters, materializing the
// per-kind maps from the interned slice counters.
func (nw *Network) Stats() *Stats {
	s := newStats()
	s.Sent, s.Delivered, s.Dropped = nw.sent, nw.delivered, nw.dropped
	s.Frames = nw.frames
	for id, name := range nw.kindNames {
		s.SentByKind[name] = nw.sentByKind[id]
		s.BytesByKind[name] = nw.bytesByKind[id]
	}
	return s
}

// Crash marks a process as crashed: all of its pending and future traffic
// (in either direction) is dropped and it receives no more deliveries.
func (nw *Network) Crash(p ProcID) {
	if p >= 1 && int(p) <= nw.n {
		nw.crashed[p] = true
	}
}

// kindID interns a payload kind, returning its dense counter index.
func (nw *Network) kindID(kind string) int {
	if kind == nw.lastKind && nw.lastKindID >= 0 {
		return nw.lastKindID
	}
	id, ok := nw.kindIDs[kind]
	if !ok {
		id = len(nw.kindNames)
		nw.kindIDs[kind] = id
		nw.kindNames = append(nw.kindNames, kind)
		nw.sentByKind = append(nw.sentByKind, 0)
		nw.bytesByKind = append(nw.bytesByKind, 0)
	}
	nw.lastKind, nw.lastKindID = kind, id
	return id
}

// procCtx adapts the network to the Context seen by one process.
type procCtx struct {
	nw *Network
	id ProcID
}

var _ Context = procCtx{}

func (c procCtx) N() int           { return c.nw.n }
func (c procCtx) T() int           { return c.nw.t }
func (c procCtx) Now() int64       { return c.nw.now }
func (c procCtx) Rand() *rand.Rand { return c.nw.rands[c.id] }

func (c procCtx) Send(to ProcID, p Payload) {
	nw := c.nw
	nw.seq++
	nw.sent++
	kid := nw.kindID(p.Kind())
	nw.sentByKind[kid]++
	nw.bytesByKind[kid] += int64(p.Size())
	if to < 1 || int(to) > nw.n || nw.crashed[c.id] || nw.crashed[to] {
		nw.dropped++
		return
	}
	// Frames model: a frame per enqueued payload, or per (step, dest)
	// group when batching coalesces same-step same-destination traffic.
	if !nw.batching || nw.destStamp[to] != nw.stepStamp {
		nw.destStamp[to] = nw.stepStamp
		nw.frames++
	}
	nw.sched.Enqueue(Message{
		From:    c.id,
		To:      to,
		Payload: p,
		Seq:     nw.seq,
		SentAt:  nw.now,
	}, nw.now)
}

// Init initializes all processes (idempotent; Run calls it if needed).
func (nw *Network) Init() error {
	if nw.inited {
		return nil
	}
	if nw.nRegs != nw.n {
		return fmt.Errorf("sim: %d of %d processes registered", nw.nRegs, nw.n)
	}
	nw.inited = true
	for p := 1; p <= nw.n; p++ {
		nw.stepStamp++
		nw.procs[p].Init(procCtx{nw: nw, id: ProcID(p)})
	}
	return nil
}

// Step delivers exactly one message. It reports whether a message was
// delivered (false means the network is quiescent).
func (nw *Network) Step() (bool, error) {
	if err := nw.Init(); err != nil {
		return false, err
	}
	for {
		m, at, ok := nw.sched.Next(nw.now)
		if !ok {
			return false, nil
		}
		if at > nw.now {
			nw.now = at
		} else {
			nw.now++
		}
		if nw.crashed[m.From] || nw.crashed[m.To] {
			nw.dropped++
			continue
		}
		nw.delivered++
		for _, hook := range nw.onDeliver {
			hook(m)
		}
		nw.stepStamp++
		nw.procs[m.To].Deliver(procCtx{nw: nw, id: m.To}, m)
		return true, nil
	}
}

// ErrStepLimit is returned by RunUntil when maxSteps deliveries happen
// without the condition holding.
type ErrStepLimit struct{ Steps int }

func (e ErrStepLimit) Error() string {
	return fmt.Sprintf("sim: step limit %d reached", e.Steps)
}

// Run delivers messages until the network is quiescent or maxSteps
// deliveries have happened. It returns the number of deliveries.
func (nw *Network) Run(maxSteps int) (int, error) {
	return nw.RunUntil(nil, maxSteps)
}

// RunUntil delivers messages until cond() holds (checked after every
// delivery), the network is quiescent, or maxSteps deliveries happen.
// A nil cond never holds. Exceeding maxSteps returns ErrStepLimit.
func (nw *Network) RunUntil(cond func() bool, maxSteps int) (int, error) {
	if err := nw.Init(); err != nil {
		return 0, err
	}
	if cond != nil && cond() {
		return 0, nil
	}
	steps := 0
	for steps < maxSteps {
		progressed, err := nw.Step()
		if err != nil {
			return steps, err
		}
		if !progressed {
			return steps, nil
		}
		steps++
		if cond != nil && cond() {
			return steps, nil
		}
	}
	return steps, ErrStepLimit{Steps: maxSteps}
}

// Quiescent reports whether no messages are pending.
func (nw *Network) Quiescent() bool { return nw.sched.Len() == 0 }

// Inject runs fn in process p's context (initializing the network first
// if needed). It is how external drivers — tests, experiment harnesses,
// the public API — invoke protocol entry points such as "start
// reconstruction" between deliveries.
func (nw *Network) Inject(p ProcID, fn func(ctx Context)) error {
	if err := nw.Init(); err != nil {
		return err
	}
	if p < 1 || int(p) > nw.n {
		return fmt.Errorf("sim: inject into unknown process %d", p)
	}
	nw.stepStamp++
	fn(procCtx{nw: nw, id: p})
	return nil
}
