package svssba

import "time"

// LiveConfig describes an agreement run on the live node runtime: one
// node.Node per process over the in-process channel transport, with
// randomized real delays, and every message round-tripped through the
// binary wire codec.
type LiveConfig struct {
	N, T   int
	Seed   int64
	Inputs []int
	// MaxDelay is the per-message delivery delay bound (default 2ms).
	MaxDelay time.Duration
	// Timeout bounds the whole run (default 60s).
	Timeout time.Duration
}

// LiveResult reports a live run.
type LiveResult struct {
	Decisions map[int]int
	Agreed    bool
	Value     int
	Messages  int64
	// Bytes counts encoded wire bytes (frame sizes as sent on the
	// transport, kind headers included).
	Bytes   int64
	Elapsed time.Duration
}

// RunLive executes the paper's protocol on the live node runtime. It is
// a thin wrapper over RunCluster with the in-process channel transport
// and randomized link delays — the exact code path cmd/node runs over
// TCP sockets — and demonstrates that the event-driven protocol cores
// are runtime-agnostic: the same state machines run under real
// concurrency with encoded messages on the wire.
func RunLive(cfg LiveConfig) (*LiveResult, error) {
	if cfg.MaxDelay == 0 {
		cfg.MaxDelay = 2 * time.Millisecond
	}
	res, err := RunCluster(ClusterConfig{
		N:         cfg.N,
		T:         cfg.T,
		Seed:      cfg.Seed,
		Inputs:    cfg.Inputs,
		Transport: TransportChan,
		Delay:     cfg.MaxDelay,
		Timeout:   cfg.Timeout,
	})
	if err != nil {
		return nil, err
	}
	out := &LiveResult{
		Decisions: res.Decisions,
		Agreed:    res.Agreed,
		Value:     res.Value,
		Elapsed:   res.Elapsed,
	}
	for _, nd := range res.Nodes {
		out.Messages += nd.Sent
		out.Bytes += nd.SentBytes
	}
	return out, nil
}
