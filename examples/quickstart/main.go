// Command quickstart runs one asynchronous Byzantine agreement among
// four simulated processes with split inputs and prints the outcome —
// the smallest possible tour of the library.
package main

import (
	"fmt"
	"log"

	"svssba"
)

func main() {
	// Four processes, one tolerated fault (n > 3t), split inputs.
	// The seed makes the whole run — scheduling, polynomials, coins —
	// reproducible.
	res, err := svssba.Run(svssba.Config{
		N:      4,
		Seed:   42,
		Inputs: []int{0, 1, 1, 0},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("asynchronous Byzantine agreement (Abraham-Dolev-Halpern, PODC 2008)")
	fmt.Printf("  processes:    4 (tolerating 1 Byzantine fault)\n")
	fmt.Printf("  inputs:       [0 1 1 0]\n")
	fmt.Printf("  agreed:       %v\n", res.Agreed)
	fmt.Printf("  decision:     %d\n", res.Value)
	fmt.Printf("  voting rounds:%d\n", res.MaxRound)
	fmt.Printf("  messages:     %d (%d bytes)\n", res.Messages, res.Bytes)
	fmt.Printf("  deliveries:   %d\n", res.Steps)

	if !res.Agreed {
		log.Fatal("agreement violated — this should be impossible")
	}
}
