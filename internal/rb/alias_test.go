package rb_test

// Aliasing contract of the zero-copy receive path: a decoded Msg.Value
// aliases the inbound frame buffer (proto.Reader.VarBytes no longer
// copies), which is safe because inbound frame buffers are immutable by
// the transport contract — and anything the engine retains past the
// delivery must be detached with an explicit copy.

import (
	"bytes"
	"math/rand"
	"testing"

	"svssba/internal/core"
	"svssba/internal/proto"
	"svssba/internal/rb"
	"svssba/internal/sim"
)

// dropCtx is a sim.Context that discards sends.
type dropCtx struct{ n, t int }

func (dropCtx) Send(sim.ProcID, sim.Payload) {}
func (c dropCtx) N() int                     { return c.n }
func (c dropCtx) T() int                     { return c.t }
func (dropCtx) Now() int64                   { return 0 }
func (dropCtx) Rand() *rand.Rand             { return rand.New(rand.NewSource(1)) }

// TestMsgDecodeAliasesFrame pins that decoding is zero-copy: mutating
// the frame buffer after the decode must show through the decoded
// value. If this test fails because the value stopped following the
// buffer, the hot path regressed to copying — delete the test only
// with a measured justification.
func TestMsgDecodeAliasesFrame(t *testing.T) {
	codec := core.NewCodec()
	orig := rb.Msg{Origin: 3, Tag: proto.Tag{Proto: proto.ProtoRB}, Value: []byte("zero-copy-value")}
	enc, err := codec.Encode(orig)
	if err != nil {
		t.Fatal(err)
	}
	p, err := codec.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := p.(rb.Msg)
	if !ok {
		t.Fatalf("decoded %T, want rb.Msg", p)
	}
	if !bytes.Equal(m.Value, orig.Value) {
		t.Fatalf("decoded value %q != %q", m.Value, orig.Value)
	}
	for i := range enc {
		enc[i] ^= 0xff
	}
	if bytes.Equal(m.Value, orig.Value) {
		t.Fatal("decoded value survived frame mutation; decode copies instead of aliasing")
	}
}

// TestAcceptValueDetached drives one RB instance to acceptance with
// values aliasing per-delivery buffers that are mutated after each
// handled message — the worst legal case under the zero-copy decode.
// The accepted value must come out intact: the engine owns (copies)
// what it hands to onAccept.
func TestAcceptValueDetached(t *testing.T) {
	const n, tt = 4, 1
	var got []byte
	e := rb.New(1, func(_ sim.Context, a rb.Accept) { got = append([]byte(nil), a.Value...) })
	var ctx sim.Context = dropCtx{n: n, t: tt}

	want := []byte("detached-accept-value")
	tag := proto.Tag{Proto: proto.ProtoRB, Step: 1, A: 9}
	// n−t = 3 echoes from distinct peers accept the value. Each delivery
	// uses its own buffer, scribbled over right after the handler runs —
	// the frame's lifetime ends when the delivery returns.
	for from := sim.ProcID(2); from <= 4; from++ {
		buf := append([]byte(nil), want...)
		m := rb.Msg{Origin: 2, Tag: tag, Value: buf}
		e.Handle(ctx, sim.Message{From: from, To: 1, Payload: m})
		for i := range buf {
			buf[i] = 0xee
		}
	}
	if got == nil {
		t.Fatal("value never accepted")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("accepted value corrupted by post-delivery buffer reuse: %q", got)
	}
}
