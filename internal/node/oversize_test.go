package node

// White-box regression tests for the oversized-payload hole: a lone
// payload bigger than maxBatchFrameBytes used to fall through every
// send path unchecked (the batch splitter routes 1-payload chunks to
// sendOne, which had no size bound), producing exactly the poison frame
// the TCP transport's reconnecting dialer would retransmit forever.

import (
	"math/rand"
	"testing"
	"time"

	"svssba/internal/core"
	"svssba/internal/proto"
	"svssba/internal/rb"
	"svssba/internal/sim"
	"svssba/internal/transport"
)

// testSendPair builds node 1 on a 2-endpoint mesh and returns its send
// context plus endpoint 2's receive side.
func testSendPair(t *testing.T) (*runCtx, transport.Transport) {
	t.Helper()
	mesh := transport.NewMesh(2)
	ep1, err := mesh.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := mesh.Endpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep1.Start(); err != nil {
		t.Fatal(err)
	}
	if err := ep2.Start(); err != nil {
		t.Fatal(err)
	}
	nd, err := New(Config{ID: 1, N: 2, Seed: 1, Codec: core.NewCodec()}, ep1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ep1.Close(); ep2.Close() })
	return &runCtx{n: nd, tr: ep1, rnd: rand.New(rand.NewSource(1)), sh: nd.shards[0]}, ep2
}

// bigMsg is a payload whose standalone frame exceeds the cap — the
// shape a Byzantine peer can bait the stack into minting.
func bigMsg() rb.Msg {
	return rb.Msg{Origin: 1, Tag: proto.Tag{Proto: proto.ProtoRB}, Value: make([]byte, maxBatchFrameBytes)}
}

func expectFrame(t *testing.T, tr transport.Transport) transport.Frame {
	t.Helper()
	select {
	case f := <-tr.Recv():
		return f
	case <-time.After(5 * time.Second):
		t.Fatal("expected a frame, got none")
		return transport.Frame{}
	}
}

func expectNoFrame(t *testing.T, tr transport.Transport) {
	t.Helper()
	select {
	case f := <-tr.Recv():
		t.Fatalf("unexpected %d-byte frame crossed the transport", len(f.Data))
	case <-time.After(100 * time.Millisecond):
	}
}

// TestSendOneDropsOversizedPayload pins the single-frame path: the
// oversized payload is dropped with an error and a counter, and the
// link keeps working for sane traffic.
func TestSendOneDropsOversizedPayload(t *testing.T) {
	ctx, ep2 := testSendPair(t)
	nd := ctx.n

	ctx.sendOne(2, bigMsg())
	expectNoFrame(t, ep2)
	st := nd.Stats()
	if st.OversizedDropped != 1 {
		t.Fatalf("OversizedDropped = %d, want 1", st.OversizedDropped)
	}
	if st.SentFrames != 0 || st.Sent != 0 {
		t.Fatalf("oversized payload was counted as sent: frames=%d msgs=%d", st.SentFrames, st.Sent)
	}
	if len(nd.Errs()) != 1 {
		t.Fatalf("want 1 recorded error, got %v", nd.Errs())
	}

	// The link is not wedged: a normal payload still crosses.
	ctx.sendOne(2, rb.Msg{Origin: 1, Tag: proto.Tag{Proto: proto.ProtoRB}, Value: []byte("ok")})
	f := expectFrame(t, ep2)
	if len(f.Data) > 1024 {
		t.Fatalf("follow-up frame unexpectedly large: %d bytes", len(f.Data))
	}
	if st := nd.Stats(); st.SentFrames != 1 {
		t.Fatalf("SentFrames = %d, want 1", st.SentFrames)
	}
}

// TestFlushOutboxDropsOversizedSingleton pins the batching path: the
// splitter isolates the oversized payload into a 1-payload chunk, which
// must be dropped, while the rest of the burst still ships.
func TestFlushOutboxDropsOversizedSingleton(t *testing.T) {
	ctx, ep2 := testSendPair(t)
	nd := ctx.n
	ctx.ob = sim.NewCoalescer[sim.Payload](2)

	ctx.Send(2, bigMsg())
	ctx.Send(2, rb.Msg{Origin: 1, Tag: proto.Tag{Proto: proto.ProtoRB}, Value: []byte("survives")})
	ctx.flushOutbox()

	f := expectFrame(t, ep2)
	if max := maxBatchFrameBytes; len(f.Data) > max {
		t.Fatalf("flushed frame is %d bytes, over the %d cap", len(f.Data), max)
	}
	expectNoFrame(t, ep2)
	st := nd.Stats()
	if st.OversizedDropped != 1 {
		t.Fatalf("OversizedDropped = %d, want 1", st.OversizedDropped)
	}
	if st.SentFrames != 1 || st.Sent != 1 {
		t.Fatalf("want exactly the small payload sent: frames=%d msgs=%d", st.SentFrames, st.Sent)
	}
}
