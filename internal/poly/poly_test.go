package poly

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"svssba/internal/field"
)

func TestEvalKnown(t *testing.T) {
	// p(x) = 3 + 2x + x^2
	p := FromCoefficients([]field.Element{field.New(3), field.New(2), field.New(1)})
	tests := []struct {
		giveX uint64
		want  field.Element
	}{
		{giveX: 0, want: field.New(3)},
		{giveX: 1, want: field.New(6)},
		{giveX: 2, want: field.New(11)},
		{giveX: 10, want: field.New(123)},
	}
	for _, tt := range tests {
		if got := p.EvalUint(tt.giveX); got != tt.want {
			t.Errorf("p(%d) = %v, want %v", tt.giveX, got, tt.want)
		}
	}
}

func TestNewRandomFixesSecret(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for deg := 0; deg < 8; deg++ {
		s := field.Rand(r)
		p := NewRandom(r, deg, s)
		if p.Secret() != s {
			t.Errorf("degree %d: secret = %v, want %v", deg, p.Secret(), s)
		}
		if p.Degree() != deg {
			t.Errorf("degree = %d, want %d", p.Degree(), deg)
		}
	}
}

func TestInterpolateRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for deg := 0; deg < 10; deg++ {
		p := NewRandom(r, deg, field.Rand(r))
		pts := make([]Point, deg+1)
		for i := range pts {
			x := field.New(uint64(i + 7))
			pts[i] = Point{X: x, Y: p.Eval(x)}
		}
		q, err := Interpolate(pts)
		if err != nil {
			t.Fatalf("interpolate: %v", err)
		}
		if !p.Equal(q) {
			t.Errorf("degree %d: round trip mismatch\n p=%v\n q=%v", deg, p, q)
		}
	}
}

func TestInterpolateErrors(t *testing.T) {
	if _, err := Interpolate(nil); !errors.Is(err, ErrNotEnoughPoints) {
		t.Errorf("empty: err = %v, want ErrNotEnoughPoints", err)
	}
	dup := []Point{{X: field.New(1), Y: field.New(2)}, {X: field.New(1), Y: field.New(3)}}
	if _, err := Interpolate(dup); !errors.Is(err, ErrDuplicateX) {
		t.Errorf("dup: err = %v, want ErrDuplicateX", err)
	}
}

func TestInterpolateDegreeConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	p := NewRandom(r, 3, field.New(42))
	pts := make([]Point, 8)
	for i := range pts {
		x := field.New(uint64(i + 1))
		pts[i] = Point{X: x, Y: p.Eval(x)}
	}

	got, ok, err := InterpolateDegree(pts, 3)
	if err != nil || !ok {
		t.Fatalf("consistent points rejected: ok=%v err=%v", ok, err)
	}
	if !got.Equal(p) {
		t.Error("reconstructed polynomial differs")
	}

	// Corrupt one surplus point: must be detected.
	pts[7].Y = pts[7].Y.Add(field.One)
	if _, ok, err := InterpolateDegree(pts, 3); err != nil || ok {
		t.Errorf("corrupted surplus point accepted: ok=%v err=%v", ok, err)
	}

	if _, _, err := InterpolateDegree(pts[:3], 3); !errors.Is(err, ErrNotEnoughPoints) {
		t.Errorf("too few points: err = %v, want ErrNotEnoughPoints", err)
	}
}

func TestEvalRangeMatchesEval(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	p := NewRandom(r, 4, field.Rand(r))
	vals := p.EvalRange(9)
	for i, v := range vals {
		if want := p.EvalUint(uint64(i + 1)); v != want {
			t.Errorf("EvalRange[%d] = %v, want %v", i, v, want)
		}
	}
}

func TestInterpolateFromShares(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	p := NewRandom(r, 2, field.New(99))
	shares := p.EvalRange(3)
	q, err := InterpolateFromShares(shares, 2)
	if err != nil {
		t.Fatalf("InterpolateFromShares: %v", err)
	}
	if !q.Equal(p) {
		t.Error("share round trip mismatch")
	}
	// Inconsistent shares must error.
	bad := p.EvalRange(4)
	bad[3] = bad[3].Add(field.One)
	if _, err := InterpolateFromShares(bad, 2); err == nil {
		t.Error("inconsistent shares accepted")
	}
}

func TestBivariateSecretAndEval(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	s := field.New(1234)
	b := NewRandomBivariate(r, 3, s)
	if b.Secret() != s {
		t.Errorf("secret = %v, want %v", b.Secret(), s)
	}
	if got := b.EvalUint(0, 0); got != s {
		t.Errorf("f(0,0) = %v, want %v", got, s)
	}
}

func TestBivariateRowColConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	b := NewRandomBivariate(r, 4, field.Rand(r))
	for j := uint64(1); j <= 6; j++ {
		g := b.Row(j) // g_j(y) = f(j, y)
		h := b.Col(j) // h_j(x) = f(x, j)
		for k := uint64(0); k <= 6; k++ {
			if got, want := g.EvalUint(k), b.EvalUint(j, k); got != want {
				t.Fatalf("g_%d(%d) = %v, want f(%d,%d)=%v", j, k, got, j, k, want)
			}
			if got, want := h.EvalUint(k), b.EvalUint(k, j); got != want {
				t.Fatalf("h_%d(%d) = %v, want f(%d,%d)=%v", j, k, got, k, j, want)
			}
		}
	}
}

// The SVSS cross-check invariant: h_k(l) = f(l,k) = g_l(k) for all k,l.
func TestBivariateCrossCheckInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	b := NewRandomBivariate(r, 2, field.Rand(r))
	for k := uint64(1); k <= 5; k++ {
		for l := uint64(1); l <= 5; l++ {
			hk := b.Col(k)
			gl := b.Row(l)
			if hk.EvalUint(l) != gl.EvalUint(k) {
				t.Fatalf("h_%d(%d) != g_%d(%d)", k, l, l, k)
			}
		}
	}
}

func TestQuickPolyProperties(t *testing.T) {
	type gen struct {
		deg    int
		secret field.Element
		seed   int64
	}
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(gen{
				deg:    1 + r.Intn(6),
				secret: field.Rand(r),
				seed:   r.Int63(),
			})
		},
	}

	t.Run("InterpolationIsIdentityOnSharePoints", func(t *testing.T) {
		if err := quick.Check(func(g gen) bool {
			r := rand.New(rand.NewSource(g.seed))
			p := NewRandom(r, g.deg, g.secret)
			shares := p.EvalRange(g.deg + 1)
			q, err := InterpolateFromShares(shares, g.deg)
			return err == nil && q.Equal(p) && q.Secret() == g.secret
		}, cfg); err != nil {
			t.Error(err)
		}
	})

	t.Run("AnyTPlus1PointsDetermineSecret", func(t *testing.T) {
		if err := quick.Check(func(g gen) bool {
			r := rand.New(rand.NewSource(g.seed))
			p := NewRandom(r, g.deg, g.secret)
			// pick deg+1 random distinct nonzero x values
			xs := r.Perm(20)[:g.deg+1]
			pts := make([]Point, 0, g.deg+1)
			for _, x := range xs {
				fx := field.New(uint64(x + 1))
				pts = append(pts, Point{X: fx, Y: p.Eval(fx)})
			}
			q, err := Interpolate(pts)
			return err == nil && q.Secret() == g.secret
		}, cfg); err != nil {
			t.Error(err)
		}
	})

	t.Run("BivariateRowsLieOnSurface", func(t *testing.T) {
		if err := quick.Check(func(g gen) bool {
			r := rand.New(rand.NewSource(g.seed))
			b := NewRandomBivariate(r, g.deg, g.secret)
			j := uint64(1 + r.Intn(10))
			k := uint64(1 + r.Intn(10))
			return b.Row(j).EvalUint(k) == b.EvalUint(j, k) &&
				b.Col(j).EvalUint(k) == b.EvalUint(k, j)
		}, cfg); err != nil {
			t.Error(err)
		}
	})

	t.Run("SecretRecoverableFromRowConstants", func(t *testing.T) {
		// f(0,0) is the constant term of the polynomial x -> f(x,0),
		// which interpolates from the row secrets g_j(0) = f(j,0).
		if err := quick.Check(func(g gen) bool {
			r := rand.New(rand.NewSource(g.seed))
			b := NewRandomBivariate(r, g.deg, g.secret)
			pts := make([]Point, g.deg+1)
			for i := range pts {
				j := uint64(i + 1)
				pts[i] = Point{X: field.New(j), Y: b.Row(j).Secret()}
			}
			q, err := Interpolate(pts)
			return err == nil && q.Secret() == g.secret
		}, cfg); err != nil {
			t.Error(err)
		}
	})
}

func BenchmarkInterpolateDeg10(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	p := NewRandom(r, 10, field.Rand(r))
	pts := make([]Point, 11)
	for i := range pts {
		x := field.New(uint64(i + 1))
		pts[i] = Point{X: x, Y: p.Eval(x)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Interpolate(pts); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBivariateFromRowsRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for deg := 1; deg <= 5; deg++ {
		b := NewRandomBivariate(r, deg, field.Rand(r))
		xs := make([]field.Element, deg+1)
		rows := make([]Poly, deg+1)
		for i := 0; i <= deg; i++ {
			j := uint64(i + 2) // arbitrary distinct row indices
			xs[i] = field.New(j)
			rows[i] = b.Row(j)
		}
		got, err := BivariateFromRows(xs, rows, deg)
		if err != nil {
			t.Fatalf("deg %d: %v", deg, err)
		}
		if !got.Equal(b) {
			t.Errorf("deg %d: reconstruction mismatch", deg)
		}
	}
}

func TestBivariateFromRowsWrongCount(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	b := NewRandomBivariate(r, 2, field.Rand(r))
	xs := []field.Element{field.New(1)}
	rows := []Poly{b.Row(1)}
	if _, err := BivariateFromRows(xs, rows, 2); err == nil {
		t.Error("accepted too few rows")
	}
}

func TestBivariateEqual(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	a := NewRandomBivariate(r, 2, field.New(5))
	if !a.Equal(a) {
		t.Error("not self-equal")
	}
	b := NewRandomBivariate(r, 2, field.New(5))
	if a.Equal(b) {
		t.Error("distinct random polys compare equal")
	}
	c := NewRandomBivariate(r, 3, field.New(5))
	if a.Equal(c) {
		t.Error("different degrees compare equal")
	}
}
