package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.count") != c {
		t.Fatal("re-registering a counter must return the same instrument")
	}
	g := r.Gauge("a.gauge")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	r.GaugeFunc("a.fn", func() int64 { return 42 })
	s := r.Snapshot()
	if s.Counters["a.count"] != 5 || s.Gauges["a.gauge"] != 4 || s.Gauges["a.fn"] != 42 {
		t.Fatalf("snapshot mismatch: %+v", s)
	}
}

func TestNameKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering gauge under a counter name")
		}
	}()
	r.Gauge("x")
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{10, 100, 1000})
	for i := int64(1); i <= 100; i++ {
		h.Observe(i) // 1..100: 10 in bucket0, 90 in bucket1
	}
	h.Observe(5000) // overflow
	s := h.snapshot()
	if s.Count != 101 || s.Max != 5000 {
		t.Fatalf("count=%d max=%d", s.Count, s.Max)
	}
	want := []int64{10, 90, 0, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	p50 := s.Quantile(0.50)
	if p50 < 10 || p50 > 100 {
		t.Fatalf("p50 = %v, want within (10,100]", p50)
	}
	if m := s.Mean(); math.Abs(m-float64(s.Sum)/101) > 1e-9 {
		t.Fatalf("mean = %v", m)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

func TestExpBucketsStrictlyIncreasing(t *testing.T) {
	b := ExpBuckets(1, 1.3, 30)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %v", i, b)
		}
	}
}

// TestConcurrentWritersAndSnapshotReader is the -race coverage the
// registry needs: hammer counters and a histogram from several
// goroutines (standing in for delivery goroutines) while a reader
// snapshots continuously, then verify totals.
func TestConcurrentWritersAndSnapshotReader(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	h := r.Histogram("obs", ExpBuckets(1, 2, 16))
	r.GaugeFunc("live", func() int64 { return c.Value() })

	const writers = 8
	const perWriter = 5000
	stop := make(chan struct{})
	var readerDone sync.WaitGroup
	readerDone.Add(1)
	go func() { // snapshot reader racing the writers
		defer readerDone.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := r.Snapshot()
			hs := s.Histograms["obs"]
			var bucketSum int64
			for _, n := range hs.Counts {
				bucketSum += n
			}
			// Observe bumps the bucket before the total, and snapshot
			// reads the total before the buckets — so the bucket sum may
			// run ahead of the total mid-update, but never behind it.
			if bucketSum < hs.Count {
				t.Errorf("bucket sum %d behind count %d", bucketSum, hs.Count)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				h.Observe(int64(w*perWriter + i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readerDone.Wait()

	if got := c.Value(); got != writers*perWriter {
		t.Fatalf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := h.Count(); got != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", got, writers*perWriter)
	}
}

func TestSnapshotJSONWellFormed(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(-1)
	r.Histogram("h", []int64{1, 2}).Observe(1)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v\n%s", err, buf.String())
	}
	if back.Counters["c"] != 3 || back.Gauges["g"] != -1 || back.Histograms["h"].Count != 1 {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench", ExpBuckets(1, 2, 24))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 0xffff))
	}
}
