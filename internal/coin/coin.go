// Package coin implements the Shunning Common Coin (SCC) of paper §5
// (Definition 2): a protocol in which every invocation either behaves as
// a (1/4, 1/4)-common coin — for each σ ∈ {0,1}, with probability at
// least 1/4 all nonfaulty processes output σ — or causes some nonfaulty
// process to shun a newly detected faulty process. Since shunning can
// happen at most t(n−t) times, only O(n²) coin invocations can ever
// fail, which is what makes the agreement protocol almost-surely
// terminating with polynomial expected round count.
//
// Construction (the Canetti–Rabin coin, with the paper's SVSS
// substituted for AVSS so detections accumulate across invocations):
//
//  1. For a coin round r, every process i SVSS-shares n lottery secrets
//     s_{i,1..n} drawn from [0, n^4); s_{i,j} is "attached to" process j.
//  2. When the first t+1 sharings attached to itself complete, process j
//     reliably broadcasts its attach set A_j (t+1 dealers). Process j's
//     lottery value is V_j = Σ_{k∈A_j} s_{k,j} mod n^4 — fixed by SVSS
//     Binding when the sharings completed, uniform and unknown to the
//     adversary by SVSS Hiding (A_j contains at least one honest dealer).
//  3. Process i "verifies" j once it received A_j and locally completed
//     the share phases of all sharings in A_j. Verified parties feed the
//     three-round gather protocol, whose outputs contain a large common
//     core fixed before any reconstruction starts.
//  4. On gather output U_i, process i broadcasts a reconstruct
//     announcement (so every honest process joins the reconstructions —
//     SVSS Termination requires all nonfaulty to begin R) and
//     reconstructs V_j for every j ∈ U_i. It outputs the parity of the
//     minimum (V_j, j) pair. If the global minimum lands in the common
//     core (probability ≥ (n−t)/n), all processes output the same
//     parity; the parity is uniform, giving ≥ 1/4 per value of σ.
//
// A ⊥ sub-output (possible only when binding was broken, i.e. a shun
// already happened) excludes that party from the minimum; such rounds
// fall under the second clause of SCC Correctness.
package coin

import (
	"sort"

	"svssba/internal/field"
	"svssba/internal/gather"
	"svssba/internal/intern"
	"svssba/internal/proto"
	"svssba/internal/sim"
	"svssba/internal/svss"
)

// Broadcast steps (Proto = proto.ProtoCoin; Tag.A carries the round).
const (
	// StepAttach announces a process's attach set A_j.
	StepAttach uint8 = 1
	// StepRecon announces a gather output, instructing everyone to join
	// the reconstructions it references.
	StepRecon uint8 = 2
)

// Host is what the engine needs from its process.
type Host interface {
	Self() sim.ProcID
	Broadcast(ctx sim.Context, tag proto.Tag, value []byte)
}

// SVSSPort is the slice of the SVSS engine the coin drives.
type SVSSPort interface {
	Share(ctx sim.Context, sid proto.SessionID, secret field.Element) error
	ShareVec(ctx sim.Context, sid proto.SessionID, secrets []field.Element) error
	Reconstruct(ctx sim.Context, sid proto.SessionID)
	ReconstructSlot(ctx sim.Context, sid proto.SessionID, slot int)
	ReconstructSlots(ctx sim.Context, sid proto.SessionID, slots []int)
}

// Supply is a source of pre-dealt batched lottery sharings covering coin
// rounds 1..Rounds(). For those rounds the engine consumes slots from
// the supply instead of dealing per-round sessions; rounds beyond
// Rounds() fall back to classic self-dealing (the mode of a round is a
// pure function of its number, so all processes agree on it without
// communication). Implementations: the engine's own self-batch (sim
// mode, EnableSelfBatch) and the cross-session pool consumer
// (internal/coinpool).
type Supply interface {
	// Rounds is the number of coin rounds the supply covers (fixed).
	Rounds() int
	// EnsureDealt makes this process deal its own batch if it has not
	// yet (idempotent; a pool supply that dealt ahead of demand no-ops).
	EnsureDealt(ctx sim.Context)
	// DoneOrder lists dealers whose batch sharings completed locally, in
	// completion order.
	DoneOrder() []sim.ProcID
	// Reconstruct opens the slots holding dealer k's secrets attached to
	// the given targets in round r, as one grouped request (the targets
	// of one coin pass map to adjacent slots, which the layers below
	// reveal together). Implementations must hand out each slot at most
	// once (one-shot handout), skipping — and counting — repeats.
	Reconstruct(ctx sim.Context, k sim.ProcID, r uint64, targets []sim.ProcID)
}

// CoinFunc receives the coin output for a round.
type CoinFunc func(ctx sim.Context, round uint64, bit int)

// SessionFor returns the SVSS session id of dealer k's secret attached
// to target j in coin round r (classic, unbatched dealing).
func SessionFor(k sim.ProcID, r uint64, j sim.ProcID) proto.SessionID {
	return proto.SessionID{Dealer: k, Kind: proto.KindCoin, Round: r, Index: uint32(j)}
}

// BatchSessionFor returns dealer k's batched coin dealing session. The
// id is disjoint from every classic coin session: classic ids carry the
// attach target in Index (1..n), batched ids use Index 0.
func BatchSessionFor(k sim.ProcID) proto.SessionID {
	return proto.SessionID{Dealer: k, Kind: proto.KindCoin, Round: 0, Index: 0}
}

// BatchSlot flattens (round r, target j) into the batch slot index of a
// batched dealing covering rounds 1..R: slot = (r-1)*n + j-1, so one
// batch carries R*n secrets in round-major order.
func BatchSlot(n int, r uint64, j sim.ProcID) int {
	return (int(r)-1)*n + int(j) - 1
}

// BatchWidth is the secret count of a batched dealing covering rounds
// 1..rounds of an n-process system.
func BatchWidth(n, rounds int) int { return rounds * n }

// round holds one coin round's state, dense per process: sets of
// parties are bitsets and per-party collections are slices indexed by
// process id (1..n). Per-(dealer, target) session state packs into a
// flat n×n index ((dealer-1)*n + target-1), so the delivery path does
// no map operations beyond the uint64 round lookup.
type round struct {
	r       uint64
	started bool
	batch   bool // lottery secrets come from the batch supply

	// completion order of dealers per target (share phases done locally)
	doneDealers [][]sim.ProcID // index: target
	doneSet     intern.Bits    // (dealer-1)*n + target-1

	attachSent bool
	attach     [][]sim.ProcID // accepted attach sets (index: origin)
	attachSet  intern.ProcSet
	verified   intern.ProcSet

	gathered   []sim.ProcID
	haveGather bool

	reconTargets intern.ProcSet // targets whose sessions to open
	reconStarted intern.ProcSet // targets we invoked R for
	outs         []svss.Output  // (dealer-1)*n + target-1
	outSet       intern.Bits

	done bool
	bit  int
}

// Engine runs the common-coin protocol; one instance per process serves
// all rounds.
type Engine struct {
	host   Host
	sv     SVSSPort
	gat    *gather.Engine
	onCoin CoinFunc
	rounds map[uint64]*round
	n      int // system size, captured from the first ctx

	supply Supply     // nil: every round deals classically
	selfB  *selfBatch // non-nil iff supply is the in-stack self-batch
}

// New returns a coin engine. The gather engine's broadcasts must be
// routed to Gather().OnBroadcast, SVSS completion events for KindCoin
// sessions to OnSVSSShareComplete/OnSVSSReconComplete, and ProtoCoin
// broadcasts to OnBroadcast (core.NewStack wires all of this).
func New(host Host, sv SVSSPort, onCoin CoinFunc) *Engine {
	e := &Engine{
		host:   host,
		sv:     sv,
		onCoin: onCoin,
		rounds: make(map[uint64]*round),
	}
	e.gat = gather.New(host, e.onGather)
	return e
}

// Gather exposes the inner gather engine for broadcast routing.
func (e *Engine) Gather() *gather.Engine { return e.gat }

func (e *Engine) round(ctx sim.Context, r uint64) *round {
	rd, ok := e.rounds[r]
	if !ok {
		if e.n == 0 {
			e.n = ctx.N()
		}
		rd = &round{
			r:           r,
			doneDealers: make([][]sim.ProcID, e.n+1),
			attach:      make([][]sim.ProcID, e.n+1),
		}
		rd.batch = e.supply != nil && r >= 1 && r <= uint64(e.supply.Rounds())
		e.rounds[r] = rd
		if rd.batch {
			// Seed from dealings that completed before this round opened.
			for _, k := range e.supply.DoneOrder() {
				e.markBatchDealer(rd, k)
			}
		}
	}
	return rd
}

// markBatchDealer records that dealer k's batched sharing is complete:
// in a batch round every (k, target) lottery session is done at once.
func (e *Engine) markBatchDealer(rd *round, k sim.ProcID) {
	for j := 1; j <= e.n; j++ {
		si := e.sessIdx(k, sim.ProcID(j))
		if si >= 0 && rd.doneSet.Add(si) {
			rd.doneDealers[j] = append(rd.doneDealers[j], k)
		}
	}
}

// sessIdx flattens a (dealer, target) pair of round r into the dense
// session index, or -1 when either id is outside 1..n (nothing outside
// that range is ever read back: attach sets and gather outputs are
// decode-validated, so bogus sessions a Byzantine process completes
// cannot appear in any quorum this engine evaluates).
func (e *Engine) sessIdx(dealer, target sim.ProcID) int {
	if dealer < 1 || int(dealer) > e.n || target < 1 || int(target) > e.n {
		return -1
	}
	return (int(dealer)-1)*e.n + int(target) - 1
}

// Done reports whether the round's coin has been output locally.
func (e *Engine) Done(r uint64) bool {
	rd, ok := e.rounds[r]
	return ok && rd.done
}

// Rounds returns the number of live round records (retirement tests).
func (e *Engine) Rounds() int { return len(e.rounds) }

// Reset drops every coin round, the inner gather engine's rounds, and
// any self-batch dealing state. Used when the owning stack retires.
func (e *Engine) Reset() {
	clear(e.rounds)
	e.gat.Reset()
	if e.selfB != nil {
		e.selfB = &selfBatch{eng: e, rounds: e.selfB.rounds}
		e.supply = e.selfB
	}
}

// Bit returns the coin output for a finished round.
func (e *Engine) Bit(r uint64) (int, bool) {
	rd, ok := e.rounds[r]
	if !ok || !rd.done {
		return 0, false
	}
	return rd.bit, true
}

// lotteryMod returns u = n^4, the lottery range.
func lotteryMod(n int) uint64 {
	u := uint64(n)
	return u * u * u * u
}

// Start begins coin round r: share one lottery secret attached to every
// process (step 1), or — in a batch round — ensure the batched dealing
// is underway and consume its slots. Idempotent.
func (e *Engine) Start(ctx sim.Context, r uint64) {
	rd := e.round(ctx, r)
	if rd.started {
		return
	}
	rd.started = true
	if rd.batch {
		e.supply.EnsureDealt(ctx)
	} else {
		u := lotteryMod(ctx.N())
		for j := 1; j <= ctx.N(); j++ {
			secret := field.New(uint64(ctx.Rand().Int63n(int64(u))))
			// Errors cannot occur: we are the dealer and the session is new.
			_ = e.sv.Share(ctx, SessionFor(e.host.Self(), r, sim.ProcID(j)), secret)
		}
	}
	e.advance(ctx, rd)
}

// SetSupply installs a batch supply covering coin rounds 1..s.Rounds().
// Call before the run starts; all processes of a run must agree on the
// supply's round count (round mode is a pure function of round number).
func (e *Engine) SetSupply(s Supply) { e.supply = s }

// EnableSelfBatch installs the in-stack self-batch supply: this process
// deals ONE batched SVSS session of rounds*n lottery secrets the first
// time a batch round starts, and coin rounds 1..rounds consume its
// slots. The n+2n² MW quorum setup is paid once instead of rounds*n
// times. Sim-mode counterpart of the cross-session pool.
func (e *Engine) EnableSelfBatch(rounds int) {
	e.selfB = &selfBatch{eng: e, rounds: rounds}
	e.supply = e.selfB
}

// OnBatchShareDone feeds a batch-dealing share completion (dealer k)
// into every batch round. External supplies (the pool) call this; the
// self-batch routes through it too.
func (e *Engine) OnBatchShareDone(ctx sim.Context, k sim.ProcID) {
	e.forEachBatchRound(ctx, func(rd *round) { e.markBatchDealer(rd, k) })
}

// OnBatchRecon feeds a reconstructed batch slot (dealer k, round r,
// target j) into the round, exactly like a classic per-session
// reconstruction output.
func (e *Engine) OnBatchRecon(ctx sim.Context, k sim.ProcID, r uint64, j sim.ProcID, out svss.Output) {
	rd := e.round(ctx, r)
	si := e.sessIdx(k, j)
	if si < 0 || !rd.outSet.Add(si) {
		return
	}
	if rd.outs == nil {
		rd.outs = make([]svss.Output, e.n*e.n)
	}
	rd.outs[si] = out
	e.advance(ctx, rd)
}

// forEachBatchRound applies fn to every live batch round and advances
// it, in ascending round order (determinism: advance sends).
func (e *Engine) forEachBatchRound(ctx sim.Context, fn func(rd *round)) {
	rs := make([]uint64, 0, len(e.rounds))
	for r, rd := range e.rounds {
		if rd.batch {
			rs = append(rs, r)
		}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
	for _, r := range rs {
		rd := e.rounds[r]
		fn(rd)
		e.advance(ctx, rd)
	}
}

// selfBatch is the in-stack Supply: one batched dealing per process
// covering rounds 1..rounds, dealt lazily on first demand.
type selfBatch struct {
	eng    *Engine
	rounds int
	dealt  bool
	order  []sim.ProcID // dealers in local batch share-completion order
	done   intern.ProcSet
	handed intern.Bits // one-shot handout: (dealer-1)*width + slot
	reused uint64      // slots requested twice (bug counter; must stay 0)
}

// Rounds implements Supply.
func (s *selfBatch) Rounds() int { return s.rounds }

// EnsureDealt implements Supply: deal our batch of rounds*n lottery
// secrets, slot-major by round then target (BatchSlot order).
func (s *selfBatch) EnsureDealt(ctx sim.Context) {
	if s.dealt {
		return
	}
	s.dealt = true
	u := lotteryMod(ctx.N())
	secrets := make([]field.Element, BatchWidth(ctx.N(), s.rounds))
	for i := range secrets {
		secrets[i] = field.New(uint64(ctx.Rand().Int63n(int64(u))))
	}
	// Errors cannot occur: we are the dealer and the session is new.
	_ = s.eng.sv.ShareVec(ctx, BatchSessionFor(s.eng.host.Self()), secrets)
}

// DoneOrder implements Supply.
func (s *selfBatch) DoneOrder() []sim.ProcID { return s.order }

// Reconstruct implements Supply: open the slots of dealer k's batch
// attached to the given targets, asserting the one-shot handout (no
// slot is ever opened twice).
func (s *selfBatch) Reconstruct(ctx sim.Context, k sim.ProcID, r uint64, targets []sim.ProcID) {
	n := ctx.N()
	slots := make([]int, 0, len(targets))
	for _, j := range targets {
		slot := BatchSlot(n, r, j)
		idx := (int(k)-1)*BatchWidth(n, s.rounds) + slot
		if !s.handed.Add(idx) {
			s.reused++
			continue
		}
		slots = append(slots, slot)
	}
	if len(slots) > 0 {
		s.eng.sv.ReconstructSlots(ctx, BatchSessionFor(k), slots)
	}
}

// markDone records dealer k's batch share completion.
func (s *selfBatch) markDone(k sim.ProcID) bool {
	if !s.done.Add(k) {
		return false
	}
	s.order = append(s.order, k)
	return true
}

// SlotReuses returns the count of one-shot-handout violations observed
// by the self-batch supply (must be zero; asserted by tests).
func (e *Engine) SlotReuses() uint64 {
	if e.selfB == nil {
		return 0
	}
	return e.selfB.reused
}

func tag(r uint64, step uint8) proto.Tag {
	return proto.Tag{Proto: proto.ProtoCoin, Step: step, A: uint32(r)}
}

// OnSVSSShareComplete records a locally completed coin sharing (dealer
// sid.Dealer, target sid.Index; Index 0 is a batched dealing).
func (e *Engine) OnSVSSShareComplete(ctx sim.Context, sid proto.SessionID) {
	if sid.Index == 0 {
		if e.selfB != nil && e.selfB.markDone(sid.Dealer) {
			e.OnBatchShareDone(ctx, sid.Dealer)
		}
		return
	}
	rd := e.round(ctx, sid.Round)
	target := sim.ProcID(sid.Index)
	si := e.sessIdx(sid.Dealer, target)
	if si < 0 || !rd.doneSet.Add(si) {
		return
	}
	rd.doneDealers[target] = append(rd.doneDealers[target], sid.Dealer)
	e.advance(ctx, rd)
}

// OnSVSSReconComplete records a reconstructed lottery share. For a
// batched dealing (Index 0) the slot decodes to (round, target); for
// classic sessions slot is always 0 and the id carries both.
func (e *Engine) OnSVSSReconComplete(ctx sim.Context, sid proto.SessionID, slot int, out svss.Output) {
	if sid.Index == 0 {
		if e.selfB == nil || e.n == 0 {
			return
		}
		r := uint64(slot/e.n) + 1
		j := sim.ProcID(slot%e.n) + 1
		e.OnBatchRecon(ctx, sid.Dealer, r, j, out)
		return
	}
	rd := e.round(ctx, sid.Round)
	si := e.sessIdx(sid.Dealer, sim.ProcID(sid.Index))
	if si < 0 || !rd.outSet.Add(si) {
		return
	}
	if rd.outs == nil {
		rd.outs = make([]svss.Output, e.n*e.n)
	}
	rd.outs[si] = out
	e.advance(ctx, rd)
}

// OnBroadcast handles attach and reconstruct announcements.
func (e *Engine) OnBroadcast(ctx sim.Context, origin sim.ProcID, t proto.Tag, value []byte) {
	rd := e.round(ctx, uint64(t.A))
	switch t.Step {
	case StepAttach:
		if rd.attachSet.Has(origin) {
			return
		}
		set, ok := decodeProcs(value, ctx.N())
		if !ok || len(set) != ctx.T()+1 {
			return
		}
		rd.attachSet.Add(origin)
		rd.attach[origin] = set
	case StepRecon:
		set, ok := decodeProcs(value, ctx.N())
		if !ok {
			return
		}
		for _, j := range set {
			rd.reconTargets.Add(j)
		}
	default:
		return
	}
	e.advance(ctx, rd)
}

// advance re-evaluates the monotone conditions of a round.
func (e *Engine) advance(ctx sim.Context, rd *round) {
	self := e.host.Self()
	t := ctx.T()

	// Step 2: announce our attach set after t+1 sharings attached to us.
	if !rd.attachSent && len(rd.doneDealers[self]) >= t+1 {
		rd.attachSent = true
		mine := make([]sim.ProcID, t+1)
		copy(mine, rd.doneDealers[self][:t+1])
		e.host.Broadcast(ctx, tag(rd.r, StepAttach), encodeProcs(mine))
	}

	// Step 3: verify parties whose attached sharings completed locally.
	// Iterate in process-id order (set bits ascend): Verify emits gather
	// traffic, and the whole run must be a deterministic function of the
	// seed.
	for p := 1; p <= ctx.N(); p++ {
		j := sim.ProcID(p)
		if !rd.attachSet.Has(j) || rd.verified.Has(j) {
			continue
		}
		ok := true
		for _, k := range rd.attach[j] {
			if !rd.doneSet.Has(e.sessIdx(k, j)) {
				ok = false
				break
			}
		}
		if ok {
			rd.verified.Add(j)
			e.gat.Verify(ctx, rd.r, j)
		}
	}

	// Step 4: open the lottery values of every reconstruct target whose
	// attach set we know — but never before our own gather output.
	// Gating the reveal on the local gather keeps every lottery value
	// hidden until the first honest process has gathered, at which point
	// the common core is already fixed; an early (possibly forged)
	// reconstruct announcement therefore cannot leak values the
	// adversary could use to steer verification adaptively.
	if rd.haveGather {
		// Process-id order for the same determinism reason as step 3. In
		// supply mode the pass first collects every target that becomes
		// ready, then issues one grouped request per dealer: the targets
		// map to adjacent supply slots, which the layers below reveal in
		// a single slab broadcast instead of one per slot.
		var started []sim.ProcID
		for p := 1; p <= ctx.N(); p++ {
			j := sim.ProcID(p)
			if !rd.reconTargets.Has(j) || rd.reconStarted.Has(j) {
				continue
			}
			if !rd.attachSet.Has(j) {
				continue
			}
			rd.reconStarted.Add(j)
			if rd.batch {
				started = append(started, j)
				continue
			}
			for _, k := range rd.attach[j] {
				e.sv.Reconstruct(ctx, SessionFor(k, rd.r, j))
			}
		}
		if len(started) > 0 {
			for p := 1; p <= ctx.N(); p++ {
				k := sim.ProcID(p)
				var targets []sim.ProcID
				for _, j := range started {
					if procsContain(rd.attach[j], k) {
						targets = append(targets, j)
					}
				}
				if len(targets) > 0 {
					e.supply.Reconstruct(ctx, k, rd.r, targets)
				}
			}
		}
	}

	e.tryFinish(ctx, rd)
}

// onGather receives the gathered set for a round.
func (e *Engine) onGather(ctx sim.Context, r uint64, set []sim.ProcID) {
	rd := e.round(ctx, r)
	if rd.haveGather {
		return
	}
	rd.haveGather = true
	rd.gathered = set
	// Announce so every honest process joins these reconstructions (SVSS
	// Termination requires all nonfaulty processes to begin R).
	e.host.Broadcast(ctx, tag(r, StepRecon), encodeProcs(set))
	for _, j := range set {
		rd.reconTargets.Add(j)
	}
	e.advance(ctx, rd)
}

// tryFinish outputs the coin once every lottery value of the gathered
// set is available.
func (e *Engine) tryFinish(ctx sim.Context, rd *round) {
	if !rd.haveGather || rd.done {
		return
	}
	u := lotteryMod(ctx.N())
	bestVal := uint64(0)
	bestProc := sim.ProcID(0)
	found := false
	for _, j := range rd.gathered {
		if !rd.attachSet.Has(j) {
			return // verified implies known, but guard anyway
		}
		sum := uint64(0)
		bottom := false
		for _, k := range rd.attach[j] {
			si := e.sessIdx(k, j)
			if si < 0 || !rd.outSet.Has(si) {
				return // still reconstructing
			}
			out := rd.outs[si]
			if out.Bottom {
				bottom = true
				break
			}
			sum = (sum + out.Value.Uint64()%u) % u
		}
		if bottom {
			continue // binding was broken: a shun occurred; skip party
		}
		if !found || sum < bestVal || (sum == bestVal && j < bestProc) {
			found = true
			bestVal = sum
			bestProc = j
		}
	}
	rd.done = true
	if found {
		rd.bit = int(bestVal % 2)
	} else {
		rd.bit = 0 // all parties excluded: shun-waived round
	}
	if e.onCoin != nil {
		e.onCoin(ctx, rd.r, rd.bit)
	}
}

func procsContain(ps []sim.ProcID, p sim.ProcID) bool {
	for _, q := range ps {
		if q == p {
			return true
		}
	}
	return false
}

func encodeProcs(ps []sim.ProcID) []byte {
	sorted := make([]sim.ProcID, len(ps))
	copy(sorted, ps)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var w proto.Writer
	w.Procs(sorted)
	return w.Bytes()
}

func decodeProcs(b []byte, n int) ([]sim.ProcID, bool) {
	return proto.DecodeProcSet(b, n)
}
