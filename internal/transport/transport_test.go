package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"svssba/internal/sim"
)

// collect drains frames from tr until n frames arrived or the deadline
// passed, returning counts by sender.
func collect(t *testing.T, tr Transport, n int, deadline time.Duration) map[sim.ProcID]int {
	t.Helper()
	got := make(map[sim.ProcID]int)
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	for i := 0; i < n; i++ {
		select {
		case f, ok := <-tr.Recv():
			if !ok {
				t.Fatalf("recv closed after %d of %d frames", i, n)
			}
			got[f.From]++
		case <-timer.C:
			t.Fatalf("timed out after %d of %d frames", i, n)
		}
	}
	return got
}

func TestMeshDelivery(t *testing.T) {
	m := NewMesh(3)
	eps := make([]Transport, 4)
	for p := 1; p <= 3; p++ {
		ep, err := m.Endpoint(sim.ProcID(p))
		if err != nil {
			t.Fatal(err)
		}
		if err := ep.Start(); err != nil {
			t.Fatal(err)
		}
		eps[p] = ep
	}
	defer func() {
		for p := 1; p <= 3; p++ {
			eps[p].Close()
		}
	}()

	// Everyone sends 10 frames to everyone, including themselves.
	const per = 10
	for from := 1; from <= 3; from++ {
		for to := 1; to <= 3; to++ {
			for i := 0; i < per; i++ {
				if err := eps[from].Send(sim.ProcID(to), []byte{byte(from), byte(to), byte(i)}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for to := 1; to <= 3; to++ {
		got := collect(t, eps[to], 3*per, 5*time.Second)
		for from := 1; from <= 3; from++ {
			if got[sim.ProcID(from)] != per {
				t.Errorf("endpoint %d: %d frames from %d, want %d", to, got[sim.ProcID(from)], from, per)
			}
		}
	}
}

func TestMeshClosedPeerDropsFrames(t *testing.T) {
	m := NewMesh(2)
	a, _ := m.Endpoint(1)
	b, _ := m.Endpoint(2)
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	b.Close()
	// Sends to a crashed endpoint must not block or error.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			if err := a.Send(2, []byte{1}); err != nil {
				t.Errorf("send to closed peer: %v", err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("send to closed peer blocked")
	}
	a.Close()
	if _, ok := <-b.Recv(); ok {
		t.Error("frame delivered to closed endpoint")
	}
}

func TestMeshResetEndpoint(t *testing.T) {
	m := NewMesh(2)
	a, _ := m.Endpoint(1)
	b, _ := m.Endpoint(2)
	a.Start()
	b.Start()
	b.Close()
	fresh, err := m.ResetEndpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Start(); err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	defer a.Close()
	if err := a.Send(2, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-fresh.Recv():
		if f.From != 1 || string(f.Data) != "hi" {
			t.Errorf("frame = %+v", f)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("restarted endpoint received nothing")
	}
}

func TestFaultLinkDropAndDelay(t *testing.T) {
	m := NewMesh(2)
	raw, _ := m.Endpoint(1)
	b, _ := m.Endpoint(2)
	raw.Start()
	b.Start()
	defer raw.Close()
	defer b.Close()

	// Full drop: nothing arrives.
	mute := WithFaults(raw, FaultConfig{Seed: 1, DropProb: 0.999999999})
	for i := 0; i < 50; i++ {
		mute.Send(2, []byte{1})
	}
	select {
	case <-b.Recv():
		t.Fatal("frame crossed a ~always-dropping link")
	case <-time.After(50 * time.Millisecond):
	}

	// Pure delay: everything arrives.
	slow := WithFaults(raw, FaultConfig{Seed: 2, MaxDelay: 2 * time.Millisecond})
	const n = 50
	for i := 0; i < n; i++ {
		slow.Send(2, []byte{byte(i)})
	}
	got := collect(t, b, n, 5*time.Second)
	if got[1] != n {
		t.Errorf("delayed link delivered %d of %d", got[1], n)
	}
}

func TestWithFaultsZeroConfigPassthrough(t *testing.T) {
	m := NewMesh(1)
	ep, _ := m.Endpoint(1)
	if WithFaults(ep, FaultConfig{}) != ep {
		t.Error("zero fault config should return the inner transport")
	}
}

// TestMeshConcurrentSenders hammers one inbox from many goroutines; run
// with -race this is the mesh's thread-safety test.
func TestMeshConcurrentSenders(t *testing.T) {
	const n, per = 8, 200
	m := NewMesh(n)
	eps := make([]Transport, n+1)
	for p := 1; p <= n; p++ {
		eps[p], _ = m.Endpoint(sim.ProcID(p))
		if err := eps[p].Start(); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		for p := 1; p <= n; p++ {
			eps[p].Close()
		}
	}()
	var wg sync.WaitGroup
	for from := 2; from <= n; from++ {
		wg.Add(1)
		go func(from int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				eps[from].Send(1, []byte(fmt.Sprintf("%d/%d", from, i)))
			}
		}(from)
	}
	got := collect(t, eps[1], (n-1)*per, 10*time.Second)
	wg.Wait()
	for from := 2; from <= n; from++ {
		if got[sim.ProcID(from)] != per {
			t.Errorf("from %d: got %d, want %d", from, got[sim.ProcID(from)], per)
		}
	}
}
