package coin_test

import (
	"testing"

	"svssba/internal/core"
	"svssba/internal/proto"
	"svssba/internal/sim"
)

type proc struct {
	id      sim.ProcID
	stack   *core.Stack
	coins   map[uint64]int
	shunned []sim.ProcID
}

type cluster struct {
	nw    *sim.Network
	procs map[sim.ProcID]*proc
	n     int
}

func newCluster(t *testing.T, n, tf int, seed int64, opts ...sim.NetworkOption) *cluster {
	t.Helper()
	c := &cluster{
		nw:    sim.NewNetwork(n, tf, seed, opts...),
		procs: make(map[sim.ProcID]*proc, n),
		n:     n,
	}
	for i := 1; i <= n; i++ {
		p := &proc{id: sim.ProcID(i), coins: make(map[uint64]int)}
		p.stack = core.NewStack(p.id, func(j sim.ProcID, _ proto.MWID) {
			p.shunned = append(p.shunned, j)
		})
		p.stack.OnCoin(func(_ sim.Context, round uint64, bit int) {
			p.coins[round] = bit
		})
		c.procs[p.id] = p
		if err := c.nw.Register(p.stack.Node); err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
	}
	return c
}

func (c *cluster) startRound(t *testing.T, r uint64, who []sim.ProcID) {
	t.Helper()
	for _, i := range who {
		p := c.procs[i]
		if err := c.nw.Inject(i, func(ctx sim.Context) {
			p.stack.Coin.Start(ctx, r)
		}); err != nil {
			t.Fatalf("inject start %d: %v", i, err)
		}
	}
}

func (c *cluster) allDone(r uint64, who []sim.ProcID) bool {
	for _, i := range who {
		if _, ok := c.procs[i].coins[r]; !ok {
			return false
		}
	}
	return true
}

func (c *cluster) mustReach(t *testing.T, what string, cond func() bool) {
	t.Helper()
	if _, err := c.nw.RunUntil(cond, 200_000_000); err != nil {
		t.Fatalf("%s: %v", what, err)
	}
	if !cond() {
		t.Fatalf("%s: network quiesced before condition held", what)
	}
}

func ids(from, to int) []sim.ProcID {
	out := make([]sim.ProcID, 0, to-from+1)
	for i := from; i <= to; i++ {
		out = append(out, sim.ProcID(i))
	}
	return out
}

// TestCoinTerminatesAndOftenAgrees runs several coin rounds on an honest
// cluster: every round must terminate at every process (SCC Termination),
// and the empirical distribution must satisfy the Correctness property
// Pr[all output sigma] >= 1/4 for each sigma (Definition 2).
func TestCoinTerminatesAndOftenAgrees(t *testing.T) {
	// Full scale gives the statistical bound sampling room; short mode
	// keeps a deterministic smoke version of the same property.
	rounds, minEach := 24, 3
	if testing.Short() {
		rounds, minEach = 6, 1
	}
	all := ids(1, 4)
	all0, all1, split := 0, 0, 0
	for seed := int64(0); seed < int64(rounds); seed++ {
		c := newCluster(t, 4, 1, seed)
		c.startRound(t, 1, all)
		c.mustReach(t, "coin round", func() bool { return c.allDone(1, all) })
		counts := [2]int{}
		for _, i := range all {
			counts[c.procs[i].coins[1]]++
		}
		switch {
		case counts[0] == len(all):
			all0++
		case counts[1] == len(all):
			all1++
		default:
			split++
		}
		for _, i := range all {
			if len(c.procs[i].shunned) != 0 {
				t.Errorf("seed %d: shun in honest run", seed)
			}
		}
	}
	t.Logf("coin outcomes over %d honest rounds: all0=%d all1=%d split=%d", rounds, all0, all1, split)
	// In honest runs the gathered sets coincide, so splits should be
	// nonexistent and both sides should appear with frequency >= 1/4 up
	// to sampling noise. With 24 rounds, require at least 3 each.
	if split != 0 {
		t.Errorf("honest coin split %d times", split)
	}
	if all0 < minEach || all1 < minEach {
		t.Errorf("coin badly biased: all0=%d all1=%d", all0, all1)
	}
}

// TestCoinWithSilentFaults: the coin must terminate with t processes
// crashed from the start.
func TestCoinWithSilentFaults(t *testing.T) {
	c := newCluster(t, 4, 1, 7)
	c.nw.Crash(4)
	live := ids(1, 3)
	c.startRound(t, 1, live)
	c.mustReach(t, "coin with crash", func() bool { return c.allDone(1, live) })
	// All live processes agree here because their gathered sets coincide
	// in this schedule-free crash case... they must at least terminate.
	for _, i := range live {
		if _, ok := c.procs[i].coins[1]; !ok {
			t.Errorf("process %d missing coin", i)
		}
	}
}

// TestCoinSequentialRounds runs two rounds back to back at every process
// and checks both terminate (session ordering must not deadlock the DMM).
func TestCoinSequentialRounds(t *testing.T) {
	c := newCluster(t, 4, 1, 9)
	all := ids(1, 4)
	c.startRound(t, 1, all)
	c.mustReach(t, "round 1", func() bool { return c.allDone(1, all) })
	c.startRound(t, 2, all)
	c.mustReach(t, "round 2", func() bool { return c.allDone(2, all) })
}

// TestCoinAgreementLargerCluster samples one round at n=7.
func TestCoinAgreementLargerCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("n=7 coin is heavy")
	}
	all := ids(1, 7)
	c := newCluster(t, 7, 2, 11)
	c.startRound(t, 1, all)
	c.mustReach(t, "n7 coin", func() bool { return c.allDone(1, all) })
	first := c.procs[1].coins[1]
	for _, i := range all {
		if c.procs[i].coins[1] != first {
			t.Errorf("disagreement at %d", i)
		}
	}
}
