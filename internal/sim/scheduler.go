package sim

import (
	"container/heap"
	"math/rand"
)

// RandomScheduler delivers a uniformly random pending message at each
// step. This models a fully asynchronous adversary-free network: every
// interleaving of deliveries has positive probability, and every message
// is eventually delivered with probability 1.
type RandomScheduler struct {
	rng     *rand.Rand
	pending []Message
}

var _ Scheduler = (*RandomScheduler)(nil)

// NewRandomScheduler returns a seeded random-order scheduler.
func NewRandomScheduler(seed int64) *RandomScheduler {
	return &RandomScheduler{rng: rand.New(rand.NewSource(seed))}
}

// Enqueue implements Scheduler.
func (s *RandomScheduler) Enqueue(m Message, _ int64) {
	s.pending = append(s.pending, m)
}

// Next implements Scheduler.
func (s *RandomScheduler) Next(now int64) (Message, int64, bool) {
	if len(s.pending) == 0 {
		return Message{}, 0, false
	}
	i := s.rng.Intn(len(s.pending))
	m := s.pending[i]
	last := len(s.pending) - 1
	s.pending[i] = s.pending[last]
	s.pending[last] = Message{}
	s.pending = s.pending[:last]
	return m, now + 1, true
}

// Len implements Scheduler.
func (s *RandomScheduler) Len() int { return len(s.pending) }

// FIFOScheduler delivers messages in global send order — the "nicest"
// possible schedule, useful as a baseline and for debugging.
type FIFOScheduler struct {
	pending []Message
	head    int
}

var _ Scheduler = (*FIFOScheduler)(nil)

// NewFIFOScheduler returns a global-FIFO scheduler.
func NewFIFOScheduler() *FIFOScheduler { return &FIFOScheduler{} }

// Enqueue implements Scheduler.
func (s *FIFOScheduler) Enqueue(m Message, _ int64) {
	s.pending = append(s.pending, m)
}

// Next implements Scheduler.
func (s *FIFOScheduler) Next(now int64) (Message, int64, bool) {
	if s.head >= len(s.pending) {
		return Message{}, 0, false
	}
	m := s.pending[s.head]
	s.pending[s.head] = Message{}
	s.head++
	if s.head == len(s.pending) {
		s.pending = s.pending[:0]
		s.head = 0
	}
	return m, now + 1, true
}

// Len implements Scheduler.
func (s *FIFOScheduler) Len() int { return len(s.pending) - s.head }

// DelayDist draws a message delay.
type DelayDist interface {
	Draw(r *rand.Rand) int64
}

// UniformDelay draws uniformly from [Lo, Hi].
type UniformDelay struct{ Lo, Hi int64 }

// Draw implements DelayDist.
func (d UniformDelay) Draw(r *rand.Rand) int64 {
	if d.Hi <= d.Lo {
		return d.Lo
	}
	return d.Lo + r.Int63n(d.Hi-d.Lo+1)
}

// ExpDelay draws an exponential delay with the given mean, capped at Cap
// (a cap keeps delivery eventual within finite runs).
type ExpDelay struct {
	Mean int64
	Cap  int64
}

// Draw implements DelayDist.
func (d ExpDelay) Draw(r *rand.Rand) int64 {
	v := int64(r.ExpFloat64() * float64(d.Mean))
	if d.Cap > 0 && v > d.Cap {
		v = d.Cap
	}
	return v
}

type delayItem struct {
	m   Message
	at  int64
	seq uint64 // tiebreaker for determinism
}

type delayHeap []delayItem

func (h delayHeap) Len() int { return len(h) }
func (h delayHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h delayHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *delayHeap) Push(x interface{}) { *h = append(*h, x.(delayItem)) }
func (h *delayHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = delayItem{}
	*h = old[:n-1]
	return it
}

// DelayScheduler assigns each message a random delay drawn from a
// distribution and delivers in virtual-time order. This yields meaningful
// virtual latencies (experiment E9).
type DelayScheduler struct {
	rng  *rand.Rand
	dist DelayDist
	h    delayHeap
}

var _ Scheduler = (*DelayScheduler)(nil)

// NewDelayScheduler returns a seeded delay-based scheduler.
func NewDelayScheduler(seed int64, dist DelayDist) *DelayScheduler {
	return &DelayScheduler{rng: rand.New(rand.NewSource(seed)), dist: dist}
}

// Enqueue implements Scheduler.
func (s *DelayScheduler) Enqueue(m Message, now int64) {
	heap.Push(&s.h, delayItem{m: m, at: now + 1 + s.dist.Draw(s.rng), seq: m.Seq})
}

// Next implements Scheduler.
func (s *DelayScheduler) Next(_ int64) (Message, int64, bool) {
	if s.h.Len() == 0 {
		return Message{}, 0, false
	}
	it := heap.Pop(&s.h).(delayItem)
	return it.m, it.at, true
}

// Len implements Scheduler.
func (s *DelayScheduler) Len() int { return s.h.Len() }

// HoldRule decides whether a message must be held back for now. Rules are
// re-evaluated at every scheduling decision, so tests can script network
// phases (e.g. the paper's Example 1: delay everything touching process 4
// until the share phase completes elsewhere).
type HoldRule func(Message) bool

// ScriptedScheduler wraps an inner scheduler with a mutable hold rule.
// Held messages are parked and re-enqueued as soon as the rule releases
// them, preserving eventual delivery whenever the rule is eventually
// cleared.
type ScriptedScheduler struct {
	inner Scheduler
	hold  HoldRule
	held  []Message
}

var _ Scheduler = (*ScriptedScheduler)(nil)

// NewScriptedScheduler wraps inner with no hold rule installed.
func NewScriptedScheduler(inner Scheduler) *ScriptedScheduler {
	return &ScriptedScheduler{inner: inner}
}

// SetHold installs (or clears, with nil) the hold rule.
func (s *ScriptedScheduler) SetHold(rule HoldRule) { s.hold = rule }

// HeldCount returns how many messages are currently parked.
func (s *ScriptedScheduler) HeldCount() int { return len(s.held) }

// Enqueue implements Scheduler.
func (s *ScriptedScheduler) Enqueue(m Message, now int64) {
	if s.hold != nil && s.hold(m) {
		s.held = append(s.held, m)
		return
	}
	s.inner.Enqueue(m, now)
}

// Next implements Scheduler.
func (s *ScriptedScheduler) Next(now int64) (Message, int64, bool) {
	s.release(now)
	for {
		m, at, ok := s.inner.Next(now)
		if !ok {
			return Message{}, 0, false
		}
		if s.hold != nil && s.hold(m) {
			s.held = append(s.held, m)
			continue
		}
		return m, at, true
	}
}

// release moves parked messages whose hold no longer applies back into the
// inner scheduler.
func (s *ScriptedScheduler) release(now int64) {
	if len(s.held) == 0 {
		return
	}
	kept := s.held[:0]
	for _, m := range s.held {
		if s.hold != nil && s.hold(m) {
			kept = append(kept, m)
		} else {
			s.inner.Enqueue(m, now)
		}
	}
	s.held = kept
}

// Len implements Scheduler.
func (s *ScriptedScheduler) Len() int { return s.inner.Len() + len(s.held) }
