package trace

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "n", "mean", "note")
	tb.Add(4, 1.25, "ok")
	tb.Add(10, 3.14159, "longer-cell")
	out := tb.String()
	if !strings.Contains(out, "## demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "longer-cell") {
		t.Error("missing cell")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("lines = %d, want 5:\n%s", len(lines), out)
	}
	if tb.Len() != 2 {
		t.Errorf("len = %d", tb.Len())
	}
}

func TestSeriesStats(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Max() != 0 || s.Min() != 0 || s.Percentile(50) != 0 {
		t.Error("empty series should report zeros")
	}
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if got := s.Mean(); got != 3 {
		t.Errorf("mean = %v", got)
	}
	if got := s.Max(); got != 5 {
		t.Errorf("max = %v", got)
	}
	if got := s.Min(); got != 1 {
		t.Errorf("min = %v", got)
	}
	if got := s.Percentile(50); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := s.Percentile(100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := s.Stddev(); math.Abs(got-1.5811) > 0.001 {
		t.Errorf("stddev = %v", got)
	}
	if s.N() != 5 {
		t.Errorf("n = %d", s.N())
	}
}

func TestLogLogSlope(t *testing.T) {
	// y = x^2 exactly: slope 2.
	xs := []float64{2, 4, 8, 16}
	ys := []float64{4, 16, 64, 256}
	if got := LogLogSlope(xs, ys); math.Abs(got-2) > 1e-9 {
		t.Errorf("slope = %v, want 2", got)
	}
	// Degenerate inputs.
	if got := LogLogSlope([]float64{1}, []float64{1}); got != 0 {
		t.Errorf("single point slope = %v", got)
	}
	if got := LogLogSlope([]float64{0, -1}, []float64{1, 1}); got != 0 {
		t.Errorf("invalid points slope = %v", got)
	}
}
