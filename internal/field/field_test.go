package field

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewReduces(t *testing.T) {
	tests := []struct {
		give uint64
		want Element
	}{
		{give: 0, want: 0},
		{give: 1, want: 1},
		{give: Modulus - 1, want: Element(Modulus - 1)},
		{give: Modulus, want: 0},
		{give: Modulus + 1, want: 1},
		{give: ^uint64(0), want: Element(reduce64(^uint64(0)))},
	}
	for _, tt := range tests {
		if got := New(tt.give); got != tt.want {
			t.Errorf("New(%d) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestNewIntNegatives(t *testing.T) {
	tests := []struct {
		give int64
		want Element
	}{
		{give: -1, want: Element(Modulus - 1)},
		{give: -5, want: Element(Modulus - 5)},
		{give: 5, want: 5},
		{give: 0, want: 0},
	}
	for _, tt := range tests {
		if got := NewInt(tt.give); got != tt.want {
			t.Errorf("NewInt(%d) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestAddSubIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a, b := Rand(r), Rand(r)
		if got := a.Add(b).Sub(b); got != a {
			t.Fatalf("(%v+%v)-%v = %v, want %v", a, b, b, got, a)
		}
	}
}

func TestNeg(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		a := Rand(r)
		if got := a.Add(a.Neg()); got != 0 {
			t.Fatalf("%v + (-%v) = %v, want 0", a, a, got)
		}
	}
	if Zero.Neg() != Zero {
		t.Error("Neg(0) != 0")
	}
}

func TestMulKnownValues(t *testing.T) {
	tests := []struct {
		a, b, want Element
	}{
		{a: 0, b: 123, want: 0},
		{a: 1, b: 123, want: 123},
		{a: 2, b: Element(Modulus - 1), want: Element(Modulus - 2)},
		{a: Element(Modulus - 1), b: Element(Modulus - 1), want: 1},
		{a: 1 << 30, b: 1 << 31, want: 1}, // 2^61 ≡ 1 mod p
	}
	for _, tt := range tests {
		if got := tt.a.Mul(tt.b); got != tt.want {
			t.Errorf("%v * %v = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestInv(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		a := Rand(r)
		if a.IsZero() {
			continue
		}
		if got := a.Mul(a.Inv()); got != One {
			t.Fatalf("%v * %v^-1 = %v, want 1", a, a, got)
		}
	}
	if Zero.Inv() != Zero {
		t.Error("Inv(0) should return 0 by convention")
	}
}

func TestPow(t *testing.T) {
	a := New(7)
	want := One
	for k := uint64(0); k < 20; k++ {
		if got := a.Pow(k); got != want {
			t.Fatalf("7^%d = %v, want %v", k, got, want)
		}
		want = want.Mul(a)
	}
	// Fermat's little theorem: a^(p-1) = 1.
	if got := a.Pow(Modulus - 1); got != One {
		t.Errorf("7^(p-1) = %v, want 1", got)
	}
}

func TestDivByZero(t *testing.T) {
	if got := New(9).Div(Zero); got != Zero {
		t.Errorf("9/0 = %v, want 0 by convention", got)
	}
}

func TestRandUniformRange(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 10000; i++ {
		if v := Rand(r); uint64(v) >= Modulus {
			t.Fatalf("Rand produced out-of-range element %v", v)
		}
	}
}

// randElem adapts Rand for testing/quick generators.
func randElem(r *rand.Rand) Element { return Rand(r) }

func TestQuickFieldAxioms(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(randElem(r))
			}
		},
	}

	t.Run("AddCommutative", func(t *testing.T) {
		if err := quick.Check(func(a, b Element) bool {
			return a.Add(b) == b.Add(a)
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("AddAssociative", func(t *testing.T) {
		if err := quick.Check(func(a, b, c Element) bool {
			return a.Add(b).Add(c) == a.Add(b.Add(c))
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("MulCommutative", func(t *testing.T) {
		if err := quick.Check(func(a, b Element) bool {
			return a.Mul(b) == b.Mul(a)
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("MulAssociative", func(t *testing.T) {
		if err := quick.Check(func(a, b, c Element) bool {
			return a.Mul(b).Mul(c) == a.Mul(b.Mul(c))
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("Distributive", func(t *testing.T) {
		if err := quick.Check(func(a, b, c Element) bool {
			return a.Mul(b.Add(c)) == a.Mul(b).Add(a.Mul(c))
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("SubIsAddNeg", func(t *testing.T) {
		if err := quick.Check(func(a, b Element) bool {
			return a.Sub(b) == a.Add(b.Neg())
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("MulMatchesBigIntFreeReference", func(t *testing.T) {
		// Reference multiplication via repeated 32-bit split:
		// a*b mod p computed with 4 partial products reduced eagerly.
		ref := func(a, b Element) Element {
			aLo, aHi := uint64(a)&0xffffffff, uint64(a)>>32
			bLo, bHi := uint64(b)&0xffffffff, uint64(b)>>32
			// a*b = aHi*bHi*2^64 + (aHi*bLo+aLo*bHi)*2^32 + aLo*bLo
			p := New(aHi * bHi)
			two32 := New(1 << 32)
			p = p.Mul(two32).Add(New(aHi * bLo)).Add(New(aLo * bHi))
			p = p.Mul(two32).Add(New(aLo * bLo))
			return p
		}
		if err := quick.Check(func(a, b Element) bool {
			return a.Mul(b) == ref(a, b)
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("InvIsInverse", func(t *testing.T) {
		if err := quick.Check(func(a Element) bool {
			if a.IsZero() {
				return true
			}
			return a.Mul(a.Inv()) == One
		}, cfg); err != nil {
			t.Error(err)
		}
	})
}

func BenchmarkMul(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	x, y := Rand(r), Rand(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = x.Mul(y)
	}
	_ = x
}

func BenchmarkInv(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	x := Rand(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = x.Inv().Add(One)
	}
	_ = x
}
