package svssba_test

import (
	"bytes"
	"fmt"
	"testing"

	"svssba"
)

// runLanesWorkload boots a service cluster with the given lane count
// over one cell of the pool×wire matrix, drives the standard
// concurrent-session workload, and returns node 1's decisions after
// verifying the full service contract (identical ≥ n−t subsets on
// every node, state retired to baseline, zero lane-ring drops).
func runLanesWorkload(t *testing.T, lanes int, pool bool, wire string, sessions int) map[uint64]svssba.ServiceDecision {
	t.Helper()
	cl, err := svssba.StartService(svssba.ServiceConfig{
		N: 4, Seed: 42, Window: sessions, Lanes: lanes, Pool: pool, Wire: wire,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 1; i <= cl.N(); i++ {
		for k := 0; k < sessions; k++ {
			if err := cl.Node(i).Submit([]byte(fmt.Sprintf("n%d-v%d", i, k))); err != nil {
				t.Fatalf("node %d submit %d: %v", i, k, err)
			}
		}
	}
	total := waitServiceQuiescent(t, cl)
	if total < sessions {
		t.Errorf("completed %d sessions, want >= %d", total, sessions)
	}
	decs := collectDecisions(t, cl, total)
	assertSameSubsets(t, cl, decs)
	waitServiceBaseline(t, cl)
	for i := 1; i <= cl.N(); i++ {
		st := cl.Node(i).Stats()
		if st.Lanes != lanes {
			t.Errorf("node %d: resolved %d lanes, want %d", i, st.Lanes, lanes)
		}
		if st.RingDrops != 0 {
			t.Errorf("node %d: %d lane-ring drops on a live run", i, st.RingDrops)
		}
		if errs := cl.Node(i).Errs(); len(errs) > 0 {
			t.Errorf("node %d: runtime errors: %v", i, errs[0])
		}
	}
	return decs[1]
}

// TestServiceLanesMatrix is the lanes 1-vs-k equivalence sweep over
// the pool×wire matrix: both lane counts must satisfy the identical
// service contract on the same workload, every decided value must be
// one of the submitted values and decided at most once (integrity —
// lanes must not corrupt, cross-wire or replay payloads), and the
// multi-lane run must not lose traffic (zero ring drops, asserted in
// runLanesWorkload).
func TestServiceLanesMatrix(t *testing.T) {
	const sessions = 4
	for _, pool := range []bool{false, true} {
		for _, wire := range []string{"v1", "v2"} {
			pool, wire := pool, wire
			t.Run(fmt.Sprintf("pool=%v_wire=%s", pool, wire), func(t *testing.T) {
				t.Parallel()
				submitted := make(map[string]bool)
				for i := 1; i <= 4; i++ {
					for k := 0; k < sessions; k++ {
						submitted[fmt.Sprintf("n%d-v%d", i, k)] = true
					}
				}
				for _, lanes := range []int{1, 4} {
					decs := runLanesWorkload(t, lanes, pool, wire, sessions)
					decided := make(map[string]int)
					for _, d := range decs {
						for k, m := range d.Members {
							v := string(d.Values[k])
							if v == "" {
								// A node that joins a peer's session with an
								// empty submit queue proposes the empty value
								// — filler, not a submission.
								continue
							}
							decided[v]++
							if !submitted[v] {
								t.Errorf("lanes=%d: decided value %q (member %d) was never submitted", lanes, v, m)
							}
						}
					}
					for v, cnt := range decided {
						if cnt != 1 {
							t.Errorf("lanes=%d: value %q decided %d times, want once", lanes, v, cnt)
						}
					}
				}
			})
		}
	}
}

// TestServiceLanesValuesIntact spot-checks byte-level value integrity
// through the multi-lane zero-copy receive path: with values large
// enough to stress buffer reuse, every decided value on every node
// must byte-match what some node submitted.
func TestServiceLanesValuesIntact(t *testing.T) {
	const sessions = 3
	cl, err := svssba.StartService(svssba.ServiceConfig{N: 4, Seed: 7, Window: sessions, Lanes: 4, Pool: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var submitted [][]byte
	for i := 1; i <= cl.N(); i++ {
		for k := 0; k < sessions; k++ {
			v := bytes.Repeat([]byte{byte(i), byte(k), 0xa5}, 300)
			submitted = append(submitted, v)
			if err := cl.Node(i).Submit(v); err != nil {
				t.Fatalf("node %d submit: %v", i, err)
			}
		}
	}
	total := waitServiceQuiescent(t, cl)
	decs := collectDecisions(t, cl, total)
	assertSameSubsets(t, cl, decs)
	for _, d := range decs[1] {
		for k, v := range d.Values {
			if len(v) == 0 {
				continue // empty-queue join filler, not a submission
			}
			match := false
			for _, s := range submitted {
				if bytes.Equal(v, s) {
					match = true
					break
				}
			}
			if !match {
				t.Errorf("session %d member %d: decided value corrupted (len %d)", d.Session, d.Members[k], len(v))
			}
		}
	}
	waitServiceBaseline(t, cl)
}
