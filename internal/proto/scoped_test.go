package proto_test

import (
	"bytes"
	"reflect"
	"testing"

	"svssba/internal/proto"
	"svssba/internal/rb"
	"svssba/internal/sim"
)

// scopedInner is a representative payload to ride inside the envelope.
func scopedInner() rb.Msg {
	return rb.Msg{
		Origin: 3,
		Tag:    proto.Tag{Proto: proto.ProtoRB, A: 12},
		Value:  []byte("payload"),
	}
}

// TestScopedRoundTrip pins the envelope's two-form contract: encoding
// the outbound form (Inner set) and decoding yields the inbound form
// (Raw set, inner still encoded), and decoding Raw recovers the inner
// payload exactly.
func TestScopedRoundTrip(t *testing.T) {
	c := fullCodec()
	for _, scope := range []uint64{0, 1, 0x7F, 0x80, 1<<32 | 7, ^uint64(0)} {
		in := proto.Scoped{Scope: scope, Inner: scopedInner()}
		b, err := c.Encode(in)
		if err != nil {
			t.Fatalf("scope %d: encode: %v", scope, err)
		}
		p, err := c.Decode(b)
		if err != nil {
			t.Fatalf("scope %d: decode: %v", scope, err)
		}
		out, ok := p.(proto.Scoped)
		if !ok {
			t.Fatalf("scope %d: decoded %T, want Scoped", scope, p)
		}
		if out.Scope != scope {
			t.Fatalf("scope %d: round-tripped to %d", scope, out.Scope)
		}
		if out.Inner != nil {
			t.Fatalf("scope %d: inbound form has live Inner", scope)
		}
		inner, err := c.Decode(out.Raw)
		if err != nil {
			t.Fatalf("scope %d: inner decode: %v", scope, err)
		}
		if !reflect.DeepEqual(inner, scopedInner()) {
			t.Fatalf("scope %d: inner = %+v, want %+v", scope, inner, scopedInner())
		}
	}
}

// TestScopedSizeMatchesEncoding pins Size() to the marshaled byte count
// for both forms — the batch writer trusts Size() when pre-sizing and
// verifying group bodies.
func TestScopedSizeMatchesEncoding(t *testing.T) {
	c := fullCodec()
	out := proto.Scoped{Scope: 1 << 42, Inner: scopedInner()}
	var w proto.Writer
	out.MarshalTo(&w)
	if w.Len() != out.Size() {
		t.Fatalf("outbound form: marshaled %d bytes, Size()=%d", w.Len(), out.Size())
	}

	b, err := c.Encode(out)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	in := p.(proto.Scoped)
	var w2 proto.Writer
	in.MarshalTo(&w2)
	if w2.Len() != in.Size() {
		t.Fatalf("inbound form: marshaled %d bytes, Size()=%d", w2.Len(), in.Size())
	}
	// Re-encoding the inbound form reproduces the outbound bytes — a
	// relay can forward an envelope without decoding its body.
	if !bytes.Equal(w.Bytes(), w2.Bytes()) {
		t.Fatal("inbound re-encoding differs from outbound encoding")
	}
}

// TestScopedDecodeRejectsEmptyBody pins the envelope decoder's guard: a
// scope with no inner bytes is corrupt, not an empty delivery.
func TestScopedDecodeRejectsEmptyBody(t *testing.T) {
	c := fullCodec()
	var w proto.Writer
	w.U16(uint16(len(proto.KindScoped)))
	for _, ch := range []byte(proto.KindScoped) {
		w.U8(ch)
	}
	w.Uvarint(9)
	if _, err := c.Decode(w.Bytes()); err == nil {
		t.Fatal("empty-body envelope decoded")
	}
}

// TestScopedDecodeTruncated walks every proper prefix of a valid
// envelope frame: each must fail cleanly (the kind header or the scope
// uvarint goes short) — except prefixes that still hold a nonempty
// body, which decode shallowly by design; the inner decode is where
// such truncation surfaces, and it must error there.
func TestScopedDecodeTruncated(t *testing.T) {
	c := fullCodec()
	b, err := c.Encode(proto.Scoped{Scope: 1 << 21, Inner: scopedInner()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(b); i++ {
		p, err := c.Decode(b[:i])
		if err != nil {
			continue
		}
		sc, ok := p.(proto.Scoped)
		if !ok {
			t.Fatalf("prefix %d: decoded %T", i, p)
		}
		if _, err := c.Decode(sc.Raw); err == nil {
			t.Fatalf("prefix %d: truncated inner decoded", i)
		}
	}
}

// TestScopedBatchRoundTrip packs envelopes for several scopes into one
// batch frame — the exact wire shape service-mode coalescing produces —
// and checks each comes back under its own scope with its own body.
func TestScopedBatchRoundTrip(t *testing.T) {
	c := fullCodec()
	scopes := []uint64{1, 2, 1 << 40}
	var ps []sim.Payload
	for _, s := range scopes {
		ps = append(ps, proto.Scoped{Scope: s, Inner: rb.Msg{
			Origin: sim.ProcID(s % 7),
			Tag:    proto.Tag{Proto: proto.ProtoRB, A: uint32(s)},
			Value:  []byte{byte(s)},
		}})
	}
	frame, err := c.EncodeBatch(ps)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.DecodeBatch(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ps) {
		t.Fatalf("decoded %d payloads, want %d", len(got), len(ps))
	}
	for i, p := range got {
		sc, ok := p.(proto.Scoped)
		if !ok {
			t.Fatalf("payload %d: %T", i, p)
		}
		if sc.Scope != scopes[i] {
			t.Fatalf("payload %d: scope %d, want %d", i, sc.Scope, scopes[i])
		}
		inner, err := c.Decode(sc.Raw)
		if err != nil {
			t.Fatalf("payload %d: inner decode: %v", i, err)
		}
		want := ps[i].(proto.Scoped).Inner
		if !reflect.DeepEqual(inner, want) {
			t.Fatalf("payload %d: inner = %+v, want %+v", i, inner, want)
		}
	}
}

// FuzzScopedDecode feeds arbitrary bytes through the envelope decoder
// and, when the shallow decode passes, through the inner decode — the
// exact two-step path a Byzantine sender reaches in service mode.
func FuzzScopedDecode(f *testing.F) {
	c := fullCodec()
	if seed, err := c.Encode(proto.Scoped{Scope: 99, Inner: scopedInner()}); err == nil {
		f.Add(seed)
	}
	f.Add([]byte{0x04, 0x00, 's', 'e', 's', 's', 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := c.Decode(data)
		if err != nil {
			return
		}
		sc, ok := p.(proto.Scoped)
		if !ok {
			return
		}
		if len(sc.Raw) == 0 {
			t.Fatal("decoder admitted an empty body")
		}
		_, _ = c.Decode(sc.Raw)
	})
}
