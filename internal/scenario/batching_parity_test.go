package scenario_test

import (
	"reflect"
	"testing"

	"svssba/internal/scenario"
)

// quickParityMatrix returns the matrix the parity test sweeps: the whole
// quick matrix, or a representative slice of it under -short (one
// benign and one adversarial scheduler, three behaviours, the n4 scale —
// the full sweep costs minutes of simulated deliveries on one core).
func quickParityMatrix(short bool) *scenario.Matrix {
	m := scenario.Quick()
	if !short {
		return m
	}
	m.Schedulers = m.Schedulers[:2] // random, fifo
	m.Behaviors = []scenario.Behavior{
		scenario.NoFault(),
		scenario.CrashBudget(),
		scenario.Unanimous1VoteFlip(),
	}
	m.Scales = m.Scales[:1] // n4
	return m
}

// TestBatchedUnbatchedParity is the batching safety contract, checked
// across the quick scenario matrix: with the same seed, toggling
// Batching changes nothing but the Frames counter — decisions,
// violations, logical payload stats, step counts and round counts are
// byte-identical. Batching is a frame-layer concern; it must never leak
// into protocol behaviour.
func TestBatchedUnbatchedParity(t *testing.T) {
	plain := quickParityMatrix(testing.Short())
	batched := quickParityMatrix(testing.Short())
	batched.Batching = true

	repPlain := scenario.Run(plain, 0)
	repBatch := scenario.Run(batched, 0)

	if len(repPlain.Cells) != len(repBatch.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(repPlain.Cells), len(repBatch.Cells))
	}
	if len(repPlain.Violations) != 0 || len(repBatch.Violations) != 0 {
		t.Fatalf("invariant violations: plain %v, batched %v", repPlain.Violations, repBatch.Violations)
	}
	savedFrames := int64(0)
	for i := range repPlain.Cells {
		p, b := repPlain.Cells[i], repBatch.Cells[i]
		if p.Cell.ID != b.Cell.ID {
			t.Fatalf("cell order diverged: %q vs %q", p.Cell.ID, b.Cell.ID)
		}
		if p.Err != "" || b.Err != "" {
			t.Fatalf("%s: cell errors: plain %q, batched %q", p.Cell.ID, p.Err, b.Err)
		}
		pr, br := p.Result, b.Result
		if !reflect.DeepEqual(pr.Decisions, br.Decisions) {
			t.Errorf("%s: decisions differ: %v vs %v", p.Cell.ID, pr.Decisions, br.Decisions)
		}
		if !reflect.DeepEqual(pr.MsgsByKind, br.MsgsByKind) {
			t.Errorf("%s: logical payload stats differ:\n plain   %v\n batched %v", p.Cell.ID, pr.MsgsByKind, br.MsgsByKind)
		}
		if pr.Messages != br.Messages || pr.Bytes != br.Bytes {
			t.Errorf("%s: logical totals differ: %d/%dB vs %d/%dB", p.Cell.ID, pr.Messages, pr.Bytes, br.Messages, br.Bytes)
		}
		if pr.Steps != br.Steps || pr.VirtualTime != br.VirtualTime || pr.MaxRound != br.MaxRound {
			t.Errorf("%s: schedule diverged: steps %d/%d vtime %d/%d rounds %d/%d",
				p.Cell.ID, pr.Steps, br.Steps, pr.VirtualTime, br.VirtualTime, pr.MaxRound, br.MaxRound)
		}
		if !reflect.DeepEqual(pr.Shuns, br.Shuns) {
			t.Errorf("%s: shun sequences differ", p.Cell.ID)
		}
		// Frames count what crosses the network, so sends dropped at a
		// crashed endpoint never become frames: without crash faults the
		// unbatched frame count equals the payload count exactly.
		if pr.Frames > pr.Messages {
			t.Errorf("%s: unbatched frames %d exceed messages %d", p.Cell.ID, pr.Frames, pr.Messages)
		}
		if p.Cell.Behavior == "none" && pr.Frames != pr.Messages {
			t.Errorf("%s: unbatched frames %d != messages %d in a fault-free cell", p.Cell.ID, pr.Frames, pr.Messages)
		}
		if br.Frames > pr.Frames {
			t.Errorf("%s: batched frames %d exceed unbatched %d", p.Cell.ID, br.Frames, pr.Frames)
		}
		savedFrames += pr.Frames - br.Frames
	}
	// The model must actually coalesce somewhere in the matrix, or the
	// frame counter is vacuous.
	if savedFrames == 0 {
		t.Fatal("batching saved zero frames across the matrix")
	}
}
