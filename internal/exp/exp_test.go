package exp_test

import (
	"strings"
	"testing"

	"svssba/internal/exp"
)

var quick = exp.Scale{Quick: true}

// TestE7TableShape runs the deterministic Example 1 replay and checks
// every row observes its expectation.
func TestE7TableShape(t *testing.T) {
	tb := exp.E7(quick)
	out := tb.String()
	if tb.Len() != 5 {
		t.Fatalf("rows = %d, want 5\n%s", tb.Len(), out)
	}
	for _, want := range []string{"42", "10042", "true"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in\n%s", want, out)
		}
	}
	// Expected and observed columns must match on the headline rows.
	if strings.Count(out, "false") != 2 { // one expected + one observed "false"
		t.Errorf("pre-completion detection mismatch:\n%s", out)
	}
}

// TestE4BoundHolds re-runs the shun-bound experiment and asserts the
// cumulative pair count never exceeds t(n−t).
func TestE4BoundHolds(t *testing.T) {
	tb := exp.E4(quick)
	if tb.Len() == 0 {
		t.Fatal("empty table")
	}
	out := tb.String()
	if strings.Contains(out, "stuck") {
		t.Fatalf("session runner stuck:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n")[3:] {
		fields := strings.Fields(line)
		if len(fields) != 4 {
			continue
		}
		if fields[2] > fields[3] { // lexicographic works for single digits
			t.Errorf("shun pairs exceed bound: %s", line)
		}
	}
}

// TestE8AblationContrast asserts the DMM-off row ruins strictly more
// sessions than the DMM-on row.
func TestE8AblationContrast(t *testing.T) {
	tb := exp.E8(quick)
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Fatalf("table too small:\n%s", out)
	}
	var onRuined, offRuined string
	for _, line := range lines {
		fields := strings.Fields(line)
		if len(fields) == 4 && fields[1] == "on" {
			onRuined = fields[2]
		}
		if len(fields) == 4 && fields[1] == "off" {
			offRuined = fields[2]
		}
	}
	if onRuined == "" || offRuined == "" {
		t.Fatalf("rows missing:\n%s", out)
	}
	if !(onRuined < offRuined) { // single digits: lexicographic = numeric
		t.Errorf("ablation contrast missing: on=%s off=%s", onRuined, offRuined)
	}
}
