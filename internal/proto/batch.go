package proto

import (
	"encoding/binary"
	"errors"
	"fmt"

	"svssba/internal/sim"
)

// Batch frame format. A batch frame packs many encoded payloads into one
// transport frame so that all traffic a process produces for one
// destination within one delivery step crosses the wire as a single
// physical message. The leading u16 is BatchMagic, a kind-length no
// single-payload frame can start with (kinds are short constant strings),
// so receivers distinguish the two frame shapes from the first two bytes
// and unbatched senders stay wire-compatible.
//
//	u16    BatchMagic (0xFFFF)
//	uvarint group count
//	per group:
//	  u16 kind length ++ kind bytes
//	  uvarint payload count
//	  per payload: uvarint body length ++ body
//
// A group holds a run of consecutive same-kind payloads with the kind
// header written once — this is the wire form of echo aggregation: one
// group carries the type-2/type-3 echoes of many concurrent broadcast
// tags and sessions behind a single kind header. Bodies are the
// MarshalTo encoding without the per-payload kind prefix.
const BatchMagic = 0xFFFF

// maxBatchKindLen bounds an encodable kind so it can never collide with
// BatchMagic in the leading u16.
const maxBatchKindLen = 0xFFFE

// ErrNotBatch is returned by DecodeBatch when the input does not start
// with BatchMagic.
var ErrNotBatch = errors.New("proto: not a batch frame")

// IsBatch reports whether b is a batch frame (starts with BatchMagic).
func IsBatch(b []byte) bool {
	return len(b) >= 2 && binary.LittleEndian.Uint16(b) == BatchMagic
}

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.err = ErrShortBuffer
		return 0
	}
	r.off += n
	return v
}

// AppendEncodeBatch appends a batch frame holding ps to dst and returns
// the extended buffer — the allocation-free variant of EncodeBatch for
// callers that own a reusable buffer. Runs of consecutive payloads with
// the same kind share one group (and one kind header). dst may be nil;
// ps must be non-empty.
func (c *Codec) AppendEncodeBatch(dst []byte, ps []sim.Payload) ([]byte, error) {
	if len(ps) == 0 {
		return nil, fmt.Errorf("proto: empty batch")
	}
	groups, err := countGroups(ps)
	if err != nil {
		return nil, err
	}
	w := writerPool.Get().(*Writer)
	w.buf = dst
	w.U16(BatchMagic)
	w.Uvarint(uint64(groups))
	for i := 0; i < len(ps); {
		kind := ps[i].Kind()
		j := i
		for j < len(ps) && ps[j].Kind() == kind {
			j++
		}
		w.U16(uint16(len(kind)))
		w.buf = append(w.buf, kind...)
		w.Uvarint(uint64(j - i))
		for ; i < j; i++ {
			m := ps[i].(Marshaler) // countGroups verified
			w.Uvarint(uint64(ps[i].Size()))
			start := w.Len()
			m.MarshalTo(w)
			if w.Len()-start != ps[i].Size() {
				err = fmt.Errorf("proto: payload %q: Size()=%d but marshaled %d bytes",
					kind, ps[i].Size(), w.Len()-start)
			}
		}
	}
	out := w.buf
	w.buf = nil
	writerPool.Put(w)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// countGroups validates the payloads and returns the number of
// consecutive same-kind runs.
func countGroups(ps []sim.Payload) (int, error) {
	groups := 0
	last := ""
	for _, p := range ps {
		if _, ok := p.(Marshaler); !ok {
			return 0, fmt.Errorf("proto: payload %q does not implement Marshaler", p.Kind())
		}
		kind := p.Kind()
		if len(kind) > maxBatchKindLen {
			return 0, fmt.Errorf("proto: kind %q too long for batch frame", kind)
		}
		if groups == 0 || kind != last {
			groups++
			last = kind
		}
	}
	return groups, nil
}

// EncodeBatch encodes ps as one batch frame in a single pre-sized
// allocation.
func (c *Codec) EncodeBatch(ps []sim.Payload) ([]byte, error) {
	size := 2 + binary.MaxVarintLen64
	for _, p := range ps {
		size += 2 + len(p.Kind()) + binary.MaxVarintLen64*2 + p.Size()
	}
	return c.AppendEncodeBatch(make([]byte, 0, size), ps)
}

// DecodeBatch decodes a batch frame into its payloads, in encoding
// order. Inputs that are not batch frames return ErrNotBatch; corrupt
// or truncated batches return a decode error and no payloads — callers
// discard such frames whole, so a Byzantine sender cannot smuggle
// prefix payloads past the frame-level integrity check.
func (c *Codec) DecodeBatch(b []byte) ([]sim.Payload, error) {
	if !IsBatch(b) {
		return nil, ErrNotBatch
	}
	r := getReader(b)
	defer putReader(r)
	r.U16() // magic
	groups := r.Uvarint()
	if r.Err() != nil {
		return nil, fmt.Errorf("proto: batch header: %w", r.Err())
	}
	// One pooled reader serves every payload body: Reset repositions it
	// per body, so a thousand-payload batch costs zero Reader headers.
	pr := getReader(nil)
	defer putReader(pr)
	var out []sim.Payload
	for g := uint64(0); g < groups; g++ {
		kl := int(r.U16())
		kb := r.take(kl)
		if r.Err() != nil {
			return nil, fmt.Errorf("proto: batch group %d kind: %w", g, r.Err())
		}
		kind := string(kb)
		dec, ok := c.decoders[kind]
		if !ok {
			return nil, fmt.Errorf("proto: no decoder for kind %q", kind)
		}
		count := r.Uvarint()
		if r.Err() != nil || count > uint64(r.Remaining()) {
			// Each payload costs at least its 1-byte length prefix, so a
			// count beyond Remaining is corrupt regardless of contents.
			return nil, fmt.Errorf("proto: batch group %q count: %w", kind, ErrShortBuffer)
		}
		for i := uint64(0); i < count; i++ {
			bl := r.Uvarint()
			if r.Err() != nil || bl > uint64(r.Remaining()) {
				return nil, fmt.Errorf("proto: batch payload %q length: %w", kind, ErrShortBuffer)
			}
			pr.Reset(r.take(int(bl)))
			p, err := dec(pr)
			if err != nil {
				return nil, fmt.Errorf("proto: batch decode %q: %w", kind, err)
			}
			if err := pr.Close(); err != nil {
				return nil, fmt.Errorf("proto: batch decode %q: %w", kind, err)
			}
			out = append(out, p)
		}
	}
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("proto: batch frame: %w", err)
	}
	return out, nil
}
