package node_test

import (
	"testing"
	"time"

	"svssba/internal/core"
	"svssba/internal/node"
	"svssba/internal/sim"
	"svssba/internal/transport"
)

// waitRetired polls until the node's stack retired (decided, halted,
// released its state) or the budget runs out. The budget is
// deadline-aware like TestAgreementN10/N13: a heavy-tail coin schedule
// can push retirement well past the fixed waitFor, so when the test
// binary has more deadline left than waitFor, use it (minus teardown
// headroom) instead of rolling dice on the fixed budget.
func waitRetired(t *testing.T, nd *node.Node) {
	t.Helper()
	budget := waitFor
	if dl, ok := t.Deadline(); ok {
		if until := time.Until(dl) - 10*time.Second; until > budget {
			budget = until
		}
	}
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		if nd.Retired() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("node %d: stack never retired after %v", nd.ID(), budget)
}

// assertBaseline asserts a post-retirement snapshot holds no live
// protocol instances (the slab high-water marks may stay — capacity is
// retained for reuse — but every interned id must be released).
func assertBaseline(t *testing.T, nd *node.Node) {
	t.Helper()
	c, ok := nd.StateCounts()
	if !ok {
		t.Fatalf("node %d: no state snapshot", nd.ID())
	}
	if c.Total() != 0 {
		t.Fatalf("node %d: retired state not released: %+v", nd.ID(), c)
	}
}

// TestClusterRetirementReleasesState is the memory-bound regression
// test: a node that lives across several agreement sessions must not
// accumulate protocol state. Each session runs agreement to the halt
// point, the stack auto-retires, and the instance counts must return
// to zero — the interned-id free lists and slabs are recycled, so a
// long-lived cluster process stays at a bounded footprint no matter
// how many sessions it serves.
func TestClusterRetirementReleasesState(t *testing.T) {
	const n = 4
	nodes, mesh := startMeshCluster(t, n, nil)
	ids := []sim.ProcID{1, 2, 3, 4}
	waitAgreement(t, nodes, ids...)

	// Session 1: every node halts, retires, and reports zero live state.
	for _, id := range ids {
		waitRetired(t, nodes[id])
		assertBaseline(t, nodes[id])
	}

	// Sessions 2 and 3: restart the cluster (a fresh agreement session
	// per incarnation) and assert the same release between sessions.
	for session := 2; session <= 3; session++ {
		for _, id := range ids {
			nodes[id].Stop()
		}
		for _, id := range ids {
			ep, err := mesh.ResetEndpoint(id)
			if err != nil {
				t.Fatal(err)
			}
			if err := ep.Start(); err != nil {
				t.Fatal(err)
			}
			if err := nodes[id].Restart(ep); err != nil {
				t.Fatal(err)
			}
		}
		waitAgreement(t, nodes, ids...)
		for _, id := range ids {
			waitRetired(t, nodes[id])
			assertBaseline(t, nodes[id])
		}
	}
}

// TestRetirementKeepsDecision pins that retirement releases state but
// not the outcome: decision and stats survive, and the retired stack
// drops late traffic instead of regrowing instances.
func TestRetirementKeepsDecision(t *testing.T) {
	const n = 4
	nodes, _ := startMeshCluster(t, n, nil)
	ids := []sim.ProcID{1, 2, 3, 4}
	want := waitAgreement(t, nodes, ids...)
	for _, id := range ids {
		waitRetired(t, nodes[id])
		v, ok := nodes[id].Decision()
		if !ok || v != want {
			t.Fatalf("node %d: decision after retirement = (%d,%v), want (%d,true)", id, v, ok, want)
		}
	}
}

// TestStateCountsBeforeHalt sanity-checks the accounting surface: a
// node stopped before deciding reports its (nonzero) live state in the
// shutdown snapshot.
func TestStateCountsBeforeHalt(t *testing.T) {
	mesh := transport.NewMesh(4)
	codec := core.NewCodec()
	ep, err := mesh.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Start(); err != nil {
		t.Fatal(err)
	}
	nd, err := node.New(node.Config{ID: 1, N: 4, Seed: 1, Input: 1, Codec: codec}, ep)
	if err != nil {
		t.Fatal(err)
	}
	if err := nd.Start(); err != nil {
		t.Fatal(err)
	}
	// Alone in the mesh the node cannot decide; its Init-time sharing
	// still creates local state.
	time.Sleep(50 * time.Millisecond)
	nd.Stop()
	c, ok := nd.StateCounts()
	if !ok {
		t.Fatal("no state snapshot after Stop")
	}
	if nd.Retired() {
		t.Fatal("undecided node must not retire")
	}
	if c.Total() == 0 {
		t.Fatalf("expected live protocol state on an undecided node, got %+v", c)
	}
}
