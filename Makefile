GO ?= go

.PHONY: build test check vet bench sweep sweep-full scenario scenario-full cluster cluster-batch cluster-race fuzz-batch parity n13 loadgen-smoke loadgen-smoke-pool loadgen-smoke-lanes service-check obs-smoke soak

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# check is what CI runs: fast, deterministic, full build surface.
check: vet build
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

sweep:
	$(GO) run ./cmd/expsweep -parallel 0

sweep-full:
	$(GO) run ./cmd/expsweep -full -parallel 0

scenario:
	$(GO) run ./cmd/scenario -quick -workers 0

scenario-full:
	$(GO) run ./cmd/scenario -full -workers 0

# cluster is the real-socket smoke run CI uses: agreement over
# localhost TCP with one node crashed, per-layer stats, exit 0.
cluster:
	$(GO) run ./cmd/cluster -n 4 -crash 1 -timeout 60s

# cluster-batch is the batched variant: coalescing outbox, multi-payload
# batch frames on the wire, payloads-vs-frames stats table.
cluster-batch:
	$(GO) run ./cmd/cluster -n 4 -transport tcp -batch -timeout 60s

# loadgen-smoke is the agreement-as-a-service throughput smoke CI runs:
# 30s of sustained concurrent ACS sessions on the chan transport, with
# cross-node subset equality, >0 decisions/sec, and per-session state
# retiring back to baseline all asserted (exit nonzero on violation).
loadgen-smoke:
	$(GO) run ./cmd/loadgen -n 4 -duration 30s -minrate 0.05

# loadgen-smoke-pool is the pooled variant of the same leg: the coin
# dealing pool plus pipelined refill must keep the submission window
# fully in flight (-minpeak = the default window) and clear a
# decisions/sec floor an order of magnitude above the unpooled
# smoke's; the report additionally asserts the pool ledger contract
# (zero double handouts, zero leaked supplies after drain).
loadgen-smoke-pool:
	$(GO) run ./cmd/loadgen -n 4 -duration 30s -pool -minpeak 8 -minrate 0.5

# loadgen-smoke-lanes is the multi-core leg: the same pooled service
# workload sharded across 4 per-scope execution lanes per node. On top
# of the pooled leg's contract it asserts the lane rings dropped zero
# frames on the live run (drops are legal only at shutdown) — the
# decisions/sec floor stays at the pooled leg's because single-core CI
# runners gain no parallel speedup.
loadgen-smoke-lanes:
	$(GO) run ./cmd/loadgen -n 4 -duration 30s -pool -lanes 4 -minpeak 8 -minrate 0.5

# service-check runs the scenario-style multi-session invariant cell:
# agreement/validity/termination per session across the service nodes.
service-check:
	$(GO) run ./cmd/scenario -service

# obs-smoke exercises the observability layer end to end: a short
# loadgen with the HTTP introspection endpoint up, /metrics curled and
# validated mid-run, /trace spot-checked, and the final report asserted
# (CI runs the same script).
obs-smoke:
	./scripts/obs_smoke.sh

# soak is the watchdog run: sustained service traffic with throughput
# flatness, protocol-state boundedness and per-session budgets asserted;
# exits nonzero on violation. Tune -duration up for real soaks.
soak:
	$(GO) run ./cmd/loadgen -n 4 -duration 5m -soak -report 30s -maxlat 2m

# fuzz-batch fuzzes the batch-frame decode surface for a short, fixed
# duration (CI runs the same leg).
fuzz-batch:
	$(GO) test -run=NONE -fuzz=FuzzBatchFrame -fuzztime=30s ./internal/proto/

# cluster-race runs the node/transport runtime tests under the race
# detector (the same Node code path cmd/cluster uses, on the
# in-process transport), plus the coin-pool layer whose refill and
# handout paths run on the service's delivery goroutines.
cluster-race:
	$(GO) test -race ./internal/transport/ ./internal/node/ ./internal/coinpool/

# parity diffs both wire variants' quick-matrix digests against their
# pinned goldens: v1 must stay byte-identical across representation
# changes; v2 is the declared burst-coalescing variant pinned
# separately. Regenerate a golden only as a deliberate act:
#   go run ./cmd/paritydigest -variant v2 > cmd/paritydigest/testdata/parity_v2.txt
parity:
	$(GO) run ./cmd/paritydigest -variant v1 | diff cmd/paritydigest/testdata/parity_v1.txt -
	$(GO) run ./cmd/paritydigest -variant v2 | diff cmd/paritydigest/testdata/parity_v2.txt -
	@echo parity OK: both wire variants match their pinned digests

# n13 runs the n=13/t=4 agreement smoke under wire v2 — the scale the
# burst-coalescing message-complexity pass (PR 6) opened. Deliberate
# deep run; the default `go test` budget skips it.
n13:
	$(GO) test -run TestAgreementN13 -v -timeout 90m .

# n10 runs the n=10/t=3 agreement smoke end to end — a deliberate deep
# run (>100M deliveries per coin round; see BENCH_pr5.json for the
# measured cost). The default `go test` budget skips it; this target
# grants the headroom.
n10:
	$(GO) test -run TestAgreementN10 -v -timeout 90m .

# microbench runs the per-delivery hot-path benchmarks the interning
# port is measured by (CI runs a 1-iteration smoke of the same).
microbench:
	$(GO) test -run=NONE -bench='RBHandle|MWSVSSDeliver' -benchmem ./internal/rb/ ./internal/mwsvss/
