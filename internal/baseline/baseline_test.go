package baseline_test

import (
	"fmt"
	"testing"

	"svssba/internal/baseline"
	"svssba/internal/sim"
)

type result struct {
	decided  map[sim.ProcID]int
	rounds   map[sim.ProcID]uint64
	messages int64
}

// runBenOr executes one Ben-Or run and reports decisions.
func runBenOr(t *testing.T, n, tf int, seed int64, inputs []int, maxRounds uint64, maxSteps int) result {
	t.Helper()
	nw := sim.NewNetwork(n, tf, seed)
	res := result{decided: make(map[sim.ProcID]int), rounds: make(map[sim.ProcID]uint64)}
	nodes := make([]*baseline.BenOrNode, 0, n)
	for i := 1; i <= n; i++ {
		id := sim.ProcID(i)
		node := baseline.NewBenOrNode(id, inputs[i-1], func(_ sim.Context, v int) {
			res.decided[id] = v
		})
		node.Eng.MaxRounds = maxRounds
		nodes = append(nodes, node)
		if err := nw.Register(node); err != nil {
			t.Fatalf("register: %v", err)
		}
	}
	allDecided := func() bool { return len(res.decided) == n }
	if _, err := nw.RunUntil(allDecided, maxSteps); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, node := range nodes {
		res.rounds[node.ID()] = node.Eng.Round()
	}
	res.messages = nw.Stats().Sent
	return res
}

func TestBenOrUnanimousDecides(t *testing.T) {
	// n=7, t=1 respects n > 5t; unanimous inputs decide in round 1.
	for _, input := range []int{0, 1} {
		inputs := []int{input, input, input, input, input, input, input}
		res := runBenOr(t, 7, 1, 3, inputs, 0, 10_000_000)
		if len(res.decided) != 7 {
			t.Fatalf("only %d of 7 decided", len(res.decided))
		}
		for id, v := range res.decided {
			if v != input {
				t.Errorf("process %d decided %d, want %d", id, v, input)
			}
		}
	}
}

func TestBenOrSplitInputsAgree(t *testing.T) {
	// Split inputs at n=7, t=1: must still agree (may need luck/rounds).
	for seed := int64(0); seed < 10; seed++ {
		inputs := []int{0, 1, 0, 1, 0, 1, 0}
		res := runBenOr(t, 7, 1, seed, inputs, 0, 50_000_000)
		if len(res.decided) != 7 {
			t.Fatalf("seed %d: only %d of 7 decided", seed, len(res.decided))
		}
		first := res.decided[1]
		for id, v := range res.decided {
			if v != first {
				t.Errorf("seed %d: disagreement at %d", seed, id)
			}
		}
	}
}

func TestBenOrRejectsBadInput(t *testing.T) {
	nw := sim.NewNetwork(4, 1, 1)
	node := baseline.NewBenOrNode(1, 0, nil)
	if err := nw.Register(node); err != nil {
		t.Fatal(err)
	}
	if err := nw.Inject(1, func(ctx sim.Context) {
		if err := node.Eng.Propose(ctx, 5); err == nil {
			t.Error("bad input accepted")
		}
	}); err == nil {
		// Inject fails because not all processes registered; that's fine,
		// validate directly instead.
		t.Log("inject unexpectedly succeeded")
	}
}

func runLocalCoin(t *testing.T, n, tf int, seed int64, inputs []int, maxSteps int) (map[sim.ProcID]int, map[sim.ProcID]uint64, bool) {
	t.Helper()
	nw := sim.NewNetwork(n, tf, seed)
	decided := make(map[sim.ProcID]int)
	nodes := make([]*baseline.LocalCoinNode, 0, n)
	for i := 1; i <= n; i++ {
		id := sim.ProcID(i)
		node := baseline.NewLocalCoinNode(id, inputs[i-1], func(_ sim.Context, v int) {
			decided[id] = v
		})
		nodes = append(nodes, node)
		if err := nw.Register(node); err != nil {
			t.Fatalf("register: %v", err)
		}
	}
	_, err := nw.RunUntil(func() bool { return len(decided) == n }, maxSteps)
	timedOut := err != nil
	rounds := make(map[sim.ProcID]uint64)
	for _, node := range nodes {
		rounds[node.ID()] = node.Eng.Round()
	}
	return decided, rounds, timedOut
}

func TestLocalCoinDecidesAndAgrees(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		decided, _, timedOut := runLocalCoin(t, 4, 1, seed, []int{0, 1, 1, 0}, 50_000_000)
		if timedOut {
			t.Fatalf("seed %d: local-coin run exceeded step budget", seed)
		}
		first, ok := decided[1]
		if !ok || len(decided) != 4 {
			t.Fatalf("seed %d: %d of 4 decided", seed, len(decided))
		}
		for id, v := range decided {
			if v != first {
				t.Errorf("seed %d: disagreement at %d", seed, id)
			}
		}
	}
}

// TestLocalCoinRoundsGrowWithN is the qualitative shape of E2: the mean
// decision round of the local-coin protocol grows with n on split
// inputs, while the common-coin protocol's stays flat (measured in the
// main benchmark suite).
func TestLocalCoinRoundsGrowWithN(t *testing.T) {
	mean := func(n int, runs int) float64 {
		total := 0.0
		for seed := int64(0); seed < int64(runs); seed++ {
			inputs := make([]int, n)
			for i := range inputs {
				inputs[i] = i % 2
			}
			_, rounds, timedOut := runLocalCoin(t, n, (n-1)/3, seed, inputs, 200_000_000)
			if timedOut {
				total += 64 // censored
				continue
			}
			max := uint64(0)
			for _, r := range rounds {
				if r > max {
					max = r
				}
			}
			total += float64(max)
		}
		return total / float64(runs)
	}
	m4 := mean(4, 12)
	m10 := mean(10, 12)
	t.Logf("mean max round: n=4 -> %.1f, n=10 -> %.1f", m4, m10)
	if m10 <= m4 {
		t.Skip("sampling noise: expected growth not visible in this small sample")
	}
}

func TestEpsCoinZeroEpsAlwaysDecides(t *testing.T) {
	nw := sim.NewNetwork(4, 1, 9)
	decided := make(map[sim.ProcID]int)
	for i := 1; i <= 4; i++ {
		id := sim.ProcID(i)
		node := baseline.NewEpsCoinNode(id, i%2, 0.0, 99, func(_ sim.Context, v int) {
			decided[id] = v
		})
		if err := nw.Register(node); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nw.RunUntil(func() bool { return len(decided) == 4 }, 50_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(decided) != 4 {
		t.Fatalf("%d of 4 decided", len(decided))
	}
}

func TestEpsCoinOneAlwaysStalls(t *testing.T) {
	// eps = 1: every coin invocation fails, so split inputs never decide —
	// the run goes quiescent with nobody decided (the non-a.s.-termination
	// failure mode of the ε-coin design).
	nw := sim.NewNetwork(4, 1, 10)
	decided := make(map[sim.ProcID]int)
	for i := 1; i <= 4; i++ {
		id := sim.ProcID(i)
		node := baseline.NewEpsCoinNode(id, i%2, 1.0, 99, func(_ sim.Context, v int) {
			decided[id] = v
		})
		if err := nw.Register(node); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nw.Run(50_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(decided) != 0 {
		t.Fatalf("decided %d with eps=1 and split inputs", len(decided))
	}
	if !nw.Quiescent() {
		t.Error("network not quiescent")
	}
}

func TestCodec(t *testing.T) {
	// BenOrMsg codec round trip.
	msgs := []baseline.BenOrMsg{
		{Phase: 1, Round: 3, Value: 0},
		{Phase: 2, Round: 9, Value: baseline.ValueQuestion},
	}
	for _, in := range msgs {
		if in.Size() != 10 {
			t.Errorf("size = %d, want 10", in.Size())
		}
	}
	_ = fmt.Sprint(msgs)
}
