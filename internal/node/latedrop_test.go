package node_test

// Regression tests for the session-boundary drops: frames arriving
// after retirement must die at the frame level (no decoding — a late
// echo storm or a crafted post-retirement frame costs a counter, not a
// batch/pack/bundle unpack), and in service mode a batch frame
// straddling a retired and a live scope must deliver only to the live
// one, counting the retired scope's payload as dropped-late.

import (
	"testing"
	"time"

	"svssba/internal/core"
	"svssba/internal/node"
	"svssba/internal/proto"
	"svssba/internal/rb"
	"svssba/internal/sim"
	"svssba/internal/transport"
)

// TestRetiredNodeDropsFramesUndecoded runs an agreement to retirement,
// then injects a garbage frame from a peer's (reset) endpoint: the
// retired node must count a dropped-late frame and must NOT decode it —
// garbage that would otherwise be a decode error leaves DecodeErrs
// untouched.
func TestRetiredNodeDropsFramesUndecoded(t *testing.T) {
	nodes, mesh := startMeshCluster(t, 4, nil)
	ids := []sim.ProcID{1, 2, 3, 4}
	waitAgreement(t, nodes, ids...)
	for _, id := range ids {
		waitRetired(t, nodes[id])
	}
	base := nodes[1].Stats()

	// Reuse peer 2's identity for the injection: frames must come from a
	// process in 1..N to get past the phantom-sender check.
	nodes[2].Stop()
	ep2, err := mesh.ResetEndpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep2.Start(); err != nil {
		t.Fatal(err)
	}
	garbage := []byte{0x03, 0x00, 'x', 'y', 'z', 0xde, 0xad}
	if err := ep2.Send(1, garbage); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(waitFor)
	for {
		st := nodes[1].Stats()
		if st.DroppedLateFrames > base.DroppedLateFrames {
			if st.DecodeErrs != base.DecodeErrs {
				t.Fatalf("late frame was decoded: DecodeErrs %d -> %d", base.DecodeErrs, st.DecodeErrs)
			}
			if st.RecvFrames != base.RecvFrames {
				t.Fatalf("late frame counted as received: RecvFrames %d -> %d", base.RecvFrames, st.RecvFrames)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("late frame never counted: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// straddleDriver hosts trivial wire-v2 stacks and retires scope 1 the
// moment it is touched, leaving every other scope live.
type straddleDriver struct{}

func (straddleDriver) Open(s *node.Session) *core.Stack {
	st := core.NewStack(1, nil)
	st.EnableWireV2()
	return st
}
func (straddleDriver) Opened(*node.Session) {}
func (straddleDriver) MayRetire(s *node.Session) bool { return s.Scope() == 1 }

// TestServiceBatchStraddlesRetiredScope sends the same wire-v2 batch
// frame — one pack for scope 1, one for scope 2 — twice. The first
// delivery opens both scopes and retires scope 1; on the second frame,
// scope 1's payload must be dropped at the envelope (counted late,
// inner pack never decoded) while scope 2's still delivers.
func TestServiceBatchStraddlesRetiredScope(t *testing.T) {
	mesh := transport.NewMesh(2)
	codec := core.NewCodec()
	ep1, err := mesh.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := mesh.Endpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep1.Start(); err != nil {
		t.Fatal(err)
	}
	if err := ep2.Start(); err != nil {
		t.Fatal(err)
	}
	nd, err := node.New(node.Config{
		ID: 1, N: 2, Seed: 1, Codec: codec, Batching: true,
		Service: straddleDriver{},
	}, ep1)
	if err != nil {
		t.Fatal(err)
	}
	if err := nd.Start(); err != nil {
		t.Fatal(err)
	}
	defer nd.Stop()
	defer ep2.Close()

	pack := proto.Pack{Items: []sim.Payload{
		rb.Msg{Origin: 2, Tag: proto.Tag{Proto: proto.ProtoRB}, Value: []byte("hi")},
	}}
	frame, err := codec.EncodeBatch([]sim.Payload{
		proto.Scoped{Scope: 1, Inner: pack},
		proto.Scoped{Scope: 2, Inner: pack},
	})
	if err != nil {
		t.Fatal(err)
	}

	waitStats := func(cond func(node.Stats) bool, what string) node.Stats {
		t.Helper()
		deadline := time.Now().Add(waitFor)
		for {
			st := nd.Stats()
			if cond(st) {
				return st
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never happened: %+v errs=%v", what, st, nd.Errs())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	if err := ep2.Send(1, frame); err != nil {
		t.Fatal(err)
	}
	waitStats(func(st node.Stats) bool { return st.RecvByKind[proto.KindPack] == 2 }, "first frame delivery")
	// ServiceCounts runs on the delivery goroutine, so once it reports
	// scope 1 retired the first burst (including its retirement pass) is
	// fully over.
	deadline := time.Now().Add(waitFor)
	for {
		c, ok := nd.ServiceCounts()
		if !ok {
			t.Fatal("not a service node")
		}
		if c.Retired == 1 && c.Live == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scope 1 never retired: %+v", c)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The live stacks react to the delivered echoes (including a
	// self-loopback frame whose scope-1 envelope also counts as a late
	// payload), so exact counter values are coupling, not contract. Let
	// the reaction traffic settle, snapshot, and assert deltas.
	settle := func() node.Stats {
		prev := nd.Stats()
		for {
			time.Sleep(100 * time.Millisecond)
			cur := nd.Stats()
			if cur.RecvFrames == prev.RecvFrames && cur.Sent == prev.Sent {
				return cur
			}
			prev = cur
		}
	}
	base := settle()

	if err := ep2.Send(1, frame); err != nil {
		t.Fatal(err)
	}
	// The straddling frame must deliver exactly one pack (the live scope
	// 2) and drop exactly one payload late (the retired scope 1) — if the
	// retired scope's pack were still decoded and delivered, the pack
	// count would advance by two.
	st := waitStats(func(st node.Stats) bool {
		return st.DroppedLatePayloads == base.DroppedLatePayloads+1 &&
			st.RecvByKind[proto.KindPack] == base.RecvByKind[proto.KindPack]+1
	}, "late drop for scope 1 plus live delivery for scope 2")
	if st.RecvFrames != base.RecvFrames+1 {
		t.Fatalf("RecvFrames advanced %d -> %d, want exactly one more", base.RecvFrames, st.RecvFrames)
	}
	if st.DecodeErrs != base.DecodeErrs {
		t.Fatalf("unexpected decode errors: %d -> %d", base.DecodeErrs, st.DecodeErrs)
	}
	if st.DroppedLateFrames != base.DroppedLateFrames {
		t.Fatalf("straddling frame dropped whole: DroppedLateFrames %d -> %d", base.DroppedLateFrames, st.DroppedLateFrames)
	}
}
