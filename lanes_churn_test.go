package svssba

import (
	"fmt"
	"sync"
	"testing"

	"svssba/internal/acs"
	"svssba/internal/core"
	"svssba/internal/node"
	"svssba/internal/proto"
	"svssba/internal/sim"
	"svssba/internal/transport"
)

// decisionLog records one node's decisions keyed by session, safe to
// write from any lane goroutine (OnDecide runs on the completing
// scope's lane on a multi-lane node).
type decisionLog struct {
	mu   sync.Mutex
	decs map[uint64]acs.Decision
}

func newDecisionLog() *decisionLog {
	return &decisionLog{decs: make(map[uint64]acs.Decision)}
}

func (l *decisionLog) add(d acs.Decision) {
	l.mu.Lock()
	l.decs[d.Session] = d
	l.mu.Unlock()
}

func (l *decisionLog) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.decs)
}

func (l *decisionLog) snapshot() map[uint64]acs.Decision {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[uint64]acs.Decision, len(l.decs))
	for sid, d := range l.decs {
		out[sid] = d
	}
	return out
}

// newLanedServiceNode builds one pooled multi-lane service-node
// incarnation bound to ep: the pool_churn wiring plus Lanes 4 and the
// acs lane key, so crash/rejoin churn runs with scopes sharded across
// four worker goroutines per node.
func newLanedServiceNode(t *testing.T, i, n int, seed int64, codec *proto.Codec, ep transport.Transport, log *decisionLog) (*acs.Driver, *node.Node) {
	t.Helper()
	drv, err := acs.New(acs.Config{
		N: n, T: 1, Self: sim.ProcID(i), Wire: "v2", Window: 3,
		Pool: true, PoolRounds: 1,
		OnDecide: log.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	nd, err := node.New(node.Config{
		ID: sim.ProcID(i), N: n, T: 1, Seed: seed,
		Codec: codec, Batching: true, Service: drv,
		Lanes: 4, LaneKey: acs.LaneKey,
	}, ep)
	if err != nil {
		t.Fatal(err)
	}
	drv.Bind(nd)
	if err := nd.Start(); err != nil {
		t.Fatal(err)
	}
	return drv, nd
}

// assertLaneChurnDecisions checks subset equality across the listed
// nodes: every session all of them completed must carry identical
// members and values everywhere.
func assertLaneChurnDecisions(t *testing.T, phase string, logs []*decisionLog) {
	t.Helper()
	ref := logs[0].snapshot()
	for li := 1; li < len(logs); li++ {
		other := logs[li].snapshot()
		for sid, rd := range ref {
			od, ok := other[sid]
			if !ok {
				continue // this node joined later / crashed earlier
			}
			if fmt.Sprint(od.Members) != fmt.Sprint(rd.Members) {
				t.Errorf("%s: session %d: members %v != %v", phase, sid, od.Members, rd.Members)
				continue
			}
			for k := range rd.Values {
				if string(od.Values[k]) != string(rd.Values[k]) {
					t.Errorf("%s: session %d member %d: value mismatch across nodes", phase, sid, rd.Members[k])
				}
			}
		}
	}
}

// TestLanedServiceChurn is the multi-lane crash/rejoin test the race
// job runs: a 4-node pooled cluster with 4 lanes per node loses node 4
// abruptly mid-window, the survivors finish every session with
// identical subsets and retire all state to baseline, then a fresh
// incarnation of node 4 rejoins and serves a second wave — with every
// node's lane rings clean (zero live-run drops) throughout.
func TestLanedServiceChurn(t *testing.T) {
	const n = 4
	mesh := transport.NewMesh(n)
	codec := core.NewCodec()
	drvs := make([]*acs.Driver, n+1)
	nodes := make([]*node.Node, n+1)
	logs := make([]*decisionLog, n+1)
	eps := make([]transport.Transport, n+1)
	for i := 1; i <= n; i++ {
		ep, err := mesh.Endpoint(sim.ProcID(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := ep.Start(); err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
	}
	for i := 1; i <= n; i++ {
		logs[i] = newDecisionLog()
		drvs[i], nodes[i] = newLanedServiceNode(t, i, n, int64(2000+i), codec, eps[i], logs[i])
	}
	t.Cleanup(func() {
		for i := 1; i <= n; i++ {
			nodes[i].Stop()
		}
	})

	// Wave 1: every node submits; sessions shard across lanes by sid.
	for i := 1; i <= n; i++ {
		for k := 0; k < 2; k++ {
			if err := drvs[i].Submit([]byte(fmt.Sprintf("lw1-n%d-v%d", i, k))); err != nil {
				t.Fatalf("node %d submit: %v", i, err)
			}
		}
	}

	// Crash node 4 as soon as the first decision lands, mid-window.
	churnPoll(t, "first decision", func() bool { return logs[1].count() >= 1 }, nil)
	nodes[4].Crash()

	survivorsQuiet := func() bool {
		c1 := drvs[1].Completed()
		for i := 1; i <= 3; i++ {
			d := drvs[i]
			if d.QueueLen() != 0 || d.InFlight() != 0 || d.Starting() != 0 || d.Completed() != c1 {
				return false
			}
		}
		return true
	}
	churnPoll(t, "survivors quiesce", survivorsQuiet, func() {
		for i := 1; i <= 3; i++ {
			t.Logf("node %d: queue=%d inflight=%d starting=%d completed=%d",
				i, drvs[i].QueueLen(), drvs[i].InFlight(), drvs[i].Starting(), drvs[i].Completed())
		}
	})
	assertChurnBaseline(t, "after crash", nodes[1:4], drvs[1:4])
	assertLaneChurnDecisions(t, "after crash", logs[1:4])
	for i := 1; i <= 3; i++ {
		if st := nodes[i].Stats(); st.Lanes != 4 || st.RingDrops != 0 {
			t.Errorf("node %d: lanes=%d ringDrops=%d, want 4 lanes and 0 drops", i, st.Lanes, st.RingDrops)
		}
	}

	// Restart node 4 as a fresh incarnation on a reset endpoint.
	ep4, err := mesh.ResetEndpoint(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep4.Start(); err != nil {
		t.Fatal(err)
	}
	logs[4] = newDecisionLog()
	drvs[4], nodes[4] = newLanedServiceNode(t, 4, n, 6004, codec, ep4, logs[4])

	// Wave 2: survivors submit, the fresh incarnation joins on traffic,
	// then initiates a session of its own.
	for i := 1; i <= 3; i++ {
		if err := drvs[i].Submit([]byte(fmt.Sprintf("lw2-n%d", i))); err != nil {
			t.Fatalf("node %d submit: %v", i, err)
		}
	}
	churnPoll(t, "restarted node rejoins", func() bool { return logs[4].count() >= 1 }, nil)
	if err := drvs[4].Submit([]byte("lw2-n4")); err != nil {
		t.Fatal(err)
	}
	allQuiet := func() bool {
		if drvs[4].Completed() < 2 {
			return false
		}
		for i := 1; i <= n; i++ {
			d := drvs[i]
			if d.QueueLen() != 0 || d.InFlight() != 0 || d.Starting() != 0 {
				return false
			}
		}
		return survivorsQuiet()
	}
	churnPoll(t, "rebuilt cluster quiesce", allQuiet, func() {
		for i := 1; i <= n; i++ {
			t.Logf("node %d: queue=%d inflight=%d starting=%d completed=%d",
				i, drvs[i].QueueLen(), drvs[i].InFlight(), drvs[i].Starting(), drvs[i].Completed())
		}
	})
	assertChurnBaseline(t, "after restart", nodes[1:n+1], drvs[1:n+1])
	assertLaneChurnDecisions(t, "after restart", logs[1:n+1])
	// Ring drops only ever happen at shutdown; every node here — the
	// fresh incarnation of 4 included — is still live, so all rings must
	// be clean. (The crashed first incarnation's drops died with its
	// node object.)
	for i := 1; i <= n; i++ {
		st := nodes[i].Stats()
		if st.Lanes != 4 {
			t.Errorf("node %d: %d lanes, want 4", i, st.Lanes)
		}
		if st.RingDrops != 0 {
			t.Errorf("node %d: %d live-run ring drops", i, st.RingDrops)
		}
	}
}
