// Package coinpool amortizes common-coin dealing across the concurrent
// ACS sessions of a service node. Classic operation pays a full MW-SVSS
// dealing setup — n sessions of n² moderated sharings each, the "n+2n²
// echo storm" — for every coin round of every binary agreement. The
// pool instead runs ONE batched dealing round per ACS session on the
// session's proposal-plane stack: each process deals a single SVSS
// session carrying n_aba × rounds × n lottery secrets, and the n binary
// agreements of the session consume disjoint slots of that batch as
// their coin rounds fire. Setup quorum traffic is paid once per
// (session, dealer) instead of once per (ABA, coin round, dealer,
// target).
//
// Safety rests on three arguments, asserted in tests:
//
//   - One-shot handout. A slot (one dealt secret of one dealer) is
//     reconstructed at most once, ever; Supply.Reconstruct records every
//     handout in a bitset and counts (never performs) duplicates. Reuse
//     would correlate two coin rounds and break the (1/4,1/4) bound.
//   - Per-slot hiding. Reconstruction reveals exactly the requested
//     slot (internal/mwsvss reveals per-slot shares, not dealt vectors),
//     so slots still pooled stay uniform and unknown to the adversary.
//   - Plane-outlives-ABAs retirement. The dealing lives on the plane
//     scope, so the plane retires only after every ABA scope of the
//     session halted; by then n−t DECIDE amplification finishes the
//     cluster without further coin reconstructions from this process.
package coinpool

import (
	"fmt"
	"sync"
	"sync/atomic"

	"svssba/internal/coin"
	"svssba/internal/core"
	"svssba/internal/field"
	"svssba/internal/intern"
	"svssba/internal/mwsvss"
	"svssba/internal/proto"
	"svssba/internal/sim"
	"svssba/internal/svss"
)

// Config sizes a pool.
type Config struct {
	// N, T are the cluster's agreement parameters.
	N, T int
	// Self is the owning process.
	Self sim.ProcID
	// Rounds is the number of coin rounds per binary agreement covered
	// by the pooled dealing (later rounds fall back to classic per-round
	// dealing). The batch width is N*Rounds*N secrets per dealer.
	Rounds int
}

// Validate checks the batch width fits the MW-SVSS slot bound.
func (c Config) Validate() error {
	if c.Rounds < 1 {
		return fmt.Errorf("coinpool: rounds %d < 1", c.Rounds)
	}
	if w := c.Width(); w > mwsvss.MaxBatchSlots {
		return fmt.Errorf("coinpool: width %d (n=%d rounds=%d) exceeds %d slots",
			w, c.N, c.Rounds, mwsvss.MaxBatchSlots)
	}
	return nil
}

// Width is the per-dealer batch width: n agreements × Rounds coin
// rounds × n attach targets.
func (c Config) Width() int { return c.N * c.Rounds * c.N }

// slotOf flattens (agreement j, coin round r, target) into a batch
// slot: agreement-major, then round, then target — so one agreement's
// slots are contiguous and low agreements use low slots.
func (c Config) slotOf(abaJ int, r uint64, target sim.ProcID) int {
	return ((abaJ-1)*c.Rounds+int(r)-1)*c.N + int(target) - 1
}

// Stats is an atomic snapshot of the pool gauges.
type Stats struct {
	// Depth is the number of dealt-and-unconsumed slots across live
	// supplies (a dealer's slots enter when its batch share completes
	// locally, leave one per handout or when the supply releases).
	Depth int64
	// Reserved is the number of slots reserved by open sessions whose
	// dealing is still in flight (reserved at supply open, moving to
	// Depth per completed dealer).
	Reserved int64
	// Refills counts dealing rounds started (one per supply).
	Refills int64
	// Handouts counts slots handed out (one-shot, each to one coin
	// round).
	Handouts int64
	// DoubleHandouts counts handout requests for an already-consumed
	// slot. Must be zero: a reuse would correlate coin rounds.
	DoubleHandouts int64
	// Live is the number of live supplies (sessions holding pool state).
	Live int64
}

// Pool owns the per-session supplies of one service node. On a
// multi-lane node each session's methods run on that session's lane:
// a Supply's internals are lane-confined (every scope of one sid pins
// to one lane via acs.LaneKey), so only the supplies map itself is
// shared across lanes and needs the mutex. Stats is safe anywhere.
type Pool struct {
	cfg Config

	mu       sync.Mutex // guards supplies (the map only, not Supply state)
	supplies map[uint64]*Supply

	depth, reserved, refills, handouts, doubleHandouts, live atomic.Int64
}

// New builds a pool. Call Validate on the config first.
func New(cfg Config) *Pool {
	return &Pool{cfg: cfg, supplies: make(map[uint64]*Supply)}
}

// Rounds returns the configured coin-round coverage.
func (p *Pool) Rounds() int { return p.cfg.Rounds }

// Stats snapshots the pool gauges (safe from any goroutine).
func (p *Pool) Stats() Stats {
	return Stats{
		Depth:          p.depth.Load(),
		Reserved:       p.reserved.Load(),
		Refills:        p.refills.Load(),
		Handouts:       p.handouts.Load(),
		DoubleHandouts: p.doubleHandouts.Load(),
		Live:           p.live.Load(),
	}
}

// Supply returns session sid's supply (nil when none).
func (p *Pool) Supply(sid uint64) *Supply {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.supplies[sid]
}

// Supply is one ACS session's slice of the pool: the batched dealings
// hosted on that session's plane stack, the handout ledger, and the
// per-agreement consumers.
type Supply struct {
	pool  *Pool
	sid   uint64
	plane *planeRef

	order     []sim.ProcID // dealers whose batch share completed locally
	done      intern.ProcSet
	handed    intern.Bits // (dealer-1)*width + slot
	consumers []*Consumer // 1..n by agreement slot
	onReady   func()      // fires once when self's own dealing completes
	released  bool
}

// planeRef is what the supply needs from the plane scope: the stack
// whose SVSS hosts the dealings, a scoped send context, and a way to
// mark the scope touched after mutating it.
type planeRef struct {
	stack *core.Stack
	ctx   sim.Context
	touch func()
}

// Open creates the supply for session sid, installs the KindCoin
// consumer on the plane stack, and deals this process's batch through
// the plane's scoped context. onReady (optional) fires once when our
// own dealing share-completes locally — the pipelined-startup signal.
// Call from the plane scope's Opened hook.
func (p *Pool) Open(sid uint64, st *core.Stack, ctx sim.Context, touch func(), onReady func()) *Supply {
	s := &Supply{
		pool:      p,
		sid:       sid,
		plane:     &planeRef{stack: st, ctx: ctx, touch: touch},
		consumers: make([]*Consumer, p.cfg.N+1),
		onReady:   onReady,
	}
	p.mu.Lock()
	if prev := p.supplies[sid]; prev != nil {
		p.mu.Unlock()
		return prev
	}
	p.supplies[sid] = s
	p.mu.Unlock()
	p.live.Add(1)
	p.refills.Add(1)
	p.reserved.Add(int64(p.cfg.N * p.cfg.Width()))
	st.ConsumeSVSS(proto.KindCoin, core.SVSSConsumer{
		ShareComplete: s.onShareComplete,
		ReconComplete: s.onReconComplete,
	})
	// Deal our batch: width independent uniform lottery secrets.
	u := uint64(p.cfg.N)
	u = u * u * u * u
	secrets := make([]field.Element, p.cfg.Width())
	for i := range secrets {
		secrets[i] = field.New(uint64(ctx.Rand().Int63n(int64(u))))
	}
	// Errors cannot occur: we are the dealer and the session is new.
	_ = st.SVSS.ShareVec(ctx, coin.BatchSessionFor(p.cfg.Self), secrets)
	return s
}

// Attach wires agreement slot j's coin engine to this supply and
// replays dealings that completed before the agreement's scope opened.
// abaCtx/abaTouch scope the engine's sends and retirement bookkeeping.
func (s *Supply) Attach(j int, eng *coin.Engine, abaCtx sim.Context, abaTouch func()) *Consumer {
	c := &Consumer{sup: s, j: j, eng: eng, ctx: abaCtx, touch: abaTouch}
	s.consumers[j] = c
	eng.SetSupply(c)
	return c
}

// Detach drops agreement slot j's consumer (its scope retired); later
// dealing and reconstruction events for it are discarded.
func (s *Supply) Detach(j int) {
	if j >= 1 && j < len(s.consumers) {
		s.consumers[j] = nil
	}
}

// Release drops the supply when its session's plane retires, returning
// unconsumed state to the gauges. Idempotent.
func (p *Pool) Release(sid uint64) {
	p.mu.Lock()
	s := p.supplies[sid]
	if s == nil || s.released {
		p.mu.Unlock()
		return
	}
	s.released = true
	delete(p.supplies, sid)
	p.mu.Unlock()
	p.live.Add(-1)
	width := int64(p.cfg.Width())
	completed := int64(s.done.Count())
	p.reserved.Add(-(int64(p.cfg.N) - completed) * width)
	p.depth.Add(-(completed*width - int64(s.handed.Count())))
}

// onShareComplete runs on the plane stack's SVSS completion path:
// dealer sid.Dealer's batch is locally shared; every pooled coin round
// of every attached agreement can now count it.
func (s *Supply) onShareComplete(_ sim.Context, svsid proto.SessionID) {
	if svsid.Index != 0 || s.released {
		return // not a batched dealing (classic coin never lives here)
	}
	k := svsid.Dealer
	if !s.done.Add(k) {
		return
	}
	s.order = append(s.order, k)
	s.pool.reserved.Add(-int64(s.pool.cfg.Width()))
	s.pool.depth.Add(int64(s.pool.cfg.Width()))
	for j := 1; j < len(s.consumers); j++ {
		if c := s.consumers[j]; c != nil {
			c.touch()
			c.eng.OnBatchShareDone(c.ctx, k)
		}
	}
	if k == s.pool.cfg.Self && s.onReady != nil {
		ready := s.onReady
		s.onReady = nil
		ready()
	}
}

// onReconComplete routes a reconstructed batch slot to the agreement
// that owns it.
func (s *Supply) onReconComplete(_ sim.Context, svsid proto.SessionID, slot int, out svss.Output) {
	if svsid.Index != 0 || s.released {
		return
	}
	cfg := s.pool.cfg
	perABA := cfg.Rounds * cfg.N
	j := slot/perABA + 1
	if j < 1 || j >= len(s.consumers) {
		return
	}
	rem := slot % perABA
	r := uint64(rem/cfg.N) + 1
	target := sim.ProcID(rem%cfg.N) + 1
	if c := s.consumers[j]; c != nil {
		c.touch()
		c.eng.OnBatchRecon(c.ctx, svsid.Dealer, r, target, out)
	}
}

// Consumer adapts one agreement's view of the supply to the coin
// engine's Supply port.
type Consumer struct {
	sup   *Supply
	j     int
	eng   *coin.Engine
	ctx   sim.Context
	touch func()
}

var _ coin.Supply = (*Consumer)(nil)

// Rounds implements coin.Supply.
func (c *Consumer) Rounds() int { return c.sup.pool.cfg.Rounds }

// EnsureDealt implements coin.Supply. The plane dealt at session open,
// ahead of any agreement demand — nothing to do.
func (c *Consumer) EnsureDealt(sim.Context) {}

// DoneOrder implements coin.Supply.
func (c *Consumer) DoneOrder() []sim.ProcID { return c.sup.order }

// Reconstruct implements coin.Supply: hand out the slots holding dealer
// k's secrets attached to the given targets in round r of this
// agreement, opening their reconstructions on the plane stack as one
// grouped request (the targets map to adjacent slots, revealed together
// in one slab). One-shot: a slot requested twice is counted and refused.
func (c *Consumer) Reconstruct(_ sim.Context, k sim.ProcID, r uint64, targets []sim.ProcID) {
	s := c.sup
	cfg := s.pool.cfg
	slots := make([]int, 0, len(targets))
	for _, target := range targets {
		slot := cfg.slotOf(c.j, r, target)
		idx := (int(k)-1)*cfg.Width() + slot
		if !s.handed.Add(idx) {
			s.pool.doubleHandouts.Add(1)
			continue
		}
		s.pool.handouts.Add(1)
		s.pool.depth.Add(-1)
		slots = append(slots, slot)
	}
	if len(slots) == 0 {
		return
	}
	s.plane.touch()
	s.plane.stack.SVSS.ReconstructSlots(s.plane.ctx, coin.BatchSessionFor(k), slots)
}
