package proto_test

import (
	"bytes"
	"testing"

	"svssba/internal/core"
	"svssba/internal/proto"
	"svssba/internal/rb"
	"svssba/internal/sim"
)

// benchBatch is a representative outbox flush: a run of same-kind RB
// messages sharing one group header plus a trailing singleton — the
// shape the node runtime's coalescer hands to AppendEncodeBatch.
func benchBatch() []sim.Payload {
	ps := make([]sim.Payload, 0, 9)
	for i := 0; i < 8; i++ {
		ps = append(ps, rb.Msg{Origin: sim.ProcID(i%4 + 1), Tag: benchTag, Value: []byte("0123456789abcdef")})
	}
	ps = append(ps, rb.Msg{Origin: 1, Tag: benchTag, Value: []byte("tail")})
	return ps
}

// BenchmarkEncodeBatchReuse tracks the per-flush cost of the outbox hot
// path once the encode buffer is warm: AppendEncodeBatch into a reused
// buffer must not allocate (TestEncodeBatchReuseZeroAlloc enforces it).
func BenchmarkEncodeBatchReuse(b *testing.B) {
	c := core.NewCodec()
	ps := benchBatch()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc, err := c.AppendEncodeBatch(buf[:0], ps)
		if err != nil {
			b.Fatal(err)
		}
		buf = enc
	}
}

// TestEncodeBatchReuseZeroAlloc pins the outbox flush contract: with a
// warm reused buffer, batch encoding is allocation-free per flush.
func TestEncodeBatchReuseZeroAlloc(t *testing.T) {
	c := core.NewCodec()
	ps := benchBatch()
	buf, err := c.EncodeBatch(ps) // warm the buffer to full size
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		enc, err := c.AppendEncodeBatch(buf[:0], ps)
		if err != nil {
			t.Fatal(err)
		}
		buf = enc
	})
	if allocs != 0 {
		t.Fatalf("AppendEncodeBatch with warm buffer: %v allocs/op, want 0", allocs)
	}
}

// BenchmarkReaderPool tracks the header-recycling decode layer: acquire
// a pooled Reader, walk a frame (kind header, tag-sized fields, aliasing
// VarBytes), release it. Warm this is allocation-free — the layer the
// per-payload "NewReader escapes" cost used to live in
// (TestReaderPoolZeroAlloc enforces it).
func BenchmarkReaderPool(b *testing.B) {
	c := core.NewCodec()
	enc, err := c.Encode(benchMsg)
	if err != nil {
		b.Fatal(err)
	}
	body := enc[2+len(benchMsg.Kind()):] // past the kind header
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := proto.GetReader(body)
		r.Proc()                 // Origin
		proto.ReadTag(r)         // Tag
		if r.VarBytes() == nil { // Value, aliasing enc
			b.Fatal("nil value")
		}
		if err := r.Close(); err != nil {
			b.Fatal(err)
		}
		proto.PutReader(r)
	}
}

// TestReaderPoolZeroAlloc pins the decode-side recycling contract: a
// warm GetReader/walk/PutReader cycle with zero-copy VarBytes performs
// no allocation.
func TestReaderPoolZeroAlloc(t *testing.T) {
	c := core.NewCodec()
	enc, err := c.Encode(benchMsg)
	if err != nil {
		t.Fatal(err)
	}
	body := enc[2+len(benchMsg.Kind()):]
	allocs := testing.AllocsPerRun(100, func() {
		r := proto.GetReader(body)
		r.Proc()
		proto.ReadTag(r)
		if r.VarBytes() == nil {
			t.Fatal("nil value")
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		proto.PutReader(r)
	})
	if allocs != 0 {
		t.Fatalf("pooled reader walk: %v allocs/op, want 0", allocs)
	}
}

// TestVarBytesAliasing documents the zero-copy split: VarBytes aliases
// the input buffer (mutations show through), VarBytesCopy detaches.
func TestVarBytesAliasing(t *testing.T) {
	var w proto.Writer
	w.VarBytes([]byte("payload"))
	src := append([]byte(nil), w.Bytes()...)

	r := proto.NewReader(src)
	aliased := r.VarBytes()
	r = proto.NewReader(src)
	copied := r.VarBytesCopy()

	src[4] ^= 0xFF // mutate a byte inside the payload region
	if bytes.Equal(aliased, []byte("payload")) {
		t.Fatal("VarBytes returned a copy; expected it to alias the input")
	}
	if !bytes.Equal(copied, []byte("payload")) {
		t.Fatalf("VarBytesCopy affected by source mutation: %q", copied)
	}
}

// FuzzVarBytesCopyAliasing drives the copy-out helper with arbitrary
// buffers: whatever VarBytesCopy returns must stay intact when the
// source buffer is mutated afterwards — the property consumers that
// store payloads past frame delivery rely on.
func FuzzVarBytesCopyAliasing(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x03, 0x00, 0x00, 0x00, 'a', 'b', 'c'})
	var w proto.Writer
	w.VarBytes(bytes.Repeat([]byte{0x5a}, 64))
	f.Add(append([]byte(nil), w.Bytes()...))
	f.Fuzz(func(t *testing.T, b []byte) {
		src := append([]byte(nil), b...)
		r := proto.NewReader(src)
		copied := r.VarBytesCopy()
		if r.Err() != nil {
			return
		}
		want := append([]byte(nil), copied...)
		for i := range src {
			src[i] = ^src[i]
		}
		if !bytes.Equal(copied, want) {
			t.Fatalf("copied payload changed when source was mutated:\n  before: %x\n  after:  %x", want, copied)
		}
	})
}
