package core

import (
	"svssba/internal/mwsvss"
	"svssba/internal/proto"
	"svssba/internal/rb"
	"svssba/internal/sim"
	"svssba/internal/wrb"
)

// Wire v2 restructures a node's outgoing traffic around delivery bursts.
// A burst is one Deliver (or Init) call: every direct payload the burst
// produces for one destination is coalesced into a single proto.Pack,
// and every logical broadcast it produces is coalesced into ProtoBundle
// reliable broadcasts, so the RB echo storm is paid once per burst
// instead of once per logical message. Identical echo bodies to the same
// peer within a burst are additionally deduplicated before they enter
// the pack (the engines' one-shot guards make honest duplicates
// impossible, so the counter doubles as an invariant check).
//
// v2 changes message shape, not protocol logic: every bundle item is
// filtered, observed and dispatched through the same per-event path as a
// v1 broadcast, and every pack item through the same per-payload path as
// a v1 direct message. The one semantic difference is that per-
// (origin, tag) broadcast uniqueness is enforced by the upper layers'
// first-wins guards rather than by RB itself (a Byzantine origin could
// re-announce a tag across two bundles); every handler in the stack
// carries such a guard. v2 therefore runs as a declared protocol variant
// with its own pinned parity digest and a cross-variant equivalence
// test against v1.

// maxBundleItems bounds logical broadcasts per ProtoBundle instance, so
// one bundle body (the RB value that gets echoed and counted) stays
// small even during reveal cascades.
const maxBundleItems = 256

// EnableWireV2 switches the node to burst-coalesced traffic. Call before
// Init; all nodes of a run must agree on the wire variant.
func (n *Node) EnableWireV2() { n.wire2 = true }

// WireV2 reports whether burst coalescing is enabled.
func (n *Node) WireV2() bool { return n.wire2 }

// EchoDeduped returns the number of duplicate echo payloads suppressed
// within delivery bursts (expected 0 for honest traffic).
func (n *Node) EchoDeduped() uint64 { return n.echoDeduped }

// burstCtx intercepts sends during a v2 delivery burst: tampering is
// applied per logical payload against the raw context (so Byzantine
// behaviors see exactly the v1-shaped traffic), then the payload is
// buffered into the per-destination pack.
type burstCtx struct {
	sim.Context // raw context
	node        *Node
}

func (c burstCtx) Send(to sim.ProcID, p sim.Payload) {
	n := c.node
	if n.sendTamper != nil {
		out, keep := n.sendTamper(c.Context, to, p)
		if !keep {
			return
		}
		p = out
	}
	if !n.inBurst {
		c.Context.Send(to, p)
		return
	}
	n.packAdd(c.Context, to, p)
}

// echoKey identifies an echo payload for within-burst deduplication.
type echoKey struct {
	to     sim.ProcID
	origin sim.ProcID
	tag    proto.Tag
	phase  uint8
}

const (
	echoPhaseWRB uint8 = 2    // wrb phase-2 echo
	echoPhaseRB  uint8 = 3    // rb type-3 echo
	echoPhaseMW  uint8 = 0xEE // mwsvss direct echo
)

// dedupKey extracts the dedup key for echo-class payloads; ok is false
// for everything else (those always pack).
func (n *Node) dedupKey(to sim.ProcID, p sim.Payload) (echoKey, bool) {
	switch v := p.(type) {
	case wrb.Msg:
		if v.Phase != 2 {
			return echoKey{}, false
		}
		return echoKey{to: to, origin: v.Origin, tag: v.Tag, phase: echoPhaseWRB}, true
	case rb.Msg:
		return echoKey{to: to, origin: v.Origin, tag: v.Tag, phase: echoPhaseRB}, true
	case mwsvss.Echo:
		t := proto.Tag{Proto: proto.ProtoMW, Session: v.MW.Session, MW: v.MW.Key}
		return echoKey{to: to, origin: n.id, tag: t, phase: echoPhaseMW}, true
	}
	return echoKey{}, false
}

// packAdd buffers p for destination to, deduplicating echo payloads.
func (n *Node) packAdd(ctx sim.Context, to sim.ProcID, p sim.Payload) {
	if k, ok := n.dedupKey(to, p); ok {
		if n.echoSeen == nil {
			n.echoSeen = make(map[echoKey]struct{})
		}
		if _, dup := n.echoSeen[k]; dup {
			n.echoDeduped++
			return
		}
		n.echoSeen[k] = struct{}{}
	}
	i := int(to) - 1
	if i < 0 || i >= ctx.N() {
		ctx.Send(to, p) // out-of-range destination: let the network account for it
		return
	}
	if n.packBuf == nil {
		n.packBuf = make([][]sim.Payload, ctx.N())
	}
	if len(n.packBuf[i]) == 0 {
		n.packOrder = append(n.packOrder, to)
	}
	n.packBuf[i] = append(n.packBuf[i], p)
}

// bundleAdd buffers one logical broadcast for the burst's bundles.
func (n *Node) bundleAdd(tag proto.Tag, value []byte) {
	n.bunTags = append(n.bunTags, tag)
	n.bunVals = append(n.bunVals, value)
}

// flushBurst ends a burst: buffered broadcasts first (their RB type-1
// traffic lands in the pack buffers), then one pack per destination.
func (n *Node) flushBurst(raw, wctx sim.Context) {
	for len(n.bunTags) > 0 {
		n.flushBroadcasts(wctx)
	}
	n.flushPacks(raw)
	clear(n.echoSeen)
}

// flushBroadcasts drains the bundle buffer into ProtoBundle reliable
// broadcasts of at most maxBundleItems each. A lone buffered broadcast
// goes out in its native v1 shape.
func (n *Node) flushBroadcasts(wctx sim.Context) {
	tags, vals := n.bunTags, n.bunVals
	n.bunTags, n.bunVals = n.bunTags[:0], n.bunVals[:0]
	if len(tags) == 1 {
		n.rbEng.Broadcast(wctx, tags[0], vals[0])
		return
	}
	for len(tags) > 0 {
		k := len(tags)
		if k > maxBundleItems {
			k = maxBundleItems
		}
		bt := proto.Tag{Proto: proto.ProtoBundle, A: n.bunSeq}
		n.bunSeq++
		n.rbEng.Broadcast(wctx, bt, proto.EncodeBundle(tags[:k], vals[:k]))
		tags, vals = tags[k:], vals[k:]
	}
}

// flushPacks sends the buffered per-destination payloads. Tampering
// already ran per item, so packs go out on the raw context; a lone
// payload goes out bare.
func (n *Node) flushPacks(raw sim.Context) {
	order := n.packOrder
	n.packOrder = n.packOrder[:0]
	for _, to := range order {
		i := int(to) - 1
		items := n.packBuf[i]
		n.packBuf[i] = nil
		if len(items) == 1 {
			raw.Send(to, items[0])
			continue
		}
		raw.Send(to, proto.Pack{Items: items})
	}
}

// deliverPack unpacks a received Pack and runs each item through the
// standard single-payload delivery path (RB handling, DMM filtering and
// parked-event draining per item). Nested packs are dropped.
func (n *Node) deliverPack(ctx sim.Context, m sim.Message, pk proto.Pack) {
	for _, item := range pk.Items {
		if _, nested := item.(proto.Pack); nested {
			continue
		}
		// Re-check per item: an earlier item may have shunned the sender.
		if n.dmmSt.IsFaulty(m.From) {
			return
		}
		im := m // inherit From/To/Seq/SentAt from the carrier
		im.Payload = item
		if !n.rbEng.Handle(ctx, im) {
			n.dispatchDirect(ctx, im)
		}
		n.drain(ctx)
	}
}
