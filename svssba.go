// Package svssba is a from-scratch Go implementation of
//
//	"An Almost-Surely Terminating Polynomial Protocol for Asynchronous
//	 Byzantine Agreement with Optimal Resilience"
//	Ittai Abraham, Danny Dolev, Joseph Y. Halpern — PODC 2008.
//
// It provides asynchronous binary Byzantine agreement for n > 3t that
// terminates with probability 1 in expected-polynomial time, built on
// the paper's shunning verifiable secret sharing (SVSS), moderated weak
// SVSS (MW-SVSS), the detection-and-message-management (DMM) protocol,
// Bracha reliable broadcast, and a shunning common coin — plus the
// prior-work baselines the paper compares against and a deterministic
// asynchronous network simulator to run everything on.
//
// The top-level API runs whole experiments: configure a cluster
// (process count, inputs, faults, scheduler, protocol), call Run /
// RunCoin / RunSVSS — or RunMany to fan a batch of independent runs
// across CPUs — and inspect the Result. Every run is a deterministic
// function of its Config (seed included). Examples live under
// examples/, the experiment harness in internal/exp, internal/runner,
// bench_test.go and cmd/expsweep.
package svssba

import (
	"fmt"

	"svssba/internal/adversary"
	"svssba/internal/baseline"
	"svssba/internal/core"
	"svssba/internal/mwsvss"
	"svssba/internal/proto"
	"svssba/internal/sim"
)

// Protocol selects the agreement protocol to run.
type Protocol string

// Protocols.
const (
	// ProtocolADH is the paper's protocol: SVSS-based shunning common
	// coin + voting (optimal resilience, almost-sure termination,
	// polynomial).
	ProtocolADH Protocol = "adh"
	// ProtocolBenOr is Ben-Or's local-coin protocol (needs n > 5t).
	ProtocolBenOr Protocol = "benor"
	// ProtocolLocalCoin is the voting layer with local coins (optimal
	// resilience, but exponential expected rounds).
	ProtocolLocalCoin Protocol = "localcoin"
	// ProtocolEpsCoin is the voting layer over an ideal common coin that
	// fails forever with probability Eps per round (models the
	// Canetti–Rabin protocol's non-a.s. termination).
	ProtocolEpsCoin Protocol = "epscoin"
)

// FaultKind selects a Byzantine behaviour for a process.
type FaultKind string

// Fault kinds.
const (
	// FaultCrash drops the process entirely (fail-stop at time zero).
	FaultCrash FaultKind = "crash"
	// FaultSilent keeps the process receiving but never sending.
	FaultSilent FaultKind = "silent"
	// FaultVoteFlip inverts all agreement votes.
	FaultVoteFlip FaultKind = "vote-flip"
	// FaultVoteEquivocate sends opposite votes to different peers.
	FaultVoteEquivocate FaultKind = "vote-equivocate"
	// FaultRValLie corrupts MW-SVSS reconstruction broadcasts (the
	// Example 1 attack; provokes shunning).
	FaultRValLie FaultKind = "rval-lie"
	// FaultDealCorrupt corrupts dealt SVSS polynomials.
	FaultDealCorrupt FaultKind = "deal-corrupt"
	// FaultEchoLie corrupts MW-SVSS share-phase echoes.
	FaultEchoLie FaultKind = "echo-lie"
	// FaultMuteBurst buffers the process's first outbound messages, then
	// replays the whole backlog in one burst and behaves normally.
	FaultMuteBurst FaultKind = "mute-burst"
	// FaultTargetedDelay starves processes 1..t+1 of this process's
	// traffic, releasing the backlog in a burst after feeding the rest.
	FaultTargetedDelay FaultKind = "targeted-delay"
	// FaultCrossEquivocate corrupts MW-SVSS echoes and reconstruction
	// broadcasts only in odd-round sessions (cross-session equivocation).
	FaultCrossEquivocate FaultKind = "cross-equivocate"
	// FaultCoinBias rewrites coin-session reconstruction broadcasts,
	// attempting to bias the common coin (and provoking shunning).
	FaultCoinBias FaultKind = "coin-bias"
)

// Fault assigns a behaviour to a process (1-based id).
type Fault struct {
	Proc int
	Kind FaultKind
}

// SchedulerKind selects the asynchrony model.
type SchedulerKind string

// Schedulers.
const (
	// SchedRandom delivers a uniformly random pending message each step.
	SchedRandom SchedulerKind = "random"
	// SchedFIFO delivers in global send order.
	SchedFIFO SchedulerKind = "fifo"
	// SchedDelayUniform assigns uniform random delays in [DelayLo, DelayHi].
	SchedDelayUniform SchedulerKind = "delay-uniform"
	// SchedDelayExp assigns exponential delays (mean DelayMean, cap DelayCap).
	SchedDelayExp SchedulerKind = "delay-exp"
	// SchedPartition holds all traffic across a cut (PartitionCut vs the
	// rest) until virtual time PartitionHealAt, then delivers randomly.
	// The cut heals early if nothing else is deliverable, so delivery
	// stays eventual.
	SchedPartition SchedulerKind = "partition"
)

// Config describes one agreement run.
type Config struct {
	// N is the number of processes; T the resilience bound (defaults to
	// floor((N-1)/3)).
	N int
	T int
	// Seed drives all randomness (schedule, polynomial coefficients,
	// coins); equal seeds give identical runs.
	Seed int64
	// Protocol defaults to ProtocolADH.
	Protocol Protocol
	// Inputs are the binary proposals, one per process (defaults to
	// alternating 0/1).
	Inputs []int
	// Faults assigns Byzantine behaviours. Non-crash behaviours are
	// supported by ProtocolADH only.
	Faults []Fault
	// Scheduler defaults to SchedRandom.
	Scheduler SchedulerKind
	// DelayLo/DelayHi parameterize SchedDelayUniform.
	DelayLo, DelayHi int64
	// DelayMean/DelayCap parameterize SchedDelayExp.
	DelayMean, DelayCap int64
	// PartitionCut lists the process ids isolated by SchedPartition
	// (defaults to the last T processes); PartitionHealAt is the virtual
	// time at which the cut heals (defaults to 2000).
	PartitionCut []int
	// PartitionHealAt is the heal time for SchedPartition.
	PartitionHealAt int64
	// Eps is the per-round failure probability of ProtocolEpsCoin.
	Eps float64
	// MaxSteps bounds the run (defaults to 500M deliveries).
	MaxSteps int
	// Batching turns on the coalescing-outbox frame model: all payloads a
	// process sends to one destination within one delivery step count as
	// a single physical frame (Result.Frames). Scheduling, decisions and
	// every logical counter are byte-identical to the unbatched run of
	// the same seed.
	Batching bool
	// Wire selects the wire variant for ProtocolADH: "v1" (default, one
	// message per logical payload) or "v2" (burst coalescing — per-
	// destination packs, ProtoBundle broadcast bundles, within-burst echo
	// dedup; see internal/core/wire2.go). v2 is a declared protocol
	// variant: decisions and coin outcomes match v1 (see the cross-
	// variant equivalence test) but message shapes, schedules and counts
	// differ, so it carries its own parity digest. Baseline protocols
	// ignore Wire.
	Wire string
	// CoinBatch > 0 switches ProtocolADH coin rounds 1..CoinBatch to
	// batched dealing: each process deals one CoinBatch*N-secret SVSS
	// session up front instead of one N-session dealing storm per round,
	// paying the MW quorum setup once. A declared protocol variant like
	// Wire: decisions and agreement properties are preserved (see the
	// batch equivalence test) but message schedules differ, so the v1
	// parity digest applies only to CoinBatch == 0.
	CoinBatch int
}

func (c *Config) normalize() error {
	if c.N < 2 {
		return fmt.Errorf("svssba: need at least 2 processes, have %d", c.N)
	}
	if c.T == 0 {
		c.T = (c.N - 1) / 3
	}
	if c.Protocol == "" {
		c.Protocol = ProtocolADH
	}
	if c.Scheduler == "" {
		c.Scheduler = SchedRandom
	}
	if len(c.Inputs) == 0 {
		c.Inputs = make([]int, c.N)
		for i := range c.Inputs {
			c.Inputs[i] = i % 2
		}
	}
	if len(c.Inputs) != c.N {
		return fmt.Errorf("svssba: %d inputs for %d processes", len(c.Inputs), c.N)
	}
	for _, in := range c.Inputs {
		if in != 0 && in != 1 {
			return fmt.Errorf("svssba: input %d is not binary", in)
		}
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 500_000_000
	}
	switch c.Wire {
	case "":
		c.Wire = "v1"
	case "v1", "v2":
	default:
		return fmt.Errorf("svssba: unknown wire variant %q", c.Wire)
	}
	if c.CoinBatch < 0 {
		return fmt.Errorf("svssba: negative CoinBatch %d", c.CoinBatch)
	}
	if c.CoinBatch*c.N > mwsvss.MaxBatchSlots {
		return fmt.Errorf("svssba: CoinBatch %d exceeds %d slots at n=%d",
			c.CoinBatch, mwsvss.MaxBatchSlots, c.N)
	}
	for _, f := range c.Faults {
		if f.Proc < 1 || f.Proc > c.N {
			return fmt.Errorf("svssba: fault on unknown process %d", f.Proc)
		}
		if c.Protocol != ProtocolADH && f.Kind != FaultCrash {
			return fmt.Errorf("svssba: %s faults require ProtocolADH", f.Kind)
		}
	}
	return nil
}

func (c *Config) scheduler() sim.Scheduler {
	switch c.Scheduler {
	case SchedFIFO:
		return sim.NewFIFOScheduler()
	case SchedDelayUniform:
		lo, hi := c.DelayLo, c.DelayHi
		if hi == 0 {
			hi = 100
		}
		return sim.NewDelayScheduler(c.Seed+1, sim.UniformDelay{Lo: lo, Hi: hi})
	case SchedDelayExp:
		mean, cap := c.DelayMean, c.DelayCap
		if mean == 0 {
			mean = 50
		}
		if cap == 0 {
			cap = 20 * mean
		}
		return sim.NewDelayScheduler(c.Seed+1, sim.ExpDelay{Mean: mean, Cap: cap})
	case SchedPartition:
		cut := make([]sim.ProcID, 0, len(c.PartitionCut))
		for _, p := range c.PartitionCut {
			cut = append(cut, sim.ProcID(p))
		}
		if len(cut) == 0 {
			for p := c.N - c.T + 1; p <= c.N; p++ {
				cut = append(cut, sim.ProcID(p))
			}
		}
		healAt := c.PartitionHealAt
		if healAt == 0 {
			healAt = 2000
		}
		return sim.NewPartitionScheduler(sim.NewRandomScheduler(c.Seed+1), cut, healAt)
	default:
		return sim.NewRandomScheduler(c.Seed + 1)
	}
}

// behaviorFor maps a fault kind to an adversary behaviour; t sizes the
// victim sets of the targeting behaviours.
func behaviorFor(kind FaultKind, t int) (adversary.Behavior, bool) {
	switch kind {
	case FaultSilent:
		return adversary.Silent(), true
	case FaultVoteFlip:
		return adversary.VoteFlipper(), true
	case FaultVoteEquivocate:
		return adversary.VoteEquivocator(), true
	case FaultRValLie:
		return adversary.RValLiar(1), true
	case FaultDealCorrupt:
		return adversary.DealCorruptor(map[sim.ProcID]bool{1: true, 2: true}), true
	case FaultEchoLie:
		return adversary.EchoLiar(1), true
	case FaultMuteBurst:
		return adversary.MuteThenBurst(32), true
	case FaultTargetedDelay:
		victims := make([]sim.ProcID, 0, t+1)
		for p := 1; p <= t+1; p++ {
			victims = append(victims, sim.ProcID(p))
		}
		return adversary.TargetedDelay(64, victims...), true
	case FaultCrossEquivocate:
		return adversary.CrossSessionEquivocator(1), true
	case FaultCoinBias:
		return adversary.CoinBiaser(0), true
	default:
		return adversary.Behavior{}, false
	}
}

// Shun records one D_i addition: By started shunning Detected.
type Shun struct {
	By       int
	Detected int
}

// Result reports one agreement run.
type Result struct {
	// Decisions maps process id to its decision (honest and faulty).
	Decisions map[int]int
	// AllDecided reports whether every honest process decided.
	AllDecided bool
	// Agreed reports whether all honest decisions coincide.
	Agreed bool
	// Value is the agreed value (meaningful when Agreed).
	Value int
	// MaxRound is the highest voting round any honest process entered.
	MaxRound uint64
	// Steps is the number of message deliveries.
	Steps int
	// VirtualTime is the simulator clock at the end of the run.
	VirtualTime int64
	// Messages and Bytes count all sent traffic; MsgsByKind breaks the
	// count down by payload kind. Frames counts physical network
	// messages: equal to the enqueued payload count without batching,
	// one per (delivery step, destination) group with Config.Batching.
	Messages   int64
	Bytes      int64
	Frames     int64
	MsgsByKind map[string]int64
	// Shuns lists D_i additions observed during the run.
	Shuns []Shun
	// TimedOut reports that MaxSteps was exhausted first.
	TimedOut bool
	// CoinRounds is the largest number of common-coin outputs any honest
	// process observed (ProtocolADH only) — the denominator of the
	// deliveries-per-coin-round complexity metric.
	CoinRounds uint64
	// RBCreated/WRBCreated/MWCreated/SVSSCreated are cumulative instance
	// creation counts summed over all processes (ProtocolADH only): the
	// per-layer denominators of the message-complexity report.
	RBCreated, WRBCreated, MWCreated, SVSSCreated uint64
	// EchoDeduped counts within-burst duplicate echoes suppressed under
	// Wire "v2" (expected 0 for honest traffic; the counter is an
	// invariant check as much as an optimization metric).
	EchoDeduped uint64
}

// Run executes one agreement run described by cfg.
func Run(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	nw := sim.NewNetwork(cfg.N, cfg.T, cfg.Seed,
		sim.WithScheduler(cfg.scheduler()), sim.WithBatching(cfg.Batching))
	res := &Result{Decisions: make(map[int]int)}

	faults := make(map[int]FaultKind, len(cfg.Faults))
	for _, f := range cfg.Faults {
		faults[f.Proc] = f.Kind
	}
	honest := make([]int, 0, cfg.N)
	for i := 1; i <= cfg.N; i++ {
		if _, bad := faults[i]; !bad {
			honest = append(honest, i)
		}
	}

	roundOf := make(map[int]func() uint64, cfg.N)
	var stacks []*core.Stack
	coinFlips := make([]uint64, cfg.N+1)
	switch cfg.Protocol {
	case ProtocolADH:
		stacks = make([]*core.Stack, cfg.N+1)
		for i := 1; i <= cfg.N; i++ {
			id := sim.ProcID(i)
			pid := i
			st := core.NewStack(id, func(j sim.ProcID, _ proto.MWID) {
				res.Shuns = append(res.Shuns, Shun{By: pid, Detected: int(j)})
			})
			st.OnDecide(func(_ sim.Context, v int) { res.Decisions[pid] = v })
			st.OnCoin(func(_ sim.Context, _ uint64, _ int) { coinFlips[pid]++ })
			input := cfg.Inputs[i-1]
			st.Node.AddInit(func(ctx sim.Context) {
				// Input validity is checked in normalize.
				_ = st.ABA.Propose(ctx, input)
			})
			if cfg.Wire == "v2" {
				st.EnableWireV2()
			}
			if cfg.CoinBatch > 0 {
				st.EnableCoinBatch(cfg.CoinBatch)
			}
			if kind, bad := faults[i]; bad && kind != FaultCrash {
				if b, ok := behaviorFor(kind, cfg.T); ok {
					adversary.Apply(st, b)
				}
			}
			stacks[i] = st
			eng := st.ABA
			roundOf[pid] = func() uint64 { return eng.Round() }
			if err := nw.Register(st.Node); err != nil {
				return nil, err
			}
		}
	case ProtocolBenOr:
		for i := 1; i <= cfg.N; i++ {
			pid := i
			node := baseline.NewBenOrNode(sim.ProcID(i), cfg.Inputs[i-1], func(_ sim.Context, v int) {
				res.Decisions[pid] = v
			})
			node.Eng.MaxRounds = 200
			eng := node.Eng
			roundOf[pid] = func() uint64 { return eng.Round() }
			if err := nw.Register(node); err != nil {
				return nil, err
			}
		}
	case ProtocolLocalCoin:
		for i := 1; i <= cfg.N; i++ {
			pid := i
			node := baseline.NewLocalCoinNode(sim.ProcID(i), cfg.Inputs[i-1], func(_ sim.Context, v int) {
				res.Decisions[pid] = v
			})
			eng := node.Eng
			roundOf[pid] = func() uint64 { return eng.Round() }
			if err := nw.Register(node); err != nil {
				return nil, err
			}
		}
	case ProtocolEpsCoin:
		for i := 1; i <= cfg.N; i++ {
			pid := i
			node := baseline.NewEpsCoinNode(sim.ProcID(i), cfg.Inputs[i-1], cfg.Eps, cfg.Seed+7, func(_ sim.Context, v int) {
				res.Decisions[pid] = v
			})
			eng := node.Eng
			roundOf[pid] = func() uint64 { return eng.Round() }
			if err := nw.Register(node); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("svssba: unknown protocol %q", cfg.Protocol)
	}

	for _, f := range cfg.Faults {
		if f.Kind == FaultCrash {
			nw.Crash(sim.ProcID(f.Proc))
		}
	}

	allHonestDecided := func() bool {
		for _, i := range honest {
			if _, ok := res.Decisions[i]; !ok {
				return false
			}
		}
		return true
	}
	steps, err := nw.RunUntil(allHonestDecided, cfg.MaxSteps)
	if err != nil {
		var lim sim.ErrStepLimit
		if !asStepLimit(err, &lim) {
			return nil, err
		}
		res.TimedOut = true
	}
	res.Steps = steps
	res.VirtualTime = nw.Now()
	st := nw.Stats()
	res.Messages = st.Sent
	res.Bytes = st.TotalBytes()
	res.Frames = st.Frames
	res.MsgsByKind = st.SentByKind
	res.AllDecided = allHonestDecided()
	res.Agreed = res.AllDecided
	if res.AllDecided {
		first := res.Decisions[honest[0]]
		res.Value = first
		for _, i := range honest {
			if res.Decisions[i] != first {
				res.Agreed = false
			}
		}
	}
	for _, i := range honest {
		if r := roundOf[i](); r > res.MaxRound {
			res.MaxRound = r
		}
		if coinFlips[i] > res.CoinRounds {
			res.CoinRounds = coinFlips[i]
		}
	}
	for _, st := range stacks {
		if st == nil {
			continue
		}
		rbe := st.Node.RB()
		res.RBCreated += rbe.Created()
		res.WRBCreated += rbe.Weak().Created()
		res.MWCreated += st.MW.Created()
		res.SVSSCreated += st.SVSS.Created()
		res.EchoDeduped += st.Node.EchoDeduped()
	}
	return res, nil
}

func asStepLimit(err error, target *sim.ErrStepLimit) bool {
	lim, ok := err.(sim.ErrStepLimit)
	if ok {
		*target = lim
	}
	return ok
}
