package gather_test

import (
	"testing"

	"svssba/internal/gather"
	"svssba/internal/proto"
	"svssba/internal/rb"
	"svssba/internal/sim"
	"svssba/internal/testutil"
)

// node wires a gather engine over an RB engine.
type node struct {
	id     sim.ProcID
	rbEng  *rb.Engine
	eng    *gather.Engine
	output []sim.ProcID
}

type host struct{ n *node }

func (h host) Self() sim.ProcID { return h.n.id }
func (h host) Broadcast(ctx sim.Context, tag proto.Tag, value []byte) {
	h.n.rbEng.Broadcast(ctx, tag, value)
}

func newNode(id sim.ProcID) *node {
	n := &node{id: id}
	n.eng = gather.New(host{n: n}, func(_ sim.Context, _ uint64, set []sim.ProcID) {
		n.output = set
	})
	n.rbEng = rb.New(id, func(ctx sim.Context, a rb.Accept) {
		if a.Tag.Proto == proto.ProtoGather {
			n.eng.OnBroadcast(ctx, a.Origin, a.Tag, a.Value)
		}
	})
	return n
}

// verifyGossip models the spreading of verification: in the real coin,
// a party verified at one honest process is eventually verified at all
// (RB'd attach sets + SVSS share termination).
type verifyGossip struct {
	Party sim.ProcID
}

func (verifyGossip) Kind() string { return "test/verify-gossip" }
func (verifyGossip) Size() int    { return 2 }

// runGather executes one gather round where process p initially verifies
// the parties listed in verified[p]; verification then spreads to every
// process with asynchronous delays.
func runGather(t *testing.T, n, tf int, seed int64, verified map[sim.ProcID][]sim.ProcID,
	crash []sim.ProcID) map[sim.ProcID][]sim.ProcID {
	t.Helper()
	nw := sim.NewNetwork(n, tf, seed)
	nodes := make(map[sim.ProcID]*node, n)
	for i := 1; i <= n; i++ {
		id := sim.ProcID(i)
		nd := newNode(id)
		nodes[id] = nd
		vs := verified[id]
		handler := testutil.NewNode(id, func(ctx sim.Context) {
			for _, j := range vs {
				nd.eng.Verify(ctx, 1, j)
				for q := 1; q <= ctx.N(); q++ {
					ctx.Send(sim.ProcID(q), verifyGossip{Party: j})
				}
			}
		}, func(ctx sim.Context, m sim.Message) {
			if g, ok := m.Payload.(verifyGossip); ok {
				nd.eng.Verify(ctx, 1, g.Party)
				return
			}
			nd.rbEng.Handle(ctx, m)
		})
		if err := nw.Register(handler); err != nil {
			t.Fatalf("register: %v", err)
		}
	}
	for _, c := range crash {
		nw.Crash(c)
	}
	if _, err := nw.Run(50_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := make(map[sim.ProcID][]sim.ProcID)
	for id, nd := range nodes {
		out[id] = nd.output
	}
	return out
}

func all(n int) []sim.ProcID {
	out := make([]sim.ProcID, n)
	for i := range out {
		out[i] = sim.ProcID(i + 1)
	}
	return out
}

func TestGatherAllVerifiedOutputsQuorum(t *testing.T) {
	// G1 sets snapshot as soon as n-t parties are verified, so outputs
	// contain at least n-t parties (not necessarily all n).
	verified := map[sim.ProcID][]sim.ProcID{1: all(4), 2: all(4), 3: all(4), 4: all(4)}
	outs := runGather(t, 4, 1, 1, verified, nil)
	for id, set := range outs {
		if len(set) < 3 {
			t.Errorf("process %d output %v, want >= n-t parties", id, set)
		}
	}
}

// TestGatherCommonCore checks the core property over many randomized
// schedules: every honest output contains a common set of size >= n-t.
func TestGatherCommonCore(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		// Processes verify overlapping but distinct quorums.
		verified := map[sim.ProcID][]sim.ProcID{
			1: {1, 2, 3},
			2: {2, 3, 4},
			3: {1, 3, 4},
			4: {1, 2, 4},
		}
		outs := runGather(t, 4, 1, seed, verified, nil)
		// Intersect all outputs.
		counts := make(map[sim.ProcID]int)
		parties := 0
		for _, set := range outs {
			if set == nil {
				t.Fatalf("seed %d: some process did not output", seed)
			}
			parties++
			for _, p := range set {
				counts[p]++
			}
		}
		core := 0
		for _, c := range counts {
			if c == parties {
				core++
			}
		}
		if core < 3 { // n-t = 3
			t.Errorf("seed %d: common core %d < n-t", seed, core)
		}
	}
}

// Verification spreads monotonically: a process that starts verifying
// fewer than n-t parties cannot broadcast G1, but others' verification
// never regresses and gather still completes for processes that can.
func TestGatherWithCrashedProcess(t *testing.T) {
	verified := map[sim.ProcID][]sim.ProcID{
		1: {1, 2, 3},
		2: {1, 2, 3},
		3: {1, 2, 3},
	}
	outs := runGather(t, 4, 1, 3, verified, []sim.ProcID{4})
	for _, id := range []sim.ProcID{1, 2, 3} {
		if len(outs[id]) < 3 {
			t.Errorf("process %d output %v", id, outs[id])
		}
	}
}

func TestGatherIgnoresInvalidSets(t *testing.T) {
	// A G1 broadcast with an undersized or malformed set must be ignored.
	ctx := testutil.NewCtx(1, 4, 1)
	nd := newNode(1)
	tag := proto.Tag{Proto: proto.ProtoGather, Step: 1, A: 1}
	nd.eng.OnBroadcast(ctx, 2, tag, []byte{0xff, 0xff}) // malformed
	nd.eng.OnBroadcast(ctx, 2, tag, nil)                // empty
	if nd.eng.Done(1) {
		t.Error("round done from garbage")
	}
}

func TestGatherDoneReporting(t *testing.T) {
	nd := newNode(1)
	if nd.eng.Done(5) {
		t.Error("unknown round reported done")
	}
}
