// Command paritydigest prints a byte-stable digest of a fixed matrix of
// deterministic runs (agreement across schedulers/faults/scales, plus
// standalone SVSS and coin sessions). Two builds of the tree produce
// identical output iff they make identical protocol decisions, schedules
// and logical stats for every covered seed — the guardrail used when a
// PR claims to be a pure representation change (capture the output
// before, diff after).
//
//	go run ./cmd/paritydigest           # quick matrix (seconds)
//	go run ./cmd/paritydigest -deep     # adds the n7/t2 cell (minutes)
package main

import (
	"flag"
	"fmt"
	"sort"

	"svssba"
)

func main() {
	deep := flag.Bool("deep", false, "include the n7/t2 agreement cell (minutes of deliveries)")
	flag.Parse()

	type cell struct {
		name string
		cfg  svssba.Config
	}
	cells := []cell{
		{"n4-random-s1", svssba.Config{N: 4, Seed: 1}},
		{"n4-random-s2", svssba.Config{N: 4, Seed: 2}},
		{"n4-random-s3", svssba.Config{N: 4, Seed: 3}},
		{"n4-fifo-s1", svssba.Config{N: 4, Seed: 1, Scheduler: svssba.SchedFIFO}},
		{"n4-delayexp-s1", svssba.Config{N: 4, Seed: 1, Scheduler: svssba.SchedDelayExp}},
		{"n4-partition-s1", svssba.Config{N: 4, Seed: 1, Scheduler: svssba.SchedPartition}},
		{"n4-batched-s1", svssba.Config{N: 4, Seed: 1, Batching: true}},
		{"n5-crash-s1", svssba.Config{N: 5, T: 1, Seed: 1, Faults: []svssba.Fault{{Proc: 5, Kind: svssba.FaultCrash}}}},
		{"n4-silent-s1", svssba.Config{N: 4, Seed: 1, Faults: []svssba.Fault{{Proc: 4, Kind: svssba.FaultSilent}}}},
		{"n4-voteflip-s1", svssba.Config{N: 4, Seed: 1, Inputs: []int{1, 1, 1, 1}, Faults: []svssba.Fault{{Proc: 4, Kind: svssba.FaultVoteFlip}}}},
		{"n4-voteequiv-s1", svssba.Config{N: 4, Seed: 1, Faults: []svssba.Fault{{Proc: 4, Kind: svssba.FaultVoteEquivocate}}}},
		{"n4-rvallie-s1", svssba.Config{N: 4, Seed: 1, Faults: []svssba.Fault{{Proc: 4, Kind: svssba.FaultRValLie}}}},
		{"n4-echolie-s1", svssba.Config{N: 4, Seed: 1, Faults: []svssba.Fault{{Proc: 4, Kind: svssba.FaultEchoLie}}}},
		{"n4-dealcorrupt-s1", svssba.Config{N: 4, Seed: 1, Faults: []svssba.Fault{{Proc: 4, Kind: svssba.FaultDealCorrupt}}}},
		{"n4-muteburst-s1", svssba.Config{N: 4, Seed: 1, Faults: []svssba.Fault{{Proc: 4, Kind: svssba.FaultMuteBurst}}}},
		{"n4-targdelay-s1", svssba.Config{N: 4, Seed: 1, Faults: []svssba.Fault{{Proc: 4, Kind: svssba.FaultTargetedDelay}}}},
		{"n4-crossequiv-s1", svssba.Config{N: 4, Seed: 1, Faults: []svssba.Fault{{Proc: 4, Kind: svssba.FaultCrossEquivocate}}}},
		{"n4-coinbias-s1", svssba.Config{N: 4, Seed: 1, Faults: []svssba.Fault{{Proc: 4, Kind: svssba.FaultCoinBias}}}},
		{"n5-coinbias-s7", svssba.Config{N: 5, T: 1, Seed: 7, Faults: []svssba.Fault{{Proc: 5, Kind: svssba.FaultCoinBias}}}},
		{"n4-benor", svssba.Config{N: 4, Seed: 1, Protocol: svssba.ProtocolBenOr}},
		{"n4-localcoin", svssba.Config{N: 4, Seed: 1, Protocol: svssba.ProtocolLocalCoin}},
	}
	if *deep {
		cells = append(cells,
			cell{"n7-random-s1", svssba.Config{N: 7, T: 2, Seed: 1}},
			cell{"n7-batched-s1", svssba.Config{N: 7, T: 2, Seed: 1, Batching: true}},
		)
	}

	for _, c := range cells {
		res, err := svssba.Run(c.cfg)
		if err != nil {
			fmt.Printf("%s: ERR %v\n", c.name, err)
			continue
		}
		fmt.Printf("%s: %s\n", c.name, digest(res))
	}

	sres, err := svssba.RunSVSS(svssba.SVSSConfig{N: 4, Seed: 1, Secret: 7})
	if err != nil {
		fmt.Printf("svss-n4: ERR %v\n", err)
	} else {
		fmt.Printf("svss-n4: outs=%v shared=%v shuns=%v msgs=%d bytes=%d\n",
			sortedKV(sres.Outputs), sres.ShareCompleted, sres.Shuns, sres.Messages, sres.Bytes)
	}
	lres, err := svssba.RunSVSS(svssba.SVSSConfig{N: 4, Seed: 2, Secret: 9,
		Faults: []svssba.Fault{{Proc: 4, Kind: svssba.FaultRValLie}}})
	if err != nil {
		fmt.Printf("svss-n4-rvallie: ERR %v\n", err)
	} else {
		fmt.Printf("svss-n4-rvallie: outs=%v shared=%v shuns=%v msgs=%d bytes=%d\n",
			sortedKV(lres.Outputs), lres.ShareCompleted, lres.Shuns, lres.Messages, lres.Bytes)
	}
	cres, err := svssba.RunCoin(svssba.CoinConfig{N: 4, Seed: 1, Rounds: 2})
	if err != nil {
		fmt.Printf("coin-n4: ERR %v\n", err)
	} else {
		for i, rr := range cres.RoundResults {
			fmt.Printf("coin-n4 r%d: bits=%v agreed=%v value=%d\n", i+1, sortedKV(rr.Bits), rr.Agreed, rr.Value)
		}
		fmt.Printf("coin-n4: msgs=%d bytes=%d shuns=%v\n", cres.Messages, cres.Bytes, cres.Shuns)
	}
}

// digest renders every deterministic field of a Result in fixed order.
func digest(r *svssba.Result) string {
	return fmt.Sprintf(
		"dec=%v agreed=%v value=%d maxround=%d steps=%d vt=%d msgs=%d bytes=%d frames=%d shuns=%v bykind=%v timeout=%v",
		sortedKV(r.Decisions), r.Agreed, r.Value, r.MaxRound, r.Steps, r.VirtualTime,
		r.Messages, r.Bytes, r.Frames, r.Shuns, sortedKV(r.MsgsByKind), r.TimedOut)
}

// sortedKV renders a map as sorted key=value pairs.
func sortedKV[K int | string, V any](m map[K]V) string {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	s := "["
	for i, k := range keys {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%v=%v", k, m[k])
	}
	return s + "]"
}
