package transport_test

import (
	"reflect"
	"testing"
	"time"

	"svssba/internal/aba"
	"svssba/internal/core"
	"svssba/internal/proto"
	"svssba/internal/rb"
	"svssba/internal/sim"
	"svssba/internal/transport"
)

// batchTestFrame builds one multi-payload batch frame with the full
// protocol codec.
func batchTestFrame(t *testing.T) (*proto.Codec, []sim.Payload, []byte) {
	t.Helper()
	c := core.NewCodec()
	tag := proto.Tag{Proto: proto.ProtoMW, Session: proto.SessionID{Dealer: 1, Kind: proto.KindCoin, Round: 3}}
	ps := []sim.Payload{
		rb.Msg{Origin: 1, Tag: tag, Value: []byte("echo-a")},
		rb.Msg{Origin: 2, Tag: tag, Value: []byte("echo-b")},
		aba.Vote{Step: 1, Round: 2, Value: 1},
	}
	enc, err := c.EncodeBatch(ps)
	if err != nil {
		t.Fatal(err)
	}
	return c, ps, enc
}

// recvFrame waits for one frame on tr.
func recvFrame(t *testing.T, tr transport.Transport) transport.Frame {
	t.Helper()
	select {
	case f, ok := <-tr.Recv():
		if !ok {
			t.Fatal("transport closed before frame arrived")
		}
		return f
	case <-time.After(5 * time.Second):
		t.Fatal("no frame within 5s")
	}
	panic("unreachable")
}

// assertBatchArrives checks a batch frame crosses a transport link
// intact: recognized by IsBatch, decodable, payload-for-payload equal.
func assertBatchArrives(t *testing.T, c *proto.Codec, want []sim.Payload, f transport.Frame) {
	t.Helper()
	if f.From != 1 {
		t.Fatalf("frame from %d, want 1", f.From)
	}
	if !proto.IsBatch(f.Data) {
		t.Fatal("frame lost its batch magic in transit")
	}
	got, err := c.DecodeBatch(f.Data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("batch changed in transit:\n sent %#v\n got  %#v", want, got)
	}
}

// TestBatchFrameOverMesh sends one multi-payload batch frame across the
// in-process channel mesh.
func TestBatchFrameOverMesh(t *testing.T) {
	c, ps, enc := batchTestFrame(t)
	mesh := transport.NewMesh(2)
	a, err := mesh.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mesh.Endpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range []transport.Transport{a, b} {
		if err := tr.Start(); err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
	}
	if err := a.Send(2, enc); err != nil {
		t.Fatal(err)
	}
	assertBatchArrives(t, c, ps, recvFrame(t, b))
}

// TestBatchFrameOverTCP sends the same batch frame across real
// localhost sockets: the length-prefixed TCP framing must carry
// multi-payload frames opaquely.
func TestBatchFrameOverTCP(t *testing.T) {
	c, ps, enc := batchTestFrame(t)
	a := transport.NewTCP(1, "127.0.0.1:0", nil)
	b := transport.NewTCP(2, "127.0.0.1:0", nil)
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.SetPeers(map[sim.ProcID]string{2: b.Addr()})
	if err := a.Send(2, enc); err != nil {
		t.Fatal(err)
	}
	assertBatchArrives(t, c, ps, recvFrame(t, b))
}
