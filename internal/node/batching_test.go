package node_test

import (
	"testing"
	"time"

	"svssba/internal/core"
	"svssba/internal/node"
	"svssba/internal/sim"
	"svssba/internal/transport"
)

// TestMixedBatchingCluster runs a cluster where only half the nodes
// batch: frames are self-describing, so batched and unbatched nodes
// must interoperate — an unbatched receiver unpacks inbound batch
// frames, and a batched sender accepts single-payload frames.
func TestMixedBatchingCluster(t *testing.T) {
	const n = 4
	mesh := transport.NewMesh(n)
	codec := core.NewCodec()
	nodes := make([]*node.Node, n+1)
	for p := 1; p <= n; p++ {
		ep, err := mesh.Endpoint(sim.ProcID(p))
		if err != nil {
			t.Fatal(err)
		}
		if err := ep.Start(); err != nil {
			t.Fatal(err)
		}
		nd, err := node.New(node.Config{
			ID:       sim.ProcID(p),
			N:        n,
			Seed:     int64(2000 + p),
			Input:    (p - 1) % 2,
			Codec:    codec,
			Batching: p <= 2, // nodes 1-2 batch, 3-4 do not
		}, ep)
		if err != nil {
			t.Fatal(err)
		}
		nodes[p] = nd
	}
	for p := 1; p <= n; p++ {
		if err := nodes[p].Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for p := 1; p <= n; p++ {
			nodes[p].Stop()
		}
	})
	waitAgreement(t, nodes, 1, 2, 3, 4)

	for p := 1; p <= n; p++ {
		st := nodes[p].Stats()
		if errs := nodes[p].Errs(); len(errs) > 0 {
			t.Errorf("node %d errors: %v", p, errs)
		}
		if st.DecodeErrs != 0 {
			t.Errorf("node %d decode errors: %d", p, st.DecodeErrs)
		}
		if p <= 2 {
			if st.SentFrames >= st.Sent {
				t.Errorf("batching node %d: %d frames for %d payloads (no coalescing)", p, st.SentFrames, st.Sent)
			}
		} else {
			if st.SentFrames != st.Sent {
				t.Errorf("unbatched node %d: %d frames != %d payloads", p, st.SentFrames, st.Sent)
			}
			// It still received multi-payload frames from the batching
			// nodes and unpacked them.
			if st.RecvFrames >= st.Recv {
				t.Errorf("unbatched node %d saw no inbound batches: %d frames, %d payloads", p, st.RecvFrames, st.Recv)
			}
		}
	}
}

// TestBatchingNodeRestart checks the outbox survives the lifecycle: a
// crashed batching node restarts on a fresh endpoint and the cluster
// still converges, with the restarted incarnation batching again.
func TestBatchingNodeRestart(t *testing.T) {
	const n = 4
	mesh := transport.NewMesh(n)
	codec := core.NewCodec()
	nodes := make([]*node.Node, n+1)
	for p := 1; p <= n; p++ {
		ep, err := mesh.Endpoint(sim.ProcID(p))
		if err != nil {
			t.Fatal(err)
		}
		if err := ep.Start(); err != nil {
			t.Fatal(err)
		}
		nd, err := node.New(node.Config{
			ID:       sim.ProcID(p),
			N:        n,
			Seed:     int64(3000 + p),
			Input:    (p - 1) % 2,
			Codec:    codec,
			Batching: true,
		}, ep)
		if err != nil {
			t.Fatal(err)
		}
		nodes[p] = nd
	}
	for p := 1; p <= n; p++ {
		if err := nodes[p].Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for p := 1; p <= n; p++ {
			nodes[p].Stop()
		}
	})

	nodes[4].Crash()
	waitAgreement(t, nodes, 1, 2, 3)

	// Restart node 4 on a fresh endpoint. Like TestNodeRestartLifecycle,
	// re-convergence is not guaranteed (the peers' Decide messages predate
	// the restart); the batching-specific contract is that the fresh
	// incarnation's outbox works — it produces traffic with frames never
	// exceeding payloads and decodes inbound frames cleanly.
	sentBefore := nodes[4].Stats().Sent
	ep, err := mesh.ResetEndpoint(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Start(); err != nil {
		t.Fatal(err)
	}
	if err := nodes[4].Restart(ep); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for nodes[4].Stats().Sent <= sentBefore {
		if time.Now().After(deadline) {
			t.Fatal("restarted node sent nothing")
		}
		time.Sleep(time.Millisecond)
	}
	st := nodes[4].Stats()
	if st.SentFrames > st.Sent {
		t.Errorf("restarted node: %d frames exceed %d payloads", st.SentFrames, st.Sent)
	}
	if st.DecodeErrs != 0 {
		t.Errorf("restarted node decode errors: %d", st.DecodeErrs)
	}
	for _, err := range nodes[4].Errs() {
		t.Errorf("restarted node error: %v", err)
	}
}
