package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"
	"time"
)

// Kind classifies a trace event.
type Kind uint8

const (
	// KindRBAccept: a reliable-broadcast instance accepted a value.
	// Origin = RB instance originator, A = proto namespace of the tag,
	// B = tag step, C = accepted value size in bytes.
	KindRBAccept Kind = 1 + iota
	// KindMWShare: an MW-SVSS sharing completed. A/B/C pack the MW key
	// (dealer, moderator, slot).
	KindMWShare
	// KindMWRecon: an MW-SVSS reconstruction completed. Same packing.
	KindMWRecon
	// KindCoin: a common-coin flip resolved. A = ABA round, B = coin bit.
	KindCoin
	// KindABARound: the ABA engine advanced to a new round. A = round.
	KindABARound
	// KindDecide: the ABA engine decided. A = decided value.
	KindDecide
	// KindScopeOpen: a service-mode session scope opened. Scope = id.
	KindScopeOpen
	// KindScopeRetire: a service-mode session scope retired. Scope = id.
	KindScopeRetire
)

// String returns the stable event-kind name used in JSONL export.
func (k Kind) String() string {
	switch k {
	case KindRBAccept:
		return "rb-accept"
	case KindMWShare:
		return "mw-share"
	case KindMWRecon:
		return "mw-recon"
	case KindCoin:
		return "coin"
	case KindABARound:
		return "aba-round"
	case KindDecide:
		return "decide"
	case KindScopeOpen:
		return "scope-open"
	case KindScopeRetire:
		return "scope-retire"
	default:
		return "unknown"
	}
}

// Event is one traced protocol transition. The meaning of Origin/A/B/C
// depends on Kind (see the Kind constants). At is microseconds since
// the tracer was created; Scope is the service-mode session scope (0
// in single-session mode).
type Event struct {
	At     int64
	Node   uint16
	Scope  uint64
	Kind   Kind
	Origin uint16
	A      uint64
	B      uint64
	C      uint64
}

// Tracer is a fixed-capacity ring buffer of Events. Record is
// allocation-free: one mutex acquisition and a struct store. The
// intended writer is the node's single delivery goroutine; the mutex
// exists so snapshot readers (HTTP endpoint, tests) can drain
// concurrently without racing.
type Tracer struct {
	node  uint16
	start time.Time

	mu    sync.Mutex
	buf   []Event
	next  int   // ring write cursor
	total int64 // events ever recorded (>= len kept)
}

// NewTracer creates a tracer for the given node id keeping the last
// capacity events (min 16).
func NewTracer(node int, capacity int) *Tracer {
	if capacity < 16 {
		capacity = 16
	}
	return &Tracer{
		node:  uint16(node),
		start: time.Now(),
		buf:   make([]Event, capacity),
	}
}

// Record appends an event, overwriting the oldest when full.
func (t *Tracer) Record(kind Kind, scope uint64, origin int, a, b, c uint64) {
	if t == nil {
		return
	}
	at := time.Since(t.start).Microseconds()
	t.mu.Lock()
	t.buf[t.next] = Event{
		At:     at,
		Node:   t.node,
		Scope:  scope,
		Kind:   kind,
		Origin: uint16(origin),
		A:      a,
		B:      b,
		C:      c,
	}
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
	}
	t.total++
	t.mu.Unlock()
}

// Total returns the number of events ever recorded (including ones the
// ring has since overwritten).
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Events returns the retained events oldest-first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.buf)
	kept := int(t.total)
	if kept > n {
		kept = n
	}
	out := make([]Event, 0, kept)
	// Oldest retained event sits at next when the ring has wrapped,
	// else at 0.
	if int(t.total) > n {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf[:t.next]...)
	}
	return out
}

// WriteJSONL writes the retained events oldest-first, one JSON object
// per line:
//
//	{"at_us":1234,"node":0,"scope":257,"kind":"coin","origin":0,"a":2,"b":1,"c":0}
func (t *Tracer) WriteJSONL(w io.Writer) error {
	events := t.Events()
	bw := bufio.NewWriter(w)
	var line []byte
	for _, e := range events {
		line = appendEventJSON(line[:0], e)
		line = append(line, '\n')
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func appendEventJSON(b []byte, e Event) []byte {
	b = append(b, `{"at_us":`...)
	b = strconv.AppendInt(b, e.At, 10)
	b = append(b, `,"node":`...)
	b = strconv.AppendUint(b, uint64(e.Node), 10)
	b = append(b, `,"scope":`...)
	b = strconv.AppendUint(b, e.Scope, 10)
	b = append(b, `,"kind":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, `","origin":`...)
	b = strconv.AppendUint(b, uint64(e.Origin), 10)
	b = append(b, `,"a":`...)
	b = strconv.AppendUint(b, e.A, 10)
	b = append(b, `,"b":`...)
	b = strconv.AppendUint(b, e.B, 10)
	b = append(b, `,"c":`...)
	b = strconv.AppendUint(b, e.C, 10)
	b = append(b, '}')
	return b
}
