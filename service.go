package svssba

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"svssba/internal/acs"
	"svssba/internal/coinpool"
	"svssba/internal/core"
	"svssba/internal/node"
	"svssba/internal/obs"
	"svssba/internal/sim"
	"svssba/internal/transport"
)

// ServiceConfig describes an agreement-as-a-service cluster: n
// long-lived service nodes, each hosting any number of concurrent ACS
// sessions (internal/acs) over one transport. Submit a value on any
// node and every node eventually emits the session's decision — a
// common subset of at least n−t proposals, identical across nodes.
type ServiceConfig struct {
	// N is the cluster size; T the resilience bound (defaults to
	// floor((N-1)/3)).
	N, T int
	// Seed derives each node's local randomness.
	Seed int64
	// Transport selects the backend (default TransportChan).
	Transport TransportKind
	// BasePort, for TransportTCP, binds node i to 127.0.0.1:BasePort+i-1.
	// Zero picks ephemeral ports.
	BasePort int
	// Batching turns on every node's coalescing outbox. A service wants
	// it on — cross-session coalescing is where concurrent sessions
	// amortize frames — so the default is on; set NoBatching to measure
	// without it.
	NoBatching bool
	// Wire selects the wire variant for every scoped stack ("" = "v2").
	Wire string
	// Lanes is the number of per-scope execution lanes each node runs
	// (internal/node multi-lane runtime): sessions shard across lanes by
	// sid, so a multi-core host works Window sessions concurrently.
	// 1 runs the historical single-goroutine delivery loop
	// (byte-identical schedules); 0 defaults to min(GOMAXPROCS, 8).
	Lanes int
	// Window bounds how many sessions each node initiates concurrently
	// (default 8). Sessions joined on peer traffic bypass the window.
	Window int
	// Pool turns on the coin-dealing pool (internal/coinpool): every
	// session's n agreements consume lottery sharings from one batched
	// dealing round on the session's proposal plane instead of dealing
	// per coin round, and the submission window refills as soon as a
	// session's dealing share-completes (pipelined startup) rather than
	// when its slowest agreement drains.
	Pool bool
	// PoolRounds is the coin-round coverage of each pooled dealing
	// (default 4).
	PoolRounds int
	// DecisionBuffer bounds each node's decision queue handed to
	// Decisions() consumers (default 1024; beyond it the oldest pending
	// decisions are dropped — a service consumer that stops reading must
	// not wedge the delivery goroutine).
	DecisionBuffer int
	// Tamper, when set, is installed on every node's driver — the hook
	// adversarial tests use to plant misbehavior in selected scopes of
	// selected nodes (node id is the first argument).
	Tamper func(id int, sid uint64, slot int, st *core.Stack)
	// Metrics, when set, registers every node's instruments (under
	// "node<i>." prefixes) plus service-level aggregates ("service.*":
	// decisions counter, session latency and coin-round histograms,
	// in-flight/queue-depth/pending gauges) on the registry. Serve it
	// with obs.Serve or snapshot it directly.
	Metrics *obs.Registry
	// TraceCap, when positive, attaches a ring-buffered protocol tracer
	// of that capacity to every node (see Tracer/Tracers).
	TraceCap int
}

// ServiceDecision is one completed session as reported by one node.
type ServiceDecision struct {
	Session uint64
	// Members are the proposer ids of the common subset (sorted);
	// Values their proposals (parallel to Members).
	Members []int
	Values  [][]byte
	// Elapsed is that node's local join-to-completion latency.
	Elapsed time.Duration
	// CoinRounds is the number of common-coin flips that node observed
	// across the session's n agreements — the luck number behind the
	// latency tail.
	CoinRounds uint64
}

// ServiceNode is one node of a service cluster.
type ServiceNode struct {
	id     int
	nd     *node.Node
	drv    *acs.Driver
	tracer *obs.Tracer

	// Service-level instruments, shared across the cluster's nodes (nil
	// without ServiceConfig.Metrics).
	mDecisions *obs.Counter
	mLatMs     *obs.Histogram
	mCoin      *obs.Histogram

	mu      sync.Mutex
	pending []ServiceDecision
	dropped int
	notify  chan struct{}
	out     chan ServiceDecision
	stopped chan struct{}
	bufCap  int
}

// ServiceCluster is a running agreement service.
type ServiceCluster struct {
	cfg   ServiceConfig
	nodes []*ServiceNode
	once  sync.Once
}

func (c *ServiceConfig) normalize() error {
	if c.N < 2 {
		return fmt.Errorf("svssba: need at least 2 processes, have %d", c.N)
	}
	if c.T == 0 {
		c.T = (c.N - 1) / 3
	}
	if c.Transport == "" {
		c.Transport = TransportChan
	}
	if c.Transport != TransportChan && c.Transport != TransportTCP {
		return fmt.Errorf("svssba: unknown transport %q", c.Transport)
	}
	switch c.Wire {
	case "":
		c.Wire = "v2"
	case "v1", "v2":
	default:
		return fmt.Errorf("svssba: unknown wire variant %q", c.Wire)
	}
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.Lanes < 0 {
		return fmt.Errorf("svssba: negative lane count %d", c.Lanes)
	}
	if c.Lanes == 0 {
		c.Lanes = runtime.GOMAXPROCS(0)
		if c.Lanes > 8 {
			c.Lanes = 8
		}
	}
	if c.DecisionBuffer <= 0 {
		c.DecisionBuffer = 1024
	}
	return nil
}

// StartService boots an agreement-as-a-service cluster. Close it when
// done.
func StartService(cfg ServiceConfig) (*ServiceCluster, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}

	// Bring up the transport fabric (same shape as RunCluster: listeners
	// and endpoints up before any node boots).
	trs := make([]transport.Transport, cfg.N+1)
	switch cfg.Transport {
	case TransportTCP:
		tcps := make([]*transport.TCP, cfg.N+1)
		addrs := make(map[sim.ProcID]string, cfg.N)
		for i := 1; i <= cfg.N; i++ {
			listen := "127.0.0.1:0"
			if cfg.BasePort != 0 {
				listen = fmt.Sprintf("127.0.0.1:%d", cfg.BasePort+i-1)
			}
			tcps[i] = transport.NewTCP(sim.ProcID(i), listen, nil)
			if err := tcps[i].Start(); err != nil {
				for j := 1; j < i; j++ {
					tcps[j].Close()
				}
				return nil, err
			}
			addrs[sim.ProcID(i)] = tcps[i].Addr()
		}
		for i := 1; i <= cfg.N; i++ {
			tcps[i].SetPeers(addrs)
			trs[i] = tcps[i]
		}
	default:
		mesh := transport.NewMesh(cfg.N)
		for i := 1; i <= cfg.N; i++ {
			ep, err := mesh.Endpoint(sim.ProcID(i))
			if err != nil {
				return nil, err
			}
			if err := ep.Start(); err != nil {
				return nil, err
			}
			trs[i] = ep
		}
	}

	cl := &ServiceCluster{cfg: cfg, nodes: make([]*ServiceNode, cfg.N+1)}
	codec := core.NewCodec()
	var mDecisions *obs.Counter
	var mLatMs, mCoin *obs.Histogram
	if cfg.Metrics != nil {
		mDecisions = cfg.Metrics.Counter("service.decisions")
		// Latency buckets 1ms..~9h, coin buckets 1..~6k flips: wide
		// enough that the heavy tail lands in real buckets, not overflow.
		mLatMs = cfg.Metrics.Histogram("service.session_latency_ms", obs.ExpBuckets(1, 1.8, 28))
		mCoin = cfg.Metrics.Histogram("service.session_coin_rounds", obs.ExpBuckets(1, 1.5, 22))
	}
	for i := 1; i <= cfg.N; i++ {
		sn := &ServiceNode{
			id:         i,
			notify:     make(chan struct{}, 1),
			out:        make(chan ServiceDecision, 64),
			stopped:    make(chan struct{}),
			bufCap:     cfg.DecisionBuffer,
			mDecisions: mDecisions,
			mLatMs:     mLatMs,
			mCoin:      mCoin,
		}
		if cfg.TraceCap > 0 {
			sn.tracer = obs.NewTracer(i, cfg.TraceCap)
		}
		id := i
		acfg := acs.Config{
			N:          cfg.N,
			T:          cfg.T,
			Self:       sim.ProcID(i),
			Wire:       cfg.Wire,
			Window:     cfg.Window,
			Pool:       cfg.Pool,
			PoolRounds: cfg.PoolRounds,
			OnDecide:   sn.push,
		}
		if cfg.Tamper != nil {
			acfg.Tamper = func(sid uint64, slot int, st *core.Stack) {
				cfg.Tamper(id, sid, slot, st)
			}
		}
		drv, err := acs.New(acfg)
		if err != nil {
			cl.Close()
			return nil, err
		}
		nd, err := node.New(node.Config{
			ID:       sim.ProcID(i),
			N:        cfg.N,
			T:        cfg.T,
			Seed:     nodeSeed(cfg.Seed, i),
			Codec:    codec,
			Batching: !cfg.NoBatching,
			Service:  drv,
			Lanes:    cfg.Lanes,
			LaneKey:  acs.LaneKey,
			Metrics:  cfg.Metrics,
			Trace:    sn.tracer,
		}, trs[i])
		if err != nil {
			cl.Close()
			return nil, err
		}
		drv.Bind(nd)
		sn.nd, sn.drv = nd, drv
		cl.nodes[i] = sn
		if cfg.Metrics != nil {
			sn.registerMetrics(cfg.Metrics)
		}
		if err := nd.Start(); err != nil {
			cl.Close()
			return nil, err
		}
		go sn.pumpDecisions()
	}
	return cl, nil
}

// registerMetrics exposes the node's service-layer gauges (session
// window, submission queue, decision queue) under "service.node<i>.".
func (n *ServiceNode) registerMetrics(reg *obs.Registry) {
	p := fmt.Sprintf("service.node%d.", n.id)
	reg.GaugeFunc(p+"in_flight", func() int64 { return int64(n.drv.InFlight()) })
	reg.GaugeFunc(p+"max_in_flight", func() int64 { return int64(n.drv.MaxInFlight()) })
	reg.GaugeFunc(p+"completed", func() int64 { return int64(n.drv.Completed()) })
	reg.GaugeFunc(p+"queue_depth", func() int64 { return int64(n.drv.QueueLen()) })
	reg.GaugeFunc(p+"pending_decisions", func() int64 {
		n.mu.Lock()
		defer n.mu.Unlock()
		return int64(len(n.pending))
	})
	if _, ok := n.drv.PoolStats(); ok {
		reg.GaugeFunc(p+"starting", func() int64 { return int64(n.drv.Starting()) })
		reg.GaugeFunc(p+"pool_depth", func() int64 { st, _ := n.drv.PoolStats(); return st.Depth })
		reg.GaugeFunc(p+"pool_reserved", func() int64 { st, _ := n.drv.PoolStats(); return st.Reserved })
		reg.GaugeFunc(p+"pool_refills", func() int64 { st, _ := n.drv.PoolStats(); return st.Refills })
		reg.GaugeFunc(p+"pool_handouts", func() int64 { st, _ := n.drv.PoolStats(); return st.Handouts })
		reg.GaugeFunc(p+"pool_double_handouts", func() int64 { st, _ := n.drv.PoolStats(); return st.DoubleHandouts })
		reg.GaugeFunc(p+"pool_live_supplies", func() int64 { st, _ := n.drv.PoolStats(); return st.Live })
	}
}

// N returns the cluster size.
func (c *ServiceCluster) N() int { return c.cfg.N }

// T returns the resilience bound.
func (c *ServiceCluster) T() int { return c.cfg.T }

// Node returns node i (1..N).
func (c *ServiceCluster) Node(i int) *ServiceNode { return c.nodes[i] }

// Close stops every node and ends the decision streams.
func (c *ServiceCluster) Close() {
	c.once.Do(func() {
		for _, sn := range c.nodes {
			if sn == nil {
				continue
			}
			sn.nd.Stop()
			close(sn.stopped)
		}
	})
}

// ID returns the node's process id.
func (n *ServiceNode) ID() int { return n.id }

// Submit queues value as this node's proposal for a future session.
// Every submitted value eventually rides some session's proposal slot
// for this node (the Window paces how many at once).
func (n *ServiceNode) Submit(value []byte) error { return n.drv.Submit(value) }

// Decisions streams completed sessions as this node observes them. The
// channel closes when the cluster closes.
func (n *ServiceNode) Decisions() <-chan ServiceDecision { return n.out }

// Completed returns how many sessions this node completed.
func (n *ServiceNode) Completed() int { return n.drv.Completed() }

// InFlight returns this node's joined, not-yet-completed session count.
func (n *ServiceNode) InFlight() int { return n.drv.InFlight() }

// MaxInFlight returns this node's high-water concurrent session count.
func (n *ServiceNode) MaxInFlight() int { return n.drv.MaxInFlight() }

// QueueLen returns submitted values not yet attached to a session.
func (n *ServiceNode) QueueLen() int { return n.drv.QueueLen() }

// PoolStats snapshots the node's coin-pool gauges; ok is false when
// pooling is off.
func (n *ServiceNode) PoolStats() (coinpool.Stats, bool) { return n.drv.PoolStats() }

// Counts snapshots the node's session table: live/retired scopes and
// the protocol-state sum over live stacks.
func (n *ServiceNode) Counts() (node.ServiceCounts, bool) { return n.nd.ServiceCounts() }

// Stats returns the node's traffic stats in the cluster report shape.
func (n *ServiceNode) Stats() ClusterNodeStats { return clusterNodeStats(n.id, n.nd, false, false) }

// Errs returns the node's decode and transport errors so far.
func (n *ServiceNode) Errs() []error { return n.nd.Errs() }

// DroppedDecisions returns how many decisions were discarded because
// the consumer fell more than DecisionBuffer behind.
func (n *ServiceNode) DroppedDecisions() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.dropped
}

// Tracer returns the node's protocol round tracer (nil unless
// ServiceConfig.TraceCap was set).
func (n *ServiceNode) Tracer() *obs.Tracer { return n.tracer }

// Tracers returns every node's tracer, indexed 1..N (index 0 nil), for
// handing to obs.Serve. Empty slice unless TraceCap was set.
func (c *ServiceCluster) Tracers() []*obs.Tracer {
	out := make([]*obs.Tracer, 0, c.cfg.N)
	for i := 1; i <= c.cfg.N; i++ {
		if c.nodes[i] != nil && c.nodes[i].tracer != nil {
			out = append(out, c.nodes[i].tracer)
		}
	}
	return out
}

// push runs on the node's delivery goroutine: queue the decision and
// signal the pump without ever blocking.
func (n *ServiceNode) push(d acs.Decision) {
	sd := ServiceDecision{Session: d.Session, Values: d.Values, Elapsed: d.Elapsed, CoinRounds: d.CoinRounds}
	for _, m := range d.Members {
		sd.Members = append(sd.Members, int(m))
	}
	if n.mDecisions != nil {
		n.mDecisions.Inc()
		n.mLatMs.Observe(d.Elapsed.Milliseconds())
		n.mCoin.Observe(int64(d.CoinRounds))
	}
	n.mu.Lock()
	if len(n.pending) >= n.bufCap {
		n.pending = n.pending[1:]
		n.dropped++
	}
	n.pending = append(n.pending, sd)
	n.mu.Unlock()
	select {
	case n.notify <- struct{}{}:
	default:
	}
}

// pumpDecisions moves queued decisions onto the consumer channel off
// the delivery goroutine.
func (n *ServiceNode) pumpDecisions() {
	defer close(n.out)
	for {
		select {
		case <-n.notify:
		case <-n.stopped:
			// Drain what's already queued, then end the stream.
			n.mu.Lock()
			batch := n.pending
			n.pending = nil
			n.mu.Unlock()
			for _, d := range batch {
				select {
				case n.out <- d:
				default:
					return
				}
			}
			return
		}
		for {
			n.mu.Lock()
			if len(n.pending) == 0 {
				n.mu.Unlock()
				break
			}
			d := n.pending[0]
			n.pending = n.pending[1:]
			n.mu.Unlock()
			select {
			case n.out <- d:
			case <-n.stopped:
				return
			}
		}
	}
}
