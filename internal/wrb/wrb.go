// Package wrb implements t-tolerant Weak Reliable Broadcast — Dolev's
// crusader agreement — exactly as specified in Appendix A.1 of the paper:
//
//  1. The dealer sends (s, 1) to all processes.
//  2. If process i receives a type 1 message (r, 1) from the dealer and it
//     never sent a type 2 message, then process i sends (r, 2) to all.
//  3. If process i receives n−t distinct type 2 messages (r, 2), all with
//     value r, then it accepts the value r.
//
// Properties (for n > 3t): weak termination (nonfaulty dealer ⇒ everyone
// completes) and correctness (no two nonfaulty processes accept different
// values; a nonfaulty dealer's value is the only acceptable one).
//
// Instances are identified by (origin, tag); values are opaque byte
// strings whose equality is the paper's value equality.
//
// Representation: instance keys are interned to dense ids and instances
// live in a per-engine slab indexed by id, with the per-sender vote set
// a bitset and the per-value tally an inline counter (intern package).
// One delivery costs one key lookup plus word-sized bit arithmetic —
// no per-instance map writes and no warm-path allocation.
package wrb

import (
	"svssba/internal/intern"
	"svssba/internal/proto"
	"svssba/internal/sim"
)

// Message phases.
const (
	phaseType1 uint8 = 1
	phaseType2 uint8 = 2
)

// Payload kinds.
const (
	KindType1 = "wrb/type1"
	KindType2 = "wrb/type2"
)

// Msg is a WRB protocol message.
type Msg struct {
	Origin sim.ProcID
	Tag    proto.Tag
	Phase  uint8
	Value  []byte
}

var _ proto.Marshaler = Msg{}

// Kind implements sim.Payload.
func (m Msg) Kind() string {
	if m.Phase == phaseType1 {
		return KindType1
	}
	return KindType2
}

// Size implements sim.Payload.
func (m Msg) Size() int {
	return 2 + proto.TagSize() + 1 + proto.VarBytesSize(len(m.Value))
}

// MarshalTo implements proto.Marshaler.
func (m Msg) MarshalTo(w *proto.Writer) {
	w.Proc(m.Origin)
	m.Tag.MarshalTo(w)
	w.U8(m.Phase)
	w.VarBytes(m.Value)
}

func decodeMsg(r *proto.Reader) (sim.Payload, error) {
	var m Msg
	m.Origin = r.Proc()
	m.Tag = proto.ReadTag(r)
	m.Phase = r.U8()
	m.Value = r.VarBytes()
	return m, r.Err()
}

// RegisterCodec registers WRB message decoding.
func RegisterCodec(c *proto.Codec) {
	c.Register(KindType1, decodeMsg)
	c.Register(KindType2, decodeMsg)
}

// Accept is the output event of one WRB instance.
type Accept struct {
	Origin sim.ProcID
	Tag    proto.Tag
	Value  []byte
}

// AcceptFunc consumes accept events; it runs inside the delivering
// process's context and may send messages.
type AcceptFunc func(ctx sim.Context, a Accept)

type instKey struct {
	origin sim.ProcID
	tag    proto.Tag
}

type instance struct {
	sentType2 bool
	accepted  bool
	voted     intern.ProcSet   // senders whose type-2 was counted
	counts    intern.ValCounts // value -> distinct type-2 count
}

// Engine runs all WRB instances for one process. Instances are
// slab-allocated: the key table interns (origin, tag) to a dense id
// indexing insts.
type Engine struct {
	self     sim.ProcID
	onAccept AcceptFunc
	table    intern.Table[instKey]
	insts    []instance
}

// New returns a WRB engine for process self.
func New(self sim.ProcID, onAccept AcceptFunc) *Engine {
	return &Engine{self: self, onAccept: onAccept}
}

// Broadcast starts a WRB instance with this process as dealer (step 1).
func (e *Engine) Broadcast(ctx sim.Context, tag proto.Tag, value []byte) {
	// Box the payload once for all n sends (see rb.sendType3).
	var pl sim.Payload = Msg{Origin: e.self, Tag: tag, Phase: phaseType1, Value: value}
	for p := 1; p <= ctx.N(); p++ {
		ctx.Send(sim.ProcID(p), pl)
	}
}

// inst returns the slab id for k, growing the slab for a fresh id.
// Callers index e.insts with the returned id; the pointer must not be
// held across anything that could intern another instance.
func (e *Engine) inst(k instKey) uint32 {
	id, fresh := e.table.Intern(k)
	if int(id) >= len(e.insts) {
		e.insts = append(e.insts, instance{})
	} else if fresh {
		e.insts[id] = instance{}
	}
	return id
}

// Live returns the number of live instances (for retirement tests).
func (e *Engine) Live() int { return e.table.Len() }

// SlabCap returns the instance slab's high-water slot count.
func (e *Engine) SlabCap() int { return e.table.HighWater() }

// Created returns the cumulative number of WRB instances ever created.
func (e *Engine) Created() uint64 { return e.table.Created() }

// Reset releases every instance and its interned id, keeping allocated
// capacity. Used when the owning stack retires (the agreement decided
// and halted) and by benchmarks to recycle slots.
func (e *Engine) Reset() {
	for i := range e.insts {
		e.insts[i] = instance{}
	}
	e.insts = e.insts[:0]
	e.table.Reset()
}

// Handle processes a message if it belongs to WRB, reporting whether it
// was consumed.
func (e *Engine) Handle(ctx sim.Context, m sim.Message) bool {
	msg, ok := m.Payload.(Msg)
	if !ok {
		return false
	}
	in := &e.insts[e.inst(instKey{origin: msg.Origin, tag: msg.Tag})]
	switch msg.Phase {
	case phaseType1:
		// Step 2: the type 1 message must come from the instance dealer.
		if m.From != msg.Origin || in.sentType2 {
			return true
		}
		in.sentType2 = true
		var echo sim.Payload = Msg{Origin: msg.Origin, Tag: msg.Tag, Phase: phaseType2, Value: msg.Value}
		for p := 1; p <= ctx.N(); p++ {
			ctx.Send(sim.ProcID(p), echo)
		}
	case phaseType2:
		// Echo pruning: an accepted instance can neither accept again nor
		// send anything in response to a type 2, so the remaining echoes
		// of the storm (up to t per instance) skip the vote and count
		// state entirely. The type 1 branch above stays live — a slow
		// process must still echo the dealer's value so its peers can
		// reach their own n−t thresholds (suppressing the echo of an
		// already-accepted process would strand peers at n−t−1 matching
		// echoes when exactly n−t processes are honest).
		if in.accepted {
			return true
		}
		// Step 3: count the first type 2 from each sender.
		if !in.voted.Add(m.From) {
			return true
		}
		if in.counts.Incr(msg.Value) >= ctx.N()-ctx.T() {
			in.accepted = true
			v := append([]byte(nil), msg.Value...)
			// Dead from here on (see pruning note); drop the retained
			// value copies so the per-instance footprint stays bounded
			// across millions of broadcasts.
			in.voted.Clear()
			in.counts.Reset()
			if e.onAccept != nil {
				e.onAccept(ctx, Accept{Origin: msg.Origin, Tag: msg.Tag, Value: v})
			}
		}
	}
	return true
}
