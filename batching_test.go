package svssba_test

import (
	"testing"
	"time"

	"svssba"
)

// runBatched executes one batched cluster run on the in-process
// transport and returns aggregate payload/frame counters over all nodes.
func runBatched(t *testing.T, n, tt int, transport svssba.TransportKind, timeout time.Duration) (*svssba.ClusterResult, int64, int64) {
	t.Helper()
	res, err := svssba.RunCluster(svssba.ClusterConfig{
		N: n, T: tt, Seed: 7,
		Transport: transport,
		Batching:  true,
		Timeout:   timeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreed {
		t.Fatalf("agreement failed: %v", res.Decisions)
	}
	var payloads, frames int64
	for _, nd := range res.Nodes {
		payloads += nd.Sent
		frames += nd.SentFrames
	}
	return res, payloads, frames
}

// assertReduction checks the tentpole acceptance bar on one finished
// run: the physical message count (frames on the transport) must come
// in at least 40% below the logical payload count — the count an
// unbatched run of the same workload puts on the wire, since unbatched
// every payload is its own frame.
func assertReduction(t *testing.T, n, tt int, res *svssba.ClusterResult, payloads, frames int64) {
	t.Helper()
	if payloads == 0 || frames == 0 {
		t.Fatalf("degenerate counters: payloads=%d frames=%d", payloads, frames)
	}
	reduction := 1 - float64(frames)/float64(payloads)
	t.Logf("n=%d t=%d: %d payloads in %d frames (%.1f%% reduction), elapsed %v",
		n, tt, payloads, frames, 100*reduction, res.Elapsed.Round(time.Millisecond))
	if reduction < 0.40 {
		t.Fatalf("frame reduction %.1f%% below the 40%% acceptance bar (%d payloads, %d frames)",
			100*reduction, payloads, frames)
	}
}

// TestClusterBatchingReduction asserts the acceptance bar at n=5/t=1,
// where a run is seconds long on any machine. The observed reduction is
// ~98% — far past the 40% bar — and the same ratio holds at every scale
// measured (n=4 ~97%, n=7 ~99%; see TestClusterBatchingReductionN7 for
// the ROADMAP scale).
func TestClusterBatchingReduction(t *testing.T) {
	res, payloads, frames := runBatched(t, 5, 1, svssba.TransportChan, 10*time.Minute)
	assertReduction(t, 5, 1, res, payloads, frames)

	// The per-layer split must stay consistent: layer payload and frame
	// group counts fold back to the node totals, and no layer can have
	// more wire groups than payloads.
	for _, nd := range res.Nodes {
		var msgs, groups int64
		for layer, l := range nd.ByLayer {
			if l.SentFrames > l.SentMsgs {
				t.Fatalf("node %d layer %s: %d frame groups exceed %d payloads", nd.ID, layer, l.SentFrames, l.SentMsgs)
			}
			msgs += l.SentMsgs
			groups += l.SentFrames
		}
		if msgs != nd.Sent {
			t.Fatalf("node %d: per-layer payloads %d != total %d", nd.ID, msgs, nd.Sent)
		}
		if groups < nd.SentFrames {
			// Every frame holds at least one group, so groups bound frames
			// from above.
			t.Fatalf("node %d: %d wire groups below %d frames", nd.ID, groups, nd.SentFrames)
		}
	}
}

// TestClusterBatchingReductionN7 measures the acceptance criterion at
// the n=7/t=2 scale the ROADMAP flagged as unaffordable: ~18M payloads
// in ~210k frames, a ~99% physical message reduction, with wall clock
// ~2.3× below the unbatched run. Live cluster durations have a heavy
// tail (round counts vary run to run on a loaded machine), so a run
// that cannot finish inside the budget skips instead of failing — the
// ratio assertion itself is carried by every run that completes, and by
// TestClusterBatchingReduction on every machine.
func TestClusterBatchingReductionN7(t *testing.T) {
	if testing.Short() {
		t.Skip("n=7/t=2 live run takes minutes; covered at n=5 in short mode")
	}
	res, err := svssba.RunCluster(svssba.ClusterConfig{
		N: 7, T: 2, Seed: 7,
		Transport: svssba.TransportChan,
		Batching:  true,
		Timeout:   4 * time.Minute,
	})
	if err != nil {
		t.Skipf("run did not finish inside the budget (heavy-tail schedule or slow machine): %v", err)
	}
	if !res.Agreed {
		t.Fatalf("agreement failed: %v", res.Decisions)
	}
	var payloads, frames int64
	for _, nd := range res.Nodes {
		payloads += nd.Sent
		frames += nd.SentFrames
	}
	assertReduction(t, 7, 2, res, payloads, frames)
}

// TestClusterBatchingTCP runs a batched cluster over real localhost
// sockets: multi-payload batch frames must survive the length-prefixed
// TCP framing, reconnecting dialers included, and still show the frame
// reduction end to end.
func TestClusterBatchingTCP(t *testing.T) {
	_, payloads, frames := runBatched(t, 4, 1, svssba.TransportTCP, 10*time.Minute)
	if frames >= payloads {
		t.Fatalf("no reduction over TCP: %d payloads, %d frames", payloads, frames)
	}
}

// TestClusterUnbatchedFramesEqualPayloads pins the unbatched physical
// model: without the outbox every payload crosses as its own frame, so
// the two counters (and both byte views) must coincide.
func TestClusterUnbatchedFramesEqualPayloads(t *testing.T) {
	res, err := svssba.RunCluster(svssba.ClusterConfig{
		N: 4, T: 1, Seed: 11, Transport: svssba.TransportChan,
		Timeout: 5 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, nd := range res.Nodes {
		if nd.Sent != nd.SentFrames || nd.SentBytes != nd.SentFrameBytes {
			t.Fatalf("node %d: unbatched payloads %d/%dB != frames %d/%dB",
				nd.ID, nd.Sent, nd.SentBytes, nd.SentFrames, nd.SentFrameBytes)
		}
		if nd.Recv != nd.RecvFrames || nd.RecvBytes != nd.RecvFrameBytes {
			t.Fatalf("node %d: unbatched recv payloads %d/%dB != frames %d/%dB",
				nd.ID, nd.Recv, nd.RecvBytes, nd.RecvFrames, nd.RecvFrameBytes)
		}
	}
}
