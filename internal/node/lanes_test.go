package node

// White-box tests for the multi-lane service runtime's moving parts:
// the bounded ring's FIFO order and backpressure accounting, the
// control queue's drain-at-close guarantee, scope→lane pinning under a
// LaneKey, and the one-lane node staying on the legacy loop.

import (
	"testing"
	"time"

	"svssba/internal/core"
	"svssba/internal/proto"
	"svssba/internal/sim"
	"svssba/internal/transport"
)

func testLane() *lane {
	return newLane(&Node{cfg: Config{ID: 7}}, 0, nil, nil)
}

// TestLaneRingFIFO pins the ring's delivery order: items drain in push
// order across multiple batch claims — the property that keeps every
// scope's per-sender message order intact through the router hop.
func TestLaneRingFIFO(t *testing.T) {
	ln := testLane()
	const total = 1000
	go func() {
		for i := 0; i < total; i++ {
			ln.push(laneItem{from: 2, sc: proto.Scoped{Scope: uint64(i)}})
		}
	}()
	var items []laneItem
	var thunks []func()
	seen := 0
	for seen < total {
		items, thunks, _ = ln.takeBatch(items, thunks)
		for _, it := range items {
			if it.sc.Scope != uint64(seen) {
				t.Fatalf("item %d out of order: scope %d", seen, it.sc.Scope)
			}
			seen++
		}
	}
}

// TestLaneRingBackpressure fills the ring to capacity and verifies the
// producer blocks (counted as a wait episode, not a drop) until the
// worker claims a batch, and that the high-water mark saw the full
// ring.
func TestLaneRingBackpressure(t *testing.T) {
	ln := testLane()
	for i := 0; i < laneRingCap; i++ {
		ln.push(laneItem{from: 2})
	}
	unblocked := make(chan struct{})
	go func() {
		ln.push(laneItem{from: 2, sc: proto.Scoped{Scope: 999}})
		close(unblocked)
	}()
	select {
	case <-unblocked:
		t.Fatal("push past capacity did not block")
	case <-time.After(50 * time.Millisecond):
	}

	items, thunks, _ := ln.takeBatch(nil, nil)
	if len(items) != laneRingCap {
		t.Fatalf("claimed %d items, want %d", len(items), laneRingCap)
	}
	_ = thunks
	select {
	case <-unblocked:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked push never completed after the ring drained")
	}
	waits, drops, hw := ln.ringStats()
	if waits != 1 {
		t.Fatalf("waits = %d, want exactly 1 backpressure episode", waits)
	}
	if drops != 0 {
		t.Fatalf("drops = %d on a live lane, want 0", drops)
	}
	if hw != laneRingCap {
		t.Fatalf("highWater = %d, want %d", hw, laneRingCap)
	}
}

// TestLaneCtlDrainAtClose pins the Inject contract's multi-lane form:
// control thunks accepted before close are still handed out by
// takeBatch after close, a post-close enqueue fails, and a post-close
// push is counted as a drop.
func TestLaneCtlDrainAtClose(t *testing.T) {
	ln := testLane()
	ran := 0
	for i := 0; i < 3; i++ {
		if err := ln.enqueueCtl(func() { ran++ }); err != nil {
			t.Fatal(err)
		}
	}
	ln.close()
	if err := ln.enqueueCtl(func() {}); err == nil {
		t.Fatal("enqueueCtl succeeded on a closed lane")
	}
	ln.push(laneItem{from: 2})
	items, thunks, closed := ln.takeBatch(nil, nil)
	if !closed {
		t.Fatal("takeBatch did not report the lane closed")
	}
	if len(items) != 0 {
		t.Fatalf("closed lane handed out %d ring items", len(items))
	}
	for _, fn := range thunks {
		fn()
	}
	if ran != 3 {
		t.Fatalf("ran %d accepted thunks, want all 3", ran)
	}
	if _, drops, _ := ln.ringStats(); drops != 1 {
		t.Fatalf("drops = %d, want the post-close push counted", drops)
	}
}

// laneTestDriver hosts trivial wire-v2 stacks that never retire.
type laneTestDriver struct{}

func (laneTestDriver) Open(s *Session) *core.Stack {
	st := core.NewStack(1, nil)
	st.EnableWireV2()
	return st
}
func (laneTestDriver) Opened(*Session)        {}
func (laneTestDriver) MayRetire(*Session) bool { return false }

// startLaneNode boots node 1 of a 2-endpoint mesh in service mode with
// the given lane config.
func startLaneNode(t *testing.T, lanes int, laneKey func(uint64) uint64) *Node {
	t.Helper()
	mesh := transport.NewMesh(2)
	ep1, err := mesh.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := mesh.Endpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep1.Start(); err != nil {
		t.Fatal(err)
	}
	if err := ep2.Start(); err != nil {
		t.Fatal(err)
	}
	nd, err := New(Config{
		ID: 1, N: 2, Seed: 1, Codec: core.NewCodec(), Batching: true,
		Service: laneTestDriver{}, Lanes: lanes, LaneKey: laneKey,
	}, ep1)
	if err != nil {
		t.Fatal(err)
	}
	if err := nd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nd.Stop(); ep1.Close(); ep2.Close() })
	return nd
}

// TestLaneForPinsLaneKey verifies scope→lane pinning: with a LaneKey
// collapsing a scope to its sid, every slot of one sid lands on the
// same lane (the invariant OpenPeer relies on), and distinct sids
// actually spread across lanes.
func TestLaneForPinsLaneKey(t *testing.T) {
	nd := startLaneNode(t, 4, func(scope uint64) uint64 { return scope >> 8 })
	used := make(map[int]bool)
	for sid := uint64(1); sid <= 64; sid++ {
		ref := nd.laneFor(sid << 8)
		used[ref.idx] = true
		for slot := uint64(1); slot <= 4; slot++ {
			if ln := nd.laneFor(sid<<8 | slot); ln != ref {
				t.Fatalf("sid %d slot %d on lane %d, plane on lane %d", sid, slot, ln.idx, ref.idx)
			}
		}
	}
	if len(used) < 2 {
		t.Fatalf("64 sids all hashed to %d lane(s), want spread", len(used))
	}
}

// TestLanesConfigValidation pins the config surface: negative lane
// counts and multi-lane without service mode are rejected; the zero
// value means one lane.
func TestLanesConfigValidation(t *testing.T) {
	mesh := transport.NewMesh(2)
	ep, err := mesh.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{ID: 1, N: 2, Seed: 1, Codec: core.NewCodec(), Lanes: -1}, ep); err == nil {
		t.Fatal("negative lane count accepted")
	}
	if _, err := New(Config{ID: 1, N: 2, Seed: 1, Codec: core.NewCodec(), Lanes: 2}, ep); err == nil {
		t.Fatal("multi-lane without service mode accepted")
	}
	nd, err := New(Config{ID: 1, N: 2, Seed: 1, Codec: core.NewCodec()}, ep)
	if err != nil {
		t.Fatal(err)
	}
	if nd.laneCount != 1 {
		t.Fatalf("default lane count %d, want 1", nd.laneCount)
	}
}

// TestLanesOneStaysLegacy pins the determinism contract's structural
// half: a one-lane service node runs the historical single delivery
// goroutine — one lane, no router shard, zero ring traffic — so its
// schedules are byte-identical to the pre-lane runtime.
func TestLanesOneStaysLegacy(t *testing.T) {
	nd := startLaneNode(t, 1, nil)
	if got := len(nd.lanes); got != 1 {
		t.Fatalf("one-lane node built %d lanes", got)
	}
	if nd.routerShard != nil {
		t.Fatal("one-lane node allocated a router shard")
	}
	st := nd.Stats()
	if st.Lanes != 1 || st.RingWaits != 0 || st.RingDrops != 0 || st.RingHighWater != 0 {
		t.Fatalf("one-lane node reports ring traffic: %+v", st)
	}
}

// TestMultiLaneScopedDelivery drives scoped traffic for many scopes
// into a 4-lane node from a peer endpoint and verifies every payload is
// delivered (counted per kind) with zero ring drops and the scopes
// distributed across lanes.
func TestMultiLaneScopedDelivery(t *testing.T) {
	nd := startLaneNode(t, 4, nil)

	// Self-loop frames: the node's own endpoint addresses itself, so
	// From=1 passes the phantom-sender check and the router fans the
	// envelopes out by scope hash.
	codec := core.NewCodec()
	const scopes = 16
	const perScope = 8
	for k := 0; k < perScope; k++ {
		for s := uint64(1); s <= scopes; s++ {
			pack := proto.Pack{Items: []sim.Payload{}}
			frame, err := codec.EncodeBatch([]sim.Payload{proto.Scoped{Scope: s, Inner: pack}})
			if err != nil {
				t.Fatal(err)
			}
			if err := nd.tr.Send(1, frame); err != nil {
				t.Fatal(err)
			}
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		st := nd.Stats()
		if st.RecvByKind[proto.KindPack] == scopes*perScope {
			if st.RingDrops != 0 {
				t.Fatalf("ring drops on a live run: %d", st.RingDrops)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d/%d packs; errs=%v", st.RecvByKind[proto.KindPack], scopes*perScope, nd.Errs())
		}
		time.Sleep(5 * time.Millisecond)
	}
	counts, ok := nd.ServiceCounts()
	if !ok || counts.Live != scopes {
		t.Fatalf("live scopes = %d (ok=%v), want %d", counts.Live, ok, scopes)
	}
	// ServiceCounts just synchronized with every lane worker, so the
	// session tables are quiescent and safe to read directly.
	lanesUsed := 0
	for _, ln := range nd.lanes {
		if len(ln.sessions) > 0 {
			lanesUsed++
		}
	}
	if lanesUsed < 2 {
		t.Fatalf("%d scopes all landed on %d lane(s)", scopes, lanesUsed)
	}
}
