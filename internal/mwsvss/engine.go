package mwsvss

import (
	"fmt"
	"sort"

	"svssba/internal/dmm"
	"svssba/internal/field"
	"svssba/internal/poly"
	"svssba/internal/proto"
	"svssba/internal/sim"
)

// Host is what the engine needs from its process: identity, reliable
// broadcast, and the DMM layer. internal/core.Node implements it.
type Host interface {
	Self() sim.ProcID
	Broadcast(ctx sim.Context, tag proto.Tag, value []byte)
	DMM() *dmm.DMM
}

// Output is the result of reconstruct protocol R': a field value or ⊥.
type Output struct {
	Value  field.Element
	Bottom bool
}

// String implements fmt.Stringer.
func (o Output) String() string {
	if o.Bottom {
		return "⊥"
	}
	return o.Value.String()
}

// Callbacks notify the layer above (SVSS, tests) of instance progress.
type Callbacks struct {
	// ShareComplete fires when S' step 9 completes locally.
	ShareComplete func(ctx sim.Context, id proto.MWID)
	// ReconstructComplete fires when R' step 4 outputs locally.
	ReconstructComplete func(ctx sim.Context, id proto.MWID, out Output)
}

// rval is a buffered reconstruct-phase broadcast: origin claims its share
// of f_target is Val.
type rval struct {
	origin sim.ProcID
	target sim.ProcID
	val    field.Element
}

// instance holds the per-instance state of one process.
type instance struct {
	id proto.MWID

	// Dealer-only state (step 1).
	dealerPolys []poly.Poly // f_1..f_n at index 0..n-1
	isDealing   bool

	// Moderator-only state (steps 5-6).
	modSecret    field.Element
	modSecretSet bool
	modF         poly.Poly
	modFSet      bool
	modVals      map[sim.ProcID]field.Element // f̂^j_0 from j
	modM         map[sim.ProcID]bool          // M being built
	mBroadcast   bool

	// Share-phase participant state (steps 2-4, 8-9).
	vals      []field.Element // f̂^j_1..f̂^j_n from the dealer
	valsSet   bool
	myPoly    poly.Poly // f̂_j
	myPolySet bool
	sentStep2 bool
	echoVal   map[sim.ProcID]field.Element // f̂^l_j from l (first per l)
	ackFrom   map[sim.ProcID]bool          // RB-accepted acks
	dealSet   map[sim.ProcID]bool          // live L_j (step 3)
	lSnapshot []sim.ProcID                 // broadcast L_j (step 4)
	lDone     bool
	lSets     map[sim.ProcID][]sim.ProcID // accepted L̂_l per origin l
	mSet      []sim.ProcID                // accepted M̂
	mKnown    bool
	dealerOK  bool // dealer broadcast its OK (step 7)
	okKnown   bool // OK accepted (step 9)
	shareDone bool
	dropDone  bool // step 8 executed

	// Reconstruct state (R' steps 1-4).
	reconWanted  bool
	reconStarted bool
	rvalsPending []rval                      // accepted but not yet qualified
	rvalSeen     map[[2]sim.ProcID]bool      // (origin,target) first-only
	kSets        map[sim.ProcID][]poly.Point // K_{j,l}
	fBar         map[sim.ProcID]poly.Poly    // interpolated f̄_l
	fBarSet      map[sim.ProcID]bool
	reconDone    bool
}

var debugRecon = false

// Engine runs all MW-SVSS instances of one process.
type Engine struct {
	host  Host
	cb    Callbacks
	insts map[proto.MWID]*instance
}

// New returns an MW-SVSS engine for the host process.
func New(host Host, cb Callbacks) *Engine {
	return &Engine{host: host, cb: cb, insts: make(map[proto.MWID]*instance)}
}

func (e *Engine) inst(id proto.MWID) *instance {
	in, ok := e.insts[id]
	if !ok {
		in = &instance{
			id:       id,
			modVals:  make(map[sim.ProcID]field.Element),
			modM:     make(map[sim.ProcID]bool),
			echoVal:  make(map[sim.ProcID]field.Element),
			ackFrom:  make(map[sim.ProcID]bool),
			dealSet:  make(map[sim.ProcID]bool),
			lSets:    make(map[sim.ProcID][]sim.ProcID),
			rvalSeen: make(map[[2]sim.ProcID]bool),
			kSets:    make(map[sim.ProcID][]poly.Point),
			fBar:     make(map[sim.ProcID]poly.Poly),
			fBarSet:  make(map[sim.ProcID]bool),
		}
		e.insts[id] = in
		e.host.DMM().BeginShare(id)
	}
	return in
}

// Instance reports whether the engine has state for id (for tests).
func (e *Engine) Instance(id proto.MWID) bool {
	_, ok := e.insts[id]
	return ok
}

// ShareDone reports whether S' completed locally for id.
func (e *Engine) ShareDone(id proto.MWID) bool {
	in, ok := e.insts[id]
	return ok && in.shareDone
}

// ReconDone reports whether R' completed locally for id.
func (e *Engine) ReconDone(id proto.MWID) bool {
	in, ok := e.insts[id]
	return ok && in.reconDone
}

// tag builds an MW-SVSS broadcast tag for this instance.
func tag(id proto.MWID, step uint8, a uint32) proto.Tag {
	return proto.Tag{Proto: proto.ProtoMW, Session: id.Session, MW: id.Key, Step: step, A: a}
}

// Share runs share step 1: the calling process must be the instance
// dealer; it draws f, f_1..f_n and distributes shares.
func (e *Engine) Share(ctx sim.Context, id proto.MWID, secret field.Element) error {
	if id.Key.Dealer != e.host.Self() {
		return fmt.Errorf("mwsvss: process %d is not dealer of %s", e.host.Self(), id)
	}
	in := e.inst(id)
	if in.isDealing {
		return fmt.Errorf("mwsvss: instance %s already dealt", id)
	}
	in.isDealing = true

	n, t := ctx.N(), ctx.T()
	rng := ctx.Rand()
	f := poly.NewRandom(rng, t, secret)
	in.dealerPolys = make([]poly.Poly, n)
	for l := 1; l <= n; l++ {
		in.dealerPolys[l-1] = poly.NewRandom(rng, t, f.EvalUint(uint64(l)))
	}
	for j := 1; j <= n; j++ {
		vals := make([]field.Element, n)
		for l := 1; l <= n; l++ {
			vals[l-1] = in.dealerPolys[l-1].EvalUint(uint64(j))
		}
		ctx.Send(sim.ProcID(j), DealVals{MW: id, Vals: vals})
	}
	for l := 1; l <= n; l++ {
		ctx.Send(sim.ProcID(l), DealPoly{MW: id, Shares: in.dealerPolys[l-1].EvalRange(t + 1)})
	}
	ctx.Send(id.Key.Moderator, DealMod{MW: id, Shares: f.EvalRange(t + 1)})
	return nil
}

// SetModeratorSecret provides the moderator's input s' (the calling
// process must be the instance moderator).
func (e *Engine) SetModeratorSecret(ctx sim.Context, id proto.MWID, s field.Element) error {
	if id.Key.Moderator != e.host.Self() {
		return fmt.Errorf("mwsvss: process %d is not moderator of %s", e.host.Self(), id)
	}
	in := e.inst(id)
	in.modSecret = s
	in.modSecretSet = true
	e.advance(ctx, in)
	return nil
}

// Reconstruct begins protocol R' for id. If the share phase has not
// completed locally yet, reconstruction starts as soon as it does.
func (e *Engine) Reconstruct(ctx sim.Context, id proto.MWID) {
	in := e.inst(id)
	in.reconWanted = true
	e.advance(ctx, in)
}

// OnMessage handles the direct (non-broadcast) MW-SVSS messages.
func (e *Engine) OnMessage(ctx sim.Context, m sim.Message) {
	switch p := m.Payload.(type) {
	case DealVals:
		in := e.inst(p.MW)
		// Step 2 precondition: the values must come from the dealer.
		if m.From != p.MW.Key.Dealer || in.valsSet || len(p.Vals) != ctx.N() {
			return
		}
		in.vals = p.Vals
		in.valsSet = true
		e.advance(ctx, in)
	case DealPoly:
		in := e.inst(p.MW)
		if m.From != p.MW.Key.Dealer || in.myPolySet || len(p.Shares) != ctx.T()+1 {
			return
		}
		f, err := poly.InterpolateFromShares(p.Shares, ctx.T())
		if err != nil {
			return
		}
		in.myPoly = f
		in.myPolySet = true
		e.advance(ctx, in)
	case DealMod:
		if p.MW.Key.Moderator != e.host.Self() {
			return
		}
		in := e.inst(p.MW)
		if m.From != p.MW.Key.Dealer || in.modFSet || len(p.Shares) != ctx.T()+1 {
			return
		}
		f, err := poly.InterpolateFromShares(p.Shares, ctx.T())
		if err != nil {
			return
		}
		in.modF = f
		in.modFSet = true
		e.advance(ctx, in)
	case Echo:
		in := e.inst(p.MW)
		// Fan-out pruning: echoes only feed the live-L admission of step
		// 3, which stops at the L_j snapshot (step 4). Echoes arriving
		// after the snapshot are inert for this instance — never recorded,
		// never re-sent (step 2's one-shot guard already holds), so the
		// per-instance echo state stays bounded at the snapshot size.
		if in.lDone {
			return
		}
		if _, dup := in.echoVal[m.From]; dup {
			return
		}
		in.echoVal[m.From] = p.Val
		e.advance(ctx, in)
	case ModValue:
		if p.MW.Key.Moderator != e.host.Self() {
			return
		}
		in := e.inst(p.MW)
		// Same pruning on the moderator side: values only feed the M
		// admission of steps 5-6, which stops once M is broadcast.
		if in.mBroadcast {
			return
		}
		if _, dup := in.modVals[m.From]; dup {
			return
		}
		in.modVals[m.From] = p.Val
		e.advance(ctx, in)
	}
}

// ObserveBroadcast is the pre-filter hook: it runs DMM steps 2/3 on
// reconstruct-phase value broadcasts before any delay/park decision.
func (e *Engine) ObserveBroadcast(origin sim.ProcID, t proto.Tag, value []byte) {
	if t.Step != StepRVal {
		return
	}
	v, ok := DecodeElem(value)
	if !ok {
		return
	}
	id := proto.MWID{Session: t.Session, Key: t.MW}
	e.host.DMM().ObserveValueBroadcast(origin, id, sim.ProcID(t.A), v)
}

// OnBroadcast handles RB-accepted MW-SVSS broadcasts.
func (e *Engine) OnBroadcast(ctx sim.Context, origin sim.ProcID, t proto.Tag, value []byte) {
	id := proto.MWID{Session: t.Session, Key: t.MW}
	in := e.inst(id)
	switch t.Step {
	case StepAck:
		in.ackFrom[origin] = true
	case StepL:
		if _, dup := in.lSets[origin]; dup {
			return
		}
		ps, ok := DecodeProcs(value, ctx.N())
		if !ok {
			return
		}
		in.lSets[origin] = ps
	case StepM:
		if origin != id.Key.Moderator || in.mKnown {
			return
		}
		ps, ok := DecodeProcs(value, ctx.N())
		if !ok {
			return
		}
		in.mSet = ps
		in.mKnown = true
	case StepOK:
		if origin != id.Key.Dealer {
			return
		}
		in.okKnown = true
	case StepRVal:
		// Reconstruction pruning: once R' produced its output locally, or
		// once f̄_target is already interpolated, further value broadcasts
		// for that target change nothing here. They are still observed by
		// the DMM (ObserveBroadcast runs before this handler and resolves
		// ACK/DEAL expectations unconditionally), so only the dead protocol
		// bookkeeping is skipped. The reveal broadcast itself (R' step 1)
		// is never suppressed: every confirmer's reveal resolves DMM
		// expectations installed at other processes, and a suppressed
		// reveal would leave those expectations permanently stale — an
		// implicit shun of an honest process.
		if in.reconDone {
			return
		}
		target := sim.ProcID(t.A)
		if target < 1 || int(target) > ctx.N() {
			return
		}
		if in.fBarSet[target] {
			return
		}
		key := [2]sim.ProcID{origin, target}
		if in.rvalSeen[key] {
			return
		}
		v, ok := DecodeElem(value)
		if !ok {
			return
		}
		in.rvalSeen[key] = true
		in.rvalsPending = append(in.rvalsPending, rval{origin: origin, target: target, val: v})
	}
	e.advance(ctx, in)
}

// advance re-evaluates every enabled protocol step for the instance.
func (e *Engine) advance(ctx sim.Context, in *instance) {
	self := e.host.Self()
	n, t := ctx.N(), ctx.T()

	// Step 2: echo dealer values and RB an ack.
	if in.valsSet && in.myPolySet && !in.sentStep2 {
		in.sentStep2 = true
		for l := 1; l <= n; l++ {
			ctx.Send(sim.ProcID(l), Echo{MW: in.id, Val: in.vals[l-1]})
		}
		e.host.Broadcast(ctx, tag(in.id, StepAck, 0), nil)
	}

	// Step 3: admit confirmers into the live L set and install DEAL
	// expectations. Stops once L_j is broadcast (the snapshot names the
	// processes whose public confirmation we await).
	if in.myPolySet && !in.lDone {
		for l, v := range in.echoVal {
			if in.dealSet[l] || !in.ackFrom[l] {
				continue
			}
			if v != in.myPoly.EvalUint(uint64(l)) {
				continue
			}
			in.dealSet[l] = true
			e.host.DMM().Expect(dmm.Expectation{
				Sender:  l,
				Target:  self,
				Session: in.id,
				Value:   v,
				Source:  dmm.SourceDEAL,
			})
		}
	}

	// Step 4: broadcast the snapshot L_j and send f̂_j(0) to the
	// moderator.
	if !in.lDone && len(in.dealSet) >= n-t {
		in.lDone = true
		in.lSnapshot = sortedProcs(in.dealSet)
		// The echo buffer only feeds step 3, which the snapshot closes;
		// release it (late echoes are dropped on arrival from here on).
		in.echoVal = nil
		e.host.Broadcast(ctx, tag(in.id, StepL, 0), EncodeProcs(in.lSnapshot))
		ctx.Send(in.id.Key.Moderator, ModValue{MW: in.id, Val: in.myPoly.Secret()})
	}

	// Steps 5-6 (moderator): admit j into M when every check passes, then
	// broadcast M once it reaches n-t.
	if in.id.Key.Moderator == self && in.modSecretSet && in.modFSet &&
		in.modF.Secret() == in.modSecret && !in.mBroadcast {
		for j, v0 := range in.modVals {
			if in.modM[j] {
				continue
			}
			lset, ok := in.lSets[j]
			if !ok || v0 != in.modF.EvalUint(uint64(j)) {
				continue
			}
			if !allAcked(in, lset) {
				continue
			}
			in.modM[j] = true
		}
		if len(in.modM) >= n-t {
			in.mBroadcast = true
			e.host.Broadcast(ctx, tag(in.id, StepM, 0), EncodeProcs(sortedProcs(in.modM)))
		}
	}

	// Step 7 (dealer): once M̂, every L̂_j (j ∈ M̂) and their acks are in,
	// install ACK expectations and broadcast OK.
	if in.id.Key.Dealer == self && in.isDealing && in.mKnown && !in.dealerOK &&
		e.lSetsComplete(in) {
		in.dealerOK = true
		for _, j := range in.mSet {
			for _, l := range in.lSets[j] {
				e.host.DMM().Expect(dmm.Expectation{
					Sender:  l,
					Target:  j,
					Session: in.id,
					Value:   in.dealerPolys[j-1].EvalUint(uint64(l)),
					Source:  dmm.SourceACK,
				})
			}
		}
		e.host.Broadcast(ctx, tag(in.id, StepOK, 0), nil)
	}

	// Step 8: if the moderator's set excludes us, drop our DEAL
	// expectations for this session.
	if in.mKnown && !in.dropDone && !procsContain(in.mSet, self) {
		in.dropDone = true
		e.host.DMM().DropDealExpectations(in.id)
	}

	// Step 9: completion of S'.
	if !in.shareDone && in.okKnown && in.mKnown && e.lSetsComplete(in) {
		in.shareDone = true
		if e.cb.ShareComplete != nil {
			e.cb.ShareComplete(ctx, in.id)
		}
	}

	// R' step 1: reveal our shares of every monitored polynomial we
	// confirmed (we appear in L̂_l for l ∈ M̂).
	if in.reconWanted && in.shareDone && !in.reconStarted {
		in.reconStarted = true
		if in.valsSet {
			for _, l := range in.mSet {
				if procsContain(in.lSets[l], self) {
					e.host.Broadcast(ctx, tag(in.id, StepRVal, uint32(l)), EncodeElem(in.vals[l-1]))
				}
			}
		}
	}

	// R' step 2: qualify buffered value broadcasts into the K sets.
	if in.mKnown {
		kept := in.rvalsPending[:0]
		for _, rv := range in.rvalsPending {
			if in.fBarSet[rv.target] {
				continue // f̄_target already interpolated: surplus point
			}
			if !procsContain(in.mSet, rv.target) {
				continue // target outside M̂: irrelevant forever
			}
			lset, ok := in.lSets[rv.target]
			if !ok {
				kept = append(kept, rv) // L̂_target still in flight
				continue
			}
			if !procsContain(lset, rv.origin) {
				continue // never qualifies: origin not a confirmer
			}
			in.kSets[rv.target] = append(in.kSets[rv.target], poly.Point{
				X: field.New(uint64(rv.origin)),
				Y: rv.val,
			})
		}
		in.rvalsPending = kept
	}

	// R' step 3: interpolate f̄_l from the first t+1 qualified points.
	for l, pts := range in.kSets {
		if in.fBarSet[l] || len(pts) < t+1 {
			continue
		}
		f, err := poly.Interpolate(pts[:t+1])
		if err != nil {
			continue
		}
		in.fBar[l] = f
		in.fBarSet[l] = true
	}

	// R' step 4: once every f̄_l (l ∈ M̂) is known, interpolate f̄ and
	// output f̄(0), or ⊥ when no degree-t polynomial fits.
	if in.reconStarted && !in.reconDone && in.mKnown && len(in.mSet) > 0 {
		ready := true
		pts := make([]poly.Point, 0, len(in.mSet))
		for _, l := range in.mSet {
			if !in.fBarSet[l] {
				ready = false
				break
			}
			pts = append(pts, poly.Point{X: field.New(uint64(l)), Y: in.fBar[l].Secret()})
		}
		if ready {
			in.reconDone = true
			out := Output{Bottom: true}
			if f, ok, err := poly.InterpolateDegree(pts, t); err == nil && ok {
				out = Output{Value: f.Secret()}
			}
			if debugRecon {
				fmt.Printf("DBG recon self=%d pts=%v ksets=%v out=%v\n", self, pts, in.kSets, out)
			}
			e.host.DMM().CompleteReconstruct(in.id)
			if e.cb.ReconstructComplete != nil {
				e.cb.ReconstructComplete(ctx, in.id, out)
			}
		}
	}
}

// lSetsComplete reports whether M̂ is known, every L̂_j for j ∈ M̂ has been
// accepted, and every member of each such L̂_j has acked (the shared
// condition of steps 7 and 9).
func (e *Engine) lSetsComplete(in *instance) bool {
	if !in.mKnown {
		return false
	}
	for _, j := range in.mSet {
		lset, ok := in.lSets[j]
		if !ok {
			return false
		}
		if !allAcked(in, lset) {
			return false
		}
	}
	return true
}

func allAcked(in *instance, ps []sim.ProcID) bool {
	for _, p := range ps {
		if !in.ackFrom[p] {
			return false
		}
	}
	return true
}

func sortedProcs(set map[sim.ProcID]bool) []sim.ProcID {
	out := make([]sim.ProcID, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func procsContain(ps []sim.ProcID, p sim.ProcID) bool {
	for _, q := range ps {
		if q == p {
			return true
		}
	}
	return false
}
