// Command wirebench measures the wire-v2 message-complexity win: it
// runs the same unanimous-input agreement seed under both wire variants
// at several scales and prints one JSON record per run with delivery
// counts, coin rounds, per-coin-round deliveries and wall clock — the
// numbers tracked in BENCH_pr6.json.
//
//	wirebench -scales n7,n10 -wires v1,v2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"svssba"
)

type record struct {
	Scale      string  `json:"scale"`
	N          int     `json:"n"`
	T          int     `json:"t"`
	Wire       string  `json:"wire"`
	Steps      int     `json:"steps"`
	CoinRounds uint64  `json:"coin_rounds"`
	PerCoin    uint64  `json:"deliveries_per_coin_round"`
	MWCreated  uint64  `json:"mw_created"`
	RBCreated  uint64  `json:"rb_created"`
	Messages   int64   `json:"msgs"`
	Bytes      int64   `json:"bytes"`
	WallSecs   float64 `json:"wall_secs"`
	Value      int     `json:"value"`
	Agreed     bool    `json:"agreed"`
}

var scaleTable = map[string][2]int{
	"n4": {4, 1}, "n5": {5, 1}, "n7": {7, 2}, "n10": {10, 3}, "n13": {13, 4},
}

func main() {
	scales := flag.String("scales", "n7,n10", "comma-separated scales (n4,n5,n7,n10,n13)")
	wires := flag.String("wires", "v1,v2", "comma-separated wire variants")
	seed := flag.Int64("seed", 1, "run seed")
	flag.Parse()

	enc := json.NewEncoder(os.Stdout)
	for _, sc := range strings.Split(*scales, ",") {
		nt, ok := scaleTable[sc]
		if !ok {
			fmt.Fprintf(os.Stderr, "wirebench: unknown scale %q\n", sc)
			os.Exit(1)
		}
		n, t := nt[0], nt[1]
		inputs := make([]int, n)
		for i := range inputs {
			inputs[i] = 1
		}
		for _, wire := range strings.Split(*wires, ",") {
			start := time.Now()
			res, err := svssba.Run(svssba.Config{N: n, T: t, Seed: *seed, Inputs: inputs, Wire: wire})
			if err != nil {
				fmt.Fprintf(os.Stderr, "wirebench: %s/%s: %v\n", sc, wire, err)
				os.Exit(1)
			}
			if res.TimedOut || !res.AllDecided || !res.Agreed {
				fmt.Fprintf(os.Stderr, "wirebench: %s/%s: timeout=%v decided=%v agreed=%v\n",
					sc, wire, res.TimedOut, res.AllDecided, res.Agreed)
				os.Exit(1)
			}
			rec := record{
				Scale: sc, N: n, T: t, Wire: wire,
				Steps: res.Steps, CoinRounds: res.CoinRounds,
				MWCreated: res.MWCreated, RBCreated: res.RBCreated,
				Messages: res.Messages, Bytes: res.Bytes,
				WallSecs: time.Since(start).Seconds(),
				Value:    res.Value, Agreed: res.Agreed,
			}
			if rec.CoinRounds > 0 {
				rec.PerCoin = uint64(rec.Steps) / rec.CoinRounds
			}
			enc.Encode(rec)
		}
	}
}
