// Command coinstat measures the shunning common coin's empirical
// distribution — the SCC Correctness property of paper §5, Definition 2:
// for each σ ∈ {0,1}, all nonfaulty processes output σ with probability
// at least 1/4.
//
// Example:
//
//	coinstat -n 4 -runs 40
//	coinstat -n 4 -runs 40 -fault 4:rval-lie
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"svssba"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "coinstat:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n        = flag.Int("n", 4, "number of processes")
		t        = flag.Int("t", 0, "resilience bound (default (n-1)/3)")
		runs     = flag.Int("runs", 24, "number of independent coin invocations")
		seed     = flag.Int64("seed", 0, "base seed (run i uses seed+i)")
		batch    = flag.Int("coinbatch", 0, "batched dealing coverage in rounds (0 = classic per-round dealing)")
		faultArg = flag.String("fault", "", "proc:kind fault, e.g. 4:rval-lie")
	)
	flag.Parse()

	var faults []svssba.Fault
	if *faultArg != "" {
		proc, kind, ok := strings.Cut(*faultArg, ":")
		if !ok {
			return fmt.Errorf("bad fault %q", *faultArg)
		}
		p, err := strconv.Atoi(proc)
		if err != nil {
			return fmt.Errorf("bad fault process %q: %v", proc, err)
		}
		faults = append(faults, svssba.Fault{Proc: p, Kind: svssba.FaultKind(kind)})
	}

	all0, all1, split, timeout := 0, 0, 0, 0
	shuns := 0
	for i := 0; i < *runs; i++ {
		res, err := svssba.RunCoin(svssba.CoinConfig{
			N:         *n,
			T:         *t,
			Seed:      *seed + int64(i),
			Rounds:    1,
			Faults:    faults,
			CoinBatch: *batch,
		})
		if err != nil {
			return err
		}
		shuns += len(res.Shuns)
		if res.TimedOut || len(res.RoundResults) == 0 {
			timeout++
			continue
		}
		rr := res.RoundResults[0]
		switch {
		case !rr.Agreed:
			split++
		case rr.Value == 0:
			all0++
		default:
			all1++
		}
	}

	fmt.Printf("shunning common coin, n=%d, %d invocations\n", *n, *runs)
	fmt.Printf("  all-0  %3d  (%.2f; SCC needs >= 0.25)\n", all0, float64(all0)/float64(*runs))
	fmt.Printf("  all-1  %3d  (%.2f; SCC needs >= 0.25)\n", all1, float64(all1)/float64(*runs))
	fmt.Printf("  split  %3d  (allowed only alongside shunning)\n", split)
	fmt.Printf("  stuck  %3d\n", timeout)
	fmt.Printf("  shun events observed: %d\n", shuns)
	return nil
}
