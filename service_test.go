package svssba_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"svssba"
)

// serviceWait bounds one service-test phase; deadline-aware helpers
// trim it to the test deadline.
const serviceWait = 2 * time.Minute

// collectDecisions drains want decisions from each node, keyed by
// session id.
func collectDecisions(t *testing.T, cl *svssba.ServiceCluster, want int) []map[uint64]svssba.ServiceDecision {
	t.Helper()
	n := cl.N()
	out := make([]map[uint64]svssba.ServiceDecision, n+1)
	deadline := time.After(testBudget(t, serviceWait))
	for i := 1; i <= n; i++ {
		out[i] = make(map[uint64]svssba.ServiceDecision, want)
		for len(out[i]) < want {
			select {
			case d, ok := <-cl.Node(i).Decisions():
				if !ok {
					t.Fatalf("node %d: decision stream closed after %d/%d", i, len(out[i]), want)
				}
				if _, dup := out[i][d.Session]; dup {
					t.Fatalf("node %d: session %d decided twice", i, d.Session)
				}
				out[i][d.Session] = d
			case <-deadline:
				t.Fatalf("node %d: %d/%d decisions before deadline", i, len(out[i]), want)
			}
		}
	}
	return out
}

// waitServiceQuiescent polls until every node drained its submit queue,
// has no session in flight, and all nodes agree on the completed-session
// count (the count is nondeterministic — how many sessions form depends
// on how submits interleave with traffic joins — but all nodes must
// converge on the same set). Returns the common count.
func waitServiceQuiescent(t *testing.T, cl *svssba.ServiceCluster) int {
	t.Helper()
	deadline := time.Now().Add(testBudget(t, serviceWait))
	for {
		quiet := true
		completed := cl.Node(1).Completed()
		for i := 1; i <= cl.N(); i++ {
			nd := cl.Node(i)
			if nd.QueueLen() != 0 || nd.InFlight() != 0 || nd.Completed() != completed {
				quiet = false
				break
			}
		}
		if quiet {
			return completed
		}
		if time.Now().After(deadline) {
			for i := 1; i <= cl.N(); i++ {
				nd := cl.Node(i)
				t.Logf("node %d: queue=%d inflight=%d completed=%d", i, nd.QueueLen(), nd.InFlight(), nd.Completed())
			}
			t.Fatal("service did not quiesce")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// testBudget returns base trimmed to the test binary's deadline (minus
// headroom for teardown), the same pattern the n10/n13 tests use.
func testBudget(t *testing.T, base time.Duration) time.Duration {
	t.Helper()
	if dl, ok := t.Deadline(); ok {
		if until := time.Until(dl) - 10*time.Second; until < base {
			if until <= 0 {
				t.Skip("not enough time left in test deadline")
			}
			return until
		}
	}
	return base
}

// assertSameSubsets checks the per-session cross-node ACS contract:
// identical member sets and values everywhere, at least n−t members.
func assertSameSubsets(t *testing.T, cl *svssba.ServiceCluster, decs []map[uint64]svssba.ServiceDecision) {
	t.Helper()
	n, tt := cl.N(), cl.T()
	for sid, ref := range decs[1] {
		if len(ref.Members) < n-tt {
			t.Errorf("session %d: subset %v smaller than n-t=%d", sid, ref.Members, n-tt)
		}
		for i := 2; i <= n; i++ {
			d, ok := decs[i][sid]
			if !ok {
				t.Errorf("node %d: missing session %d", i, sid)
				continue
			}
			if fmt.Sprint(d.Members) != fmt.Sprint(ref.Members) {
				t.Errorf("session %d: node %d members %v != node 1 members %v", sid, i, d.Members, ref.Members)
				continue
			}
			for k := range ref.Values {
				if !bytes.Equal(d.Values[k], ref.Values[k]) {
					t.Errorf("session %d member %d: node %d value %q != node 1 value %q",
						sid, ref.Members[k], i, d.Values[k], ref.Values[k])
				}
			}
		}
	}
}

// waitServiceBaseline polls until every node's live scope count and
// protocol state return to zero — the per-session retirement contract.
func waitServiceBaseline(t *testing.T, cl *svssba.ServiceCluster) {
	t.Helper()
	deadline := time.Now().Add(testBudget(t, serviceWait))
	for {
		done := true
		for i := 1; i <= cl.N(); i++ {
			c, ok := cl.Node(i).Counts()
			if !ok {
				t.Fatalf("node %d: not a service node", i)
			}
			if c.Live != 0 || c.State.Total() != 0 {
				done = false
			}
		}
		if done {
			return
		}
		if time.Now().After(deadline) {
			for i := 1; i <= cl.N(); i++ {
				c, _ := cl.Node(i).Counts()
				t.Logf("node %d: live=%d retired=%d stateTotal=%d", i, c.Live, c.Retired, c.State.Total())
			}
			t.Fatal("service state did not return to baseline")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServiceCommonSubset runs concurrent ACS sessions over a chan
// cluster: every node submits values, every session must produce the
// same ≥ n−t subset on every node, and all per-session state must
// retire back to zero.
func TestServiceCommonSubset(t *testing.T) {
	const sessions = 5
	cl, err := svssba.StartService(svssba.ServiceConfig{N: 4, Seed: 42, Window: sessions})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 1; i <= cl.N(); i++ {
		for k := 0; k < sessions; k++ {
			if err := cl.Node(i).Submit([]byte(fmt.Sprintf("n%d-v%d", i, k))); err != nil {
				t.Fatalf("node %d submit %d: %v", i, k, err)
			}
		}
	}
	total := waitServiceQuiescent(t, cl)
	if total < sessions {
		// Every node drains `sessions` values, one per joined session, so
		// at least that many sessions must have formed.
		t.Errorf("completed %d sessions, want >= %d", total, sessions)
	}
	decs := collectDecisions(t, cl, total)
	assertSameSubsets(t, cl, decs)
	waitServiceBaseline(t, cl)
	for i := 1; i <= cl.N(); i++ {
		if errs := cl.Node(i).Errs(); len(errs) > 0 {
			t.Errorf("node %d: runtime errors: %v", i, errs[0])
		}
	}
}

// TestServiceSingleSubmitter runs a session only one node proposes
// into: peers join on traffic with empty proposals, and the subset
// still forms.
func TestServiceSingleSubmitter(t *testing.T) {
	cl, err := svssba.StartService(svssba.ServiceConfig{N: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Node(2).Submit([]byte("only")); err != nil {
		t.Fatal(err)
	}
	decs := collectDecisions(t, cl, 1)
	assertSameSubsets(t, cl, decs)
	for _, d := range decs[1] {
		found := false
		for k, m := range d.Members {
			if m == 2 {
				found = bytes.Equal(d.Values[k], []byte("only"))
			}
		}
		if !found {
			// Member 2 proposed and is honest; with no faults its proposal
			// must be in the subset (all honest input 1 before any flood
			// can start without n-t ones).
			t.Errorf("subset %v misses submitter's value", d.Members)
		}
	}
	waitServiceBaseline(t, cl)
}
