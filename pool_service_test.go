package svssba_test

import (
	"fmt"
	"testing"

	"svssba"
)

// TestServicePooledCommonSubset runs the concurrent-session workload of
// TestServiceCommonSubset with the coin-dealing pool on: the ACS
// contract (identical ≥ n−t subsets on every node) must hold unchanged,
// all per-session state — pool supplies included — must retire back to
// zero, and the one-shot handout ledger must show no reuse.
func TestServicePooledCommonSubset(t *testing.T) {
	const sessions = 5
	cl, err := svssba.StartService(svssba.ServiceConfig{N: 4, Seed: 42, Window: sessions, Pool: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 1; i <= cl.N(); i++ {
		for k := 0; k < sessions; k++ {
			if err := cl.Node(i).Submit([]byte(fmt.Sprintf("n%d-v%d", i, k))); err != nil {
				t.Fatalf("node %d submit %d: %v", i, k, err)
			}
		}
	}
	total := waitServiceQuiescent(t, cl)
	if total < sessions {
		t.Errorf("completed %d sessions, want >= %d", total, sessions)
	}
	decs := collectDecisions(t, cl, total)
	assertSameSubsets(t, cl, decs)
	waitServiceBaseline(t, cl)
	for i := 1; i <= cl.N(); i++ {
		st, ok := cl.Node(i).PoolStats()
		if !ok {
			t.Fatalf("node %d: pool off", i)
		}
		if st.DoubleHandouts != 0 {
			t.Errorf("node %d: %d double handouts (one-shot violated)", i, st.DoubleHandouts)
		}
		if st.Live != 0 {
			t.Errorf("node %d: %d pool supplies leaked", i, st.Live)
		}
		if st.Depth != 0 || st.Reserved != 0 {
			t.Errorf("node %d: pool gauges not drained: depth=%d reserved=%d", i, st.Depth, st.Reserved)
		}
		if st.Refills == 0 || st.Handouts == 0 {
			t.Errorf("node %d: pool unused: refills=%d handouts=%d", i, st.Refills, st.Handouts)
		}
		if errs := cl.Node(i).Errs(); len(errs) > 0 {
			t.Errorf("node %d: runtime errors: %v", i, errs[0])
		}
	}
}

// TestServicePooledExhaustionFallback runs the pool at its shallowest
// coverage (PoolRounds 1): any agreement whose coin needs a second
// round exhausts its pooled slots and falls back to classic per-round
// dealing on the agreement's own scope. The ACS contract, the one-shot
// ledger, and the drain-to-zero invariants must all survive the mixed
// pooled/classic regime.
func TestServicePooledExhaustionFallback(t *testing.T) {
	const sessions = 4
	cl, err := svssba.StartService(svssba.ServiceConfig{N: 4, Seed: 99, Window: sessions, Pool: true, PoolRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 1; i <= cl.N(); i++ {
		for k := 0; k < sessions; k++ {
			if err := cl.Node(i).Submit([]byte(fmt.Sprintf("x%d-v%d", i, k))); err != nil {
				t.Fatalf("node %d submit %d: %v", i, k, err)
			}
		}
	}
	total := waitServiceQuiescent(t, cl)
	if total < sessions {
		t.Errorf("completed %d sessions, want >= %d", total, sessions)
	}
	decs := collectDecisions(t, cl, total)
	assertSameSubsets(t, cl, decs)
	waitServiceBaseline(t, cl)
	for i := 1; i <= cl.N(); i++ {
		st, ok := cl.Node(i).PoolStats()
		if !ok {
			t.Fatalf("node %d: pool off", i)
		}
		if st.DoubleHandouts != 0 {
			t.Errorf("node %d: %d double handouts after exhaustion", i, st.DoubleHandouts)
		}
		if st.Live != 0 || st.Depth != 0 || st.Reserved != 0 {
			t.Errorf("node %d: pool state leaked: %+v", i, st)
		}
		if st.Handouts == 0 {
			t.Errorf("node %d: pooled rounds never consumed", i)
		}
		if errs := cl.Node(i).Errs(); len(errs) > 0 {
			t.Errorf("node %d: runtime errors: %v", i, errs[0])
		}
	}
}
