package svssba_test

import (
	"testing"
	"time"

	"svssba"
)

func TestRunDefaultsDecideAndAgree(t *testing.T) {
	res, err := svssba.Run(svssba.Config{N: 4, Seed: 1})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.AllDecided || !res.Agreed {
		t.Fatalf("result: %+v", res)
	}
	if res.Value != 0 && res.Value != 1 {
		t.Errorf("non-binary value %d", res.Value)
	}
	if res.Messages == 0 || res.Bytes == 0 {
		t.Error("no traffic recorded")
	}
}

func TestRunUnanimousValidity(t *testing.T) {
	for _, v := range []int{0, 1} {
		res, err := svssba.Run(svssba.Config{
			N:      4,
			Seed:   2,
			Inputs: []int{v, v, v, v},
		})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if !res.Agreed || res.Value != v {
			t.Errorf("unanimous %d: agreed=%v value=%d", v, res.Agreed, res.Value)
		}
	}
}

func TestRunWithByzantineFault(t *testing.T) {
	res, err := svssba.Run(svssba.Config{
		N:      4,
		Seed:   3,
		Faults: []svssba.Fault{{Proc: 4, Kind: svssba.FaultVoteFlip}},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.AllDecided || !res.Agreed {
		t.Fatalf("byzantine run failed: %+v", res)
	}
}

func TestRunWithCrashAndDelaySchedulers(t *testing.T) {
	for _, sched := range []svssba.SchedulerKind{
		svssba.SchedRandom, svssba.SchedFIFO, svssba.SchedDelayUniform, svssba.SchedDelayExp,
	} {
		res, err := svssba.Run(svssba.Config{
			N:         4,
			Seed:      4,
			Scheduler: sched,
			Faults:    []svssba.Fault{{Proc: 2, Kind: svssba.FaultCrash}},
		})
		if err != nil {
			t.Fatalf("%s: %v", sched, err)
		}
		if !res.Agreed {
			t.Errorf("%s: no agreement", sched)
		}
	}
}

func TestRunConfigValidation(t *testing.T) {
	cases := []svssba.Config{
		{N: 1},
		{N: 4, Inputs: []int{1}},
		{N: 4, Inputs: []int{0, 1, 2, 1}},
		{N: 4, Faults: []svssba.Fault{{Proc: 9, Kind: svssba.FaultCrash}}},
		{N: 4, Protocol: svssba.ProtocolBenOr, Faults: []svssba.Fault{{Proc: 1, Kind: svssba.FaultVoteFlip}}},
		{N: 4, Protocol: "nope"},
	}
	for i, cfg := range cases {
		if _, err := svssba.Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRunBaselines(t *testing.T) {
	for _, p := range []svssba.Protocol{svssba.ProtocolBenOr, svssba.ProtocolLocalCoin, svssba.ProtocolEpsCoin} {
		n := 4
		if p == svssba.ProtocolBenOr {
			n = 7 // Ben-Or needs n > 5t; keep t=1
		}
		cfg := svssba.Config{N: n, T: 1, Seed: 5, Protocol: p}
		res, err := svssba.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if !res.Agreed {
			t.Errorf("%s: no agreement", p)
		}
	}
}

func TestRunEpsCoinOneStalls(t *testing.T) {
	res, err := svssba.Run(svssba.Config{
		N:        4,
		Seed:     6,
		Protocol: svssba.ProtocolEpsCoin,
		Eps:      1.0,
		MaxSteps: 5_000_000,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.AllDecided {
		t.Error("eps=1 run decided")
	}
}

func TestRunSVSSHonest(t *testing.T) {
	res, err := svssba.RunSVSS(svssba.SVSSConfig{N: 4, Seed: 7, Secret: 424242})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.Outputs) != 4 {
		t.Fatalf("outputs: %v", res.Outputs)
	}
	for pid, out := range res.Outputs {
		if out.Bottom || out.Value != 424242 {
			t.Errorf("process %d output %v", pid, out)
		}
	}
	if len(res.Shuns) != 0 {
		t.Errorf("shuns in honest run: %v", res.Shuns)
	}
}

func TestRunSVSSWithLiar(t *testing.T) {
	sawShun, sawAllCorrect := false, false
	for seed := int64(0); seed < 8; seed++ {
		res, err := svssba.RunSVSS(svssba.SVSSConfig{
			N:      4,
			Seed:   seed,
			Secret: 99,
			Faults: []svssba.Fault{{Proc: 4, Kind: svssba.FaultRValLie}},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		wrong := 0
		for pid, out := range res.Outputs {
			if pid == 4 {
				continue
			}
			if out.Bottom || out.Value != 99 {
				wrong++
			}
		}
		if wrong > 0 && len(res.Shuns) == 0 {
			t.Fatalf("seed %d: wrong outputs without shun", seed)
		}
		if len(res.Shuns) > 0 {
			sawShun = true
		}
		if wrong == 0 {
			sawAllCorrect = true
		}
	}
	if !sawShun {
		t.Error("liar never shunned across seeds")
	}
	_ = sawAllCorrect
}

func TestRunCoinDistribution(t *testing.T) {
	res, err := svssba.RunCoin(svssba.CoinConfig{N: 4, Seed: 8, Rounds: 6})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.RoundResults) != 6 {
		t.Fatalf("rounds: %d", len(res.RoundResults))
	}
	for i, rr := range res.RoundResults {
		if !rr.Agreed {
			t.Errorf("round %d: coin disagreement in honest run", i+1)
		}
	}
}

func TestRunLiveAgreement(t *testing.T) {
	res, err := svssba.RunLive(svssba.LiveConfig{
		N:        4,
		Seed:     9,
		MaxDelay: 200 * time.Microsecond,
		Timeout:  2 * time.Minute,
	})
	if err != nil {
		t.Fatalf("live run: %v", err)
	}
	if !res.Agreed {
		t.Fatalf("live run disagreement: %+v", res.Decisions)
	}
	if len(res.Decisions) != 4 {
		t.Errorf("decisions: %v", res.Decisions)
	}
}
