// Package paritycells defines the fixed matrix of deterministic runs
// shared by cmd/paritydigest (the representation-change guardrail) and
// the wire-variant equivalence test: agreement cells across schedulers,
// fault behaviours and scales, plus standalone SVSS and coin sessions.
// Keeping the matrix in one place means the digest and the v1-vs-v2
// proof of equivalence always cover the same ground.
package paritycells

import "svssba"

// Cell is one named deterministic agreement run.
type Cell struct {
	Name string
	Cfg  svssba.Config
}

// Agreement returns the agreement-run matrix. With deep, the n7/t2
// cells (minutes of deliveries) are appended.
func Agreement(deep bool) []Cell {
	cells := []Cell{
		{"n4-random-s1", svssba.Config{N: 4, Seed: 1}},
		{"n4-random-s2", svssba.Config{N: 4, Seed: 2}},
		{"n4-random-s3", svssba.Config{N: 4, Seed: 3}},
		{"n4-fifo-s1", svssba.Config{N: 4, Seed: 1, Scheduler: svssba.SchedFIFO}},
		{"n4-delayexp-s1", svssba.Config{N: 4, Seed: 1, Scheduler: svssba.SchedDelayExp}},
		{"n4-partition-s1", svssba.Config{N: 4, Seed: 1, Scheduler: svssba.SchedPartition}},
		{"n4-batched-s1", svssba.Config{N: 4, Seed: 1, Batching: true}},
		{"n5-crash-s1", svssba.Config{N: 5, T: 1, Seed: 1, Faults: []svssba.Fault{{Proc: 5, Kind: svssba.FaultCrash}}}},
		{"n4-silent-s1", svssba.Config{N: 4, Seed: 1, Faults: []svssba.Fault{{Proc: 4, Kind: svssba.FaultSilent}}}},
		{"n4-voteflip-s1", svssba.Config{N: 4, Seed: 1, Inputs: []int{1, 1, 1, 1}, Faults: []svssba.Fault{{Proc: 4, Kind: svssba.FaultVoteFlip}}}},
		{"n4-voteequiv-s1", svssba.Config{N: 4, Seed: 1, Faults: []svssba.Fault{{Proc: 4, Kind: svssba.FaultVoteEquivocate}}}},
		{"n4-rvallie-s1", svssba.Config{N: 4, Seed: 1, Faults: []svssba.Fault{{Proc: 4, Kind: svssba.FaultRValLie}}}},
		{"n4-echolie-s1", svssba.Config{N: 4, Seed: 1, Faults: []svssba.Fault{{Proc: 4, Kind: svssba.FaultEchoLie}}}},
		{"n4-dealcorrupt-s1", svssba.Config{N: 4, Seed: 1, Faults: []svssba.Fault{{Proc: 4, Kind: svssba.FaultDealCorrupt}}}},
		{"n4-muteburst-s1", svssba.Config{N: 4, Seed: 1, Faults: []svssba.Fault{{Proc: 4, Kind: svssba.FaultMuteBurst}}}},
		{"n4-targdelay-s1", svssba.Config{N: 4, Seed: 1, Faults: []svssba.Fault{{Proc: 4, Kind: svssba.FaultTargetedDelay}}}},
		{"n4-crossequiv-s1", svssba.Config{N: 4, Seed: 1, Faults: []svssba.Fault{{Proc: 4, Kind: svssba.FaultCrossEquivocate}}}},
		{"n4-coinbias-s1", svssba.Config{N: 4, Seed: 1, Faults: []svssba.Fault{{Proc: 4, Kind: svssba.FaultCoinBias}}}},
		{"n5-coinbias-s7", svssba.Config{N: 5, T: 1, Seed: 7, Faults: []svssba.Fault{{Proc: 5, Kind: svssba.FaultCoinBias}}}},
		{"n4-benor", svssba.Config{N: 4, Seed: 1, Protocol: svssba.ProtocolBenOr}},
		{"n4-localcoin", svssba.Config{N: 4, Seed: 1, Protocol: svssba.ProtocolLocalCoin}},
	}
	if deep {
		cells = append(cells,
			Cell{"n7-random-s1", svssba.Config{N: 7, T: 2, Seed: 1}},
			Cell{"n7-batched-s1", svssba.Config{N: 7, T: 2, Seed: 1, Batching: true}},
		)
	}
	return cells
}
