package baseline

import (
	"math/rand"

	"svssba/internal/aba"
	"svssba/internal/sim"
)

// localCoin satisfies aba.CoinPort with independent per-process flips —
// the Bracha-style baseline: safe at n > 3t, but processes only make
// progress in rounds where enough independent flips collide, so the
// expected round count grows exponentially with n.
type localCoin struct {
	eng *aba.Engine
}

// Start implements aba.CoinPort by answering immediately with a local
// random bit.
func (l *localCoin) Start(ctx sim.Context, r uint64) {
	l.eng.OnCoin(ctx, r, ctx.Rand().Intn(2))
}

// LocalCoinNode runs the main protocol's voting layer (BV/AUX/CONF) with
// the common coin replaced by local flips. Comparing it against the full
// stack isolates exactly the contribution of the SVSS-based common coin.
type LocalCoinNode struct {
	Eng *aba.Engine

	self  sim.ProcID
	input int
}

var _ sim.Handler = (*LocalCoinNode)(nil)

// NewLocalCoinNode builds a local-coin agreement process.
func NewLocalCoinNode(self sim.ProcID, input int, onDecide DecideFunc) *LocalCoinNode {
	n := &LocalCoinNode{self: self, input: input}
	lc := &localCoin{}
	n.Eng = aba.New(self, lc, func(ctx sim.Context, v int) {
		if onDecide != nil {
			onDecide(ctx, v)
		}
	})
	lc.eng = n.Eng
	return n
}

// ID implements sim.Handler.
func (n *LocalCoinNode) ID() sim.ProcID { return n.self }

// Init implements sim.Handler.
func (n *LocalCoinNode) Init(ctx sim.Context) {
	_ = n.Eng.Propose(ctx, n.input)
}

// Deliver implements sim.Handler.
func (n *LocalCoinNode) Deliver(ctx sim.Context, m sim.Message) {
	n.Eng.OnMessage(ctx, m)
}

// epsCoin satisfies aba.CoinPort with an *ideal shared* coin whose
// invocations fail — globally and permanently — with probability eps.
// This models the Canetti–Rabin construction, whose AVSS (and therefore
// whose coin) terminates only with probability 1-ε: runs that draw a
// failing round never decide.
type epsCoin struct {
	eng  *aba.Engine
	eps  float64
	seed int64
}

// Start implements aba.CoinPort.
func (c *epsCoin) Start(ctx sim.Context, r uint64) {
	// All processes derive the same per-round randomness, modeling an
	// ideal common coin with a global failure event.
	rng := rand.New(rand.NewSource(c.seed ^ int64(r*0x9e3779b9)))
	if rng.Float64() < c.eps {
		return // the coin protocol never terminates this round
	}
	c.eng.OnCoin(ctx, r, rng.Intn(2))
}

// EpsCoinNode runs the voting layer over the ε-failing ideal coin.
type EpsCoinNode struct {
	Eng *aba.Engine

	self  sim.ProcID
	input int
}

var _ sim.Handler = (*EpsCoinNode)(nil)

// NewEpsCoinNode builds an agreement process whose common coin fails
// with probability eps per round (seed must be shared by all processes
// of the run).
func NewEpsCoinNode(self sim.ProcID, input int, eps float64, seed int64, onDecide DecideFunc) *EpsCoinNode {
	n := &EpsCoinNode{self: self, input: input}
	ec := &epsCoin{eps: eps, seed: seed}
	n.Eng = aba.New(self, ec, func(ctx sim.Context, v int) {
		if onDecide != nil {
			onDecide(ctx, v)
		}
	})
	ec.eng = n.Eng
	return n
}

// ID implements sim.Handler.
func (n *EpsCoinNode) ID() sim.ProcID { return n.self }

// Init implements sim.Handler.
func (n *EpsCoinNode) Init(ctx sim.Context) {
	_ = n.Eng.Propose(ctx, n.input)
}

// Deliver implements sim.Handler.
func (n *EpsCoinNode) Deliver(ctx sim.Context, m sim.Message) {
	n.Eng.OnMessage(ctx, m)
}
