package svssba

import (
	"fmt"

	"svssba/internal/par"
)

// BatchResult pairs one RunMany entry with its outcome. Exactly one of
// Res and Err is meaningful.
type BatchResult struct {
	// Config is the configuration the run used, as passed to RunMany.
	Config Config
	// Res is the run's result when Err is nil.
	Res *Result
	// Err is the run error; a panic inside the run surfaces here instead
	// of taking down the whole batch.
	Err error
}

// RunMany executes every configuration with up to `workers` concurrent
// runs (workers < 1 means GOMAXPROCS) and returns the outcomes in input
// order. Each run is an independent deterministic simulation, so for
// fixed configs the returned slice is identical no matter how many
// workers execute it — parallelism changes wall-clock time only.
func RunMany(cfgs []Config, workers int) []BatchResult {
	return par.Map(workers, cfgs, func(i int, cfg Config) BatchResult {
		res, err, panicked := par.Call(func() (*Result, error) { return Run(cfg) })
		if panicked {
			err = fmt.Errorf("svssba: run %d: %w", i, err)
		}
		return BatchResult{Config: cfg, Res: res, Err: err}
	})
}
