// Command loadgen drives sustained agreement-as-a-service traffic: it
// boots an n-node service cluster (svssba.StartService), keeps every
// node's submit window full of fresh values for the run duration, then
// drains to quiescence and verifies the service contract — every
// session's common subset identical on every node with at least n−t
// members, and all per-session protocol state retired back to zero.
// It reports decisions/sec, p50/p95/p99 session latency and the
// coin-rounds-per-session distribution (the luck number behind the
// latency tail).
//
// Observability: -http serves live metric snapshots, protocol round
// traces and pprof; -report prints a periodic one-line status;
// -trace/-tracefile capture per-node round traces to JSONL.
//
// Soak mode (-soak) arms the watchdog: the run is sampled every
// -soakinterval, and the process exits nonzero if throughput sags below
// -flatness of its first-half rate, protocol state grows without bound
// (or past -statebudget), or any session exceeds -maxlat / -maxcoin.
//
// Examples:
//
//	loadgen -n 4 -duration 30s
//	loadgen -n 4 -window 20 -minpeak 20 -duration 60s -json
//	loadgen -n 4 -http 127.0.0.1:8780 -report 5s -duration 60s
//	loadgen -n 4 -soak -duration 10m -maxlat 2m
//
// The process exits nonzero if any contract or watchdog check fails.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"svssba"
	"svssba/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// report is the machine-readable run summary (-json).
type report struct {
	N            int     `json:"n"`
	T            int     `json:"t"`
	Transport    string  `json:"transport"`
	Wire         string  `json:"wire"`
	Window       int     `json:"window"`
	Lanes        int     `json:"lanes"`
	ValueBytes   int     `json:"value_bytes"`
	DurationSecs float64 `json:"duration_secs"`
	DrainSecs    float64 `json:"drain_secs"`
	Pool         bool    `json:"pool"`
	PoolRounds   int     `json:"pool_rounds,omitempty"`

	Sessions int `json:"sessions"`
	// DecisionsSec counts only sessions that completed during the
	// submission phase; DrainCompleted is the tail that finished during
	// the drain. Crediting the drain tail to the rate would overstate
	// sustained throughput (the window is no longer being refilled), and
	// pooled runs — which front-load dealing and drain a deeper in-flight
	// set — would be the most over-credited.
	DrainCompleted int     `json:"drain_completed"`
	DecisionsSec   float64 `json:"decisions_per_sec"`
	P50Ms          float64 `json:"latency_p50_ms"`
	P95Ms          float64 `json:"latency_p95_ms"`
	P99Ms          float64 `json:"latency_p99_ms"`
	MaxInFlight    []int   `json:"max_in_flight_per_node"`
	PeakSessions   int     `json:"peak_concurrent_sessions"`

	// Coin-rounds-per-session distribution, node-1 view (every honest
	// node observes each agreement's flips; the per-node numbers agree
	// up to scheduling). The histogram is the fixed-bucket snapshot fed
	// by every node's decisions, so it is the cross-node view.
	CoinMean float64                `json:"coin_rounds_mean"`
	CoinMax  uint64                 `json:"coin_rounds_max"`
	CoinP50  float64                `json:"coin_rounds_p50"`
	CoinP95  float64                `json:"coin_rounds_p95"`
	CoinHist *obs.HistogramSnapshot `json:"coin_rounds_hist,omitempty"`

	SentFrames int64 `json:"sent_frames"`
	SentBytes  int64 `json:"sent_frame_bytes"`
	RecvFrames int64 `json:"recv_frames"`

	LatePayloadsDropped int64 `json:"late_payloads_dropped"`
	LateFramesDropped   int64 `json:"late_frames_dropped"`
	OversizedDropped    int64 `json:"oversized_dropped"`
	DroppedDecisions    int   `json:"dropped_decisions"`

	// Lane-runtime counters, summed across nodes. RingWaits measures
	// router backpressure episodes (informational); RingDrops must be
	// zero — a nonzero value means payloads were discarded outside
	// shutdown and fails the run.
	RingWaits     int64 `json:"ring_waits"`
	RingDrops     int64 `json:"ring_drops"`
	RingHighWater int   `json:"ring_high_water"`

	// Coin-pool counters, summed across nodes (pooled runs only).
	PoolRefills        int64 `json:"pool_refills,omitempty"`
	PoolHandouts       int64 `json:"pool_handouts,omitempty"`
	PoolDoubleHandouts int64 `json:"pool_double_handouts,omitempty"`
	PoolLeakedSupplies int64 `json:"pool_leaked_supplies,omitempty"`

	BaselineOK bool `json:"baseline_ok"`
	SubsetsOK  bool `json:"subsets_ok"`

	Soak *soakReport `json:"soak,omitempty"`
}

// soakReport is the watchdog's verdict (-soak).
type soakReport struct {
	Samples        int     `json:"samples"`
	RateFirstHalf  float64 `json:"rate_first_half"`
	RateSecondHalf float64 `json:"rate_second_half"`
	FlatnessOK     bool    `json:"flatness_ok"`
	StateMax       int     `json:"state_max"`
	BoundedOK      bool    `json:"bounded_ok"`
	// Per-session budget violations (0 when the budget flag is unset).
	LatencyViolations int `json:"latency_violations"`
	CoinViolations    int `json:"coin_violations"`
}

// soakSample is one watchdog observation during the submission phase.
type soakSample struct {
	at        time.Time
	decisions int
	state     int
}

func run() error {
	var (
		n          = flag.Int("n", 4, "number of nodes")
		t          = flag.Int("t", 0, "resilience bound (default (n-1)/3)")
		seed       = flag.Int64("seed", 1, "seed for node randomness and generated values")
		transportK = flag.String("transport", "chan", "chan | tcp")
		wire       = flag.String("wire", "v2", "wire variant for the scoped stacks: v1 | v2")
		window     = flag.Int("window", 8, "per-node cap on self-initiated concurrent sessions")
		lanes      = flag.Int("lanes", 1, "per-scope execution lanes per node (0 = min(GOMAXPROCS, 8); 1 = the single-goroutine runtime)")
		pool       = flag.Bool("pool", false, "amortize coin setup through the shared dealing pool (batched MW-SVSS)")
		poolRounds = flag.Int("poolrounds", 0, "coin-round coverage per pooled dealing (default 4)")
		valBytes   = flag.Int("bytes", 64, "size of each submitted value")
		duration   = flag.Duration("duration", 30*time.Second, "submission phase length")
		drain      = flag.Duration("drain", 2*time.Minute, "post-submission drain budget")
		minPeak    = flag.Int("minpeak", 0, "fail unless some node's concurrent-session high-water mark reaches this")
		minRate    = flag.Float64("minrate", 0, "fail unless decisions/sec exceeds this")
		asJSON     = flag.Bool("json", false, "emit the JSON report instead of the text summary")
		verbose    = flag.Bool("v", false, "print per-node stats lines")

		httpAddr  = flag.String("http", "", "serve /metrics, /trace and /debug/pprof on this address")
		reportInt = flag.Duration("report", 0, "periodic one-line status interval (0 = off; -soak defaults to the soak interval)")
		traceCap  = flag.Int("trace", 0, "per-node protocol round tracer capacity (0 = off; -http and -tracefile default to 4096)")
		traceFile = flag.String("tracefile", "", "write all nodes' round traces as JSONL to this file at exit")

		soak     = flag.Bool("soak", false, "arm the soak watchdog (flatness, boundedness, per-session budgets)")
		soakInt  = flag.Duration("soakinterval", 5*time.Second, "watchdog sampling interval")
		maxLat   = flag.Duration("maxlat", 0, "flag sessions slower than this (0 = off)")
		maxCoin  = flag.Uint64("maxcoin", 0, "flag sessions with more coin rounds than this (0 = off)")
		stateCap = flag.Int("statebudget", 0, "hard cap on summed live protocol state (0 = relative-growth check)")
		flatness = flag.Float64("flatness", 0.5, "fail if second-half decisions/sec falls below this fraction of first-half")
	)
	flag.Parse()

	if *traceCap == 0 && (*httpAddr != "" || *traceFile != "") {
		*traceCap = 4096
	}
	if *soak && *reportInt == 0 {
		*reportInt = *soakInt
	}

	reg := obs.NewRegistry()
	cl, err := svssba.StartService(svssba.ServiceConfig{
		N:          *n,
		T:          *t,
		Seed:       *seed,
		Transport:  svssba.TransportKind(*transportK),
		Wire:       *wire,
		Window:     *window,
		Lanes:      *lanes,
		Pool:       *pool,
		PoolRounds: *poolRounds,
		// The verifier must see every decision; size the queue so the
		// collector goroutines never race the drop-oldest bound.
		DecisionBuffer: 1 << 20,
		Metrics:        reg,
		TraceCap:       *traceCap,
	})
	if err != nil {
		return err
	}
	defer cl.Close()

	if *httpAddr != "" {
		srv, err := obs.Serve(*httpAddr, reg, cl.Tracers()...)
		if err != nil {
			return fmt.Errorf("http endpoint: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "loadgen: observability endpoint on http://%s\n", srv.Addr())
	}
	if *reportInt > 0 {
		var meter obs.Meter
		rep := obs.StartReporter(os.Stderr, *reportInt, func() string {
			s := reg.Snapshot()
			dec := s.Counters["service.decisions"]
			rate := meter.Tick(dec)
			lat := s.Histograms["service.session_latency_ms"]
			coin := s.Histograms["service.session_coin_rounds"]
			var scopes, queue int64
			for name, v := range s.Gauges {
				if matchSuffix(name, ".scopes_live") {
					scopes += v
				}
				if matchSuffix(name, ".queue_depth") {
					queue += v
				}
			}
			return fmt.Sprintf("dec=%d (%.1f/s) lat(ms) p50/p95/p99=%.0f/%.0f/%.0f coin p50/p95=%.0f/%.0f scopes=%d queue=%d",
				dec, rate,
				lat.Quantile(0.50), lat.Quantile(0.95), lat.Quantile(0.99),
				coin.Quantile(0.50), coin.Quantile(0.95), scopes, queue)
		})
		defer rep.Stop()
	}

	// Collect every node's decision stream concurrently.
	var (
		mu   sync.Mutex
		decs = make([]map[uint64]svssba.ServiceDecision, *n+1)
		lats []time.Duration
		wg   sync.WaitGroup
	)
	for i := 1; i <= *n; i++ {
		decs[i] = make(map[uint64]svssba.ServiceDecision)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for d := range cl.Node(i).Decisions() {
				mu.Lock()
				decs[i][d.Session] = d
				lats = append(lats, d.Elapsed)
				mu.Unlock()
			}
		}(i)
	}

	// Soak watchdog sampler: decisions and summed live protocol state at
	// a fixed cadence through the submission phase.
	var (
		samples    []soakSample
		samplerWG  sync.WaitGroup
		samplerEnd chan struct{}
	)
	if *soak {
		samplerEnd = make(chan struct{})
		samplerWG.Add(1)
		go func() {
			defer samplerWG.Done()
			tick := time.NewTicker(*soakInt)
			defer tick.Stop()
			for {
				select {
				case <-samplerEnd:
					return
				case at := <-tick.C:
					state := 0
					for i := 1; i <= *n; i++ {
						if c, ok := cl.Node(i).Counts(); ok {
							state += c.State.Total()
						}
					}
					samples = append(samples, soakSample{
						at:        at,
						decisions: cl.Node(1).Completed(),
						state:     state,
					})
				}
			}
		}()
	}

	// Submission phase: keep every node's window topped up with fresh
	// values so the service runs at its configured concurrency.
	rnd := rand.New(rand.NewSource(*seed))
	value := func() []byte {
		b := make([]byte, *valBytes)
		rnd.Read(b)
		return b
	}
	start := time.Now()
	stop := start.Add(*duration)
	for time.Now().Before(stop) {
		for i := 1; i <= *n; i++ {
			nd := cl.Node(i)
			for nd.QueueLen()+nd.InFlight() < *window {
				if err := nd.Submit(value()); err != nil {
					return fmt.Errorf("node %d: submit: %v", i, err)
				}
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	submitted := time.Since(start)
	// Decisions/sec is measured over the submission phase only: snapshot
	// the completed count now, before the drain lets the in-flight tail
	// finish without competition for the window.
	liveTotal := cl.Node(1).Completed()
	if *soak {
		close(samplerEnd)
		samplerWG.Wait()
	}

	// Drain phase: queues empty, nothing in flight, every node converged
	// on the same completed count.
	deadline := time.Now().Add(*drain)
	for {
		quiet := true
		completed := cl.Node(1).Completed()
		for i := 1; i <= *n; i++ {
			nd := cl.Node(i)
			if nd.QueueLen() != 0 || nd.InFlight() != 0 || nd.Completed() != completed {
				quiet = false
				break
			}
		}
		if quiet {
			break
		}
		if time.Now().After(deadline) {
			for i := 1; i <= *n; i++ {
				nd := cl.Node(i)
				fmt.Fprintf(os.Stderr, "  node %d: queue=%d inflight=%d completed=%d\n",
					i, nd.QueueLen(), nd.InFlight(), nd.Completed())
			}
			return fmt.Errorf("drain: service did not quiesce within %v", *drain)
		}
		time.Sleep(10 * time.Millisecond)
	}
	drained := time.Since(start) - submitted
	total := cl.Node(1).Completed()

	// Per-session retirement: live scopes and protocol state must return
	// to zero on every node.
	rep := report{
		N: *n, T: cl.T(), Transport: *transportK, Wire: *wire,
		Window: *window, ValueBytes: *valBytes,
		Pool: *pool, PoolRounds: *poolRounds,
		DurationSecs: submitted.Seconds(), DrainSecs: drained.Seconds(),
		Sessions: total, DrainCompleted: total - liveTotal,
		BaselineOK: true, SubsetsOK: true,
	}
	baselineDeadline := time.Now().Add(*drain)
	for {
		ok := true
		for i := 1; i <= *n; i++ {
			c, isSvc := cl.Node(i).Counts()
			if !isSvc {
				return fmt.Errorf("node %d: not a service node", i)
			}
			if c.Live != 0 || c.State.Total() != 0 {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(baselineDeadline) {
			rep.BaselineOK = false
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		for _, tr := range cl.Tracers() {
			if err := tr.WriteJSONL(f); err != nil {
				f.Close()
				return err
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	// Snapshot the lane-ring counters while the cluster is still up:
	// drops are legal only during shutdown, so anything visible now is a
	// live-run loss and fails the contract below.
	for i := 1; i <= *n; i++ {
		st := cl.Node(i).Stats()
		rep.Lanes = st.Lanes // resolved count (the flag may have asked for auto)
		rep.RingWaits += st.RingWaits
		rep.RingDrops += st.RingDrops
		if st.RingHighWater > rep.RingHighWater {
			rep.RingHighWater = st.RingHighWater
		}
	}

	// Let the collectors finish, then verify the cross-node contract.
	cl.Close()
	wg.Wait()

	for sid, ref := range decs[1] {
		if len(ref.Members) < *n-cl.T() {
			fmt.Fprintf(os.Stderr, "  session %d: subset %v smaller than n-t=%d\n", sid, ref.Members, *n-cl.T())
			rep.SubsetsOK = false
		}
		for i := 2; i <= *n; i++ {
			d, ok := decs[i][sid]
			if !ok {
				fmt.Fprintf(os.Stderr, "  session %d: missing on node %d\n", sid, i)
				rep.SubsetsOK = false
				continue
			}
			if fmt.Sprint(d.Members) != fmt.Sprint(ref.Members) {
				fmt.Fprintf(os.Stderr, "  session %d: node %d members %v != node 1 members %v\n", sid, i, d.Members, ref.Members)
				rep.SubsetsOK = false
				continue
			}
			for k := range ref.Values {
				if !bytes.Equal(d.Values[k], ref.Values[k]) {
					fmt.Fprintf(os.Stderr, "  session %d member %d: value mismatch node %d vs node 1\n", sid, ref.Members[k], i)
					rep.SubsetsOK = false
				}
			}
		}
	}
	for i := 2; i <= *n; i++ {
		if len(decs[i]) != len(decs[1]) {
			fmt.Fprintf(os.Stderr, "  node %d decided %d sessions, node 1 decided %d\n", i, len(decs[i]), len(decs[1]))
			rep.SubsetsOK = false
		}
	}
	if total != len(decs[1]) {
		fmt.Fprintf(os.Stderr, "  completed=%d but node 1 streamed %d decisions\n", total, len(decs[1]))
		rep.SubsetsOK = false
	}

	rep.DecisionsSec = float64(liveTotal) / submitted.Seconds()
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		idx := int(p * float64(len(lats)-1))
		return float64(lats[idx]) / float64(time.Millisecond)
	}
	rep.P50Ms, rep.P95Ms, rep.P99Ms = pct(0.50), pct(0.95), pct(0.99)

	// Coin-rounds-per-session: node-1 mean/max plus the registry's
	// cross-node fixed-bucket histogram (fed by every node's push path).
	var coinSum uint64
	for _, d := range decs[1] {
		coinSum += d.CoinRounds
		if d.CoinRounds > rep.CoinMax {
			rep.CoinMax = d.CoinRounds
		}
	}
	if len(decs[1]) > 0 {
		rep.CoinMean = float64(coinSum) / float64(len(decs[1]))
	}
	snap := reg.Snapshot()
	if h, ok := snap.Histograms["service.session_coin_rounds"]; ok && h.Count > 0 {
		rep.CoinP50, rep.CoinP95 = h.Quantile(0.50), h.Quantile(0.95)
		rep.CoinHist = &h
	}

	for i := 1; i <= *n; i++ {
		nd := cl.Node(i)
		peak := nd.MaxInFlight()
		rep.MaxInFlight = append(rep.MaxInFlight, peak)
		if peak > rep.PeakSessions {
			rep.PeakSessions = peak
		}
		rep.DroppedDecisions += nd.DroppedDecisions()
		st := nd.Stats()
		rep.SentFrames += st.SentFrames
		rep.SentBytes += st.SentFrameBytes
		rep.RecvFrames += st.RecvFrames
		rep.LatePayloadsDropped += st.DroppedLatePayloads
		rep.LateFramesDropped += st.DroppedLateFrames
		rep.OversizedDropped += st.OversizedDropped
		if ps, ok := nd.PoolStats(); ok {
			rep.PoolRefills += ps.Refills
			rep.PoolHandouts += ps.Handouts
			rep.PoolDoubleHandouts += ps.DoubleHandouts
			rep.PoolLeakedSupplies += ps.Live
		}
		if errs := nd.Errs(); len(errs) > 0 {
			return fmt.Errorf("node %d: runtime errors (%d), first: %v", i, len(errs), errs[0])
		}
		if *verbose {
			fmt.Printf("node %d: completed=%d peak=%d sentFrames=%d recvFrames=%d latePayloads=%d\n",
				i, nd.Completed(), peak, st.SentFrames, st.RecvFrames, st.DroppedLatePayloads)
		}
	}

	// Soak verdict.
	var soakErr error
	if *soak {
		sr := evalSoak(samples, *flatness, *stateCap)
		for _, d := range decs[1] {
			if *maxLat > 0 && d.Elapsed > *maxLat {
				sr.LatencyViolations++
				fmt.Fprintf(os.Stderr, "  soak: session %d latency %v exceeds budget %v\n", d.Session, d.Elapsed.Round(time.Millisecond), *maxLat)
			}
			if *maxCoin > 0 && d.CoinRounds > *maxCoin {
				sr.CoinViolations++
				fmt.Fprintf(os.Stderr, "  soak: session %d coin rounds %d exceed budget %d\n", d.Session, d.CoinRounds, *maxCoin)
			}
		}
		rep.Soak = &sr
		switch {
		case !sr.FlatnessOK:
			soakErr = fmt.Errorf("soak: throughput sagged: second-half %.2f/s < %.2f × first-half %.2f/s",
				sr.RateSecondHalf, *flatness, sr.RateFirstHalf)
		case !sr.BoundedOK:
			soakErr = fmt.Errorf("soak: protocol state not bounded (max %d live instances)", sr.StateMax)
		case sr.LatencyViolations > 0:
			soakErr = fmt.Errorf("soak: %d sessions over the %v latency budget", sr.LatencyViolations, *maxLat)
		case sr.CoinViolations > 0:
			soakErr = fmt.Errorf("soak: %d sessions over the %d coin-round budget", sr.CoinViolations, *maxCoin)
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		fmt.Printf("loadgen: n=%d t=%d transport=%s wire=%s window=%d lanes=%d bytes=%d pool=%v\n",
			rep.N, rep.T, rep.Transport, rep.Wire, rep.Window, rep.Lanes, rep.ValueBytes, rep.Pool)
		fmt.Printf("  %d sessions in %.1fs (+%.1fs drain) = %.1f decisions/sec (%d completed in drain, excluded)\n",
			rep.Sessions, rep.DurationSecs, rep.DrainSecs, rep.DecisionsSec, rep.DrainCompleted)
		fmt.Printf("  latency p50=%.0fms p95=%.0fms p99=%.0fms; peak concurrent sessions=%d\n",
			rep.P50Ms, rep.P95Ms, rep.P99Ms, rep.PeakSessions)
		fmt.Printf("  coin rounds/session mean=%.1f p50=%.0f p95=%.0f max=%d\n",
			rep.CoinMean, rep.CoinP50, rep.CoinP95, rep.CoinMax)
		fmt.Printf("  frames sent=%d (%.1f MiB) recv=%d; late payloads dropped=%d\n",
			rep.SentFrames, float64(rep.SentBytes)/(1<<20), rep.RecvFrames, rep.LatePayloadsDropped)
		if rep.Lanes > 1 {
			fmt.Printf("  lanes=%d ringWaits=%d ringDrops=%d ringHighWater=%d\n",
				rep.Lanes, rep.RingWaits, rep.RingDrops, rep.RingHighWater)
		}
		if rep.Pool {
			fmt.Printf("  pool: refills=%d handouts=%d doubleHandouts=%d leakedSupplies=%d\n",
				rep.PoolRefills, rep.PoolHandouts, rep.PoolDoubleHandouts, rep.PoolLeakedSupplies)
		}
		if rep.Soak != nil {
			fmt.Printf("  soak: samples=%d rate %.2f/s → %.2f/s stateMax=%d latViol=%d coinViol=%d\n",
				rep.Soak.Samples, rep.Soak.RateFirstHalf, rep.Soak.RateSecondHalf,
				rep.Soak.StateMax, rep.Soak.LatencyViolations, rep.Soak.CoinViolations)
		}
	}

	if !rep.SubsetsOK {
		return fmt.Errorf("cross-node subset verification failed")
	}
	if !rep.BaselineOK {
		return fmt.Errorf("per-session state did not retire to baseline")
	}
	if rep.PoolDoubleHandouts > 0 {
		return fmt.Errorf("coin pool handed out %d sharings twice", rep.PoolDoubleHandouts)
	}
	if rep.RingDrops > 0 {
		return fmt.Errorf("lane rings dropped %d payloads on a live run", rep.RingDrops)
	}
	if rep.PoolLeakedSupplies > 0 {
		return fmt.Errorf("coin pool leaked %d live supplies after drain", rep.PoolLeakedSupplies)
	}
	if total == 0 {
		return fmt.Errorf("no sessions completed")
	}
	if *minRate > 0 && rep.DecisionsSec < *minRate {
		return fmt.Errorf("decisions/sec %.2f below required %.2f", rep.DecisionsSec, *minRate)
	}
	if *minPeak > 0 && rep.PeakSessions < *minPeak {
		return fmt.Errorf("peak concurrent sessions %d below required %d", rep.PeakSessions, *minPeak)
	}
	return soakErr
}

// evalSoak turns the sampler's observations into the watchdog verdict.
// Throughput flatness: per-interval decision deltas, warmup dropped,
// second-half mean must stay above flatness × first-half mean. State
// boundedness: hard cap when stateCap > 0, else the median of the last
// third must stay under 2× the median of the first third plus slack
// (live state legitimately fluctuates with the session window). Short
// runs (under 6 samples) pass vacuously — the watchdog needs a curve.
func evalSoak(samples []soakSample, flatness float64, stateCap int) soakReport {
	sr := soakReport{Samples: len(samples), FlatnessOK: true, BoundedOK: true}
	for _, s := range samples {
		if s.state > sr.StateMax {
			sr.StateMax = s.state
		}
	}
	if stateCap > 0 && sr.StateMax > stateCap {
		sr.BoundedOK = false
	}
	if len(samples) < 6 {
		return sr
	}

	// Flatness over per-interval decision deltas (skip the first delta:
	// session startup makes it unrepresentative).
	deltas := make([]float64, 0, len(samples)-1)
	for i := 1; i < len(samples); i++ {
		dt := samples[i].at.Sub(samples[i-1].at).Seconds()
		if dt <= 0 {
			continue
		}
		deltas = append(deltas, float64(samples[i].decisions-samples[i-1].decisions)/dt)
	}
	if len(deltas) >= 4 {
		deltas = deltas[1:]
		half := len(deltas) / 2
		mean := func(xs []float64) float64 {
			var s float64
			for _, x := range xs {
				s += x
			}
			return s / float64(len(xs))
		}
		sr.RateFirstHalf = mean(deltas[:half])
		sr.RateSecondHalf = mean(deltas[half:])
		if sr.RateFirstHalf > 0 && sr.RateSecondHalf < flatness*sr.RateFirstHalf {
			sr.FlatnessOK = false
		}
	}

	// Relative boundedness when no hard cap was given.
	if stateCap <= 0 {
		third := len(samples) / 3
		if third >= 2 {
			first := medianState(samples[:third])
			last := medianState(samples[len(samples)-third:])
			if last > 2*first+64 {
				sr.BoundedOK = false
			}
		}
	}
	return sr
}

func medianState(samples []soakSample) int {
	states := make([]int, len(samples))
	for i, s := range samples {
		states[i] = s.state
	}
	sort.Ints(states)
	return states[len(states)/2]
}

// matchSuffix reports whether name ends with suffix (tiny helper so the
// reporter can sum per-node gauges without regexp).
func matchSuffix(name, suffix string) bool {
	return len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix
}
