package sim

import "testing"

func TestPartitionSchedulerHoldsCutUntilHeal(t *testing.T) {
	ps := NewPartitionScheduler(NewFIFOScheduler(), []ProcID{3, 4}, 100)
	cross := Message{From: 1, To: 3, Seq: 1}
	inside := Message{From: 3, To: 4, Seq: 2}
	outside := Message{From: 1, To: 2, Seq: 3}
	ps.Enqueue(cross, 0)
	ps.Enqueue(inside, 0)
	ps.Enqueue(outside, 0)

	if ps.HeldCount() != 1 {
		t.Fatalf("held %d messages, want 1 (only the crossing one)", ps.HeldCount())
	}
	if ps.Len() != 3 {
		t.Fatalf("Len %d, want 3", ps.Len())
	}

	// Before healAt, both same-side messages flow but the crossing one
	// stays parked.
	var got []uint64
	for {
		m, _, ok := ps.Next(10)
		if !ok {
			break
		}
		got = append(got, m.Seq)
		if m.Seq == cross.Seq {
			t.Fatal("crossing message delivered before heal")
		}
		if len(got) == 2 {
			break
		}
	}
	if len(got) != 2 {
		t.Fatalf("delivered %d same-side messages, want 2", len(got))
	}

	// At healAt the cut opens.
	m, _, ok := ps.Next(100)
	if !ok || m.Seq != cross.Seq {
		t.Fatalf("after heal got (%v, %v), want the crossing message", m, ok)
	}
	if !ps.Healed() {
		t.Error("scheduler did not report healed")
	}
}

func TestPartitionSchedulerHealsEarlyWhenStarved(t *testing.T) {
	ps := NewPartitionScheduler(NewFIFOScheduler(), []ProcID{2}, 1_000_000)
	ps.Enqueue(Message{From: 1, To: 2, Seq: 1}, 0)

	// The only pending message crosses the cut; eventual delivery forces
	// an early heal instead of a stalled (non-quiescent) network.
	m, _, ok := ps.Next(5)
	if !ok || m.Seq != 1 {
		t.Fatalf("starved scheduler returned (%v, %v), want forced heal delivery", m, ok)
	}
	if !ps.Healed() {
		t.Error("forced heal not recorded")
	}
	if ps.Len() != 0 {
		t.Errorf("Len %d after drain, want 0", ps.Len())
	}
}

func TestPartitionSchedulerPreservesHeldOrder(t *testing.T) {
	ps := NewPartitionScheduler(NewFIFOScheduler(), []ProcID{2}, 50)
	for seq := uint64(1); seq <= 4; seq++ {
		ps.Enqueue(Message{From: 1, To: 2, Seq: seq}, 0)
	}
	for want := uint64(1); want <= 4; want++ {
		m, _, ok := ps.Next(60)
		if !ok || m.Seq != want {
			t.Fatalf("got (%v, %v), want seq %d", m, ok, want)
		}
	}
}
