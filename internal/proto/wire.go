package proto

import (
	"encoding/binary"
	"errors"
	"fmt"

	"svssba/internal/field"
	"svssba/internal/sim"
)

// ErrShortBuffer is returned when decoding runs past the end of input.
var ErrShortBuffer = errors.New("proto: short buffer")

// ErrTrailingBytes is returned when decoding leaves unread input.
var ErrTrailingBytes = errors.New("proto: trailing bytes")

// Writer builds a length-prefixed little-endian binary encoding.
// The zero value is ready to use.
type Writer struct {
	buf []byte
}

// Bytes returns the accumulated encoding.
func (w *Writer) Bytes() []byte { return w.buf }

// Reset truncates the writer, keeping the allocated buffer so one
// Writer can encode a stream of messages with no per-message
// allocation (the encode hot path of the node runtime).
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Len returns the current encoded length.
func (w *Writer) Len() int { return len(w.buf) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U16 appends a uint16.
func (w *Writer) U16(v uint16) {
	w.buf = binary.LittleEndian.AppendUint16(w.buf, v)
}

// U32 appends a uint32.
func (w *Writer) U32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// U64 appends a uint64.
func (w *Writer) U64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// Proc appends a process id as uint16.
func (w *Writer) Proc(p sim.ProcID) { w.U16(uint16(p)) }

// Elem appends a field element (8 bytes).
func (w *Writer) Elem(e field.Element) { w.U64(e.Uint64()) }

// Elems appends a length-prefixed slice of field elements.
func (w *Writer) Elems(es []field.Element) {
	w.U16(uint16(len(es)))
	for _, e := range es {
		w.Elem(e)
	}
}

// Procs appends a length-prefixed slice of process ids.
func (w *Writer) Procs(ps []sim.ProcID) {
	w.U16(uint16(len(ps)))
	for _, p := range ps {
		w.Proc(p)
	}
}

// VarBytes appends a length-prefixed byte slice.
func (w *Writer) VarBytes(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// ElemsSize returns the encoded size of a field-element slice.
func ElemsSize(n int) int { return 2 + 8*n }

// ProcsSize returns the encoded size of a proc-id slice.
func ProcsSize(n int) int { return 2 + 2*n }

// VarBytesSize returns the encoded size of a byte slice.
func VarBytesSize(n int) int { return 4 + n }

// Reader decodes a Writer encoding with a sticky error.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps b for decoding.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the sticky decode error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Close verifies the input was fully consumed.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d bytes", ErrTrailingBytes, len(r.buf)-r.off)
	}
	return nil
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = ErrShortBuffer
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Proc reads a process id.
func (r *Reader) Proc() sim.ProcID { return sim.ProcID(r.U16()) }

// Elem reads a field element.
func (r *Reader) Elem() field.Element { return field.New(r.U64()) }

// Elems reads a length-prefixed field-element slice.
func (r *Reader) Elems() []field.Element {
	n := int(r.U16())
	if r.err != nil || n > r.Remaining()/8 {
		if r.err == nil {
			r.err = ErrShortBuffer
		}
		return nil
	}
	es := make([]field.Element, n)
	for i := range es {
		es[i] = r.Elem()
	}
	return es
}

// Procs reads a length-prefixed proc-id slice.
func (r *Reader) Procs() []sim.ProcID {
	n := int(r.U16())
	if r.err != nil || n > r.Remaining()/2 {
		if r.err == nil {
			r.err = ErrShortBuffer
		}
		return nil
	}
	ps := make([]sim.ProcID, n)
	for i := range ps {
		ps[i] = r.Proc()
	}
	return ps
}

// VarBytes reads a length-prefixed byte slice. The returned slice
// ALIASES the reader's buffer — zero-copy on purpose: the decode hot
// path (echo storms of rb/wrb values, bundle items) would otherwise
// copy every payload once per delivery. The aliasing contract:
//
//   - Inbound frame buffers are immutable once handed to a receiver
//     (see transport.Frame), so an aliased value is stable for as long
//     as any reference to it lives — the GC keeps the frame alive.
//   - A consumer that STORES the value past its own delivery must
//     either copy it (append([]byte(nil), v...), what the rb/wrb accept
//     paths and intern.ValCounts already do) or take it through
//     VarBytesCopy at decode time.
func (r *Reader) VarBytes() []byte {
	n := int(r.U32())
	if r.err != nil || n > r.Remaining() {
		if r.err == nil {
			r.err = ErrShortBuffer
		}
		return nil
	}
	return r.take(n)
}

// VarBytesCopy reads a length-prefixed byte slice into a fresh buffer —
// the explicit copy-out for consumers that retain the value beyond the
// life of the reader's buffer. Ownership of the returned slice is the
// caller's alone; mutating the source buffer after decode cannot affect
// it.
func (r *Reader) VarBytesCopy() []byte {
	b := r.VarBytes()
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// Reset rewinds the reader onto a new buffer, clearing the sticky
// error — the recycling hook behind readerPool, mirroring
// Writer.Reset.
func (r *Reader) Reset(b []byte) {
	r.buf = b
	r.off = 0
	r.err = nil
}
