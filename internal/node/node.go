// Package node is the deployable runtime for the paper's protocol
// stack: one Node hosts the event-driven engines of internal/core
// behind a transport.Transport, encoding every message through the
// internal/proto wire codec. The same Node runs unchanged over the
// in-process channel mesh (RunLive, -race tests) and over real TCP
// sockets (cmd/node, cmd/cluster) — the protocol cores never learn
// which network they are on.
//
// Lifecycle: New → Start → (Stop | Crash) → Restart. Crash models a
// fail-stop: the transport is torn down and in-flight traffic is lost.
// Restart boots a fresh protocol stack (state machines restart from
// their initial state and re-propose the configured input) on a fresh
// transport; traffic counters accumulate across incarnations.
package node

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"svssba/internal/core"
	"svssba/internal/obs"
	"svssba/internal/proto"
	"svssba/internal/sim"
	"svssba/internal/transport"
)

// Config describes one node of a cluster.
type Config struct {
	// ID is this node's process id (1..N).
	ID sim.ProcID
	// N is the cluster size; T the resilience bound (defaults to
	// floor((N-1)/3)).
	N, T int
	// Seed drives this node's local randomness (coin polynomial
	// coefficients etc.). Give every node a distinct seed.
	Seed int64
	// Input is the node's binary proposal.
	Input int
	// Codec encodes payloads for the wire; nil installs the full
	// protocol codec (core.NewCodec). Codecs are read-only after
	// registration and may be shared across nodes.
	Codec sim.Codec
	// Batching turns on the coalescing outbox: all payloads the stack
	// produces for one destination within one delivery burst cross the
	// transport as a single multi-payload batch frame (when the codec
	// provides the batch format, as core.NewCodec does). Decisions and
	// logical payload counts are unaffected; frame counts drop.
	Batching bool
	// Wire selects the wire variant ("" or "v1" for the baseline shape,
	// "v2" for burst coalescing: broadcast bundling + per-destination
	// packs inside the protocol stack). All nodes of a cluster must
	// agree — v1 peers drop v2 bundle and pack traffic.
	Wire string
	// OnDecide observes the local decision (called once per incarnation,
	// on the node's delivery goroutine).
	OnDecide func(value int)
	// OnShun observes DMM shun events (same goroutine rules).
	OnShun func(detected sim.ProcID)
	// Service switches the node into multi-session service mode: instead
	// of one stack per incarnation, the node hosts one stack per scope,
	// opened and retired through the driver (see ServiceDriver). Input,
	// Wire and OnDecide are ignored in service mode — the driver owns
	// stack construction and decision routing. Service nodes do not
	// support Restart.
	Service ServiceDriver
	// Lanes shards service-mode delivery across per-scope execution
	// lanes (see lanes.go). 0 or 1 keeps the historical single delivery
	// goroutine — byte-identical schedules; k > 1 runs k lane workers
	// plus an ingress router and requires a lane-safe ServiceDriver.
	// Only service mode may set Lanes > 1.
	Lanes int
	// LaneKey maps a scope to its lane-affinity key: scopes with equal
	// keys always share a lane (and may open each other synchronously
	// via Session.OpenPeer). Nil uses the scope itself. The acs driver
	// keys by session id so a session's proposal plane and ABA slots
	// stay mutually single-threaded.
	LaneKey func(scope uint64) uint64
	// Metrics attaches the node to an observability registry: the
	// traffic, drop and protocol-state counters the node already keeps
	// are exposed as pull-based gauges under the "node<ID>." prefix
	// (read at snapshot time — the delivery hot path is unchanged), plus
	// push counters for protocol events (RB accepts, coin flips,
	// decisions). Nil disables.
	Metrics *obs.Registry
	// Trace attaches a protocol round tracer: RB accepts, MW-SVSS
	// completions, coin flips, ABA round advances, decisions and scope
	// open/retire transitions are recorded as ring-buffered events.
	// Instrumentation is observation-only — decisions and message
	// schedules are identical with or without it. Nil disables; then the
	// stack pays one nil pointer check per hook site.
	Trace *obs.Tracer
}

// LayerStats aggregates traffic for one protocol layer (the prefix of
// the payload kind, e.g. "rb", "mw", "svss", "aba"). Msgs counts logical
// payloads; Frames counts same-kind wire groups — the units that carry a
// kind header on the transport. Without batching every payload is its
// own group, so Frames == Msgs; with batching a group aggregates all
// consecutive same-kind payloads of one frame (e.g. the echoes of many
// concurrent broadcast tags behind one header).
type LayerStats struct {
	SentMsgs, SentFrames, SentBytes int64
	RecvMsgs, RecvFrames, RecvBytes int64
}

// Stats is a snapshot of a node's traffic counters, split into the
// logical and the physical view:
//
//   - Sent/Recv and the per-kind maps count logical payloads; their byte
//     counters use each payload's standalone encoded size (kind header
//     included), so they are comparable across batched and unbatched
//     runs.
//   - SentFrames/RecvFrames and SentFrameBytes/RecvFrameBytes count the
//     physical frames that actually crossed the transport. Unbatched,
//     frames equal payloads and the byte views coincide; batched, the
//     frame counters show the reduction.
//   - SentGroupsByKind/RecvGroupsByKind count same-kind wire groups (the
//     per-layer physical unit — see LayerStats).
type Stats struct {
	Sent, SentBytes int64
	Recv, RecvBytes int64

	SentFrames, SentFrameBytes int64
	RecvFrames, RecvFrameBytes int64

	DecodeErrs int64

	// OversizedDropped counts outbound payloads dropped because their
	// standalone frame would exceed the frame cap (a poison frame for the
	// TCP transport's reconnecting dialer). DroppedLateFrames counts
	// inbound frames dropped whole because the node already retired;
	// DroppedLatePayloads counts scoped payloads dropped because their
	// scope retired (service mode). Neither late class is counted as
	// received.
	OversizedDropped    int64
	DroppedLateFrames   int64
	DroppedLatePayloads int64

	SentByKind, SentBytesByKind map[string]int64
	RecvByKind, RecvBytesByKind map[string]int64
	SentGroupsByKind            map[string]int64
	RecvGroupsByKind            map[string]int64

	// Lane runtime counters (service mode). Lanes is the configured lane
	// count; RingWaits counts router wait episodes on a full lane ring
	// (backpressure, not loss); RingDrops counts ring items discarded at
	// shutdown — a live run must report zero; RingHighWater is the
	// maximum ring occupancy any lane observed.
	Lanes         int
	RingWaits     int64
	RingDrops     int64
	RingHighWater int
}

// LayerOf maps a payload kind to its protocol layer: the segment before
// the first '/' ("aba/bval" → "aba").
func LayerOf(kind string) string {
	if i := strings.IndexByte(kind, '/'); i >= 0 {
		return kind[:i]
	}
	return kind
}

// ByLayer folds the per-kind counters into per-layer totals.
func (s *Stats) ByLayer() map[string]LayerStats {
	out := make(map[string]LayerStats)
	for kind, n := range s.SentByKind {
		l := out[LayerOf(kind)]
		l.SentMsgs += n
		l.SentFrames += s.SentGroupsByKind[kind]
		l.SentBytes += s.SentBytesByKind[kind]
		out[LayerOf(kind)] = l
	}
	for kind, n := range s.RecvByKind {
		l := out[LayerOf(kind)]
		l.RecvMsgs += n
		l.RecvFrames += s.RecvGroupsByKind[kind]
		l.RecvBytes += s.RecvBytesByKind[kind]
		out[LayerOf(kind)] = l
	}
	return out
}

// Layers returns the layer names of s in sorted order.
func (s *Stats) Layers() []string {
	seen := make(map[string]bool)
	for kind := range s.SentByKind {
		seen[LayerOf(kind)] = true
	}
	for kind := range s.RecvByKind {
		seen[LayerOf(kind)] = true
	}
	names := make([]string, 0, len(seen))
	for l := range seen {
		names = append(names, l)
	}
	sort.Strings(names)
	return names
}

// Node lifecycle states.
const (
	stateNew = iota
	stateRunning
	stateStopped
)

// Node hosts one process's protocol stack on a transport.
type Node struct {
	cfg   Config
	codec sim.Codec

	mu         sync.Mutex
	state      int
	crashed    bool
	tr         transport.Transport
	decided    bool
	value      int
	retired    bool
	coinRounds uint64
	counts     core.StateCounts
	haveCounts bool
	errs       []error
	stop       chan struct{}
	done       chan struct{}
	decideC    chan struct{}

	// Service-mode state (delivery goroutine only, except injectC which
	// Inject sends on under the running-state check).
	runC    *runCtx
	injectC chan func()
	// lanes holds the service-mode execution lanes of the current
	// incarnation (one entry when Lanes <= 1, driven by the legacy
	// delivery loop; k entries plus a router goroutine otherwise). Nil
	// in single-stack mode. Rebuilt under mu by startLocked.
	lanes []*lane
	// retiredGate short-circuits inbound frames once the (single-mode)
	// stack retired: set on the delivery goroutine at retirement, read
	// there on every frame, so late echo storms are dropped before any
	// decoding.
	retiredGate bool

	// Traffic counters, sharded per lane (shard i counts lane i's
	// traffic; multi-lane, routerShard counts ingress frames). Shards
	// live here — not on the per-incarnation lanes — so counters
	// accumulate across restarts. Stats() merges them.
	laneCount   int
	shards      []*statShard
	routerShard *statShard

	// Observability state. The scope gauges are atomics (not smu) so
	// metric snapshots never contend with the delivery goroutine's
	// session bookkeeping; the event counters are nil when Config.Metrics
	// is unset.
	scopesLive    atomic.Int64
	scopesRetired atomic.Int64
	mRBAccepts    *obs.Counter
	mCoinFlips    *obs.Counter
	mDecisions    *obs.Counter

	start time.Time
}

// New validates cfg and creates a node bound to tr (not yet started).
func New(cfg Config, tr transport.Transport) (*Node, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("node: need at least 2 processes, have %d", cfg.N)
	}
	if cfg.ID < 1 || int(cfg.ID) > cfg.N {
		return nil, fmt.Errorf("node: id %d out of range 1..%d", cfg.ID, cfg.N)
	}
	if cfg.T == 0 {
		cfg.T = (cfg.N - 1) / 3
	}
	if cfg.Input != 0 && cfg.Input != 1 {
		return nil, fmt.Errorf("node: input %d is not binary", cfg.Input)
	}
	if cfg.Codec == nil {
		cfg.Codec = core.NewCodec()
	}
	switch cfg.Wire {
	case "":
		cfg.Wire = "v1"
	case "v1", "v2":
	default:
		return nil, fmt.Errorf("node: unknown wire variant %q", cfg.Wire)
	}
	if tr == nil {
		return nil, fmt.Errorf("node: nil transport")
	}
	if tr.Self() != cfg.ID {
		return nil, fmt.Errorf("node: transport is endpoint %d, node is %d", tr.Self(), cfg.ID)
	}
	if cfg.Lanes < 0 {
		return nil, fmt.Errorf("node: negative lane count %d", cfg.Lanes)
	}
	if cfg.Lanes > 1 && cfg.Service == nil {
		return nil, fmt.Errorf("node: %d lanes require service mode (a single stack is inherently one lane)", cfg.Lanes)
	}
	if cfg.Lanes == 0 {
		cfg.Lanes = 1
	}
	n := &Node{
		cfg:       cfg,
		codec:     cfg.Codec,
		tr:        tr,
		laneCount: cfg.Lanes,
		decideC:   make(chan struct{}),
	}
	n.shards = make([]*statShard, n.laneCount)
	for i := range n.shards {
		n.shards[i] = newStatShard()
	}
	if n.laneCount > 1 {
		// Ingress frames are counted where they are decoded — on the
		// router — in their own shard so lanes never contend with it.
		n.routerShard = newStatShard()
		n.shards = append(n.shards, n.routerShard)
	}
	if cfg.Metrics != nil {
		n.registerMetrics(cfg.Metrics)
	}
	return n, nil
}

// registerMetrics exposes the node's counters on reg under the
// "node<ID>." prefix. Everything the node already tracks becomes a
// pull-based gauge — read under the same locks Stats() takes, but only
// at snapshot time — so enabling metrics adds nothing to the delivery
// path beyond the event counters the trace hooks bump.
func (n *Node) registerMetrics(reg *obs.Registry) {
	p := fmt.Sprintf("node%d.", n.cfg.ID)
	sumGauge := func(sel func(*statShard) int64) func() int64 {
		return func() int64 {
			var t int64
			for _, sh := range n.shards {
				sh.mu.Lock()
				t += sel(sh)
				sh.mu.Unlock()
			}
			return t
		}
	}
	reg.GaugeFunc(p+"sent_payloads", sumGauge(func(sh *statShard) int64 { return sh.sent }))
	reg.GaugeFunc(p+"recv_payloads", sumGauge(func(sh *statShard) int64 { return sh.recv }))
	reg.GaugeFunc(p+"sent_frames", sumGauge(func(sh *statShard) int64 { return sh.sentF }))
	reg.GaugeFunc(p+"recv_frames", sumGauge(func(sh *statShard) int64 { return sh.recvF }))
	reg.GaugeFunc(p+"sent_frame_bytes", sumGauge(func(sh *statShard) int64 { return sh.sentFB }))
	reg.GaugeFunc(p+"recv_frame_bytes", sumGauge(func(sh *statShard) int64 { return sh.recvFB }))
	reg.GaugeFunc(p+"decode_errs", sumGauge(func(sh *statShard) int64 { return sh.decodeErrs }))
	reg.GaugeFunc(p+"oversized_dropped", sumGauge(func(sh *statShard) int64 { return sh.oversizedDropped }))
	reg.GaugeFunc(p+"dropped_late_frames", sumGauge(func(sh *statShard) int64 { return sh.lateFrames }))
	reg.GaugeFunc(p+"dropped_late_payloads", sumGauge(func(sh *statShard) int64 { return sh.latePayloads }))
	reg.GaugeFunc(p+"coin_rounds", func() int64 {
		n.mu.Lock()
		defer n.mu.Unlock()
		return int64(n.coinRounds)
	})
	reg.GaugeFunc(p+"state_total", func() int64 {
		n.mu.Lock()
		defer n.mu.Unlock()
		if !n.haveCounts {
			return 0
		}
		return int64(n.counts.Total())
	})
	if n.cfg.Service != nil {
		reg.GaugeFunc(p+"scopes_live", n.scopesLive.Load)
		reg.GaugeFunc(p+"scopes_retired", n.scopesRetired.Load)
		reg.GaugeFunc(p+"lanes", func() int64 { return int64(n.laneCount) })
		laneGauge := func(sel func(waits, drops int64, hw int) int64) func() int64 {
			return func() int64 {
				n.mu.Lock()
				lanes := n.lanes
				n.mu.Unlock()
				var t int64
				for _, ln := range lanes {
					w, d, hw := ln.ringStats()
					t += sel(w, d, hw)
				}
				return t
			}
		}
		reg.GaugeFunc(p+"lane_ring_waits", laneGauge(func(w, _ int64, _ int) int64 { return w }))
		reg.GaugeFunc(p+"lane_ring_drops", laneGauge(func(_, d int64, _ int) int64 { return d }))
	}
	n.mRBAccepts = reg.Counter(p + "rb_accepts")
	n.mCoinFlips = reg.Counter(p + "coin_flips")
	n.mDecisions = reg.Counter(p + "decisions")
}

// obsHooks builds the stack trace hooks for one scope, feeding the
// node's tracer and event counters. Returns nil when observability is
// fully off so the stack keeps its zero-cost nil hooks.
func (n *Node) obsHooks(scope uint64) *core.TraceHooks {
	tr := n.cfg.Trace // nil-receiver Record is a no-op
	if tr == nil && n.cfg.Metrics == nil {
		return nil
	}
	return &core.TraceHooks{
		RBAccept: func(origin sim.ProcID, tag proto.Tag, size int) {
			if n.mRBAccepts != nil {
				n.mRBAccepts.Inc()
			}
			tr.Record(obs.KindRBAccept, scope, int(origin), uint64(tag.Proto), uint64(tag.Step), uint64(size))
		},
		MWShare: func(id proto.MWID) {
			tr.Record(obs.KindMWShare, scope, int(id.Key.Dealer), uint64(id.Key.Moderator), uint64(id.Key.Slot), uint64(id.Session.Kind))
		},
		MWRecon: func(id proto.MWID) {
			tr.Record(obs.KindMWRecon, scope, int(id.Key.Dealer), uint64(id.Key.Moderator), uint64(id.Key.Slot), uint64(id.Session.Kind))
		},
		Coin: func(round uint64, bit int) {
			if n.mCoinFlips != nil {
				n.mCoinFlips.Inc()
			}
			tr.Record(obs.KindCoin, scope, 0, round, uint64(bit), 0)
		},
		ABARound: func(round uint64) {
			tr.Record(obs.KindABARound, scope, 0, round, 0, 0)
		},
		Decide: func(v int) {
			if n.mDecisions != nil {
				n.mDecisions.Inc()
			}
			tr.Record(obs.KindDecide, scope, 0, uint64(v), 0, 0)
		},
	}
}

// ID returns the node's process id.
func (n *Node) ID() sim.ProcID { return n.cfg.ID }

// Start boots the protocol stack: starts the transport, runs the
// stack's Init (which proposes the input), and begins delivering.
func (n *Node) Start() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.state == stateRunning {
		return fmt.Errorf("node %d: already running", n.cfg.ID)
	}
	if n.state == stateStopped {
		return fmt.Errorf("node %d: stopped (use Restart)", n.cfg.ID)
	}
	return n.startLocked()
}

func (n *Node) startLocked() error {
	if err := n.tr.Start(); err != nil {
		return fmt.Errorf("node %d: %w", n.cfg.ID, err)
	}
	var st *core.Stack
	if n.cfg.Service == nil {
		st = core.NewStack(n.cfg.ID, func(detected sim.ProcID, _ proto.MWID) {
			if n.cfg.OnShun != nil {
				n.cfg.OnShun(detected)
			}
		})
		st.OnDecide(func(_ sim.Context, v int) { n.recordDecision(v) })
		st.OnCoin(func(_ sim.Context, _ uint64, _ int) {
			n.mu.Lock()
			n.coinRounds++
			n.mu.Unlock()
		})
		if n.cfg.Wire == "v2" {
			st.EnableWireV2()
		}
		if h := n.obsHooks(0); h != nil {
			st.SetTraceHooks(h)
		}
		input := n.cfg.Input
		st.Node.AddInit(func(ctx sim.Context) {
			_ = st.ABA.Propose(ctx, input)
		})
	}

	n.state = stateRunning
	n.start = time.Now()
	n.stop = make(chan struct{})
	n.done = make(chan struct{})
	ctx := n.newLaneCtx(0, n.shards[0])
	n.runC = ctx
	n.injectC = make(chan func())
	n.retiredGate = false
	if n.cfg.Service != nil {
		n.lanes = make([]*lane, n.laneCount)
		for i := range n.lanes {
			c := ctx
			if i > 0 {
				c = n.newLaneCtx(i, n.shards[i])
			}
			n.lanes[i] = newLane(n, i, n.shards[i], c)
		}
		if n.laneCount > 1 {
			// Multi-lane: a router goroutine owns Recv, one worker per
			// lane owns its sessions. Shutdown runs in ingress order —
			// stop the router first so no one feeds the rings, then close
			// the lanes and wait the workers out (they drain their control
			// queues, so every accepted Inject thunk still runs).
			var wg sync.WaitGroup
			for _, ln := range n.lanes {
				wg.Add(1)
				go ln.loop(&wg)
			}
			stop, done, tr := n.stop, n.done, n.tr
			lanes := n.lanes
			go func() {
				defer close(done)
				n.routerLoop(tr, stop)
				for _, ln := range lanes {
					ln.close()
				}
				wg.Wait()
			}()
			return nil
		}
	}
	go n.run(st, ctx, n.tr, n.stop, n.done)
	return nil
}

// maxDrainBurst bounds how many already-queued inbound frames one
// delivery burst may consume before the outbox flushes. A burst is the
// node runtime's "delivery step": everything the stack produces for one
// destination while handling the burst leaves as a single frame. The
// bound keeps flushes regular under sustained echo storms so peers never
// wait on an ever-growing burst.
const maxDrainBurst = 64

// run is the node's single delivery goroutine: the protocol stack is
// only ever touched from here, which is what makes the engines safe
// under real concurrency without any locking of their own.
func (n *Node) run(st *core.Stack, ctx *runCtx, tr transport.Transport, stop, done chan struct{}) {
	defer close(done)
	defer n.snapshotState(st)
	if st != nil {
		st.Node.Init(ctx)
	}
	ctx.flushOutbox()
	inject := n.injectC
	for {
		select {
		case <-stop:
			return
		case fn := <-inject:
			fn()
			ctx.flushOutbox()
			n.afterBurst(st)
		case f, ok := <-tr.Recv():
			if !ok {
				return
			}
			n.handleFrame(st, ctx, f)
			if ctx.ob != nil {
			drain:
				for i := 0; i < maxDrainBurst; i++ {
					select {
					case f2, ok2 := <-tr.Recv():
						if !ok2 {
							break drain
						}
						n.handleFrame(st, ctx, f2)
					default:
						break drain
					}
				}
			}
			ctx.flushOutbox()
			n.afterBurst(st)
		}
	}
}

// afterBurst runs the end-of-burst retirement pass: per scope in
// service mode, whole-stack in single mode.
func (n *Node) afterBurst(st *core.Stack) {
	if n.cfg.Service != nil {
		n.processScopeRetirements()
		return
	}
	n.maybeRetire(st)
}

// maybeRetire releases the stack's instance state once the agreement
// halted (n−t matching DECIDEs received — every honest process decides
// through DECIDE amplification without further help from this one).
// Long-lived nodes would otherwise keep every broadcast instance of a
// finished agreement alive forever; after retirement the late tail of
// the echo storm is dropped at the door.
func (n *Node) maybeRetire(st *core.Stack) {
	if st.Node.Retired() || !st.ABA.Halted() {
		return
	}
	st.Retire()
	n.retiredGate = true
	n.snapshotState(st)
	n.mu.Lock()
	n.retired = true
	n.mu.Unlock()
}

// snapshotState publishes the stack's state counts (delivery goroutine
// only; readers go through StateCounts). Service-mode nodes have no
// single stack — their counts live in ServiceCounts.
func (n *Node) snapshotState(st *core.Stack) {
	if st == nil {
		return
	}
	c := st.StateCounts()
	n.mu.Lock()
	n.counts = c
	n.haveCounts = true
	n.mu.Unlock()
}

// CoinRounds returns how many coin flips this node observed (cumulative
// across incarnations, like the traffic counters) — the denominator of
// the per-coin-round message-complexity report.
func (n *Node) CoinRounds() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.coinRounds
}

// Retired reports whether the current incarnation retired its protocol
// stack (decided, halted, and released its instance state).
func (n *Node) Retired() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.retired
}

// StateCounts returns the latest protocol-state snapshot — taken at
// retirement and at shutdown — and whether one exists yet.
func (n *Node) StateCounts() (core.StateCounts, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.counts, n.haveCounts
}

// handleFrame decodes one inbound frame — single-payload or batch — and
// delivers its payloads to the stack (or, in service mode, to the
// scoped stacks the payloads' envelopes name) in frame order.
func (n *Node) handleFrame(st *core.Stack, ctx *runCtx, f transport.Frame) {
	if f.From < 1 || int(f.From) > n.cfg.N {
		// A sender outside 1..N would count as a phantom voter
		// in the protocol quorums; reject the frame outright.
		n.noteDecodeErrSh(ctx.sh, fmt.Errorf("node %d: frame from unknown process %d", n.cfg.ID, f.From))
		return
	}
	if n.retiredGate {
		// The stack retired: nothing in this frame can affect any outcome.
		// Drop it before decoding — a late echo storm must cost a counter
		// bump, not a full batch/pack/bundle unpack.
		ctx.sh.countLateFrame()
		return
	}
	service := n.cfg.Service != nil
	if proto.IsBatch(f.Data) {
		bd, ok := n.codec.(batchDecoder)
		if !ok {
			n.noteDecodeErrSh(ctx.sh, fmt.Errorf("node %d: from %d: batch frame but codec has no batch format", n.cfg.ID, f.From))
			return
		}
		ps, err := bd.DecodeBatch(f.Data)
		if err != nil {
			// A corrupt batch is discarded whole: partial delivery would
			// let a Byzantine sender smuggle prefix payloads past the
			// frame-level integrity check.
			n.noteDecodeErrSh(ctx.sh, fmt.Errorf("node %d: from %d: %w", n.cfg.ID, f.From, err))
			return
		}
		if service {
			ctx.sh.countRecvFrameOnly(len(f.Data))
			for _, p := range ps {
				n.deliverScoped(ctx, f.From, p)
			}
			return
		}
		ctx.sh.countRecvFrame(ps, len(f.Data))
		for _, p := range ps {
			st.Node.Deliver(ctx, sim.Message{
				From:    f.From,
				To:      n.cfg.ID,
				Payload: p,
				SentAt:  ctx.Now(),
			})
		}
		return
	}
	p, err := n.codec.Decode(f.Data)
	if err != nil {
		n.noteDecodeErrSh(ctx.sh, fmt.Errorf("node %d: from %d: %w", n.cfg.ID, f.From, err))
		return
	}
	if service {
		ctx.sh.countRecvFrameOnly(len(f.Data))
		n.deliverScoped(ctx, f.From, p)
		return
	}
	ctx.one[0] = p
	ctx.sh.countRecvFrame(ctx.one[:1], len(f.Data))
	st.Node.Deliver(ctx, sim.Message{
		From:    f.From,
		To:      n.cfg.ID,
		Payload: p,
		SentAt:  ctx.Now(),
	})
}

// Stop shuts the node down gracefully: delivery stops, the transport
// closes, queued inbound traffic is discarded.
func (n *Node) Stop() { n.halt(false) }

// Crash fail-stops the node: identical teardown to Stop, but the node
// records that it went down by fault. The rest of the cluster just sees
// its links die.
func (n *Node) Crash() { n.halt(true) }

func (n *Node) halt(crash bool) {
	n.mu.Lock()
	if n.state != stateRunning {
		if crash {
			n.crashed = true
		}
		if n.state == stateNew {
			// Fail-stop before Start: tear the transport down anyway so
			// peers see the links die.
			n.state = stateStopped
			tr := n.tr
			n.mu.Unlock()
			tr.Close()
			return
		}
		n.mu.Unlock()
		return
	}
	n.state = stateStopped
	n.crashed = crash
	stop, done, tr := n.stop, n.done, n.tr
	n.mu.Unlock()
	close(stop)
	tr.Close()
	<-done
}

// Restart boots a fresh protocol stack on a fresh transport. The old
// incarnation must be stopped or crashed. Decision state resets; the
// node re-proposes its configured input.
func (n *Node) Restart(tr transport.Transport) error {
	if n.cfg.Service != nil {
		// A driver's composition state spans sessions and cannot survive a
		// stack-losing restart coherently; service nodes are torn down and
		// rebuilt instead.
		return fmt.Errorf("node %d: service nodes do not support Restart", n.cfg.ID)
	}
	if tr == nil {
		return fmt.Errorf("node %d: nil transport", n.cfg.ID)
	}
	if tr.Self() != n.cfg.ID {
		return fmt.Errorf("node %d: transport is endpoint %d", n.cfg.ID, tr.Self())
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.state == stateRunning {
		return fmt.Errorf("node %d: still running", n.cfg.ID)
	}
	n.tr = tr
	n.crashed = false
	n.decided = false
	n.retired = false
	n.haveCounts = false
	n.decideC = make(chan struct{})
	return n.startLocked()
}

// Crashed reports whether the node went down via Crash.
func (n *Node) Crashed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed
}

// Decision returns the local decision of the current incarnation.
func (n *Node) Decision() (int, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.value, n.decided
}

// WaitDecision blocks until the node decides or the timeout elapses.
func (n *Node) WaitDecision(timeout time.Duration) (int, error) {
	n.mu.Lock()
	c := n.decideC
	n.mu.Unlock()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-c:
		v, _ := n.Decision()
		return v, nil
	case <-timer.C:
		return 0, fmt.Errorf("node %d: no decision after %v", n.cfg.ID, timeout)
	}
}

func (n *Node) recordDecision(v int) {
	n.mu.Lock()
	if n.decided {
		n.mu.Unlock()
		return
	}
	n.decided = true
	n.value = v
	close(n.decideC)
	n.mu.Unlock()
	if n.cfg.OnDecide != nil {
		n.cfg.OnDecide(v)
	}
}

// Errs returns decode and transport errors observed so far.
func (n *Node) Errs() []error {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]error, len(n.errs))
	copy(out, n.errs)
	return out
}

// noteDecodeErrSh records a decode error in the error log and the
// counting shard of whichever goroutine observed it.
func (n *Node) noteDecodeErrSh(sh *statShard, err error) {
	n.noteErr(err)
	sh.countDecodeErr()
}

// standaloneSize is the encoded size of p as its own frame (kind header
// included) — the logical byte cost, identical whether or not the
// payload actually traveled inside a batch.
func standaloneSize(p sim.Payload) int {
	return 2 + len(p.Kind()) + p.Size()
}

// Stats returns a snapshot of the traffic counters, merging the
// per-lane shards (one shard covers everything on a one-lane node).
func (n *Node) Stats() Stats {
	s := Stats{
		Lanes:            n.laneCount,
		SentByKind:       make(map[string]int64, 16),
		SentBytesByKind:  make(map[string]int64, 16),
		RecvByKind:       make(map[string]int64, 16),
		RecvBytesByKind:  make(map[string]int64, 16),
		SentGroupsByKind: make(map[string]int64, 16),
		RecvGroupsByKind: make(map[string]int64, 16),
	}
	for _, sh := range n.shards {
		sh.addTo(&s)
	}
	n.mu.Lock()
	lanes := n.lanes
	n.mu.Unlock()
	for _, ln := range lanes {
		w, d, hw := ln.ringStats()
		s.RingWaits += w
		s.RingDrops += d
		if hw > s.RingHighWater {
			s.RingHighWater = hw
		}
	}
	return s
}

// runCtx is the sim.Context one incarnation's stack sees. It is only
// used from its lane's delivery goroutine (Init and Deliver), matching
// the Context contract.
type runCtx struct {
	n   *Node
	tr  transport.Transport
	rnd *rand.Rand
	sh  *statShard
	// bw is the transport's borrowed-send capability (nil when absent,
	// e.g. Mesh): with it, frames encode into enc — reused across every
	// flush this lane performs — and ship without allocating; without
	// it each frame gets its own buffer, which the transport keeps.
	bw  transport.Borrower
	enc []byte
	// ob is the coalescing outbox (nil without Config.Batching); one is
	// a scratch slot so single-payload frames count without allocating.
	ob  *sim.Coalescer[sim.Payload]
	one [1]sim.Payload
}

// batchEncoder/batchDecoder are the two halves of the multi-payload
// frame format a codec may provide (proto.Codec does). Without the
// encoder, batching degrades gracefully to one frame per payload
// (coalescing still bounds the flush points, but no wire-level
// aggregation happens); the decoder is required to accept inbound batch
// frames from batching peers.
type batchEncoder interface {
	EncodeBatch(ps []sim.Payload) ([]byte, error)
}

type batchDecoder interface {
	DecodeBatch(b []byte) ([]sim.Payload, error)
}

// appendEncoder/appendBatchEncoder are the buffer-reusing encode forms
// (proto.Codec provides both). Together with transport.Borrower they
// make the send hot path allocation-free: encode into the lane's
// reusable buffer, let the transport copy it out of a pool.
type appendEncoder interface {
	AppendEncode(dst []byte, p sim.Payload) ([]byte, error)
}

type appendBatchEncoder interface {
	AppendEncodeBatch(dst []byte, ps []sim.Payload) ([]byte, error)
}

var _ sim.Context = (*runCtx)(nil)

func (c *runCtx) N() int           { return c.n.cfg.N }
func (c *runCtx) T() int           { return c.n.cfg.T }
func (c *runCtx) Rand() *rand.Rand { return c.rnd }

func (c *runCtx) Now() int64 {
	return time.Since(c.n.start).Microseconds()
}

// Send routes p toward process `to`: straight to the transport as its
// own frame, or into the outbox when batching, where all of this
// delivery burst's traffic for `to` coalesces into one frame. Each frame
// needs its own buffer — the transport takes ownership — and
// proto.Codec.Encode/EncodeBatch make exactly one pre-sized allocation
// per frame.
func (c *runCtx) Send(to sim.ProcID, p sim.Payload) {
	n := c.n
	if to < 1 || int(to) > n.cfg.N {
		return
	}
	if c.ob != nil {
		c.ob.Add(to, p)
		return
	}
	c.sendOne(to, p)
}

// sendOne ships p as a single-payload frame. A payload whose standalone
// frame would exceed maxBatchFrameBytes is dropped instead of sent: the
// TCP transport kills any connection carrying a frame over its limit,
// and the reconnecting dialer would retransmit the same oversized frame
// forever — a Byzantine peer that baits the stack into minting one
// (e.g. a near-limit value that fans out with framing overhead) must
// cost an error and a counter, not a wedged link. This is the only send
// path without a size bound of its own: flushOutbox routes every
// 1-payload chunk (including any payload too big to share a frame)
// here, and the batch chunks it builds itself are capped by
// construction.
func (c *runCtx) sendOne(to sim.ProcID, p sim.Payload) {
	n := c.n
	if size := standaloneSize(p); size > maxBatchFrameBytes {
		n.noteErr(fmt.Errorf("node %d: drop oversized %q to %d: %d bytes exceeds frame cap %d",
			n.cfg.ID, p.Kind(), to, size, maxBatchFrameBytes))
		c.sh.countOversized()
		return
	}
	if c.bw != nil {
		if ae, ok := n.codec.(appendEncoder); ok {
			enc, err := ae.AppendEncode(c.enc[:0], p)
			if err != nil {
				n.noteErr(fmt.Errorf("node %d: encode %q: %w", n.cfg.ID, p.Kind(), err))
				return
			}
			c.enc = enc
			c.one[0] = p
			c.shipBorrowed(to, c.one[:1], enc)
			return
		}
		c.bw = nil // codec cannot append-encode; stay on owned buffers
	}
	enc, err := n.codec.Encode(p)
	if err != nil {
		n.noteErr(fmt.Errorf("node %d: encode %q: %w", n.cfg.ID, p.Kind(), err))
		return
	}
	c.one[0] = p
	c.ship(to, c.one[:1], enc)
}

// ship counts one outbound frame and hands it to the transport, which
// takes ownership of enc.
func (c *runCtx) ship(to sim.ProcID, ps []sim.Payload, enc []byte) {
	n := c.n
	c.sh.countSentFrame(ps, len(enc))
	if err := c.tr.Send(to, enc); err != nil {
		n.noteErr(fmt.Errorf("node %d: send to %d: %w", n.cfg.ID, to, err))
	}
}

// shipBorrowed is ship over the borrowed-buffer capability: enc stays
// ours (it is c.enc) and is reusable the moment SendBorrowed returns.
func (c *runCtx) shipBorrowed(to sim.ProcID, ps []sim.Payload, enc []byte) {
	n := c.n
	c.sh.countSentFrame(ps, len(enc))
	if err := c.bw.SendBorrowed(to, enc); err != nil {
		n.noteErr(fmt.Errorf("node %d: send to %d: %w", n.cfg.ID, to, err))
	}
}

// maxBatchFrameBytes caps one batch frame's estimated encoded size. The
// TCP transport kills any connection that carries a frame over its 16
// MiB limit — and a reconnecting dialer would retransmit the same
// oversized frame forever, wedging the link — so a flush whose group
// outgrows this bound (a Byzantine peer can legally provoke one by
// packing a near-limit inbound batch with payloads that each fan out)
// is split into multiple frames well below the transport's ceiling.
const maxBatchFrameBytes = 4 << 20

// flushOutbox ends the delivery burst: every destination's coalesced
// group leaves as one frame (batch format for multi-payload groups),
// split only when a group's estimated encoding would exceed
// maxBatchFrameBytes.
func (c *runCtx) flushOutbox() {
	if c.ob == nil {
		return
	}
	n := c.n
	be, hasBatch := n.codec.(batchEncoder)
	c.ob.Flush(func(to sim.ProcID, ps []sim.Payload) {
		if !hasBatch {
			// No batch format on this codec: coalescing still grouped the
			// sends, but each payload crosses as its own frame.
			for _, p := range ps {
				c.sendOne(to, p)
			}
			return
		}
		for start := 0; start < len(ps); {
			end := start + 1
			size := standaloneSize(ps[start])
			for end < len(ps) && size+standaloneSize(ps[end]) <= maxBatchFrameBytes {
				// standaloneSize over-counts the shared kind headers and
				// under-counts the ~5-byte varint framing per payload;
				// with the cap at 1/4 of the transport limit either error
				// is irrelevant.
				size += standaloneSize(ps[end])
				end++
			}
			chunk := ps[start:end]
			start = end
			if len(chunk) == 1 {
				c.sendOne(to, chunk[0])
				continue
			}
			if c.bw != nil {
				if abe, ok := n.codec.(appendBatchEncoder); ok {
					enc, err := abe.AppendEncodeBatch(c.enc[:0], chunk)
					if err != nil {
						n.noteErr(fmt.Errorf("node %d: encode batch of %d: %w", n.cfg.ID, len(chunk), err))
						continue
					}
					c.enc = enc
					c.shipBorrowed(to, chunk, enc)
					continue
				}
			}
			enc, err := be.EncodeBatch(chunk)
			if err != nil {
				n.noteErr(fmt.Errorf("node %d: encode batch of %d: %w", n.cfg.ID, len(chunk), err))
				continue
			}
			c.ship(to, chunk, enc)
		}
	})
}

func (n *Node) noteErr(err error) {
	n.mu.Lock()
	n.errs = append(n.errs, err)
	n.mu.Unlock()
}
