// Package svss implements Shunning Verifiable Secret Sharing — the
// paper's primary contribution (§4). The dealer of session (c, i) draws a
// random degree-t bivariate polynomial f(x, y) with f(0, 0) = s, hands
// every process j its row g_j(y) = f(j, y) and column h_j(x) = f(x, j),
// and then every ordered pair of processes cross-commits the four values
// f(l, j), f(j, l) through MW-SVSS instances in which one process deals
// and the other moderates. SVSS satisfies the full VSS properties
// (Validity, Binding, Hiding, Termination) except that, when the
// adversary breaks Validity or Binding, some nonfaulty process starts
// shunning a newly detected faulty process — which can happen at most
// t(n−t) times overall, the bound the Byzantine agreement layer relies
// on (§5).
//
// Sub-instance naming: for an ordered pair (d, m), slot 0 shares
// f(m, d) and slot 1 shares f(d, m); the four invocations of the paper's
// share step 2 for a pair {j, l} are slots 0 and 1 of (d=j, m=l) plus
// slots 0 and 1 of (d=l, m=j).
package svss

import (
	"fmt"

	"svssba/internal/dmm"
	"svssba/internal/field"
	"svssba/internal/intern"
	"svssba/internal/mwsvss"
	"svssba/internal/poly"
	"svssba/internal/proto"
	"svssba/internal/sim"
)

// StepG is the broadcast step of the dealer's G announcement (share
// step 5).
const StepG uint8 = 1

// KindDeal is the payload kind of the dealer's row/column message.
const KindDeal = "svss/deal"

// Deal is share step 1: the dealer sends process j the evaluations
// g_j(1..t+1) and h_j(1..t+1) from which j reconstructs its row and
// column polynomials.
type Deal struct {
	Session proto.SessionID
	RowPts  []field.Element
	ColPts  []field.Element
}

var _ proto.Marshaler = Deal{}
var _ dmm.Sessioned = Deal{}

// Kind implements sim.Payload.
func (Deal) Kind() string { return KindDeal }

// Size implements sim.Payload.
func (d Deal) Size() int {
	return 15 + proto.ElemsSize(len(d.RowPts)) + proto.ElemsSize(len(d.ColPts))
}

// SessionRef implements dmm.Sessioned.
func (d Deal) SessionRef() proto.MWID { return proto.MWID{Session: d.Session} }

// MarshalTo implements proto.Marshaler.
func (d Deal) MarshalTo(w *proto.Writer) {
	w.Proc(d.Session.Dealer)
	w.U8(uint8(d.Session.Kind))
	w.U64(d.Session.Round)
	w.U32(d.Session.Index)
	w.Elems(d.RowPts)
	w.Elems(d.ColPts)
}

// RegisterCodec registers SVSS message decoding.
func RegisterCodec(c *proto.Codec) {
	c.Register(KindDeal, func(r *proto.Reader) (sim.Payload, error) {
		var d Deal
		d.Session.Dealer = r.Proc()
		d.Session.Kind = proto.SessionKind(r.U8())
		d.Session.Round = r.U64()
		d.Session.Index = r.U32()
		d.RowPts = r.Elems()
		d.ColPts = r.Elems()
		return d, r.Err()
	})
}

// Output is the result of reconstruct protocol R: a field value or ⊥.
type Output struct {
	Value  field.Element
	Bottom bool
}

// String implements fmt.Stringer.
func (o Output) String() string {
	if o.Bottom {
		return "⊥"
	}
	return o.Value.String()
}

// Host is what the engine needs from its process.
type Host interface {
	Self() sim.ProcID
	Broadcast(ctx sim.Context, tag proto.Tag, value []byte)
	DMM() *dmm.DMM
}

// Callbacks notify the layer above (the common coin, tests, the public
// API) of session progress.
type Callbacks struct {
	// ShareComplete fires when protocol S completes locally (step 6).
	ShareComplete func(ctx sim.Context, sid proto.SessionID)
	// ReconstructComplete fires when protocol R outputs locally (step 3).
	ReconstructComplete func(ctx sim.Context, sid proto.SessionID, out Output)
}

// pairDone tracks dealer-side completion of the four instances of an
// unordered pair (share step 3).
type pairKey struct {
	a, b sim.ProcID // a < b
}

func mkPair(x, y sim.ProcID) pairKey {
	if x < y {
		return pairKey{a: x, b: y}
	}
	return pairKey{a: y, b: x}
}

// instance is the per-session state of one process.
//
// The per-sub-instance collections are dense: an MW key with canonical
// coordinates (dealer, moderator in 1..n, slot 0 or 1) maps to a small
// index (keyIdx) into bitsets and slabs, so the per-completion
// bookkeeping and the allPairsShared/Reconstructed scans that run on
// every advance do bit arithmetic instead of map operations. Keys a
// Byzantine process can mint outside the canonical ranges (e.g. a
// bogus slot in a crafted tag) fall back to tiny spill maps that are
// never allocated in honest runs.
type instance struct {
	sid proto.SessionID
	ref proto.MWID // session-level reference (zero MW key)
	n   int        // system size (sizes the dense index space)

	// Dealer state.
	pairCount  []uint16         // completed sub-shares out of 4, (a,b) a<b
	pairSpill  map[pairKey]int  // non-canonical pairs
	gSub       []intern.ProcSet // G_j under construction (index j)
	gSubSpill  map[sim.ProcID]map[sim.ProcID]bool
	dealing    bool
	gBroadcast bool

	// Participant state.
	rowPoly poly.Poly // g_j
	colPoly poly.Poly // h_j
	polySet bool
	joined  bool // initiated the pairwise MW instances

	mwDone      intern.Bits // completed sub-shares by keyIdx
	mwDoneSpill map[proto.MWKey]bool

	gKnown    bool
	g         []sim.ProcID   // Ĝ
	gSets     [][]sim.ProcID // Ĝ_j for j ∈ Ĝ (index j)
	shareDone bool

	// Reconstruct state.
	reconWanted  bool
	reconStarted bool
	mwOut        []mwsvss.Output // by keyIdx
	mwOutSet     intern.Bits
	mwOutSpill   map[proto.MWKey]mwsvss.Output
	reconDone    bool
}

// keyIdx maps a canonical MW key to its dense index, or -1 for keys
// outside the canonical ranges.
func (in *instance) keyIdx(k proto.MWKey) int {
	d, m := int(k.Dealer), int(k.Moderator)
	if d < 1 || d > in.n || m < 1 || m > in.n || k.Slot > 1 {
		return -1
	}
	return (d*(in.n+1)+m)*2 + int(k.Slot)
}

// markShared records a completed sub-share.
func (in *instance) markShared(k proto.MWKey) {
	if i := in.keyIdx(k); i >= 0 {
		in.mwDone.Add(i)
		return
	}
	if in.mwDoneSpill == nil {
		in.mwDoneSpill = make(map[proto.MWKey]bool)
	}
	in.mwDoneSpill[k] = true
}

// shared reports whether the sub-share of k completed.
func (in *instance) shared(k proto.MWKey) bool {
	if i := in.keyIdx(k); i >= 0 {
		return in.mwDone.Has(i)
	}
	return in.mwDoneSpill[k]
}

// putOut records a sub-reconstruction output, reporting whether it is
// the first for k.
func (in *instance) putOut(k proto.MWKey, out mwsvss.Output) bool {
	if i := in.keyIdx(k); i >= 0 {
		if !in.mwOutSet.Add(i) {
			return false
		}
		if in.mwOut == nil {
			in.mwOut = make([]mwsvss.Output, 2*(in.n+1)*(in.n+1))
		}
		in.mwOut[i] = out
		return true
	}
	if _, dup := in.mwOutSpill[k]; dup {
		return false
	}
	if in.mwOutSpill == nil {
		in.mwOutSpill = make(map[proto.MWKey]mwsvss.Output)
	}
	in.mwOutSpill[k] = out
	return true
}

// getOut returns the recorded sub-reconstruction output for k.
func (in *instance) getOut(k proto.MWKey) (mwsvss.Output, bool) {
	if i := in.keyIdx(k); i >= 0 {
		if !in.mwOutSet.Has(i) {
			return mwsvss.Output{}, false
		}
		return in.mwOut[i], true
	}
	out, ok := in.mwOutSpill[k]
	return out, ok
}

// Engine runs all SVSS sessions of one process, driving a shared MW-SVSS
// engine for the pairwise sub-instances. Session ids are interned; the
// slab holds pointers because advance keeps an instance alive across
// broadcasts and MW calls that can re-enter the engine.
type Engine struct {
	host  Host
	mw    *mwsvss.Engine
	cb    Callbacks
	table intern.Table[proto.SessionID]
	insts []*instance
	n     int
}

// New returns an SVSS engine using mw for its sub-instances. The caller
// must route MW-SVSS callbacks for non-KindMW sessions into
// OnMWShareComplete / OnMWReconComplete (core.AttachStack does this).
func New(host Host, mw *mwsvss.Engine, cb Callbacks) *Engine {
	return &Engine{host: host, mw: mw, cb: cb}
}

func (e *Engine) inst(ctx sim.Context, sid proto.SessionID) *instance {
	slot, fresh := e.table.Intern(sid)
	if int(slot) >= len(e.insts) {
		e.insts = append(e.insts, nil)
	}
	if fresh {
		if e.n == 0 {
			e.n = ctx.N()
		}
		in := e.insts[slot]
		if in == nil {
			in = &instance{}
			e.insts[slot] = in
		}
		*in = instance{sid: sid, ref: proto.MWID{Session: sid}, n: e.n}
		e.host.DMM().BeginShare(in.ref)
	}
	return e.insts[slot]
}

// lookup returns the session instance, or nil.
func (e *Engine) lookup(sid proto.SessionID) *instance {
	slot := e.table.Lookup(sid)
	if slot == intern.NoID {
		return nil
	}
	return e.insts[slot]
}

// ShareDone reports whether S completed locally for sid.
func (e *Engine) ShareDone(sid proto.SessionID) bool {
	in := e.lookup(sid)
	return in != nil && in.shareDone
}

// ReconDone reports whether R completed locally for sid.
func (e *Engine) ReconDone(sid proto.SessionID) bool {
	in := e.lookup(sid)
	return in != nil && in.reconDone
}

// Live returns the number of live sessions (retirement tests).
func (e *Engine) Live() int { return e.table.Len() }

// SlabCap returns the session slab's high-water slot count.
func (e *Engine) SlabCap() int { return e.table.HighWater() }

// Created returns the cumulative number of SVSS sessions ever created.
func (e *Engine) Created() uint64 { return e.table.Created() }

// Reset releases every session and its interned id. The slab keeps its
// instance objects for reuse (freshly interned ids re-initialize them
// in place). Used when the owning stack retires.
func (e *Engine) Reset() {
	for _, in := range e.insts {
		if in != nil {
			*in = instance{}
		}
	}
	e.table.Reset()
}

// mwid builds a sub-instance id within a session.
func mwid(sid proto.SessionID, d, m sim.ProcID, slot uint8) proto.MWID {
	return proto.MWID{Session: sid, Key: proto.MWKey{Dealer: d, Moderator: m, Slot: slot}}
}

// Share runs share step 1 for a new session: the calling process becomes
// the dealer of sid and shares secret.
func (e *Engine) Share(ctx sim.Context, sid proto.SessionID, secret field.Element) error {
	if sid.Dealer != e.host.Self() {
		return fmt.Errorf("svss: process %d is not dealer of %s", e.host.Self(), sid)
	}
	in := e.inst(ctx, sid)
	if in.dealing {
		return fmt.Errorf("svss: session %s already dealt", sid)
	}
	in.dealing = true

	t := ctx.T()
	f := poly.NewRandomBivariate(ctx.Rand(), t, secret)
	for j := 1; j <= ctx.N(); j++ {
		row := f.Row(uint64(j))
		col := f.Col(uint64(j))
		ctx.Send(sim.ProcID(j), Deal{
			Session: sid,
			RowPts:  row.EvalRange(t + 1),
			ColPts:  col.EvalRange(t + 1),
		})
	}
	return nil
}

// Reconstruct begins protocol R for sid; if the share phase has not
// completed locally it starts as soon as it does.
func (e *Engine) Reconstruct(ctx sim.Context, sid proto.SessionID) {
	in := e.inst(ctx, sid)
	in.reconWanted = true
	e.advance(ctx, in)
}

// OnMessage handles the dealer's Deal message (share step 2).
func (e *Engine) OnMessage(ctx sim.Context, m sim.Message) {
	d, ok := m.Payload.(Deal)
	if !ok {
		return
	}
	in := e.inst(ctx, d.Session)
	if m.From != d.Session.Dealer || in.polySet ||
		len(d.RowPts) != ctx.T()+1 || len(d.ColPts) != ctx.T()+1 {
		return
	}
	row, err := poly.InterpolateFromShares(d.RowPts, ctx.T())
	if err != nil {
		return
	}
	col, err := poly.InterpolateFromShares(d.ColPts, ctx.T())
	if err != nil {
		return
	}
	in.rowPoly, in.colPoly = row, col
	in.polySet = true
	e.advance(ctx, in)
}

// OnBroadcast handles the dealer's G announcement (share step 5).
func (e *Engine) OnBroadcast(ctx sim.Context, origin sim.ProcID, t proto.Tag, value []byte) {
	if t.Step != StepG || origin != t.Session.Dealer {
		return
	}
	in := e.inst(ctx, t.Session)
	if in.gKnown {
		return
	}
	g, gSets, ok := decodeGSets(value, ctx.N())
	if !ok {
		return
	}
	// A dealer announcing fewer than n−t members (of G or any G_j) is
	// provably faulty; ignore the announcement.
	if len(g) < ctx.N()-ctx.T() {
		return
	}
	for _, j := range g {
		if len(gSets[j]) < ctx.N()-ctx.T() {
			return
		}
	}
	in.g = g
	in.gSets = gSets
	in.gKnown = true
	e.advance(ctx, in)
}

// OnMWShareComplete receives sub-instance share completions.
func (e *Engine) OnMWShareComplete(ctx sim.Context, id proto.MWID) {
	in := e.inst(ctx, id.Session)
	in.markShared(id.Key)

	// Share step 3 (dealer): count the four instances of the pair.
	if in.dealing {
		if in.pairBump(mkPair(id.Key.Dealer, id.Key.Moderator)) == 4 {
			e.dealerPairDone(ctx, in, mkPair(id.Key.Dealer, id.Key.Moderator))
		}
	}
	e.advance(ctx, in)
}

// OnMWReconComplete receives sub-instance reconstruction outputs.
func (e *Engine) OnMWReconComplete(ctx sim.Context, id proto.MWID, out mwsvss.Output) {
	in := e.inst(ctx, id.Session)
	if !in.putOut(id.Key, out) {
		return
	}
	e.advance(ctx, in)
}

// pairBump increments the completed-sub-share count of a pair and
// returns the new count.
func (in *instance) pairBump(pk pairKey) int {
	a, b := int(pk.a), int(pk.b)
	if a >= 1 && b <= in.n {
		if in.pairCount == nil {
			in.pairCount = make([]uint16, (in.n+1)*(in.n+1))
		}
		in.pairCount[a*(in.n+1)+b]++
		return int(in.pairCount[a*(in.n+1)+b])
	}
	if in.pairSpill == nil {
		in.pairSpill = make(map[pairKey]int)
	}
	in.pairSpill[pk]++
	return in.pairSpill[pk]
}

// dealerPairDone implements share steps 3-4: record mutual membership and
// broadcast G once it reaches n−t.
func (e *Engine) dealerPairDone(ctx sim.Context, in *instance, pk pairKey) {
	add := func(j, l sim.ProcID) {
		if j >= 1 && int(j) <= in.n && l >= 1 && int(l) <= in.n {
			if in.gSub == nil {
				in.gSub = make([]intern.ProcSet, in.n+1)
			}
			// j vouches for itself: the paper's termination argument
			// needs |G_j| ≥ n−t to be reachable with only n−t nonfaulty
			// processes, so G_j counts j (the four self-invocations are
			// vacuous).
			in.gSub[j].Add(j)
			in.gSub[j].Add(l)
			return
		}
		set, ok := in.gSubSpill[j]
		if !ok {
			if in.gSubSpill == nil {
				in.gSubSpill = make(map[sim.ProcID]map[sim.ProcID]bool)
			}
			set = map[sim.ProcID]bool{j: true}
			in.gSubSpill[j] = set
		}
		set[l] = true
	}
	add(pk.a, pk.b)
	add(pk.b, pk.a)

	if in.gBroadcast {
		return
	}
	nt := ctx.N() - ctx.T()
	var g []sim.ProcID
	for j := 1; j <= in.n && in.gSub != nil; j++ {
		if in.gSub[j].Count() >= nt {
			g = append(g, sim.ProcID(j))
		}
	}
	// Spill members (out-of-range process ids) can never be announced:
	// G must decode as valid 1..n process sets at the receivers, and a
	// set rooted at an out-of-range j would be rejected there anyway.
	if len(g) < nt {
		return
	}
	in.gBroadcast = true
	gSets := make([][]sim.ProcID, in.n+1)
	for _, j := range g {
		gSets[j] = in.gSub[j].Slice()
	}
	tag := proto.Tag{Proto: proto.ProtoSVSS, Session: in.sid, Step: StepG}
	e.host.Broadcast(ctx, tag, encodeGSets(g, gSets))
}

// advance re-evaluates every enabled protocol step for the session.
func (e *Engine) advance(ctx sim.Context, in *instance) {
	self := e.host.Self()

	// Share step 2: once the row/column polynomials arrive, join the four
	// MW-SVSS invocations per peer (two as dealer, two as moderator).
	if in.polySet && !in.joined {
		in.joined = true
		for l := 1; l <= ctx.N(); l++ {
			peer := sim.ProcID(l)
			if peer == self {
				continue
			}
			lu := uint64(l)
			// (a) dealer with secret f(l, j) = h_j(l), moderator l.
			if err := e.mw.Share(ctx, mwid(in.sid, self, peer, 0), in.colPoly.EvalUint(lu)); err != nil {
				continue
			}
			// (b) dealer with secret f(j, l) = g_j(l), moderator l.
			if err := e.mw.Share(ctx, mwid(in.sid, self, peer, 1), in.rowPoly.EvalUint(lu)); err != nil {
				continue
			}
			// (c) moderator with value f(j, l) = g_j(l), dealer l (slot 0
			// of the mirrored pair shares f(m, d) = f(j, l)).
			if err := e.mw.SetModeratorSecret(ctx, mwid(in.sid, peer, self, 0), in.rowPoly.EvalUint(lu)); err != nil {
				continue
			}
			// (d) moderator with value f(l, j) = h_j(l), dealer l.
			if err := e.mw.SetModeratorSecret(ctx, mwid(in.sid, peer, self, 1), in.colPoly.EvalUint(lu)); err != nil {
				continue
			}
		}
	}

	// Share step 6: complete S once Ĝ is known and all four S' instances
	// completed for every j ∈ Ĝ, l ∈ Ĝ_j.
	if in.gKnown && !in.shareDone && e.allPairsShared(in) {
		in.shareDone = true
		if e.cb.ShareComplete != nil {
			e.cb.ShareComplete(ctx, in.sid)
		}
	}

	// Reconstruct step 1: invoke R' for the four instances of every pair
	// (k ∈ Ĝ, l ∈ Ĝ_k).
	if in.reconWanted && in.shareDone && !in.reconStarted {
		in.reconStarted = true
		e.forAllPairInstances(in, func(id proto.MWID) {
			e.mw.Reconstruct(ctx, id)
		})
	}

	// Reconstruct steps 2-3: once every sub-output is in, compute I, the
	// row/column polynomials, and the final output.
	if in.reconStarted && !in.reconDone && e.allPairsReconstructed(in) {
		in.reconDone = true
		out := e.computeOutput(ctx, in)
		e.host.DMM().CompleteReconstruct(in.ref)
		if e.cb.ReconstructComplete != nil {
			e.cb.ReconstructComplete(ctx, in.sid, out)
		}
	}
}

// forAllPairInstances visits the four MW ids of every pair (k ∈ Ĝ,
// l ∈ Ĝ_k), deduplicated. Ĝ and every Ĝ_k decode-validated to 1..n, so
// the dense key index covers every visited id.
func (e *Engine) forAllPairInstances(in *instance, fn func(proto.MWID)) {
	var seen intern.Bits
	visit := func(id proto.MWID) {
		if seen.Add(in.keyIdx(id.Key)) {
			fn(id)
		}
	}
	for _, k := range in.g {
		for _, l := range in.gSets[k] {
			if k == l {
				continue
			}
			visit(mwid(in.sid, k, l, 0))
			visit(mwid(in.sid, k, l, 1))
			visit(mwid(in.sid, l, k, 0))
			visit(mwid(in.sid, l, k, 1))
		}
	}
}

func (e *Engine) allPairsShared(in *instance) bool {
	for _, k := range in.g {
		for _, l := range in.gSets[k] {
			if k == l {
				continue
			}
			if !in.shared(proto.MWKey{Dealer: k, Moderator: l, Slot: 0}) ||
				!in.shared(proto.MWKey{Dealer: k, Moderator: l, Slot: 1}) ||
				!in.shared(proto.MWKey{Dealer: l, Moderator: k, Slot: 0}) ||
				!in.shared(proto.MWKey{Dealer: l, Moderator: k, Slot: 1}) {
				return false
			}
		}
	}
	return true
}

func (e *Engine) allPairsReconstructed(in *instance) bool {
	for _, k := range in.g {
		for _, l := range in.gSets[k] {
			if k == l {
				continue
			}
			for slot := uint8(0); slot <= 1; slot++ {
				if !in.mwOutSet.Has(in.keyIdx(proto.MWKey{Dealer: k, Moderator: l, Slot: slot})) {
					return false
				}
				if !in.mwOutSet.Has(in.keyIdx(proto.MWKey{Dealer: l, Moderator: k, Slot: slot})) {
					return false
				}
			}
		}
	}
	return true
}

// computeOutput implements reconstruct steps 2 and 3.
func (e *Engine) computeOutput(ctx sim.Context, in *instance) Output {
	t := ctx.T()
	ignored := make(map[sim.ProcID]bool) // I_j

	gRow := make(map[sim.ProcID]poly.Poly) // g_k for k ∈ G \ I
	hCol := make(map[sim.ProcID]poly.Poly) // h_k for k ∈ G \ I

	for _, k := range in.g {
		// Gather the k-dealt outputs across l ∈ G_k:
		//   slot 1 of (d=k, m=l) holds r_kkl = f(k, l)  -> row points
		//   slot 0 of (d=k, m=l) holds r_klk = f(l, k)  -> column points
		var rowPts, colPts []poly.Point
		bad := false
		for _, l := range in.gSets[k] {
			if l == k {
				continue
			}
			rkl, ok1 := in.getOut(proto.MWKey{Dealer: k, Moderator: l, Slot: 1})
			rlk, ok0 := in.getOut(proto.MWKey{Dealer: k, Moderator: l, Slot: 0})
			if !ok1 || !ok0 || rkl.Bottom || rlk.Bottom {
				bad = true
				break
			}
			x := field.New(uint64(l))
			rowPts = append(rowPts, poly.Point{X: x, Y: rkl.Value})
			colPts = append(colPts, poly.Point{X: x, Y: rlk.Value})
		}
		if bad {
			ignored[k] = true
			continue
		}
		gk, okRow, err := poly.InterpolateDegree(rowPts, t)
		if err != nil || !okRow {
			ignored[k] = true
			continue
		}
		hk, okCol, err := poly.InterpolateDegree(colPts, t)
		if err != nil || !okCol {
			ignored[k] = true
			continue
		}
		gRow[k] = gk
		hCol[k] = hk
	}

	// Step 3: pairwise cross-consistency over G \ I.
	var rows []sim.ProcID
	for _, k := range in.g {
		if !ignored[k] {
			rows = append(rows, k)
		}
	}
	for _, k := range rows {
		for _, l := range rows {
			if hCol[k].EvalUint(uint64(l)) != gRow[l].EvalUint(uint64(k)) {
				return Output{Bottom: true}
			}
		}
	}
	if len(rows) < t+1 {
		return Output{Bottom: true}
	}
	xs := make([]field.Element, t+1)
	rowPolys := make([]poly.Poly, t+1)
	for i := 0; i <= t; i++ {
		xs[i] = field.New(uint64(rows[i]))
		rowPolys[i] = gRow[rows[i]]
	}
	f, err := poly.BivariateFromRows(xs, rowPolys, t)
	if err != nil {
		return Output{Bottom: true}
	}
	// Uniqueness check: every remaining row and column must lie on f.
	for _, k := range rows {
		if !f.Row(uint64(k)).Equal(gRow[k]) || !f.Col(uint64(k)).Equal(hCol[k]) {
			return Output{Bottom: true}
		}
	}
	return Output{Value: f.Secret()}
}

// encodeGSets canonically encodes (G, {G_j}): the sorted G list followed
// by each member's sorted G_j list. gSets is indexed by process id.
func encodeGSets(g []sim.ProcID, gSets [][]sim.ProcID) []byte {
	var w proto.Writer
	w.Procs(g)
	for _, j := range g {
		w.Procs(gSets[j])
	}
	return w.Bytes()
}

// decodeGSets decodes and validates a G announcement; the returned
// gSets slice is indexed by process id (members of G only).
func decodeGSets(b []byte, n int) ([]sim.ProcID, [][]sim.ProcID, bool) {
	r := proto.NewReader(b)
	g := r.Procs()
	if r.Err() != nil || !proto.ValidProcs(g, n) {
		return nil, nil, false
	}
	gSets := make([][]sim.ProcID, n+1)
	for _, j := range g {
		members := r.Procs()
		if r.Err() != nil || !proto.ValidProcs(members, n) {
			return nil, nil, false
		}
		gSets[j] = members
	}
	if r.Close() != nil {
		return nil, nil, false
	}
	return g, gSets, true
}
