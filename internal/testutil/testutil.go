// Package testutil provides small helpers shared by protocol package
// tests: a fake sim.Context for unit-level message injection and a
// closure-based sim.Handler for wiring engines into networks quickly.
package testutil

import (
	"math/rand"

	"svssba/internal/sim"
)

// Ctx is an in-memory sim.Context that records sends.
type Ctx struct {
	Self    sim.ProcID
	NProcs  int
	TFaults int
	Time    int64
	Rng     *rand.Rand
	Sent    []sim.Message

	seq uint64
}

var _ sim.Context = (*Ctx)(nil)

// NewCtx returns a fake context for process self in an n/t system.
func NewCtx(self sim.ProcID, n, t int) *Ctx {
	return &Ctx{Self: self, NProcs: n, TFaults: t, Rng: rand.New(rand.NewSource(int64(self)))}
}

// Send implements sim.Context by recording the message.
func (c *Ctx) Send(to sim.ProcID, p sim.Payload) {
	c.seq++
	c.Sent = append(c.Sent, sim.Message{
		From: c.Self, To: to, Payload: p, Seq: c.seq, SentAt: c.Time,
	})
}

// N implements sim.Context.
func (c *Ctx) N() int { return c.NProcs }

// T implements sim.Context.
func (c *Ctx) T() int { return c.TFaults }

// Now implements sim.Context.
func (c *Ctx) Now() int64 { return c.Time }

// Rand implements sim.Context.
func (c *Ctx) Rand() *rand.Rand { return c.Rng }

// Drain returns and clears the recorded sends.
func (c *Ctx) Drain() []sim.Message {
	out := c.Sent
	c.Sent = nil
	return out
}

// SentTo returns the recorded messages addressed to p.
func (c *Ctx) SentTo(p sim.ProcID) []sim.Message {
	var out []sim.Message
	for _, m := range c.Sent {
		if m.To == p {
			out = append(out, m)
		}
	}
	return out
}

// Node is a closure-based sim.Handler.
type Node struct {
	id        sim.ProcID
	onInit    func(ctx sim.Context)
	onDeliver func(ctx sim.Context, m sim.Message)
}

var _ sim.Handler = (*Node)(nil)

// NewNode builds a handler from closures; either closure may be nil.
func NewNode(id sim.ProcID, onInit func(sim.Context), onDeliver func(sim.Context, sim.Message)) *Node {
	return &Node{id: id, onInit: onInit, onDeliver: onDeliver}
}

// ID implements sim.Handler.
func (n *Node) ID() sim.ProcID { return n.id }

// Init implements sim.Handler.
func (n *Node) Init(ctx sim.Context) {
	if n.onInit != nil {
		n.onInit(ctx)
	}
}

// Deliver implements sim.Handler.
func (n *Node) Deliver(ctx sim.Context, m sim.Message) {
	if n.onDeliver != nil {
		n.onDeliver(ctx, m)
	}
}

// Silent returns a handler that does nothing (a crashed-from-start
// process).
func Silent(id sim.ProcID) *Node { return NewNode(id, nil, nil) }
