package mwsvss_test

import (
	"testing"

	"svssba/internal/field"
	"svssba/internal/mwsvss"
	"svssba/internal/poly"
	"svssba/internal/proto"
	"svssba/internal/rb"
	"svssba/internal/sim"
)

// TestExample1 reproduces Example 1 of the paper (§3.3) exactly:
//
//	n = 4, t = 1; process 2 is the dealer, process 1 the moderator.
//	In the share protocol S', process 4 is delayed, so processes 1, 2, 3
//	hear only from each other: L_1 = L_2 = L_3 = M = {1,2,3}.
//	In R', process 3 hears the values sent by (faulty) 2 before hearing
//	from 1 or 4; with t+1 = 2, its K sets fill from {2,3}. By choosing
//	its reconstruct-phase values appropriately, 2 makes 3 output an
//	arbitrary field element. Process 1 hears from 3 (and itself) first
//	and outputs the dealt secret — two nonfaulty processes complete the
//	same invocation with different values.
//	Only later, when 2's reliably-broadcast value reaches 1, does 1
//	realize 2 is faulty and add 2 to D_1: the detection comes after both
//	have completed, which is why MW-SVSS only *shuns*.
func TestExample1(t *testing.T) {
	const (
		n      = 4
		tf     = 1
		dealer = sim.ProcID(2)
		mod    = sim.ProcID(1)
	)
	secret := field.New(42)
	target := field.New(10042) // the value 2 steers process 3 toward

	sched := sim.NewScriptedScheduler(sim.NewRandomScheduler(7))
	c := newCluster(t, n, tf, 7, sim.WithScheduler(sched))
	id := proto.MWID{
		Session: proto.SessionID{Dealer: dealer, Kind: proto.KindMW, Round: 1},
		Key:     proto.MWKey{Dealer: dealer, Moderator: mod},
	}

	// The faulty dealer records f_l(3) (from its outgoing DealVals to 3)
	// and f_3 itself (from the DealPoly to 3), then rewrites only its
	// target-1 and target-2 R' broadcasts. The corrupted shares make the
	// values process 3 reconstructs collinear: f̄_l(0) = g(l) for the
	// degree-1 polynomial g through (0, target) and (3, f(3)) — the
	// "collinear" choice in the paper's Example 1. The target-3 share is
	// sent honestly, so process 3's DEAL_3 expectation about the dealer
	// is satisfied and 3 detects nothing.
	fAt3 := make([]field.Element, n+1) // fAt3[l] = f_l(3)
	var f3Secret field.Element         // f_3(0) = f(3)
	c.procs[dealer].node.SetSendTamper(func(ctx sim.Context, to sim.ProcID, p sim.Payload) (sim.Payload, bool) {
		switch dv := p.(type) {
		case mwsvss.DealVals:
			if to == 3 {
				for l := 1; l <= n; l++ {
					fAt3[l] = dv.Vals[l-1]
				}
			}
		case mwsvss.DealPoly:
			if to == 3 {
				if f3, err := poly.InterpolateFromShares(dv.Shares, ctx.T()); err == nil {
					f3Secret = f3.Secret()
				}
			}
		}
		return p, true
	})
	inv3 := field.New(3).Inv()
	two := field.New(2)
	// g(l) = target + (f(3) − target)·l/3: degree 1, g(0)=target, g(3)=f(3).
	g := func(l uint64) field.Element {
		return target.Add(f3Secret.Sub(target).Mul(field.New(l)).Mul(inv3))
	}
	c.procs[dealer].node.SetBcastTamper(func(_ sim.Context, tag proto.Tag, value []byte) ([]byte, bool) {
		if tag.Proto != proto.ProtoMW || tag.Step != 5 /* StepRVal */ || tag.A >= 3 {
			return value, true
		}
		l := uint64(tag.A)
		// f̄_l through (2, x_l) and (3, f_l(3)) satisfies
		// f̄_l(0) = 3·x_l − 2·f_l(3); choose x_l so f̄_l(0) = g(l).
		xl := g(l).Add(two.Mul(fAt3[l])).Mul(inv3)
		return mwsvss.EncodeElem(xl), true
	})

	// Phase A: delay process 4 entirely during the share phase.
	involves4 := func(m sim.Message) bool { return m.To == 4 || m.From == 4 }
	sched.SetHold(involves4)

	c.startShare(t, id, secret, secret)
	trio := []sim.ProcID{1, 2, 3}
	if _, err := c.nw.RunUntil(func() bool { return c.allShareDone(id, trio) }, 5_000_000); err != nil {
		t.Fatalf("share among 1-3: %v", err)
	}

	// Phase B: process 3 must not *accept* origin-1 values and process 1
	// must not *accept* origin-2 values before completing R'. Acceptance
	// of an RB broadcast happens on the n-t-th type-3 echo, so holding
	// the type-3 echoes addressed to the victim suffices — WRB traffic
	// still flows, so both processes keep participating as echoers
	// (exactly the paper's "hears from ... before hearing from ...").
	rvalType3Origin := func(m sim.Message) (sim.ProcID, bool) {
		if p, ok := m.Payload.(rb.Msg); ok && p.Tag.Proto == proto.ProtoMW && p.Tag.Step == 5 {
			return p.Origin, true
		}
		return 0, false
	}
	sched.SetHold(func(m sim.Message) bool {
		if involves4(m) {
			return true
		}
		origin, ok := rvalType3Origin(m)
		if !ok {
			return false
		}
		return (m.To == 3 && origin == 1) || (m.To == 1 && origin == 2)
	})
	c.reconstructAll(t, id, trio)
	oneAndThree := []sim.ProcID{1, 3}
	if _, err := c.nw.RunUntil(func() bool { return c.allReconDone(id, oneAndThree) }, 5_000_000); err != nil {
		t.Fatalf("reconstruct at 1 and 3: %v", err)
	}
	if !c.allReconDone(id, oneAndThree) {
		for _, i := range []sim.ProcID{1, 2, 3} {
			t.Logf("proc %d: %s", i, c.procs[i].eng.DumpState(id))
			t.Logf("proc %d: parked=%d pendingExp=%d", i, c.procs[i].node.DMM().ParkedCount(), c.procs[i].node.DMM().PendingCount())
		}
		t.Fatal("network quiesced before 1 and 3 completed R' (schedule deadlock)")
	}

	out1 := c.procs[1].outputs[id]
	out3 := c.procs[3].outputs[id]
	if out1.Bottom || out1.Value != secret {
		t.Fatalf("process 1 output %v, want the dealt secret %v", out1, secret)
	}
	if out3.Bottom || out3.Value != target {
		t.Fatalf("process 3 output %v, want the adversary's target %v", out3, target)
	}
	if c.procs[1].node.DMM().IsFaulty(dealer) {
		t.Fatal("process 1 detected the dealer before its broadcast arrived")
	}
	if c.procs[3].node.DMM().IsFaulty(dealer) {
		t.Fatal("process 3 detected the dealer although its own share was honest")
	}

	// Phase C: release everything. Process 2's reliably-broadcast wrong
	// value now reaches process 1, contradicting the DEAL_1 expectation
	// (2, c, i, f_1(2)), so 1 adds 2 to D_1 — after both completed.
	sched.SetHold(nil)
	if _, err := c.nw.Run(10_000_000); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !c.procs[1].node.DMM().IsFaulty(dealer) {
		t.Fatal("process 1 never shunned the faulty dealer")
	}
	for _, honest := range []sim.ProcID{1, 3, 4} {
		for _, j := range c.procs[honest].shunned {
			if j != dealer {
				t.Errorf("process %d shunned honest process %d", honest, j)
			}
		}
	}
}
