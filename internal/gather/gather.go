// Package gather implements the three-round common-core ("gather")
// protocol that is implicit in the Canetti–Rabin common coin (paper §5,
// citing [6] Fig 5-9): every party broadcasts a set of verified parties;
// parties echo quorums of validated sets twice more. The construction
// ensures that the output sets of nonfaulty parties contain a large
// common core that is fixed before the first nonfaulty party outputs —
// which is what lets the coin's lottery values be chosen independently
// of which parties end up in everyone's output set.
//
// The engine is generic over "verification": the layer above (the coin)
// calls Verify(round, j) as parties become locally verified, and the
// engine re-evaluates pending sets monotonically.
//
// Rounds within the engine:
//
//	G1: broadcast S_i, a snapshot of the local verified set (>= n-t).
//	G2: after validating n-t G1 sets (S_j fully verified locally),
//	    broadcast A_i = that set of senders.
//	G3: after validating n-t G2 sets (A_j subset of own validated G1
//	    senders), broadcast B_i = that set of senders.
//	Out: after validating n-t G3 sets (B_j subset of own validated G2
//	    senders), output the union of all validated G1 sets.
package gather

import (
	"sort"

	"svssba/internal/proto"
	"svssba/internal/sim"
)

// Broadcast steps.
const (
	StepG1 uint8 = 1
	StepG2 uint8 = 2
	StepG3 uint8 = 3
)

// Host is what the engine needs from its process.
type Host interface {
	Self() sim.ProcID
	Broadcast(ctx sim.Context, tag proto.Tag, value []byte)
}

// OutputFunc receives the gathered set for a round.
type OutputFunc func(ctx sim.Context, round uint64, set []sim.ProcID)

type round struct {
	id uint64

	verified map[sim.ProcID]bool
	g1Sent   bool

	g1Sets map[sim.ProcID][]sim.ProcID // received S_j
	r1     map[sim.ProcID]bool         // validated G1 senders
	g2Sent bool

	g2Sets map[sim.ProcID][]sim.ProcID // received A_j
	r2     map[sim.ProcID]bool         // validated G2 senders
	g3Sent bool

	g3Sets map[sim.ProcID][]sim.ProcID // received B_j
	r3     map[sim.ProcID]bool         // validated G3 senders

	done bool
}

// Engine runs gather instances keyed by round number.
type Engine struct {
	host   Host
	out    OutputFunc
	rounds map[uint64]*round
}

// New returns a gather engine delivering outputs to out.
func New(host Host, out OutputFunc) *Engine {
	return &Engine{host: host, out: out, rounds: make(map[uint64]*round)}
}

func (e *Engine) round(r uint64) *round {
	rd, ok := e.rounds[r]
	if !ok {
		rd = &round{
			id:       r,
			verified: make(map[sim.ProcID]bool),
			g1Sets:   make(map[sim.ProcID][]sim.ProcID),
			r1:       make(map[sim.ProcID]bool),
			g2Sets:   make(map[sim.ProcID][]sim.ProcID),
			r2:       make(map[sim.ProcID]bool),
			g3Sets:   make(map[sim.ProcID][]sim.ProcID),
			r3:       make(map[sim.ProcID]bool),
		}
		e.rounds[r] = rd
	}
	return rd
}

// Done reports whether the round has produced its output.
func (e *Engine) Done(r uint64) bool {
	rd, ok := e.rounds[r]
	return ok && rd.done
}

// Verify marks j as locally verified for the round and re-evaluates.
func (e *Engine) Verify(ctx sim.Context, r uint64, j sim.ProcID) {
	rd := e.round(r)
	if rd.verified[j] {
		return
	}
	rd.verified[j] = true
	e.advance(ctx, rd)
}

func tag(r uint64, step uint8) proto.Tag {
	return proto.Tag{Proto: proto.ProtoGather, Step: step, A: uint32(r)}
}

// OnBroadcast handles G1/G2/G3 broadcasts.
func (e *Engine) OnBroadcast(ctx sim.Context, origin sim.ProcID, t proto.Tag, value []byte) {
	rd := e.round(uint64(t.A))
	set, ok := decodeProcs(value, ctx.N())
	if !ok || len(set) < ctx.N()-ctx.T() {
		return
	}
	switch t.Step {
	case StepG1:
		if _, dup := rd.g1Sets[origin]; !dup {
			rd.g1Sets[origin] = set
		}
	case StepG2:
		if _, dup := rd.g2Sets[origin]; !dup {
			rd.g2Sets[origin] = set
		}
	case StepG3:
		if _, dup := rd.g3Sets[origin]; !dup {
			rd.g3Sets[origin] = set
		}
	default:
		return
	}
	e.advance(ctx, rd)
}

// advance re-evaluates all monotone conditions for the round.
func (e *Engine) advance(ctx sim.Context, rd *round) {
	nt := ctx.N() - ctx.T()

	// Send G1 once enough parties are verified.
	if !rd.g1Sent && len(rd.verified) >= nt {
		rd.g1Sent = true
		e.host.Broadcast(ctx, tag(rd.id, StepG1), encodeProcs(setToSlice(rd.verified)))
	}

	// Validate G1 sets: every member verified locally.
	for j, set := range rd.g1Sets {
		if rd.r1[j] {
			continue
		}
		if allIn(set, rd.verified) {
			rd.r1[j] = true
		}
	}
	if !rd.g2Sent && len(rd.r1) >= nt {
		rd.g2Sent = true
		e.host.Broadcast(ctx, tag(rd.id, StepG2), encodeProcs(setToSlice(rd.r1)))
	}

	// Validate G2 sets: every member's G1 set validated locally.
	for j, set := range rd.g2Sets {
		if rd.r2[j] {
			continue
		}
		if allIn(set, rd.r1) {
			rd.r2[j] = true
		}
	}
	if !rd.g3Sent && len(rd.r2) >= nt {
		rd.g3Sent = true
		e.host.Broadcast(ctx, tag(rd.id, StepG3), encodeProcs(setToSlice(rd.r2)))
	}

	// Validate G3 sets; output once a quorum is validated.
	for j, set := range rd.g3Sets {
		if rd.r3[j] {
			continue
		}
		if allIn(set, rd.r2) {
			rd.r3[j] = true
		}
	}
	if !rd.done && len(rd.r3) >= nt {
		rd.done = true
		union := make(map[sim.ProcID]bool)
		for j := range rd.r1 {
			for _, m := range rd.g1Sets[j] {
				union[m] = true
			}
		}
		if e.out != nil {
			e.out(ctx, rd.id, setToSlice(union))
		}
	}
}

func allIn(set []sim.ProcID, in map[sim.ProcID]bool) bool {
	for _, p := range set {
		if !in[p] {
			return false
		}
	}
	return true
}

func setToSlice(set map[sim.ProcID]bool) []sim.ProcID {
	out := make([]sim.ProcID, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func encodeProcs(ps []sim.ProcID) []byte {
	var w proto.Writer
	w.Procs(ps)
	return w.Bytes()
}

func decodeProcs(b []byte, n int) ([]sim.ProcID, bool) {
	r := proto.NewReader(b)
	ps := r.Procs()
	if r.Close() != nil {
		return nil, false
	}
	seen := make(map[sim.ProcID]bool, len(ps))
	for _, p := range ps {
		if p < 1 || int(p) > n || seen[p] {
			return nil, false
		}
		seen[p] = true
	}
	return ps, true
}
