package svssba_test

import (
	"testing"
	"time"

	"svssba"
)

// TestAgreementN10 is the n=10/t=3 smoke test the interned-tag dense-
// state port (PR 5) opened up: one full-stack agreement run at the
// scale the fast-ABA literature benchmarks against.
//
// Reality check on cost: one n10 coin round alone is ~125M deliveries
// (per-round traffic grows steeply — n² concurrent SVSS sessions ×
// 2n(n−1) MW sub-instances, each echoing through n²-message reliable
// broadcasts), so the complete run is ~129M deliveries ≈ 7 minutes of
// single-core work on the dense hot path (measured in BENCH_pr5.json;
// the PR-4 map-based path was ~1.3× slower per delivery at this scale
// on top). The test therefore skips under -short, and under a default
// `go test` budget it skips unless enough deadline headroom remains —
// run it deliberately with
//
//	make n10    # go test -run TestAgreementN10 -timeout 90m .
func TestAgreementN10(t *testing.T) {
	if testing.Short() {
		t.Skip("n=10/t=3 agreement is a multi-minute deep run; skipped under -short")
	}
	const headroom = 20 * time.Minute
	if dl, ok := t.Deadline(); ok && time.Until(dl) < headroom {
		t.Skipf("n=10/t=3 agreement needs ~%v of budget (have %v); run via make n10", headroom, time.Until(dl).Round(time.Second))
	}
	inputs := make([]int, 10)
	for i := range inputs {
		inputs[i] = 1
	}
	res, err := svssba.Run(svssba.Config{N: 10, T: 3, Seed: 1, Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatalf("n10 run exhausted %d steps (rounds=%d)", res.Steps, res.MaxRound)
	}
	if !res.AllDecided || !res.Agreed {
		t.Fatalf("no agreement: decided=%v agreed=%v decisions=%v", res.AllDecided, res.Agreed, res.Decisions)
	}
	if res.Value != 1 {
		t.Fatalf("validity violated: unanimous input 1, decided %d", res.Value)
	}
	t.Logf("n10/t3 agreement: steps=%d rounds=%d msgs=%d", res.Steps, res.MaxRound, res.Messages)
}

// TestAgreementN13 is the n=13/t=4 smoke test the wire-v2 message-
// complexity pass (PR 6) opened up. It runs under wire v2 — the burst-
// coalescing variant that bundles the MW layer's concurrent broadcasts
// into shared RB sessions and packs per-destination direct traffic —
// because under v1 shapes a single n13 coin round alone (~450M
// deliveries by extrapolation) would dwarf the n10 run that already
// needs minutes. Measured (BENCH_pr6.json): ~8.96M deliveries over 3
// coin rounds, ~41 minutes single-core. Deep run; skipped under -short
// and under a default `go test` budget — run deliberately with
//
//	make n13    # go test -run TestAgreementN13 -timeout 90m .
func TestAgreementN13(t *testing.T) {
	if testing.Short() {
		t.Skip("n=13/t=4 agreement is a deep run; skipped under -short")
	}
	const headroom = 60 * time.Minute
	if dl, ok := t.Deadline(); ok && time.Until(dl) < headroom {
		t.Skipf("n=13/t=4 agreement needs ~%v of budget (have %v); run via make n13", headroom, time.Until(dl).Round(time.Second))
	}
	inputs := make([]int, 13)
	for i := range inputs {
		inputs[i] = 1
	}
	res, err := svssba.Run(svssba.Config{N: 13, T: 4, Seed: 1, Inputs: inputs, Wire: "v2"})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatalf("n13 run exhausted %d steps (rounds=%d)", res.Steps, res.MaxRound)
	}
	if !res.AllDecided || !res.Agreed {
		t.Fatalf("no agreement: decided=%v agreed=%v decisions=%v", res.AllDecided, res.Agreed, res.Decisions)
	}
	if res.Value != 1 {
		t.Fatalf("validity violated: unanimous input 1, decided %d", res.Value)
	}
	t.Logf("n13/t4 agreement: steps=%d rounds=%d msgs=%d coinrounds=%d per-coin=%d",
		res.Steps, res.MaxRound, res.Messages, res.CoinRounds, perCoin(res))
}

// perCoin is the deliveries-per-coin-round figure of a finished run.
func perCoin(res *svssba.Result) uint64 {
	if res.CoinRounds == 0 {
		return 0
	}
	return uint64(res.Steps) / res.CoinRounds
}
