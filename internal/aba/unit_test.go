package aba_test

import (
	"testing"

	"svssba/internal/aba"
	"svssba/internal/sim"
	"svssba/internal/testutil"
)

// countKind tallies sent payloads of one kind.
func countKind(msgs []sim.Message, kind string) int {
	c := 0
	for _, m := range msgs {
		if m.Payload.Kind() == kind {
			c++
		}
	}
	return c
}

// lastVotes extracts the distinct (step, value) pairs broadcast.
func votesSent(msgs []sim.Message) map[[2]uint8]int {
	out := make(map[[2]uint8]int)
	for _, m := range msgs {
		if v, ok := m.Payload.(aba.Vote); ok {
			out[[2]uint8{v.Step, v.Value}]++
		}
	}
	return out
}

func TestUnitProposeBroadcastsBVal(t *testing.T) {
	ctx := testutil.NewCtx(1, 4, 1)
	eng := aba.New(1, coinStub{}, nil)
	if err := eng.Propose(ctx, 1); err != nil {
		t.Fatal(err)
	}
	votes := votesSent(ctx.Sent)
	if votes[[2]uint8{1, 1}] != 4 {
		t.Errorf("BVAL(1) sends = %d, want 4 (one per process)", votes[[2]uint8{1, 1}])
	}
}

func TestUnitBValRelayAtTPlus1(t *testing.T) {
	// n=4, t=1: after t+1 = 2 distinct BVAL(0) arrivals, a process that
	// proposed 1 must relay BVAL(0) too.
	ctx := testutil.NewCtx(1, 4, 1)
	eng := aba.New(1, coinStub{}, nil)
	if err := eng.Propose(ctx, 1); err != nil {
		t.Fatal(err)
	}
	ctx.Drain()
	eng.OnMessage(ctx, sim.Message{From: 2, To: 1, Payload: aba.Vote{Step: 1, Round: 1, Value: 0}})
	if votes := votesSent(ctx.Sent); votes[[2]uint8{1, 0}] != 0 {
		t.Error("relayed after a single BVAL")
	}
	eng.OnMessage(ctx, sim.Message{From: 3, To: 1, Payload: aba.Vote{Step: 1, Round: 1, Value: 0}})
	if votes := votesSent(ctx.Sent); votes[[2]uint8{1, 0}] != 4 {
		t.Errorf("BVAL(0) relays = %d, want 4", votes[[2]uint8{1, 0}])
	}
}

func TestUnitAuxAfterBinValues(t *testing.T) {
	// 2t+1 = 3 distinct BVAL(1) puts 1 into bin_values and triggers AUX.
	ctx := testutil.NewCtx(1, 4, 1)
	eng := aba.New(1, coinStub{}, nil)
	if err := eng.Propose(ctx, 1); err != nil {
		t.Fatal(err)
	}
	for _, from := range []sim.ProcID{1, 2, 3} {
		eng.OnMessage(ctx, sim.Message{From: from, To: 1, Payload: aba.Vote{Step: 1, Round: 1, Value: 1}})
	}
	if got := countKind(ctx.Sent, aba.KindAux); got != 4 {
		t.Errorf("AUX sends = %d, want 4", got)
	}
}

func TestUnitDuplicateVotesIgnored(t *testing.T) {
	ctx := testutil.NewCtx(1, 4, 1)
	eng := aba.New(1, coinStub{}, nil)
	if err := eng.Propose(ctx, 1); err != nil {
		t.Fatal(err)
	}
	ctx.Drain()
	// The same sender repeating BVAL(0) must not reach the t+1 relay bar.
	for i := 0; i < 5; i++ {
		eng.OnMessage(ctx, sim.Message{From: 2, To: 1, Payload: aba.Vote{Step: 1, Round: 1, Value: 0}})
	}
	if votes := votesSent(ctx.Sent); votes[[2]uint8{1, 0}] != 0 {
		t.Error("duplicate senders triggered a relay")
	}
}

func TestUnitDecideAmplification(t *testing.T) {
	// t+1 matching DECIDEs are an alternative decision path; n-t allow
	// halting.
	ctx := testutil.NewCtx(1, 4, 1)
	decided := -1
	eng := aba.New(1, coinStub{}, func(_ sim.Context, v int) { decided = v })
	if err := eng.Propose(ctx, 0); err != nil {
		t.Fatal(err)
	}
	eng.OnMessage(ctx, sim.Message{From: 2, To: 1, Payload: aba.Decide{Value: 1}})
	if decided != -1 {
		t.Fatal("decided from a single DECIDE")
	}
	eng.OnMessage(ctx, sim.Message{From: 3, To: 1, Payload: aba.Decide{Value: 1}})
	if decided != 1 {
		t.Fatalf("decided = %d, want 1 after t+1 DECIDEs", decided)
	}
	if eng.Halted() {
		t.Fatal("halted before n-t DECIDEs")
	}
	eng.OnMessage(ctx, sim.Message{From: 4, To: 1, Payload: aba.Decide{Value: 1}})
	if !eng.Halted() {
		t.Fatal("not halted after n-t DECIDEs")
	}
	// A halted engine ignores further traffic.
	before := len(ctx.Sent)
	eng.OnMessage(ctx, sim.Message{From: 2, To: 1, Payload: aba.Vote{Step: 1, Round: 5, Value: 0}})
	if len(ctx.Sent) != before {
		t.Error("halted engine still sending")
	}
}

func TestUnitGarbageMessagesIgnored(t *testing.T) {
	ctx := testutil.NewCtx(1, 4, 1)
	eng := aba.New(1, coinStub{}, nil)
	if err := eng.Propose(ctx, 0); err != nil {
		t.Fatal(err)
	}
	ctx.Drain()
	eng.OnMessage(ctx, sim.Message{From: 2, To: 1, Payload: aba.Vote{Step: 9, Round: 1, Value: 0}})
	eng.OnMessage(ctx, sim.Message{From: 2, To: 1, Payload: aba.Vote{Step: 1, Round: 1, Value: 7}})
	eng.OnMessage(ctx, sim.Message{From: 2, To: 1, Payload: aba.Conf{Round: 1, Mask: 0}})
	eng.OnMessage(ctx, sim.Message{From: 2, To: 1, Payload: aba.Conf{Round: 1, Mask: 9}})
	eng.OnMessage(ctx, sim.Message{From: 2, To: 1, Payload: aba.Decide{Value: 5}})
	if len(ctx.Sent) != 0 {
		t.Errorf("garbage provoked %d sends", len(ctx.Sent))
	}
	if _, ok := eng.Decided(); ok {
		t.Error("garbage caused a decision")
	}
}

// coinCapture records coin start requests.
type coinCapture struct {
	rounds []uint64
}

func (c *coinCapture) Start(_ sim.Context, r uint64) { c.rounds = append(c.rounds, r) }

func TestUnitCoinRequestedOnlyAfterConfQuorum(t *testing.T) {
	ctx := testutil.NewCtx(1, 4, 1)
	cc := &coinCapture{}
	eng := aba.New(1, cc, nil)
	if err := eng.Propose(ctx, 1); err != nil {
		t.Fatal(err)
	}
	// Drive the round to the CONF stage: 3 BVAL(1), then 3 AUX(1).
	for _, from := range []sim.ProcID{1, 2, 3} {
		eng.OnMessage(ctx, sim.Message{From: from, To: 1, Payload: aba.Vote{Step: 1, Round: 1, Value: 1}})
	}
	for _, from := range []sim.ProcID{1, 2, 3} {
		eng.OnMessage(ctx, sim.Message{From: from, To: 1, Payload: aba.Vote{Step: 2, Round: 1, Value: 1}})
	}
	if len(cc.rounds) != 0 {
		t.Fatal("coin requested before CONF quorum")
	}
	for _, from := range []sim.ProcID{1, 2, 3} {
		eng.OnMessage(ctx, sim.Message{From: from, To: 1, Payload: aba.Conf{Round: 1, Mask: 2}})
	}
	if len(cc.rounds) != 1 || cc.rounds[0] != 1 {
		t.Fatalf("coin requests = %v, want [1]", cc.rounds)
	}
	// Unanimous vals {1} + coin 1 => decide 1 and enter round 2.
	decidedBefore, _ := eng.Decided()
	_ = decidedBefore
	eng.OnCoin(ctx, 1, 1)
	if v, ok := eng.Decided(); !ok || v != 1 {
		t.Fatalf("decided = %v,%v want 1,true", v, ok)
	}
	if eng.Round() != 2 {
		t.Errorf("round = %d, want 2", eng.Round())
	}
}

func TestUnitCoinMismatchAdoptsValueWithoutDeciding(t *testing.T) {
	ctx := testutil.NewCtx(1, 4, 1)
	cc := &coinCapture{}
	eng := aba.New(1, cc, nil)
	if err := eng.Propose(ctx, 1); err != nil {
		t.Fatal(err)
	}
	for _, from := range []sim.ProcID{1, 2, 3} {
		eng.OnMessage(ctx, sim.Message{From: from, To: 1, Payload: aba.Vote{Step: 1, Round: 1, Value: 1}})
	}
	for _, from := range []sim.ProcID{1, 2, 3} {
		eng.OnMessage(ctx, sim.Message{From: from, To: 1, Payload: aba.Vote{Step: 2, Round: 1, Value: 1}})
	}
	for _, from := range []sim.ProcID{1, 2, 3} {
		eng.OnMessage(ctx, sim.Message{From: from, To: 1, Payload: aba.Conf{Round: 1, Mask: 2}})
	}
	eng.OnCoin(ctx, 1, 0) // coin disagrees with the unanimous value
	if _, ok := eng.Decided(); ok {
		t.Fatal("decided despite coin mismatch")
	}
	if eng.Round() != 2 {
		t.Errorf("round = %d, want 2", eng.Round())
	}
	// Round 2 must start with estimate 1 (the unanimous value), i.e. a
	// BVAL(1) burst for round 2.
	found := false
	for _, m := range ctx.Sent {
		if v, ok := m.Payload.(aba.Vote); ok && v.Step == 1 && v.Round == 2 && v.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Error("round 2 did not start with the adopted estimate")
	}
}
