// Command paritydigest prints a byte-stable digest of a fixed matrix of
// deterministic runs (agreement across schedulers/faults/scales, plus
// standalone SVSS and coin sessions). Two builds of the tree produce
// identical output iff they make identical protocol decisions, schedules
// and logical stats for every covered seed — the guardrail used when a
// PR claims to be a pure representation change (capture the output
// before, diff after).
//
// Each wire variant has its own digest: v1 (the default) must stay
// byte-identical across representation changes; v2 (burst coalescing)
// is a declared protocol variant pinned separately.
//
//	go run ./cmd/paritydigest               # quick matrix, wire v1 (seconds)
//	go run ./cmd/paritydigest -variant v2   # same matrix under wire v2
//	go run ./cmd/paritydigest -deep         # adds the n7/t2 cells (minutes)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"svssba"
	"svssba/internal/paritycells"
)

func main() {
	deep := flag.Bool("deep", false, "include the n7/t2 agreement cells (minutes of deliveries)")
	variant := flag.String("variant", "v1", "wire variant to digest (v1 or v2)")
	flag.Parse()
	emit(os.Stdout, *deep, *variant)
}

// emit writes the full digest for one wire variant (also driven by the
// golden test against testdata/parity_<variant>.txt and `make parity`).
func emit(w io.Writer, deep bool, variant string) {
	for _, c := range paritycells.Agreement(deep) {
		cfg := c.Cfg
		cfg.Wire = variant
		res, err := svssba.Run(cfg)
		if err != nil {
			fmt.Fprintf(w, "%s: ERR %v\n", c.Name, err)
			continue
		}
		fmt.Fprintf(w, "%s: %s\n", c.Name, digest(res))
	}

	sres, err := svssba.RunSVSS(svssba.SVSSConfig{N: 4, Seed: 1, Secret: 7, Wire: variant})
	if err != nil {
		fmt.Fprintf(w, "svss-n4: ERR %v\n", err)
	} else {
		fmt.Fprintf(w, "svss-n4: outs=%v shared=%v shuns=%v msgs=%d bytes=%d\n",
			sortedKV(sres.Outputs), sres.ShareCompleted, sres.Shuns, sres.Messages, sres.Bytes)
	}
	lres, err := svssba.RunSVSS(svssba.SVSSConfig{N: 4, Seed: 2, Secret: 9, Wire: variant,
		Faults: []svssba.Fault{{Proc: 4, Kind: svssba.FaultRValLie}}})
	if err != nil {
		fmt.Fprintf(w, "svss-n4-rvallie: ERR %v\n", err)
	} else {
		fmt.Fprintf(w, "svss-n4-rvallie: outs=%v shared=%v shuns=%v msgs=%d bytes=%d\n",
			sortedKV(lres.Outputs), lres.ShareCompleted, lres.Shuns, lres.Messages, lres.Bytes)
	}
	cres, err := svssba.RunCoin(svssba.CoinConfig{N: 4, Seed: 1, Rounds: 2, Wire: variant})
	if err != nil {
		fmt.Fprintf(w, "coin-n4: ERR %v\n", err)
	} else {
		for i, rr := range cres.RoundResults {
			fmt.Fprintf(w, "coin-n4 r%d: bits=%v agreed=%v value=%d\n", i+1, sortedKV(rr.Bits), rr.Agreed, rr.Value)
		}
		fmt.Fprintf(w, "coin-n4: msgs=%d bytes=%d shuns=%v\n", cres.Messages, cres.Bytes, cres.Shuns)
	}
}

// digest renders every deterministic field of a Result in fixed order.
func digest(r *svssba.Result) string {
	return fmt.Sprintf(
		"dec=%v agreed=%v value=%d maxround=%d steps=%d vt=%d msgs=%d bytes=%d frames=%d shuns=%v bykind=%v timeout=%v",
		sortedKV(r.Decisions), r.Agreed, r.Value, r.MaxRound, r.Steps, r.VirtualTime,
		r.Messages, r.Bytes, r.Frames, r.Shuns, sortedKV(r.MsgsByKind), r.TimedOut)
}

// sortedKV renders a map as sorted key=value pairs.
func sortedKV[K int | string, V any](m map[K]V) string {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	s := "["
	for i, k := range keys {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%v=%v", k, m[k])
	}
	return s + "]"
}
