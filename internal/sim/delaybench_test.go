package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// boxedDelayHeap is the previous container/heap-based implementation of
// the DelayScheduler queue, kept here as the benchmark baseline: every
// Push and Pop boxes a delayItem into an interface{}, costing one heap
// allocation each on the per-message hot path.
type boxedDelayHeap []delayItem

func (h boxedDelayHeap) Len() int { return len(h) }
func (h boxedDelayHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h boxedDelayHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *boxedDelayHeap) Push(x interface{}) { *h = append(*h, x.(delayItem)) }
func (h *boxedDelayHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = delayItem{}
	*h = old[:n-1]
	return it
}

type boxedDelayScheduler struct {
	rng  *rand.Rand
	dist DelayDist
	h    boxedDelayHeap
}

func (s *boxedDelayScheduler) Enqueue(m Message, now int64) {
	heap.Push(&s.h, delayItem{m: m, at: now + 1 + s.dist.Draw(s.rng), seq: m.Seq})
}

func (s *boxedDelayScheduler) Next(_ int64) (Message, int64, bool) {
	if s.h.Len() == 0 {
		return Message{}, 0, false
	}
	it := heap.Pop(&s.h).(delayItem)
	return it.m, it.at, true
}

func (s *boxedDelayScheduler) Len() int { return s.h.Len() }

// benchScheduler is the subset of Scheduler the benchmark drives.
type benchScheduler interface {
	Enqueue(m Message, now int64)
	Next(now int64) (Message, int64, bool)
}

// runDelayBench measures a steady-state pop+push cycle over a queue of
// 1024 pending messages — the DelayScheduler's behavior in the middle
// of a large experiment.
func runDelayBench(b *testing.B, s benchScheduler) {
	b.Helper()
	const depth = 1024
	m := Message{From: 1, To: 2, Payload: parityPayload{kind: "bench", size: 8}}
	for i := 0; i < depth; i++ {
		m.Seq++
		s.Enqueue(m, int64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		popped, at, ok := s.Next(int64(i))
		if !ok {
			b.Fatal("scheduler drained unexpectedly")
		}
		popped.Seq = m.Seq + uint64(i) + 1
		s.Enqueue(popped, at)
	}
}

// BenchmarkDelayScheduler compares the pooled (free-list backing array,
// no interface boxing) scheduler against the old container/heap-based
// one. Expected: boxed ≈ 2 allocs/op (Push and Pop each box an item),
// pooled 0 allocs/op.
func BenchmarkDelayScheduler(b *testing.B) {
	dist := UniformDelay{Lo: 1, Hi: 64}
	b.Run("pooled", func(b *testing.B) {
		runDelayBench(b, NewDelayScheduler(1, dist))
	})
	b.Run("boxed", func(b *testing.B) {
		runDelayBench(b, &boxedDelayScheduler{rng: rand.New(rand.NewSource(1)), dist: dist})
	})
}
