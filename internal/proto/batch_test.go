package proto_test

import (
	"reflect"
	"testing"

	"svssba/internal/aba"
	"svssba/internal/mwsvss"
	"svssba/internal/proto"
	"svssba/internal/rb"
	"svssba/internal/sim"
)

func batchPayloads() []sim.Payload {
	mk := func(round uint64) proto.Tag {
		return proto.Tag{
			Proto:   proto.ProtoMW,
			Session: proto.SessionID{Dealer: 2, Kind: proto.KindCoin, Round: round},
			MW:      proto.MWKey{Dealer: 2, Moderator: 1, Slot: 1},
			Step:    mwsvss.StepAck,
		}
	}
	return []sim.Payload{
		rb.Msg{Origin: 1, Tag: mk(1), Value: []byte("x")},
		rb.Msg{Origin: 2, Tag: mk(2), Value: nil},
		rb.Msg{Origin: 3, Tag: mk(3), Value: []byte("yy")},
		aba.Vote{Step: 1, Round: 9, Value: 1},
		rb.Msg{Origin: 4, Tag: mk(4), Value: []byte("z")},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	c := fullCodec()
	ps := batchPayloads()
	enc, err := c.EncodeBatch(ps)
	if err != nil {
		t.Fatal(err)
	}
	if !proto.IsBatch(enc) {
		t.Fatal("EncodeBatch output not recognized by IsBatch")
	}
	got, err := c.DecodeBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(ps), normalize(got)) {
		t.Fatalf("round trip mismatch:\n want %#v\n got  %#v", ps, got)
	}
}

// normalize maps nil and empty byte slices to a canonical form: the wire
// format cannot distinguish them, and the protocols treat values as
// opaque strings.
func normalize(ps []sim.Payload) []sim.Payload {
	out := make([]sim.Payload, len(ps))
	for i, p := range ps {
		if m, ok := p.(rb.Msg); ok && len(m.Value) == 0 {
			m.Value = nil
			out[i] = m
			continue
		}
		out[i] = p
	}
	return out
}

func TestBatchGroupsConsecutiveKinds(t *testing.T) {
	c := fullCodec()
	ps := batchPayloads() // runs: rb×3, aba×1, rb×1 -> 3 groups
	enc, err := c.EncodeBatch(ps)
	if err != nil {
		t.Fatal(err)
	}
	// The aggregated frame must be smaller than the sum of the individual
	// frames: three rb kind headers collapse into one.
	var individual int
	for _, p := range ps {
		b, err := c.Encode(p)
		if err != nil {
			t.Fatal(err)
		}
		individual += len(b)
	}
	if len(enc) >= individual {
		t.Fatalf("batch frame (%d B) not smaller than %d individual frames (%d B)",
			len(enc), len(ps), individual)
	}
}

func TestBatchRejectsNonBatch(t *testing.T) {
	c := fullCodec()
	single, err := c.Encode(aba.Vote{Step: 1, Round: 1, Value: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DecodeBatch(single); err != proto.ErrNotBatch {
		t.Fatalf("single-payload frame: got %v, want ErrNotBatch", err)
	}
	if _, err := c.DecodeBatch(nil); err != proto.ErrNotBatch {
		t.Fatalf("nil input: got %v, want ErrNotBatch", err)
	}
	if _, err := c.EncodeBatch(nil); err == nil {
		t.Fatal("empty batch encoded without error")
	}
}

func TestBatchTruncationErrors(t *testing.T) {
	c := fullCodec()
	enc, err := c.EncodeBatch(batchPayloads())
	if err != nil {
		t.Fatal(err)
	}
	for cut := 2; cut < len(enc); cut++ {
		if _, err := c.DecodeBatch(enc[:cut]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded cleanly", cut, len(enc))
		}
	}
	// Trailing garbage after a complete frame must also be rejected.
	if _, err := c.DecodeBatch(append(append([]byte{}, enc...), 0x00)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestAppendEncodeBatchZeroAlloc(t *testing.T) {
	c := fullCodec()
	ps := batchPayloads()
	buf, err := c.AppendEncodeBatch(nil, ps)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte{}, buf...)
	allocs := testing.AllocsPerRun(100, func() {
		out, err := c.AppendEncodeBatch(buf[:0], ps)
		if err != nil {
			t.Fatal(err)
		}
		buf = out
	})
	if allocs != 0 {
		t.Fatalf("AppendEncodeBatch into warm buffer: %v allocs/op, want 0", allocs)
	}
	if !reflect.DeepEqual(buf, want) {
		t.Fatal("reused-buffer encoding differs")
	}
}
