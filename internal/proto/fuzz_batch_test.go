package proto_test

import (
	"bytes"
	"reflect"
	"testing"

	"svssba/internal/aba"
	"svssba/internal/mwsvss"
	"svssba/internal/proto"
	"svssba/internal/rb"
	"svssba/internal/sim"
	"svssba/internal/wrb"
)

// seedBatch is a representative multi-group batch: echo runs for several
// concurrent tags (the aggregation case) plus a kind switch.
func seedBatch(t testing.TB) []byte {
	t.Helper()
	c := fullCodec()
	mk := func(round uint64) proto.Tag {
		return proto.Tag{
			Proto:   proto.ProtoMW,
			Session: proto.SessionID{Dealer: 1, Kind: proto.KindCoin, Round: round, Index: 2},
			MW:      proto.MWKey{Dealer: 1, Moderator: 3, Slot: 0},
			Step:    mwsvss.StepAck,
		}
	}
	b, err := c.EncodeBatch([]sim.Payload{
		rb.Msg{Origin: 1, Tag: mk(1), Value: []byte("a")},
		rb.Msg{Origin: 2, Tag: mk(2), Value: []byte("bb")},
		wrb.Msg{Origin: 3, Tag: mk(3), Phase: 2, Value: []byte("c")},
		aba.Vote{Step: 1, Round: 4, Value: 1},
		aba.Vote{Step: 2, Round: 4, Value: 0},
	})
	if err != nil {
		t.Fatalf("seed batch encode: %v", err)
	}
	return b
}

// FuzzBatchFrame feeds arbitrary bytes to the batch decoder — the frame
// surface a Byzantine sender controls on a batching transport. DecodeBatch
// must never panic, must reject truncations cleanly, and everything it
// accepts must survive a re-encode round trip payload-for-payload.
func FuzzBatchFrame(f *testing.F) {
	seed := seedBatch(f)
	f.Add(seed)
	for cut := 1; cut < len(seed); cut += 7 {
		f.Add(seed[:cut]) // truncation ladder
	}
	for _, b := range seedPayloads(f) {
		f.Add(b) // single-payload frames must be rejected as ErrNotBatch
	}
	f.Add([]byte{0xff, 0xff})
	f.Add([]byte{0xff, 0xff, 0x01})
	f.Add(bytes.Repeat([]byte{0xff}, 32))
	c := fullCodec()
	f.Fuzz(func(t *testing.T, b []byte) {
		ps, err := c.DecodeBatch(b)
		if err != nil {
			if !proto.IsBatch(b) && err != proto.ErrNotBatch {
				t.Fatalf("non-batch input rejected with %v, want ErrNotBatch", err)
			}
			return
		}
		if len(ps) == 0 {
			return // header-only frame with zero groups is harmless
		}
		enc, err := c.EncodeBatch(ps)
		if err != nil {
			t.Fatalf("accepted batch does not re-encode: %v", err)
		}
		ps2, err := c.DecodeBatch(enc)
		if err != nil {
			t.Fatalf("re-encoded batch does not decode: %v", err)
		}
		if !reflect.DeepEqual(ps, ps2) {
			t.Fatalf("batch changed across round trip:\n  first:  %#v\n  second: %#v", ps, ps2)
		}
		// Truncating an accepted frame anywhere inside must error, never
		// panic and never silently succeed with the full payload set.
		for _, cut := range []int{len(b) - 1, len(b) / 2, 3} {
			if cut <= 2 || cut >= len(b) {
				continue
			}
			if got, err := c.DecodeBatch(b[:cut]); err == nil && len(got) >= len(ps) {
				t.Fatalf("truncation to %d bytes still decoded %d payloads", cut, len(got))
			}
		}
	})
}
