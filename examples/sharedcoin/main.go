// Command sharedcoin exercises the shunning common coin (paper §5)
// directly: it runs a batch of coin invocations on the deterministic
// simulator, reports the empirical distribution against the SCC
// Correctness property (each side with probability >= 1/4), and then
// runs one full agreement on the live goroutine runtime to show the same
// state machines working under real concurrency.
package main

import (
	"fmt"
	"log"
	"time"

	"svssba"
)

func main() {
	const runs = 16
	all0, all1 := 0, 0
	fmt.Printf("flipping %d shared coins (n=4, one invocation each)...\n", runs)
	for seed := int64(0); seed < runs; seed++ {
		res, err := svssba.RunCoin(svssba.CoinConfig{N: 4, Seed: seed, Rounds: 1})
		if err != nil {
			log.Fatal(err)
		}
		rr := res.RoundResults[0]
		if !rr.Agreed {
			fmt.Printf("  seed %2d: DISAGREEMENT %v\n", seed, rr.Bits)
			continue
		}
		if rr.Value == 0 {
			all0++
		} else {
			all1++
		}
		fmt.Printf("  seed %2d: all processes flipped %d\n", seed, rr.Value)
	}
	fmt.Printf("\ndistribution: all-0 %d/%d, all-1 %d/%d  (SCC needs >= 1/4 each)\n",
		all0, runs, all1, runs)

	fmt.Println("\nnow the full protocol on the live goroutine runtime:")
	live, err := svssba.RunLive(svssba.LiveConfig{
		N:        4,
		Seed:     77,
		MaxDelay: 500 * time.Microsecond,
		Timeout:  2 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d goroutine-processes agreed on %d in %v (%d messages over the wire codec)\n",
		len(live.Decisions), live.Value, live.Elapsed.Round(time.Millisecond), live.Messages)
}
