package node

import (
	"sync"

	"svssba/internal/proto"
	"svssba/internal/sim"
)

// statShard is one lane's slice of the node's traffic counters, interned
// by kind like sim.Network. Each lane (and, multi-lane, the router) owns
// a shard and counts under its own mutex, so lanes never contend with
// each other on the hot path; Stats() and the metric gauges merge the
// shards at snapshot time. Shards live on the Node (not the per-
// incarnation lane structs) so counters accumulate across restarts,
// matching the single-shard behavior the node always had.
type statShard struct {
	mu                       sync.Mutex
	sent, sentB              int64
	recv, recvB              int64
	sentF, sentFB            int64
	recvF, recvFB            int64
	decodeErrs               int64
	oversizedDropped         int64
	lateFrames, latePayloads int64
	kindIDs                  map[string]int
	kindNames                []string
	sentByKind, sentBByKind  []int64
	recvByKind, recvBByKind  []int64
	sentGByKind, recvGByKind []int64
	lastKind                 string
	lastKindID               int
}

func newStatShard() *statShard {
	return &statShard{
		kindIDs:    make(map[string]int, 16),
		lastKindID: -1,
	}
}

// kindIDLocked interns a payload kind; the caller must hold sh.mu.
func (sh *statShard) kindIDLocked(kind string) int {
	if kind == sh.lastKind && sh.lastKindID >= 0 {
		return sh.lastKindID
	}
	id, ok := sh.kindIDs[kind]
	if !ok {
		id = len(sh.kindNames)
		sh.kindIDs[kind] = id
		sh.kindNames = append(sh.kindNames, kind)
		sh.sentByKind = append(sh.sentByKind, 0)
		sh.sentBByKind = append(sh.sentBByKind, 0)
		sh.recvByKind = append(sh.recvByKind, 0)
		sh.recvBByKind = append(sh.recvBByKind, 0)
		sh.sentGByKind = append(sh.sentGByKind, 0)
		sh.recvGByKind = append(sh.recvGByKind, 0)
	}
	sh.lastKind, sh.lastKindID = kind, id
	return id
}

// countSentFrame records one physical frame of frameBytes carrying ps:
// every payload counts logically, every same-kind run counts as one wire
// group.
func (sh *statShard) countSentFrame(ps []sim.Payload, frameBytes int) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.sentF++
	sh.sentFB += int64(frameBytes)
	lastGroup := -1
	for _, p := range ps {
		sh.sent++
		sb := int64(standaloneSize(p))
		sh.sentB += sb
		kind := p.Kind()
		if sc, ok := p.(proto.Scoped); ok && sc.Inner != nil {
			// Service mode: attribute the payload to the wrapped kind so
			// per-kind and per-layer stats stay protocol-meaningful (the
			// byte counters keep the envelope's full size).
			kind = sc.Inner.Kind()
		}
		id := sh.kindIDLocked(kind)
		sh.sentByKind[id]++
		sh.sentBByKind[id] += sb
		if id != lastGroup {
			sh.sentGByKind[id]++
			lastGroup = id
		}
	}
}

// countRecvFrame mirrors countSentFrame for the inbound direction.
func (sh *statShard) countRecvFrame(ps []sim.Payload, frameBytes int) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.recvF++
	sh.recvFB += int64(frameBytes)
	lastGroup := -1
	for _, p := range ps {
		sh.recv++
		sb := int64(standaloneSize(p))
		sh.recvB += sb
		id := sh.kindIDLocked(p.Kind())
		sh.recvByKind[id]++
		sh.recvBByKind[id] += sb
		if id != lastGroup {
			sh.recvGByKind[id]++
			lastGroup = id
		}
	}
}

// countRecvFrameOnly records one inbound physical frame whose payloads
// are counted individually (the service-mode path, where each envelope
// is inspected before its inner payload exists).
func (sh *statShard) countRecvFrameOnly(frameBytes int) {
	sh.mu.Lock()
	sh.recvF++
	sh.recvFB += int64(frameBytes)
	sh.mu.Unlock()
}

// countRecvPayload records one logical inbound payload under kind.
func (sh *statShard) countRecvPayload(kind string, size int) {
	sh.mu.Lock()
	sh.recv++
	sh.recvB += int64(size)
	id := sh.kindIDLocked(kind)
	sh.recvByKind[id]++
	sh.recvBByKind[id] += int64(size)
	sh.recvGByKind[id]++
	sh.mu.Unlock()
}

// countLateFrame records a frame dropped whole because the node (single
// mode) already retired. Late frames are not counted as received — they
// were never processed — only as dropped.
func (sh *statShard) countLateFrame() {
	sh.mu.Lock()
	sh.lateFrames++
	sh.mu.Unlock()
}

// countLatePayload records a scoped payload dropped because its scope
// already retired (service mode).
func (sh *statShard) countLatePayload() {
	sh.mu.Lock()
	sh.latePayloads++
	sh.mu.Unlock()
}

// countOversized records an outbound payload dropped for exceeding the
// frame cap.
func (sh *statShard) countOversized() {
	sh.mu.Lock()
	sh.oversizedDropped++
	sh.mu.Unlock()
}

func (sh *statShard) countDecodeErr() {
	sh.mu.Lock()
	sh.decodeErrs++
	sh.mu.Unlock()
}

// addTo merges the shard into an aggregate snapshot whose maps are
// already allocated.
func (sh *statShard) addTo(s *Stats) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.Sent += sh.sent
	s.SentBytes += sh.sentB
	s.Recv += sh.recv
	s.RecvBytes += sh.recvB
	s.SentFrames += sh.sentF
	s.SentFrameBytes += sh.sentFB
	s.RecvFrames += sh.recvF
	s.RecvFrameBytes += sh.recvFB
	s.DecodeErrs += sh.decodeErrs
	s.OversizedDropped += sh.oversizedDropped
	s.DroppedLateFrames += sh.lateFrames
	s.DroppedLatePayloads += sh.latePayloads
	for id, name := range sh.kindNames {
		if sh.sentByKind[id] > 0 {
			s.SentByKind[name] += sh.sentByKind[id]
			s.SentBytesByKind[name] += sh.sentBByKind[id]
			s.SentGroupsByKind[name] += sh.sentGByKind[id]
		}
		if sh.recvByKind[id] > 0 {
			s.RecvByKind[name] += sh.recvByKind[id]
			s.RecvBytesByKind[name] += sh.recvBByKind[id]
			s.RecvGroupsByKind[name] += sh.recvGByKind[id]
		}
	}
}
