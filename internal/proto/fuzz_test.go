package proto_test

import (
	"bytes"
	"reflect"
	"testing"

	"svssba/internal/aba"
	"svssba/internal/baseline"
	"svssba/internal/core"
	"svssba/internal/field"
	"svssba/internal/mwsvss"
	"svssba/internal/proto"
	"svssba/internal/rb"
	"svssba/internal/sim"
	"svssba/internal/svss"
)

// fullCodec is the codec with every protocol message type registered —
// the exact decoder surface a Byzantine sender can feed arbitrary bytes
// into on the live runtime.
func fullCodec() *proto.Codec {
	c := core.NewCodec()
	baseline.RegisterCodec(c)
	return c
}

// seedPayloads is a representative valid message per protocol layer, so
// the fuzzers start from encodings that reach deep into each decoder.
func seedPayloads(t testing.TB) [][]byte {
	t.Helper()
	c := fullCodec()
	tag := proto.Tag{
		Proto:   proto.ProtoMW,
		Session: proto.SessionID{Dealer: 2, Kind: proto.KindCoin, Round: 7, Index: 3},
		MW:      proto.MWKey{Dealer: 2, Moderator: 1, Slot: 1},
		Step:    mwsvss.StepRVal,
		A:       9,
	}
	payloads := []sim.Payload{
		aba.Vote{Step: 1, Round: 4, Value: 1},
		aba.Conf{Round: 4, Mask: 3},
		aba.Decide{Value: 1},
		rb.Msg{Origin: 2, Tag: tag, Value: []byte("v")},
		mwsvss.Echo{MW: proto.MWID{Session: tag.Session, Key: tag.MW}, Vals: []field.Element{field.New(42)}},
		svss.Deal{
			Session: tag.Session,
			RowPts:  []field.Element{field.New(1), field.New(2)},
			ColPts:  []field.Element{field.New(3)},
		},
	}
	var out [][]byte
	for _, p := range payloads {
		b, err := c.Encode(p)
		if err != nil {
			t.Fatalf("seed encode %q: %v", p.Kind(), err)
		}
		out = append(out, b)
	}
	return out
}

// FuzzDecode feeds arbitrary bytes to the full codec — the traffic a
// Byzantine sender controls. Decode must never panic, and anything it
// accepts must re-encode cleanly with the payload's analytic Size()
// matching the marshaled length (the codec's documented contract).
func FuzzDecode(f *testing.F) {
	for _, b := range seedPayloads(f) {
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff})
	f.Add(bytes.Repeat([]byte{0x00}, 64))
	c := fullCodec()
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := c.Decode(b)
		if err != nil {
			return
		}
		enc, err := c.Encode(p)
		if err != nil {
			t.Fatalf("accepted payload %q does not re-encode: %v", p.Kind(), err)
		}
		wantLen := 2 + len(p.Kind()) + p.Size()
		if len(enc) != wantLen {
			t.Fatalf("payload %q: Size()=%d but encoding is %d bytes (want %d total, got %d)",
				p.Kind(), p.Size(), len(enc)-2-len(p.Kind()), wantLen, len(enc))
		}
	})
}

// FuzzRoundTrip checks that decode ∘ encode is the identity on every
// payload the codec accepts: whatever malformed-but-decodable bytes a
// Byzantine sender crafts, the process's view of the message survives a
// wire round trip unchanged.
func FuzzRoundTrip(f *testing.F) {
	for _, b := range seedPayloads(f) {
		f.Add(b)
	}
	c := fullCodec()
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := c.Decode(b)
		if err != nil {
			return
		}
		enc, err := c.Encode(p)
		if err != nil {
			t.Fatalf("re-encode %q: %v", p.Kind(), err)
		}
		p2, err := c.Decode(enc)
		if err != nil {
			t.Fatalf("re-decode %q: %v", p.Kind(), err)
		}
		if p2.Kind() != p.Kind() {
			t.Fatalf("kind changed across round trip: %q -> %q", p.Kind(), p2.Kind())
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("payload %q changed across round trip:\n  first:  %#v\n  second: %#v",
				p.Kind(), p, p2)
		}
	})
}
