// Package exp implements the reproduction experiments E1–E9 of
// DESIGN.md §4. The paper has no tables or figures — it is a theory
// paper — so each experiment operationalizes one of its quantitative
// claims (Theorem 1's properties, the SCC Correctness bound, the t(n−t)
// shunning bound, polynomial message complexity, and the failure modes
// of the prior-work baselines). Each experiment returns a plain-text
// table; cmd/expsweep regenerates them all and bench_test.go wraps them
// as benchmarks.
package exp

import (
	"fmt"

	"svssba"
	"svssba/internal/adversary"
	"svssba/internal/core"
	"svssba/internal/field"
	"svssba/internal/proto"
	"svssba/internal/rb"
	"svssba/internal/sim"
	"svssba/internal/svss"
	"svssba/internal/testutil"
	"svssba/internal/trace"
)

// Scale controls experiment sizes.
type Scale struct {
	// Quick trims process counts and seed counts for CI-speed runs.
	Quick bool
}

func (s Scale) pick(quick, full int) int {
	if s.Quick {
		return quick
	}
	return full
}

// E1 — Theorem 1: agreement, validity and termination at n > 3t across
// fault mixes.
func E1(scale Scale) *trace.Table {
	tb := trace.NewTable(
		"E1 — Theorem 1: agreement/validity/termination at n>3t",
		"n", "t", "fault", "runs", "decided", "agreed", "valid", "mean_rounds", "mean_msgs")

	type cfg struct {
		n     int
		fault svssba.FaultKind
		runs  int
	}
	cases := []cfg{
		{n: 4, fault: "", runs: scale.pick(3, 10)},
		{n: 4, fault: svssba.FaultCrash, runs: scale.pick(3, 10)},
		{n: 4, fault: svssba.FaultVoteFlip, runs: scale.pick(2, 8)},
		{n: 4, fault: svssba.FaultRValLie, runs: scale.pick(2, 8)},
		{n: 7, fault: "", runs: scale.pick(1, 3)},
		{n: 7, fault: svssba.FaultVoteEquivocate, runs: scale.pick(0, 2)},
	}
	for _, c := range cases {
		if c.runs == 0 {
			continue
		}
		t := (c.n - 1) / 3
		decided, agreed, valid := 0, 0, 0
		var rounds, msgs trace.Series
		for seed := 0; seed < c.runs; seed++ {
			rc := svssba.Config{N: c.n, Seed: int64(1000 + seed)}
			if c.fault != "" {
				rc.Faults = []svssba.Fault{{Proc: c.n, Kind: c.fault}}
			}
			res, err := svssba.Run(rc)
			if err != nil {
				continue
			}
			if res.AllDecided {
				decided++
			}
			if res.Agreed {
				agreed++
				valid++ // inputs alternate 0/1, so any binary decision is valid
			}
			rounds.Add(float64(res.MaxRound))
			msgs.Add(float64(res.Messages))
		}
		name := string(c.fault)
		if name == "" {
			name = "none"
		}
		tb.Add(c.n, t, name, c.runs,
			frac(decided, c.runs), frac(agreed, c.runs), frac(valid, c.runs),
			rounds.Mean(), msgs.Mean())
	}
	return tb
}

// E2 — expected rounds: common coin (flat) vs local coin (grows with n)
// vs Ben-Or (needs n > 5t), on split inputs.
func E2(scale Scale) *trace.Table {
	tb := trace.NewTable(
		"E2 — expected voting rounds to decide, split inputs",
		"protocol", "n", "t", "runs", "mean_rounds", "max_rounds", "timeouts")

	run := func(p svssba.Protocol, n, t, runs int, maxSteps int) {
		var rounds trace.Series
		timeouts := 0
		for seed := 0; seed < runs; seed++ {
			res, err := svssba.Run(svssba.Config{
				N: n, T: t, Seed: int64(2000 + seed), Protocol: p, MaxSteps: maxSteps,
			})
			if err != nil || res.TimedOut || !res.AllDecided {
				timeouts++
				continue
			}
			rounds.Add(float64(res.MaxRound))
		}
		tb.Add(string(p), n, t, runs, rounds.Mean(), rounds.Max(), timeouts)
	}

	run(svssba.ProtocolADH, 4, 1, scale.pick(3, 10), 0)
	if !scale.Quick {
		run(svssba.ProtocolADH, 7, 2, 2, 0)
	}
	localNs := []int{4, 7, 10}
	if !scale.Quick {
		localNs = append(localNs, 13)
	}
	for _, n := range localNs {
		run(svssba.ProtocolLocalCoin, n, (n-1)/3, scale.pick(6, 20), 20_000_000)
	}
	// Ben-Or requires n > 5t.
	run(svssba.ProtocolBenOr, 7, 1, scale.pick(6, 20), 20_000_000)
	run(svssba.ProtocolBenOr, 13, 2, scale.pick(4, 12), 20_000_000)
	return tb
}

// E3 — SCC Correctness (Definition 2): empirical Pr[all σ] for each σ.
func E3(scale Scale) *trace.Table {
	tb := trace.NewTable(
		"E3 — shunning common coin distribution (SCC needs >= 1/4 per side)",
		"n", "fault", "runs", "all0", "all1", "split", "shun_events")

	cases := []struct {
		n     int
		fault svssba.FaultKind
		runs  int
	}{
		{n: 4, fault: "", runs: scale.pick(12, 48)},
		{n: 4, fault: svssba.FaultRValLie, runs: scale.pick(6, 24)},
		{n: 7, fault: "", runs: scale.pick(0, 8)},
	}
	for _, c := range cases {
		if c.runs == 0 {
			continue
		}
		all0, all1, split, shuns := 0, 0, 0, 0
		for seed := 0; seed < c.runs; seed++ {
			cc := svssba.CoinConfig{N: c.n, Seed: int64(3000 + seed), Rounds: 1}
			if c.fault != "" {
				cc.Faults = []svssba.Fault{{Proc: c.n, Kind: c.fault}}
			}
			res, err := svssba.RunCoin(cc)
			if err != nil || len(res.RoundResults) == 0 {
				continue
			}
			shuns += len(res.Shuns)
			rr := res.RoundResults[0]
			switch {
			case !rr.Agreed:
				split++
			case rr.Value == 0:
				all0++
			default:
				all1++
			}
		}
		name := string(c.fault)
		if name == "" {
			name = "none"
		}
		tb.Add(c.n, name, c.runs, frac(all0, c.runs), frac(all1, c.runs), split, shuns)
	}
	return tb
}

// sessionRunner drives repeated SVSS sessions over one long-lived
// network, tracking cumulative shun pairs — the substrate for E4 and E8.
type sessionRunner struct {
	n, t     int
	nw       *sim.Network
	stacks   map[int]*core.Stack
	outputs  map[int]map[uint64]svss.Output
	shunPair map[[2]int]bool
}

func newSessionRunner(n, t int, seed int64, liar int, disableDMM bool) *sessionRunner {
	r := &sessionRunner{
		n: n, t: t,
		nw:       sim.NewNetwork(n, t, seed),
		stacks:   make(map[int]*core.Stack, n),
		outputs:  make(map[int]map[uint64]svss.Output),
		shunPair: make(map[[2]int]bool),
	}
	for i := 1; i <= n; i++ {
		pid := i
		st := core.NewStack(sim.ProcID(i), func(j sim.ProcID, _ proto.MWID) {
			r.shunPair[[2]int{pid, int(j)}] = true
		})
		r.outputs[pid] = make(map[uint64]svss.Output)
		st.ConsumeSVSS(proto.KindApp, core.SVSSConsumer{
			ReconComplete: func(_ sim.Context, sid proto.SessionID, out svss.Output) {
				r.outputs[pid][sid.Round] = out
			},
		})
		if disableDMM {
			st.Node.DMM().Disable()
		}
		if pid == liar {
			adversary.Apply(st, adversary.RValLiar(1))
		}
		r.stacks[pid] = st
		// Registration cannot fail: ids are in range and unique.
		_ = r.nw.Register(st.Node)
	}
	return r
}

// honestShunPairs counts (nonfaulty shunner, shunned) pairs — the
// quantity the paper bounds by t(n−t).
func (r *sessionRunner) honestShunPairs(liar int) int {
	count := 0
	for pair := range r.shunPair {
		if pair[0] != liar {
			count++
		}
	}
	return count
}

// session runs one share+reconstruct session and reports how many honest
// processes got a wrong (non-secret or ⊥) output.
func (r *sessionRunner) session(round uint64, dealer int, secret uint64, liar int) (wrong int, ok bool) {
	sid := proto.SessionID{Dealer: sim.ProcID(dealer), Kind: proto.KindApp, Round: round}
	st := r.stacks[dealer]
	if err := r.nw.Inject(sim.ProcID(dealer), func(ctx sim.Context) {
		_ = st.SVSS.Share(ctx, sid, field.New(secret))
	}); err != nil {
		return 0, false
	}
	honest := make([]int, 0, r.n)
	for i := 1; i <= r.n; i++ {
		if i != liar {
			honest = append(honest, i)
		}
	}
	shared := func() bool {
		for _, i := range honest {
			if !r.stacks[i].SVSS.ShareDone(sid) {
				return false
			}
		}
		return true
	}
	if _, err := r.nw.RunUntil(shared, 100_000_000); err != nil || !shared() {
		return 0, false
	}
	for i := 1; i <= r.n; i++ {
		pid := i
		_ = r.nw.Inject(sim.ProcID(pid), func(ctx sim.Context) {
			r.stacks[pid].SVSS.Reconstruct(ctx, sid)
		})
	}
	done := func() bool {
		for _, i := range honest {
			if _, got := r.outputs[i][round]; !got {
				return false
			}
		}
		return true
	}
	if _, err := r.nw.RunUntil(done, 100_000_000); err != nil || !done() {
		return 0, false
	}
	// Drain so late lies surface and detections land before the next
	// session begins.
	if _, err := r.nw.Run(100_000_000); err != nil {
		return 0, false
	}
	for _, i := range honest {
		out := r.outputs[i][round]
		if out.Bottom || out.Value != field.New(secret) {
			wrong++
		}
	}
	return wrong, true
}

// E4 — the shunning bound: a persistent liar can ruin only boundedly
// many sessions; cumulative shun pairs never exceed t(n−t).
func E4(scale Scale) *trace.Table {
	tb := trace.NewTable(
		"E4 — shunning bounds adversarial damage (liar = process 4, n=4, t=1)",
		"session", "wrong_outputs", "cum_shun_pairs", "bound_t(n-t)")
	n, t := 4, 1
	sessions := scale.pick(6, 12)
	r := newSessionRunner(n, t, 77, 4, false)
	bound := t * (n - t)
	for s := 1; s <= sessions; s++ {
		wrong, ok := r.session(uint64(s), 1, uint64(1000+s), 4)
		if !ok {
			tb.Add(s, "stuck", r.honestShunPairs(4), bound)
			break
		}
		tb.Add(s, wrong, r.honestShunPairs(4), bound)
	}
	return tb
}

// E8 — ablation: with the DMM disabled the liar ruins sessions forever;
// with it, damage stops once the liar is shunned.
func E8(scale Scale) *trace.Table {
	tb := trace.NewTable(
		"E8 — DMM ablation: ruined sessions with and without shunning (n=4, liar=4)",
		"sessions", "dmm", "ruined_sessions", "shun_pairs")
	sessions := scale.pick(6, 12)
	for _, disable := range []bool{false, true} {
		r := newSessionRunner(4, 1, 99, 4, disable)
		ruined := 0
		for s := 1; s <= sessions; s++ {
			wrong, ok := r.session(uint64(s), 1, uint64(2000+s), 4)
			if !ok {
				break
			}
			if wrong > 0 {
				ruined++
			}
		}
		mode := "on"
		if disable {
			mode = "off"
		}
		tb.Add(sessions, mode, ruined, r.honestShunPairs(4))
	}
	return tb
}

// E5 — message/byte complexity per primitive versus n, with fitted
// log-log slopes demonstrating polynomial growth.
func E5(scale Scale) *trace.Table {
	tb := trace.NewTable(
		"E5 — messages and bytes per primitive vs n (polynomial efficiency)",
		"primitive", "n", "messages", "bytes")

	var rbNs, rbMsgs []float64
	rbSizes := []int{4, 7, 10, 13}
	if scale.Quick {
		rbSizes = []int{4, 7, 10}
	}
	for _, n := range rbSizes {
		msgs, bytes := measureRB(n)
		tb.Add("reliable-broadcast", n, msgs, bytes)
		rbNs = append(rbNs, float64(n))
		rbMsgs = append(rbMsgs, float64(msgs))
	}

	var svssNs, svssMsgs []float64
	svssSizes := []int{4, 7}
	if !scale.Quick {
		svssSizes = []int{4, 7, 10}
	}
	for _, n := range svssSizes {
		res, err := svssba.RunSVSS(svssba.SVSSConfig{N: n, Seed: 5, Secret: 1})
		if err != nil {
			continue
		}
		tb.Add("svss", n, res.Messages, res.Bytes)
		svssNs = append(svssNs, float64(n))
		svssMsgs = append(svssMsgs, float64(res.Messages))
	}

	coinSizes := []int{4}
	if !scale.Quick {
		coinSizes = []int{4, 7}
	}
	for _, n := range coinSizes {
		res, err := svssba.RunCoin(svssba.CoinConfig{N: n, Seed: 5, Rounds: 1})
		if err != nil {
			continue
		}
		tb.Add("common-coin", n, res.Messages, res.Bytes)
	}

	abaSizes := []int{4}
	if !scale.Quick {
		abaSizes = []int{4, 7}
	}
	for _, n := range abaSizes {
		res, err := svssba.Run(svssba.Config{N: n, Seed: 5})
		if err != nil {
			continue
		}
		tb.Add("agreement(full)", n, res.Messages, res.Bytes)
	}

	tb.Add("slope(rb)", "-", fmt.Sprintf("n^%.2f", trace.LogLogSlope(rbNs, rbMsgs)), "-")
	tb.Add("slope(svss)", "-", fmt.Sprintf("n^%.2f", trace.LogLogSlope(svssNs, svssMsgs)), "-")
	return tb
}

// measureRB runs one reliable broadcast and counts traffic.
func measureRB(n int) (int64, int64) {
	t := (n - 1) / 3
	nw := sim.NewNetwork(n, t, 1)
	accepted := 0
	tag := proto.Tag{Proto: proto.ProtoRB, Step: 1}
	for p := 1; p <= n; p++ {
		id := sim.ProcID(p)
		eng := rb.New(id, func(sim.Context, rb.Accept) { accepted++ })
		var onInit func(sim.Context)
		if id == 1 {
			onInit = func(ctx sim.Context) { eng.Broadcast(ctx, tag, []byte("v")) }
		}
		node := testutil.NewNode(id, onInit, func(ctx sim.Context, m sim.Message) {
			eng.Handle(ctx, m)
		})
		_ = nw.Register(node)
	}
	_, _ = nw.Run(50_000_000)
	st := nw.Stats()
	return st.Sent, st.TotalBytes()
}

// E6 — resilience comparison: the paper's protocol at full corruption
// budget versus the baselines' failure modes.
func E6(scale Scale) *trace.Table {
	tb := trace.NewTable(
		"E6 — resilience: ours at n=3t+1 vs baseline failure modes",
		"protocol", "n", "t", "condition", "runs", "decided", "agreed")

	runs := scale.pick(3, 10)

	// Ours at the optimal bound with a Byzantine process.
	decided, agreed := 0, 0
	for seed := 0; seed < runs; seed++ {
		res, err := svssba.Run(svssba.Config{
			N: 4, Seed: int64(6000 + seed),
			Faults: []svssba.Fault{{Proc: 4, Kind: svssba.FaultVoteEquivocate}},
		})
		if err == nil && res.AllDecided {
			decided++
			if res.Agreed {
				agreed++
			}
		}
	}
	tb.Add("adh", 4, 1, "n=3t+1, byzantine", runs, frac(decided, runs), frac(agreed, runs))

	// Ben-Or within its own bound (n > 5t) works...
	decided, agreed = 0, 0
	for seed := 0; seed < runs; seed++ {
		res, err := svssba.Run(svssba.Config{
			N: 7, T: 1, Seed: int64(6100 + seed), Protocol: svssba.ProtocolBenOr,
		})
		if err == nil && res.AllDecided {
			decided++
			if res.Agreed {
				agreed++
			}
		}
	}
	tb.Add("benor", 7, 1, "n>5t (its bound)", runs, frac(decided, runs), frac(agreed, runs))

	// ...but its resilience is not optimal: at t = floor((n-1)/3) = 2 the
	// protocol's thresholds stall on split inputs with a crash.
	decided, agreed = 0, 0
	for seed := 0; seed < runs; seed++ {
		res, err := svssba.Run(svssba.Config{
			N: 7, T: 2, Seed: int64(6200 + seed), Protocol: svssba.ProtocolBenOr,
			Faults:   []svssba.Fault{{Proc: 7, Kind: svssba.FaultCrash}, {Proc: 6, Kind: svssba.FaultCrash}},
			MaxSteps: 30_000_000,
		})
		if err == nil && res.AllDecided {
			decided++
			if res.Agreed {
				agreed++
			}
		}
	}
	tb.Add("benor", 7, 2, "n=3t+1 (beyond 5t)", runs, frac(decided, runs), frac(agreed, runs))

	// The ε-coin protocol is not almost-surely terminating: stuck-run
	// frequency tracks 1-(1-ε)^rounds.
	for _, eps := range []float64{0.0, 0.25, 1.0} {
		decided = 0
		for seed := 0; seed < runs; seed++ {
			res, err := svssba.Run(svssba.Config{
				N: 4, Seed: int64(6300 + seed), Protocol: svssba.ProtocolEpsCoin,
				Eps: eps, MaxSteps: 30_000_000,
			})
			if err == nil && res.AllDecided {
				decided++
			}
		}
		tb.Add("epscoin", 4, 1, fmt.Sprintf("eps=%.2f", eps), runs, frac(decided, runs), "-")
	}
	return tb
}

// E9 — decision latency in virtual time under random network delays.
func E9(scale Scale) *trace.Table {
	tb := trace.NewTable(
		"E9 — virtual-time latency under exponential delays (n=4)",
		"mean_delay", "runs", "vtime_mean", "vtime_p90", "rounds_mean")
	runs := scale.pick(2, 8)
	for _, mean := range []int64{10, 50, 200} {
		var vt, rounds trace.Series
		for seed := 0; seed < runs; seed++ {
			res, err := svssba.Run(svssba.Config{
				N: 4, Seed: int64(9000 + seed),
				Scheduler: svssba.SchedDelayExp,
				DelayMean: mean,
			})
			if err != nil || !res.AllDecided {
				continue
			}
			vt.Add(float64(res.VirtualTime))
			rounds.Add(float64(res.MaxRound))
		}
		tb.Add(mean, runs, vt.Mean(), vt.Percentile(90), rounds.Mean())
	}
	return tb
}

func frac(hit, total int) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%d/%d", hit, total)
}
