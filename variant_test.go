package svssba_test

import (
	"testing"

	"svssba"
	"svssba/internal/paritycells"
)

// TestWireVariantEquivalence is the proof-of-equivalence for the wire-v2
// declared variant: across the full parity-cell matrix (schedulers ×
// fault behaviours × scales), v1 and v2 runs of the same seed must both
// reach agreement among honest processes. Where the protocol pins the
// outcome — unanimous honest inputs force the decision by validity —
// the decided values must also coincide. Message-level schedules
// necessarily differ (v2 coalesces traffic, so the scheduler draws a
// different delivery sequence), which is exactly why v2 carries its own
// parity digest instead of the byte-identical guardrail.
func TestWireVariantEquivalence(t *testing.T) {
	for _, c := range paritycells.Agreement(false) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			run := func(wire string) *svssba.Result {
				cfg := c.Cfg
				cfg.Wire = wire
				res, err := svssba.Run(cfg)
				if err != nil {
					t.Fatalf("wire %s: %v", wire, err)
				}
				if res.TimedOut {
					t.Fatalf("wire %s: timed out after %d steps", wire, res.Steps)
				}
				if !res.AllDecided || !res.Agreed {
					t.Fatalf("wire %s: decided=%v agreed=%v decisions=%v",
						wire, res.AllDecided, res.Agreed, res.Decisions)
				}
				return res
			}
			v1, v2 := run("v1"), run("v2")

			// Validity pins the outcome when the honest inputs are
			// unanimous; then the two variants must decide identically.
			unanimous, first := true, -1
			faulty := make(map[int]bool, len(c.Cfg.Faults))
			for _, f := range c.Cfg.Faults {
				faulty[f.Proc] = true
			}
			inputs := c.Cfg.Inputs
			if len(inputs) == 0 {
				unanimous = false // default alternating 0/1 inputs
			}
			for i, in := range inputs {
				if faulty[i+1] {
					continue
				}
				if first == -1 {
					first = in
				} else if in != first {
					unanimous = false
				}
			}
			if unanimous && first != -1 {
				if v1.Value != first || v2.Value != first {
					t.Fatalf("validity: unanimous input %d, v1 decided %d, v2 decided %d",
						first, v1.Value, v2.Value)
				}
			}
			if v2.EchoDeduped != 0 {
				// The engines' one-shot guards make honest duplicate
				// echoes impossible; a nonzero count means a guard broke.
				t.Errorf("v2 deduplicated %d echoes (expected 0)", v2.EchoDeduped)
			}
			// Baseline protocols don't use the core stack and ignore Wire.
			adh := c.Cfg.Protocol == "" || c.Cfg.Protocol == svssba.ProtocolADH
			if adh && v2.Steps >= v1.Steps {
				t.Errorf("v2 used %d deliveries, v1 %d — coalescing should reduce deliveries",
					v2.Steps, v1.Steps)
			}
		})
	}
}

// TestWireVariantSVSSEquivalence asserts both variants reconstruct the
// same secret (and detect the same liar) in standalone SVSS sessions.
func TestWireVariantSVSSEquivalence(t *testing.T) {
	cases := []svssba.SVSSConfig{
		{N: 4, Seed: 1, Secret: 7},
		{N: 4, Seed: 2, Secret: 9, Faults: []svssba.Fault{{Proc: 4, Kind: svssba.FaultRValLie}}},
		{N: 7, T: 2, Seed: 3, Secret: 123456},
	}
	for _, base := range cases {
		for _, wire := range []string{"v1", "v2"} {
			cfg := base
			cfg.Wire = wire
			res, err := svssba.RunSVSS(cfg)
			if err != nil {
				t.Fatalf("wire %s: %v", wire, err)
			}
			if res.TimedOut {
				t.Fatalf("wire %s: timed out", wire)
			}
			for pid, out := range res.Outputs {
				if faultyProc(base.Faults, pid) {
					continue
				}
				if out.Bottom && len(base.Faults) == 0 {
					t.Errorf("wire %s: honest process %d output ⊥ with no faults", wire, pid)
				}
				if !out.Bottom && out.Value != base.Secret {
					t.Errorf("wire %s: process %d reconstructed %d, want %d",
						wire, pid, out.Value, base.Secret)
				}
			}
		}
	}
}

// TestWireVariantCoinEquivalence asserts both variants produce agreed
// coin bits every round.
func TestWireVariantCoinEquivalence(t *testing.T) {
	for _, wire := range []string{"v1", "v2"} {
		res, err := svssba.RunCoin(svssba.CoinConfig{N: 4, Seed: 1, Rounds: 2, Wire: wire})
		if err != nil {
			t.Fatalf("wire %s: %v", wire, err)
		}
		if res.TimedOut {
			t.Fatalf("wire %s: timed out", wire)
		}
		if len(res.RoundResults) != 2 {
			t.Fatalf("wire %s: %d rounds completed, want 2", wire, len(res.RoundResults))
		}
		for i, rr := range res.RoundResults {
			if !rr.Agreed {
				t.Errorf("wire %s round %d: coin outputs disagree: %v", wire, i+1, rr.Bits)
			}
		}
	}
}

func faultyProc(faults []svssba.Fault, pid int) bool {
	for _, f := range faults {
		if f.Proc == pid {
			return true
		}
	}
	return false
}
