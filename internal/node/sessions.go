package node

import (
	"fmt"
	"math/rand"

	"svssba/internal/core"
	"svssba/internal/obs"
	"svssba/internal/proto"
	"svssba/internal/sim"
)

// Service mode. A node normally hosts exactly one protocol stack whose
// lifetime is the node's incarnation. With Config.Service set, the node
// instead hosts many concurrent stacks, one per *scope* — an opaque
// uint64 the driver assigns (internal/acs packs a session id and a slot
// into it). Every payload a scoped stack sends is wrapped in a
// proto.Scoped envelope; inbound envelopes route to the scope's stack,
// auto-opening it through the driver on first traffic. Scopes retire
// independently: after each delivery burst the node asks the driver
// which touched scopes are done and releases exactly those stacks,
// keeping a tombstone so late traffic for a finished scope is dropped
// before its inner payload is even decoded.
//
// All driver callbacks run on the node's delivery goroutine — they may
// touch sessions and stacks freely and must not block or call Inject.

// ServiceDriver plugs a multi-session protocol composition into a
// node's delivery loop.
type ServiceDriver interface {
	// Open builds the protocol stack for a new scope: create it, wire
	// handlers/observers, but send nothing — the node binds the stack and
	// runs its Init before traffic can flow. Returning nil rejects the
	// scope permanently (the node keeps a tombstone and drops its
	// traffic).
	Open(s *Session) *core.Stack
	// Opened runs after the scope's stack is bound and initialized;
	// first sends (e.g. a proposal broadcast) belong here.
	Opened(s *Session)
	// MayRetire reports whether a touched scope's stack can be released.
	// Called after each delivery burst for every scope that saw traffic
	// in it.
	MayRetire(s *Session) bool
}

// Session is one scoped protocol stack hosted by a service-mode node.
// All methods are delivery-goroutine only.
type Session struct {
	scope    uint64
	n        *Node
	ctx      *scopedCtx
	stack    *core.Stack
	touched  bool
	retired  bool
	rejected bool
}

// Scope returns the session's scope id.
func (s *Session) Scope() uint64 { return s.scope }

// Stack returns the session's protocol stack (nil once retired or when
// the driver rejected the scope).
func (s *Session) Stack() *core.Stack { return s.stack }

// Ctx returns the session's scoped send context: everything sent
// through it crosses the wire inside a proto.Scoped envelope carrying
// this session's scope.
func (s *Session) Ctx() sim.Context { return s.ctx }

// Retired reports whether the scope's stack was released.
func (s *Session) Retired() bool { return s.retired }

// Touch marks the session for the end-of-burst retirement check. The
// node touches a session automatically when delivering to it; a driver
// must Touch any *other* session it mutates during a callback (e.g.
// proposing into a sibling scope), or that scope's retirement waits for
// its next inbound traffic.
func (s *Session) Touch() {
	if s.touched || s.retired {
		return
	}
	s.touched = true
	s.n.touchedSessions = append(s.n.touchedSessions, s)
}

// scopedCtx wraps the node's runCtx so every send is wrapped in the
// session's scope envelope. Batching and burst coalescing compose
// underneath: envelopes from many scopes share one outbox group (they
// all carry the proto.KindScoped kind) and leave as one batch frame.
type scopedCtx struct {
	scope uint64
	rc    *runCtx
}

var _ sim.Context = (*scopedCtx)(nil)

func (c *scopedCtx) N() int           { return c.rc.N() }
func (c *scopedCtx) T() int           { return c.rc.T() }
func (c *scopedCtx) Rand() *rand.Rand { return c.rc.Rand() }
func (c *scopedCtx) Now() int64       { return c.rc.Now() }

func (c *scopedCtx) Send(to sim.ProcID, p sim.Payload) {
	m, ok := p.(proto.Marshaler)
	if !ok {
		n := c.rc.n
		n.noteErr(fmt.Errorf("node %d: scope %d: payload %q is not wire-encodable", n.cfg.ID, c.scope, p.Kind()))
		return
	}
	c.rc.Send(to, proto.Scoped{Scope: c.scope, Inner: m})
}

// OpenScope finds or creates the session for scope, driving the
// ServiceDriver's Open/Opened on a miss. Delivery goroutine only —
// drivers call it from callbacks, everyone else goes through Inject.
func (n *Node) OpenScope(scope uint64) *Session {
	if s, ok := n.sessions[scope]; ok {
		return s
	}
	s := &Session{scope: scope, n: n, ctx: &scopedCtx{scope: scope, rc: n.runC}}
	n.sessions[scope] = s
	st := n.cfg.Service.Open(s)
	if st == nil {
		s.rejected = true
		s.retired = true
		n.scopesRetired.Add(1)
		return s
	}
	s.stack = st
	if h := n.obsHooks(scope); h != nil {
		st.SetTraceHooks(h)
	}
	n.scopesLive.Add(1)
	n.cfg.Trace.Record(obs.KindScopeOpen, scope, 0, 0, 0, 0)
	st.Node.Init(s.ctx)
	s.Touch()
	n.cfg.Service.Opened(s)
	return s
}

// Inject runs fn on the node's delivery goroutine, between bursts, with
// a full outbox flush and retirement pass after it — the only safe way
// into driver and session state from outside. It blocks until the loop
// accepts fn (not until fn ran) and fails once the node stops. fn must
// not call Inject (the loop runs one function at a time).
func (n *Node) Inject(fn func()) error {
	n.mu.Lock()
	if n.state != stateRunning || n.injectC == nil {
		n.mu.Unlock()
		return fmt.Errorf("node %d: not running", n.cfg.ID)
	}
	stop, inj := n.stop, n.injectC
	n.mu.Unlock()
	select {
	case inj <- fn:
		return nil
	case <-stop:
		return fmt.Errorf("node %d: stopped", n.cfg.ID)
	}
}

// deliverScoped routes one decoded batch element (or single-frame
// payload) in service mode: check the envelope, check the scope is
// live, and only then pay for the inner decode.
func (n *Node) deliverScoped(ctx *runCtx, from sim.ProcID, p sim.Payload) {
	sc, ok := p.(proto.Scoped)
	if !ok {
		n.noteDecodeErr(fmt.Errorf("node %d: from %d: unscoped payload %q in service mode", n.cfg.ID, from, p.Kind()))
		return
	}
	sess := n.sessions[sc.Scope]
	if sess == nil {
		sess = n.OpenScope(sc.Scope)
	}
	if sess.retired {
		n.countLatePayload()
		return
	}
	inner, err := n.codec.Decode(sc.Raw)
	if err != nil {
		n.noteDecodeErr(fmt.Errorf("node %d: from %d: scope %d: %w", n.cfg.ID, from, sc.Scope, err))
		return
	}
	if _, nested := inner.(proto.Scoped); nested {
		n.noteDecodeErr(fmt.Errorf("node %d: from %d: nested scope envelope in scope %d", n.cfg.ID, from, sc.Scope))
		return
	}
	n.countRecvPayload(inner.Kind(), standaloneSize(sc))
	sess.Touch()
	sess.stack.Node.Deliver(sess.ctx, sim.Message{
		From:    from,
		To:      n.cfg.ID,
		Payload: inner,
		SentAt:  ctx.Now(),
	})
}

// processScopeRetirements ends a service-mode burst: every session the
// burst touched is offered to the driver for retirement. Retiring keeps
// the Session as a tombstone (late traffic for the scope must still be
// counted and dropped) but releases the stack.
func (n *Node) processScopeRetirements() {
	drv := n.cfg.Service
	// Index loop: MayRetire may Touch further sessions (e.g. a completed
	// composition touching its siblings), growing the slice mid-pass.
	for i := 0; i < len(n.touchedSessions); i++ {
		s := n.touchedSessions[i]
		s.touched = false
		if s.retired || s.stack == nil {
			continue
		}
		if drv.MayRetire(s) {
			s.stack.Retire()
			s.stack = nil
			s.retired = true
			n.scopesLive.Add(-1)
			n.scopesRetired.Add(1)
			n.cfg.Trace.Record(obs.KindScopeRetire, s.scope, 0, 0, 0, 0)
		}
	}
	n.touchedSessions = n.touchedSessions[:0]
}

// ServiceCounts aggregates a service-mode node's session state.
type ServiceCounts struct {
	// Live and Retired count scopes ever opened this incarnation
	// (rejected scopes count as Retired).
	Live, Retired int
	// State sums StateCounts over the live stacks — the number that must
	// return to baseline when sessions retire.
	State core.StateCounts
}

// ServiceCounts snapshots the session table. The snapshot runs on the
// delivery goroutine (via Inject) so it is consistent with a burst
// boundary; once the node stopped it reads directly. Returns false on a
// non-service node.
func (n *Node) ServiceCounts() (ServiceCounts, bool) {
	if n.cfg.Service == nil {
		return ServiceCounts{}, false
	}
	var out ServiceCounts
	done := make(chan struct{})
	if err := n.Inject(func() {
		out = n.serviceCountsNow()
		close(done)
	}); err != nil {
		// Not running: wait out the delivery goroutine, then read directly.
		n.mu.Lock()
		nd := n.done
		n.mu.Unlock()
		if nd != nil {
			<-nd
		}
		return n.serviceCountsNow(), true
	}
	<-done
	return out, true
}

// serviceCountsNow sums the session table (delivery goroutine, or
// stopped node).
func (n *Node) serviceCountsNow() ServiceCounts {
	var out ServiceCounts
	for _, s := range n.sessions {
		if s.retired {
			out.Retired++
			continue
		}
		out.Live++
		if s.stack != nil {
			out.State.Add(s.stack.StateCounts())
		}
	}
	return out
}

// countRecvFrameOnly records one inbound physical frame whose payloads
// are counted individually (the service-mode path, where each envelope
// is inspected before its inner payload exists).
func (n *Node) countRecvFrameOnly(frameBytes int) {
	n.smu.Lock()
	n.recvF++
	n.recvFB += int64(frameBytes)
	n.smu.Unlock()
}

// countRecvPayload records one logical inbound payload under kind.
func (n *Node) countRecvPayload(kind string, size int) {
	n.smu.Lock()
	n.recv++
	n.recvB += int64(size)
	id := n.kindIDLocked(kind)
	n.recvByKind[id]++
	n.recvBByKind[id] += int64(size)
	n.recvGByKind[id]++
	n.smu.Unlock()
}

// countLateFrame records a frame dropped whole because the node (single
// mode) already retired. Late frames are not counted as received — they
// were never processed — only as dropped.
func (n *Node) countLateFrame() {
	n.smu.Lock()
	n.lateFrames++
	n.smu.Unlock()
}

// countLatePayload records a scoped payload dropped because its scope
// already retired (service mode).
func (n *Node) countLatePayload() {
	n.smu.Lock()
	n.latePayloads++
	n.smu.Unlock()
}

// countOversized records an outbound payload dropped for exceeding the
// frame cap.
func (n *Node) countOversized() {
	n.smu.Lock()
	n.oversizedDropped++
	n.smu.Unlock()
}
