package sim

// Coalescer is the per-destination coalescing buffer behind every
// batching send path: values parked for the same destination within one
// delivery step flush together, destinations flush in first-touch order
// (a deterministic function of the emission order, which the
// batched-vs-unbatched parity contract relies on). LiveNet coalesces
// Messages with it and the node runtime coalesces payloads; both share
// this one implementation so the ordering invariant lives in one place.
// Not safe for concurrent use — each sender owns its own Coalescer.
type Coalescer[T any] struct {
	pending [][]T    // indexed by destination
	touched []ProcID // destinations with pending values, first-touch order
}

// NewCoalescer returns a buffer for destinations 1..n.
func NewCoalescer[T any](n int) *Coalescer[T] {
	return &Coalescer[T]{pending: make([][]T, n+1)}
}

// Add parks a value for destination to.
func (c *Coalescer[T]) Add(to ProcID, v T) {
	if len(c.pending[to]) == 0 {
		c.touched = append(c.touched, to)
	}
	c.pending[to] = append(c.pending[to], v)
}

// Flush ships every destination's group through send, in first-touch
// order, and resets the buffer. The group slices are handed off (not
// reused), since frames own their buffers once on a transport.
func (c *Coalescer[T]) Flush(send func(to ProcID, vs []T)) {
	if len(c.touched) == 0 {
		return
	}
	for _, to := range c.touched {
		vs := c.pending[to]
		c.pending[to] = nil
		send(to, vs)
	}
	c.touched = c.touched[:0]
}
