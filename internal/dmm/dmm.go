// Package dmm implements the paper's Detection and Message Management
// protocol (DMM, §3.3). One DMM instance runs per process, indefinitely,
// concurrently with all VSS invocations. It decides, for every incoming
// protocol event, whether to
//
//   - discard it (sender is in D_i, the set of processes i knows to be
//     faulty — DMM step 4),
//   - delay it (the sender has an unresolved ACK_i/DEAL_i expectation from
//     a session that precedes the event's session in the →_i partial
//     order — DMM step 5), or
//   - forward it to the protocol.
//
// Expectations are created by MW-SVSS share steps 3 and 7, resolved by the
// reconstruct-phase value broadcasts (DMM steps 2 and 3), and removed
// wholesale by share step 8. A broadcast that contradicts an expectation
// adds its sender to D_i — this is how processes come to shun faulty
// processes, possibly without ever being aware of it (a process whose
// expectation is never resolved simply keeps delaying the sender's newer
// sessions forever).
//
// The →_i partial order is maintained exactly as defined in §2: session a
// precedes session b at process i iff i completed the reconstruct protocol
// of a before it began the share protocol of b. Begin/complete events are
// stamped with a per-process logical clock.
package dmm

import (
	"fmt"

	"svssba/internal/field"
	"svssba/internal/proto"
	"svssba/internal/sim"
)

// Source says which expectation array a tuple lives in.
type Source uint8

// Expectation sources.
const (
	// SourceACK marks tuples of ACK_i: i is the MW dealer of the session
	// and expects Sender to broadcast "f_Target(Sender) = Value" during
	// reconstruction (added by share step 7).
	SourceACK Source = iota + 1
	// SourceDEAL marks tuples of DEAL_i: i expects Sender to broadcast
	// "f_i(Sender) = Value" during reconstruction of the session (added by
	// share step 3).
	SourceDEAL
)

// Expectation is one tuple of ACK_i or DEAL_i in the unified shape
// (sender, target polynomial index, session, batch slot, value). Slot
// distinguishes the secrets of a batched dealing: each slot carries an
// independent polynomial, reconstructs independently, and therefore
// keeps its own expectation tuples (slot 0 for classic single-secret
// sessions).
type Expectation struct {
	Sender  sim.ProcID
	Target  sim.ProcID
	Session proto.MWID
	Slot    uint16
	Value   field.Element
	Source  Source
}

func (e Expectation) String() string {
	src := "ACK"
	if e.Source == SourceDEAL {
		src = "DEAL"
	}
	return fmt.Sprintf("%s{%d->f_%d@%s#%d=%v}", src, e.Sender, e.Target, e.Session, e.Slot, e.Value)
}

// expectKey names one expectation entry. Batched sessions keep ALL
// their slots inside one entry (a value vector plus a pending bitmap),
// so installing a K-slot dealing's expectations costs one map insert,
// not K — the point of batching is to pay the quorum bookkeeping once
// per dealing, and the expectation store must not reintroduce the
// per-slot cost through the back door.
type expectKey struct {
	sender  sim.ProcID
	target  sim.ProcID
	session proto.MWID
	source  Source
}

// expectEntry holds the per-slot expected values of one key. pending
// marks slots that are installed and not yet resolved; npend counts
// them so entry removal is O(1) to detect.
type expectEntry struct {
	vals    []field.Element
	pending []bool
	npend   int
}

func (en *expectEntry) has(s int) bool { return s < len(en.pending) && en.pending[s] }

func (en *expectEntry) set(s int, v field.Element) {
	for len(en.pending) <= s {
		en.pending = append(en.pending, false)
		en.vals = append(en.vals, 0)
	}
	en.vals[s] = v
	en.pending[s] = true
	en.npend++
}

// EventClass distinguishes parked event payload shapes for the host.
type EventClass uint8

// Event classes.
const (
	// ClassDirect is a point-to-point protocol message.
	ClassDirect EventClass = iota + 1
	// ClassBroadcast is an RB-accepted broadcast.
	ClassBroadcast
)

// Event is a filterable protocol event. From is the sender (direct) or
// broadcast origin; Ref is the VSS session the event belongs to. The
// remaining fields are opaque to the DMM and interpreted by the host when
// the event is forwarded or released.
type Event struct {
	Class  EventClass
	From   sim.ProcID
	Ref    proto.MWID
	Msg    sim.Message // ClassDirect
	Tag    proto.Tag   // ClassBroadcast
	Value  []byte      // ClassBroadcast
	parkAt int64
}

// Action is the filtering decision for an event.
type Action uint8

// Filtering decisions.
const (
	// Forward delivers the event to the protocol now.
	Forward Action = iota + 1
	// Parked holds the event inside the DMM until it stops being delayed.
	Parked
	// Discarded drops the event permanently (sender in D_i).
	Discarded
)

// ShunFunc observes additions to D_i (for metrics and tests).
type ShunFunc func(detected sim.ProcID, session proto.MWID)

// DMM is the per-process detection and message management state.
type DMM struct {
	self    sim.ProcID
	clock   int64
	began   map[proto.MWID]int64
	redone  map[proto.MWID]int64
	faulty  map[sim.ProcID]bool
	expect  map[expectKey]*expectEntry
	tuples  int
	perProc map[sim.ProcID]map[expectKey]struct{}
	// staleBySender indexes, per sender, the completed-reconstruct
	// session slots that still have pending expectations (with their
	// completion stamps). The delay predicate of Filter only involves
	// stale slots, which are empty in fault-free runs, so indexing
	// them keeps filtering O(1) on the hot path. Staleness is per slot:
	// a batched session reconstructs slot by slot, and only the tuples
	// of an actually-reconstructed slot may delay a sender — marking
	// the whole batch stale on the first slot's completion would delay
	// honest senders on slots nobody has revealed yet.
	staleBySender map[sim.ProcID]map[slotRef]int64
	// redoneBySession stamps the slots each session has completed
	// reconstruction of (per-slot idempotence for
	// CompleteReconstructSlot, and the install-after-completion check
	// in Expect — the session lookup is one map access for a whole
	// batch install).
	redoneBySession map[proto.MWID]map[uint16]int64
	// keysBySession indexes live expectation keys per session (all
	// slots) so step 8 (DropDealExpectations) touches only its own
	// session instead of sweeping every pending expectation in the
	// process.
	keysBySession map[proto.MWID]map[expectKey]struct{}
	parked        []Event
	onShun        ShunFunc
	disabled      bool

	// Detections counts D_i additions; Resolved counts matched
	// expectations; Contradictions counts mismatched broadcasts.
	Detections     int
	Resolved       int
	Contradictions int
}

// slotRef names one batch slot of one session.
type slotRef struct {
	session proto.MWID
	slot    uint16
}

// New returns the DMM protocol state for process self.
func New(self sim.ProcID, onShun ShunFunc) *DMM {
	return &DMM{
		self:            self,
		began:           make(map[proto.MWID]int64),
		redone:          make(map[proto.MWID]int64),
		faulty:          make(map[sim.ProcID]bool),
		expect:          make(map[expectKey]*expectEntry),
		perProc:         make(map[sim.ProcID]map[expectKey]struct{}),
		staleBySender:   make(map[sim.ProcID]map[slotRef]int64),
		redoneBySession: make(map[proto.MWID]map[uint16]int64),
		keysBySession:   make(map[proto.MWID]map[expectKey]struct{}),
		onShun:          onShun,
	}
}

// Self returns the owning process id.
func (d *DMM) Self() sim.ProcID { return d.self }

// tick advances the local logical clock.
func (d *DMM) tick() int64 {
	d.clock++
	return d.clock
}

// BeginShare stamps the moment i begins the share protocol of a session
// (first local participation). Idempotent.
func (d *DMM) BeginShare(ref proto.MWID) {
	if _, ok := d.began[ref]; !ok {
		d.began[ref] = d.tick()
	}
}

// CompleteReconstruct stamps the moment i completes the reconstruct
// protocol of a session (all slots at once — the session-level entry
// used by hosts that treat the session as one unit). Idempotent.
func (d *DMM) CompleteReconstruct(ref proto.MWID) {
	// Sweep every slot that still has a pending expectation, then slot 0
	// (classic single-secret sessions may have resolved all tuples
	// already but must still stamp the →_i completion).
	seen := map[uint16]bool{}
	for k := range d.keysBySession[ref] {
		en := d.expect[k]
		if en == nil {
			continue
		}
		for s, p := range en.pending {
			if p && !seen[uint16(s)] {
				seen[uint16(s)] = true
				d.CompleteReconstructSlot(ref, uint16(s))
			}
		}
	}
	if !seen[0] {
		d.CompleteReconstructSlot(ref, 0)
	}
}

// CompleteReconstructSlot stamps the moment i completes the reconstruct
// protocol of one batch slot of a session. The session's →_i completion
// stamp is taken at the first slot to finish; staleness is tracked per
// slot. Idempotent per slot.
func (d *DMM) CompleteReconstructSlot(ref proto.MWID, slot uint16) {
	m, ok := d.redoneBySession[ref]
	if !ok {
		m = make(map[uint16]int64)
		d.redoneBySession[ref] = m
	}
	if _, done := m[slot]; done {
		return
	}
	stamp := d.tick()
	m[slot] = stamp
	if _, ok := d.redone[ref]; !ok {
		d.redone[ref] = stamp
	}
	// Any expectations still pending in this slot are now stale: the
	// senders' newer sessions must be delayed (DMM step 5).
	sr := slotRef{ref, slot}
	for k := range d.keysBySession[ref] {
		if en := d.expect[k]; en != nil && en.has(int(slot)) {
			d.addStale(k.sender, sr, stamp)
		}
	}
}

func (d *DMM) addStale(sender sim.ProcID, ref slotRef, stamp int64) {
	m, ok := d.staleBySender[sender]
	if !ok {
		m = make(map[slotRef]int64)
		d.staleBySender[sender] = m
	}
	m[ref] = stamp
}

// maybeClearStale drops the sender's stale marker for the given slot
// once no pending expectation from them remains in it. The scan over
// the sender's keys only runs when a marker exists, which requires a
// completed reconstruction with unresolved tuples — never in fault-free
// runs, so the hot path stays O(1).
func (d *DMM) maybeClearStale(sender sim.ProcID, ref slotRef) {
	m, ok := d.staleBySender[sender]
	if !ok {
		return
	}
	if _, ok := m[ref]; !ok {
		return
	}
	for k := range d.perProc[sender] {
		if k.session != ref.session {
			continue
		}
		if en := d.expect[k]; en != nil && en.has(int(ref.slot)) {
			return
		}
	}
	delete(m, ref)
	if len(m) == 0 {
		delete(d.staleBySender, sender)
	}
}

// Precedes reports a →_i b: i completed reconstruct of a before beginning
// share of b (paper §2).
func (d *DMM) Precedes(a, b proto.MWID) bool {
	ra, ok := d.redone[a]
	if !ok {
		return false
	}
	bb, ok := d.began[b]
	if !ok {
		// b has not begun; processing an event of b now would begin it
		// now, which is after every stamped completion.
		return true
	}
	return ra < bb
}

// IsFaulty reports whether j is in D_i.
func (d *DMM) IsFaulty(j sim.ProcID) bool { return !d.disabled && d.faulty[j] }

// FaultySet returns a copy of D_i.
func (d *DMM) FaultySet() []sim.ProcID {
	out := make([]sim.ProcID, 0, len(d.faulty))
	for j := range d.faulty {
		out = append(out, j)
	}
	return out
}

// markFaulty adds j to D_i (DMM steps 2/3, mismatch branch).
func (d *DMM) markFaulty(j sim.ProcID, session proto.MWID) {
	if d.faulty[j] {
		return
	}
	d.faulty[j] = true
	d.Detections++
	if d.onShun != nil {
		d.onShun(j, session)
	}
}

// entry returns (creating and indexing if needed) the expectation entry
// for k.
func (d *DMM) entry(k expectKey) *expectEntry {
	en, ok := d.expect[k]
	if ok {
		return en
	}
	en = &expectEntry{}
	d.expect[k] = en
	m, ok := d.perProc[k.sender]
	if !ok {
		m = make(map[expectKey]struct{})
		d.perProc[k.sender] = m
	}
	m[k] = struct{}{}
	ks, ok := d.keysBySession[k.session]
	if !ok {
		ks = make(map[expectKey]struct{})
		d.keysBySession[k.session] = ks
	}
	ks[k] = struct{}{}
	return en
}

// Expect installs one expectation tuple (share steps 3 and 7). A
// duplicate (same key and slot, still pending) keeps the first value.
func (d *DMM) Expect(e Expectation) {
	k := expectKey{sender: e.Sender, target: e.Target, session: e.Session, source: e.Source}
	en := d.entry(k)
	if en.has(int(e.Slot)) {
		return
	}
	en.set(int(e.Slot), e.Value)
	d.tuples++
	if m := d.redoneBySession[e.Session]; m != nil {
		if stamp, done := m[e.Slot]; done {
			d.addStale(e.Sender, slotRef{e.Session, e.Slot}, stamp)
		}
	}
}

// ExpectVec installs the expectation tuples of a whole batched dealing
// in one shot: vals[s] is the value Sender must broadcast for slot s
// during reconstruction. Equivalent to K calls of Expect but pays the
// index bookkeeping once — this is on the per-(pair, dealing) hot path
// of share steps 3 and 7, where per-slot map traffic would scale the
// quorum machinery's cost right back up with the batch width.
func (d *DMM) ExpectVec(sender, target sim.ProcID, session proto.MWID, source Source, vals []field.Element) {
	k := expectKey{sender: sender, target: target, session: session, source: source}
	en := d.entry(k)
	redone := d.redoneBySession[session]
	for s, v := range vals {
		if en.has(s) {
			continue
		}
		en.set(s, v)
		d.tuples++
		if redone != nil {
			if stamp, done := redone[uint16(s)]; done {
				d.addStale(sender, slotRef{session, uint16(s)}, stamp)
			}
		}
	}
}

// DropDealExpectations removes every DEAL_i tuple of the given session
// (share step 8: i is not in the moderator's set M̂, so nobody will ever
// broadcast shares of f_i for this session). Only the session's own key
// index is swept — this runs once per MW sub-instance, so a sweep of
// the process-wide expectation set here would be quadratic overall.
func (d *DMM) DropDealExpectations(session proto.MWID) {
	for k := range d.keysBySession[session] {
		if k.source == SourceDEAL {
			d.removeEntry(k)
		}
	}
}

// removeEntry drops a whole expectation entry (every pending slot) and
// clears any stale markers its slots were holding up.
func (d *DMM) removeEntry(k expectKey) {
	en, ok := d.expect[k]
	if !ok {
		return
	}
	delete(d.expect, k)
	d.tuples -= en.npend
	if m, ok := d.perProc[k.sender]; ok {
		delete(m, k)
		if len(m) == 0 {
			delete(d.perProc, k.sender)
		}
	}
	if ks, ok := d.keysBySession[k.session]; ok {
		delete(ks, k)
		if len(ks) == 0 {
			delete(d.keysBySession, k.session)
		}
	}
	if en.npend > 0 && len(d.staleBySender[k.sender]) > 0 {
		for s, p := range en.pending {
			if p {
				d.maybeClearStale(k.sender, slotRef{k.session, uint16(s)})
			}
		}
	}
}

// resolveSlot marks one tuple of en resolved and removes the entry once
// nothing in it is pending.
func (d *DMM) resolveSlot(k expectKey, en *expectEntry, s int) {
	en.pending[s] = false
	en.npend--
	d.tuples--
	d.maybeClearStale(k.sender, slotRef{k.session, uint16(s)})
	if en.npend == 0 {
		d.removeEntry(k)
	}
}

// Disable turns the DMM into a pass-through (no detection, no delaying,
// no discarding) — the ablation mode of experiment E8, which shows that
// without shunning the adversary can keep ruining sessions forever.
func (d *DMM) Disable() { d.disabled = true }

// Reset drops every expectation, session stamp and parked event,
// keeping only the detection counters. Used when the owning stack
// retires (no further events will be filtered).
func (d *DMM) Reset() {
	clear(d.began)
	clear(d.redone)
	clear(d.faulty)
	clear(d.expect)
	d.tuples = 0
	clear(d.perProc)
	clear(d.staleBySender)
	clear(d.redoneBySession)
	clear(d.keysBySession)
	d.parked = nil
}

// ObserveValueBroadcast runs DMM steps 2 and 3 on a reconstruct-phase
// value broadcast: origin RB-broadcast "f_target(origin) = value" for one
// batch slot of the given session. Matching expectations are resolved; a
// contradiction adds origin to D_i. Runs unconditionally on receipt
// (resolution is DMM bookkeeping, not protocol action, and must not
// itself be delayed).
func (d *DMM) ObserveValueBroadcast(origin sim.ProcID, session proto.MWID, target sim.ProcID, slot uint16, value field.Element) {
	if d.disabled {
		return
	}
	for _, src := range [2]Source{SourceACK, SourceDEAL} {
		k := expectKey{sender: origin, target: target, session: session, source: src}
		en, ok := d.expect[k]
		if !ok || !en.has(int(slot)) {
			continue
		}
		if en.vals[slot] == value {
			d.Resolved++
			d.resolveSlot(k, en, int(slot))
		} else {
			d.Contradictions++
			d.markFaulty(origin, session)
		}
	}
}

// PendingFrom reports whether any expectation from j is outstanding.
func (d *DMM) PendingFrom(j sim.ProcID) bool {
	return len(d.perProc[j]) > 0
}

// PendingCount returns the number of outstanding expectation tuples
// (per slot — a batched entry counts once per pending slot).
func (d *DMM) PendingCount() int { return d.tuples }

// StaleExpectations returns expectations whose session slot already
// completed reconstruction locally — each is an implicit shun in
// progress (the sender's newer sessions are being delayed indefinitely).
func (d *DMM) StaleExpectations() []Expectation {
	var out []Expectation
	for k, en := range d.expect {
		redone := d.redoneBySession[k.session]
		if redone == nil {
			continue
		}
		for s, p := range en.pending {
			if !p {
				continue
			}
			if _, done := redone[uint16(s)]; done {
				out = append(out, Expectation{
					Sender: k.sender, Target: k.target, Session: k.session,
					Slot: uint16(s), Value: en.vals[s], Source: k.source,
				})
			}
		}
	}
	return out
}

// shouldDelay implements DMM step 5: delay an event of session ref from j
// if some expectation from j belongs to a session that →_i-precedes ref.
// Only sessions that completed reconstruction can precede anything, and
// those are indexed in staleBySender, so the common case is O(1).
func (d *DMM) shouldDelay(j sim.ProcID, ref proto.MWID) bool {
	stale := d.staleBySender[j]
	if len(stale) == 0 {
		return false
	}
	begin, begun := d.began[ref]
	for _, stamp := range stale {
		if !begun || stamp < begin {
			return true
		}
	}
	return false
}

// Filter decides an event's fate; Parked events are held internally and
// surface later through TakeReady.
func (d *DMM) Filter(ev Event) Action {
	if d.disabled {
		return Forward
	}
	if d.faulty[ev.From] {
		return Discarded
	}
	if d.shouldDelay(ev.From, ev.Ref) {
		ev.parkAt = d.tick()
		d.parked = append(d.parked, ev)
		return Parked
	}
	return Forward
}

// TakeReady returns parked events that are no longer delayed, in park
// order. Events from processes meanwhile added to D_i are discarded.
// Hosts call this after every delivery so releases happen promptly.
func (d *DMM) TakeReady() []Event {
	if len(d.parked) == 0 {
		return nil
	}
	var ready []Event
	kept := d.parked[:0]
	for _, ev := range d.parked {
		switch {
		case d.faulty[ev.From]:
			// drop
		case d.shouldDelay(ev.From, ev.Ref):
			kept = append(kept, ev)
		default:
			ready = append(ready, ev)
		}
	}
	d.parked = kept
	return ready
}

// ParkedCount returns how many events are currently delayed.
func (d *DMM) ParkedCount() int { return len(d.parked) }

// Sessioned is implemented by direct protocol payloads that belong to a
// VSS session; the host uses it to route them through the DMM filter.
type Sessioned interface {
	SessionRef() proto.MWID
}
