package rb

import (
	"math/rand"
	"testing"

	"svssba/internal/proto"
	"svssba/internal/sim"
)

// benchCtx is a sim.Context that discards sends: the benchmarks below
// measure the per-delivery state transition, not the send path.
type benchCtx struct {
	n, t int
	rnd  *rand.Rand
}

func (c benchCtx) Send(sim.ProcID, sim.Payload) {}
func (c benchCtx) N() int                       { return c.n }
func (c benchCtx) T() int                       { return c.t }
func (c benchCtx) Now() int64                   { return 0 }
func (c benchCtx) Rand() *rand.Rand             { return c.rnd }

func benchTags(w int) []proto.Tag {
	tags := make([]proto.Tag, w)
	for i := range tags {
		tags[i] = proto.Tag{Proto: proto.ProtoRB, Step: 1, A: uint32(i)}
	}
	return tags
}

// BenchmarkRBHandle measures the per-delivery cost of the RB echo path
// — the single hottest code path in the stack (every broadcast costs
// ~n² of these). Two variants:
//
//   - count: a fresh echo (first from its sender) lands in a live
//     instance's vote state, below every threshold. The engine resets
//     each time the tag window recycles, so the steady state exercises
//     slab-slot and interned-id reuse. The warm path must be
//     allocation-free.
//   - accepted: a late echo of the storm tail hits an instance that
//     already accepted and is dropped at the door (the pruning path).
func BenchmarkRBHandle(b *testing.B) {
	const n, t, w = 7, 2, 1024
	// Box the context once: the engines take an interface, and a fresh
	// box per call would charge the benchmark's own conversion to the
	// measured path.
	var ctx sim.Context = benchCtx{n: n, t: t, rnd: rand.New(rand.NewSource(1))}
	tags := benchTags(w)
	value := []byte("echo-value")

	b.Run("count", func(b *testing.B) {
		e := New(1, nil)
		// Two distinct senders per tag stay below the t+1 amplification
		// threshold, so no instance ever sends or accepts.
		msgs := make([]sim.Message, 2*w)
		for i := range msgs {
			msgs[i] = sim.Message{
				From:    sim.ProcID(2 + i%2),
				To:      1,
				Payload: Msg{Origin: 2, Tag: tags[i/2], Value: value},
			}
		}
		// Warm one full window so slab, table and value copies exist.
		for i := range msgs {
			e.Handle(ctx, msgs[i])
		}
		e.Reset()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := i % len(msgs)
			if j == 0 && i > 0 {
				e.Reset()
			}
			e.Handle(ctx, msgs[j])
		}
	})

	b.Run("accepted", func(b *testing.B) {
		e := New(1, nil)
		// Drive every instance to acceptance (n−t matching echoes)...
		for _, tag := range tags {
			for s := 2; s <= 2+(n-t)-1; s++ {
				e.Handle(ctx, sim.Message{
					From:    sim.ProcID(s),
					To:      1,
					Payload: Msg{Origin: 2, Tag: tag, Value: value},
				})
			}
		}
		// ...then measure the storm tail: late echoes dropped on arrival.
		msgs := make([]sim.Message, w)
		for i := range msgs {
			msgs[i] = sim.Message{
				From:    7,
				To:      1,
				Payload: Msg{Origin: 2, Tag: tags[i], Value: value},
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Handle(ctx, msgs[i%w])
		}
	})
}
