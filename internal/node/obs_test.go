package node_test

import (
	"sync"
	"testing"
	"time"

	"svssba/internal/core"
	"svssba/internal/node"
	"svssba/internal/obs"
	"svssba/internal/sim"
	"svssba/internal/transport"
)

// TestMeshClusterWithObservability runs the real-concurrency mesh
// cluster with the full observability layer armed — shared metrics
// registry, per-node round tracers, and a snapshot reader racing the
// delivery goroutines (CI runs this under -race). After agreement it
// checks that the pull-based gauges agree with Stats(), the event
// counters saw the protocol, and every tracer holds the expected round
// events.
func TestMeshClusterWithObservability(t *testing.T) {
	const n = 4
	reg := obs.NewRegistry()
	tracers := make([]*obs.Tracer, n+1)

	mesh := transport.NewMesh(n)
	codec := core.NewCodec()
	nodes := make([]*node.Node, n+1)
	for p := 1; p <= n; p++ {
		ep, err := mesh.Endpoint(sim.ProcID(p))
		if err != nil {
			t.Fatal(err)
		}
		if err := ep.Start(); err != nil {
			t.Fatal(err)
		}
		tracers[p] = obs.NewTracer(p, 2048)
		nd, err := node.New(node.Config{
			ID:      sim.ProcID(p),
			N:       n,
			Seed:    int64(1000 + p),
			Input:   (p - 1) % 2,
			Codec:   codec,
			Metrics: reg,
			Trace:   tracers[p],
		}, ep)
		if err != nil {
			t.Fatal(err)
		}
		nodes[p] = nd
	}

	// Snapshot reader racing the delivery goroutines for the whole run.
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := reg.Snapshot()
			for name, v := range s.Gauges {
				if v < 0 {
					t.Errorf("gauge %s went negative: %d", name, v)
					return
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	for p := 1; p <= n; p++ {
		if err := nodes[p].Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for p := 1; p <= n; p++ {
			nodes[p].Stop()
		}
	})
	waitAgreement(t, nodes, 1, 2, 3, 4)
	close(stop)
	readerWG.Wait()

	// Freeze the counters (Stop is idempotent; Cleanup's second call is a
	// no-op) so the gauge/Stats comparison isn't racing live deliveries.
	for p := 1; p <= n; p++ {
		nodes[p].Stop()
	}
	s := reg.Snapshot()
	for p := 1; p <= n; p++ {
		st := nodes[p].Stats()
		prefix := "node" + string(rune('0'+p)) + "."
		checks := map[string]int64{
			prefix + "sent_payloads":    st.Sent,
			prefix + "recv_payloads":    st.Recv,
			prefix + "sent_frames":      st.SentFrames,
			prefix + "recv_frames":      st.RecvFrames,
			prefix + "sent_frame_bytes": st.SentFrameBytes,
		}
		for name, want := range checks {
			got, ok := s.Gauges[name]
			if !ok {
				t.Fatalf("gauge %s not registered", name)
			}
			if got != want {
				t.Errorf("%s = %d, Stats() says %d", name, got, want)
			}
		}
		if c := s.Counters[prefix+"decisions"]; c != 1 {
			t.Errorf("%sdecisions = %d, want 1", prefix, c)
		}
		if c := s.Counters[prefix+"rb_accepts"]; c == 0 {
			t.Errorf("%srb_accepts = 0, want nonzero", prefix)
		}
		if c := s.Counters[prefix+"coin_flips"]; c == 0 {
			t.Errorf("%scoin_flips = 0, want nonzero", prefix)
		}

		var sawDecide, sawAccept bool
		for _, e := range tracers[p].Events() {
			switch e.Kind {
			case obs.KindDecide:
				sawDecide = true
			case obs.KindRBAccept:
				sawAccept = true
			}
		}
		if !sawDecide || !sawAccept {
			t.Errorf("node %d trace: decide=%v rb-accept=%v, want both (total %d events)",
				p, sawDecide, sawAccept, tracers[p].Total())
		}
	}
}
