module svssba

go 1.24
