package svssba_test

import (
	"strings"
	"testing"
	"time"

	"svssba"
)

func TestRunLiveInvalidConfig(t *testing.T) {
	cases := []svssba.LiveConfig{
		{N: 0},
		{N: 1},
		{N: 4, Inputs: []int{1}},
		{N: 4, Inputs: []int{0, 1, 2, 1}},
	}
	for i, cfg := range cases {
		if _, err := svssba.RunLive(cfg); err == nil {
			t.Errorf("case %d: invalid live config accepted", i)
		}
	}
}

func TestRunLiveTimeout(t *testing.T) {
	// 1ms is far below what an n=4 agreement needs (hundreds of
	// thousands of messages), so the run must hit the deadline.
	_, err := svssba.RunLive(svssba.LiveConfig{
		N:       4,
		Seed:    42,
		Timeout: time.Millisecond,
	})
	if err == nil {
		t.Fatal("1ms live run did not time out")
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Errorf("error = %v, want timeout", err)
	}
}

func TestRunLiveReportsTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("full live run in -short mode")
	}
	res, err := svssba.RunLive(svssba.LiveConfig{
		N:        4,
		Seed:     10,
		MaxDelay: 100 * time.Microsecond,
		Timeout:  2 * time.Minute,
	})
	if err != nil {
		t.Fatalf("live run: %v", err)
	}
	if !res.Agreed {
		t.Fatalf("disagreement: %v", res.Decisions)
	}
	if res.Messages == 0 || res.Bytes == 0 {
		t.Errorf("no traffic recorded: %+v", res)
	}
	if res.Elapsed <= 0 {
		t.Error("no elapsed time recorded")
	}
}
