// Package field implements arithmetic in the prime field GF(p) with
// p = 2^61 - 1 (a Mersenne prime).
//
// The paper requires a finite field F with |F| > n over which the dealer
// draws random degree-t polynomials (Section 3.2). Any prime field larger
// than the process count works; 2^61-1 is chosen because multiplication
// reduces with two shift-adds on 64-bit words, elements fit in a single
// uint64, and the field is comfortably large enough for the coin lottery
// values of Section 5 to avoid collisions.
package field

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// Modulus is the field characteristic p = 2^61 - 1.
const Modulus uint64 = (1 << 61) - 1

// Element is a field element in canonical form (0 <= e < Modulus).
type Element uint64

// Zero and One are the additive and multiplicative identities.
const (
	Zero Element = 0
	One  Element = 1
)

// New returns the element congruent to v modulo p.
func New(v uint64) Element {
	return Element(reduce64(v))
}

// NewInt returns the element congruent to v modulo p, accepting negatives.
func NewInt(v int64) Element {
	if v >= 0 {
		return New(uint64(v))
	}
	// -v may overflow for MinInt64; handle via modular arithmetic.
	m := uint64(-(v + 1)) + 1 // |v| without overflow
	return New(m).Neg()
}

// Rand returns a uniformly random field element drawn from r.
func Rand(r *rand.Rand) Element {
	// Rejection sampling over 61-bit values keeps the distribution uniform.
	for {
		v := r.Uint64() >> 3 // 61 random bits
		if v < Modulus {
			return Element(v)
		}
	}
}

// Uint64 returns the canonical representative of e.
func (e Element) Uint64() uint64 { return uint64(e) }

// IsZero reports whether e is the additive identity.
func (e Element) IsZero() bool { return e == 0 }

// Add returns e + o in GF(p).
func (e Element) Add(o Element) Element {
	s := uint64(e) + uint64(o)
	if s >= Modulus {
		s -= Modulus
	}
	return Element(s)
}

// Sub returns e - o in GF(p).
func (e Element) Sub(o Element) Element {
	if e >= o {
		return e - o
	}
	return e + Element(Modulus) - o
}

// Neg returns -e in GF(p).
func (e Element) Neg() Element {
	if e == 0 {
		return 0
	}
	return Element(Modulus) - e
}

// Mul returns e * o in GF(p).
func (e Element) Mul(o Element) Element {
	hi, lo := bits.Mul64(uint64(e), uint64(o))
	return Element(reduce128(hi, lo))
}

// Square returns e^2 in GF(p).
func (e Element) Square() Element { return e.Mul(e) }

// Pow returns e^k in GF(p) by square-and-multiply.
func (e Element) Pow(k uint64) Element {
	result := One
	base := e
	for k > 0 {
		if k&1 == 1 {
			result = result.Mul(base)
		}
		base = base.Square()
		k >>= 1
	}
	return result
}

// smallInvMax bounds the precomputed inverse table. Lagrange
// interpolation over process-id abscissas only ever inverts values that
// are (differences of) process ids, so inversion on the reconstruction
// hot path is a table load instead of a 61-squaring Fermat ladder.
const smallInvMax = 512

var smallInv [smallInvMax + 1]Element

func init() {
	for v := uint64(1); v <= smallInvMax; v++ {
		smallInv[v] = Element(v).Pow(Modulus - 2)
	}
}

// Inv returns the multiplicative inverse of e. Inverting zero returns zero;
// callers that can receive zero must check IsZero first.
func (e Element) Inv() Element {
	if e <= smallInvMax {
		return smallInv[e] // smallInv[0] is 0: inverting zero returns zero
	}
	if neg := Element(Modulus) - e; neg <= smallInvMax {
		// e = -neg, so e^-1 = -(neg^-1).
		return Element(Modulus) - smallInv[neg]
	}
	// Fermat: e^(p-2) = e^-1 for prime p.
	return e.Pow(Modulus - 2)
}

// Div returns e / o. Division by zero returns zero (see Inv).
func (e Element) Div(o Element) Element { return e.Mul(o.Inv()) }

// String implements fmt.Stringer.
func (e Element) String() string { return fmt.Sprintf("%d", uint64(e)) }

// reduce64 reduces a full 64-bit value modulo p.
func reduce64(v uint64) uint64 {
	// v = hi*2^61 + lo with hi < 8.
	v = (v >> 61) + (v & Modulus)
	if v >= Modulus {
		v -= Modulus
	}
	return v
}

// reduce128 reduces a 128-bit product modulo p = 2^61 - 1.
func reduce128(hi, lo uint64) uint64 {
	// x = hi*2^64 + lo = (hi*8 + lo>>61)*2^61 + (lo & p).
	// Since 2^61 ≡ 1 (mod p), x ≡ (hi<<3 | lo>>61) + (lo & p).
	h := hi<<3 | lo>>61
	l := lo & Modulus
	s := h + l // h < 2^61 for inputs < p, so no overflow
	s = (s >> 61) + (s & Modulus)
	if s >= Modulus {
		s -= Modulus
	}
	return s
}
