// Package svss implements Shunning Verifiable Secret Sharing — the
// paper's primary contribution (§4). The dealer of session (c, i) draws a
// random degree-t bivariate polynomial f(x, y) with f(0, 0) = s, hands
// every process j its row g_j(y) = f(j, y) and column h_j(x) = f(x, j),
// and then every ordered pair of processes cross-commits the four values
// f(l, j), f(j, l) through MW-SVSS instances in which one process deals
// and the other moderates. SVSS satisfies the full VSS properties
// (Validity, Binding, Hiding, Termination) except that, when the
// adversary breaks Validity or Binding, some nonfaulty process starts
// shunning a newly detected faulty process — which can happen at most
// t(n−t) times overall, the bound the Byzantine agreement layer relies
// on (§5).
//
// Sub-instance naming: for an ordered pair (d, m), slot 0 shares
// f(m, d) and slot 1 shares f(d, m); the four invocations of the paper's
// share step 2 for a pair {j, l} are slots 0 and 1 of (d=j, m=l) plus
// slots 0 and 1 of (d=l, m=j).
package svss

import (
	"fmt"
	"sort"

	"svssba/internal/dmm"
	"svssba/internal/field"
	"svssba/internal/mwsvss"
	"svssba/internal/poly"
	"svssba/internal/proto"
	"svssba/internal/sim"
)

// StepG is the broadcast step of the dealer's G announcement (share
// step 5).
const StepG uint8 = 1

// KindDeal is the payload kind of the dealer's row/column message.
const KindDeal = "svss/deal"

// Deal is share step 1: the dealer sends process j the evaluations
// g_j(1..t+1) and h_j(1..t+1) from which j reconstructs its row and
// column polynomials.
type Deal struct {
	Session proto.SessionID
	RowPts  []field.Element
	ColPts  []field.Element
}

var _ proto.Marshaler = Deal{}
var _ dmm.Sessioned = Deal{}

// Kind implements sim.Payload.
func (Deal) Kind() string { return KindDeal }

// Size implements sim.Payload.
func (d Deal) Size() int {
	return 15 + proto.ElemsSize(len(d.RowPts)) + proto.ElemsSize(len(d.ColPts))
}

// SessionRef implements dmm.Sessioned.
func (d Deal) SessionRef() proto.MWID { return proto.MWID{Session: d.Session} }

// MarshalTo implements proto.Marshaler.
func (d Deal) MarshalTo(w *proto.Writer) {
	w.Proc(d.Session.Dealer)
	w.U8(uint8(d.Session.Kind))
	w.U64(d.Session.Round)
	w.U32(d.Session.Index)
	w.Elems(d.RowPts)
	w.Elems(d.ColPts)
}

// RegisterCodec registers SVSS message decoding.
func RegisterCodec(c *proto.Codec) {
	c.Register(KindDeal, func(r *proto.Reader) (sim.Payload, error) {
		var d Deal
		d.Session.Dealer = r.Proc()
		d.Session.Kind = proto.SessionKind(r.U8())
		d.Session.Round = r.U64()
		d.Session.Index = r.U32()
		d.RowPts = r.Elems()
		d.ColPts = r.Elems()
		return d, r.Err()
	})
}

// Output is the result of reconstruct protocol R: a field value or ⊥.
type Output struct {
	Value  field.Element
	Bottom bool
}

// String implements fmt.Stringer.
func (o Output) String() string {
	if o.Bottom {
		return "⊥"
	}
	return o.Value.String()
}

// Host is what the engine needs from its process.
type Host interface {
	Self() sim.ProcID
	Broadcast(ctx sim.Context, tag proto.Tag, value []byte)
	DMM() *dmm.DMM
}

// Callbacks notify the layer above (the common coin, tests, the public
// API) of session progress.
type Callbacks struct {
	// ShareComplete fires when protocol S completes locally (step 6).
	ShareComplete func(ctx sim.Context, sid proto.SessionID)
	// ReconstructComplete fires when protocol R outputs locally (step 3).
	ReconstructComplete func(ctx sim.Context, sid proto.SessionID, out Output)
}

// pairDone tracks dealer-side completion of the four instances of an
// unordered pair (share step 3).
type pairKey struct {
	a, b sim.ProcID // a < b
}

func mkPair(x, y sim.ProcID) pairKey {
	if x < y {
		return pairKey{a: x, b: y}
	}
	return pairKey{a: y, b: x}
}

// instance is the per-session state of one process.
type instance struct {
	sid proto.SessionID
	ref proto.MWID // session-level reference (zero MW key)

	// Dealer state.
	dealing    bool
	pairCount  map[pairKey]int                    // completed sub-shares out of 4
	gSub       map[sim.ProcID]map[sim.ProcID]bool // G_j under construction
	gBroadcast bool

	// Participant state.
	rowPoly poly.Poly // g_j
	colPoly poly.Poly // h_j
	polySet bool
	joined  bool // initiated the pairwise MW instances

	mwShareDone map[proto.MWKey]bool

	gKnown    bool
	g         []sim.ProcID                // Ĝ
	gSets     map[sim.ProcID][]sim.ProcID // Ĝ_j for j ∈ Ĝ
	shareDone bool

	// Reconstruct state.
	reconWanted  bool
	reconStarted bool
	mwOut        map[proto.MWKey]mwsvss.Output
	reconDone    bool
}

// Engine runs all SVSS sessions of one process, driving a shared MW-SVSS
// engine for the pairwise sub-instances.
type Engine struct {
	host  Host
	mw    *mwsvss.Engine
	cb    Callbacks
	insts map[proto.SessionID]*instance
}

// New returns an SVSS engine using mw for its sub-instances. The caller
// must route MW-SVSS callbacks for non-KindMW sessions into
// OnMWShareComplete / OnMWReconComplete (core.AttachStack does this).
func New(host Host, mw *mwsvss.Engine, cb Callbacks) *Engine {
	return &Engine{host: host, mw: mw, cb: cb, insts: make(map[proto.SessionID]*instance)}
}

func (e *Engine) inst(sid proto.SessionID) *instance {
	in, ok := e.insts[sid]
	if !ok {
		in = &instance{
			sid:         sid,
			ref:         proto.MWID{Session: sid},
			pairCount:   make(map[pairKey]int),
			gSub:        make(map[sim.ProcID]map[sim.ProcID]bool),
			mwShareDone: make(map[proto.MWKey]bool),
			mwOut:       make(map[proto.MWKey]mwsvss.Output),
		}
		e.insts[sid] = in
		e.host.DMM().BeginShare(in.ref)
	}
	return in
}

// ShareDone reports whether S completed locally for sid.
func (e *Engine) ShareDone(sid proto.SessionID) bool {
	in, ok := e.insts[sid]
	return ok && in.shareDone
}

// ReconDone reports whether R completed locally for sid.
func (e *Engine) ReconDone(sid proto.SessionID) bool {
	in, ok := e.insts[sid]
	return ok && in.reconDone
}

// mwid builds a sub-instance id within a session.
func mwid(sid proto.SessionID, d, m sim.ProcID, slot uint8) proto.MWID {
	return proto.MWID{Session: sid, Key: proto.MWKey{Dealer: d, Moderator: m, Slot: slot}}
}

// Share runs share step 1 for a new session: the calling process becomes
// the dealer of sid and shares secret.
func (e *Engine) Share(ctx sim.Context, sid proto.SessionID, secret field.Element) error {
	if sid.Dealer != e.host.Self() {
		return fmt.Errorf("svss: process %d is not dealer of %s", e.host.Self(), sid)
	}
	in := e.inst(sid)
	if in.dealing {
		return fmt.Errorf("svss: session %s already dealt", sid)
	}
	in.dealing = true

	t := ctx.T()
	f := poly.NewRandomBivariate(ctx.Rand(), t, secret)
	for j := 1; j <= ctx.N(); j++ {
		row := f.Row(uint64(j))
		col := f.Col(uint64(j))
		ctx.Send(sim.ProcID(j), Deal{
			Session: sid,
			RowPts:  row.EvalRange(t + 1),
			ColPts:  col.EvalRange(t + 1),
		})
	}
	return nil
}

// Reconstruct begins protocol R for sid; if the share phase has not
// completed locally it starts as soon as it does.
func (e *Engine) Reconstruct(ctx sim.Context, sid proto.SessionID) {
	in := e.inst(sid)
	in.reconWanted = true
	e.advance(ctx, in)
}

// OnMessage handles the dealer's Deal message (share step 2).
func (e *Engine) OnMessage(ctx sim.Context, m sim.Message) {
	d, ok := m.Payload.(Deal)
	if !ok {
		return
	}
	in := e.inst(d.Session)
	if m.From != d.Session.Dealer || in.polySet ||
		len(d.RowPts) != ctx.T()+1 || len(d.ColPts) != ctx.T()+1 {
		return
	}
	row, err := poly.InterpolateFromShares(d.RowPts, ctx.T())
	if err != nil {
		return
	}
	col, err := poly.InterpolateFromShares(d.ColPts, ctx.T())
	if err != nil {
		return
	}
	in.rowPoly, in.colPoly = row, col
	in.polySet = true
	e.advance(ctx, in)
}

// OnBroadcast handles the dealer's G announcement (share step 5).
func (e *Engine) OnBroadcast(ctx sim.Context, origin sim.ProcID, t proto.Tag, value []byte) {
	if t.Step != StepG || origin != t.Session.Dealer {
		return
	}
	in := e.inst(t.Session)
	if in.gKnown {
		return
	}
	g, gSets, ok := decodeGSets(value, ctx.N())
	if !ok {
		return
	}
	// A dealer announcing fewer than n−t members (of G or any G_j) is
	// provably faulty; ignore the announcement.
	if len(g) < ctx.N()-ctx.T() {
		return
	}
	for _, members := range gSets {
		if len(members) < ctx.N()-ctx.T() {
			return
		}
	}
	in.g = g
	in.gSets = gSets
	in.gKnown = true
	e.advance(ctx, in)
}

// OnMWShareComplete receives sub-instance share completions.
func (e *Engine) OnMWShareComplete(ctx sim.Context, id proto.MWID) {
	in := e.inst(id.Session)
	in.mwShareDone[id.Key] = true

	// Share step 3 (dealer): count the four instances of the pair.
	if in.dealing {
		pk := mkPair(id.Key.Dealer, id.Key.Moderator)
		in.pairCount[pk]++
		if in.pairCount[pk] == 4 {
			e.dealerPairDone(ctx, in, pk)
		}
	}
	e.advance(ctx, in)
}

// OnMWReconComplete receives sub-instance reconstruction outputs.
func (e *Engine) OnMWReconComplete(ctx sim.Context, id proto.MWID, out mwsvss.Output) {
	in := e.inst(id.Session)
	if _, dup := in.mwOut[id.Key]; dup {
		return
	}
	in.mwOut[id.Key] = out
	e.advance(ctx, in)
}

// dealerPairDone implements share steps 3-4: record mutual membership and
// broadcast G once it reaches n−t.
func (e *Engine) dealerPairDone(ctx sim.Context, in *instance, pk pairKey) {
	add := func(j, l sim.ProcID) {
		set, ok := in.gSub[j]
		if !ok {
			set = make(map[sim.ProcID]bool)
			// j vouches for itself: the paper's termination argument
			// needs |G_j| ≥ n−t to be reachable with only n−t nonfaulty
			// processes, so G_j counts j (the four self-invocations are
			// vacuous).
			set[j] = true
			in.gSub[j] = set
		}
		set[l] = true
	}
	add(pk.a, pk.b)
	add(pk.b, pk.a)

	if in.gBroadcast {
		return
	}
	nt := ctx.N() - ctx.T()
	var g []sim.ProcID
	for j, set := range in.gSub {
		if len(set) >= nt {
			g = append(g, j)
		}
	}
	if len(g) < nt {
		return
	}
	sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
	in.gBroadcast = true
	gSets := make(map[sim.ProcID][]sim.ProcID, len(g))
	for _, j := range g {
		members := make([]sim.ProcID, 0, len(in.gSub[j]))
		for l := range in.gSub[j] {
			members = append(members, l)
		}
		sort.Slice(members, func(i, k int) bool { return members[i] < members[k] })
		gSets[j] = members
	}
	tag := proto.Tag{Proto: proto.ProtoSVSS, Session: in.sid, Step: StepG}
	e.host.Broadcast(ctx, tag, encodeGSets(g, gSets))
}

// advance re-evaluates every enabled protocol step for the session.
func (e *Engine) advance(ctx sim.Context, in *instance) {
	self := e.host.Self()

	// Share step 2: once the row/column polynomials arrive, join the four
	// MW-SVSS invocations per peer (two as dealer, two as moderator).
	if in.polySet && !in.joined {
		in.joined = true
		for l := 1; l <= ctx.N(); l++ {
			peer := sim.ProcID(l)
			if peer == self {
				continue
			}
			lu := uint64(l)
			// (a) dealer with secret f(l, j) = h_j(l), moderator l.
			if err := e.mw.Share(ctx, mwid(in.sid, self, peer, 0), in.colPoly.EvalUint(lu)); err != nil {
				continue
			}
			// (b) dealer with secret f(j, l) = g_j(l), moderator l.
			if err := e.mw.Share(ctx, mwid(in.sid, self, peer, 1), in.rowPoly.EvalUint(lu)); err != nil {
				continue
			}
			// (c) moderator with value f(j, l) = g_j(l), dealer l (slot 0
			// of the mirrored pair shares f(m, d) = f(j, l)).
			if err := e.mw.SetModeratorSecret(ctx, mwid(in.sid, peer, self, 0), in.rowPoly.EvalUint(lu)); err != nil {
				continue
			}
			// (d) moderator with value f(l, j) = h_j(l), dealer l.
			if err := e.mw.SetModeratorSecret(ctx, mwid(in.sid, peer, self, 1), in.colPoly.EvalUint(lu)); err != nil {
				continue
			}
		}
	}

	// Share step 6: complete S once Ĝ is known and all four S' instances
	// completed for every j ∈ Ĝ, l ∈ Ĝ_j.
	if in.gKnown && !in.shareDone && e.allPairsShared(in) {
		in.shareDone = true
		if e.cb.ShareComplete != nil {
			e.cb.ShareComplete(ctx, in.sid)
		}
	}

	// Reconstruct step 1: invoke R' for the four instances of every pair
	// (k ∈ Ĝ, l ∈ Ĝ_k).
	if in.reconWanted && in.shareDone && !in.reconStarted {
		in.reconStarted = true
		e.forAllPairInstances(in, func(id proto.MWID) {
			e.mw.Reconstruct(ctx, id)
		})
	}

	// Reconstruct steps 2-3: once every sub-output is in, compute I, the
	// row/column polynomials, and the final output.
	if in.reconStarted && !in.reconDone && e.allPairsReconstructed(in) {
		in.reconDone = true
		out := e.computeOutput(ctx, in)
		e.host.DMM().CompleteReconstruct(in.ref)
		if e.cb.ReconstructComplete != nil {
			e.cb.ReconstructComplete(ctx, in.sid, out)
		}
	}
}

// forAllPairInstances visits the four MW ids of every pair (k ∈ Ĝ,
// l ∈ Ĝ_k), deduplicated.
func (e *Engine) forAllPairInstances(in *instance, fn func(proto.MWID)) {
	seen := make(map[proto.MWKey]bool)
	visit := func(id proto.MWID) {
		if !seen[id.Key] {
			seen[id.Key] = true
			fn(id)
		}
	}
	for _, k := range in.g {
		for _, l := range in.gSets[k] {
			if k == l {
				continue
			}
			visit(mwid(in.sid, k, l, 0))
			visit(mwid(in.sid, k, l, 1))
			visit(mwid(in.sid, l, k, 0))
			visit(mwid(in.sid, l, k, 1))
		}
	}
}

func (e *Engine) allPairsShared(in *instance) bool {
	ok := true
	e.forAllPairInstances(in, func(id proto.MWID) {
		if !in.mwShareDone[id.Key] {
			ok = false
		}
	})
	return ok
}

func (e *Engine) allPairsReconstructed(in *instance) bool {
	ok := true
	e.forAllPairInstances(in, func(id proto.MWID) {
		if _, done := in.mwOut[id.Key]; !done {
			ok = false
		}
	})
	return ok
}

// computeOutput implements reconstruct steps 2 and 3.
func (e *Engine) computeOutput(ctx sim.Context, in *instance) Output {
	t := ctx.T()
	ignored := make(map[sim.ProcID]bool) // I_j

	gRow := make(map[sim.ProcID]poly.Poly) // g_k for k ∈ G \ I
	hCol := make(map[sim.ProcID]poly.Poly) // h_k for k ∈ G \ I

	for _, k := range in.g {
		// Gather the k-dealt outputs across l ∈ G_k:
		//   slot 1 of (d=k, m=l) holds r_kkl = f(k, l)  -> row points
		//   slot 0 of (d=k, m=l) holds r_klk = f(l, k)  -> column points
		var rowPts, colPts []poly.Point
		bad := false
		for _, l := range in.gSets[k] {
			if l == k {
				continue
			}
			rkl, ok1 := in.mwOut[proto.MWKey{Dealer: k, Moderator: l, Slot: 1}]
			rlk, ok0 := in.mwOut[proto.MWKey{Dealer: k, Moderator: l, Slot: 0}]
			if !ok1 || !ok0 || rkl.Bottom || rlk.Bottom {
				bad = true
				break
			}
			x := field.New(uint64(l))
			rowPts = append(rowPts, poly.Point{X: x, Y: rkl.Value})
			colPts = append(colPts, poly.Point{X: x, Y: rlk.Value})
		}
		if bad {
			ignored[k] = true
			continue
		}
		gk, okRow, err := poly.InterpolateDegree(rowPts, t)
		if err != nil || !okRow {
			ignored[k] = true
			continue
		}
		hk, okCol, err := poly.InterpolateDegree(colPts, t)
		if err != nil || !okCol {
			ignored[k] = true
			continue
		}
		gRow[k] = gk
		hCol[k] = hk
	}

	// Step 3: pairwise cross-consistency over G \ I.
	var rows []sim.ProcID
	for _, k := range in.g {
		if !ignored[k] {
			rows = append(rows, k)
		}
	}
	for _, k := range rows {
		for _, l := range rows {
			if hCol[k].EvalUint(uint64(l)) != gRow[l].EvalUint(uint64(k)) {
				return Output{Bottom: true}
			}
		}
	}
	if len(rows) < t+1 {
		return Output{Bottom: true}
	}
	xs := make([]field.Element, t+1)
	rowPolys := make([]poly.Poly, t+1)
	for i := 0; i <= t; i++ {
		xs[i] = field.New(uint64(rows[i]))
		rowPolys[i] = gRow[rows[i]]
	}
	f, err := poly.BivariateFromRows(xs, rowPolys, t)
	if err != nil {
		return Output{Bottom: true}
	}
	// Uniqueness check: every remaining row and column must lie on f.
	for _, k := range rows {
		if !f.Row(uint64(k)).Equal(gRow[k]) || !f.Col(uint64(k)).Equal(hCol[k]) {
			return Output{Bottom: true}
		}
	}
	return Output{Value: f.Secret()}
}

// encodeGSets canonically encodes (G, {G_j}): the sorted G list followed
// by each member's sorted G_j list.
func encodeGSets(g []sim.ProcID, gSets map[sim.ProcID][]sim.ProcID) []byte {
	var w proto.Writer
	w.Procs(g)
	for _, j := range g {
		w.Procs(gSets[j])
	}
	return w.Bytes()
}

// decodeGSets decodes and validates a G announcement.
func decodeGSets(b []byte, n int) ([]sim.ProcID, map[sim.ProcID][]sim.ProcID, bool) {
	r := proto.NewReader(b)
	g := r.Procs()
	if r.Err() != nil || !validProcs(g, n) {
		return nil, nil, false
	}
	gSets := make(map[sim.ProcID][]sim.ProcID, len(g))
	for _, j := range g {
		members := r.Procs()
		if r.Err() != nil || !validProcs(members, n) {
			return nil, nil, false
		}
		gSets[j] = members
	}
	if r.Close() != nil {
		return nil, nil, false
	}
	return g, gSets, true
}

func validProcs(ps []sim.ProcID, n int) bool {
	seen := make(map[sim.ProcID]bool, len(ps))
	for _, p := range ps {
		if p < 1 || int(p) > n || seen[p] {
			return false
		}
		seen[p] = true
	}
	return true
}
