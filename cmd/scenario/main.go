// Command scenario runs the adversarial scenario matrix: schedulers ×
// Byzantine behaviours × (n,t) scales × seeds, with agreement, validity
// and termination invariants checked on every cell.
//
//	scenario -quick              # 4×7×2×1 = 56 cells (the default)
//	scenario -full               # 5×10×4×3 = 600 cells (includes n7/t2, n10/t3)
//	scenario -scale n4           # restrict the scale axis (CI smoke)
//	scenario -batch              # coalescing-outbox frame model on every cell
//	scenario -wire v2            # burst-coalesced wire variant on every cell
//	scenario -seeds 5            # override the seed axis (1000..1004)
//	scenario -workers 0          # one worker per CPU (default)
//	scenario -json               # machine-readable report
//	scenario -list               # print the cell ids and exit
//	scenario -replay CELL        # deterministically re-run one cell
//
// Every run is a pure function of its seeded config, so a failing cell
// named in the report is reproduced byte-identically by -replay — the
// debugging loop for any invariant violation is one command.
//
// The process exits nonzero when any invariant is violated (or any cell
// errored), which makes the quick matrix a usable CI gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"svssba/internal/scenario"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "run the quick matrix (default)")
		full    = flag.Bool("full", false, "run the full matrix")
		seeds   = flag.Int("seeds", 0, "override the number of seeds per cell (seeds 1000..1000+n-1)")
		scale   = flag.String("scale", "", "restrict the matrix to one scale axis value (e.g. n4)")
		workers = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		asJSON  = flag.Bool("json", false, "emit the JSON report instead of the text table")
		list    = flag.Bool("list", false, "list cell ids and exit")
		replay  = flag.String("replay", "", "re-run a single cell by id and print its JSON")
		batch   = flag.Bool("batch", false, "run every cell with the coalescing-outbox frame model (decisions and logical stats are unchanged)")
		wire    = flag.String("wire", "", "wire variant for every cell: v1 (default, baseline shape) | v2 (burst coalescing — a declared variant with its own schedules)")
		service = flag.Bool("service", false, "run the agreement-as-a-service check instead of the matrix (concurrent ACS sessions on the node runtime)")
	)
	flag.Parse()
	_ = quick // quick is the default; the flag exists for explicitness

	if *service {
		// One multi-session cell on the real node runtime: agreement,
		// validity and termination checked per session across nodes.
		start := time.Now()
		violations := scenario.ServiceCheck(4, 42, 3, 2*time.Minute)
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, v)
		}
		if len(violations) > 0 {
			os.Exit(1)
		}
		fmt.Printf("service check OK (%v)\n", time.Since(start).Round(time.Millisecond))
		return
	}

	m := scenario.Quick()
	if *full {
		m = scenario.Full()
	}
	m.Batching = *batch
	m.Wire = *wire
	if *seeds > 0 {
		m.Seeds = nil
		for s := 0; s < *seeds; s++ {
			m.Seeds = append(m.Seeds, int64(1000+s))
		}
	}
	if *scale != "" {
		var kept []scenario.Scale
		for _, s := range m.Scales {
			if s.Name == *scale {
				kept = append(kept, s)
			}
		}
		if len(kept) == 0 {
			fail(fmt.Errorf("unknown scale %q", *scale))
		}
		m.Scales = kept
	}
	if err := m.ValidateNames(); err != nil {
		fail(err)
	}

	if *list {
		for _, c := range m.Cells() {
			fmt.Println(c.ID)
		}
		return
	}

	if *replay != "" {
		cr, err := scenario.Replay(m, *replay)
		if err != nil {
			fail(err)
		}
		emitJSON(cr)
		for _, v := range cr.Violations {
			fmt.Fprintln(os.Stderr, v)
		}
		if len(cr.Violations) > 0 || cr.Err != "" {
			os.Exit(1)
		}
		return
	}

	start := time.Now()
	rep := scenario.Run(m, *workers)
	elapsed := time.Since(start)

	if *asJSON {
		emitJSON(rep)
	} else {
		fmt.Println(rep.Table().String())
		fmt.Printf("(%d cells in %v)\n", len(rep.Cells), elapsed.Round(time.Millisecond))
	}

	failed := false
	for _, v := range rep.Violations {
		fmt.Fprintln(os.Stderr, v)
		failed = true
	}
	for _, c := range rep.Cells {
		if c.Err != "" {
			fmt.Fprintf(os.Stderr, "%s: error: %s\n", c.Cell.ID, c.Err)
			failed = true
		}
	}
	if failed {
		// Cell ids resolve against the matrix the flags selected, so the
		// hint must repeat them.
		matrixFlags := ""
		if *full {
			matrixFlags += " -full"
		}
		if *seeds > 0 {
			matrixFlags += fmt.Sprintf(" -seeds %d", *seeds)
		}
		if *scale != "" {
			matrixFlags += fmt.Sprintf(" -scale %s", *scale)
		}
		if *batch {
			matrixFlags += " -batch"
		}
		if *wire != "" {
			matrixFlags += fmt.Sprintf(" -wire %s", *wire)
		}
		fmt.Fprintf(os.Stderr, "replay any cell above with: go run ./cmd/scenario%s -replay <cell-id>\n", matrixFlags)
		os.Exit(1)
	}
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
	os.Exit(1)
}
