package proto

import (
	"fmt"

	"svssba/internal/sim"
)

// KindScoped is the payload kind of the session-scope envelope. The
// kind string is deliberately short: in service mode every payload on
// the wire wears it.
const KindScoped = "sess"

// Scoped wraps one protocol payload with the service scope that owns
// it. The multi-session node runtime (internal/node service mode) runs
// one protocol stack per scope over a single transport; the envelope is
// what routes an inbound payload to the right stack and lets payloads
// from many concurrent sessions share one coalesced batch frame.
//
// A Scoped has two forms:
//
//   - Outbound: Inner holds the live payload; encoding writes the scope
//     followed by the inner payload's own standalone encoding (kind
//     header included).
//   - Inbound: decoding stops at the envelope — Raw holds the inner
//     payload still encoded. The node decodes Raw only after checking
//     that the scope is live, so traffic for a retired session is
//     dropped without paying for (or being exposed to) the inner
//     decode.
//
// The wire form is: uvarint scope, then the inner encoding as the
// remainder of the buffer (no length prefix — the envelope is always
// the outermost layer of a frame or batch element, so the tail is
// unambiguous). Nested envelopes are rejected by the node on delivery.
type Scoped struct {
	Scope uint64
	Inner Marshaler
	Raw   []byte
}

var _ Marshaler = Scoped{}

// Kind implements sim.Payload.
func (Scoped) Kind() string { return KindScoped }

// Size implements sim.Payload.
func (s Scoped) Size() int {
	if s.Inner != nil {
		return UvarintSize(s.Scope) + 2 + len(s.Inner.Kind()) + s.Inner.Size()
	}
	return UvarintSize(s.Scope) + len(s.Raw)
}

// MarshalTo implements proto.Marshaler.
func (s Scoped) MarshalTo(w *Writer) {
	w.Uvarint(s.Scope)
	if s.Inner != nil {
		kind := s.Inner.Kind()
		w.U16(uint16(len(kind)))
		w.buf = append(w.buf, kind...)
		s.Inner.MarshalTo(w)
		return
	}
	w.buf = append(w.buf, s.Raw...)
}

// UvarintSize returns the encoded size of v as a uvarint.
func UvarintSize(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// TakeRest consumes and returns all unread bytes. The returned slice
// aliases the reader's buffer.
func (r *Reader) TakeRest() []byte { return r.take(r.Remaining()) }

// RegisterScopedCodec registers the envelope decoder on c. Decoding is
// shallow on purpose (see Scoped): the inner payload stays encoded in
// Raw until the consumer decides the scope deserves the inner decode.
func RegisterScopedCodec(c *Codec) {
	c.Register(KindScoped, func(r *Reader) (sim.Payload, error) {
		s := Scoped{Scope: r.Uvarint()}
		s.Raw = r.TakeRest()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if len(s.Raw) == 0 {
			return nil, fmt.Errorf("scoped envelope %d with empty body", s.Scope)
		}
		return s, nil
	})
}
