package proto

import (
	"fmt"

	"svssba/internal/sim"
)

// Wire v2 message grouping. Two shapes exist:
//
//   - A broadcast *bundle* is the RB value of a ProtoBundle broadcast:
//     all logical broadcasts a process produces within one delivery
//     burst share one RB instance, so the ack/echo storm of many MW
//     sub-instances (a dealer pair's 4 slots, a reveal cascade's many
//     StepRVal reveals) is paid once per bundle instead of once per
//     logical broadcast. Body: u32 count, then per item a Tag followed
//     by a VarBytes value.
//
//   - A *pack* is a direct payload carrying every point-to-point payload
//     a process produced for one destination within one burst; the
//     receiver unpacks and delivers each item through the normal
//     per-payload path (DMM filtering included). Encoding: u32 count,
//     then per item a u16-length-prefixed kind and a u32-length-prefixed
//     body in the item's own MarshalTo encoding.
//
// Both shapes refuse nesting on decode: a bundle item's tag must not be
// ProtoBundle and a pack item's kind must not be KindPack, so a
// Byzantine sender cannot build recursive frames.

// BundleItem is one logical broadcast inside a bundle body.
type BundleItem struct {
	Tag   Tag
	Value []byte
}

// BundleBodySize returns the encoded size of a bundle body holding the
// given value lengths.
func BundleBodySize(valueLens []int) int {
	size := 4
	for _, l := range valueLens {
		size += tagEncodedSize + VarBytesSize(l)
	}
	return size
}

// AppendEncodeBundle appends the bundle body for (tags[i], values[i])
// pairs to dst. The two slices must have equal length.
func AppendEncodeBundle(dst []byte, tags []Tag, values [][]byte) []byte {
	w := writerPool.Get().(*Writer)
	w.buf = dst
	w.U32(uint32(len(tags)))
	for i, t := range tags {
		t.MarshalTo(w)
		w.VarBytes(values[i])
	}
	out := w.buf
	w.buf = nil
	writerPool.Put(w)
	return out
}

// EncodeBundle encodes the bundle body in one pre-sized allocation.
func EncodeBundle(tags []Tag, values [][]byte) []byte {
	size := 4
	for _, v := range values {
		size += tagEncodedSize + VarBytesSize(len(v))
	}
	return AppendEncodeBundle(make([]byte, 0, size), tags, values)
}

// DecodeBundle decodes a bundle body. Corrupt or truncated bodies, and
// bodies containing a nested ProtoBundle tag, return an error and no
// items — callers discard such bundles whole.
func DecodeBundle(b []byte) ([]BundleItem, error) {
	r := getReader(b)
	defer putReader(r)
	count := int(r.U32())
	if r.Err() != nil {
		return nil, fmt.Errorf("proto: bundle header: %w", r.Err())
	}
	// Each item costs at least its tag plus the value length prefix.
	if count > r.Remaining()/(tagEncodedSize+4) {
		return nil, fmt.Errorf("proto: bundle count %d: %w", count, ErrShortBuffer)
	}
	items := make([]BundleItem, 0, count)
	for i := 0; i < count; i++ {
		t := ReadTag(r)
		v := r.VarBytes()
		if r.Err() != nil {
			return nil, fmt.Errorf("proto: bundle item %d: %w", i, r.Err())
		}
		if t.Proto == ProtoBundle {
			return nil, fmt.Errorf("proto: bundle item %d: nested bundle tag", i)
		}
		items = append(items, BundleItem{Tag: t, Value: v})
	}
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("proto: bundle body: %w", err)
	}
	return items, nil
}

// KindPack is the payload kind of a wire-v2 direct pack.
const KindPack = "pack/v2"

// Pack is the wire-v2 multi-payload direct message: every payload the
// sender produced for one destination within one delivery burst. The
// receiving node unpacks it and runs each item through the standard
// single-payload delivery path.
type Pack struct {
	Items []sim.Payload
}

var _ Marshaler = Pack{}

// Kind implements sim.Payload.
func (Pack) Kind() string { return KindPack }

// Size implements sim.Payload.
func (p Pack) Size() int {
	size := 4
	for _, it := range p.Items {
		size += 2 + len(it.Kind()) + 4 + it.Size()
	}
	return size
}

// MarshalTo implements proto.Marshaler. Every item must itself be a
// Marshaler (all honest protocol payloads are; the encode path reports
// violations through the codec's Size check).
func (p Pack) MarshalTo(w *Writer) {
	w.U32(uint32(len(p.Items)))
	for _, it := range p.Items {
		kind := it.Kind()
		w.U16(uint16(len(kind)))
		w.buf = append(w.buf, kind...)
		w.U32(uint32(it.Size()))
		if m, ok := it.(Marshaler); ok {
			m.MarshalTo(w)
		}
	}
}

// RegisterPackCodec registers the pack decoder on c. It closes over c so
// item bodies decode through the same kind registry; nested packs are
// rejected.
func RegisterPackCodec(c *Codec) {
	c.Register(KindPack, func(r *Reader) (sim.Payload, error) {
		count := int(r.U32())
		if r.Err() != nil {
			return nil, r.Err()
		}
		// Each item costs at least its kind-length and body-length
		// prefixes.
		if count > r.Remaining()/6 {
			return nil, fmt.Errorf("proto: pack count %d: %w", count, ErrShortBuffer)
		}
		items := make([]sim.Payload, 0, count)
		for i := 0; i < count; i++ {
			kl := int(r.U16())
			kb := r.take(kl)
			if r.Err() != nil {
				return nil, fmt.Errorf("proto: pack item %d kind: %w", i, r.Err())
			}
			kind := string(kb)
			if kind == KindPack {
				return nil, fmt.Errorf("proto: pack item %d: nested pack", i)
			}
			dec, ok := c.decoders[kind]
			if !ok {
				return nil, fmt.Errorf("proto: no decoder for kind %q", kind)
			}
			bl := int(r.U32())
			if r.Err() != nil || bl > r.Remaining() {
				return nil, fmt.Errorf("proto: pack item %d length: %w", i, ErrShortBuffer)
			}
			pr := getReader(r.take(bl))
			p, err := dec(pr)
			if err == nil {
				err = pr.Close()
			}
			putReader(pr)
			if err != nil {
				return nil, fmt.Errorf("proto: pack decode %q: %w", kind, err)
			}
			items = append(items, p)
		}
		return Pack{Items: items}, nil
	})
}
