// Package wrb implements t-tolerant Weak Reliable Broadcast — Dolev's
// crusader agreement — exactly as specified in Appendix A.1 of the paper:
//
//  1. The dealer sends (s, 1) to all processes.
//  2. If process i receives a type 1 message (r, 1) from the dealer and it
//     never sent a type 2 message, then process i sends (r, 2) to all.
//  3. If process i receives n−t distinct type 2 messages (r, 2), all with
//     value r, then it accepts the value r.
//
// Properties (for n > 3t): weak termination (nonfaulty dealer ⇒ everyone
// completes) and correctness (no two nonfaulty processes accept different
// values; a nonfaulty dealer's value is the only acceptable one).
//
// Instances are identified by (origin, tag); values are opaque byte
// strings whose equality is the paper's value equality.
package wrb

import (
	"svssba/internal/proto"
	"svssba/internal/sim"
)

// Message phases.
const (
	phaseType1 uint8 = 1
	phaseType2 uint8 = 2
)

// Payload kinds.
const (
	KindType1 = "wrb/type1"
	KindType2 = "wrb/type2"
)

// Msg is a WRB protocol message.
type Msg struct {
	Origin sim.ProcID
	Tag    proto.Tag
	Phase  uint8
	Value  []byte
}

var _ proto.Marshaler = Msg{}

// Kind implements sim.Payload.
func (m Msg) Kind() string {
	if m.Phase == phaseType1 {
		return KindType1
	}
	return KindType2
}

// Size implements sim.Payload.
func (m Msg) Size() int {
	return 2 + proto.TagSize() + 1 + proto.VarBytesSize(len(m.Value))
}

// MarshalTo implements proto.Marshaler.
func (m Msg) MarshalTo(w *proto.Writer) {
	w.Proc(m.Origin)
	m.Tag.MarshalTo(w)
	w.U8(m.Phase)
	w.VarBytes(m.Value)
}

func decodeMsg(r *proto.Reader) (sim.Payload, error) {
	var m Msg
	m.Origin = r.Proc()
	m.Tag = proto.ReadTag(r)
	m.Phase = r.U8()
	m.Value = r.VarBytes()
	return m, r.Err()
}

// RegisterCodec registers WRB message decoding.
func RegisterCodec(c *proto.Codec) {
	c.Register(KindType1, decodeMsg)
	c.Register(KindType2, decodeMsg)
}

// Accept is the output event of one WRB instance.
type Accept struct {
	Origin sim.ProcID
	Tag    proto.Tag
	Value  []byte
}

// AcceptFunc consumes accept events; it runs inside the delivering
// process's context and may send messages.
type AcceptFunc func(ctx sim.Context, a Accept)

type instKey struct {
	origin sim.ProcID
	tag    proto.Tag
}

type instance struct {
	sentType2 bool
	voted     map[sim.ProcID]bool // senders whose type-2 was counted
	counts    map[string]int      // value -> distinct type-2 count
	accepted  bool
}

// Engine runs all WRB instances for one process.
type Engine struct {
	self     sim.ProcID
	onAccept AcceptFunc
	insts    map[instKey]*instance
}

// New returns a WRB engine for process self.
func New(self sim.ProcID, onAccept AcceptFunc) *Engine {
	return &Engine{
		self:     self,
		onAccept: onAccept,
		insts:    make(map[instKey]*instance),
	}
}

// Broadcast starts a WRB instance with this process as dealer (step 1).
func (e *Engine) Broadcast(ctx sim.Context, tag proto.Tag, value []byte) {
	m := Msg{Origin: e.self, Tag: tag, Phase: phaseType1, Value: value}
	for p := 1; p <= ctx.N(); p++ {
		ctx.Send(sim.ProcID(p), m)
	}
}

func (e *Engine) inst(k instKey) *instance {
	in, ok := e.insts[k]
	if !ok {
		in = &instance{
			voted:  make(map[sim.ProcID]bool),
			counts: make(map[string]int),
		}
		e.insts[k] = in
	}
	return in
}

// Handle processes a message if it belongs to WRB, reporting whether it
// was consumed.
func (e *Engine) Handle(ctx sim.Context, m sim.Message) bool {
	msg, ok := m.Payload.(Msg)
	if !ok {
		return false
	}
	k := instKey{origin: msg.Origin, tag: msg.Tag}
	in := e.inst(k)
	switch msg.Phase {
	case phaseType1:
		// Step 2: the type 1 message must come from the instance dealer.
		if m.From != msg.Origin || in.sentType2 {
			return true
		}
		in.sentType2 = true
		echo := Msg{Origin: msg.Origin, Tag: msg.Tag, Phase: phaseType2, Value: msg.Value}
		for p := 1; p <= ctx.N(); p++ {
			ctx.Send(sim.ProcID(p), echo)
		}
	case phaseType2:
		// Echo pruning: an accepted instance can neither accept again nor
		// send anything in response to a type 2, so the remaining echoes
		// of the storm (up to t per instance) skip the vote and count
		// maps entirely. The type 1 branch above stays live — a slow
		// process must still echo the dealer's value so its peers can
		// reach their own n−t thresholds (suppressing the echo of an
		// already-accepted process would strand peers at n−t−1 matching
		// echoes when exactly n−t processes are honest).
		if in.accepted {
			return true
		}
		// Step 3: count the first type 2 from each sender.
		if in.voted[m.From] {
			return true
		}
		in.voted[m.From] = true
		v := string(msg.Value)
		in.counts[v]++
		if !in.accepted && in.counts[v] >= ctx.N()-ctx.T() {
			in.accepted = true
			// Dead from here on (see pruning note); keep the per-instance
			// footprint bounded across millions of broadcasts.
			in.voted, in.counts = nil, nil
			if e.onAccept != nil {
				e.onAccept(ctx, Accept{Origin: msg.Origin, Tag: msg.Tag, Value: []byte(v)})
			}
		}
	}
	return true
}
