package sim

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Codec encodes payloads for the wire. LiveNet round-trips every message
// through it when one is installed, so the live runtime exercises the real
// encoding paths.
type Codec interface {
	Encode(p Payload) ([]byte, error)
	Decode(b []byte) (Payload, error)
}

// appendEncoder is the allocation-free encode fast path a Codec may
// optionally provide (proto.Codec does); LiveNet then reuses one
// buffer per sender instead of allocating per message.
type appendEncoder interface {
	AppendEncode(dst []byte, p Payload) ([]byte, error)
}

// batchCodec is the multi-payload frame fast path a Codec may optionally
// provide (proto.Codec does): with batching on, LiveNet round-trips each
// flushed same-destination group through one batch frame instead of one
// frame per payload, exercising the exact wire format the node runtime
// puts on real sockets.
type batchCodec interface {
	AppendEncodeBatch(dst []byte, ps []Payload) ([]byte, error)
	DecodeBatch(b []byte) ([]Payload, error)
}

// LiveNet runs the same Handlers as Network but with one goroutine per
// process, real (randomized) delivery delays, and optional wire encoding.
// It demonstrates that the protocol state machines are runtime-agnostic;
// integration tests run it under the race detector.
//
// Storage mirrors Network's dense layout: processes, mailboxes and
// random sources live in slices indexed by ProcID (1..n; index 0
// unused), and per-kind traffic counters live in slices indexed by
// interned kind IDs, so the Send path does no map writes — only the
// kind-intern lookup, which the one-slot cache almost always skips.
type LiveNet struct {
	n, t     int
	maxDelay time.Duration
	codec    Codec
	batching bool

	procs   []Handler
	boxes   []*mailbox
	rands   []*rand.Rand
	crashed []bool
	// scratch holds one reusable encode buffer per sender; like rands
	// it is only touched from that sender's goroutine. Decoded payloads
	// never alias the input bytes, so the buffer is free again as soon
	// as Decode returns.
	scratch [][]byte
	// outbox holds, per sender, the same-destination coalescing buffer
	// of the current delivery step (batching mode only; sender-goroutine
	// local like scratch).
	outbox []*Coalescer[Message]
	nRegs  int

	mu      sync.Mutex
	seq     uint64
	started bool
	stopped bool
	errs    []error
	start   time.Time

	// Counters (see Stats for the snapshot view), guarded by mu.
	sent, delivered, dropped, frames int64
	kindIDs                          map[string]int
	kindNames                        []string
	sentByKind                       []int64
	bytesByKind                      []int64
	lastKind                         string
	lastKindID                       int

	stop chan struct{}
	wg   sync.WaitGroup
}

// LiveOption configures a LiveNet.
type LiveOption interface{ applyLive(*LiveNet) }

type liveCodecOption struct{ c Codec }

func (o liveCodecOption) applyLive(l *LiveNet) { l.codec = o.c }

// WithCodec installs a wire codec (every message is encoded and decoded).
func WithCodec(c Codec) LiveOption { return liveCodecOption{c: c} }

type liveDelayOption struct{ d time.Duration }

func (o liveDelayOption) applyLive(l *LiveNet) { l.maxDelay = o.d }

// WithMaxDelay sets the maximum random per-message delay (default 2ms).
func WithMaxDelay(d time.Duration) LiveOption { return liveDelayOption{d: d} }

type liveBatchingOption struct{ on bool }

func (o liveBatchingOption) applyLive(l *LiveNet) { l.batching = o.on }

// WithLiveBatching turns on the coalescing outbox: all payloads a
// process sends to one destination within one delivery step travel (and
// are delayed) as a single physical frame, round-tripped through the
// codec's batch frame format when the codec provides one. Logical
// counters (Sent, per-kind) are unchanged; Stats.Frames counts the
// physical frames.
func WithLiveBatching(on bool) LiveOption { return liveBatchingOption{on: on} }

// NewLiveNet creates a live runtime for n processes tolerating t faults.
func NewLiveNet(n, t int, seed int64, opts ...LiveOption) *LiveNet {
	l := &LiveNet{
		n:          n,
		t:          t,
		maxDelay:   2 * time.Millisecond,
		procs:      make([]Handler, n+1),
		boxes:      make([]*mailbox, n+1),
		rands:      make([]*rand.Rand, n+1),
		crashed:    make([]bool, n+1),
		scratch:    make([][]byte, n+1),
		outbox:     make([]*Coalescer[Message], n+1),
		kindIDs:    make(map[string]int, 16),
		lastKindID: -1,
		stop:       make(chan struct{}),
	}
	master := rand.New(rand.NewSource(seed))
	for p := 1; p <= n; p++ {
		l.rands[p] = rand.New(rand.NewSource(master.Int63()))
	}
	for _, o := range opts {
		o.applyLive(l)
	}
	return l
}

// Register adds a process; must be called before Start.
func (l *LiveNet) Register(h Handler) error {
	id := h.ID()
	if id < 1 || int(id) > l.n {
		return fmt.Errorf("sim: process id %d out of range 1..%d", id, l.n)
	}
	if l.procs[id] != nil {
		return fmt.Errorf("sim: process %d registered twice", id)
	}
	l.procs[id] = h
	l.nRegs++
	return nil
}

// Start launches all process goroutines and runs Init on each.
func (l *LiveNet) Start() error {
	if l.nRegs != l.n {
		return fmt.Errorf("sim: %d of %d processes registered", l.nRegs, l.n)
	}
	l.mu.Lock()
	if l.started {
		l.mu.Unlock()
		return fmt.Errorf("sim: LiveNet already started")
	}
	l.started = true
	l.start = time.Now()
	l.mu.Unlock()

	for p := 1; p <= l.n; p++ {
		id := ProcID(p)
		box := newMailbox()
		l.boxes[id] = box
		l.wg.Add(1)
		go func(id ProcID, box *mailbox) {
			defer l.wg.Done()
			box.pump(l.stop)
		}(id, box)
	}
	for p := 1; p <= l.n; p++ {
		id := ProcID(p)
		l.wg.Add(1)
		if l.batching {
			l.outbox[id] = NewCoalescer[Message](l.n)
		}
		go func(id ProcID) {
			defer l.wg.Done()
			ctx := liveCtx{l: l, id: id}
			l.procs[id].Init(ctx)
			ctx.flushOutbox()
			for {
				select {
				case <-l.stop:
					return
				case m, ok := <-l.boxes[id].out:
					if !ok {
						return
					}
					if l.isCrashed(m.From, id, true) {
						// A message already queued when the crash landed:
						// dropped, like Network.Step drops pending traffic
						// of crashed processes.
						continue
					}
					// Delivered is counted at the moment of handling, so a
					// message is either delivered or dropped, never both.
					l.mu.Lock()
					l.delivered++
					l.mu.Unlock()
					l.procs[id].Deliver(ctx, m)
					ctx.flushOutbox()
				}
			}
		}(id)
	}
	return nil
}

// Stop signals all goroutines to exit and waits for them.
func (l *LiveNet) Stop() {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return
	}
	l.stopped = true
	l.mu.Unlock()
	close(l.stop)
	l.wg.Wait()
}

// Stats returns a snapshot of the message counters, materializing the
// per-kind maps from the interned slice counters (same layout as
// Network.Stats, which the parity test asserts).
func (l *LiveNet) Stats() *Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := newStats()
	s.Sent, s.Delivered, s.Dropped = l.sent, l.delivered, l.dropped
	s.Frames = l.frames
	for id, name := range l.kindNames {
		s.SentByKind[name] = l.sentByKind[id]
		s.BytesByKind[name] = l.bytesByKind[id]
	}
	return s
}

// kindIDLocked interns a payload kind; the caller must hold mu.
func (l *LiveNet) kindIDLocked(kind string) int {
	if kind == l.lastKind && l.lastKindID >= 0 {
		return l.lastKindID
	}
	id, ok := l.kindIDs[kind]
	if !ok {
		id = len(l.kindNames)
		l.kindIDs[kind] = id
		l.kindNames = append(l.kindNames, kind)
		l.sentByKind = append(l.sentByKind, 0)
		l.bytesByKind = append(l.bytesByKind, 0)
	}
	l.lastKind, l.lastKindID = kind, id
	return id
}

// Crash fail-stops a process, mirroring Network.Crash on the live
// runtime: all of its pending and future traffic (in either direction)
// is dropped and its goroutine receives no more deliveries. Safe to
// call while the net is running.
func (l *LiveNet) Crash(p ProcID) {
	if p < 1 || int(p) > l.n {
		return
	}
	l.mu.Lock()
	l.crashed[p] = true
	l.mu.Unlock()
}

// isCrashed reports whether either end of a link is crashed, counting a
// drop when dropped is true.
func (l *LiveNet) isCrashed(from, to ProcID, dropped bool) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.crashed[from] && !l.crashed[to] {
		return false
	}
	if dropped {
		l.dropped++
	}
	return true
}

// Errs returns codec or routing errors observed so far.
func (l *LiveNet) Errs() []error {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]error, len(l.errs))
	copy(out, l.errs)
	return out
}

type liveCtx struct {
	l  *LiveNet
	id ProcID
}

var _ Context = liveCtx{}

func (c liveCtx) N() int           { return c.l.n }
func (c liveCtx) T() int           { return c.l.t }
func (c liveCtx) Rand() *rand.Rand { return c.l.rands[c.id] }

func (c liveCtx) Now() int64 {
	return time.Since(c.l.start).Microseconds()
}

func (c liveCtx) Send(to ProcID, p Payload) {
	l := c.l
	if to < 1 || int(to) > l.n {
		return
	}
	l.mu.Lock()
	l.seq++
	seq := l.seq
	l.sent++
	kid := l.kindIDLocked(p.Kind())
	l.sentByKind[kid]++
	l.bytesByKind[kid] += int64(p.Size())
	stopped := l.stopped
	if !stopped && (l.crashed[c.id] || l.crashed[to]) {
		// Crashed endpoints drop traffic at send time, like Network.
		l.dropped++
		l.mu.Unlock()
		return
	}
	batching := l.outbox[c.id] != nil
	if !stopped && !batching {
		// Unbatched: the message is its own frame; count it here so the
		// hot path pays no second lock acquisition in shipOne.
		l.frames++
	}
	l.mu.Unlock()
	if stopped {
		return
	}

	m := Message{From: c.id, To: to, Payload: p, Seq: seq, SentAt: c.Now()}
	if batching {
		// Park the message in the sender's outbox; flushOutbox ships each
		// destination's group as one frame when the delivery step ends.
		l.outbox[c.id].Add(to, m)
		return
	}
	c.shipOne(m)
}

// flushOutbox ends the sender's delivery step: every destination touched
// since the last flush gets its coalesced group shipped as one frame, in
// first-touch order. Only the sender's goroutine calls it.
func (c liveCtx) flushOutbox() {
	ob := c.l.outbox[c.id]
	if ob == nil {
		return
	}
	ob.Flush(func(_ ProcID, ms []Message) { c.ship(ms) })
}

// shipOne sends a single-message frame (frame already counted by Send):
// codec round trip, delay draw, handoff to the destination's mailbox.
func (c liveCtx) shipOne(m Message) {
	l := c.l
	if l.codec != nil {
		if err := c.roundTripOne(&m); err != nil {
			l.mu.Lock()
			l.errs = append(l.errs, err)
			l.mu.Unlock()
			return
		}
	}
	c.deliverFrame(l.boxes[m.To], m)
}

// ship sends one coalesced frame holding ms (all same destination):
// codec round trip through the batch format, one shared delay draw,
// in-order handoff to the destination's mailbox.
func (c liveCtx) ship(ms []Message) {
	l := c.l
	if len(ms) == 0 {
		return
	}
	l.mu.Lock()
	l.frames++
	l.mu.Unlock()

	if l.codec != nil {
		if err := c.roundTrip(ms); err != nil {
			l.mu.Lock()
			l.errs = append(l.errs, err)
			l.mu.Unlock()
			return
		}
	}

	box := l.boxes[ms[0].To]
	l.wg.Add(1)
	delay := c.drawDelay()
	go func() {
		defer l.wg.Done()
		if !c.sleepDelay(delay) {
			return
		}
		for _, m := range ms {
			if l.isCrashed(m.From, m.To, true) {
				// Either endpoint crashed while the frame was in flight.
				continue
			}
			select {
			case box.in <- m:
			case <-l.stop:
				return
			}
		}
	}()
}

// deliverFrame launches the delayed single-message handoff.
func (c liveCtx) deliverFrame(box *mailbox, m Message) {
	l := c.l
	l.wg.Add(1)
	delay := c.drawDelay()
	go func() {
		defer l.wg.Done()
		if !c.sleepDelay(delay) {
			return
		}
		if l.isCrashed(m.From, m.To, true) {
			// Either endpoint crashed while the message was in flight.
			return
		}
		select {
		case box.in <- m:
		case <-l.stop:
		}
	}()
}

// drawDelay draws the frame's delivery delay from the sender-local rand
// (only touched from the sender's goroutine).
func (c liveCtx) drawDelay() time.Duration {
	if c.l.maxDelay <= 0 {
		return 0
	}
	return time.Duration(c.l.rands[c.id].Int63n(int64(c.l.maxDelay)))
}

// sleepDelay waits out a frame delay; false means the net stopped.
func (c liveCtx) sleepDelay(delay time.Duration) bool {
	if delay <= 0 {
		return true
	}
	timer := time.NewTimer(delay)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-c.l.stop:
		return false
	}
}

// roundTripOne replaces one message's payload with its post-wire
// decoding — the single-frame encode path (zero allocations into the
// sender's scratch buffer when the codec supports AppendEncode).
func (c liveCtx) roundTripOne(m *Message) error {
	l := c.l
	p := m.Payload
	var b []byte
	var err error
	if ae, ok := l.codec.(appendEncoder); ok {
		b, err = ae.AppendEncode(l.scratch[c.id][:0], p)
		if err == nil {
			l.scratch[c.id] = b
		}
	} else {
		b, err = l.codec.Encode(p)
	}
	if err == nil {
		m.Payload, err = l.codec.Decode(b)
	}
	if err != nil {
		return fmt.Errorf("codec %s: %w", p.Kind(), err)
	}
	return nil
}

// roundTrip replaces the payloads of ms with their post-wire decodings,
// preferring the codec's batch frame format for multi-payload frames.
func (c liveCtx) roundTrip(ms []Message) error {
	l := c.l
	bc, isBatch := l.codec.(batchCodec)
	if isBatch && len(ms) > 1 {
		ps := make([]Payload, len(ms))
		for i, m := range ms {
			ps[i] = m.Payload
		}
		b, err := bc.AppendEncodeBatch(l.scratch[c.id][:0], ps)
		if err != nil {
			return fmt.Errorf("codec batch: %w", err)
		}
		l.scratch[c.id] = b
		out, err := bc.DecodeBatch(b)
		if err != nil {
			return fmt.Errorf("codec batch: %w", err)
		}
		if len(out) != len(ms) {
			return fmt.Errorf("codec batch: %d payloads in, %d out", len(ms), len(out))
		}
		for i := range ms {
			ms[i].Payload = out[i]
		}
		return nil
	}
	for i := range ms {
		if err := c.roundTripOne(&ms[i]); err != nil {
			return err
		}
	}
	return nil
}

// mailbox is an unbounded FIFO queue between network deliveries and a
// process goroutine, so senders never block on slow receivers (channels
// model unbounded asynchronous links here).
type mailbox struct {
	in  chan Message
	out chan Message
}

func newMailbox() *mailbox {
	return &mailbox{
		in:  make(chan Message),
		out: make(chan Message),
	}
}

func (b *mailbox) pump(stop <-chan struct{}) {
	var queue []Message
	for {
		var out chan Message
		var head Message
		if len(queue) > 0 {
			out = b.out
			head = queue[0]
		}
		select {
		case <-stop:
			return
		case m := <-b.in:
			queue = append(queue, m)
		case out <- head:
			queue = queue[1:]
		}
	}
}
