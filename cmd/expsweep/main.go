// Command expsweep regenerates every reproduction experiment (E1–E9 of
// DESIGN.md §4) and prints the tables recorded in EXPERIMENTS.md.
//
//	expsweep           # quick scale (minutes)
//	expsweep -full     # full scale (tens of minutes)
//	expsweep -only E4  # a single experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"svssba/internal/exp"
	"svssba/internal/trace"
)

func main() {
	var (
		full = flag.Bool("full", false, "run full-scale experiments")
		only = flag.String("only", "", "run a single experiment (E1..E9)")
	)
	flag.Parse()

	scale := exp.Scale{Quick: !*full}
	experiments := []struct {
		name string
		run  func(exp.Scale) *trace.Table
	}{
		{name: "E1", run: exp.E1},
		{name: "E2", run: exp.E2},
		{name: "E3", run: exp.E3},
		{name: "E4", run: exp.E4},
		{name: "E5", run: exp.E5},
		{name: "E6", run: exp.E6},
		{name: "E7", run: exp.E7},
		{name: "E8", run: exp.E8},
		{name: "E9", run: exp.E9},
	}

	ran := 0
	for _, e := range experiments {
		if *only != "" && e.name != *only {
			continue
		}
		start := time.Now()
		tb := e.run(scale)
		fmt.Println(tb.String())
		fmt.Printf("(%s took %v)\n\n", e.name, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "expsweep: unknown experiment %q\n", *only)
		os.Exit(1)
	}
}
