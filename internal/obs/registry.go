// Package obs is the runtime observability layer: a metrics registry
// whose instruments are safe for concurrent use and free of allocation
// on the update path, a ring-buffered protocol round tracer with JSONL
// export, an HTTP introspection server (metric snapshots + pprof), and
// a periodic one-line reporter for long runs.
//
// The package deliberately depends on nothing but the standard library:
// protocol packages adapt their identifiers (proc ids, tags, scopes) to
// plain integers at the hook site, so obs can sit under any layer
// without import cycles.
//
// Instrumentation is observation-only by contract: nothing in this
// package feeds back into protocol behavior, so a run with metrics and
// tracing attached is byte-identical to one without (the obs parity
// test pins this on the deterministic simulator).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64. Update is one atomic
// add: safe from any goroutine, zero allocations.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (d must be non-negative for the value to stay monotone;
// nothing enforces it).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous int64 value. Safe from any goroutine, zero
// allocations.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative deltas allowed).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket int64 histogram: bucket i counts
// observations v <= Bounds[i]; one extra overflow bucket counts the
// rest. Observe is a bucket search plus three atomic adds — safe from
// any goroutine, zero allocations. Bounds are fixed at registration, so
// snapshots from different nodes of one registry are directly
// summable.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last = overflow
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// Observe records v.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// snapshot captures the histogram's state. Buckets are read without a
// global lock, so a snapshot taken mid-update can be off by in-flight
// observations — fine for monitoring, documented for tests.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
		Max:    h.max.Load(),
		Bounds: h.bounds, // immutable after registration
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// ExpBuckets returns n bucket bounds starting at start, each factor
// times the previous, rounded up to stay strictly increasing. The
// standard latency/size bucket shape.
func ExpBuckets(start int64, factor float64, n int) []int64 {
	if start < 1 {
		start = 1
	}
	bounds := make([]int64, 0, n)
	f := float64(start)
	last := int64(0)
	for i := 0; i < n; i++ {
		b := int64(f)
		if b <= last {
			b = last + 1
		}
		bounds = append(bounds, b)
		last = b
		f *= factor
	}
	return bounds
}

// LinearBuckets returns n bounds start, start+step, ...
func LinearBuckets(start, step int64, n int) []int64 {
	bounds := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		bounds = append(bounds, start+int64(i)*step)
	}
	return bounds
}

// Registry holds named instruments. Registration (Counter, Gauge,
// Histogram, GaugeFunc) takes a lock and may allocate; it is meant for
// setup time, and registering an existing name returns the existing
// instrument (with matching type) so restarts re-register harmlessly.
// The instruments themselves never touch the registry again — the hot
// path is entirely atomic operations on the instrument.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	gaugeFns  map[string]func() int64
	nameOrder []string // registration order, for stable text output
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		gaugeFns: make(map[string]func() int64),
	}
}

func (r *Registry) noteName(name string) {
	r.nameOrder = append(r.nameOrder, name)
}

// Counter returns the counter registered under name, creating it on
// first use. Panics if the name is already a different instrument kind.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFreeLocked(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	r.noteName(name)
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFreeLocked(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	r.noteName(name)
	return g
}

// GaugeFunc registers (or replaces) a pull-based gauge: fn is invoked
// at snapshot time, off the hot path. fn must be safe to call from any
// goroutine and should not block; a slow fn slows every snapshot.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.gaugeFns[name]; !ok {
		r.checkFreeLocked(name, "gaugefunc")
		r.noteName(name)
	}
	r.gaugeFns[name] = fn
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket bounds on first use (bounds must be sorted
// ascending; they are copied). Re-registering returns the existing
// histogram; its original bounds win.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.checkFreeLocked(name, "histogram")
	if len(bounds) == 0 {
		bounds = ExpBuckets(1, 2, 20)
	}
	h := &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.hists[name] = h
	r.noteName(name)
	return h
}

func (r *Registry) checkFreeLocked(name, kind string) {
	for _, m := range []string{"counter", "gauge", "gaugefunc", "histogram"} {
		if m == kind {
			continue
		}
		var taken bool
		switch m {
		case "counter":
			_, taken = r.counters[name]
		case "gauge":
			_, taken = r.gauges[name]
		case "gaugefunc":
			_, taken = r.gaugeFns[name]
		case "histogram":
			_, taken = r.hists[name]
		}
		if taken {
			panic(fmt.Sprintf("obs: %q already registered as a %s, requested as %s", name, m, kind))
		}
	}
}

// HistogramSnapshot is one histogram's state at snapshot time.
type HistogramSnapshot struct {
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Max    int64   `json:"max"`
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"` // len(Bounds)+1; last = overflow
}

// Mean returns the average observation (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) by linear
// interpolation inside the holding bucket. Values in the overflow
// bucket report the last bound (a floor, clearly marked by Max).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		lo := int64(0)
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		if i >= len(s.Bounds) {
			// Overflow bucket: no upper bound to interpolate toward.
			return float64(s.Bounds[len(s.Bounds)-1])
		}
		hi := s.Bounds[i]
		frac := (rank - float64(prev)) / float64(c)
		return float64(lo) + frac*float64(hi-lo)
	}
	return float64(s.Max)
}

// Snapshot is a point-in-time copy of every instrument in a registry,
// in the expvar spirit: one JSON document, stable keys.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every instrument. Gauge functions run outside the
// registry lock, so a function that itself registers metrics cannot
// deadlock (it will be missed by this snapshot and caught by the next).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)+len(r.gaugeFns)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	fns := make(map[string]func() int64, len(r.gaugeFns))
	for name, fn := range r.gaugeFns {
		fns[name] = fn
	}
	r.mu.Unlock()
	for name, fn := range fns {
		s.Gauges[name] = fn()
	}
	return s
}

// WriteJSON writes the snapshot as one indented JSON document
// (encoding/json sorts map keys, so output is diffable).
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
