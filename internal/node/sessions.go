package node

import (
	"fmt"
	"math/rand"
	"sync"

	"svssba/internal/core"
	"svssba/internal/obs"
	"svssba/internal/proto"
	"svssba/internal/sim"
)

// Service mode. A node normally hosts exactly one protocol stack whose
// lifetime is the node's incarnation. With Config.Service set, the node
// instead hosts many concurrent stacks, one per *scope* — an opaque
// uint64 the driver assigns (internal/acs packs a session id and a slot
// into it). Every payload a scoped stack sends is wrapped in a
// proto.Scoped envelope; inbound envelopes route to the scope's stack,
// auto-opening it through the driver on first traffic. Scopes retire
// independently: after each delivery burst the node asks the driver
// which touched scopes are done and releases exactly those stacks,
// keeping a tombstone so late traffic for a finished scope is dropped
// before its inner payload is even decoded.
//
// All driver callbacks run on the goroutine of the lane owning the
// scope (the node's single delivery goroutine when Lanes <= 1) — they
// may touch that lane's sessions and stacks freely and must not block
// or call Inject. With Lanes > 1, callbacks for different scopes run
// concurrently: driver state shared across scopes needs its own
// synchronization, and a sibling scope on another lane must be opened
// through Node.StartScope (asynchronous) or kept on the same lane via
// Config.LaneKey and opened with Session.OpenPeer.

// ServiceDriver plugs a multi-session protocol composition into a
// node's delivery loop.
type ServiceDriver interface {
	// Open builds the protocol stack for a new scope: create it, wire
	// handlers/observers, but send nothing — the node binds the stack and
	// runs its Init before traffic can flow. Returning nil rejects the
	// scope permanently (the node keeps a tombstone and drops its
	// traffic).
	Open(s *Session) *core.Stack
	// Opened runs after the scope's stack is bound and initialized;
	// first sends (e.g. a proposal broadcast) belong here.
	Opened(s *Session)
	// MayRetire reports whether a touched scope's stack can be released.
	// Called after each delivery burst for every scope that saw traffic
	// in it.
	MayRetire(s *Session) bool
}

// Session is one scoped protocol stack hosted by a service-mode node.
// All methods are owning-lane only (the delivery goroutine on a
// one-lane node).
type Session struct {
	scope    uint64
	n        *Node
	ln       *lane
	ctx      *scopedCtx
	stack    *core.Stack
	touched  bool
	retired  bool
	rejected bool
}

// Scope returns the session's scope id.
func (s *Session) Scope() uint64 { return s.scope }

// Stack returns the session's protocol stack (nil once retired or when
// the driver rejected the scope).
func (s *Session) Stack() *core.Stack { return s.stack }

// Ctx returns the session's scoped send context: everything sent
// through it crosses the wire inside a proto.Scoped envelope carrying
// this session's scope.
func (s *Session) Ctx() sim.Context { return s.ctx }

// Retired reports whether the scope's stack was released.
func (s *Session) Retired() bool { return s.retired }

// Touch marks the session for the end-of-burst retirement check. The
// node touches a session automatically when delivering to it; a driver
// must Touch any *other* session it mutates during a callback (e.g.
// proposing into a sibling scope), or that scope's retirement waits for
// its next inbound traffic.
func (s *Session) Touch() {
	if s.touched || s.retired {
		return
	}
	s.touched = true
	s.ln.touchedSessions = append(s.ln.touchedSessions, s)
}

// scopedCtx wraps the lane's runCtx so every send is wrapped in the
// session's scope envelope. Batching and burst coalescing compose
// underneath: envelopes from many scopes share one outbox group (they
// all carry the proto.KindScoped kind) and leave as one batch frame.
type scopedCtx struct {
	scope uint64
	rc    *runCtx
}

var _ sim.Context = (*scopedCtx)(nil)

func (c *scopedCtx) N() int           { return c.rc.N() }
func (c *scopedCtx) T() int           { return c.rc.T() }
func (c *scopedCtx) Rand() *rand.Rand { return c.rc.Rand() }
func (c *scopedCtx) Now() int64       { return c.rc.Now() }

func (c *scopedCtx) Send(to sim.ProcID, p sim.Payload) {
	m, ok := p.(proto.Marshaler)
	if !ok {
		n := c.rc.n
		n.noteErr(fmt.Errorf("node %d: scope %d: payload %q is not wire-encodable", n.cfg.ID, c.scope, p.Kind()))
		return
	}
	c.rc.Send(to, proto.Scoped{Scope: c.scope, Inner: m})
}

// OpenScope finds or creates the session for scope, driving the
// ServiceDriver's Open/Opened on a miss. Owning-lane goroutine only —
// drivers call it from callbacks for scopes on the same lane; cross-
// lane opens go through StartScope, everyone else through Inject.
func (n *Node) OpenScope(scope uint64) *Session {
	return n.openScopeOn(n.laneFor(scope), scope)
}

// openScopeOn is OpenScope pinned to the lane that owns the scope; it
// must run on that lane's goroutine.
func (n *Node) openScopeOn(ln *lane, scope uint64) *Session {
	if s, ok := ln.sessions[scope]; ok {
		return s
	}
	s := &Session{scope: scope, n: n, ln: ln, ctx: &scopedCtx{scope: scope, rc: ln.ctx}}
	ln.sessions[scope] = s
	st := n.cfg.Service.Open(s)
	if st == nil {
		s.rejected = true
		s.retired = true
		n.scopesRetired.Add(1)
		return s
	}
	s.stack = st
	if h := n.obsHooks(scope); h != nil {
		st.SetTraceHooks(h)
	}
	n.scopesLive.Add(1)
	n.cfg.Trace.Record(obs.KindScopeOpen, scope, 0, 0, 0, 0)
	st.Node.Init(s.ctx)
	s.Touch()
	n.cfg.Service.Opened(s)
	return s
}

// Inject runs fn on the node's delivery goroutine (lane 0 on a
// multi-lane node), between bursts, with a full outbox flush and
// retirement pass after it — the only safe way into driver and session
// state from outside. It blocks until the loop accepts fn (not until
// fn ran) and fails once the node stops; an accepted fn is guaranteed
// to run, even if the node stops in between. fn must not call Inject
// (the loop runs one function at a time).
func (n *Node) Inject(fn func()) error {
	n.mu.Lock()
	if n.state != stateRunning || n.injectC == nil {
		n.mu.Unlock()
		return fmt.Errorf("node %d: not running", n.cfg.ID)
	}
	if n.laneCount > 1 {
		ln := n.lanes[0]
		n.mu.Unlock()
		return ln.enqueueCtl(fn)
	}
	stop, inj := n.stop, n.injectC
	n.mu.Unlock()
	select {
	case inj <- fn:
		return nil
	case <-stop:
		return fmt.Errorf("node %d: stopped", n.cfg.ID)
	}
}

// deliverScoped routes one decoded batch element (or single-frame
// payload) on the legacy one-lane path: check the envelope, then hand
// it to lane 0.
func (n *Node) deliverScoped(ctx *runCtx, from sim.ProcID, p sim.Payload) {
	sc, ok := p.(proto.Scoped)
	if !ok {
		n.noteDecodeErrSh(ctx.sh, fmt.Errorf("node %d: from %d: unscoped payload %q in service mode", n.cfg.ID, from, p.Kind()))
		return
	}
	n.deliverScopedOn(n.lanes[0], from, sc)
}

// deliverScopedOn delivers one scope envelope on its owning lane: check
// the scope is live, and only then pay for the inner decode.
func (n *Node) deliverScopedOn(ln *lane, from sim.ProcID, sc proto.Scoped) {
	sess := ln.sessions[sc.Scope]
	if sess == nil {
		sess = n.openScopeOn(ln, sc.Scope)
	}
	if sess.retired {
		ln.sh.countLatePayload()
		return
	}
	inner, err := n.codec.Decode(sc.Raw)
	if err != nil {
		n.noteDecodeErrSh(ln.sh, fmt.Errorf("node %d: from %d: scope %d: %w", n.cfg.ID, from, sc.Scope, err))
		return
	}
	if _, nested := inner.(proto.Scoped); nested {
		n.noteDecodeErrSh(ln.sh, fmt.Errorf("node %d: from %d: nested scope envelope in scope %d", n.cfg.ID, from, sc.Scope))
		return
	}
	ln.sh.countRecvPayload(inner.Kind(), standaloneSize(sc))
	sess.Touch()
	sess.stack.Node.Deliver(sess.ctx, sim.Message{
		From:    from,
		To:      n.cfg.ID,
		Payload: inner,
		SentAt:  ln.ctx.Now(),
	})
}

// processScopeRetirements ends a one-lane service burst (legacy loop).
func (n *Node) processScopeRetirements() {
	n.processScopeRetirementsOn(n.lanes[0])
}

// processScopeRetirementsOn ends a service-mode burst on one lane:
// every session the burst touched is offered to the driver for
// retirement. Retiring keeps the Session as a tombstone (late traffic
// for the scope must still be counted and dropped) but releases the
// stack.
func (n *Node) processScopeRetirementsOn(ln *lane) {
	drv := n.cfg.Service
	// Index loop: MayRetire may Touch further sessions (e.g. a completed
	// composition touching its siblings), growing the slice mid-pass.
	for i := 0; i < len(ln.touchedSessions); i++ {
		s := ln.touchedSessions[i]
		s.touched = false
		if s.retired || s.stack == nil {
			continue
		}
		if drv.MayRetire(s) {
			s.stack.Retire()
			s.stack = nil
			s.retired = true
			n.scopesLive.Add(-1)
			n.scopesRetired.Add(1)
			n.cfg.Trace.Record(obs.KindScopeRetire, s.scope, 0, 0, 0, 0)
		}
	}
	ln.touchedSessions = ln.touchedSessions[:0]
}

// ServiceCounts aggregates a service-mode node's session state.
type ServiceCounts struct {
	// Live and Retired count scopes ever opened this incarnation
	// (rejected scopes count as Retired).
	Live, Retired int
	// State sums StateCounts over the live stacks — the number that must
	// return to baseline when sessions retire.
	State core.StateCounts
}

func (c *ServiceCounts) add(o ServiceCounts) {
	c.Live += o.Live
	c.Retired += o.Retired
	c.State.Add(o.State)
}

// ServiceCounts snapshots the session tables. Each lane's slice of the
// snapshot runs on that lane's goroutine (via an injected thunk) so it
// is consistent with a burst boundary; once the node stopped it reads
// directly. Returns false on a non-service node.
func (n *Node) ServiceCounts() (ServiceCounts, bool) {
	if n.cfg.Service == nil {
		return ServiceCounts{}, false
	}
	n.mu.Lock()
	lanes := n.lanes
	n.mu.Unlock()
	var mu sync.Mutex
	var out ServiceCounts
	var wg sync.WaitGroup
	live := true
	for _, ln := range lanes {
		ln := ln
		wg.Add(1)
		err := n.injectOn(ln, func() {
			c := ln.countsNow()
			mu.Lock()
			out.add(c)
			mu.Unlock()
			wg.Done()
		})
		if err != nil {
			wg.Done()
			live = false
			break
		}
	}
	if !live {
		// Not (fully) running: wait out the delivery goroutines — any
		// thunks that were accepted run before done closes — then read
		// the tables directly.
		n.mu.Lock()
		nd := n.done
		n.mu.Unlock()
		if nd != nil {
			<-nd
		}
		var direct ServiceCounts
		for _, ln := range lanes {
			direct.add(ln.countsNow())
		}
		return direct, true
	}
	wg.Wait()
	return out, true
}

// injectOn routes a thunk to one specific lane: the inject channel on
// the legacy single-lane loop, the lane's control queue otherwise.
func (n *Node) injectOn(ln *lane, fn func()) error {
	if n.laneCount > 1 {
		n.mu.Lock()
		running := n.state == stateRunning
		n.mu.Unlock()
		if !running {
			return fmt.Errorf("node %d: not running", n.cfg.ID)
		}
		return ln.enqueueCtl(fn)
	}
	return n.Inject(fn)
}

// countsNow sums one lane's session table (owning-lane goroutine, or
// stopped node).
func (ln *lane) countsNow() ServiceCounts {
	var out ServiceCounts
	for _, s := range ln.sessions {
		if s.retired {
			out.Retired++
			continue
		}
		out.Live++
		if s.stack != nil {
			out.State.Add(s.stack.StateCounts())
		}
	}
	return out
}
