package proto_test

import (
	"bytes"
	"testing"

	"svssba/internal/proto"
	"svssba/internal/sim"
)

// marshalTag encodes a tag and sanity-checks the size contract.
func marshalTag(t *testing.T, tag proto.Tag) []byte {
	t.Helper()
	var w proto.Writer
	tag.MarshalTo(&w)
	if w.Len() != proto.TagSize() {
		t.Fatalf("encoded size %d, want TagSize %d", w.Len(), proto.TagSize())
	}
	return w.Bytes()
}

// FuzzTagRoundTrip drives the session/tag identifier layer from
// structured inputs: any Tag — any SessionID (dealer, kind, round,
// index), any MWKey, any step and parameter — must marshal to exactly
// TagSize bytes, read back equal, and fail cleanly on every truncation
// of its encoding. This mirrors the codec fuzzers one layer down: tags
// are what the DMM layer routes on, so a Byzantine sender must not be
// able to confuse ReadTag.
func FuzzTagRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint16(1), uint8(1), uint64(0), uint32(0), uint16(0), uint16(0), uint8(0), uint8(0), uint32(0))
	f.Add(uint8(proto.ProtoMW), uint16(2), uint8(proto.KindCoin), uint64(7), uint32(3),
		uint16(2), uint16(1), uint8(1), uint8(4), uint32(9))
	f.Add(uint8(255), uint16(65535), uint8(255), ^uint64(0), ^uint32(0),
		uint16(65535), uint16(65535), uint8(255), uint8(255), ^uint32(0))
	f.Fuzz(func(t *testing.T, protoNS uint8, dealer uint16, kind uint8, round uint64, index uint32,
		mwDealer, mwModerator uint16, slot, step uint8, a uint32) {
		tag := proto.Tag{
			Proto: protoNS,
			Session: proto.SessionID{
				Dealer: sim.ProcID(dealer),
				Kind:   proto.SessionKind(kind),
				Round:  round,
				Index:  index,
			},
			MW: proto.MWKey{
				Dealer:    sim.ProcID(mwDealer),
				Moderator: sim.ProcID(mwModerator),
				Slot:      slot,
			},
			Step: step,
			A:    a,
		}
		enc := marshalTag(t, tag)

		r := proto.NewReader(enc)
		got := proto.ReadTag(r)
		if err := r.Close(); err != nil {
			t.Fatalf("decode own encoding: %v", err)
		}
		if got != tag {
			t.Fatalf("round trip changed tag:\n  in:  %+v\n  out: %+v", tag, got)
		}

		// Every truncation must surface ErrShortBuffer via the sticky
		// reader error — never panic, never read out of bounds.
		for cut := 0; cut < len(enc); cut++ {
			tr := proto.NewReader(enc[:cut])
			_ = proto.ReadTag(tr)
			if tr.Err() == nil {
				t.Fatalf("truncated tag of %d bytes decoded cleanly", cut)
			}
		}
	})
}

// FuzzReadTag feeds arbitrary bytes to ReadTag: it must never panic,
// and any input it fully consumes must re-marshal byte-identically
// (the identifier layer has no unused encoding space).
func FuzzReadTag(f *testing.F) {
	var w proto.Writer
	proto.Tag{
		Proto:   proto.ProtoSVSS,
		Session: proto.SessionID{Dealer: 3, Kind: proto.KindApp, Round: 1, Index: 2},
		MW:      proto.MWKey{Dealer: 1, Moderator: 2, Slot: 1},
		Step:    2,
		A:       5,
	}.MarshalTo(&w)
	f.Add(w.Bytes())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, proto.TagSize()))
	f.Fuzz(func(t *testing.T, b []byte) {
		r := proto.NewReader(b)
		tag := proto.ReadTag(r)
		if r.Err() != nil {
			return
		}
		if r.Remaining() > 0 {
			// ReadTag consumes a fixed prefix; trailing bytes belong to
			// the caller (tags are embedded in larger messages).
			b = b[:len(b)-r.Remaining()]
		}
		var w proto.Writer
		tag.MarshalTo(&w)
		if !bytes.Equal(w.Bytes(), b) {
			t.Fatalf("re-marshal differs:\n  in:  %x\n  out: %x", b, w.Bytes())
		}
	})
}
