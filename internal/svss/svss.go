// Package svss implements Shunning Verifiable Secret Sharing — the
// paper's primary contribution (§4). The dealer of session (c, i) draws a
// random degree-t bivariate polynomial f(x, y) with f(0, 0) = s, hands
// every process j its row g_j(y) = f(j, y) and column h_j(x) = f(x, j),
// and then every ordered pair of processes cross-commits the four values
// f(l, j), f(j, l) through MW-SVSS instances in which one process deals
// and the other moderates. SVSS satisfies the full VSS properties
// (Validity, Binding, Hiding, Termination) except that, when the
// adversary breaks Validity or Binding, some nonfaulty process starts
// shunning a newly detected faulty process — which can happen at most
// t(n−t) times overall, the bound the Byzantine agreement layer relies
// on (§5).
//
// Sub-instance naming: for an ordered pair (d, m), slot 0 shares
// f(m, d) and slot 1 shares f(d, m); the four invocations of the paper's
// share step 2 for a pair {j, l} are slots 0 and 1 of (d=j, m=l) plus
// slots 0 and 1 of (d=l, m=j).
package svss

import (
	"fmt"

	"svssba/internal/dmm"
	"svssba/internal/field"
	"svssba/internal/intern"
	"svssba/internal/mwsvss"
	"svssba/internal/poly"
	"svssba/internal/proto"
	"svssba/internal/sim"
)

// StepG is the broadcast step of the dealer's G announcement (share
// step 5).
const StepG uint8 = 1

// KindDeal is the payload kind of the dealer's row/column message.
const KindDeal = "svss/deal"

// Deal is share step 1: the dealer sends process j the evaluations
// g_j(1..t+1) and h_j(1..t+1) from which j reconstructs its row and
// column polynomials. A batched session concatenates the k slots'
// evaluations slot-major (k·(t+1) points per list); the receiver
// recovers k from the length, so a width-1 deal is byte-identical to
// the classic message.
type Deal struct {
	Session proto.SessionID
	RowPts  []field.Element
	ColPts  []field.Element
}

var _ proto.Marshaler = Deal{}
var _ dmm.Sessioned = Deal{}

// Kind implements sim.Payload.
func (Deal) Kind() string { return KindDeal }

// Size implements sim.Payload.
func (d Deal) Size() int {
	return 15 + proto.ElemsSize(len(d.RowPts)) + proto.ElemsSize(len(d.ColPts))
}

// SessionRef implements dmm.Sessioned.
func (d Deal) SessionRef() proto.MWID { return proto.MWID{Session: d.Session} }

// MarshalTo implements proto.Marshaler.
func (d Deal) MarshalTo(w *proto.Writer) {
	w.Proc(d.Session.Dealer)
	w.U8(uint8(d.Session.Kind))
	w.U64(d.Session.Round)
	w.U32(d.Session.Index)
	w.Elems(d.RowPts)
	w.Elems(d.ColPts)
}

// RegisterCodec registers SVSS message decoding.
func RegisterCodec(c *proto.Codec) {
	c.Register(KindDeal, func(r *proto.Reader) (sim.Payload, error) {
		var d Deal
		d.Session.Dealer = r.Proc()
		d.Session.Kind = proto.SessionKind(r.U8())
		d.Session.Round = r.U64()
		d.Session.Index = r.U32()
		d.RowPts = r.Elems()
		d.ColPts = r.Elems()
		return d, r.Err()
	})
}

// Output is the result of reconstruct protocol R: a field value or ⊥.
type Output struct {
	Value  field.Element
	Bottom bool
}

// String implements fmt.Stringer.
func (o Output) String() string {
	if o.Bottom {
		return "⊥"
	}
	return o.Value.String()
}

// Host is what the engine needs from its process.
type Host interface {
	Self() sim.ProcID
	Broadcast(ctx sim.Context, tag proto.Tag, value []byte)
	DMM() *dmm.DMM
}

// Callbacks notify the layer above (the common coin, tests, the public
// API) of session progress.
type Callbacks struct {
	// ShareComplete fires when protocol S completes locally (step 6),
	// once per session — the share phase covers every batch slot.
	ShareComplete func(ctx sim.Context, sid proto.SessionID)
	// ReconstructComplete fires when protocol R outputs locally (step 3)
	// for one batch slot (slot 0 for classic single-secret sessions).
	ReconstructComplete func(ctx sim.Context, sid proto.SessionID, slot int, out Output)
}

// pairDone tracks dealer-side completion of the four instances of an
// unordered pair (share step 3).
type pairKey struct {
	a, b sim.ProcID // a < b
}

func mkPair(x, y sim.ProcID) pairKey {
	if x < y {
		return pairKey{a: x, b: y}
	}
	return pairKey{a: y, b: x}
}

// instance is the per-session state of one process.
//
// The per-sub-instance collections are dense: an MW key with canonical
// coordinates (dealer, moderator in 1..n, slot 0 or 1) maps to a small
// index (keyIdx) into bitsets and slabs, so the per-completion
// bookkeeping and the allPairsShared/Reconstructed scans that run on
// every advance do bit arithmetic instead of map operations. Keys a
// Byzantine process can mint outside the canonical ranges (e.g. a
// bogus slot in a crafted tag) fall back to tiny spill maps that are
// never allocated in honest runs.
type instance struct {
	sid proto.SessionID
	ref proto.MWID // session-level reference (zero MW key)
	n   int        // system size (sizes the dense index space)
	k   int        // batch width; 0 until the session's geometry is known

	// Dealer state.
	pairCount  []uint16         // completed sub-shares out of 4, (a,b) a<b
	pairSpill  map[pairKey]int  // non-canonical pairs
	gSub       []intern.ProcSet // G_j under construction (index j)
	gSubSpill  map[sim.ProcID]map[sim.ProcID]bool
	dealing    bool
	gBroadcast bool

	// Participant state (per batch slot where vectorized).
	rowPolys []poly.Poly // g^s_j per slot
	colPolys []poly.Poly // h^s_j per slot
	polySet  bool
	joined   bool // initiated the pairwise MW instances

	mwDone      intern.Bits // completed sub-shares by keyIdx
	mwDoneSpill map[proto.MWKey]bool

	gKnown    bool
	g         []sim.ProcID   // Ĝ
	gSets     [][]sim.ProcID // Ĝ_j for j ∈ Ĝ (index j)
	shareDone bool

	// Reconstruct state, per batch slot. Sub-outputs are stored per
	// (slot, keyIdx): mwOut[slot] is a keyIdx-indexed slab, the set bits
	// index slot*kspan+keyIdx.
	reconWanted  intern.Bits // slots requested locally
	reconStarted intern.Bits // slots whose sub-reconstructions launched
	mwOut        [][]mwsvss.Output
	mwOutSet     intern.Bits
	mwOutSpill   map[slotMWKey]mwsvss.Output
	reconDone    intern.Bits // slots output
}

// slotMWKey keys the spill map for sub-outputs of non-canonical keys.
type slotMWKey struct {
	key  proto.MWKey
	slot int
}

// kspan is the dense keyIdx space size (the per-slot stride of the
// sub-output index).
func (in *instance) kspan() int { return 2 * (in.n + 1) * (in.n + 1) }

// keyIdx maps a canonical MW key to its dense index, or -1 for keys
// outside the canonical ranges.
func (in *instance) keyIdx(k proto.MWKey) int {
	d, m := int(k.Dealer), int(k.Moderator)
	if d < 1 || d > in.n || m < 1 || m > in.n || k.Slot > 1 {
		return -1
	}
	return (d*(in.n+1)+m)*2 + int(k.Slot)
}

// markShared records a completed sub-share.
func (in *instance) markShared(k proto.MWKey) {
	if i := in.keyIdx(k); i >= 0 {
		in.mwDone.Add(i)
		return
	}
	if in.mwDoneSpill == nil {
		in.mwDoneSpill = make(map[proto.MWKey]bool)
	}
	in.mwDoneSpill[k] = true
}

// shared reports whether the sub-share of k completed.
func (in *instance) shared(k proto.MWKey) bool {
	if i := in.keyIdx(k); i >= 0 {
		return in.mwDone.Has(i)
	}
	return in.mwDoneSpill[k]
}

// putOut records a sub-reconstruction output for one batch slot,
// reporting whether it is the first for (k, slot).
func (in *instance) putOut(k proto.MWKey, slot int, out mwsvss.Output) bool {
	if i := in.keyIdx(k); i >= 0 && slot >= 0 && slot < mwsvss.MaxBatchSlots {
		if !in.mwOutSet.Add(slot*in.kspan() + i) {
			return false
		}
		for len(in.mwOut) <= slot {
			in.mwOut = append(in.mwOut, nil)
		}
		if in.mwOut[slot] == nil {
			in.mwOut[slot] = make([]mwsvss.Output, in.kspan())
		}
		in.mwOut[slot][i] = out
		return true
	}
	sk := slotMWKey{key: k, slot: slot}
	if _, dup := in.mwOutSpill[sk]; dup {
		return false
	}
	if in.mwOutSpill == nil {
		in.mwOutSpill = make(map[slotMWKey]mwsvss.Output)
	}
	in.mwOutSpill[sk] = out
	return true
}

// getOut returns the recorded sub-reconstruction output for (k, slot).
func (in *instance) getOut(k proto.MWKey, slot int) (mwsvss.Output, bool) {
	if i := in.keyIdx(k); i >= 0 && slot >= 0 && slot < mwsvss.MaxBatchSlots {
		if slot >= len(in.mwOut) || !in.mwOutSet.Has(slot*in.kspan()+i) {
			return mwsvss.Output{}, false
		}
		return in.mwOut[slot][i], true
	}
	out, ok := in.mwOutSpill[slotMWKey{key: k, slot: slot}]
	return out, ok
}

// Engine runs all SVSS sessions of one process, driving a shared MW-SVSS
// engine for the pairwise sub-instances. Session ids are interned; the
// slab holds pointers because advance keeps an instance alive across
// broadcasts and MW calls that can re-enter the engine.
type Engine struct {
	host  Host
	mw    *mwsvss.Engine
	cb    Callbacks
	table intern.Table[proto.SessionID]
	insts []*instance
	n     int
}

// New returns an SVSS engine using mw for its sub-instances. The caller
// must route MW-SVSS callbacks for non-KindMW sessions into
// OnMWShareComplete / OnMWReconComplete (core.AttachStack does this).
func New(host Host, mw *mwsvss.Engine, cb Callbacks) *Engine {
	return &Engine{host: host, mw: mw, cb: cb}
}

func (e *Engine) inst(ctx sim.Context, sid proto.SessionID) *instance {
	slot, fresh := e.table.Intern(sid)
	if int(slot) >= len(e.insts) {
		e.insts = append(e.insts, nil)
	}
	if fresh {
		if e.n == 0 {
			e.n = ctx.N()
		}
		in := e.insts[slot]
		if in == nil {
			in = &instance{}
			e.insts[slot] = in
		}
		*in = instance{sid: sid, ref: proto.MWID{Session: sid}, n: e.n}
		e.host.DMM().BeginShare(in.ref)
	}
	return e.insts[slot]
}

// lookup returns the session instance, or nil.
func (e *Engine) lookup(sid proto.SessionID) *instance {
	slot := e.table.Lookup(sid)
	if slot == intern.NoID {
		return nil
	}
	return e.insts[slot]
}

// ShareDone reports whether S completed locally for sid.
func (e *Engine) ShareDone(sid proto.SessionID) bool {
	in := e.lookup(sid)
	return in != nil && in.shareDone
}

// ReconDone reports whether R completed locally for slot 0 of sid.
func (e *Engine) ReconDone(sid proto.SessionID) bool {
	return e.ReconDoneSlot(sid, 0)
}

// ReconDoneSlot reports whether R completed locally for one slot of sid.
func (e *Engine) ReconDoneSlot(sid proto.SessionID, slot int) bool {
	in := e.lookup(sid)
	return in != nil && in.reconDone.Has(slot)
}

// Width returns the batch width of sid (0 when unknown).
func (e *Engine) Width(sid proto.SessionID) int {
	in := e.lookup(sid)
	if in == nil {
		return 0
	}
	return in.k
}

// Live returns the number of live sessions (retirement tests).
func (e *Engine) Live() int { return e.table.Len() }

// SlabCap returns the session slab's high-water slot count.
func (e *Engine) SlabCap() int { return e.table.HighWater() }

// Created returns the cumulative number of SVSS sessions ever created.
func (e *Engine) Created() uint64 { return e.table.Created() }

// Reset releases every session and its interned id. The slab keeps its
// instance objects for reuse (freshly interned ids re-initialize them
// in place). Used when the owning stack retires.
func (e *Engine) Reset() {
	for _, in := range e.insts {
		if in != nil {
			*in = instance{}
		}
	}
	e.table.Reset()
}

// mwid builds a sub-instance id within a session.
func mwid(sid proto.SessionID, d, m sim.ProcID, slot uint8) proto.MWID {
	return proto.MWID{Session: sid, Key: proto.MWKey{Dealer: d, Moderator: m, Slot: slot}}
}

// Share runs share step 1 for a new single-secret session: the calling
// process becomes the dealer of sid and shares secret.
func (e *Engine) Share(ctx sim.Context, sid proto.SessionID, secret field.Element) error {
	return e.ShareVec(ctx, sid, []field.Element{secret})
}

// ShareVec runs share step 1 for a batch of secrets: one bivariate
// polynomial per slot, one Deal message per peer carrying every slot's
// row/column points, and — through the MW layer's own batching — one
// quorum phase for the whole batch. Each slot later reconstructs
// independently via ReconstructSlot.
func (e *Engine) ShareVec(ctx sim.Context, sid proto.SessionID, secrets []field.Element) error {
	if sid.Dealer != e.host.Self() {
		return fmt.Errorf("svss: process %d is not dealer of %s", e.host.Self(), sid)
	}
	k := len(secrets)
	if k < 1 || k > mwsvss.MaxBatchSlots {
		return fmt.Errorf("svss: batch width %d out of range 1..%d", k, mwsvss.MaxBatchSlots)
	}
	in := e.inst(ctx, sid)
	if in.dealing {
		return fmt.Errorf("svss: session %s already dealt", sid)
	}
	if in.k != 0 && in.k != k {
		return fmt.Errorf("svss: session %s already has width %d, not %d", sid, in.k, k)
	}
	in.dealing = true
	in.k = k

	t := ctx.T()
	fs := make([]poly.Bivariate, k)
	for s := 0; s < k; s++ {
		fs[s] = poly.NewRandomBivariate(ctx.Rand(), t, secrets[s])
	}
	for j := 1; j <= ctx.N(); j++ {
		rowPts := make([]field.Element, 0, k*(t+1))
		colPts := make([]field.Element, 0, k*(t+1))
		for s := 0; s < k; s++ {
			rowPts = append(rowPts, fs[s].Row(uint64(j)).EvalRange(t+1)...)
			colPts = append(colPts, fs[s].Col(uint64(j)).EvalRange(t+1)...)
		}
		ctx.Send(sim.ProcID(j), Deal{Session: sid, RowPts: rowPts, ColPts: colPts})
	}
	return nil
}

// Reconstruct begins protocol R for slot 0 of sid; if the share phase
// has not completed locally it starts as soon as it does.
func (e *Engine) Reconstruct(ctx sim.Context, sid proto.SessionID) {
	e.ReconstructSlot(ctx, sid, 0)
}

// ReconstructSlot begins protocol R for one batch slot of sid. Only
// that slot's sub-instances reveal; the batch's other secrets stay
// hidden.
func (e *Engine) ReconstructSlot(ctx sim.Context, sid proto.SessionID, slot int) {
	e.ReconstructSlots(ctx, sid, []int{slot})
}

// ReconstructSlots begins protocol R for a set of batch slots in one
// pass. Requesting them together lets the MW layer reveal contiguous
// runs in one slab broadcast per sub-instance instead of one per slot.
func (e *Engine) ReconstructSlots(ctx sim.Context, sid proto.SessionID, slots []int) {
	pump := false
	in := e.inst(ctx, sid)
	for _, slot := range slots {
		if slot < 0 || slot >= mwsvss.MaxBatchSlots {
			continue
		}
		pump = true
		in.reconWanted.Add(slot)
	}
	if pump {
		e.advance(ctx, in)
	}
}

// OnMessage handles the dealer's Deal message (share step 2).
func (e *Engine) OnMessage(ctx sim.Context, m sim.Message) {
	d, ok := m.Payload.(Deal)
	if !ok {
		return
	}
	in := e.inst(ctx, d.Session)
	span := ctx.T() + 1
	if m.From != d.Session.Dealer || in.polySet ||
		len(d.RowPts) == 0 || len(d.RowPts) != len(d.ColPts) ||
		len(d.RowPts)%span != 0 || len(d.RowPts)/span > mwsvss.MaxBatchSlots {
		return
	}
	k := len(d.RowPts) / span
	if in.k != 0 && in.k != k {
		return
	}
	rows := make([]poly.Poly, k)
	cols := make([]poly.Poly, k)
	for s := 0; s < k; s++ {
		row, err := poly.InterpolateFromShares(d.RowPts[s*span:(s+1)*span], ctx.T())
		if err != nil {
			return
		}
		col, err := poly.InterpolateFromShares(d.ColPts[s*span:(s+1)*span], ctx.T())
		if err != nil {
			return
		}
		rows[s], cols[s] = row, col
	}
	in.rowPolys, in.colPolys = rows, cols
	in.polySet = true
	in.k = k
	e.advance(ctx, in)
}

// OnBroadcast handles the dealer's G announcement (share step 5).
func (e *Engine) OnBroadcast(ctx sim.Context, origin sim.ProcID, t proto.Tag, value []byte) {
	if t.Step != StepG || origin != t.Session.Dealer {
		return
	}
	in := e.inst(ctx, t.Session)
	if in.gKnown {
		return
	}
	g, gSets, ok := decodeGSets(value, ctx.N())
	if !ok {
		return
	}
	// A dealer announcing fewer than n−t members (of G or any G_j) is
	// provably faulty; ignore the announcement.
	if len(g) < ctx.N()-ctx.T() {
		return
	}
	for _, j := range g {
		if len(gSets[j]) < ctx.N()-ctx.T() {
			return
		}
	}
	in.g = g
	in.gSets = gSets
	in.gKnown = true
	e.advance(ctx, in)
}

// OnMWShareComplete receives sub-instance share completions.
func (e *Engine) OnMWShareComplete(ctx sim.Context, id proto.MWID) {
	in := e.inst(ctx, id.Session)
	in.markShared(id.Key)

	// Share step 3 (dealer): count the four instances of the pair.
	if in.dealing {
		if in.pairBump(mkPair(id.Key.Dealer, id.Key.Moderator)) == 4 {
			e.dealerPairDone(ctx, in, mkPair(id.Key.Dealer, id.Key.Moderator))
		}
	}
	e.advance(ctx, in)
}

// OnMWReconComplete receives sub-instance reconstruction outputs for
// one batch slot.
func (e *Engine) OnMWReconComplete(ctx sim.Context, id proto.MWID, slot int, out mwsvss.Output) {
	in := e.inst(ctx, id.Session)
	if !in.putOut(id.Key, slot, out) {
		return
	}
	e.advance(ctx, in)
}

// pairBump increments the completed-sub-share count of a pair and
// returns the new count.
func (in *instance) pairBump(pk pairKey) int {
	a, b := int(pk.a), int(pk.b)
	if a >= 1 && b <= in.n {
		if in.pairCount == nil {
			in.pairCount = make([]uint16, (in.n+1)*(in.n+1))
		}
		in.pairCount[a*(in.n+1)+b]++
		return int(in.pairCount[a*(in.n+1)+b])
	}
	if in.pairSpill == nil {
		in.pairSpill = make(map[pairKey]int)
	}
	in.pairSpill[pk]++
	return in.pairSpill[pk]
}

// dealerPairDone implements share steps 3-4: record mutual membership and
// broadcast G once it reaches n−t.
func (e *Engine) dealerPairDone(ctx sim.Context, in *instance, pk pairKey) {
	add := func(j, l sim.ProcID) {
		if j >= 1 && int(j) <= in.n && l >= 1 && int(l) <= in.n {
			if in.gSub == nil {
				in.gSub = make([]intern.ProcSet, in.n+1)
			}
			// j vouches for itself: the paper's termination argument
			// needs |G_j| ≥ n−t to be reachable with only n−t nonfaulty
			// processes, so G_j counts j (the four self-invocations are
			// vacuous).
			in.gSub[j].Add(j)
			in.gSub[j].Add(l)
			return
		}
		set, ok := in.gSubSpill[j]
		if !ok {
			if in.gSubSpill == nil {
				in.gSubSpill = make(map[sim.ProcID]map[sim.ProcID]bool)
			}
			set = map[sim.ProcID]bool{j: true}
			in.gSubSpill[j] = set
		}
		set[l] = true
	}
	add(pk.a, pk.b)
	add(pk.b, pk.a)

	if in.gBroadcast {
		return
	}
	nt := ctx.N() - ctx.T()
	var g []sim.ProcID
	for j := 1; j <= in.n && in.gSub != nil; j++ {
		if in.gSub[j].Count() >= nt {
			g = append(g, sim.ProcID(j))
		}
	}
	// Spill members (out-of-range process ids) can never be announced:
	// G must decode as valid 1..n process sets at the receivers, and a
	// set rooted at an out-of-range j would be rejected there anyway.
	if len(g) < nt {
		return
	}
	in.gBroadcast = true
	gSets := make([][]sim.ProcID, in.n+1)
	for _, j := range g {
		gSets[j] = in.gSub[j].Slice()
	}
	tag := proto.Tag{Proto: proto.ProtoSVSS, Session: in.sid, Step: StepG}
	e.host.Broadcast(ctx, tag, encodeGSets(g, gSets))
}

// advance re-evaluates every enabled protocol step for the session.
func (e *Engine) advance(ctx sim.Context, in *instance) {
	self := e.host.Self()

	// Share step 2: once the row/column polynomials arrive, join the four
	// MW-SVSS invocations per peer (two as dealer, two as moderator) —
	// each invocation carries the whole batch's values as one vector, so
	// the pairwise quorum machinery runs once regardless of width.
	if in.polySet && !in.joined {
		in.joined = true
		rowVec := make([]field.Element, in.k)
		colVec := make([]field.Element, in.k)
		for l := 1; l <= ctx.N(); l++ {
			peer := sim.ProcID(l)
			if peer == self {
				continue
			}
			lu := uint64(l)
			for s := 0; s < in.k; s++ {
				rowVec[s] = in.rowPolys[s].EvalUint(lu)
				colVec[s] = in.colPolys[s].EvalUint(lu)
			}
			// (a) dealer with secrets f^s(l, j) = h^s_j(l), moderator l.
			if err := e.mw.ShareVec(ctx, mwid(in.sid, self, peer, 0), colVec); err != nil {
				continue
			}
			// (b) dealer with secrets f^s(j, l) = g^s_j(l), moderator l.
			if err := e.mw.ShareVec(ctx, mwid(in.sid, self, peer, 1), rowVec); err != nil {
				continue
			}
			// (c) moderator with values f^s(j, l) = g^s_j(l), dealer l
			// (slot 0 of the mirrored pair shares f(m, d) = f(j, l)).
			if err := e.mw.SetModeratorSecretVec(ctx, mwid(in.sid, peer, self, 0), rowVec); err != nil {
				continue
			}
			// (d) moderator with values f^s(l, j) = h^s_j(l), dealer l.
			if err := e.mw.SetModeratorSecretVec(ctx, mwid(in.sid, peer, self, 1), colVec); err != nil {
				continue
			}
		}
	}

	// Share step 6: complete S once Ĝ is known and all four S' instances
	// completed for every j ∈ Ĝ, l ∈ Ĝ_j.
	if in.gKnown && !in.shareDone && e.allPairsShared(in) {
		in.shareDone = true
		if e.cb.ShareComplete != nil {
			e.cb.ShareComplete(ctx, in.sid)
		}
	}

	// Reconstruct step 1: invoke R' for the four instances of every pair
	// (k ∈ Ĝ, l ∈ Ĝ_k), revealing the wanted slots only. The slots that
	// start together in one pass go to each sub-instance as one grouped
	// request, so the MW layer can coalesce their reveals.
	if in.shareDone {
		var started []int
		in.reconWanted.ForEach(func(s int) {
			if in.reconStarted.Has(s) {
				return
			}
			in.reconStarted.Add(s)
			started = append(started, s)
		})
		if len(started) > 0 {
			e.forAllPairInstances(in, func(id proto.MWID) {
				e.mw.ReconstructSlots(ctx, id, started)
			})
		}
	}

	// Reconstruct steps 2-3, per started slot: once every sub-output is
	// in, compute I, the row/column polynomials, and the final output.
	in.reconStarted.ForEach(func(s int) {
		if in.reconDone.Has(s) || !e.allPairsReconstructed(in, s) {
			return
		}
		in.reconDone.Add(s)
		out := e.computeOutput(ctx, in, s)
		e.host.DMM().CompleteReconstruct(in.ref)
		if e.cb.ReconstructComplete != nil {
			e.cb.ReconstructComplete(ctx, in.sid, s, out)
		}
	})
}

// forAllPairInstances visits the four MW ids of every pair (k ∈ Ĝ,
// l ∈ Ĝ_k), deduplicated. Ĝ and every Ĝ_k decode-validated to 1..n, so
// the dense key index covers every visited id.
func (e *Engine) forAllPairInstances(in *instance, fn func(proto.MWID)) {
	var seen intern.Bits
	visit := func(id proto.MWID) {
		if seen.Add(in.keyIdx(id.Key)) {
			fn(id)
		}
	}
	for _, k := range in.g {
		for _, l := range in.gSets[k] {
			if k == l {
				continue
			}
			visit(mwid(in.sid, k, l, 0))
			visit(mwid(in.sid, k, l, 1))
			visit(mwid(in.sid, l, k, 0))
			visit(mwid(in.sid, l, k, 1))
		}
	}
}

func (e *Engine) allPairsShared(in *instance) bool {
	for _, k := range in.g {
		for _, l := range in.gSets[k] {
			if k == l {
				continue
			}
			if !in.shared(proto.MWKey{Dealer: k, Moderator: l, Slot: 0}) ||
				!in.shared(proto.MWKey{Dealer: k, Moderator: l, Slot: 1}) ||
				!in.shared(proto.MWKey{Dealer: l, Moderator: k, Slot: 0}) ||
				!in.shared(proto.MWKey{Dealer: l, Moderator: k, Slot: 1}) {
				return false
			}
		}
	}
	return true
}

func (e *Engine) allPairsReconstructed(in *instance, slot int) bool {
	for _, k := range in.g {
		for _, l := range in.gSets[k] {
			if k == l {
				continue
			}
			for mwSlot := uint8(0); mwSlot <= 1; mwSlot++ {
				if _, ok := in.getOut(proto.MWKey{Dealer: k, Moderator: l, Slot: mwSlot}, slot); !ok {
					return false
				}
				if _, ok := in.getOut(proto.MWKey{Dealer: l, Moderator: k, Slot: mwSlot}, slot); !ok {
					return false
				}
			}
		}
	}
	return true
}

// computeOutput implements reconstruct steps 2 and 3 for one batch slot.
func (e *Engine) computeOutput(ctx sim.Context, in *instance, slot int) Output {
	t := ctx.T()
	ignored := make(map[sim.ProcID]bool) // I_j

	gRow := make(map[sim.ProcID]poly.Poly) // g_k for k ∈ G \ I
	hCol := make(map[sim.ProcID]poly.Poly) // h_k for k ∈ G \ I

	for _, k := range in.g {
		// Gather the k-dealt outputs across l ∈ G_k:
		//   slot 1 of (d=k, m=l) holds r_kkl = f(k, l)  -> row points
		//   slot 0 of (d=k, m=l) holds r_klk = f(l, k)  -> column points
		var rowPts, colPts []poly.Point
		bad := false
		for _, l := range in.gSets[k] {
			if l == k {
				continue
			}
			rkl, ok1 := in.getOut(proto.MWKey{Dealer: k, Moderator: l, Slot: 1}, slot)
			rlk, ok0 := in.getOut(proto.MWKey{Dealer: k, Moderator: l, Slot: 0}, slot)
			if !ok1 || !ok0 || rkl.Bottom || rlk.Bottom {
				bad = true
				break
			}
			x := field.New(uint64(l))
			rowPts = append(rowPts, poly.Point{X: x, Y: rkl.Value})
			colPts = append(colPts, poly.Point{X: x, Y: rlk.Value})
		}
		if bad {
			ignored[k] = true
			continue
		}
		gk, okRow, err := poly.InterpolateDegree(rowPts, t)
		if err != nil || !okRow {
			ignored[k] = true
			continue
		}
		hk, okCol, err := poly.InterpolateDegree(colPts, t)
		if err != nil || !okCol {
			ignored[k] = true
			continue
		}
		gRow[k] = gk
		hCol[k] = hk
	}

	// Step 3: pairwise cross-consistency over G \ I.
	var rows []sim.ProcID
	for _, k := range in.g {
		if !ignored[k] {
			rows = append(rows, k)
		}
	}
	for _, k := range rows {
		for _, l := range rows {
			if hCol[k].EvalUint(uint64(l)) != gRow[l].EvalUint(uint64(k)) {
				return Output{Bottom: true}
			}
		}
	}
	if len(rows) < t+1 {
		return Output{Bottom: true}
	}
	xs := make([]field.Element, t+1)
	rowPolys := make([]poly.Poly, t+1)
	for i := 0; i <= t; i++ {
		xs[i] = field.New(uint64(rows[i]))
		rowPolys[i] = gRow[rows[i]]
	}
	f, err := poly.BivariateFromRows(xs, rowPolys, t)
	if err != nil {
		return Output{Bottom: true}
	}
	// Uniqueness check: every remaining row and column must lie on f.
	for _, k := range rows {
		if !f.Row(uint64(k)).Equal(gRow[k]) || !f.Col(uint64(k)).Equal(hCol[k]) {
			return Output{Bottom: true}
		}
	}
	return Output{Value: f.Secret()}
}

// encodeGSets canonically encodes (G, {G_j}): the sorted G list followed
// by each member's sorted G_j list. gSets is indexed by process id.
func encodeGSets(g []sim.ProcID, gSets [][]sim.ProcID) []byte {
	var w proto.Writer
	w.Procs(g)
	for _, j := range g {
		w.Procs(gSets[j])
	}
	return w.Bytes()
}

// decodeGSets decodes and validates a G announcement; the returned
// gSets slice is indexed by process id (members of G only).
func decodeGSets(b []byte, n int) ([]sim.ProcID, [][]sim.ProcID, bool) {
	r := proto.GetReader(b)
	defer proto.PutReader(r)
	g := r.Procs()
	if r.Err() != nil || !proto.ValidProcs(g, n) {
		return nil, nil, false
	}
	gSets := make([][]sim.ProcID, n+1)
	for _, j := range g {
		members := r.Procs()
		if r.Err() != nil || !proto.ValidProcs(members, n) {
			return nil, nil, false
		}
		gSets[j] = members
	}
	if r.Close() != nil {
		return nil, nil, false
	}
	return g, gSets, true
}
