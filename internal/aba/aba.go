// Package aba implements binary asynchronous Byzantine agreement on top
// of the shunning common coin — the final step of paper §5 (Theorem 1).
//
// The paper composes its coin with the voting protocol of Canetti's
// thesis (Fig 5-11), which the paper does not reprint; we substitute
// the functionally equivalent BV-broadcast/AUX/CONF
// round structure (Mostéfaoui–Moumen–Raynal 2014 with the Cobalt
// confirmation phase), the modern standard voting layer for binary ABA
// from a (1/4,1/4)-common coin at n > 3t:
//
//	round r (estimate est):
//	 1. BV-broadcast est: send BVAL(r, est); relay any value received
//	    from t+1 distinct senders; a value joins bin_values after 2t+1.
//	 2. Once bin_values is nonempty, send AUX(r, w) for one w in it.
//	    Wait for n−t AUX messages carrying values inside bin_values;
//	    call the carried set vals.
//	 3. Send CONF(r, vals); wait for n−t CONF messages whose sets are
//	    inside bin_values (the Cobalt phase: it prevents the adversary
//	    from steering vals after learning the coin).
//	 4. Invoke the common coin c for round r. If the union of confirmed
//	    sets is a single value v: est := v, and decide v if v = c.
//	    Otherwise est := c. Enter round r+1.
//
// A decided process broadcasts DECIDE(v); receiving t+1 matching DECIDEs
// is an alternative decision path, and n−t of them allow halting.
//
// Safety never depends on the coin. Almost-sure termination follows from
// the SCC Correctness property: in every round whose coin invocation is
// not "ruined" by shunning, all nonfaulty processes obtain a common coin
// value agreeing with any unanimous estimate with probability ≥ 1/4, and
// only t(n−t) = O(n²) invocations can ever be ruined — the paper's
// expected O(n²) round bound.
//
// Crucially for that bound, each process finishes reconstructing every
// coin-r SVSS session before it begins any coin-(r+1) session, so
// successive rounds are ordered by the →_i relation the shunning
// argument needs (paper §5).
package aba

import (
	"fmt"

	"svssba/internal/intern"
	"svssba/internal/proto"
	"svssba/internal/sim"
)

// Payload kinds.
const (
	KindBVal   = "aba/bval"
	KindAux    = "aba/aux"
	KindConf   = "aba/conf"
	KindDecide = "aba/decide"
)

// Vote is a BVAL or AUX message.
type Vote struct {
	Step  uint8 // 1 = BVAL, 2 = AUX
	Round uint64
	Value uint8 // 0 or 1
}

var _ proto.Marshaler = Vote{}

// Kind implements sim.Payload.
func (v Vote) Kind() string {
	if v.Step == 1 {
		return KindBVal
	}
	return KindAux
}

// Size implements sim.Payload.
func (v Vote) Size() int { return 1 + 8 + 1 }

// MarshalTo implements proto.Marshaler.
func (v Vote) MarshalTo(w *proto.Writer) {
	w.U8(v.Step)
	w.U64(v.Round)
	w.U8(v.Value)
}

// Conf carries the confirmed value set as a bitmask (1, 2 or 3).
type Conf struct {
	Round uint64
	Mask  uint8
}

var _ proto.Marshaler = Conf{}

// Kind implements sim.Payload.
func (Conf) Kind() string { return KindConf }

// Size implements sim.Payload.
func (c Conf) Size() int { return 8 + 1 }

// MarshalTo implements proto.Marshaler.
func (c Conf) MarshalTo(w *proto.Writer) {
	w.U64(c.Round)
	w.U8(c.Mask)
}

// Decide announces a decision.
type Decide struct {
	Value uint8
}

var _ proto.Marshaler = Decide{}

// Kind implements sim.Payload.
func (Decide) Kind() string { return KindDecide }

// Size implements sim.Payload.
func (Decide) Size() int { return 1 }

// MarshalTo implements proto.Marshaler.
func (d Decide) MarshalTo(w *proto.Writer) { w.U8(d.Value) }

// RegisterCodec registers ABA message decoding.
func RegisterCodec(c *proto.Codec) {
	c.Register(KindBVal, func(r *proto.Reader) (sim.Payload, error) {
		return Vote{Step: r.U8(), Round: r.U64(), Value: r.U8()}, r.Err()
	})
	c.Register(KindAux, func(r *proto.Reader) (sim.Payload, error) {
		return Vote{Step: r.U8(), Round: r.U64(), Value: r.U8()}, r.Err()
	})
	c.Register(KindConf, func(r *proto.Reader) (sim.Payload, error) {
		return Conf{Round: r.U64(), Mask: r.U8()}, r.Err()
	})
	c.Register(KindDecide, func(r *proto.Reader) (sim.Payload, error) {
		return Decide{Value: r.U8()}, r.Err()
	})
}

// CoinPort is the slice of the common coin the agreement layer drives.
type CoinPort interface {
	Start(ctx sim.Context, round uint64)
}

// DecideFunc observes the local decision.
type DecideFunc func(ctx sim.Context, value int)

// round holds one voting round's state. Per-sender records are
// bitsets: a "seen" set plus value bitsets replace the former
// map[ProcID]uint8 first-message-per-sender maps, so the vote-counting
// delivery path does bit arithmetic only.
type round struct {
	r uint64

	entered  bool
	bvalSent [2]bool
	bvalRecv [2]intern.ProcSet
	bin      [2]bool

	auxSent bool
	auxSeen intern.ProcSet // senders with a recorded AUX
	auxOne  intern.ProcSet // subset whose AUX value is 1

	confSent bool
	confMask uint8
	confSeen intern.ProcSet // senders with a recorded CONF
	confB0   intern.ProcSet // subset whose mask contains value 0
	confB1   intern.ProcSet // subset whose mask contains value 1

	coinAsked bool
	coinVal   int
	coinKnown bool

	finished bool
}

// Engine runs one binary agreement instance for one process.
type Engine struct {
	self     sim.ProcID
	coin     CoinPort
	onDecide DecideFunc

	rounds  map[uint64]*round
	current uint64
	est     uint8
	started bool

	decided  bool
	decision uint8
	decSent  bool
	decSeen  intern.ProcSet // senders with a recorded DECIDE
	decOne   intern.ProcSet // subset that decided 1
	halted   bool

	// onRound observes round entry (tracing). Observation-only: it must
	// not send, and it runs after the round state is installed.
	onRound func(r uint64)
}

// New returns an agreement engine. Coin outputs must be routed into
// OnCoin (core.NewStack wires this).
func New(self sim.ProcID, coin CoinPort, onDecide DecideFunc) *Engine {
	return &Engine{
		self:     self,
		coin:     coin,
		onDecide: onDecide,
		rounds:   make(map[uint64]*round),
	}
}

func (e *Engine) round(r uint64) *round {
	rd, ok := e.rounds[r]
	if !ok {
		rd = &round{r: r}
		e.rounds[r] = rd
	}
	return rd
}

// Rounds returns the number of live round records (retirement tests).
func (e *Engine) Rounds() int { return len(e.rounds) }

// Retire drops the per-round and per-sender vote state, keeping the
// decision. Only meaningful once the engine halted: a halted process
// ignores every further message, so the state can never be read again.
func (e *Engine) Retire() {
	clear(e.rounds)
	e.decSeen.Clear()
	e.decOne.Clear()
}

// Decided reports the local decision, if any.
func (e *Engine) Decided() (int, bool) {
	if !e.decided {
		return 0, false
	}
	return int(e.decision), true
}

// Halted reports whether the process has stopped participating.
func (e *Engine) Halted() bool { return e.halted }

// Round returns the current round number (1-based once started).
func (e *Engine) Round() uint64 { return e.current }

// Propose starts the agreement with the given binary input.
func (e *Engine) Propose(ctx sim.Context, value int) error {
	if value != 0 && value != 1 {
		return fmt.Errorf("aba: input %d is not binary", value)
	}
	if e.started {
		return fmt.Errorf("aba: already proposed")
	}
	e.started = true
	e.est = uint8(value)
	e.enter(ctx, 1)
	return nil
}

// OnRound registers an observer called each time the engine enters a
// round (nil to clear). Tracing only — the observer must not feed back
// into the protocol.
func (e *Engine) OnRound(fn func(r uint64)) { e.onRound = fn }

func (e *Engine) enter(ctx sim.Context, r uint64) {
	e.current = r
	rd := e.round(r)
	rd.entered = true
	if e.onRound != nil {
		e.onRound(r)
	}
	e.sendBVal(ctx, rd, e.est)
	e.advance(ctx, rd)
}

func (e *Engine) sendBVal(ctx sim.Context, rd *round, v uint8) {
	if rd.bvalSent[v] {
		return
	}
	rd.bvalSent[v] = true
	e.sendAll(ctx, Vote{Step: 1, Round: rd.r, Value: v})
}

func (e *Engine) sendAll(ctx sim.Context, p sim.Payload) {
	for q := 1; q <= ctx.N(); q++ {
		ctx.Send(sim.ProcID(q), p)
	}
}

// OnMessage handles all ABA messages.
func (e *Engine) OnMessage(ctx sim.Context, m sim.Message) {
	if e.halted {
		return
	}
	switch p := m.Payload.(type) {
	case Vote:
		if p.Value > 1 {
			return
		}
		rd := e.round(p.Round)
		switch p.Step {
		case 1:
			if !rd.bvalRecv[p.Value].Add(m.From) {
				return
			}
		case 2:
			if !rd.auxSeen.Add(m.From) {
				return
			}
			if p.Value == 1 {
				rd.auxOne.Add(m.From)
			}
		default:
			return
		}
		e.advance(ctx, rd)
	case Conf:
		if p.Mask == 0 || p.Mask > 3 {
			return
		}
		rd := e.round(p.Round)
		if !rd.confSeen.Add(m.From) {
			return
		}
		if p.Mask&1 != 0 {
			rd.confB0.Add(m.From)
		}
		if p.Mask&2 != 0 {
			rd.confB1.Add(m.From)
		}
		e.advance(ctx, rd)
	case Decide:
		if p.Value > 1 {
			return
		}
		if !e.decSeen.Add(m.From) {
			return
		}
		if p.Value == 1 {
			e.decOne.Add(m.From)
		}
		e.checkDecideQuorum(ctx)
	}
}

// OnCoin receives the common-coin output for a round.
func (e *Engine) OnCoin(ctx sim.Context, r uint64, bit int) {
	rd := e.round(r)
	if rd.coinKnown {
		return
	}
	rd.coinKnown = true
	rd.coinVal = bit
	e.advance(ctx, rd)
}

// advance runs the enabled steps of a round.
func (e *Engine) advance(ctx sim.Context, rd *round) {
	if e.halted || !e.started {
		return
	}
	n, t := ctx.N(), ctx.T()

	// BV-broadcast relay and bin_values admission.
	for v := uint8(0); v <= 1; v++ {
		c := rd.bvalRecv[v].Count()
		if c >= t+1 && rd.entered {
			e.sendBVal(ctx, rd, v)
		}
		if c >= 2*t+1 {
			rd.bin[v] = true
		}
	}

	// Only the process's current round drives AUX/CONF/coin.
	if !rd.entered || rd.r != e.current {
		return
	}

	// AUX: broadcast one bin value.
	if !rd.auxSent && (rd.bin[0] || rd.bin[1]) {
		rd.auxSent = true
		w := uint8(0)
		if !rd.bin[0] {
			w = 1
		}
		e.sendAll(ctx, Vote{Step: 2, Round: rd.r, Value: w})
	}

	// Collect n−t AUX values inside bin_values.
	if rd.auxSent && !rd.confSent {
		count := 0
		var mask uint8
		c1 := rd.auxOne.Count()
		c0 := rd.auxSeen.Count() - c1
		if rd.bin[0] && c0 > 0 {
			count += c0
			mask |= 1
		}
		if rd.bin[1] && c1 > 0 {
			count += c1
			mask |= 2
		}
		if count >= n-t && mask != 0 {
			rd.confSent = true
			rd.confMask = mask
			e.sendAll(ctx, Conf{Round: rd.r, Mask: mask})
		}
	}

	// Collect n−t CONF sets inside bin_values, then ask for the coin.
	if rd.confSent && !rd.coinAsked {
		count := 0
		var union uint8
		rd.confSeen.ForEach(func(p sim.ProcID) {
			var mask uint8
			if rd.confB0.Has(p) {
				mask |= 1
			}
			if rd.confB1.Has(p) {
				mask |= 2
			}
			if e.maskInBin(rd, mask) {
				count++
				union |= mask
			}
		})
		if count >= n-t {
			rd.coinAsked = true
			rd.confMask = union
			e.coin.Start(ctx, rd.r)
		}
	}

	// Coin arrived: update estimate, maybe decide, move on.
	if rd.coinAsked && rd.coinKnown && !rd.finished {
		rd.finished = true
		c := uint8(rd.coinVal)
		switch rd.confMask {
		case 1, 2:
			v := rd.confMask >> 1 // mask 1 -> value 0, mask 2 -> value 1
			e.est = v
			if v == c {
				e.decide(ctx, v)
			}
		default:
			e.est = c
		}
		if e.decided {
			e.est = e.decision
		}
		e.enter(ctx, rd.r+1)
	}
}

func (e *Engine) maskInBin(rd *round, mask uint8) bool {
	if mask&1 != 0 && !rd.bin[0] {
		return false
	}
	if mask&2 != 0 && !rd.bin[1] {
		return false
	}
	return true
}

func (e *Engine) decide(ctx sim.Context, v uint8) {
	if e.decided {
		return
	}
	e.decided = true
	e.decision = v
	if !e.decSent {
		e.decSent = true
		e.sendAll(ctx, Decide{Value: v})
	}
	if e.onDecide != nil {
		e.onDecide(ctx, int(v))
	}
	e.checkDecideQuorum(ctx)
}

// checkDecideQuorum implements the DECIDE amplification and halting
// rules: t+1 matching DECIDEs decide; n−t allow halting.
func (e *Engine) checkDecideQuorum(ctx sim.Context) {
	counts := [2]int{}
	counts[1] = e.decOne.Count()
	counts[0] = e.decSeen.Count() - counts[1]
	for v := uint8(0); v <= 1; v++ {
		if counts[v] >= ctx.T()+1 && !e.decided {
			e.decide(ctx, v)
		}
		if counts[v] >= ctx.N()-ctx.T() && e.decided && e.decision == v {
			e.halted = true
		}
	}
}
