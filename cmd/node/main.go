// Command node runs ONE process of a real multi-process agreement
// cluster from a shared JSON cluster spec: it listens on its spec
// address, dials its peers over TCP, runs the paper's protocol to a
// decision, lingers so slower peers can finish, and prints its decision
// and per-layer traffic stats.
//
// Generate a localhost spec, then start every node (each in its own
// terminal or with & in one shell):
//
//	node -gen -n 4 -baseport 7000 > cluster.json
//	node -spec cluster.json -id 1 &
//	node -spec cluster.json -id 2 &
//	node -spec cluster.json -id 3 &
//	node -spec cluster.json -id 4
//
// Killing a minority of processes (up to t) before they finish models
// crash faults: the remaining nodes still reach agreement.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"svssba"
	"svssba/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "node:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		specPath = flag.String("spec", "", "path to the JSON cluster spec")
		id       = flag.Int("id", 0, "this node's id in the spec")
		timeout  = flag.Duration("timeout", 60*time.Second, "decision deadline")
		linger   = flag.Duration("linger", 2*time.Second, "keep serving peers this long after deciding")

		httpAddr  = flag.String("http", "", "serve live /metrics, /trace and /debug/pprof on this address during the run")
		traceCap  = flag.Int("trace", 0, "protocol round tracer capacity (0 = off; -http and -tracefile default to 4096)")
		traceFile = flag.String("tracefile", "", "write this node's round trace as JSONL to this file at exit")

		gen      = flag.Bool("gen", false, "generate a localhost spec to stdout instead of running")
		n        = flag.Int("n", 4, "(with -gen) number of nodes")
		t        = flag.Int("t", 0, "(with -gen) resilience bound (default (n-1)/3)")
		seed     = flag.Int64("seed", 1, "(with -gen) cluster seed")
		basePort = flag.Int("baseport", 7000, "(with -gen) first TCP port")
		batch    = flag.Bool("batch", false, "(with -gen) coalesce same-destination payloads into batch frames on every process")
	)
	flag.Parse()

	if *gen {
		spec := svssba.NewLocalClusterSpec(*n, *t, *seed, *basePort)
		spec.Batching = *batch
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(spec)
	}

	if *specPath == "" {
		return fmt.Errorf("need -spec (or -gen to create one)")
	}
	raw, err := os.ReadFile(*specPath)
	if err != nil {
		return err
	}
	var spec svssba.ClusterSpec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return fmt.Errorf("parse %s: %v", *specPath, err)
	}

	if *traceCap == 0 && (*httpAddr != "" || *traceFile != "") {
		*traceCap = 4096
	}
	var (
		reg    *obs.Registry
		tracer *obs.Tracer
	)
	if *traceCap > 0 {
		tracer = obs.NewTracer(*id, *traceCap)
	}
	if *httpAddr != "" {
		reg = obs.NewRegistry()
		srv, err := obs.Serve(*httpAddr, reg, tracer)
		if err != nil {
			return fmt.Errorf("http endpoint: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "node %d: observability endpoint on http://%s\n", *id, srv.Addr())
	}

	fmt.Printf("node %d of %d starting (spec %s, timeout %v)\n", *id, spec.N, *specPath, *timeout)
	res, err := svssba.RunSpecNodeObs(spec, *id, *timeout, *linger, reg, tracer)
	if err != nil {
		return err
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		if err := tracer.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Printf("decision      %d\n", res.Decision)
	fmt.Printf("elapsed       %v\n", res.Elapsed.Round(time.Millisecond))
	st := res.Stats
	fmt.Printf("traffic       sent %d msgs (%d B), recv %d msgs (%d B)\n",
		st.Sent, st.SentBytes, st.Recv, st.RecvBytes)
	fmt.Printf("%-8s %12s %14s %12s %14s\n", "layer", "sent msgs", "sent bytes", "recv msgs", "recv bytes")
	layers, agg := svssba.ClusterLayerTable([]svssba.ClusterNodeStats{st})
	for _, l := range layers {
		a := agg[l]
		fmt.Printf("%-8s %12d %14d %12d %14d\n", l, a.SentMsgs, a.SentBytes, a.RecvMsgs, a.RecvBytes)
	}
	return nil
}
