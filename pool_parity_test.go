package svssba

import (
	"testing"

	"svssba/internal/core"
)

// TestCoinSupplyOffPreservesSchedule is the shape-preservation contract
// for the amortized coin machinery, in the same style as
// TestObsHooksPreserveSchedule: installing the batch supply with zero
// round coverage — the "pooling off" configuration — must leave the v1
// execution byte-for-byte identical to a stack without any supply.
// Every coin round then takes the classic dealing path, and the supply
// plumbing (the Supply port, the plural reconstruct entry points, the
// slot ledger) must be invisible to the scheduler: same decisions, same
// delivery count, same virtual clock, same traffic totals. Together
// with the golden digest test this pins that only CoinBatch > 0 runs
// may diverge from the v1 parity digest.
func TestCoinSupplyOffPreservesSchedule(t *testing.T) {
	const n, tf = 4, 1
	for _, seed := range []int64{1, 3, 17} {
		plain := runADHSim(t, n, tf, seed, nil)
		supplied := runADHSim(t, n, tf, seed, func(_ int, st *core.Stack) {
			st.EnableCoinBatch(0)
		})
		if supplied.steps != plain.steps || supplied.virtualTime != plain.virtualTime {
			t.Fatalf("seed %d: schedule diverged: steps %d vs %d, vtime %d vs %d",
				seed, supplied.steps, plain.steps, supplied.virtualTime, plain.virtualTime)
		}
		if supplied.messages != plain.messages || supplied.bytes != plain.bytes || supplied.frames != plain.frames {
			t.Fatalf("seed %d: traffic diverged: msgs %d vs %d, bytes %d vs %d, frames %d vs %d",
				seed, supplied.messages, plain.messages, supplied.bytes, plain.bytes, supplied.frames, plain.frames)
		}
		for pid, v := range plain.decisions {
			if sv, ok := supplied.decisions[pid]; !ok || sv != v {
				t.Fatalf("seed %d: node %d decided %d (supplied) vs %d (plain)", seed, pid, sv, v)
			}
		}
	}
}
