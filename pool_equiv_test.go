package svssba_test

import (
	"testing"

	"svssba"
	"svssba/internal/paritycells"
)

// TestCoinBatchAgreementEquivalence is the pooled-vs-unpooled proof of
// equivalence over the shared parity-cell matrix: for every scheduler,
// fault behaviour and scale in the matrix, a run with batched coin
// dealing (the amortized machinery the service pool consumes) must
// reach agreement among honest processes exactly like the classic
// per-round-dealing run. Where the protocol pins the outcome —
// unanimous honest inputs force the decision by validity — the decided
// values must also coincide. Message-level schedules necessarily differ
// (one wide dealing replaces many narrow ones), which is exactly why
// the byte-identical digest guardrail applies only to CoinBatch == 0.
func TestCoinBatchAgreementEquivalence(t *testing.T) {
	for _, c := range paritycells.Agreement(false) {
		if c.Cfg.Protocol != "" && c.Cfg.Protocol != svssba.ProtocolADH {
			continue // baseline protocols have no coin dealing to batch
		}
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			run := func(batch int) *svssba.Result {
				cfg := c.Cfg
				cfg.CoinBatch = batch
				res, err := svssba.Run(cfg)
				if err != nil {
					t.Fatalf("batch %d: %v", batch, err)
				}
				if res.TimedOut {
					t.Fatalf("batch %d: timed out after %d steps", batch, res.Steps)
				}
				if !res.AllDecided || !res.Agreed {
					t.Fatalf("batch %d: decided=%v agreed=%v decisions=%v",
						batch, res.AllDecided, res.Agreed, res.Decisions)
				}
				return res
			}
			classic, batched := run(0), run(2)

			// Validity pins the outcome when the honest inputs are
			// unanimous; then the two modes must decide identically.
			unanimous, first := true, -1
			faulty := make(map[int]bool, len(c.Cfg.Faults))
			for _, f := range c.Cfg.Faults {
				faulty[f.Proc] = true
			}
			inputs := c.Cfg.Inputs
			if len(inputs) == 0 {
				unanimous = false // default alternating 0/1 inputs
			}
			for i, in := range inputs {
				if faulty[i+1] {
					continue
				}
				if first == -1 {
					first = in
				} else if in != first {
					unanimous = false
				}
			}
			if unanimous && first != -1 {
				if classic.Value != first || batched.Value != first {
					t.Fatalf("validity: unanimous input %d, classic decided %d, batched decided %d",
						first, classic.Value, batched.Value)
				}
			}
		})
	}
}

// TestCoinBatchCoinEquivalence asserts batched and classic dealing
// produce agreed coin bits every round — including the round past the
// batch's coverage, where the engine falls back to classic dealing —
// and that the batch's one-shot handout ledger records no reuse.
func TestCoinBatchCoinEquivalence(t *testing.T) {
	cases := []svssba.CoinConfig{
		{N: 4, Seed: 1, Rounds: 3},
		{N: 4, Seed: 5, Rounds: 2, Faults: []svssba.Fault{{Proc: 4, Kind: svssba.FaultCrash}}},
	}
	for _, base := range cases {
		var messages [2]int64
		for i, batch := range []int{0, 2} {
			cfg := base
			cfg.CoinBatch = batch
			res, err := svssba.RunCoin(cfg)
			if err != nil {
				t.Fatalf("batch %d: %v", batch, err)
			}
			if res.TimedOut {
				t.Fatalf("batch %d: timed out", batch)
			}
			if len(res.RoundResults) != base.Rounds {
				t.Fatalf("batch %d: %d rounds completed, want %d", batch, len(res.RoundResults), base.Rounds)
			}
			for r, rr := range res.RoundResults {
				if !rr.Agreed {
					t.Errorf("batch %d round %d: coin outputs disagree: %v", batch, r+1, rr.Bits)
				}
			}
			if res.SlotReuses != 0 {
				t.Errorf("batch %d: %d slot reuses (one-shot violated)", batch, res.SlotReuses)
			}
			if len(base.Faults) == 0 && len(res.Shuns) != 0 {
				t.Errorf("batch %d: shuns in honest run: %v", batch, res.Shuns)
			}
			messages[i] = res.Messages
		}
		// The point of batching: rounds covered by the batch share one
		// dealing setup, so the batched run must move fewer messages.
		if messages[1] >= messages[0] {
			t.Errorf("seed %d: batched run sent %d messages, classic %d — batching should reduce traffic",
				base.Seed, messages[1], messages[0])
		}
	}
}
