package sim

import (
	"math/rand"
)

// RandomScheduler delivers a uniformly random pending message at each
// step. This models a fully asynchronous adversary-free network: every
// interleaving of deliveries has positive probability, and every message
// is eventually delivered with probability 1.
type RandomScheduler struct {
	rng     *rand.Rand
	pending []Message
}

var _ Scheduler = (*RandomScheduler)(nil)

// NewRandomScheduler returns a seeded random-order scheduler.
func NewRandomScheduler(seed int64) *RandomScheduler {
	return &RandomScheduler{rng: rand.New(rand.NewSource(seed))}
}

// Enqueue implements Scheduler.
func (s *RandomScheduler) Enqueue(m Message, _ int64) {
	s.pending = append(s.pending, m)
}

// Next implements Scheduler.
func (s *RandomScheduler) Next(now int64) (Message, int64, bool) {
	if len(s.pending) == 0 {
		return Message{}, 0, false
	}
	i := s.rng.Intn(len(s.pending))
	m := s.pending[i]
	last := len(s.pending) - 1
	s.pending[i] = s.pending[last]
	s.pending[last] = Message{}
	s.pending = s.pending[:last]
	return m, now + 1, true
}

// Len implements Scheduler.
func (s *RandomScheduler) Len() int { return len(s.pending) }

// FIFOScheduler delivers messages in global send order — the "nicest"
// possible schedule, useful as a baseline and for debugging.
type FIFOScheduler struct {
	pending []Message
	head    int
}

var _ Scheduler = (*FIFOScheduler)(nil)

// NewFIFOScheduler returns a global-FIFO scheduler.
func NewFIFOScheduler() *FIFOScheduler { return &FIFOScheduler{} }

// Enqueue implements Scheduler.
func (s *FIFOScheduler) Enqueue(m Message, _ int64) {
	s.pending = append(s.pending, m)
}

// Next implements Scheduler.
func (s *FIFOScheduler) Next(now int64) (Message, int64, bool) {
	if s.head >= len(s.pending) {
		return Message{}, 0, false
	}
	m := s.pending[s.head]
	s.pending[s.head] = Message{}
	s.head++
	if s.head == len(s.pending) {
		s.pending = s.pending[:0]
		s.head = 0
	}
	return m, now + 1, true
}

// Len implements Scheduler.
func (s *FIFOScheduler) Len() int { return len(s.pending) - s.head }

// DelayDist draws a message delay.
type DelayDist interface {
	Draw(r *rand.Rand) int64
}

// UniformDelay draws uniformly from [Lo, Hi].
type UniformDelay struct{ Lo, Hi int64 }

// Draw implements DelayDist.
func (d UniformDelay) Draw(r *rand.Rand) int64 {
	if d.Hi <= d.Lo {
		return d.Lo
	}
	return d.Lo + r.Int63n(d.Hi-d.Lo+1)
}

// ExpDelay draws an exponential delay with the given mean, capped at Cap
// (a cap keeps delivery eventual within finite runs).
type ExpDelay struct {
	Mean int64
	Cap  int64
}

// Draw implements DelayDist.
func (d ExpDelay) Draw(r *rand.Rand) int64 {
	v := int64(r.ExpFloat64() * float64(d.Mean))
	if d.Cap > 0 && v > d.Cap {
		v = d.Cap
	}
	return v
}

type delayItem struct {
	m   Message
	at  int64
	seq uint64 // tiebreaker for determinism
}

// delayHeap is a binary min-heap of delayItems ordered by (at, seq). It
// deliberately does not use container/heap: Push(interface{}) would box
// every item on the hot path (two allocations per message, push and
// pop). Instead the heap sifts values in place and the backing array
// doubles as a free list — slots vacated by pop are reused by the next
// push, so a steady-state scheduler allocates nothing per message.
type delayHeap []delayItem

func (h delayHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *delayHeap) push(it delayItem) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *delayHeap) pop() delayItem {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s[last] = delayItem{}
	s = s[:last]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(s) && s.less(l, min) {
			min = l
		}
		if r < len(s) && s.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// DelayScheduler assigns each message a random delay drawn from a
// distribution and delivers in virtual-time order. This yields meaningful
// virtual latencies (experiment E9).
type DelayScheduler struct {
	rng  *rand.Rand
	dist DelayDist
	h    delayHeap
}

var _ Scheduler = (*DelayScheduler)(nil)

// NewDelayScheduler returns a seeded delay-based scheduler.
func NewDelayScheduler(seed int64, dist DelayDist) *DelayScheduler {
	return &DelayScheduler{rng: rand.New(rand.NewSource(seed)), dist: dist}
}

// Enqueue implements Scheduler.
func (s *DelayScheduler) Enqueue(m Message, now int64) {
	s.h.push(delayItem{m: m, at: now + 1 + s.dist.Draw(s.rng), seq: m.Seq})
}

// Next implements Scheduler.
func (s *DelayScheduler) Next(_ int64) (Message, int64, bool) {
	if len(s.h) == 0 {
		return Message{}, 0, false
	}
	it := s.h.pop()
	return it.m, it.at, true
}

// Len implements Scheduler.
func (s *DelayScheduler) Len() int { return len(s.h) }

// HoldRule decides whether a message must be held back for now. Rules are
// re-evaluated at every scheduling decision, so tests can script network
// phases (e.g. the paper's Example 1: delay everything touching process 4
// until the share phase completes elsewhere).
type HoldRule func(Message) bool

// ScriptedScheduler wraps an inner scheduler with a mutable hold rule.
// Held messages are parked and re-enqueued as soon as the rule releases
// them, preserving eventual delivery whenever the rule is eventually
// cleared.
type ScriptedScheduler struct {
	inner Scheduler
	hold  HoldRule
	held  []Message
}

var _ Scheduler = (*ScriptedScheduler)(nil)

// NewScriptedScheduler wraps inner with no hold rule installed.
func NewScriptedScheduler(inner Scheduler) *ScriptedScheduler {
	return &ScriptedScheduler{inner: inner}
}

// SetHold installs (or clears, with nil) the hold rule.
func (s *ScriptedScheduler) SetHold(rule HoldRule) { s.hold = rule }

// HeldCount returns how many messages are currently parked.
func (s *ScriptedScheduler) HeldCount() int { return len(s.held) }

// Enqueue implements Scheduler.
func (s *ScriptedScheduler) Enqueue(m Message, now int64) {
	if s.hold != nil && s.hold(m) {
		s.held = append(s.held, m)
		return
	}
	s.inner.Enqueue(m, now)
}

// Next implements Scheduler.
func (s *ScriptedScheduler) Next(now int64) (Message, int64, bool) {
	s.release(now)
	for {
		m, at, ok := s.inner.Next(now)
		if !ok {
			return Message{}, 0, false
		}
		if s.hold != nil && s.hold(m) {
			s.held = append(s.held, m)
			continue
		}
		return m, at, true
	}
}

// release moves parked messages whose hold no longer applies back into the
// inner scheduler.
func (s *ScriptedScheduler) release(now int64) {
	if len(s.held) == 0 {
		return
	}
	kept := s.held[:0]
	for _, m := range s.held {
		if s.hold != nil && s.hold(m) {
			kept = append(kept, m)
		} else {
			s.inner.Enqueue(m, now)
		}
	}
	s.held = kept
}

// Len implements Scheduler.
func (s *ScriptedScheduler) Len() int { return s.inner.Len() + len(s.held) }

// PartitionScheduler wraps an inner scheduler with a network partition:
// every message crossing the cut (one endpoint inside the given side,
// one outside) is held back until the partition heals. The cut heals at
// virtual time healAt — or earlier, as soon as nothing else is
// deliverable, so eventual delivery is preserved: the adversary may
// starve a cut for an arbitrarily long but finite prefix of the run,
// exactly the asynchronous model's power.
//
// Held messages re-enter the inner scheduler in their original send
// order at heal time, producing the burst of stale traffic that makes
// partitions interesting to agreement protocols.
type PartitionScheduler struct {
	inner  Scheduler
	side   map[ProcID]bool
	healAt int64
	healed bool
	held   []Message
}

var _ Scheduler = (*PartitionScheduler)(nil)

// NewPartitionScheduler isolates the processes in cut from everyone
// else until virtual time healAt (see the type comment for the early
// heal that keeps delivery eventual).
func NewPartitionScheduler(inner Scheduler, cut []ProcID, healAt int64) *PartitionScheduler {
	side := make(map[ProcID]bool, len(cut))
	for _, p := range cut {
		side[p] = true
	}
	return &PartitionScheduler{inner: inner, side: side, healAt: healAt}
}

// Healed reports whether the partition has healed.
func (s *PartitionScheduler) Healed() bool { return s.healed }

// HeldCount returns how many messages are currently parked at the cut.
func (s *PartitionScheduler) HeldCount() int { return len(s.held) }

func (s *PartitionScheduler) crosses(m Message) bool {
	return s.side[m.From] != s.side[m.To]
}

// Enqueue implements Scheduler.
func (s *PartitionScheduler) Enqueue(m Message, now int64) {
	if !s.healed && s.crosses(m) {
		s.held = append(s.held, m)
		return
	}
	s.inner.Enqueue(m, now)
}

// heal releases all held traffic into the inner scheduler.
func (s *PartitionScheduler) heal(now int64) {
	s.healed = true
	for _, m := range s.held {
		s.inner.Enqueue(m, now)
	}
	s.held = nil
}

// Next implements Scheduler.
func (s *PartitionScheduler) Next(now int64) (Message, int64, bool) {
	if !s.healed && now >= s.healAt {
		s.heal(now)
	}
	m, at, ok := s.inner.Next(now)
	if !ok && !s.healed && len(s.held) > 0 {
		// Nothing deliverable on either side: heal early rather than
		// stall, since an asynchronous adversary cannot withhold
		// messages forever.
		s.heal(now)
		m, at, ok = s.inner.Next(now)
	}
	return m, at, ok
}

// Len implements Scheduler.
func (s *PartitionScheduler) Len() int { return s.inner.Len() + len(s.held) }
