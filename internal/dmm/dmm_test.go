package dmm

import (
	"testing"

	"svssba/internal/field"
	"svssba/internal/proto"
	"svssba/internal/sim"
)

func mwid(dealer sim.ProcID, round uint64) proto.MWID {
	return proto.MWID{
		Session: proto.SessionID{Dealer: dealer, Kind: proto.KindMW, Round: round},
		Key:     proto.MWKey{Dealer: dealer, Moderator: 2},
	}
}

func TestPrecedesSemantics(t *testing.T) {
	d := New(1, nil)
	a, b, c := mwid(1, 1), mwid(1, 2), mwid(1, 3)

	d.BeginShare(a)
	d.BeginShare(b)
	if d.Precedes(a, b) {
		t.Error("a precedes b without a completing")
	}
	d.CompleteReconstruct(a)
	if d.Precedes(a, b) {
		t.Error("a precedes b although b began before a completed")
	}
	d.BeginShare(c)
	if !d.Precedes(a, c) {
		t.Error("a must precede c (began after a completed)")
	}
	// An unbegun session counts as beginning "now", i.e. after any
	// completed session.
	unbegun := mwid(9, 9)
	if !d.Precedes(a, unbegun) {
		t.Error("completed session must precede a never-begun session")
	}
	if d.Precedes(b, unbegun) {
		t.Error("incomplete session must not precede anything")
	}
}

func TestStampsIdempotent(t *testing.T) {
	d := New(1, nil)
	a := mwid(1, 1)
	d.BeginShare(a)
	first := d.began[a]
	d.BeginShare(a)
	if d.began[a] != first {
		t.Error("BeginShare overwrote stamp")
	}
	d.CompleteReconstruct(a)
	rc := d.redone[a]
	d.CompleteReconstruct(a)
	if d.redone[a] != rc {
		t.Error("CompleteReconstruct overwrote stamp")
	}
}

func TestObserveResolvesExpectation(t *testing.T) {
	d := New(1, nil)
	s := mwid(1, 1)
	d.Expect(Expectation{Sender: 3, Target: 2, Session: s, Value: field.New(7), Source: SourceACK})
	if !d.PendingFrom(3) {
		t.Fatal("expectation not pending")
	}
	d.ObserveValueBroadcast(3, s, 2, 0, field.New(7))
	if d.PendingFrom(3) {
		t.Error("matched expectation not removed")
	}
	if d.Resolved != 1 || d.Detections != 0 {
		t.Errorf("resolved=%d detections=%d", d.Resolved, d.Detections)
	}
	if d.IsFaulty(3) {
		t.Error("honest resolver marked faulty")
	}
}

func TestObserveContradictionShuns(t *testing.T) {
	var shunned []sim.ProcID
	d := New(1, func(j sim.ProcID, _ proto.MWID) { shunned = append(shunned, j) })
	s := mwid(1, 1)
	d.Expect(Expectation{Sender: 3, Target: 2, Session: s, Value: field.New(7), Source: SourceDEAL})
	d.ObserveValueBroadcast(3, s, 2, 0, field.New(8))
	if !d.IsFaulty(3) {
		t.Fatal("contradicting sender not added to D_i")
	}
	if len(shunned) != 1 || shunned[0] != 3 {
		t.Errorf("shun callback got %v", shunned)
	}
	if d.Contradictions != 1 {
		t.Errorf("contradictions = %d", d.Contradictions)
	}
	// The tuple stays (never resolved) — per the paper it is "never
	// removed from ACK_i/DEAL_i".
	if !d.PendingFrom(3) {
		t.Error("contradicted expectation removed")
	}
	// Re-observing must not double-count detections.
	d.ObserveValueBroadcast(3, s, 2, 0, field.New(9))
	if d.Detections != 1 {
		t.Errorf("detections = %d, want 1", d.Detections)
	}
}

func TestObserveWithoutExpectationIsNoop(t *testing.T) {
	d := New(1, nil)
	d.ObserveValueBroadcast(3, mwid(1, 1), 2, 0, field.New(7))
	if d.Resolved != 0 || d.Detections != 0 {
		t.Error("observation without expectation had effects")
	}
}

func TestFilterDiscardsFaulty(t *testing.T) {
	d := New(1, nil)
	s := mwid(1, 1)
	d.Expect(Expectation{Sender: 3, Target: 2, Session: s, Value: field.New(7), Source: SourceACK})
	d.ObserveValueBroadcast(3, s, 2, 0, field.New(8)) // 3 becomes faulty
	if got := d.Filter(Event{Class: ClassDirect, From: 3, Ref: mwid(1, 5)}); got != Discarded {
		t.Errorf("action = %v, want Discarded", got)
	}
}

func TestFilterParksDelayedAndReleases(t *testing.T) {
	d := New(1, nil)
	s1 := mwid(3, 1)
	d.BeginShare(s1)
	d.Expect(Expectation{Sender: 4, Target: 1, Session: s1, Value: field.New(5), Source: SourceDEAL})
	d.CompleteReconstruct(s1)

	// Events from 4 in a newer session must be parked.
	s2 := mwid(3, 2)
	if got := d.Filter(Event{Class: ClassDirect, From: 4, Ref: s2}); got != Parked {
		t.Fatalf("action = %v, want Parked", got)
	}
	if d.ParkedCount() != 1 {
		t.Fatalf("parked = %d", d.ParkedCount())
	}
	// Events from other processes flow.
	if got := d.Filter(Event{Class: ClassDirect, From: 2, Ref: s2}); got != Forward {
		t.Errorf("action = %v, want Forward", got)
	}
	// Events from 4 in sessions begun before the completion still flow.
	s0 := mwid(3, 0)
	d2 := New(1, nil)
	d2.BeginShare(s0)
	d2.BeginShare(s1)
	d2.Expect(Expectation{Sender: 4, Target: 1, Session: s1, Value: field.New(5), Source: SourceDEAL})
	d2.CompleteReconstruct(s1)
	if got := d2.Filter(Event{Class: ClassDirect, From: 4, Ref: s0}); got != Forward {
		t.Errorf("concurrent-session action = %v, want Forward", got)
	}

	// Resolving the expectation releases the parked event.
	if ready := d.TakeReady(); len(ready) != 0 {
		t.Fatalf("released early: %d", len(ready))
	}
	d.ObserveValueBroadcast(4, s1, 1, 0, field.New(5))
	ready := d.TakeReady()
	if len(ready) != 1 || ready[0].From != 4 || ready[0].Ref != s2 {
		t.Fatalf("ready = %+v", ready)
	}
	if d.ParkedCount() != 0 {
		t.Error("parked not drained")
	}
}

func TestTakeReadyDropsNewlyFaulty(t *testing.T) {
	d := New(1, nil)
	s1 := mwid(3, 1)
	d.BeginShare(s1)
	d.Expect(Expectation{Sender: 4, Target: 1, Session: s1, Value: field.New(5), Source: SourceDEAL})
	d.CompleteReconstruct(s1)
	if got := d.Filter(Event{Class: ClassDirect, From: 4, Ref: mwid(3, 2)}); got != Parked {
		t.Fatalf("action = %v", got)
	}
	// The pending broadcast arrives with a wrong value: 4 joins D_i and
	// its parked event must be dropped, not delivered.
	d.ObserveValueBroadcast(4, s1, 1, 0, field.New(6))
	if ready := d.TakeReady(); len(ready) != 0 {
		t.Fatalf("released events from faulty process: %v", ready)
	}
	if d.ParkedCount() != 0 {
		t.Error("faulty events still parked")
	}
}

func TestDropDealExpectations(t *testing.T) {
	d := New(1, nil)
	s1, s2 := mwid(3, 1), mwid(3, 2)
	d.Expect(Expectation{Sender: 4, Target: 1, Session: s1, Value: field.New(5), Source: SourceDEAL})
	d.Expect(Expectation{Sender: 5, Target: 1, Session: s1, Value: field.New(6), Source: SourceDEAL})
	d.Expect(Expectation{Sender: 4, Target: 2, Session: s1, Value: field.New(7), Source: SourceACK})
	d.Expect(Expectation{Sender: 4, Target: 1, Session: s2, Value: field.New(8), Source: SourceDEAL})
	d.DropDealExpectations(s1)
	if d.PendingCount() != 2 {
		t.Errorf("pending = %d, want 2 (ACK of s1 and DEAL of s2)", d.PendingCount())
	}
	if !d.PendingFrom(4) {
		t.Error("s2 DEAL from 4 dropped")
	}
	if d.PendingFrom(5) {
		t.Error("DEAL of s1 from 5 not dropped")
	}
}

func TestStaleExpectations(t *testing.T) {
	d := New(1, nil)
	s1, s2 := mwid(3, 1), mwid(3, 2)
	d.BeginShare(s1)
	d.BeginShare(s2)
	d.Expect(Expectation{Sender: 4, Target: 1, Session: s1, Value: field.New(5), Source: SourceDEAL})
	d.Expect(Expectation{Sender: 5, Target: 1, Session: s2, Value: field.New(6), Source: SourceDEAL})
	d.CompleteReconstruct(s1)
	stale := d.StaleExpectations()
	if len(stale) != 1 || stale[0].Sender != 4 {
		t.Errorf("stale = %v", stale)
	}
}

func TestExpectDuplicateKeepsFirst(t *testing.T) {
	d := New(1, nil)
	s := mwid(3, 1)
	d.Expect(Expectation{Sender: 4, Target: 1, Session: s, Value: field.New(5), Source: SourceDEAL})
	d.Expect(Expectation{Sender: 4, Target: 1, Session: s, Value: field.New(9), Source: SourceDEAL})
	if d.PendingCount() != 1 {
		t.Fatalf("pending = %d", d.PendingCount())
	}
	// Resolution must match the first value.
	d.ObserveValueBroadcast(4, s, 1, 0, field.New(5))
	if d.PendingFrom(4) {
		t.Error("first-value resolution failed")
	}
}

func TestFaultySetCopy(t *testing.T) {
	d := New(1, nil)
	s := mwid(3, 1)
	d.Expect(Expectation{Sender: 4, Target: 1, Session: s, Value: field.New(5), Source: SourceDEAL})
	d.ObserveValueBroadcast(4, s, 1, 0, field.New(6))
	set := d.FaultySet()
	if len(set) != 1 || set[0] != 4 {
		t.Errorf("faulty set = %v", set)
	}
}

func TestACKAndDEALBothMatchSameBroadcast(t *testing.T) {
	// The dealer can hold an ACK tuple and a DEAL tuple for the same
	// (sender, target, session); one broadcast resolves both.
	d := New(1, nil)
	s := mwid(1, 1)
	d.Expect(Expectation{Sender: 4, Target: 1, Session: s, Value: field.New(5), Source: SourceACK})
	d.Expect(Expectation{Sender: 4, Target: 1, Session: s, Value: field.New(5), Source: SourceDEAL})
	d.ObserveValueBroadcast(4, s, 1, 0, field.New(5))
	if d.PendingCount() != 0 {
		t.Errorf("pending = %d, want 0", d.PendingCount())
	}
	if d.Resolved != 2 {
		t.Errorf("resolved = %d, want 2", d.Resolved)
	}
}
