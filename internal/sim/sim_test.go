package sim

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// pingPayload is a minimal payload for substrate tests.
type pingPayload struct {
	Hop int
}

func (pingPayload) Kind() string { return "test/ping" }
func (pingPayload) Size() int    { return 8 }

// flooder sends one ping to every process on Init and re-sends with
// decremented hop count on delivery until hops are exhausted.
type flooder struct {
	id       ProcID
	hops     int
	received int
}

func (f *flooder) ID() ProcID { return f.id }

func (f *flooder) Init(ctx Context) {
	for p := 1; p <= ctx.N(); p++ {
		ctx.Send(ProcID(p), pingPayload{Hop: f.hops})
	}
}

func (f *flooder) Deliver(ctx Context, m Message) {
	f.received++
	p, ok := m.Payload.(pingPayload)
	if !ok || p.Hop <= 0 {
		return
	}
	ctx.Send(m.From, pingPayload{Hop: p.Hop - 1})
}

func newFloodNet(t *testing.T, n, hops int, seed int64, opts ...NetworkOption) (*Network, []*flooder) {
	t.Helper()
	nw := NewNetwork(n, (n-1)/3, seed, opts...)
	procs := make([]*flooder, 0, n)
	for p := 1; p <= n; p++ {
		f := &flooder{id: ProcID(p), hops: hops}
		procs = append(procs, f)
		if err := nw.Register(f); err != nil {
			t.Fatalf("register: %v", err)
		}
	}
	return nw, procs
}

func TestNetworkRunsToQuiescence(t *testing.T) {
	nw, procs := newFloodNet(t, 4, 3, 1)
	steps, err := nw.Run(100000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !nw.Quiescent() {
		t.Error("network not quiescent after Run")
	}
	// Each of 4 processes initiates 4 pings with 3 hops: each chain is
	// ping + 3 bounces = 4 deliveries; 16 chains -> 64 deliveries.
	if steps != 64 {
		t.Errorf("steps = %d, want 64", steps)
	}
	total := 0
	for _, f := range procs {
		total += f.received
	}
	if total != 64 {
		t.Errorf("total received = %d, want 64", total)
	}
}

func TestNetworkDeterminism(t *testing.T) {
	trace1 := make([]uint64, 0, 64)
	trace2 := make([]uint64, 0, 64)
	run := func(trace *[]uint64) {
		nw, _ := newFloodNet(t, 5, 4, 42, WithDeliverHook(func(m Message) {
			*trace = append(*trace, m.Seq)
		}))
		if _, err := nw.Run(1000000); err != nil {
			t.Fatalf("run: %v", err)
		}
	}
	run(&trace1)
	run(&trace2)
	if len(trace1) != len(trace2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(trace1), len(trace2))
	}
	for i := range trace1 {
		if trace1[i] != trace2[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, trace1[i], trace2[i])
		}
	}
}

func TestNetworkDifferentSeedsDiffer(t *testing.T) {
	sig := func(seed int64) string {
		var s string
		nw, _ := newFloodNet(t, 5, 4, seed, WithDeliverHook(func(m Message) {
			s += fmt.Sprintf("%d,", m.Seq)
		}))
		if _, err := nw.Run(1000000); err != nil {
			t.Fatalf("run: %v", err)
		}
		return s
	}
	if sig(1) == sig(2) {
		t.Error("different seeds produced identical delivery orders (unlikely)")
	}
}

func TestNetworkStepLimit(t *testing.T) {
	nw, _ := newFloodNet(t, 4, 1000000, 3)
	_, err := nw.Run(50)
	var lim ErrStepLimit
	if !errors.As(err, &lim) {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
	if lim.Steps != 50 {
		t.Errorf("limit steps = %d, want 50", lim.Steps)
	}
}

func TestNetworkRunUntilCondition(t *testing.T) {
	nw, procs := newFloodNet(t, 4, 3, 4)
	steps, err := nw.RunUntil(func() bool { return procs[0].received >= 4 }, 100000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if procs[0].received < 4 {
		t.Errorf("condition not met after %d steps", steps)
	}
	if nw.Quiescent() {
		t.Error("expected pending messages when stopping early")
	}
}

func TestNetworkCrashDropsTraffic(t *testing.T) {
	nw, procs := newFloodNet(t, 4, 3, 5)
	nw.Crash(2)
	if _, err := nw.Run(100000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if procs[1].received != 0 {
		t.Errorf("crashed process received %d messages", procs[1].received)
	}
	if nw.Stats().Dropped == 0 {
		t.Error("expected dropped messages")
	}
}

func TestNetworkRegisterErrors(t *testing.T) {
	nw := NewNetwork(3, 0, 1)
	if err := nw.Register(&flooder{id: 0}); err == nil {
		t.Error("id 0 accepted")
	}
	if err := nw.Register(&flooder{id: 4}); err == nil {
		t.Error("id out of range accepted")
	}
	if err := nw.Register(&flooder{id: 1}); err != nil {
		t.Errorf("valid register failed: %v", err)
	}
	if err := nw.Register(&flooder{id: 1}); err == nil {
		t.Error("duplicate register accepted")
	}
	if _, err := nw.Run(10); err == nil {
		t.Error("run with missing processes should fail")
	}
}

func TestNetworkStatsAccounting(t *testing.T) {
	nw, _ := newFloodNet(t, 4, 1, 6)
	if _, err := nw.Run(100000); err != nil {
		t.Fatalf("run: %v", err)
	}
	st := nw.Stats()
	if st.Sent != st.Delivered+st.Dropped {
		t.Errorf("sent %d != delivered %d + dropped %d", st.Sent, st.Delivered, st.Dropped)
	}
	if st.SentByKind["test/ping"] != st.Sent {
		t.Errorf("by-kind count %d != total %d", st.SentByKind["test/ping"], st.Sent)
	}
	if st.BytesByKind["test/ping"] != 8*st.Sent {
		t.Errorf("bytes = %d, want %d", st.BytesByKind["test/ping"], 8*st.Sent)
	}
	if st.TotalBytes() != 8*st.Sent {
		t.Errorf("TotalBytes = %d, want %d", st.TotalBytes(), 8*st.Sent)
	}
}

func TestSchedulersDeliverEverything(t *testing.T) {
	tests := []struct {
		name string
		make func() Scheduler
	}{
		{name: "random", make: func() Scheduler { return NewRandomScheduler(7) }},
		{name: "fifo", make: func() Scheduler { return NewFIFOScheduler() }},
		{name: "delay-uniform", make: func() Scheduler {
			return NewDelayScheduler(7, UniformDelay{Lo: 1, Hi: 50})
		}},
		{name: "delay-exp", make: func() Scheduler {
			return NewDelayScheduler(7, ExpDelay{Mean: 20, Cap: 200})
		}},
		{name: "scripted-nohold", make: func() Scheduler {
			return NewScriptedScheduler(NewRandomScheduler(7))
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := tt.make()
			seen := make(map[uint64]bool)
			for i := uint64(1); i <= 100; i++ {
				s.Enqueue(Message{Seq: i, Payload: pingPayload{}}, 0)
			}
			if s.Len() != 100 {
				t.Fatalf("len = %d, want 100", s.Len())
			}
			now := int64(0)
			for {
				m, at, ok := s.Next(now)
				if !ok {
					break
				}
				if at > now {
					now = at
				}
				if seen[m.Seq] {
					t.Fatalf("message %d delivered twice", m.Seq)
				}
				seen[m.Seq] = true
			}
			if len(seen) != 100 {
				t.Errorf("delivered %d of 100", len(seen))
			}
		})
	}
}

func TestFIFOSchedulerPreservesOrder(t *testing.T) {
	s := NewFIFOScheduler()
	for i := uint64(1); i <= 10; i++ {
		s.Enqueue(Message{Seq: i, Payload: pingPayload{}}, 0)
	}
	for i := uint64(1); i <= 10; i++ {
		m, _, ok := s.Next(0)
		if !ok || m.Seq != i {
			t.Fatalf("pop %d: got seq %d ok=%v", i, m.Seq, ok)
		}
	}
}

func TestDelaySchedulerOrdersByVirtualTime(t *testing.T) {
	s := NewDelayScheduler(1, UniformDelay{Lo: 1, Hi: 1000})
	for i := uint64(1); i <= 200; i++ {
		s.Enqueue(Message{Seq: i, Payload: pingPayload{}}, 0)
	}
	last := int64(-1)
	for {
		_, at, ok := s.Next(0)
		if !ok {
			break
		}
		if at < last {
			t.Fatalf("virtual time went backwards: %d after %d", at, last)
		}
		last = at
	}
}

func TestScriptedSchedulerHoldAndRelease(t *testing.T) {
	s := NewScriptedScheduler(NewFIFOScheduler())
	s.SetHold(func(m Message) bool { return m.To == 4 })
	for i := uint64(1); i <= 6; i++ {
		to := ProcID(i%2 + 3) // alternate To=4, To=3
		s.Enqueue(Message{Seq: i, To: to, Payload: pingPayload{}}, 0)
	}
	var delivered []ProcID
	for {
		m, _, ok := s.Next(0)
		if !ok {
			break
		}
		delivered = append(delivered, m.To)
	}
	for _, to := range delivered {
		if to == 4 {
			t.Fatal("held message delivered")
		}
	}
	if s.HeldCount() != 3 {
		t.Fatalf("held = %d, want 3", s.HeldCount())
	}
	s.SetHold(nil)
	count := 0
	for {
		m, _, ok := s.Next(0)
		if !ok {
			break
		}
		if m.To != 4 {
			t.Fatal("unexpected message after release")
		}
		count++
	}
	if count != 3 {
		t.Errorf("released %d, want 3", count)
	}
}

// echoCodec round-trips payloads through a trivial encoding to verify the
// LiveNet codec path.
type echoCodec struct{}

func (echoCodec) Encode(p Payload) ([]byte, error) {
	pp, ok := p.(pingPayload)
	if !ok {
		return nil, fmt.Errorf("unknown payload %T", p)
	}
	return []byte{byte(pp.Hop)}, nil
}

func (echoCodec) Decode(b []byte) (Payload, error) {
	if len(b) != 1 {
		return nil, fmt.Errorf("bad length %d", len(b))
	}
	return pingPayload{Hop: int(b[0])}, nil
}

// collector counts deliveries thread-safely via a done channel.
type collector struct {
	id   ProcID
	hops int

	mu       sync.Mutex
	received int
	notify   chan struct{}
}

func (c *collector) ID() ProcID { return c.id }

func (c *collector) Init(ctx Context) {
	for p := 1; p <= ctx.N(); p++ {
		ctx.Send(ProcID(p), pingPayload{Hop: c.hops})
	}
}

func (c *collector) Deliver(ctx Context, m Message) {
	c.mu.Lock()
	c.received++
	c.mu.Unlock()
	select {
	case c.notify <- struct{}{}:
	default:
	}
	p, ok := m.Payload.(pingPayload)
	if !ok || p.Hop <= 0 {
		return
	}
	ctx.Send(m.From, pingPayload{Hop: p.Hop - 1})
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.received
}

func TestLiveNetDeliversAll(t *testing.T) {
	const n = 4
	l := NewLiveNet(n, 1, 11, WithCodec(echoCodec{}), WithMaxDelay(500*time.Microsecond))
	procs := make([]*collector, 0, n)
	for p := 1; p <= n; p++ {
		c := &collector{id: ProcID(p), hops: 2, notify: make(chan struct{}, 1)}
		procs = append(procs, c)
		if err := l.Register(c); err != nil {
			t.Fatalf("register: %v", err)
		}
	}
	if err := l.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	// 16 chains x 3 deliveries = 48 expected deliveries.
	deadline := time.After(5 * time.Second)
	for {
		total := 0
		for _, c := range procs {
			total += c.count()
		}
		if total >= 48 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("timeout: delivered %d of 48", total)
		case <-time.After(time.Millisecond):
		}
	}
	l.Stop()
	if errs := l.Errs(); len(errs) > 0 {
		t.Fatalf("livenet errors: %v", errs)
	}
	if st := l.Stats(); st.Sent < 48 {
		t.Errorf("sent = %d, want >= 48", st.Sent)
	}
}

func TestLiveNetStopIsIdempotent(t *testing.T) {
	l := NewLiveNet(2, 0, 1)
	for p := 1; p <= 2; p++ {
		c := &collector{id: ProcID(p), hops: 0, notify: make(chan struct{}, 1)}
		if err := l.Register(c); err != nil {
			t.Fatalf("register: %v", err)
		}
	}
	if err := l.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	l.Stop()
	l.Stop()
}
