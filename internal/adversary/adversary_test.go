package adversary_test

import (
	"testing"

	"svssba/internal/aba"
	"svssba/internal/adversary"
	"svssba/internal/core"
	"svssba/internal/field"
	"svssba/internal/mwsvss"
	"svssba/internal/proto"
	"svssba/internal/sim"
	"svssba/internal/testutil"
)

// capture runs a stack's tamper chain against a payload directly.
func sendThrough(t *testing.T, st *core.Stack, p sim.Payload, to sim.ProcID) []sim.Message {
	t.Helper()
	ctx := testutil.NewCtx(1, 4, 1)
	nw := sim.NewNetwork(4, 1, 1)
	if err := nw.Register(st.Node); err != nil {
		t.Fatal(err)
	}
	_ = ctx
	// Use the node's Init wrapper to get a tampering context.
	st.Node.AddInit(func(c sim.Context) { c.Send(to, p) })
	fake := testutil.NewCtx(1, 4, 1)
	st.Node.Init(fake)
	return fake.Sent
}

func TestSilentDropsEverything(t *testing.T) {
	st := core.NewStack(1, nil)
	adversary.Apply(st, adversary.Silent())
	sent := sendThrough(t, st, aba.Vote{Step: 1, Round: 1, Value: 1}, 2)
	if len(sent) != 0 {
		t.Errorf("silent sent %d messages", len(sent))
	}
}

func TestVoteFlipperFlips(t *testing.T) {
	st := core.NewStack(1, nil)
	adversary.Apply(st, adversary.VoteFlipper())
	sent := sendThrough(t, st, aba.Vote{Step: 1, Round: 1, Value: 1}, 2)
	if len(sent) != 1 {
		t.Fatalf("sent %d", len(sent))
	}
	v, ok := sent[0].Payload.(aba.Vote)
	if !ok || v.Value != 0 {
		t.Errorf("payload %v", sent[0].Payload)
	}
}

func TestVoteEquivocatorSplitsByParity(t *testing.T) {
	st := core.NewStack(1, nil)
	adversary.Apply(st, adversary.VoteEquivocator())
	even := sendThrough(t, st, aba.Vote{Step: 1, Round: 1, Value: 1}, 2)
	st2 := core.NewStack(1, nil)
	adversary.Apply(st2, adversary.VoteEquivocator())
	odd := sendThrough(t, st2, aba.Vote{Step: 1, Round: 1, Value: 1}, 3)
	if even[0].Payload.(aba.Vote).Value != 0 {
		t.Error("even peer not flipped")
	}
	if odd[0].Payload.(aba.Vote).Value != 1 {
		t.Error("odd peer flipped")
	}
}

func TestEchoLiarOffsetsEchoes(t *testing.T) {
	st := core.NewStack(1, nil)
	adversary.Apply(st, adversary.EchoLiar(5))
	in := mwsvss.Echo{MW: proto.MWID{}, Val: field.New(10)}
	sent := sendThrough(t, st, in, 2)
	got := sent[0].Payload.(mwsvss.Echo)
	if got.Val != field.New(15) {
		t.Errorf("val = %v, want 15", got.Val)
	}
}

func TestMuteKindsDropsSelected(t *testing.T) {
	st := core.NewStack(1, nil)
	adversary.Apply(st, adversary.MuteKinds(aba.KindBVal))
	if sent := sendThrough(t, st, aba.Vote{Step: 1, Round: 1, Value: 1}, 2); len(sent) != 0 {
		t.Error("muted kind sent")
	}
	st2 := core.NewStack(1, nil)
	adversary.Apply(st2, adversary.MuteKinds(aba.KindBVal))
	if sent := sendThrough(t, st2, aba.Vote{Step: 2, Round: 1, Value: 1}, 2); len(sent) != 1 {
		t.Error("unmuted kind dropped")
	}
}

func TestBehaviorsCompose(t *testing.T) {
	st := core.NewStack(1, nil)
	adversary.Apply(st, adversary.VoteFlipper(), adversary.MuteKinds(aba.KindAux))
	// BVAL: flipped, kept. AUX: dropped.
	if sent := sendThrough(t, st, aba.Vote{Step: 1, Round: 1, Value: 0}, 2); len(sent) != 1 ||
		sent[0].Payload.(aba.Vote).Value != 1 {
		t.Error("compose: bval not flipped")
	}
	st2 := core.NewStack(1, nil)
	adversary.Apply(st2, adversary.VoteFlipper(), adversary.MuteKinds(aba.KindAux))
	if sent := sendThrough(t, st2, aba.Vote{Step: 2, Round: 1, Value: 0}, 2); len(sent) != 0 {
		t.Error("compose: aux not dropped")
	}
}

func TestRValLiarAltersBroadcastValue(t *testing.T) {
	st := core.NewStack(1, nil)
	adversary.Apply(st, adversary.RValLiar(7))
	fake := testutil.NewCtx(1, 4, 1)
	tag := proto.Tag{Proto: proto.ProtoMW, Step: mwsvss.StepRVal, A: 2}
	st.Node.Broadcast(fake, tag, mwsvss.EncodeElem(field.New(100)))
	// The WRB type-1 fan-out carries the corrupted value.
	if len(fake.Sent) != 4 {
		t.Fatalf("sent %d", len(fake.Sent))
	}
}
