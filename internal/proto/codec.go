package proto

import (
	"fmt"

	"svssba/internal/sim"
)

// Marshaler is implemented by payloads that can write themselves to a
// Writer. Every protocol message in this repository implements it; the
// analytic Size() of each payload must equal the marshaled length (codec
// tests enforce this).
type Marshaler interface {
	sim.Payload
	MarshalTo(w *Writer)
}

// DecodeFunc reconstructs a payload from a Reader.
type DecodeFunc func(r *Reader) (sim.Payload, error)

// Codec is a kind-dispatched binary codec for protocol payloads. It
// implements sim.Codec so the live runtime can round-trip every message
// through the wire format.
type Codec struct {
	decoders map[string]DecodeFunc
}

var _ sim.Codec = (*Codec)(nil)

// NewCodec returns an empty codec; protocol packages contribute their
// message types via their RegisterCodec functions.
func NewCodec() *Codec {
	return &Codec{decoders: make(map[string]DecodeFunc)}
}

// Register adds a decoder for the given payload kind. Registering the
// same kind twice is a programming error and is reported on Decode.
func (c *Codec) Register(kind string, dec DecodeFunc) {
	c.decoders[kind] = dec
}

// Encode implements sim.Codec.
func (c *Codec) Encode(p sim.Payload) ([]byte, error) {
	m, ok := p.(Marshaler)
	if !ok {
		return nil, fmt.Errorf("proto: payload %q does not implement Marshaler", p.Kind())
	}
	var w Writer
	kind := p.Kind()
	w.U16(uint16(len(kind)))
	w.buf = append(w.buf, kind...)
	m.MarshalTo(&w)
	return w.Bytes(), nil
}

// Decode implements sim.Codec.
func (c *Codec) Decode(b []byte) (sim.Payload, error) {
	r := NewReader(b)
	kl := int(r.U16())
	kb := r.take(kl)
	if r.Err() != nil {
		return nil, fmt.Errorf("proto: decode kind: %w", r.Err())
	}
	kind := string(kb)
	dec, ok := c.decoders[kind]
	if !ok {
		return nil, fmt.Errorf("proto: no decoder for kind %q", kind)
	}
	p, err := dec(r)
	if err != nil {
		return nil, fmt.Errorf("proto: decode %q: %w", kind, err)
	}
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("proto: decode %q: %w", kind, err)
	}
	return p, nil
}
